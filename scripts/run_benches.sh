#!/usr/bin/env bash
# Runs the reproduction benches and collects machine-readable timings into
# BENCH_pr9.json: per-bench wall-clock, the BENCHJSON self-reports the
# parallel benches print on stderr (trials, jobs, trials/sec), the digest
# cache counters and engine memory-model gauges from each bench's metrics
# snapshot, the bench_micro event-churn + draw-pipeline allocation audit
# (steady state must be 0 allocs/event and 0 allocs/draw), a cache-on vs
# cache-off comparison of the hash-dominated clean-rounds workload, and a
# paired interleaved A/B of --batch=1 (scalar run of record) vs --batch=K
# (lockstep batched draw pipeline) on bench_satin_detection. The A/B
# interleaves the two modes and compares USER-time medians because this
# host's wall clock drifts ±15-25% across a session — a pair measured
# back-to-back and a median over n pairs are robust to that; two single
# runs an hour apart are not. PR-9 adds a second paired A/B on
# bench_race_analysis's offset ladder: unforked --ramp-s=$FORK_RAMP_S vs
# the warm-prefix COW fork backend (--branches=$FORK_BRANCHES
# --fork-prefix=1), gated at >= 1.5x user time. Run from anywhere; builds
# are NOT triggered here — point BUILD_DIR at an existing build (default
# <repo>/build).
#
#   scripts/run_benches.sh                 # all benches, --jobs=$(nproc)
#   JOBS=1 scripts/run_benches.sh          # serial baseline
#   scripts/run_benches.sh --local         # write untracked BENCH_local.json
#   OUT=/tmp/b.json scripts/run_benches.sh # custom output path
#   scripts/run_benches.sh bench_race_analysis   # subset
#   AB_PAIRS=4 BATCH_K=4 scripts/run_benches.sh bench_satin_detection
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${BUILD_DIR:-$repo/build}"
jobs="${JOBS:-$(nproc)}"
out="${OUT:-$repo/BENCH_pr9.json}"
# Baseline for the delta table: the newest committed BENCH_pr*.json that
# isn't this run's own output (version-sorted, so pr10 beats pr9).
# Override with BASELINE=path.
auto_baseline="$(ls -1v "$repo"/BENCH_pr*.json 2>/dev/null |
                 grep -vFx "$out" | tail -1 || true)"
baseline="${BASELINE:-$auto_baseline}"
# Fail loudly on an unparseable baseline instead of emitting a silently
# empty delta table: a truncated or hand-mangled BENCH_pr*.json would
# otherwise read as "no baseline, nothing to compare".
if [ -n "$baseline" ] && [ -f "$baseline" ]; then
  if ! python3 -c 'import json,sys; json.load(open(sys.argv[1]))' "$baseline" \
      2>/tmp/baseline_parse_err; then
    echo "run_benches.sh: baseline $baseline is not valid JSON:" >&2
    sed 's/^/  /' /tmp/baseline_parse_err >&2
    echo "fix or delete it, or point BASELINE= at a good record" >&2
    exit 1
  fi
fi
clean_rounds="${CLEAN_ROUNDS:-1900}"
if [ "${1:-}" = "--local" ]; then
  out="${OUT:-$repo/BENCH_local.json}"
  shift
fi

# Benches/examples that accept --jobs (fanned over sim::TrialRunner),
# then the serial ones — everything still gets wall-clock timed.
parallel_benches=(
  bench/bench_race_analysis
  bench/bench_fig4_threshold_stability
  bench/bench_table2_probing_threshold
  bench/bench_ablation_area_size
  bench/bench_ablation_randomization
  bench/bench_satin_detection
  examples/overhead_study
  examples/fault_storm
)
serial_benches=(
  bench/bench_table1_introspection_time
  bench/bench_tswitch_recovery
  bench/bench_fig3_race_timeline
)

if [ "$#" -gt 0 ]; then
  filtered=()
  for b in "${parallel_benches[@]}" "${serial_benches[@]}"; do
    for want in "$@"; do
      [ "$(basename "$b")" = "$want" ] && filtered+=("$b")
    done
  done
  benches=("${filtered[@]}")
else
  benches=("${parallel_benches[@]}" "${serial_benches[@]}")
fi

is_parallel() {
  local b
  for b in "${parallel_benches[@]}"; do
    [ "$b" = "$1" ] && return 0
  done
  return 1
}

tmp_err="$(mktemp)"
tmp_metrics="$(mktemp)"
trap 'rm -f "$tmp_err" "$tmp_metrics" "$tmp_metrics.jsonl"' EXIT

# digest_cache.{hits,misses,invalidations} from a metrics snapshot, as a
# JSON object (null when the snapshot has no cache counters).
cache_counters() {
  python3 - "$1" <<'PY'
import json, sys
try:
    counters = json.load(open(sys.argv[1])).get("counters", {})
except Exception:
    print("null"); raise SystemExit
keys = ("hits", "misses", "invalidations")
if not any(f"digest_cache.{k}" in counters for k in keys):
    print("null"); raise SystemExit
print(json.dumps({k: int(counters.get(f"digest_cache.{k}", 0)) for k in keys}))
PY
}

# engine.* memory-model gauges (pool occupancy, inline-vs-fallback
# callbacks, wheel-vs-heap admission) from a metrics snapshot; null when
# the snapshot carries none.
engine_counters() {
  python3 - "$1" <<'PY'
import json, sys
try:
    gauges = json.load(open(sys.argv[1])).get("gauges", {})
except Exception:
    print("null"); raise SystemExit
keys = ("pool_high_water", "pool_slab_grows", "pool_reuses",
        "cb_inline", "cb_fallback", "wheel_events", "heap_events")
if not any(f"engine.{k}" in gauges for k in keys):
    print("null"); raise SystemExit
print(json.dumps({k: gauges.get(f"engine.{k}", 0) for k in keys}))
PY
}

rows=""
for b in "${benches[@]}"; do
  exe="$build/$b"
  name="$(basename "$b")"
  if [ ! -x "$exe" ]; then
    echo "skip $name (not built: $exe)" >&2
    continue
  fi
  args=("--metrics=$tmp_metrics")
  if is_parallel "$b"; then args+=("--jobs=$jobs"); fi
  echo "== $name ${args[*]:-}" >&2
  : >"$tmp_metrics"
  start="$EPOCHREALTIME"
  "$exe" "${args[@]}" >/dev/null 2>"$tmp_err"
  end="$EPOCHREALTIME"
  wall="$(awk -v a="$start" -v b="$end" 'BEGIN{printf "%.6f", b-a}')"
  # The bench's own BENCHJSON line (stderr) carries trials/jobs/rate for
  # just the fanned-out portion; absent for serial benches.
  self="$(grep -o 'BENCHJSON {.*}' "$tmp_err" | tail -1 | sed 's/^BENCHJSON //' || true)"
  [ -n "$self" ] || self="null"
  cache="$(cache_counters "$tmp_metrics")"
  engine="$(engine_counters "$tmp_metrics")"
  row="$(printf '{"bench":"%s","wall_s":%s,"jobs":%s,"self":%s,"digest_cache":%s,"engine":%s}' \
         "$name" "$wall" "$jobs" "$self" "$cache" "$engine")"
  rows="${rows:+$rows,}$row"
  echo "   ${wall}s" >&2
done

# Allocation audit: the engine's zero-allocation contract, measured end
# to end. Every BM_EventChurn* bench must report exactly 0
# allocs_per_event, and every draw-pipeline bench (BM_Mt*/BM_Draw*) must
# report exactly 0 allocs_per_draw, or the script (and the CI gate that
# reruns this) fails.
churn="null"
micro="$build/bench/bench_micro"
if [ -x "$micro" ] && [ "$#" -eq 0 ]; then
  echo "== bench_micro event-churn + draw-pipeline allocation audit" >&2
  churn_json="$(mktemp)"
  "$micro" --benchmark_filter='BM_EventChurn|BM_Mt|BM_Draw' \
    --benchmark_format=json >"$churn_json" 2>"$tmp_err"
  churn="$(python3 - "$churn_json" <<'PY'
import json, sys
rows = []
bad = []
for b in json.load(open(sys.argv[1])).get("benchmarks", []):
    for key in ("allocs_per_event", "allocs_per_draw"):
        alloc = b.get(key)
        if alloc is None:
            continue
        rows.append({"bench": b["name"], key: alloc,
                     "time_ns": b.get("real_time")})
        if alloc != 0:
            bad.append(b["name"])
if bad:
    print(f"ERROR: nonzero allocs per event/draw in {bad}", file=sys.stderr)
    raise SystemExit(1)
print(json.dumps(rows))
PY
)"
  rm -f "$churn_json"
  echo "   all churn benches at 0 allocs/event, all draw benches at 0 allocs/draw" >&2
fi

# Cache on-vs-off on the hash-dominated clean-rounds workload: same
# simulation twice, stdout must be byte-identical, wall time must not be.
cache_cmp="null"
detect="$build/bench/bench_satin_detection"
if [ -x "$detect" ] && { [ "$#" -eq 0 ] || [[ " $* " == *" bench_satin_detection "* ]]; }; then
  echo "== bench_satin_detection --clean-rounds=$clean_rounds (cache on vs off)" >&2
  on_out="$(mktemp)" off_out="$(mktemp)"
  on_wall=""
  off_wall=""
  for mode in on off; do
    : >"$tmp_metrics"
    start="$EPOCHREALTIME"
    "$detect" "--clean-rounds=$clean_rounds" "--digest-cache=$mode" \
      "--metrics=$tmp_metrics" >"$([ "$mode" = on ] && echo "$on_out" || echo "$off_out")" 2>"$tmp_err"
    end="$EPOCHREALTIME"
    wall="$(awk -v a="$start" -v b="$end" 'BEGIN{printf "%.6f", b-a}')"
    if [ "$mode" = on ]; then on_wall="$wall"; on_cache="$(cache_counters "$tmp_metrics")"; else off_wall="$wall"; fi
    echo "   --digest-cache=$mode: ${wall}s" >&2
  done
  if ! diff -q "$on_out" "$off_out" >/dev/null; then
    echo "ERROR: clean-rounds stdout differs between --digest-cache=on and off" >&2
    diff "$on_out" "$off_out" >&2 || true
    rm -f "$on_out" "$off_out"
    exit 1
  fi
  echo "   stdout identical across modes" >&2
  speedup="$(awk -v on="$on_wall" -v off="$off_wall" 'BEGIN{printf "%.2f", (on > 0) ? off / on : 0}')"
  echo "   speedup (off/on): ${speedup}x" >&2
  cache_cmp="$(printf '{"rounds":%s,"wall_s_on":%s,"wall_s_off":%s,"speedup":%s,"stdout_identical":true,"digest_cache":%s}' \
               "$clean_rounds" "$on_wall" "$off_wall" "$speedup" "$on_cache")"
  rm -f "$on_out" "$off_out"
fi

# Paired interleaved A/B: --batch=1 (scalar per-draw oracle, the run of
# record) vs --batch=$batch_k (lockstep batched draw pipeline). Each pair
# runs scalar then batched back-to-back and every pair re-checks that
# stdout is byte-identical across modes (the stream contract); medians of
# USER time over the pairs absorb the host's wall-clock drift, which two
# single runs taken minutes apart cannot.
batch_ab="null"
ab_pairs="${AB_PAIRS:-8}"
batch_k="${BATCH_K:-8}"
if [ -x "$detect" ] && { [ "$#" -eq 0 ] || [[ " $* " == *" bench_satin_detection "* ]]; }; then
  echo "== bench_satin_detection paired A/B: --batch=1 vs --batch=$batch_k (n=$ab_pairs pairs, user-time medians)" >&2
  a_out="$(mktemp)" b_out="$(mktemp)"
  a_times=() b_times=() ratios=()
  for i in $(seq 1 "$ab_pairs"); do
    ua="$( { TIMEFORMAT='%U'; time "$detect" --batch=1 >"$a_out" 2>"$tmp_err"; } 2>&1 )"
    ub="$( { TIMEFORMAT='%U'; time "$detect" "--batch=$batch_k" >"$b_out" 2>"$tmp_err"; } 2>&1 )"
    if ! diff -q "$a_out" "$b_out" >/dev/null; then
      echo "ERROR: stdout differs between --batch=1 and --batch=$batch_k" >&2
      diff "$a_out" "$b_out" >&2 || true
      rm -f "$a_out" "$b_out"
      exit 1
    fi
    a_times+=("$ua")
    b_times+=("$ub")
    pair_ratio="$(awk -v a="$ua" -v b="$ub" 'BEGIN{printf "%.3f", (b > 0) ? a / b : 0}')"
    ratios+=("$pair_ratio")
    echo "   pair $i/$ab_pairs: scalar ${ua}s  batched ${ub}s  (${pair_ratio}x)" >&2
  done
  rm -f "$a_out" "$b_out"
  median() {
    printf '%s\n' "$@" | sort -g |
      awk '{v[NR]=$1} END{if (NR%2) print v[(NR+1)/2]; else printf "%.3f\n", (v[NR/2]+v[NR/2+1])/2}'
  }
  a_med="$(median "${a_times[@]}")"
  b_med="$(median "${b_times[@]}")"
  ab_speedup="$(awk -v a="$a_med" -v b="$b_med" 'BEGIN{printf "%.2f", (b > 0) ? a / b : 0}')"
  # Two estimators: ratio-of-medians treats the 2n runs as two pools, which
  # re-admits the drift the pairing was built to cancel (an early quiet
  # scalar run gets compared against a late noisy batched one). The median
  # of the per-pair ratios is the estimator the paired design motivates —
  # each ratio is drift-free because its two runs were back-to-back.
  ab_paired="$(median "${ratios[@]}")"
  a_list="$(IFS=,; echo "${a_times[*]}")"
  b_list="$(IFS=,; echo "${b_times[*]}")"
  r_list="$(IFS=,; echo "${ratios[*]}")"
  batch_ab="$(printf '{"batch":%s,"pairs":%s,"user_s_scalar":[%s],"user_s_batched":[%s],"pair_ratios":[%s],"user_s_scalar_median":%s,"user_s_batched_median":%s,"speedup":%s,"speedup_paired":%s,"stdout_identical":true}' \
              "$batch_k" "$ab_pairs" "$a_list" "$b_list" "$r_list" "$a_med" "$b_med" "$ab_speedup" "$ab_paired")"
  echo "   medians: scalar ${a_med}s  batched ${b_med}s  speedup ${ab_speedup}x (median of pair ratios: ${ab_paired}x)" >&2
fi

# Paired interleaved A/B: warm-prefix COW trial forking on the spot-duel
# offset ladder. Both sides run the SAME workload — 16 spot duels, each
# with an idle engagement ramp of $FORK_RAMP_S simulated seconds before
# the probe — the unforked side re-simulating the ramp per trial, the
# forked side (--branches=$FORK_BRANCHES --fork-prefix=1) simulating each
# group's ramp once in the parent and fork()ing the branches off the warm
# COW image. The spot-duel engagement draws nothing from the platform
# RNG, so the warm fork is byte-identical to the unforked run here —
# every pair re-checks stdout — and the user-time ratio is pure prefix
# amortization. Gated: the ratio-of-medians must clear 1.5x.
fork_ab="null"
fork_pairs="${FORK_PAIRS:-5}"
fork_branches="${FORK_BRANCHES:-8}"
fork_ramp="${FORK_RAMP_S:-20}"
race="$build/bench/bench_race_analysis"
if [ -x "$race" ] && { [ "$#" -eq 0 ] || [[ " $* " == *" bench_race_analysis "* ]]; }; then
  echo "== bench_race_analysis paired A/B: unforked vs --branches=$fork_branches --fork-prefix=1 (--ramp-s=$fork_ramp, n=$fork_pairs pairs)" >&2
  a_out="$(mktemp)" b_out="$(mktemp)"
  a_times=() b_times=() ratios=()
  for i in $(seq 1 "$fork_pairs"); do
    ua="$( { TIMEFORMAT='%U'; time "$race" "--ramp-s=$fork_ramp" >"$a_out" 2>"$tmp_err"; } 2>&1 )"
    ub="$( { TIMEFORMAT='%U'; time "$race" "--ramp-s=$fork_ramp" "--branches=$fork_branches" --fork-prefix=1 >"$b_out" 2>"$tmp_err"; } 2>&1 )"
    if ! diff -q "$a_out" "$b_out" >/dev/null; then
      echo "ERROR: stdout differs between unforked and warm-forked ladder" >&2
      diff "$a_out" "$b_out" >&2 || true
      rm -f "$a_out" "$b_out"
      exit 1
    fi
    a_times+=("$ua")
    b_times+=("$ub")
    pair_ratio="$(awk -v a="$ua" -v b="$ub" 'BEGIN{printf "%.3f", (b > 0) ? a / b : 0}')"
    ratios+=("$pair_ratio")
    echo "   pair $i/$fork_pairs: unforked ${ua}s  forked ${ub}s  (${pair_ratio}x)" >&2
  done
  rm -f "$a_out" "$b_out"
  median() {
    printf '%s\n' "$@" | sort -g |
      awk '{v[NR]=$1} END{if (NR%2) print v[(NR+1)/2]; else printf "%.3f\n", (v[NR/2]+v[NR/2+1])/2}'
  }
  a_med="$(median "${a_times[@]}")"
  b_med="$(median "${b_times[@]}")"
  fork_speedup="$(awk -v a="$a_med" -v b="$b_med" 'BEGIN{printf "%.2f", (b > 0) ? a / b : 0}')"
  fork_paired="$(median "${ratios[@]}")"
  if awk -v s="$fork_speedup" 'BEGIN{exit !(s < 1.5)}'; then
    echo "ERROR: warm-prefix fork speedup ${fork_speedup}x is below the 1.5x gate" >&2
    exit 1
  fi
  a_list="$(IFS=,; echo "${a_times[*]}")"
  b_list="$(IFS=,; echo "${b_times[*]}")"
  r_list="$(IFS=,; echo "${ratios[*]}")"
  fork_ab="$(printf '{"branches":%s,"fork_prefix_s":1,"ramp_s":%s,"pairs":%s,"user_s_unforked":[%s],"user_s_forked":[%s],"pair_ratios":[%s],"user_s_unforked_median":%s,"user_s_forked_median":%s,"speedup":%s,"speedup_paired":%s,"stdout_identical":true}' \
              "$fork_branches" "$fork_ramp" "$fork_pairs" "$a_list" "$b_list" "$r_list" "$a_med" "$b_med" "$fork_speedup" "$fork_paired")"
  echo "   medians: unforked ${a_med}s  forked ${b_med}s  speedup ${fork_speedup}x (median of pair ratios: ${fork_paired}x)" >&2
fi

# Engine speedup on the headline detection bench vs the auto-detected
# baseline record.
detect_speedup="null"
if [ -n "$baseline" ] && [ -f "$baseline" ]; then
  detect_speedup="$(python3 - "$baseline" <<PY
import json
old = {b["bench"]: b["wall_s"] for b in json.load(open("$baseline")).get("benches", [])}
new = {r.get("bench"): r.get("wall_s") for r in json.loads('[$rows]')}
o, n = old.get("bench_satin_detection"), new.get("bench_satin_detection")
print(round(o / n, 3) if o and n else "null")
PY
)"
fi

baseline_name="$( [ -n "$baseline" ] && basename "$baseline" || echo null)"
printf '{"schema":"satin-bench-pr9/1","nproc":%s,"jobs":%s,"baseline":"%s","detection_speedup_vs_baseline":%s,"event_churn_allocs":%s,"clean_rounds_cache_comparison":%s,"batch_ab":%s,"fork_ab":%s,"benches":[%s]}\n' \
  "$(nproc)" "$jobs" "$baseline_name" "$detect_speedup" "$churn" "$cache_cmp" "$batch_ab" "$fork_ab" "$rows" >"$out"
[ "$batch_ab" = "null" ] || echo "batch A/B (--batch=1 vs --batch=$batch_k) user-time speedup: ${ab_speedup}x" >&2
[ "$fork_ab" = "null" ] || echo "fork A/B (unforked vs --branches=$fork_branches --fork-prefix=1) user-time speedup: ${fork_speedup}x" >&2
echo "wrote $out" >&2
[ "$detect_speedup" = "null" ] || echo "bench_satin_detection speedup vs $baseline_name: ${detect_speedup}x" >&2

# Host-time delta table against the previous PR's record, when present.
if [ -n "$baseline" ] && [ -f "$baseline" ]; then
  python3 - "$baseline" "$out" <<'PY'
import json, sys

def rows(path):
    with open(path) as f:
        return {b["bench"]: b["wall_s"] for b in json.load(f).get("benches", [])}

import os
old, new = rows(sys.argv[1]), rows(sys.argv[2])
old_label = os.path.basename(sys.argv[1]).removesuffix(".json")
new_label = os.path.basename(sys.argv[2]).removesuffix(".json")
print(f"\nhost-time delta vs {sys.argv[1]}:")
print(f"{'bench':<32} {old_label + ' (s)':>14} {new_label + ' (s)':>14} {'delta':>8}")
for name in sorted(set(old) | set(new)):
    o, n = old.get(name), new.get(name)
    if o is None or n is None:
        status = "new" if o is None else "gone"
        val = n if n is not None else o
        print(f"{name:<32} {'-' if o is None else f'{o:14.3f}':>14} "
              f"{'-' if n is None else f'{n:14.3f}':>14} {status:>8}")
        continue
    delta = (n - o) / o * 100 if o > 0 else 0.0
    print(f"{name:<32} {o:>14.3f} {n:>14.3f} {delta:>+7.1f}%")
PY
fi
