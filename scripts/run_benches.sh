#!/usr/bin/env bash
# Runs the reproduction benches and collects machine-readable timings into
# BENCH_pr3.json: per-bench wall-clock, the BENCHJSON self-reports the
# parallel benches print on stderr (trials, jobs, trials/sec), and the
# host's job count. Run from anywhere; builds are NOT triggered here —
# point BUILD_DIR at an existing build (default <repo>/build).
#
#   scripts/run_benches.sh                 # all benches, --jobs=$(nproc)
#   JOBS=1 scripts/run_benches.sh          # serial baseline
#   OUT=/tmp/b.json scripts/run_benches.sh # custom output path
#   scripts/run_benches.sh bench_race_analysis   # subset
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${BUILD_DIR:-$repo/build}"
jobs="${JOBS:-$(nproc)}"
out="${OUT:-$repo/BENCH_pr3.json}"

# Benches/examples that accept --jobs (fanned over sim::TrialRunner),
# then the serial ones — everything still gets wall-clock timed.
parallel_benches=(
  bench/bench_race_analysis
  bench/bench_fig4_threshold_stability
  bench/bench_table2_probing_threshold
  bench/bench_ablation_area_size
  bench/bench_ablation_randomization
  bench/bench_satin_detection
  examples/overhead_study
  examples/fault_storm
)
serial_benches=(
  bench/bench_table1_introspection_time
  bench/bench_tswitch_recovery
  bench/bench_fig3_race_timeline
)

if [ "$#" -gt 0 ]; then
  filtered=()
  for b in "${parallel_benches[@]}" "${serial_benches[@]}"; do
    for want in "$@"; do
      [ "$(basename "$b")" = "$want" ] && filtered+=("$b")
    done
  done
  benches=("${filtered[@]}")
else
  benches=("${parallel_benches[@]}" "${serial_benches[@]}")
fi

is_parallel() {
  local b
  for b in "${parallel_benches[@]}"; do
    [ "$b" = "$1" ] && return 0
  done
  return 1
}

tmp_err="$(mktemp)"
trap 'rm -f "$tmp_err"' EXIT

rows=""
for b in "${benches[@]}"; do
  exe="$build/$b"
  name="$(basename "$b")"
  if [ ! -x "$exe" ]; then
    echo "skip $name (not built: $exe)" >&2
    continue
  fi
  args=()
  if is_parallel "$b"; then args+=("--jobs=$jobs"); fi
  echo "== $name ${args[*]:-}" >&2
  start="$EPOCHREALTIME"
  "$exe" "${args[@]}" >/dev/null 2>"$tmp_err"
  end="$EPOCHREALTIME"
  wall="$(awk -v a="$start" -v b="$end" 'BEGIN{printf "%.6f", b-a}')"
  # The bench's own BENCHJSON line (stderr) carries trials/jobs/rate for
  # just the fanned-out portion; absent for serial benches.
  self="$(grep -o 'BENCHJSON {.*}' "$tmp_err" | tail -1 | sed 's/^BENCHJSON //' || true)"
  [ -n "$self" ] || self="null"
  row="$(printf '{"bench":"%s","wall_s":%s,"jobs":%s,"self":%s}' \
         "$name" "$wall" "$jobs" "$self")"
  rows="${rows:+$rows,}$row"
  echo "   ${wall}s" >&2
done

printf '{"schema":"satin-bench-pr3/1","nproc":%s,"jobs":%s,"benches":[%s]}\n' \
  "$(nproc)" "$jobs" "$rows" >"$out"
echo "wrote $out" >&2
