#!/usr/bin/env bash
# Tier-1 gate: configure (ASan by default), build, run the full test
# suite, then smoke-test the quickstart trace/metrics export and validate
# the emitted JSON. Run from anywhere; builds into <repo>/build-check.
#
#   scripts/check_tier1.sh              # ASan build + tests + trace smoke
#   SATIN_SANITIZE= scripts/check_tier1.sh   # plain build
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${BUILD_DIR:-$repo/build-check}"
sanitize="${SATIN_SANITIZE-address}"

echo "== configure (SATIN_SANITIZE='$sanitize') =="
cmake -B "$build" -S "$repo" -DSATIN_SANITIZE="$sanitize" >/dev/null

echo "== build =="
cmake --build "$build" -j "$(nproc)"

echo "== ctest =="
ctest --test-dir "$build" --output-on-failure -j "$(nproc)"

echo "== quickstart --trace smoke =="
out="$build/quickstart.trace.json"
rm -f "$out" "$out.jsonl" "$out.metrics.json"
"$build/examples/quickstart" --trace="$out" >/dev/null

for f in "$out" "$out.metrics.json"; do
  [ -s "$f" ] || { echo "missing $f" >&2; exit 1; }
  python3 -m json.tool "$f" >/dev/null || { echo "invalid JSON: $f" >&2; exit 1; }
done
[ -s "$out.jsonl" ] || { echo "missing $out.jsonl" >&2; exit 1; }

python3 - "$out" "$out.metrics.json" <<'EOF'
import json, sys

trace = json.load(open(sys.argv[1]))
events = trace["traceEvents"]
spans = [e for e in events if e.get("ph") in ("B", "E")]
names = {e["name"] for e in events}
assert {"world_switch_in", "world_switch_out", "scan"} <= names, names
for name in ("world_switch_in", "scan"):
    per_tid = {}
    for e in spans:
        if e["name"] == name:
            b, end = per_tid.get(e["tid"], (0, 0))
            per_tid[e["tid"]] = (b + (e["ph"] == "B"), end + (e["ph"] == "E"))
    assert per_tid, f"no {name} spans"
    for tid, (b, end) in per_tid.items():
        assert abs(b - end) <= 1, (name, tid, b, end)

metrics = json.load(open(sys.argv[2]))
counters = metrics["counters"]
assert counters.get("introspect.scans", 0) > 0, counters
assert counters.get("satin.detections", 0) > 0, counters
print(f"trace OK: {len(events)} events, "
      f"{counters['introspect.scans']} scans, "
      f"{counters['satin.detections']} detections")
EOF

echo "tier-1 check: PASS"
