#!/usr/bin/env bash
# Profiles one (or more) benches under gprof and drops a flat-profile
# summary next to the BENCH_pr*.json records in the repo root.
#
# Uses a dedicated -DSATIN_PROFILE=ON build tree (default
# <repo>/build-profile, override with PROFILE_BUILD_DIR) because -pg adds
# a counting prologue to every function: numbers from a profiled binary
# are NOT comparable to the plain build's, so the two must never share a
# build dir. The tree is configured/built here on first use — unlike
# run_benches.sh this script owns its build, since nothing else wants one.
#
#   scripts/profile_bench.sh                          # default bench set
#   scripts/profile_bench.sh bench_race_analysis      # one bench
#   BENCH_ARGS='--ramp-s=20' scripts/profile_bench.sh bench_race_analysis
#   TOP_N=40 scripts/profile_bench.sh                 # longer summary
#
# Output: <repo>/PROFILE_<bench>.txt — gprof flat profile (top $TOP_N
# rows) + the exact command line and build flags that produced it.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${PROFILE_BUILD_DIR:-$repo/build-profile}"
top_n="${TOP_N:-25}"
bench_args="${BENCH_ARGS:-}"

if ! command -v gprof >/dev/null 2>&1; then
  echo "profile_bench.sh: gprof not found on PATH" >&2
  exit 1
fi

benches=("$@")
if [ "${#benches[@]}" -eq 0 ]; then
  benches=(bench_race_analysis bench_satin_detection)
fi

if [ ! -f "$build/CMakeCache.txt" ]; then
  echo "== configuring profile build: $build" >&2
  cmake -B "$build" -S "$repo" -DSATIN_PROFILE=ON >/dev/null
fi
if ! grep -q '^SATIN_PROFILE:BOOL=ON$' "$build/CMakeCache.txt"; then
  echo "profile_bench.sh: $build was not configured with -DSATIN_PROFILE=ON;" >&2
  echo "delete it or point PROFILE_BUILD_DIR elsewhere" >&2
  exit 1
fi

targets=()
for b in "${benches[@]}"; do targets+=("$(basename "$b")"); done
echo "== building: ${targets[*]}" >&2
cmake --build "$build" -j "$(nproc)" --target "${targets[@]}" >/dev/null

for b in "${benches[@]}"; do
  name="$(basename "$b")"
  exe="$build/bench/$name"
  [ -x "$exe" ] || { echo "skip $name (not built: $exe)" >&2; continue; }
  # gmon.out lands in the CWD of the profiled process; use a scratch dir
  # so parallel invocations and stale dumps can't mix.
  scratch="$(mktemp -d)"
  echo "== profiling $name $bench_args" >&2
  # shellcheck disable=SC2086  # BENCH_ARGS is intentionally word-split
  (cd "$scratch" && "$exe" $bench_args >/dev/null 2>&1)
  if [ ! -s "$scratch/gmon.out" ]; then
    echo "profile_bench.sh: $name produced no gmon.out (crashed before exit?)" >&2
    rm -rf "$scratch"
    exit 1
  fi
  out="$repo/PROFILE_$name.txt"
  {
    echo "# gprof flat profile: $name $bench_args"
    echo "# build: -DSATIN_PROFILE=ON (-pg -fno-omit-frame-pointer), $build"
    echo "# NOTE: -pg instruments every function; these times rank hot"
    echo "# spots but are not comparable to the plain build's wall clock."
    gprof -b -p "$exe" "$scratch/gmon.out" | head -n "$((top_n + 5))"
  } >"$out"
  rm -rf "$scratch"
  echo "   wrote $out" >&2
done
