#include "campaign/supervisor.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <set>
#include <thread>

#include <poll.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "campaign/trial.h"
#include "campaign/worker.h"
#include "obs/flight/audit.h"
#include "obs/flight/recorder.h"
#include "obs/metrics.h"
#include "sim/fork.h"

namespace satin::campaign {

namespace {

// A slot is retired (pool shrink) after this many consecutive crashes:
// at that point the crashes are systematic, not bad luck, and respawning
// would burn every trial's retry budget on a doomed slot.
constexpr int kSlotCrashLimit = 3;
constexpr int kBackoffBaseMs = 25;
constexpr int kBackoffCapMs = 500;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct WorkerSlot {
  pid_t pid = -1;
  int cmd_fd = -1;  // supervisor writes commands here
  int res_fd = -1;  // supervisor reads heartbeats/results here
  std::deque<std::uint64_t> inflight;  // dispatch order
  std::string read_buf;
  double last_activity = 0.0;
  int consecutive_crashes = 0;
  bool alive = false;
  bool retired = false;
  bool quitting = false;  // sent "Q", EOF is expected, not a crash
};

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

std::string format_double17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string format_campaign_stats(
    const CampaignSpec& spec, const CampaignOutcome& outcome,
    const std::map<std::uint64_t, TrialResult>& completed) {
  std::string out = "{\n";
  char buf[192];
  out += "  \"schema\": \"satin-campaign-stats/1\",\n";
  out += "  \"name\": \"" + spec.name + "\",\n";
  std::snprintf(buf, sizeof(buf), "  \"spec_hash\": \"%016" PRIx64 "\",\n",
                spec.content_hash());
  out += buf;
  std::snprintf(buf, sizeof(buf), "  \"trials\": %" PRIu64 ",\n", spec.trials);
  out += buf;
  std::snprintf(buf, sizeof(buf), "  \"root_seed\": %" PRIu64 ",\n",
                spec.root_seed);
  out += buf;
  std::snprintf(buf, sizeof(buf), "  \"completed\": %zu,\n", completed.size());
  out += buf;
  out += std::string("  \"degraded\": ") +
         (outcome.degraded ? "true" : "false") + ",\n";
  out += "  \"failed_trials\": [";
  for (std::size_t i = 0; i < outcome.failed_trials.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(outcome.failed_trials[i]);
  }
  out += "],\n";

  // Aggregates fold in index order (std::map iteration), so any schedule
  // that completed the same trial set writes the same bytes.
  std::uint64_t rounds = 0, alarms = 0, cycles = 0, tar = 0, taa = 0;
  std::uint64_t stays = 0, det = 0, fp = 0, fn = 0, ev = 0, rearms = 0;
  std::uint64_t conf = 0, trans = 0, benign = 0, wdog = 0, sretry = 0;
  std::uint64_t injected = 0, always_caught = 0;
  double sim_seconds = 0.0, gap_sum = 0.0;
  std::uint64_t gap_count = 0;
  for (const auto& [index, r] : completed) {
    (void)index;
    const scenario::DuelReport& d = r.report;
    rounds += d.rounds;
    alarms += d.alarms;
    cycles += d.full_cycles;
    tar += d.target_area_rounds;
    taa += d.target_area_alarms;
    stays += d.secure_stays;
    det += d.prober_detections;
    fp += d.false_positives;
    fn += d.false_negatives;
    ev += d.evasions_started;
    rearms += d.rearms;
    conf += d.confirmed_alarms;
    trans += d.transient_alarms;
    benign += d.benign_confirmed_alarms;
    wdog += d.watchdog_fires;
    sretry += d.scan_retries;
    injected += r.faults_injected;
    if (d.satin_always_caught()) ++always_caught;
    sim_seconds += d.sim_seconds;
    if (d.avg_target_gap_s > 0.0) {
      gap_sum += d.avg_target_gap_s;
      ++gap_count;
    }
  }
  out += "  \"aggregate\": {\n";
  const auto field_u64 = [&out](const char* key, std::uint64_t v,
                                bool last = false) {
    char line[96];
    std::snprintf(line, sizeof(line), "    \"%s\": %" PRIu64 "%s\n", key, v,
                  last ? "" : ",");
    out += line;
  };
  field_u64("rounds", rounds);
  field_u64("alarms", alarms);
  field_u64("full_cycles", cycles);
  field_u64("target_area_rounds", tar);
  field_u64("target_area_alarms", taa);
  field_u64("secure_stays", stays);
  field_u64("prober_detections", det);
  field_u64("false_positives", fp);
  field_u64("false_negatives", fn);
  field_u64("evasions_started", ev);
  field_u64("rearms", rearms);
  field_u64("confirmed_alarms", conf);
  field_u64("transient_alarms", trans);
  field_u64("benign_confirmed_alarms", benign);
  field_u64("watchdog_fires", wdog);
  field_u64("scan_retries", sretry);
  field_u64("faults_injected", injected);
  field_u64("always_caught_trials", always_caught);
  out += "    \"sim_seconds_total\": " + format_double17(sim_seconds) + ",\n";
  out += "    \"avg_target_gap_s_mean\": " +
         format_double17(gap_count > 0
                             ? gap_sum / static_cast<double>(gap_count)
                             : 0.0) +
         "\n  },\n";

  out += "  \"per_trial\": [\n";
  bool first = true;
  for (const auto& [index, r] : completed) {
    if (!first) out += ",\n";
    first = false;
    const scenario::DuelReport& d = r.report;
    std::snprintf(buf, sizeof(buf),
                  "    {\"i\": %" PRIu64 ", \"seed\": \"%016" PRIx64
                  "\", \"rounds\": %" PRIu64 ", \"taa\": %" PRIu64
                  ", \"tar\": %" PRIu64 ", \"conf\": %" PRIu64
                  ", \"trans\": %" PRIu64 ", \"inj\": %" PRIu64,
                  index, r.seed, d.rounds, d.target_area_alarms,
                  d.target_area_rounds, d.confirmed_alarms, d.transient_alarms,
                  r.faults_injected);
    out += buf;
    out += ", \"sim_s\": " + format_double17(d.sim_seconds) + "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

bool write_campaign_stats(const std::string& path, const std::string& body,
                          std::string* error) {
  // The atomic temp+rename dance would silently REPLACE a device node or
  // socket (`--out=/dev/null` turning /dev/null into a regular file is
  // the classic casualty) — refuse instead.
  struct stat st{};
  if (::stat(path.c_str(), &st) == 0 && !S_ISREG(st.st_mode)) {
    if (error != nullptr) {
      *error = path + ": refusing to replace non-regular file";
    }
    return false;
  }
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) *error = tmp + ": cannot open for write";
    return false;
  }
  const bool write_ok =
      std::fwrite(body.data(), 1, body.size(), f) == body.size();
  const bool flush_ok = std::fflush(f) == 0 && fsync(fileno(f)) == 0;
  const bool close_ok = std::fclose(f) == 0;
  if (!write_ok || !flush_ok || !close_ok) {
    std::remove(tmp.c_str());
    if (error != nullptr) *error = tmp + ": write failed";
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    if (error != nullptr) *error = path + ": rename failed";
    return false;
  }
  return true;
}

namespace {

class Supervisor {
 public:
  Supervisor(const CampaignSpec& spec, const CampaignOptions& options)
      : spec_(spec), options_(options) {
    jobs_ = options.jobs > 0 ? options.jobs : spec.jobs;
    shard_size_ = options.shard_size > 0 ? options.shard_size
                                         : spec.shard_size;
    timeout_s_ = options.trial_timeout_s > 0.0 ? options.trial_timeout_s
                                               : spec.trial_timeout_s;
    max_retries_ = options.max_retries >= 0 ? options.max_retries
                                            : spec.max_retries;
    branches_ = options.branches >= 0 ? options.branches : spec.branches;
    chaos_kill_armed_ = options.chaos_kill_trial >= 0;
    chaos_hang_armed_ = options.chaos_hang_trial >= 0;
  }

  CampaignOutcome run() {
    CampaignOutcome outcome;
    outcome.trials = spec_.trials;

    if (options_.journal_path.empty()) {
      outcome.error = "no journal path";
      return outcome;
    }
    if (options_.require_existing_journal) {
      struct stat st{};
      if (::stat(options_.journal_path.c_str(), &st) != 0) {
        outcome.error = options_.journal_path +
                        ": no journal to resume (use `run` to start)";
        return outcome;
      }
    }

    std::string error;
    if (!journal_.open(options_.journal_path, spec_, &error)) {
      outcome.error = error;
      return outcome;
    }
    outcome.resumed = journal_.completed().size();
    outcome.quarantined = journal_.quarantined();

    for (std::uint64_t i = 0; i < spec_.trials; ++i) {
      if (journal_.completed().count(i) == 0) pending_.push_back(i);
    }

    // Per-trial metrics snapshots are a few KB, so they are ALWAYS
    // recorded: a resume started with --metrics can then merge trials
    // completed by an earlier metrics-less run. Flight recordings can be
    // arbitrarily large, so those only exist when the session asks.
    want_metrics_ = true;
    want_flight_ = obs::flight() != nullptr;
    artifacts_dir_ = options_.journal_path + ".d";
    if (::mkdir(artifacts_dir_.c_str(), 0777) != 0 && errno != EEXIST) {
      outcome.error = artifacts_dir_ + ": cannot create artifacts dir";
      return outcome;
    }

    if (branches_ > 0) {
      // Fork-branch backend: guard the contracts the worker pool carries
      // implicitly before replacing it.
      if (spec_.fork_prefix > 0.0) {
        outcome.error =
            "fork_prefix: campaign trials must stay pure functions of "
            "(spec, index); a shared warm prefix is not supported here";
        return outcome;
      }
      if (options_.chaos_kill_trial >= 0 || options_.chaos_hang_trial >= 0 ||
          options_.chaos_supervisor_kill_after > 0) {
        outcome.error =
            "chaos knobs drive the persistent worker pool; use the fork "
            "server's own chaos hooks (sim/fork.h) instead of branches";
        return outcome;
      }
    }

    if (!pending_.empty()) {
      // Writing into a dead worker's pipe must surface as EPIPE on the
      // write, not kill the supervisor.
      signal(SIGPIPE, SIG_IGN);
      if (branches_ > 0) {
        run_fork_backend(outcome);
      } else {
        const int jobs = static_cast<int>(std::min<std::uint64_t>(
            static_cast<std::uint64_t>(jobs_), pending_.size()));
        slots_.resize(static_cast<std::size_t>(jobs));
        for (WorkerSlot& slot : slots_) spawn(slot, outcome);
        event_loop(outcome);
        shutdown_workers();
      }
    }

    // Permanently failed trials (retries exhausted or pool emptied).
    for (std::uint64_t idx : failed_) outcome.failed_trials.push_back(idx);
    for (std::uint64_t idx : pending_) outcome.failed_trials.push_back(idx);
    std::sort(outcome.failed_trials.begin(), outcome.failed_trials.end());
    outcome.degraded = !outcome.failed_trials.empty();
    outcome.completed = journal_.completed().size();

    merge_artifacts(outcome);
    publish_metrics(outcome);

    if (!options_.stats_path.empty()) {
      const std::string body =
          format_campaign_stats(spec_, outcome, journal_.completed());
      if (!write_campaign_stats(options_.stats_path, body, &error)) {
        outcome.error = error;
        return outcome;
      }
    }
    outcome.ok = true;
    return outcome;
  }

 private:
  void spawn(WorkerSlot& slot, CampaignOutcome& outcome) {
    int cmd_pipe[2];  // supervisor -> worker
    int res_pipe[2];  // worker -> supervisor
    if (::pipe(cmd_pipe) != 0) return;
    if (::pipe(res_pipe) != 0) {
      ::close(cmd_pipe[0]);
      ::close(cmd_pipe[1]);
      return;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(cmd_pipe[0]);
      ::close(cmd_pipe[1]);
      ::close(res_pipe[0]);
      ::close(res_pipe[1]);
      return;
    }
    if (pid == 0) {
      // Child: close the supervisor ends (and every other slot's fds so
      // one worker's death can't be masked by a sibling holding pipes).
      ::close(cmd_pipe[1]);
      ::close(res_pipe[0]);
      for (const WorkerSlot& other : slots_) {
        if (other.cmd_fd >= 0) ::close(other.cmd_fd);
        if (other.res_fd >= 0) ::close(other.res_fd);
      }
      WorkerContext ctx;
      ctx.spec = &spec_;
      ctx.cmd_fd = cmd_pipe[0];
      ctx.res_fd = res_pipe[1];
      ctx.artifacts_dir = artifacts_dir_;
      ctx.want_metrics = want_metrics_;
      ctx.want_flight = want_flight_;
      ctx.flight_ring = options_.flight_ring;
      worker_main(ctx);  // never returns
    }
    ::close(cmd_pipe[0]);
    ::close(res_pipe[1]);
    slot.pid = pid;
    slot.cmd_fd = cmd_pipe[1];
    slot.res_fd = res_pipe[0];
    slot.alive = true;
    slot.quitting = false;
    slot.read_buf.clear();
    slot.inflight.clear();
    slot.last_activity = now_seconds();
    ++outcome.workers_spawned;
  }

  bool send_command(WorkerSlot& slot, const std::string& line) {
    const char* p = line.data();
    std::size_t left = line.size();
    while (left > 0) {
      const ssize_t n = ::write(slot.cmd_fd, p, left);
      if (n <= 0) return false;
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    return true;
  }

  // Tops a worker up to shard_size in-flight trials, in global index
  // order. Dispatch order is deterministic; completion order is racy;
  // nothing downstream reads completion order.
  void top_up(WorkerSlot& slot, CampaignOutcome& outcome) {
    while (slot.alive && !slot.retired &&
           slot.inflight.size() < shard_size_ && !pending_.empty()) {
      const std::uint64_t idx = pending_.front();
      std::string cmd = "T " + std::to_string(idx);
      if (chaos_kill_armed_ &&
          idx == static_cast<std::uint64_t>(options_.chaos_kill_trial)) {
        cmd += " kill";
        chaos_kill_armed_ = false;  // first dispatch only: the retry runs
      }
      if (chaos_hang_armed_ &&
          idx == static_cast<std::uint64_t>(options_.chaos_hang_trial)) {
        cmd += " hang";
        chaos_hang_armed_ = false;
      }
      if (!send_command(slot, cmd + "\n")) {
        // Pipe already broken; the poll loop will reap the crash.
        return;
      }
      pending_.pop_front();
      slot.inflight.push_back(idx);
      if (was_dispatched_.count(idx) != 0) ++outcome.retries;
      was_dispatched_.insert(idx);
    }
  }

  void handle_crash(WorkerSlot& slot, CampaignOutcome& outcome,
                    bool timed_out) {
    slot.alive = false;
    close_fd(slot.cmd_fd);
    close_fd(slot.res_fd);
    if (slot.pid > 0) {
      if (timed_out) ::kill(slot.pid, SIGKILL);
      int status = 0;
      ::waitpid(slot.pid, &status, 0);
      slot.pid = -1;
    }
    ++outcome.worker_crashes;
    if (timed_out) ++outcome.worker_timeouts;
    ++slot.consecutive_crashes;

    // Return in-flight trials to the FRONT of the queue, preserving
    // index order, with retry budgets decremented.
    outcome.redispatches += slot.inflight.size();
    for (auto it = slot.inflight.rbegin(); it != slot.inflight.rend(); ++it) {
      const std::uint64_t idx = *it;
      if (++retry_count_[idx] > max_retries_) {
        failed_.insert(idx);
        std::fprintf(stderr,
                     "campaign: trial %" PRIu64 " failed %d times, giving up\n",
                     idx, max_retries_ + 1);
      } else {
        pending_.push_front(idx);
      }
    }
    slot.inflight.clear();

    if (slot.consecutive_crashes >= kSlotCrashLimit) {
      slot.retired = true;
      ++outcome.pool_shrinks;
      std::fprintf(stderr,
                   "campaign: worker slot retired after %d consecutive "
                   "crashes (pool shrinks to %zu)\n",
                   slot.consecutive_crashes, live_slots());
      return;
    }
    // Exponential backoff before the respawn: a crash loop with a
    // systematic cause shouldn't melt the host while it burns its budget.
    const int shift = std::min(slot.consecutive_crashes - 1, 8);
    const int backoff_ms =
        std::min(kBackoffCapMs, kBackoffBaseMs << shift);
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    spawn(slot, outcome);
  }

  std::size_t live_slots() const {
    std::size_t n = 0;
    for (const WorkerSlot& s : slots_) {
      if (s.alive && !s.retired) ++n;
    }
    return n;
  }

  bool work_remains() const {
    if (!pending_.empty()) return true;
    for (const WorkerSlot& s : slots_) {
      if (!s.inflight.empty()) return true;
    }
    return false;
  }

  void handle_line(WorkerSlot& slot, const std::string& line,
                   CampaignOutcome& outcome) {
    slot.last_activity = now_seconds();
    if (line.compare(0, 2, "B ") == 0) return;  // heartbeat: trial started
    TrialResult result;
    std::string why;
    if (!decode_trial_record(line, result, &why)) {
      // A worker sending garbage is a crash in slow motion.
      std::fprintf(stderr, "campaign: bad record from worker: %s\n",
                   why.c_str());
      handle_crash(slot, outcome, /*timed_out=*/false);
      return;
    }
    if (slot.inflight.empty() || slot.inflight.front() != result.index) {
      std::fprintf(stderr, "campaign: out-of-order record for trial %" PRIu64
                           "\n", result.index);
      handle_crash(slot, outcome, /*timed_out=*/false);
      return;
    }
    slot.inflight.pop_front();
    slot.consecutive_crashes = 0;
    if (journal_.completed().count(result.index) == 0) {
      if (!journal_.append(result)) {
        std::fprintf(stderr, "campaign: journal append failed for trial %"
                             PRIu64 "\n", result.index);
        failed_.insert(result.index);
        return;
      }
      if (options_.chaos_supervisor_kill_after > 0 &&
          journal_.appended() >= options_.chaos_supervisor_kill_after) {
        // Chaos: die exactly like a power cut — after the fsync'd append,
        // before anything else. The resume must finish the campaign
        // byte-identically.
        raise(SIGKILL);
      }
    }
  }

  void event_loop(CampaignOutcome& outcome) {
    while (work_remains()) {
      if (live_slots() == 0) {
        // Pool died entirely. Whatever is left becomes the degraded set.
        for (std::uint64_t idx : pending_) failed_.insert(idx);
        pending_.clear();
        break;
      }
      for (WorkerSlot& slot : slots_) top_up(slot, outcome);

      std::vector<pollfd> fds;
      std::vector<std::size_t> fd_slot;
      double next_deadline = now_seconds() + 60.0;
      for (std::size_t i = 0; i < slots_.size(); ++i) {
        WorkerSlot& slot = slots_[i];
        if (!slot.alive) continue;
        fds.push_back(pollfd{slot.res_fd, POLLIN, 0});
        fd_slot.push_back(i);
        if (!slot.inflight.empty()) {
          next_deadline =
              std::min(next_deadline, slot.last_activity + timeout_s_);
        }
      }
      if (fds.empty()) continue;
      const double wait_s = next_deadline - now_seconds();
      const int timeout_ms =
          wait_s <= 0.0 ? 0
                        : static_cast<int>(std::min(wait_s * 1000.0, 60000.0)) +
                              10;
      const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
      if (ready < 0 && errno != EINTR) break;

      for (std::size_t k = 0; k < fds.size(); ++k) {
        if (ready <= 0) break;
        if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        WorkerSlot& slot = slots_[fd_slot[k]];
        if (!slot.alive) continue;  // crashed earlier in this sweep
        char chunk[4096];
        const ssize_t n = ::read(slot.res_fd, chunk, sizeof(chunk));
        if (n <= 0) {
          handle_crash(slot, outcome, /*timed_out=*/false);
          continue;
        }
        slot.read_buf.append(chunk, static_cast<std::size_t>(n));
        std::size_t nl;
        while (slot.alive &&
               (nl = slot.read_buf.find('\n')) != std::string::npos) {
          const std::string line = slot.read_buf.substr(0, nl);
          slot.read_buf.erase(0, nl + 1);
          handle_line(slot, line, outcome);
        }
      }

      // Wedge detection: a worker with in-flight work and no heartbeat or
      // result within the timeout is killed and treated as crashed.
      const double now = now_seconds();
      for (WorkerSlot& slot : slots_) {
        if (slot.alive && !slot.inflight.empty() &&
            now - slot.last_activity > timeout_s_) {
          std::fprintf(stderr,
                       "campaign: worker pid %d timed out on trial %" PRIu64
                       " after %.1fs\n",
                       static_cast<int>(slot.pid), slot.inflight.front(),
                       timeout_s_);
          handle_crash(slot, outcome, /*timed_out=*/true);
        }
      }
    }
  }

  void shutdown_workers() {
    for (WorkerSlot& slot : slots_) {
      if (!slot.alive) continue;
      slot.quitting = true;
      send_command(slot, "Q\n");
      close_fd(slot.cmd_fd);
    }
    for (WorkerSlot& slot : slots_) {
      if (slot.pid > 0) {
        int status = 0;
        ::waitpid(slot.pid, &status, 0);
        slot.pid = -1;
      }
      close_fd(slot.cmd_fd);
      close_fd(slot.res_fd);
      slot.alive = false;
    }
  }

  // COW fork backend (spec/option `branches` > 0): pending trials run as
  // fork()ed branch groups through sim::ForkServer instead of the
  // persistent worker pool. Each child is still exactly
  // run_campaign_trial(spec, index) under fresh per-trial sinks, its
  // artifacts land directly under the journal's .d dir with the names
  // merge_artifacts() expects, and the journal appends in strict index
  // order within each group — so journal, stats, metrics and flight
  // output are byte-identical to any worker-pool schedule. The fork
  // server supplies the crash/wedge/torn-record retry ladder; its
  // counters map onto the same volatile campaign.* gauges.
  void run_fork_backend(CampaignOutcome& outcome) {
    std::vector<std::uint64_t> order(pending_.begin(), pending_.end());
    pending_.clear();
    const auto group_size = static_cast<std::size_t>(branches_);
    for (std::size_t base = 0; base < order.size(); base += group_size) {
      const std::size_t count = std::min(group_size, order.size() - base);
      const std::uint64_t* group = order.data() + base;
      sim::ForkServerOptions fork_options;
      fork_options.jobs = jobs_;
      fork_options.timeout_s = timeout_s_;
      fork_options.max_retries = max_retries_;
      fork_options.flight_ring = options_.flight_ring;
      fork_options.always_metrics = want_metrics_;
      fork_options.keep_artifacts = true;
      fork_options.metrics_path = [this, group](std::size_t branch) {
        return trial_metrics_path(artifacts_dir_, group[branch]);
      };
      fork_options.flight_path = [this, group](std::size_t branch) {
        return trial_flight_path(artifacts_dir_, group[branch]);
      };
      sim::ForkServer server(fork_options);
      const std::vector<sim::ForkOutcome> results =
          server.run(count, [this, group](std::size_t branch) {
            return encode_trial_record(
                run_campaign_trial(spec_, group[branch]));
          });
      outcome.workers_spawned += server.forks();
      outcome.worker_crashes += server.crashes();
      outcome.worker_timeouts += server.timeouts();
      outcome.retries += server.retries();
      for (std::size_t branch = 0; branch < count; ++branch) {
        const std::uint64_t index = group[branch];
        if (!results[branch].ok) {
          std::fprintf(stderr, "campaign: %s\n",
                       results[branch].error.c_str());
          failed_.insert(index);
          continue;
        }
        TrialResult result;
        std::string why;
        if (!decode_trial_record(results[branch].payload, result, &why) ||
            result.index != index) {
          std::fprintf(stderr,
                       "campaign: bad branch record for trial %" PRIu64
                       ": %s\n",
                       index, why.c_str());
          failed_.insert(index);
          continue;
        }
        if (journal_.completed().count(index) == 0 &&
            !journal_.append(result)) {
          std::fprintf(stderr,
                       "campaign: journal append failed for trial %" PRIu64
                       "\n",
                       index);
          failed_.insert(index);
        }
      }
    }
  }

  // Folds per-trial obs artifacts into the calling thread's session sinks
  // in strict index order — the cross-process twin of TrialRunner's
  // submission-order merge, and the reason a campaign's --metrics and
  // --flight outputs are byte-identical for any schedule.
  void merge_artifacts(CampaignOutcome& outcome) {
    (void)outcome;
    obs::MetricsRegistry* session_metrics = obs::metrics();
    obs::FlightRecorder* session_flight = obs::flight();
    if ((session_metrics == nullptr && session_flight == nullptr) ||
        artifacts_dir_.empty()) {
      return;
    }
    const sim::TrialSeedSeq seeds(spec_.root_seed);
    for (const auto& [index, result] : journal_.completed()) {
      (void)result;
      if (session_metrics != nullptr) {
        const std::string path = trial_metrics_path(artifacts_dir_, index);
        std::string error;
        if (!session_metrics->load_merge_binary(path, &error)) {
          std::fprintf(stderr, "campaign: %s (metrics gap)\n", error.c_str());
          ++artifacts_missing_;
        }
      }
      if (session_flight != nullptr) {
        const std::string path = trial_flight_path(artifacts_dir_, index);
        obs::FlightLog log;
        std::string error;
        if (!obs::read_flight_log(path, log, &error)) {
          std::fprintf(stderr, "campaign: %s (flight gap)\n", error.c_str());
          ++artifacts_missing_;
          continue;
        }
        // Same convention as TrialRunner: the parent emits the trial
        // marker, then replays the trial's stream.
        session_flight->record(obs::FlightKind::kTrialBegin, sim::Time::zero(),
                               index, static_cast<int>(index),
                               seeds.seed_for(index));
        obs::replay_flight_log(log, *session_flight);
      }
    }
  }

  void publish_metrics(const CampaignOutcome& outcome) {
    obs::MetricsRegistry* registry = obs::metrics();
    if (registry == nullptr) return;
    // Deterministic facts of the completed campaign: counters, part of
    // the stable snapshot.
    registry->counter("campaign.trials").inc(outcome.trials);
    registry->counter("campaign.trials_completed").inc(outcome.completed);
    registry->counter("campaign.trials_failed")
        .inc(outcome.failed_trials.size());
    // Runtime history (how bumpy the road was): volatile gauges, omitted
    // by --metrics-stable so crash-identity diffs stay byte-exact.
    const auto vgauge = [registry](const char* name, double v) {
      obs::Gauge& g = registry->gauge(name);
      g.set(v);
      g.mark_volatile();
    };
    vgauge("campaign.retries", static_cast<double>(outcome.retries));
    vgauge("campaign.redispatches", static_cast<double>(outcome.redispatches));
    vgauge("campaign.worker_crashes",
           static_cast<double>(outcome.worker_crashes));
    vgauge("campaign.worker_timeouts",
           static_cast<double>(outcome.worker_timeouts));
    vgauge("campaign.workers_spawned",
           static_cast<double>(outcome.workers_spawned));
    vgauge("campaign.pool_shrinks", static_cast<double>(outcome.pool_shrinks));
    vgauge("campaign.trials_resumed", static_cast<double>(outcome.resumed));
    vgauge("campaign.journal_quarantined",
           static_cast<double>(outcome.quarantined));
    vgauge("campaign.artifacts_missing",
           static_cast<double>(artifacts_missing_));
  }

  const CampaignSpec& spec_;
  const CampaignOptions& options_;
  int jobs_ = 1;
  std::uint64_t shard_size_ = 1;
  double timeout_s_ = 120.0;
  int max_retries_ = 2;
  int branches_ = 0;
  bool chaos_kill_armed_ = false;
  bool chaos_hang_armed_ = false;

  CampaignJournal journal_;
  std::deque<std::uint64_t> pending_;
  std::vector<WorkerSlot> slots_;
  std::map<std::uint64_t, int> retry_count_;
  std::set<std::uint64_t> was_dispatched_;
  std::set<std::uint64_t> failed_;
  std::string artifacts_dir_;
  bool want_metrics_ = false;
  bool want_flight_ = false;
  std::uint64_t artifacts_missing_ = 0;
};

}  // namespace

CampaignOutcome run_campaign(const CampaignSpec& spec,
                             const CampaignOptions& options) {
  Supervisor supervisor(spec, options);
  return supervisor.run();
}

}  // namespace satin::campaign
