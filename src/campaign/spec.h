// Declarative campaign specs: a fleet of simulated devices as one file.
//
// A campaign is N independent duel trials — platform config, SATIN knobs,
// attacker mix, fault plan, trial count, root seed — described as JSON and
// executed by the supervisor/worker runtime (campaign/supervisor.h).
// Validation is fail-fast: every type mismatch, out-of-range value,
// unknown key and malformed fault-plan string dies at parse time with a
// `file:line:col` diagnostic, never mid-campaign.
//
// Determinism contract: a trial's entire input is (spec, trial index).
// Per-trial seeds come from sim::TrialSeedSeq(root_seed), so any worker
// count, shard layout, crash/retry history or resume point replays a
// trial bit-identically — the property every crash-identity gate and the
// journal's resume path rely on.
//
//   {
//     "name": "storm-sweep",
//     "trials": 64,
//     "root_seed": 99,
//     "jobs": 4,
//     "shard_size": 2,
//     "batch": 8,
//     "trial_timeout_s": 120.0,
//     "max_retries": 2,
//     "platform": {"num_little": 4, "num_big": 2, "seed": 5936453},
//     "satin":    {"tgoal_s": 57.0, "randomize_wake": true,
//                  "resilience": {"watchdog": true, "max_scan_retries": 2}},
//     "duel":     {"rounds_target": 57},
//     "attacker": {"rearm_delay_s": 0.02, "threshold_s": 1.8e-3},
//     "faults":   "seed=9,bitflip@10s+60s:p=0.12",
//     "faults_reseed": true
//   }
#pragma once

#include <cstdint>
#include <string>

#include "campaign/json.h"
#include "scenario/experiments.h"

namespace satin::campaign {

struct CampaignSpec {
  std::string name = "campaign";
  std::uint64_t trials = 1;
  std::uint64_t root_seed = 0x5A71A57ull;
  int jobs = 1;                   // worker processes
  std::uint64_t shard_size = 1;   // trial indices per dispatch batch
  double trial_timeout_s = 120.0; // host wall time before a trial is killed
  int max_retries = 2;            // re-dispatches per trial before giving up
  // Draw-pipeline batch knob (--batch=K semantics): > 1 runs every trial
  // on sim::DrawMode::kBatched block-refilled streams. Like jobs /
  // shard_size, a pure runtime knob — batched draws bit-match the scalar
  // oracle, so results are byte-identical for any value and it is NOT
  // folded into content_hash() (a resume may legally change it).
  int batch = 1;
  // COW fork branch backend (sim/fork.h): > 0 replaces the persistent
  // worker pool with fork()ed branch groups of this size, one child per
  // trial. Every trial is still run_campaign_trial(spec, index) — a pure
  // runtime knob like jobs/batch, so it is NOT folded into content_hash()
  // and the journal/stats output is byte-identical for any value.
  int branches = 0;
  // Warm-prefix seconds for fork branching. The campaign REFUSES nonzero
  // values at run time: the journal's crash-identity contract requires a
  // trial to be a pure function of (spec, index), and a shared warm
  // prefix would make results depend on group layout. The key exists so
  // specs spell the knob uniformly with the sweep API; also excluded
  // from content_hash().
  double fork_prefix = 0.0;

  scenario::ScenarioConfig scenario;
  // True when the spec pinned platform.seed: trial 0 keeps it (the
  // run-of-record convention benches use); other trials always derive
  // their platform seed from (root_seed, index).
  bool pin_first_platform_seed = false;

  scenario::DuelConfig duel;

  // Fault plan spec string (src/fault/plan.h grammar); validated at parse
  // time, armed per trial. Empty = fault-free.
  std::string faults;
  // Derive a per-trial injector seed from (root_seed, index) instead of
  // running the same storm in every trial.
  bool faults_reseed = false;

  // FNV-1a over the canonical spec content; the journal stores it so a
  // resume against an edited spec fails fast instead of mixing results.
  std::uint64_t content_hash() const;
};

// Parses and validates a spec document; throws JsonError with positioned
// diagnostics on any problem. `source` labels errors (usually the path).
CampaignSpec parse_campaign_spec(const std::string& text,
                                 const std::string& source);
CampaignSpec load_campaign_spec(const std::string& path);

}  // namespace satin::campaign
