#include "campaign/trial.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "fault/plan.h"
#include "sim/seed_seq.h"

namespace satin::campaign {

namespace {

std::uint64_t fnv1a(const char* data, std::size_t len) {
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t double_bits(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double bits_double(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

void append_field(std::string& out, const char* key, std::uint64_t value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), " %s=%" PRIu64, key, value);
  out += buf;
}

void append_hex_field(std::string& out, const char* key, std::uint64_t value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), " %s=%016" PRIx64, key, value);
  out += buf;
}

void append_int_field(std::string& out, const char* key, std::int64_t value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), " %s=%" PRId64, key, value);
  out += buf;
}

// Field-order-driven decoder: consumes " key=value" tokens strictly in
// the order the encoder wrote them, so any reordering, duplication or
// omission — not just value corruption — fails the decode.
class FieldReader {
 public:
  explicit FieldReader(const std::string& body) : body_(body) {}

  bool take_u64(const char* key, std::uint64_t& out) {
    std::string value;
    if (!take(key, value)) return false;
    char* end = nullptr;
    out = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0') {
      return fail(std::string("malformed value for '") + key + "'");
    }
    return true;
  }

  bool take_i64(const char* key, std::int64_t& out) {
    std::string value;
    if (!take(key, value)) return false;
    char* end = nullptr;
    out = std::strtoll(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0') {
      return fail(std::string("malformed value for '") + key + "'");
    }
    return true;
  }

  bool take_hex64(const char* key, std::uint64_t& out) {
    std::string value;
    if (!take(key, value)) return false;
    char* end = nullptr;
    out = std::strtoull(value.c_str(), &end, 16);
    if (end == value.c_str() || *end != '\0') {
      return fail(std::string("malformed value for '") + key + "'");
    }
    return true;
  }

  bool at_end() const { return pos_ == body_.size(); }
  const std::string& error() const { return error_; }

 private:
  bool take(const char* key, std::string& value) {
    if (!error_.empty()) return false;
    if (pos_ >= body_.size() || body_[pos_] != ' ') {
      return fail(std::string("expected field '") + key + "'");
    }
    ++pos_;
    const std::size_t keylen = std::strlen(key);
    if (body_.compare(pos_, keylen, key) != 0 ||
        pos_ + keylen >= body_.size() || body_[pos_ + keylen] != '=') {
      return fail(std::string("expected field '") + key + "'");
    }
    pos_ += keylen + 1;
    const std::size_t end = body_.find(' ', pos_);
    const std::size_t stop = end == std::string::npos ? body_.size() : end;
    value = body_.substr(pos_, stop - pos_);
    pos_ = stop;
    if (value.empty()) {
      return fail(std::string("empty value for '") + key + "'");
    }
    return true;
  }

  bool fail(const std::string& message) {
    if (error_.empty()) error_ = message;
    return false;
  }

  const std::string& body_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::string encode_trial_record(const TrialResult& r) {
  std::string body = "R";
  append_field(body, "i", r.index);
  append_hex_field(body, "seed", r.seed);
  const scenario::DuelReport& d = r.report;
  append_field(body, "rounds", d.rounds);
  append_field(body, "alarms", d.alarms);
  append_field(body, "cycles", d.full_cycles);
  append_int_field(body, "area", d.target_area);
  append_field(body, "tar", d.target_area_rounds);
  append_field(body, "taa", d.target_area_alarms);
  append_hex_field(body, "gap", double_bits(d.avg_target_gap_s));
  append_field(body, "stays", d.secure_stays);
  append_field(body, "det", d.prober_detections);
  append_field(body, "fp", d.false_positives);
  append_field(body, "fn", d.false_negatives);
  append_field(body, "ev", d.evasions_started);
  append_field(body, "rearms", d.rearms);
  append_hex_field(body, "sims", double_bits(d.sim_seconds));
  append_field(body, "conf", d.confirmed_alarms);
  append_field(body, "trans", d.transient_alarms);
  append_field(body, "benign", d.benign_confirmed_alarms);
  append_field(body, "wdog", d.watchdog_fires);
  append_field(body, "sretry", d.scan_retries);
  append_field(body, "inj", r.faults_injected);
  append_hex_field(body, "crc", fnv1a(body.data(), body.size()));
  return body;
}

bool decode_trial_record(const std::string& line, TrialResult& out,
                         std::string* error) {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (line.compare(0, 2, "R ") != 0) return fail("not a trial record");
  const std::size_t crc_at = line.rfind(" crc=");
  if (crc_at == std::string::npos) return fail("missing checksum");
  char* end = nullptr;
  const std::string crc_text = line.substr(crc_at + 5);
  const std::uint64_t stored = std::strtoull(crc_text.c_str(), &end, 16);
  if (end == crc_text.c_str() || *end != '\0') {
    return fail("malformed checksum");
  }
  if (stored != fnv1a(line.data(), crc_at)) return fail("checksum mismatch");

  TrialResult r;
  std::uint64_t gap_bits = 0, sims_bits = 0;
  std::int64_t area = 0;
  const std::string body = line.substr(1, crc_at - 1);
  FieldReader fr(body);
  const bool ok =
      fr.take_u64("i", r.index) && fr.take_hex64("seed", r.seed) &&
      fr.take_u64("rounds", r.report.rounds) &&
      fr.take_u64("alarms", r.report.alarms) &&
      fr.take_u64("cycles", r.report.full_cycles) &&
      fr.take_i64("area", area) &&
      fr.take_u64("tar", r.report.target_area_rounds) &&
      fr.take_u64("taa", r.report.target_area_alarms) &&
      fr.take_hex64("gap", gap_bits) &&
      fr.take_u64("stays", r.report.secure_stays) &&
      fr.take_u64("det", r.report.prober_detections) &&
      fr.take_u64("fp", r.report.false_positives) &&
      fr.take_u64("fn", r.report.false_negatives) &&
      fr.take_u64("ev", r.report.evasions_started) &&
      fr.take_u64("rearms", r.report.rearms) &&
      fr.take_hex64("sims", sims_bits) &&
      fr.take_u64("conf", r.report.confirmed_alarms) &&
      fr.take_u64("trans", r.report.transient_alarms) &&
      fr.take_u64("benign", r.report.benign_confirmed_alarms) &&
      fr.take_u64("wdog", r.report.watchdog_fires) &&
      fr.take_u64("sretry", r.report.scan_retries) &&
      fr.take_u64("inj", r.faults_injected);
  if (!ok) return fail(fr.error());
  if (!fr.at_end()) return fail("trailing content");
  r.report.target_area = static_cast<int>(area);
  r.report.avg_target_gap_s = bits_double(gap_bits);
  r.report.sim_seconds = bits_double(sims_bits);
  out = r;
  return true;
}

TrialResult run_campaign_trial(const CampaignSpec& spec, std::uint64_t index) {
  const sim::TrialSeedSeq seeds(spec.root_seed);
  const std::uint64_t seed = seeds.seed_for(index);

  scenario::ScenarioConfig scenario_config = spec.scenario;
  if (!(spec.pin_first_platform_seed && index == 0)) {
    scenario_config.platform.seed = seed;
  }
  // Campaign trials are process-isolated, so the batch knob selects the
  // batched draw pipeline *within* each trial; draws bit-match the scalar
  // oracle, so records and artifacts stay identical for any value.
  if (spec.batch > 1) {
    scenario_config.platform.draw_mode = sim::DrawMode::kBatched;
  }

  std::string faults = spec.faults;
  if (spec.faults_reseed && !faults.empty()) {
    fault::FaultPlan plan = fault::FaultPlan::parse(faults);
    plan.seed ^= seed;
    faults = plan.to_string();
  }

  const scenario::SingleDuelResult duel =
      scenario::run_single_duel(scenario_config, spec.duel, faults);
  TrialResult result;
  result.index = index;
  result.seed = seed;
  result.report = duel.report;
  result.faults_injected = duel.faults_injected;
  return result;
}

}  // namespace satin::campaign
