#include "campaign/spec.h"

#include <cmath>
#include <cstdio>

#include "fault/plan.h"

namespace satin::campaign {

namespace {

double positive_number(const JsonValue& v, const std::string& where) {
  const double value = v.as_number(where);
  if (!(value > 0.0) || !std::isfinite(value)) {
    v.fail(where + ": must be a positive finite number");
  }
  return value;
}

int small_count(const JsonValue& v, const std::string& where, int max) {
  const std::int64_t value = v.as_int(where);
  if (value < 0 || value > max) {
    v.fail(where + ": must be in [0, " + std::to_string(max) + "]");
  }
  return static_cast<int>(value);
}

void parse_resilience(const JsonValue& v, core::ResilienceConfig& out) {
  const std::string where = "satin.resilience";
  v.reject_unknown_keys(where, {"watchdog", "watchdog_period_tp",
                                "watchdog_margin_tp", "max_scan_retries",
                                "adapt_offline"});
  if (const JsonValue* j = v.find("watchdog")) {
    out.watchdog = j->as_bool(where + ".watchdog");
  }
  if (const JsonValue* j = v.find("watchdog_period_tp")) {
    out.watchdog_period_tp = positive_number(*j, where + ".watchdog_period_tp");
  }
  if (const JsonValue* j = v.find("watchdog_margin_tp")) {
    out.watchdog_margin_tp = positive_number(*j, where + ".watchdog_margin_tp");
  }
  if (const JsonValue* j = v.find("max_scan_retries")) {
    out.max_scan_retries = small_count(*j, where + ".max_scan_retries", 16);
  }
  if (const JsonValue* j = v.find("adapt_offline")) {
    out.adapt_offline = j->as_bool(where + ".adapt_offline");
  }
}

void parse_satin(const JsonValue& v, core::SatinConfig& out) {
  const std::string where = "satin";
  v.reject_unknown_keys(
      where, {"tgoal_s", "tp_s", "randomize_wake", "randomize_area",
              "multi_core", "fixed_core", "whole_kernel_single_area",
              "resilience"});
  if (const JsonValue* j = v.find("tgoal_s")) {
    out.tgoal_s = positive_number(*j, where + ".tgoal_s");
  }
  if (const JsonValue* j = v.find("tp_s")) {
    out.tp_s = positive_number(*j, where + ".tp_s");
  }
  if (const JsonValue* j = v.find("randomize_wake")) {
    out.randomize_wake = j->as_bool(where + ".randomize_wake");
  }
  if (const JsonValue* j = v.find("randomize_area")) {
    out.randomize_area = j->as_bool(where + ".randomize_area");
  }
  if (const JsonValue* j = v.find("multi_core")) {
    out.multi_core = j->as_bool(where + ".multi_core");
  }
  if (const JsonValue* j = v.find("fixed_core")) {
    out.fixed_core = small_count(*j, where + ".fixed_core", 255);
  }
  if (const JsonValue* j = v.find("whole_kernel_single_area")) {
    out.whole_kernel_single_area =
        j->as_bool(where + ".whole_kernel_single_area");
  }
  if (const JsonValue* j = v.find("resilience")) {
    parse_resilience(*j, out.resilience);
  }
}

void parse_platform(const JsonValue& v, hw::PlatformConfig& out,
                    bool& seed_pinned) {
  const std::string where = "platform";
  v.reject_unknown_keys(where,
                        {"num_little", "num_big", "memory_bytes", "seed"});
  if (const JsonValue* j = v.find("num_little")) {
    out.num_little = small_count(*j, where + ".num_little", 64);
  }
  if (const JsonValue* j = v.find("num_big")) {
    out.num_big = small_count(*j, where + ".num_big", 64);
  }
  if (out.num_little + out.num_big < 1) {
    v.fail(where + ": needs at least one core");
  }
  if (const JsonValue* j = v.find("memory_bytes")) {
    const std::uint64_t bytes = j->as_uint(where + ".memory_bytes");
    // Must hold the default kernel image with headroom; reject sizes the
    // Scenario constructor would only reject mid-campaign.
    if (bytes < (12u << 20) || bytes > (1u << 30)) {
      j->fail(where + ".memory_bytes: must be in [12 MiB, 1 GiB]");
    }
    out.memory_bytes = static_cast<std::size_t>(bytes);
  }
  if (const JsonValue* j = v.find("seed")) {
    out.seed = j->as_uint(where + ".seed");
    seed_pinned = true;
  }
}

void parse_duel(const JsonValue& v, scenario::DuelConfig& out) {
  const std::string where = "duel";
  v.reject_unknown_keys(where, {"rounds_target", "max_sim_seconds"});
  if (const JsonValue* j = v.find("rounds_target")) {
    out.rounds_target = j->as_uint(where + ".rounds_target");
    if (out.rounds_target == 0) {
      j->fail(where + ".rounds_target: must be at least 1");
    }
  }
  if (const JsonValue* j = v.find("max_sim_seconds")) {
    out.max_sim_seconds = positive_number(*j, where + ".max_sim_seconds");
  }
}

void parse_attacker(const JsonValue& v, attack::EvaderConfig& out) {
  const std::string where = "attacker";
  v.reject_unknown_keys(where,
                        {"rearm_delay_s", "threshold_s", "cleanup_core"});
  if (const JsonValue* j = v.find("rearm_delay_s")) {
    out.rearm_delay_s = positive_number(*j, where + ".rearm_delay_s");
  }
  if (const JsonValue* j = v.find("threshold_s")) {
    out.prober.threshold_s = positive_number(*j, where + ".threshold_s");
  }
  if (const JsonValue* j = v.find("cleanup_core")) {
    out.cleanup_core = small_count(*j, where + ".cleanup_core", 255);
  }
}

}  // namespace

CampaignSpec parse_campaign_spec(const std::string& text,
                                 const std::string& source) {
  const JsonValue root = parse_json(text, source);
  const std::string where = "campaign";
  root.reject_unknown_keys(
      where, {"name", "trials", "root_seed", "jobs", "shard_size", "batch",
              "branches", "fork_prefix", "trial_timeout_s", "max_retries",
              "platform", "satin", "duel", "attacker", "faults",
              "faults_reseed"});

  CampaignSpec spec;
  if (const JsonValue* j = root.find("name")) {
    spec.name = j->as_string("name");
    if (spec.name.empty()) j->fail("name: must not be empty");
  }
  const JsonValue* trials = root.find("trials");
  if (trials == nullptr) root.fail("campaign: missing required key \"trials\"");
  spec.trials = trials->as_uint("trials");
  if (spec.trials == 0) trials->fail("trials: must be at least 1");
  if (const JsonValue* j = root.find("root_seed")) {
    spec.root_seed = j->as_uint("root_seed");
  }
  if (const JsonValue* j = root.find("jobs")) {
    const std::int64_t jobs = j->as_int("jobs");
    if (jobs < 1 || jobs > 256) j->fail("jobs: must be in [1, 256]");
    spec.jobs = static_cast<int>(jobs);
  }
  if (const JsonValue* j = root.find("shard_size")) {
    spec.shard_size = j->as_uint("shard_size");
    if (spec.shard_size == 0) j->fail("shard_size: must be at least 1");
  }
  if (const JsonValue* j = root.find("batch")) {
    const std::int64_t batch = j->as_int("batch");
    if (batch < 1 || batch > 4096) j->fail("batch: must be in [1, 4096]");
    spec.batch = static_cast<int>(batch);
  }
  if (const JsonValue* j = root.find("branches")) {
    const std::int64_t branches = j->as_int("branches");
    if (branches < 0 || branches > 4096) {
      j->fail("branches: must be in [0, 4096]");
    }
    spec.branches = static_cast<int>(branches);
  }
  if (const JsonValue* j = root.find("fork_prefix")) {
    spec.fork_prefix = j->as_number("fork_prefix");
    if (!(spec.fork_prefix >= 0.0)) {
      j->fail("fork_prefix: must be >= 0");
    }
  }
  if (const JsonValue* j = root.find("trial_timeout_s")) {
    spec.trial_timeout_s = positive_number(*j, "trial_timeout_s");
  }
  if (const JsonValue* j = root.find("max_retries")) {
    spec.max_retries = small_count(*j, "max_retries", 16);
  }
  if (const JsonValue* j = root.find("platform")) {
    parse_platform(*j, spec.scenario.platform, spec.pin_first_platform_seed);
  }
  if (const JsonValue* j = root.find("satin")) {
    parse_satin(*j, spec.duel.satin);
  }
  if (const JsonValue* j = root.find("duel")) {
    parse_duel(*j, spec.duel);
  }
  if (const JsonValue* j = root.find("attacker")) {
    parse_attacker(*j, spec.duel.evader);
  }
  if (const JsonValue* j = root.find("faults")) {
    spec.faults = j->as_string("faults");
    // Validate the plan grammar now; arming happens per trial. The plan
    // parser's single-line diagnostic is wrapped with the spec position.
    try {
      (void)fault::FaultPlan::parse(spec.faults);
    } catch (const std::exception& e) {
      j->fail(std::string("faults: ") + e.what());
    }
  }
  if (const JsonValue* j = root.find("faults_reseed")) {
    spec.faults_reseed = j->as_bool("faults_reseed");
    if (spec.faults_reseed && spec.faults.empty()) {
      j->fail("faults_reseed: set but no \"faults\" plan given");
    }
  }
  return spec;
}

CampaignSpec load_campaign_spec(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw JsonError(path + ": cannot open");
  }
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    throw JsonError(path + ": read error");
  }
  return parse_campaign_spec(text, path);
}

namespace {

void fold(std::uint64_t& h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
}

template <typename T>
void fold_value(std::uint64_t& h, const T& value) {
  fold(h, &value, sizeof(value));
}

void fold_string(std::uint64_t& h, const std::string& s) {
  const std::uint64_t len = s.size();
  fold_value(h, len);
  fold(h, s.data(), s.size());
}

}  // namespace

std::uint64_t CampaignSpec::content_hash() const {
  // Canonical field-order fold; doubles hash by bit pattern so the hash is
  // exactly as strict as the determinism contract.
  std::uint64_t h = 14695981039346656037ull;
  fold_string(h, name);
  fold_value(h, trials);
  fold_value(h, root_seed);
  // jobs / shard_size / timeout / retries are *runtime* knobs: they never
  // change any trial's result, so a resume may legally override them.
  fold_value(h, scenario.platform.num_little);
  fold_value(h, scenario.platform.num_big);
  fold_value(h, static_cast<std::uint64_t>(scenario.platform.memory_bytes));
  fold_value(h, scenario.platform.seed);
  fold_value(h, pin_first_platform_seed);
  const core::SatinConfig& s = duel.satin;
  fold_value(h, s.tgoal_s);
  const double tp = s.tp_s.value_or(-1.0);
  fold_value(h, tp);
  fold_value(h, s.randomize_wake);
  fold_value(h, s.randomize_area);
  fold_value(h, s.multi_core);
  fold_value(h, s.fixed_core);
  fold_value(h, s.whole_kernel_single_area);
  fold_value(h, s.resilience.watchdog);
  fold_value(h, s.resilience.watchdog_period_tp);
  fold_value(h, s.resilience.watchdog_margin_tp);
  fold_value(h, s.resilience.max_scan_retries);
  fold_value(h, s.resilience.adapt_offline);
  fold_value(h, duel.rounds_target);
  fold_value(h, duel.max_sim_seconds);
  fold_value(h, duel.evader.rearm_delay_s);
  fold_value(h, duel.evader.prober.threshold_s);
  const std::int64_t cleanup =
      duel.evader.cleanup_core.has_value() ? *duel.evader.cleanup_core : -1;
  fold_value(h, cleanup);
  fold_string(h, faults);
  fold_value(h, faults_reseed);
  return h;
}

}  // namespace satin::campaign
