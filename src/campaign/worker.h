// Campaign worker process: the in-child half of the supervisor protocol.
//
// The supervisor forks; the child calls worker_main() and never returns.
// Wire protocol (newline-delimited ASCII, one pipe pair per worker):
//
//   supervisor -> worker : "T <idx>"        run trial idx
//                          "T <idx> kill"   chaos: SIGKILL self instead
//                          "T <idx> hang"   chaos: wedge instead
//                          "Q"              drain done, exit 0
//   worker -> supervisor : "B <idx>"        trial begun (heartbeat; arms
//                                           the supervisor's timeout)
//                          "R <record>"     completed-trial record with
//                                           checksum (campaign/trial.h),
//                                           appended to the journal
//                                           verbatim after validation
//
// Durability order inside the worker is load-bearing: per-trial obs
// artifacts (metrics snapshot, flight file) are persisted BEFORE the "R"
// line is sent, so a journal-recorded trial always has its artifacts on
// disk — a crash between the two costs a re-run, never a half-merged
// aggregate. The worker exits via _exit() on every path: flushing stdio
// buffers or running destructors inherited from the supervisor would
// corrupt the parent's files.
#pragma once

#include <cstdint>
#include <string>

#include "campaign/spec.h"

namespace satin::campaign {

struct WorkerContext {
  const CampaignSpec* spec = nullptr;
  int cmd_fd = -1;   // read end: commands from the supervisor
  int res_fd = -1;   // write end: heartbeats and results
  // Where per-trial obs artifacts go ("" = record nothing).
  std::string artifacts_dir;
  bool want_metrics = false;
  bool want_flight = false;
  std::size_t flight_ring = 0;
};

// Per-trial artifact paths, shared with the supervisor-side merge.
std::string trial_metrics_path(const std::string& dir, std::uint64_t index);
std::string trial_flight_path(const std::string& dir, std::uint64_t index);

// Runs the command loop; never returns (terminates with _exit).
[[noreturn]] void worker_main(const WorkerContext& context);

}  // namespace satin::campaign
