// Append-only campaign journal: the crash-safety backbone.
//
// One text file per campaign run. Line 1 is a header binding the journal
// to (spec content hash, trial count, root seed); every further line is
// one completed trial's checksummed record (campaign/trial.h). Appends
// are flushed and fsync'd before the supervisor counts a trial done, so
// after ANY crash — worker SIGKILL, supervisor SIGKILL, power loss — the
// journal holds exactly the completed trials, and a resume re-runs only
// the rest. Because trials are pure functions of (spec, index), the
// resumed run finishes byte-identical to an uninterrupted one.
//
// Loading is forgiving about damage but never about meaning: a torn tail
// (the classic kill-mid-write artifact) and checksum-failing lines are
// QUARANTINED — counted, reported, and their trials re-run — while a
// header that disagrees with the spec is a hard error, because mixing
// results from two different campaigns is silent corruption, not
// robustness.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "campaign/spec.h"
#include "campaign/trial.h"

namespace satin::campaign {

class CampaignJournal {
 public:
  ~CampaignJournal();
  CampaignJournal() = default;
  CampaignJournal(const CampaignJournal&) = delete;
  CampaignJournal& operator=(const CampaignJournal&) = delete;

  // Opens `path` for appending, creating it (with a header) when absent.
  // An existing journal is replayed: valid records land in completed(),
  // damaged lines are quarantined, and a header mismatch against `spec`
  // fails. Returns false with *error on any hard problem.
  bool open(const std::string& path, const CampaignSpec& spec,
            std::string* error);

  // Valid completed trials, keyed by index (first record wins; a
  // duplicate index — e.g. an orphan worker racing a resume — is benign
  // because both computed identical bits, and is dropped).
  const std::map<std::uint64_t, TrialResult>& completed() const {
    return completed_;
  }
  // Damaged lines dropped during open(): torn tail, checksum failures,
  // out-of-range indices. Their trials are simply re-run.
  std::uint64_t quarantined() const { return quarantined_; }

  // Appends one record, flushed + fsync'd before returning; false on any
  // write failure. The caller must not count the trial complete until
  // this returns true.
  bool append(const TrialResult& result);
  // Records appended through THIS handle (not counting replayed ones).
  std::uint64_t appended() const { return appended_; }

  void close();

  const std::string& path() const { return path_; }

  // Header-only peek for `satin_campaign status`: no spec needed.
  struct Status {
    std::uint64_t spec_hash = 0;
    std::uint64_t trials = 0;
    std::uint64_t root_seed = 0;
    std::uint64_t completed = 0;
    std::uint64_t quarantined = 0;
  };
  static bool read_status(const std::string& path, Status& out,
                          std::string* error);

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  std::map<std::uint64_t, TrialResult> completed_;
  std::uint64_t quarantined_ = 0;
  std::uint64_t appended_ = 0;
};

}  // namespace satin::campaign
