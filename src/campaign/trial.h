// One campaign trial: execution and the journal record codec.
//
// A trial's entire input is (CampaignSpec, index) — the per-trial seed is
// TrialSeedSeq(root_seed).seed_for(index), the fault plan optionally
// re-seeds from the same derivation — so run_campaign_trial() is a pure
// function of its arguments. That purity is what makes the runtime's
// crash story trivial: a retried, re-dispatched or resumed trial is just
// the same function call again, and byte-identical output follows.
//
// The journal stores one line per completed trial. Doubles travel as raw
// bit patterns (hex), not decimal, so encode(decode(line)) == line and a
// resumed aggregation sees exactly the bits the original worker computed.
// Every line carries an FNV-1a checksum over its body; a line whose
// checksum fails (torn write, bit rot, hostile edit) is quarantined by
// the journal loader and the trial simply re-runs.
#pragma once

#include <cstdint>
#include <string>

#include "campaign/spec.h"
#include "scenario/experiments.h"

namespace satin::campaign {

struct TrialResult {
  std::uint64_t index = 0;
  std::uint64_t seed = 0;
  scenario::DuelReport report;
  std::uint64_t faults_injected = 0;
};

// "R i=<n> seed=<hex> ... crc=<hex>", newline excluded. Field order is
// fixed; the checksum covers everything before " crc=".
std::string encode_trial_record(const TrialResult& result);

// Strict decode: returns false (with a one-line reason in *error when
// given) on a bad prefix, missing/misordered field, malformed value or
// checksum mismatch. Never half-fills *out on failure.
bool decode_trial_record(const std::string& line, TrialResult& out,
                         std::string* error = nullptr);

// Runs trial `index` of `spec` to completion in the calling thread,
// against whatever obs sinks are installed. Derivations:
//  * platform seed = seed_for(index), except trial 0 keeps a spec-pinned
//    platform.seed (the run-of-record convention);
//  * with faults_reseed, the injector seed becomes plan.seed ^ seed_for
//    so every trial rolls its own storm, still reproducibly.
// Throws on scenario construction or duel failure; the campaign worker
// turns that into a crash-and-retry, never a half-recorded trial.
TrialResult run_campaign_trial(const CampaignSpec& spec, std::uint64_t index);

}  // namespace satin::campaign
