#include "campaign/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace satin::campaign {

namespace {

std::string position_prefix(const std::string& source, int line, int col) {
  return source + ":" + std::to_string(line) + ":" + std::to_string(col) +
         ": ";
}

}  // namespace

void JsonValue::fail(const std::string& message) const {
  throw JsonError(position_prefix(source_, line_, col_) + message);
}

bool JsonValue::as_bool(const std::string& where) const {
  if (kind_ != Kind::kBool) fail(where + ": expected true or false");
  return bool_;
}

double JsonValue::as_number(const std::string& where) const {
  if (kind_ != Kind::kNumber) fail(where + ": expected a number");
  return number_;
}

std::int64_t JsonValue::as_int(const std::string& where) const {
  const double v = as_number(where);
  if (std::nearbyint(v) != v || v < -9.2233720368547758e18 ||
      v > 9.2233720368547758e18) {
    fail(where + ": expected an integer");
  }
  return static_cast<std::int64_t>(v);
}

std::uint64_t JsonValue::as_uint(const std::string& where) const {
  const std::int64_t v = as_int(where);
  if (v < 0) fail(where + ": expected a non-negative integer");
  return static_cast<std::uint64_t>(v);
}

const std::string& JsonValue::as_string(const std::string& where) const {
  if (kind_ != Kind::kString) fail(where + ": expected a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array(
    const std::string& where) const {
  if (kind_ != Kind::kArray) fail(where + ": expected an array");
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members(
    const std::string& where) const {
  if (kind_ != Kind::kObject) fail(where + ": expected an object");
  return object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::reject_unknown_keys(
    const std::string& where, const std::vector<std::string>& allowed) const {
  for (const auto& [key, value] : members(where)) {
    bool known = false;
    for (const std::string& a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) {
      value.fail(where + ": unknown key \"" + key + "\"");
    }
  }
}

// Recursive-descent parser tracking line/col per token. Depth is bounded
// so a pathological input can't blow the stack.
class JsonParser {
 public:
  JsonParser(const std::string& text, const std::string& source)
      : text_(text), source_(source) {}

  JsonValue parse() {
    JsonValue root = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("trailing content after the JSON document");
    }
    return root;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& message) {
    throw JsonError(position_prefix(source_, line_, col_) + message);
  }

  bool at_end() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  char advance() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void skip_whitespace() {
    while (!at_end()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        advance();
      } else {
        break;
      }
    }
  }

  void expect(char c) {
    if (at_end() || peek() != c) {
      fail(std::string("expected '") + c + "'" +
           (at_end() ? " before end of input"
                     : std::string(", got '") + peek() + "'"));
    }
    advance();
  }

  JsonValue make_value(int line, int col) {
    JsonValue v;
    v.line_ = line;
    v.col_ = col;
    v.source_ = source_;
    return v;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_whitespace();
    if (at_end()) fail("unexpected end of input");
    const int line = line_;
    const int col = col_;
    const char c = peek();
    if (c == '{') return parse_object(depth, line, col);
    if (c == '[') return parse_array(depth, line, col);
    if (c == '"') {
      JsonValue v = make_value(line, col);
      v.kind_ = JsonValue::Kind::kString;
      v.string_ = parse_string();
      return v;
    }
    if (c == 't' || c == 'f') {
      JsonValue v = make_value(line, col);
      v.kind_ = JsonValue::Kind::kBool;
      v.bool_ = (c == 't');
      expect_keyword(c == 't' ? "true" : "false");
      return v;
    }
    if (c == 'n') {
      JsonValue v = make_value(line, col);
      expect_keyword("null");
      return v;
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      JsonValue v = make_value(line, col);
      v.kind_ = JsonValue::Kind::kNumber;
      v.number_ = parse_number();
      return v;
    }
    fail(std::string("unexpected character '") + c + "'");
  }

  void expect_keyword(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (at_end() || peek() != *p) {
        fail(std::string("expected '") + word + "'");
      }
      advance();
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') advance();
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
      advance();
    }
    if (!at_end() && peek() == '.') {
      advance();
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        advance();
      }
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      advance();
      if (!at_end() && (peek() == '+' || peek() == '-')) advance();
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        advance();
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      fail("malformed number '" + token + "'");
    }
    return value;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (at_end()) fail("unterminated string");
      const char c = advance();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (at_end()) fail("unterminated escape");
      const char e = advance();
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (at_end()) fail("unterminated \\u escape");
            const char h = advance();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (spec keys are ASCII; this
          // keeps arbitrary names lossless without surrogate handling).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail(std::string("unknown escape '\\") + e + "'");
      }
    }
  }

  JsonValue parse_object(int depth, int line, int col) {
    JsonValue v = make_value(line, col);
    v.kind_ = JsonValue::Kind::kObject;
    expect('{');
    skip_whitespace();
    if (!at_end() && peek() == '}') {
      advance();
      return v;
    }
    for (;;) {
      skip_whitespace();
      if (at_end() || peek() != '"') fail("expected a quoted object key");
      const int key_line = line_;
      const int key_col = col_;
      const std::string key = parse_string();
      for (const auto& [existing, unused] : v.object_) {
        (void)unused;
        if (existing == key) {
          throw JsonError(position_prefix(source_, key_line, key_col) +
                          "duplicate key \"" + key + "\"");
        }
      }
      skip_whitespace();
      expect(':');
      v.object_.emplace_back(key, parse_value(depth + 1));
      skip_whitespace();
      if (at_end()) fail("unterminated object");
      if (peek() == ',') {
        advance();
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array(int depth, int line, int col) {
    JsonValue v = make_value(line, col);
    v.kind_ = JsonValue::Kind::kArray;
    expect('[');
    skip_whitespace();
    if (!at_end() && peek() == ']') {
      advance();
      return v;
    }
    for (;;) {
      v.array_.push_back(parse_value(depth + 1));
      skip_whitespace();
      if (at_end()) fail("unterminated array");
      if (peek() == ',') {
        advance();
        continue;
      }
      expect(']');
      return v;
    }
  }

  const std::string& text_;
  std::string source_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

JsonValue parse_json(const std::string& text, const std::string& source) {
  return JsonParser(text, source).parse();
}

JsonValue parse_json_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw JsonError(path + ": cannot open");
  }
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    throw JsonError(path + ": read error");
  }
  return parse_json(text, path);
}

}  // namespace satin::campaign
