#include "campaign/worker.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include <unistd.h>

#include "campaign/trial.h"
#include "obs/flight/recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/parallel.h"

namespace satin::campaign {

namespace {

// write() the whole buffer; a failed write means the supervisor is gone,
// so the worker just dies (its trial will be re-dispatched elsewhere).
void write_line_or_die(int fd, const std::string& line) {
  const char* p = line.data();
  std::size_t left = line.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n <= 0) _exit(1);
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

// Blocking newline-delimited reader over the raw fd (no stdio: the child
// must not share buffered state with the parent).
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  // False on EOF (supervisor died or closed the pipe).
  bool next(std::string& line) {
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      char chunk[512];
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n <= 0) return false;
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buf_;
};

}  // namespace

std::string trial_metrics_path(const std::string& dir, std::uint64_t index) {
  return dir + "/trial_" + std::to_string(index) + ".met";
}

std::string trial_flight_path(const std::string& dir, std::uint64_t index) {
  return dir + "/trial_" + std::to_string(index) + ".flt";
}

void worker_main(const WorkerContext& ctx) {
  // This process must not record into (or later flush) the supervisor's
  // session sinks: every trial gets private ones below.
  obs::install_metrics(nullptr);
  obs::install_tracer(nullptr);
  obs::install_flight(nullptr);
  // A dead supervisor shows up as EPIPE/EOF, and the default SIGPIPE
  // disposition turns the first write into a clean exit — exactly the
  // orphan-reaping behavior the resume path wants.
  std::signal(SIGPIPE, SIG_DFL);

  LineReader commands(ctx.cmd_fd);
  std::string line;
  while (commands.next(line)) {
    if (line == "Q") _exit(0);
    if (line.compare(0, 2, "T ") != 0) _exit(2);
    char* end = nullptr;
    const std::uint64_t index = std::strtoull(line.c_str() + 2, &end, 10);
    const std::string flag = end != nullptr && *end == ' ' ? end + 1 : "";

    write_line_or_die(ctx.res_fd, "B " + std::to_string(index) + "\n");

    if (flag == "kill") raise(SIGKILL);
    if (flag == "hang") {
      for (;;) pause();
    }

    std::unique_ptr<obs::MetricsRegistry> metrics;
    std::unique_ptr<obs::FlightRecorder> flight;
    if (ctx.want_metrics) {
      metrics = std::make_unique<obs::MetricsRegistry>();
    }
    if (ctx.want_flight) {
      obs::FlightRecorder::Options fopts;
      fopts.path = trial_flight_path(ctx.artifacts_dir, index);
      fopts.ring = ctx.flight_ring;
      flight = std::make_unique<obs::FlightRecorder>(fopts);
    }

    TrialResult result;
    {
      sim::TrialObsScope sinks(metrics.get(), nullptr, flight.get());
      try {
        result = run_campaign_trial(*ctx.spec, index);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "campaign worker: trial %llu failed: %s\n",
                     static_cast<unsigned long long>(index), e.what());
        _exit(3);
      }
    }

    // Artifacts first, result record second: "in the journal" must imply
    // "artifacts durable".
    if (flight != nullptr && !flight->close()) _exit(4);
    if (metrics != nullptr) {
      std::string error;
      if (!metrics->save_binary(trial_metrics_path(ctx.artifacts_dir, index),
                                &error)) {
        std::fprintf(stderr, "campaign worker: trial %llu: %s\n",
                     static_cast<unsigned long long>(index), error.c_str());
        _exit(4);
      }
    }

    write_line_or_die(ctx.res_fd, encode_trial_record(result) + "\n");
  }
  _exit(0);  // command pipe closed: supervisor is done with us
}

}  // namespace satin::campaign
