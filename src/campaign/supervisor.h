// Campaign supervisor: process-isolated fan-out with crash identity.
//
// The supervisor forks `jobs` worker processes and feeds each a shard of
// trial indices over a pipe pair; workers run trials (campaign/trial.h)
// against their own per-trial obs sinks, persist the obs artifacts, and
// send back checksummed result records which the supervisor validates and
// appends to the journal (fsync'd) before counting the trial done.
//
// Failure model, in order of escalation:
//  * worker crash (any exit, SIGKILL included) — its in-flight trial
//    indices go back to the front of the queue; each index retries up to
//    max_retries times with exponential backoff on the respawned slot;
//  * worker wedge — no heartbeat ("B <idx>") or result within
//    trial_timeout_s gets the worker SIGKILLed, then the crash path;
//  * repeated crashes on one slot — after 3 consecutive crashes the slot
//    is retired (pool shrink) instead of respawned;
//  * everything retired / retries exhausted — the campaign still emits
//    its stats, with `degraded: true` and the failed trial list, instead
//    of hanging or dying empty-handed.
//
// Crash identity: trials are pure functions of (spec, index) and
// aggregation is strictly index-ordered, so ANY schedule — jobs count,
// shard layout, crashes, retries, re-dispatches, SIGKILL + resume — ends
// in byte-identical stats and (stable) metrics. CI enforces this
// literally, with a chaos-injected run diffed against a jobs=1
// uninterrupted one. The chaos_* knobs exist for that gate: they make a
// worker kill or hang itself on the FIRST dispatch of a chosen trial, and
// the supervisor SIGKILL itself after N journal appends — deterministic
// crashes, no sleep-and-hope process hunting in CI scripts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/journal.h"
#include "campaign/spec.h"

namespace satin::campaign {

struct CampaignOptions {
  std::string journal_path;       // required
  std::string stats_path;         // "" = don't write stats
  // Runtime overrides; 0/-1 = take the spec's value. Never part of the
  // spec content hash, so a resume may change them freely.
  int jobs = 0;
  std::uint64_t shard_size = 0;
  double trial_timeout_s = 0.0;
  int max_retries = -1;
  // COW fork branch group size (sim/fork.h); -1 = take the spec's value,
  // 0 explicitly disables forking, > 0 replaces the worker pool.
  int branches = -1;
  // `resume` refuses to start a fresh journal; `run` creates one.
  bool require_existing_journal = false;
  // Per-trial flight ring capacity for worker recorders (0 = full stream).
  std::size_t flight_ring = 0;

  // Chaos knobs (CI crash audits; -1 / 0 = off).
  std::int64_t chaos_kill_trial = -1;   // worker SIGKILLs itself on first
                                        // dispatch of this trial index
  std::int64_t chaos_hang_trial = -1;   // worker hangs on first dispatch
                                        // (exercises the timeout path)
  std::uint64_t chaos_supervisor_kill_after = 0;  // raise(SIGKILL) after
                                                  // this many appends
};

struct CampaignOutcome {
  bool ok = false;          // campaign ran (possibly degraded)
  bool degraded = false;    // some trials failed permanently
  std::string error;        // set when !ok

  std::uint64_t trials = 0;
  std::uint64_t completed = 0;
  std::uint64_t resumed = 0;      // completed trials replayed from journal
  std::uint64_t quarantined = 0;  // damaged journal lines dropped on open
  std::vector<std::uint64_t> failed_trials;

  // Runtime (host-dependent) bookkeeping; exported as volatile
  // campaign.* gauges so --metrics-stable snapshots stay identical
  // across crash histories.
  std::uint64_t retries = 0;       // trial re-dispatch decisions
  std::uint64_t redispatches = 0;  // in-flight indices returned to queue
  std::uint64_t worker_crashes = 0;
  std::uint64_t worker_timeouts = 0;
  std::uint64_t workers_spawned = 0;
  std::uint64_t pool_shrinks = 0;
};

// Runs (or resumes) a campaign. Journal and stats writes, worker
// lifecycle, obs artifact merging into the CALLING thread's installed
// sinks, and campaign.* metrics all happen here. Returns rather than
// throws: outcome.ok=false carries the reason.
CampaignOutcome run_campaign(const CampaignSpec& spec,
                             const CampaignOptions& options);

// Deterministic stats JSON (schema satin-campaign-stats/1), written
// crash-safe via temp file + rename. Exposed for tests.
std::string format_campaign_stats(const CampaignSpec& spec,
                                  const CampaignOutcome& outcome,
                                  const std::map<std::uint64_t, TrialResult>&
                                      completed);
bool write_campaign_stats(const std::string& path, const std::string& body,
                          std::string* error);

}  // namespace satin::campaign
