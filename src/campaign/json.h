// Minimal JSON reader for campaign specs.
//
// The campaign layer turns scenarios into *data*, and data that a fleet
// operator edits by hand fails in boring ways: a trailing comma, a string
// where a number belongs, a misspelled key. This parser exists so every
// one of those failures dies fast with a `file:line:col` diagnostic
// instead of a half-applied spec. It covers exactly the JSON the spec
// schema needs — objects, arrays, strings (with escapes), numbers, bools,
// null — with no dependencies beyond the standard library.
//
// Values are immutable after parse; navigation helpers live on JsonValue
// and validation errors (wrong type, unknown key) are raised by the spec
// layer with the value's recorded position, so "platform.seed must be a
// number" points at the offending token, not at EOF.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace satin::campaign {

// Parse or validation failure; what() carries "<file>:<line>:<col>: msg".
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  int line() const { return line_; }
  int col() const { return col_; }

  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  // Typed accessors; throw JsonError (with this value's position) on a
  // kind mismatch. `where` names the value in the message, e.g.
  // "platform.num_little".
  bool as_bool(const std::string& where) const;
  double as_number(const std::string& where) const;
  std::int64_t as_int(const std::string& where) const;
  std::uint64_t as_uint(const std::string& where) const;
  const std::string& as_string(const std::string& where) const;
  const std::vector<JsonValue>& as_array(const std::string& where) const;

  // Object navigation. Members preserve source order for error reporting;
  // find() is by key. Null when absent.
  const JsonValue* find(const std::string& key) const;
  bool has(const std::string& key) const { return find(key) != nullptr; }
  const std::vector<std::pair<std::string, JsonValue>>& members(
      const std::string& where) const;

  // Raises JsonError at this object's position naming every key that is
  // not in `allowed` — the fail-fast guard against misspelled spec knobs.
  void reject_unknown_keys(const std::string& where,
                           const std::vector<std::string>& allowed) const;

  [[noreturn]] void fail(const std::string& message) const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
  int line_ = 0;
  int col_ = 0;
  std::string source_;  // file label, for diagnostics (root value only on
                        // parse; propagated to children)
};

// Parses `text`; `source` labels diagnostics (a file path or "<spec>").
// Throws JsonError on any syntax problem, naming line and column.
JsonValue parse_json(const std::string& text, const std::string& source);

// Reads and parses a file; throws JsonError if unreadable.
JsonValue parse_json_file(const std::string& path);

}  // namespace satin::campaign
