#include "campaign/journal.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <set>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace satin::campaign {

namespace {

constexpr char kHeaderMagic[] = "SATNCAMP1";

std::string header_line(std::uint64_t spec_hash, std::uint64_t trials,
                        std::uint64_t root_seed) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "%s spec=%016" PRIx64 " trials=%" PRIu64 " root_seed=%" PRIu64,
                kHeaderMagic, spec_hash, trials, root_seed);
  return buf;
}

bool parse_header(const std::string& line, CampaignJournal::Status& out) {
  unsigned long long spec = 0, trials = 0, root_seed = 0;
  char magic[16] = {};
  if (std::sscanf(line.c_str(), "%15s spec=%llx trials=%llu root_seed=%llu",
                  magic, &spec, &trials, &root_seed) != 4) {
    return false;
  }
  if (std::strcmp(magic, kHeaderMagic) != 0) return false;
  out.spec_hash = spec;
  out.trials = trials;
  out.root_seed = root_seed;
  return true;
}

bool set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

// Reads the whole file; returns false only on I/O errors (a missing file
// is reported via `exists`).
bool slurp(const std::string& path, std::string& out, bool& exists) {
  out.clear();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    exists = false;
    return true;
  }
  exists = true;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool flush_and_sync(std::FILE* f) {
  if (std::fflush(f) != 0) return false;
#ifndef _WIN32
  if (fsync(fileno(f)) != 0) return false;
#endif
  return true;
}

}  // namespace

CampaignJournal::~CampaignJournal() { close(); }

void CampaignJournal::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

bool CampaignJournal::open(const std::string& path, const CampaignSpec& spec,
                           std::string* error) {
  close();
  completed_.clear();
  quarantined_ = 0;
  appended_ = 0;
  path_ = path;

  std::string text;
  bool exists = false;
  if (!slurp(path, text, exists)) {
    return set_error(error, path + ": read error");
  }

  const std::string expected_header =
      header_line(spec.content_hash(), spec.trials, spec.root_seed);

  if (exists && !text.empty()) {
    // Replay. Split on '\n'; a final fragment without a newline is the
    // torn tail of a killed append — quarantine it, the trial re-runs.
    std::size_t pos = 0;
    bool first = true;
    while (pos < text.size()) {
      const std::size_t nl = text.find('\n', pos);
      const bool torn = nl == std::string::npos;
      const std::string line =
          text.substr(pos, torn ? std::string::npos : nl - pos);
      pos = torn ? text.size() : nl + 1;
      if (first) {
        first = false;
        Status header;
        if (torn || !parse_header(line, header)) {
          return set_error(error, path + ": corrupt journal header");
        }
        if (line != expected_header) {
          char buf[160];
          std::snprintf(buf, sizeof(buf),
                        ": journal belongs to a different campaign "
                        "(spec=%016" PRIx64 " trials=%" PRIu64
                        " root_seed=%" PRIu64 ")",
                        header.spec_hash, header.trials, header.root_seed);
          return set_error(error, path + buf);
        }
        continue;
      }
      if (line.empty()) continue;
      TrialResult result;
      if (torn || !decode_trial_record(line, result) ||
          result.index >= spec.trials) {
        ++quarantined_;
        continue;
      }
      completed_.emplace(result.index, result);  // first record wins
    }
  }

  // A torn tail was quarantined above, but it is also still physically at
  // the end of the file — appending after it would glue the next record
  // onto the fragment and corrupt BOTH. Cut the file back to the last
  // complete line before reopening for append.
  if (exists && !text.empty() && text.back() != '\n') {
#ifndef _WIN32
    const std::size_t last_nl = text.rfind('\n');
    const std::size_t keep = last_nl == std::string::npos ? 0 : last_nl + 1;
    if (::truncate(path.c_str(), static_cast<off_t>(keep)) != 0) {
      return set_error(error, path + ": cannot trim torn tail");
    }
#endif
  }

  file_ = std::fopen(path.c_str(), exists ? "ab" : "wb");
  if (file_ == nullptr) {
    return set_error(error, path + ": cannot open for append");
  }
  if (!exists || text.empty()) {
    const std::string header = expected_header + "\n";
    if (std::fwrite(header.data(), 1, header.size(), file_) != header.size() ||
        !flush_and_sync(file_)) {
      close();
      return set_error(error, path + ": cannot write header");
    }
  }
  return true;
}

bool CampaignJournal::append(const TrialResult& result) {
  if (file_ == nullptr) return false;
  const std::string line = encode_trial_record(result) + "\n";
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    return false;
  }
  if (!flush_and_sync(file_)) return false;
  completed_.emplace(result.index, result);
  ++appended_;
  return true;
}

bool CampaignJournal::read_status(const std::string& path, Status& out,
                                  std::string* error) {
  out = Status{};
  std::string text;
  bool exists = false;
  if (!slurp(path, text, exists)) {
    return set_error(error, path + ": read error");
  }
  if (!exists) return set_error(error, path + ": no such journal");
  if (text.empty()) return set_error(error, path + ": empty journal");

  std::set<std::uint64_t> seen;
  std::size_t pos = 0;
  bool first = true;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const bool torn = nl == std::string::npos;
    const std::string line =
        text.substr(pos, torn ? std::string::npos : nl - pos);
    pos = torn ? text.size() : nl + 1;
    if (first) {
      first = false;
      if (torn || !parse_header(line, out)) {
        return set_error(error, path + ": corrupt journal header");
      }
      continue;
    }
    if (line.empty()) continue;
    TrialResult result;
    if (torn || !decode_trial_record(line, result) ||
        result.index >= out.trials) {
      ++out.quarantined;
    } else {
      seen.insert(result.index);
    }
  }
  out.completed = seen.size();
  return true;
}

}  // namespace satin::campaign
