// Mini-UnixBench: the normal-world workload suite of Fig. 7 (§VI-B2).
//
// Each of the 12 UnixBench programs is modeled as a thread that executes
// fixed-cost iterations; its score is iterations completed per second of
// wall-clock window. A secure-world stay on the workload's core costs it
// (a) the stolen CPU time — exact, through the scheduler freeze — and
// (b) a per-workload disruption penalty consumed before useful work
// resumes (cache/TLB/buffer state repair and timing-loop disturbance).
// The penalties are the calibrated quantity here: chosen so the suite
// reproduces Fig. 7's shape — sub-1% overall, with `file copy 256B` and
// `context switching` the clear worst at a few percent. DESIGN.md /
// EXPERIMENTS.md discuss this calibration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/core.h"
#include "os/rich_os.h"

namespace satin::workload {

struct WorkloadSpec {
  std::string name;
  sim::Duration iteration_cost;
  sim::Duration disruption_penalty;
};

// The 12 benchmark programs of Fig. 7, in plot order.
const std::vector<WorkloadSpec>& unixbench_suite();

class WorkloadThread final : public os::Thread {
 public:
  explicit WorkloadThread(WorkloadSpec spec);

  os::Action next_action(os::OsContext& ctx) override;

  const WorkloadSpec& spec() const { return spec_; }
  std::uint64_t iterations() const { return iterations_; }

  // Harness control: a stopped thread exits at its next scheduling point.
  void request_stop() { stop_requested_ = true; }
  bool stopped() const { return state() == os::ThreadState::kExited; }

  // Queues disruption work (consumed before the next counted iteration).
  void add_penalty(sim::Duration penalty) { pending_penalty_ += penalty; }

 private:
  WorkloadSpec spec_;
  std::uint64_t iterations_ = 0;
  sim::Duration pending_penalty_;
  bool stop_requested_ = false;
};

// Runs measurement windows for every suite workload and deals disruption
// penalties when a core returns from the secure world.
class UnixBenchHarness final : public hw::WorldListener {
 public:
  explicit UnixBenchHarness(os::RichOs& os);
  ~UnixBenchHarness() override;

  struct Result {
    std::string name;
    double score = 0.0;  // iterations per second per copy
  };

  // Runs each workload for `window` with `copies` parallel copies
  // (§VI-B2's 1-task and 6-task settings) and returns per-workload scores.
  std::vector<Result> run_suite(sim::Duration window, int copies);

  // WorldListener: penalty delivery.
  void on_secure_entry(hw::CoreId core, sim::Time when) override;
  void on_secure_exit(hw::CoreId core, sim::Time when) override;

 private:
  os::RichOs& os_;
  std::vector<WorkloadThread*> active_;
};

// 1 - score_with / score_without, per workload.
struct DegradationRow {
  std::string name;
  double baseline_score = 0.0;
  double satin_score = 0.0;
  double degradation = 0.0;  // fraction, e.g. 0.0356
};

std::vector<DegradationRow> compare_runs(
    const std::vector<UnixBenchHarness::Result>& baseline,
    const std::vector<UnixBenchHarness::Result>& with_satin);

// Arithmetic mean of per-test degradations (the paper's summary numbers
// 0.711% / 0.848% are suite averages).
double mean_degradation(const std::vector<DegradationRow>& rows);

}  // namespace satin::workload
