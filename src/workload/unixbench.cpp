#include "workload/unixbench.h"

#include <stdexcept>

namespace satin::workload {

const std::vector<WorkloadSpec>& unixbench_suite() {
  using sim::Duration;
  // iteration_cost: granularity of the program's inner loop (affects only
  // how finely freezes interleave). disruption_penalty: effective work
  // lost per secure-world stay on the program's core, calibrated to
  // Fig. 7: the two pipe/buffer-heavy tests (file copy 256B, context
  // switching) pay an order of magnitude more than the compute-bound
  // ones, which is what makes them the figure's outliers.
  static const std::vector<WorkloadSpec> suite = {
      {"dhrystone2", Duration::from_us(100), Duration::from_ms(1)},
      {"whetstone", Duration::from_us(120), Duration::from_ms(1)},
      {"execl_throughput", Duration::from_us(800), Duration::from_ms(3)},
      {"file_copy_256B", Duration::from_us(150), Duration::from_ms(165)},
      {"file_copy_1024B", Duration::from_us(200), Duration::from_ms(12)},
      {"file_copy_4096B", Duration::from_us(300), Duration::from_ms(6)},
      {"pipe_throughput", Duration::from_us(80), Duration::from_ms(10)},
      {"context_switching", Duration::from_us(60), Duration::from_ms(170)},
      {"process_creation", Duration::from_us(1200), Duration::from_ms(5)},
      {"shell_scripts_1", Duration::from_ms(5), Duration::from_ms(2)},
      {"shell_scripts_8", Duration::from_ms(12), Duration::from_ms(3)},
      {"syscall_overhead", Duration::from_us(40), Duration::from_ms(1)},
  };
  return suite;
}

WorkloadThread::WorkloadThread(WorkloadSpec spec)
    : os::Thread("unixbench/" + spec.name), spec_(std::move(spec)) {}

os::Action WorkloadThread::next_action(os::OsContext&) {
  if (stop_requested_) return os::ExitAction{};
  if (pending_penalty_ > sim::Duration::zero()) {
    // Repair work after a disruption: burns CPU, counts nothing.
    const sim::Duration penalty = pending_penalty_;
    pending_penalty_ = sim::Duration::zero();
    return os::ComputeAction{penalty, nullptr};
  }
  return os::ComputeAction{spec_.iteration_cost,
                           [this](os::OsContext&) { ++iterations_; }};
}

UnixBenchHarness::UnixBenchHarness(os::RichOs& os) : os_(os) {
  for (int c = 0; c < os_.platform().num_cores(); ++c) {
    os_.platform().core(c).add_world_listener(this);
  }
}

UnixBenchHarness::~UnixBenchHarness() {
  for (int c = 0; c < os_.platform().num_cores(); ++c) {
    os_.platform().core(c).remove_world_listener(this);
  }
}

void UnixBenchHarness::on_secure_entry(hw::CoreId, sim::Time) {}

void UnixBenchHarness::on_secure_exit(hw::CoreId core, sim::Time) {
  for (WorkloadThread* t : active_) {
    if (!t->stopped() && t->current_core() == core) {
      t->add_penalty(t->spec().disruption_penalty);
    }
  }
}

std::vector<UnixBenchHarness::Result> UnixBenchHarness::run_suite(
    sim::Duration window, int copies) {
  if (!os_.booted()) throw std::logic_error("UnixBenchHarness: boot first");
  if (copies <= 0) throw std::invalid_argument("UnixBenchHarness: copies");
  std::vector<Result> results;
  sim::Engine& engine = os_.platform().engine();
  for (const WorkloadSpec& spec : unixbench_suite()) {
    active_.clear();
    for (int i = 0; i < copies; ++i) {
      auto thread = std::make_unique<WorkloadThread>(spec);
      active_.push_back(thread.get());
      os_.add_thread(std::move(thread));
    }
    engine.run_for(window);
    std::uint64_t total = 0;
    for (WorkloadThread* t : active_) {
      total += t->iterations();
      t->request_stop();
    }
    // Drain: let stopped workloads leave their cores. Must outlast the
    // largest disruption penalty — a stopped thread mid-penalty still has
    // to burn it before it can exit, and a leftover zombie would skew the
    // next test's thread placement.
    engine.run_for(sim::Duration::from_ms(500));
    active_.clear();
    Result r;
    r.name = spec.name;
    r.score = static_cast<double>(total) / window.sec() /
              static_cast<double>(copies);
    results.push_back(std::move(r));
  }
  return results;
}

std::vector<DegradationRow> compare_runs(
    const std::vector<UnixBenchHarness::Result>& baseline,
    const std::vector<UnixBenchHarness::Result>& with_satin) {
  if (baseline.size() != with_satin.size()) {
    throw std::invalid_argument("compare_runs: size mismatch");
  }
  std::vector<DegradationRow> rows;
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    if (baseline[i].name != with_satin[i].name) {
      throw std::invalid_argument("compare_runs: order mismatch");
    }
    DegradationRow row;
    row.name = baseline[i].name;
    row.baseline_score = baseline[i].score;
    row.satin_score = with_satin[i].score;
    row.degradation =
        baseline[i].score > 0.0
            ? 1.0 - with_satin[i].score / baseline[i].score
            : 0.0;
    rows.push_back(std::move(row));
  }
  return rows;
}

double mean_degradation(const std::vector<DegradationRow>& rows) {
  if (rows.empty()) return 0.0;
  double sum = 0.0;
  for (const DegradationRow& r : rows) sum += r.degradation;
  return sum / static_cast<double>(rows.size());
}

}  // namespace satin::workload
