// Per-core run queue with Linux-like class ordering.
//
// RT (SCHED_FIFO) tasks strictly outrank CFS tasks; among RT tasks higher
// rt_priority wins and equal priorities run FIFO; among CFS tasks the
// smallest vruntime wins. §III-C2 relies on exactly this contract: a
// max-priority FIFO prober cannot be delayed by any CFS thread or
// lower-priority RT thread.
#pragma once

#include <cstddef>
#include <vector>

#include "os/thread.h"

namespace satin::os {

class RunQueue {
 public:
  void enqueue(Thread* thread, std::uint64_t seq);
  void remove(Thread* thread);
  bool contains(const Thread* thread) const;

  // Highest-ranked waiting thread (nullptr if empty). Does not dequeue.
  Thread* peek() const;
  // Removes and returns the highest-ranked waiting thread.
  Thread* pop();

  // Would `candidate` preempt `current` if it arrived now? Encodes the
  // class rules: RT preempts CFS; higher RT priority preempts lower; equal
  // RT priority does NOT preempt (FIFO); CFS wake-up preemption is decided
  // by the scheduler's vruntime check, not here.
  static bool rt_preempts(const Thread& candidate, const Thread& current);

  bool empty() const { return threads_.empty(); }
  std::size_t size() const { return threads_.size(); }
  bool has_cfs() const;
  bool has_rt() const;
  double min_cfs_vruntime() const;  // +inf if no CFS thread waits

  const std::vector<Thread*>& threads() const { return threads_; }

 private:
  // true if a ranks strictly ahead of b under the class rules.
  static bool ranks_before(const Thread* a, const Thread* b);

  // Small per-core populations (a handful of threads); a flat vector with
  // linear scans beats tree structures and keeps iteration trivial.
  std::vector<Thread*> threads_;
};

}  // namespace satin::os
