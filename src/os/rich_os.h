// The rich OS (normal-world Linux model).
//
// Owns the kernel image, the per-core scheduler (CFS + SCHED_FIFO), the
// periodic scheduling tick (HZ, NO_HZ_IDLE) and the timer-interrupt hook
// list that KProber-I abuses. Registers as a world listener on every core:
// a secure-world entry freezes that core's normal execution mid-action and
// the remainder resumes at exit — the availability side channel of §III-B.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "hw/platform.h"
#include "os/kernel_image.h"
#include "os/run_queue.h"
#include "os/thread.h"

namespace satin::os {

struct OsConfig {
  // Scheduling-clock tick frequency; lsk-4.4 arm64 defconfig uses 250
  // (§III-C1: "100 <= HZ <= 1000 for most versions of the Linux kernel").
  int hz = 250;
  // CONFIG_NO_HZ_IDLE: the per-core tick stops while the core idles.
  bool nohz_idle = true;
  // Direct cost of a context switch on the rich OS.
  sim::Duration context_switch_cost = sim::Duration::from_us(3);
  // CFS timeslice before a waiting fair task may preempt at tick.
  sim::Duration cfs_quantum = sim::Duration::from_ms(4);
  // CFS wake-up preemption granularity (sysctl_sched_wakeup_granularity).
  double wakeup_granularity_s = 1.0e-3;
  // A waking sleeper's vruntime is clamped to at most this far below the
  // queue minimum (GENTLE_FAIR_SLEEPERS-style bound). Deliberately below
  // the wakeup granularity: a lone sleepy CFS prober does NOT preempt a
  // running same-priority thread and can wait out its slice — the
  // §III-B2 instability that motivates KProber-II's RT scheduling.
  double sleeper_bonus_cap_s = 0.5e-3;
};

class RichOs final : public hw::WorldListener {
 public:
  RichOs(hw::Platform& platform, KernelImage image, OsConfig config = {});
  ~RichOs() override;

  // Trusted boot: installs the kernel image into physical memory, starts
  // per-core ticks and dispatches initial threads.
  void boot();
  bool booted() const { return booted_; }

  hw::Platform& platform() { return platform_; }
  const KernelImage& kernel_image() const { return image_; }
  const OsConfig& config() const { return config_; }

  // Registers a thread; the OS owns it. Returns a non-owning handle valid
  // for the OS lifetime.
  Thread* add_thread(std::unique_ptr<Thread> thread);

  // --- Timer-interrupt hook (KProber-I's injection point, §III-C1) -------
  // Hooks run in tick-handler context on the ticking core. Installing one
  // models rewriting the IRQ exception vector; it is the attacker's job to
  // also plant the memory trace (attack/kprober.cc does).
  using TickHook = std::function<void(hw::CoreId, sim::Time)>;
  int add_tick_hook(TickHook hook);
  void remove_tick_hook(int id);

  // --- Syscall table view ------------------------------------------------
  // Reads the current handler pointer for syscall `nr` straight from
  // physical memory — a hijacked entry is visible here.
  std::uint64_t syscall_handler_address(int nr) const;

  // --- Introspection-facing stats ----------------------------------------
  sim::Duration idle_time(hw::CoreId core) const;
  int runnable_count(hw::CoreId core) const;
  Thread* running_thread(hw::CoreId core) const;

  // WorldListener.
  void on_secure_entry(hw::CoreId core, sim::Time when) override;
  void on_secure_exit(hw::CoreId core, sim::Time when) override;

 private:
  struct CpuState {
    RunQueue queue;
    Thread* current = nullptr;
    Thread* last_thread = nullptr;  // context-switch detection
    sim::EventHandle completion;    // pending compute completion
    sim::Time action_end;           // when the pending compute finishes
    sim::Time slice_start;          // accounting anchor for `current`
    bool frozen = false;            // secure world holds this core
    bool tick_active = false;
    sim::Time idle_since;
    bool idle_accounting = false;
    sim::Duration idle_total;
  };

  CpuState& cpu(hw::CoreId core) { return cpus_.at(static_cast<std::size_t>(core)); }
  const CpuState& cpu(hw::CoreId core) const {
    return cpus_.at(static_cast<std::size_t>(core));
  }

  void enqueue_thread(Thread* thread);           // wake/requeue + placement
  hw::CoreId choose_core(const Thread& thread) const;
  void maybe_preempt_for(hw::CoreId core, Thread& wakee);
  void dispatch(hw::CoreId core);
  void begin_next_action(hw::CoreId core);
  void start_compute(hw::CoreId core, sim::Duration total);
  void finish_compute(hw::CoreId core);
  void preempt_current(hw::CoreId core);
  void account_current(hw::CoreId core);
  void mark_idle(hw::CoreId core, bool idle);
  void on_tick(hw::CoreId core);
  void program_tick(hw::CoreId core);

  hw::Platform& platform_;
  KernelImage image_;
  OsConfig config_;
  sim::Duration tick_period_;
  bool booted_ = false;
  std::vector<std::unique_ptr<Thread>> threads_;
  std::vector<CpuState> cpus_;
  std::vector<std::pair<int, TickHook>> tick_hooks_;
  int next_hook_id_ = 1;
  int next_tid_ = 1;
  std::uint64_t enqueue_counter_ = 0;
};

}  // namespace satin::os
