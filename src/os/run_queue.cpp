#include "os/run_queue.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace satin::os {

void RunQueue::enqueue(Thread* thread, std::uint64_t seq) {
  if (contains(thread)) {
    throw std::logic_error("RunQueue::enqueue: already queued: " +
                           thread->name());
  }
  thread->enqueue_seq_ = seq;
  threads_.push_back(thread);
}

void RunQueue::remove(Thread* thread) {
  threads_.erase(std::remove(threads_.begin(), threads_.end(), thread),
                 threads_.end());
}

bool RunQueue::contains(const Thread* thread) const {
  return std::find(threads_.begin(), threads_.end(), thread) != threads_.end();
}

bool RunQueue::ranks_before(const Thread* a, const Thread* b) {
  const bool a_rt = a->policy() == SchedPolicy::kRtFifo;
  const bool b_rt = b->policy() == SchedPolicy::kRtFifo;
  if (a_rt != b_rt) return a_rt;
  if (a_rt) {
    if (a->rt_priority() != b->rt_priority()) {
      return a->rt_priority() > b->rt_priority();
    }
    return a->enqueue_seq_ < b->enqueue_seq_;  // FIFO
  }
  return a->vruntime_s_ < b->vruntime_s_;
}

Thread* RunQueue::peek() const {
  Thread* best = nullptr;
  for (Thread* t : threads_) {
    if (best == nullptr || ranks_before(t, best)) best = t;
  }
  return best;
}

Thread* RunQueue::pop() {
  Thread* best = peek();
  if (best != nullptr) remove(best);
  return best;
}

bool RunQueue::rt_preempts(const Thread& candidate, const Thread& current) {
  if (candidate.policy() != SchedPolicy::kRtFifo) return false;
  if (current.policy() != SchedPolicy::kRtFifo) return true;
  return candidate.rt_priority() > current.rt_priority();
}

bool RunQueue::has_cfs() const {
  return std::any_of(threads_.begin(), threads_.end(), [](const Thread* t) {
    return t->policy() == SchedPolicy::kCfs;
  });
}

bool RunQueue::has_rt() const {
  return std::any_of(threads_.begin(), threads_.end(), [](const Thread* t) {
    return t->policy() == SchedPolicy::kRtFifo;
  });
}

double RunQueue::min_cfs_vruntime() const {
  double best = std::numeric_limits<double>::infinity();
  for (const Thread* t : threads_) {
    if (t->policy() == SchedPolicy::kCfs) best = std::min(best, t->vruntime_s_);
  }
  return best;
}

}  // namespace satin::os
