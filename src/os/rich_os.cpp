#include "os/rich_os.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/log.h"

namespace satin::os {

RichOs::RichOs(hw::Platform& platform, KernelImage image, OsConfig config)
    : platform_(platform),
      image_(std::move(image)),
      config_(config),
      tick_period_(sim::Duration::from_sec_f(1.0 / config.hz)),
      cpus_(static_cast<std::size_t>(platform.num_cores())) {
  if (config.hz < 100 || config.hz > 1000) {
    throw std::invalid_argument("OsConfig: HZ outside the Linux 100..1000 range");
  }
}

RichOs::~RichOs() {
  for (int c = 0; c < platform_.num_cores(); ++c) {
    platform_.core(c).remove_world_listener(this);
  }
}

void RichOs::boot() {
  if (booted_) throw std::logic_error("RichOs::boot called twice");
  booted_ = true;
  image_.install(platform_.memory());
  for (int c = 0; c < platform_.num_cores(); ++c) {
    platform_.core(c).add_world_listener(this);
  }
  platform_.gic().set_nonsecure_handler([this](hw::CoreId core, hw::IrqId irq) {
    if (irq == hw::IrqId::kNonSecurePhysTimer) on_tick(core);
  });
  // Threads registered before boot become runnable now.
  for (auto& t : threads_) {
    if (t->state() == ThreadState::kNew) enqueue_thread(t.get());
  }
  for (int c = 0; c < platform_.num_cores(); ++c) {
    if (cpu(c).current == nullptr) dispatch(c);
    if (!config_.nohz_idle && !cpu(c).tick_active) program_tick(c);
  }
}

Thread* RichOs::add_thread(std::unique_ptr<Thread> thread) {
  Thread* t = thread.get();
  t->tid_ = next_tid_++;
  threads_.push_back(std::move(thread));
  if (booted_) enqueue_thread(t);
  return t;
}

int RichOs::add_tick_hook(TickHook hook) {
  const int id = next_hook_id_++;
  tick_hooks_.emplace_back(id, std::move(hook));
  return id;
}

void RichOs::remove_tick_hook(int id) {
  std::erase_if(tick_hooks_, [id](const auto& p) { return p.first == id; });
}

std::uint64_t RichOs::syscall_handler_address(int nr) const {
  const std::size_t off = image_.syscall_entry_offset(nr);
  const hw::Memory& mem =
      const_cast<hw::Platform&>(platform_).memory();
  std::uint64_t value = 0;
  for (int b = 7; b >= 0; --b) {
    value = (value << 8) | mem.read(off + static_cast<std::size_t>(b));
  }
  return value;
}

sim::Duration RichOs::idle_time(hw::CoreId core) const {
  const CpuState& st = cpu(core);
  sim::Duration total = st.idle_total;
  if (st.idle_accounting) {
    total += platform_.engine().now() - st.idle_since;
  }
  return total;
}

int RichOs::runnable_count(hw::CoreId core) const {
  const CpuState& st = cpu(core);
  return static_cast<int>(st.queue.size()) + (st.current != nullptr ? 1 : 0);
}

Thread* RichOs::running_thread(hw::CoreId core) const {
  return cpu(core).current;
}

// ---------------------------------------------------------------------------
// Wake path

void RichOs::enqueue_thread(Thread* thread) {
  const hw::CoreId core = choose_core(*thread);
  thread->current_core_ = core;
  thread->state_ = ThreadState::kRunnable;
  thread->ran_in_slice_ = sim::Duration::zero();
  CpuState& st = cpu(core);
  if (thread->policy() == SchedPolicy::kCfs) {
    // Sleeper fairness: a waking thread may run soon, but not monopolize —
    // clamp its vruntime to a bounded bonus below the core's minimum.
    double ref = st.queue.min_cfs_vruntime();
    if (st.current != nullptr && st.current->policy() == SchedPolicy::kCfs) {
      ref = std::min(ref, st.current->vruntime_s_);
    }
    if (ref != std::numeric_limits<double>::infinity()) {
      thread->vruntime_s_ = std::max(thread->vruntime_s_,
                                     ref - config_.sleeper_bonus_cap_s);
    }
  }
  st.queue.enqueue(thread, enqueue_counter_++);
  if (st.frozen) return;  // the core is in the secure world; wait for exit
  if (st.current == nullptr) {
    dispatch(core);
  } else {
    maybe_preempt_for(core, *thread);
  }
}

hw::CoreId RichOs::choose_core(const Thread& thread) const {
  if (thread.pinned_core()) return *thread.pinned_core();
  hw::CoreId best = 0;
  int best_score = std::numeric_limits<int>::max();
  for (int c = 0; c < platform_.num_cores(); ++c) {
    const CpuState& st = cpu(c);
    int score = static_cast<int>(st.queue.size()) * 2 +
                (st.current != nullptr ? 2 : 0) + (st.frozen ? 1 : 0);
    if (c == thread.current_core()) score -= 1;  // cache affinity
    if (score < best_score) {
      best_score = score;
      best = c;
    }
  }
  return best;
}

void RichOs::maybe_preempt_for(hw::CoreId core, Thread& wakee) {
  CpuState& st = cpu(core);
  Thread* cur = st.current;
  if (cur == nullptr) return;
  if (RunQueue::rt_preempts(wakee, *cur)) {
    preempt_current(core);
    dispatch(core);
    return;
  }
  if (wakee.policy() == SchedPolicy::kCfs &&
      cur->policy() == SchedPolicy::kCfs) {
    account_current(core);
    if (wakee.vruntime_s_ + config_.wakeup_granularity_s < cur->vruntime_s_) {
      preempt_current(core);
      dispatch(core);
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch and actions

void RichOs::dispatch(hw::CoreId core) {
  CpuState& st = cpu(core);
  if (st.frozen || st.current != nullptr) return;
  Thread* next = st.queue.pop();
  if (next == nullptr) {
    mark_idle(core, true);
    return;
  }
  mark_idle(core, false);
  if (!st.tick_active) program_tick(core);
  next->state_ = ThreadState::kRunning;
  next->current_core_ = core;
  st.current = next;
  st.slice_start = platform_.engine().now();
  begin_next_action(core);
}

void RichOs::begin_next_action(hw::CoreId core) {
  CpuState& st = cpu(core);
  Thread* t = st.current;
  assert(t != nullptr);
  sim::Engine& engine = platform_.engine();

  if (t->remaining_compute_ > sim::Duration::zero()) {
    // Resuming a preempted/frozen compute; the context-switch tax applies
    // when a different thread ran in between.
    sim::Duration total = t->remaining_compute_;
    if (st.last_thread != t) {
      total += config_.context_switch_cost;
      SATIN_METRIC_INC("os.context_switches");
    }
    st.last_thread = t;
    start_compute(core, total);
    return;
  }

  OsContext ctx{*this, engine.now(), core};
  Action action = t->next_action(ctx);

  if (auto* compute = std::get_if<ComputeAction>(&action)) {
    sim::Duration total = compute->duration;
    if (total <= sim::Duration::zero()) total = sim::Duration::from_ps(1);
    t->pending_on_complete_ = std::move(compute->on_complete);
    t->remaining_compute_ = total;
    if (st.last_thread != t) {
      total += config_.context_switch_cost;
      SATIN_METRIC_INC("os.context_switches");
    }
    st.last_thread = t;
    start_compute(core, total);
    return;
  }
  st.last_thread = t;

  if (auto* sleep_for = std::get_if<SleepForAction>(&action)) {
    const sim::Time wake = engine.now() + sleep_for->duration;
    t->state_ = ThreadState::kSleeping;
    st.current = nullptr;
    engine.schedule_at(wake, [this, t] {
      if (t->state_ == ThreadState::kSleeping) enqueue_thread(t);
    });
    dispatch(core);
    return;
  }
  if (auto* sleep_until = std::get_if<SleepUntilAction>(&action)) {
    const sim::Time wake =
        sleep_until->until > engine.now() ? sleep_until->until : engine.now();
    t->state_ = ThreadState::kSleeping;
    st.current = nullptr;
    engine.schedule_at(wake, [this, t] {
      if (t->state_ == ThreadState::kSleeping) enqueue_thread(t);
    });
    dispatch(core);
    return;
  }
  if (std::get_if<YieldAction>(&action) != nullptr) {
    account_current(core);
    t->state_ = ThreadState::kRunnable;
    st.current = nullptr;
    st.queue.enqueue(t, enqueue_counter_++);
    dispatch(core);
    return;
  }
  // ExitAction
  account_current(core);
  t->state_ = ThreadState::kExited;
  st.current = nullptr;
  dispatch(core);
}

void RichOs::start_compute(hw::CoreId core, sim::Duration total) {
  CpuState& st = cpu(core);
  sim::Engine& engine = platform_.engine();
  st.action_end = engine.now() + total;
  st.completion =
      engine.schedule_at(st.action_end, [this, core] { finish_compute(core); });
}

void RichOs::finish_compute(hw::CoreId core) {
  CpuState& st = cpu(core);
  Thread* t = st.current;
  assert(t != nullptr);
  account_current(core);
  t->remaining_compute_ = sim::Duration::zero();
  auto cb = std::move(t->pending_on_complete_);
  t->pending_on_complete_ = nullptr;
  if (cb) {
    OsContext ctx{*this, platform_.engine().now(), core};
    cb(ctx);
  }
  // The callback may have woken an RT thread that preempted `t`; only
  // continue with `t` if it still owns this core.
  if (st.current == t) begin_next_action(core);
}

void RichOs::preempt_current(hw::CoreId core) {
  CpuState& st = cpu(core);
  Thread* t = st.current;
  assert(t != nullptr);
  account_current(core);
  if (st.completion.pending()) {
    st.completion.cancel();
    const sim::Time now = platform_.engine().now();
    t->remaining_compute_ =
        st.action_end > now ? st.action_end - now : sim::Duration::from_ps(1);
  }
  t->state_ = ThreadState::kRunnable;
  st.current = nullptr;
  st.queue.enqueue(t, enqueue_counter_++);
}

void RichOs::account_current(hw::CoreId core) {
  CpuState& st = cpu(core);
  Thread* t = st.current;
  if (t == nullptr) return;
  const sim::Time now = platform_.engine().now();
  const sim::Duration elapsed = now - st.slice_start;
  if (elapsed > sim::Duration::zero()) {
    t->cpu_time_ += elapsed;
    t->ran_in_slice_ += elapsed;
    if (t->policy() == SchedPolicy::kCfs) t->vruntime_s_ += elapsed.sec();
  }
  st.slice_start = now;
}

void RichOs::mark_idle(hw::CoreId core, bool idle) {
  CpuState& st = cpu(core);
  const sim::Time now = platform_.engine().now();
  if (idle && !st.idle_accounting) {
    st.idle_accounting = true;
    st.idle_since = now;
  } else if (!idle && st.idle_accounting) {
    st.idle_accounting = false;
    st.idle_total += now - st.idle_since;
  }
}

// ---------------------------------------------------------------------------
// Tick

void RichOs::program_tick(hw::CoreId core) {
  CpuState& st = cpu(core);
  st.tick_active = true;
  platform_.timer().program_nonsecure(core,
                                      platform_.engine().now() + tick_period_);
}

void RichOs::on_tick(hw::CoreId core) {
  CpuState& st = cpu(core);
  SATIN_TRACE_INSTANT("os", "tick", platform_.engine().now(), core,
                      obs::kWorldNormal);
  SATIN_METRIC_INC("os.ticks");
  if (st.frozen) {
    // A tick pended across a secure stay lands here before our own
    // on_secure_exit runs (listener order); the exit path re-programs.
    st.tick_active = false;
    return;
  }
  // Timer-interrupt handler body: hijacked hooks first (KProber-I runs its
  // Time Reporter/Comparer before resuming the normal handler, §III-C1).
  if (!tick_hooks_.empty()) {
    auto hooks = tick_hooks_;  // hooks may unregister themselves
    const sim::Time now = platform_.engine().now();
    for (auto& [id, hook] : hooks) hook(core, now);
  }
  account_current(core);
  Thread* cur = st.current;
  if (cur != nullptr && cur->policy() == SchedPolicy::kCfs &&
      cur->ran_in_slice_ >= config_.cfs_quantum && st.queue.has_cfs() &&
      st.queue.min_cfs_vruntime() <= cur->vruntime_s_) {
    preempt_current(core);
    dispatch(core);
  }
  const bool idle = st.current == nullptr && st.queue.empty();
  if (idle && config_.nohz_idle) {
    st.tick_active = false;  // NO_HZ_IDLE: tick stops on the idle core
    return;
  }
  program_tick(core);
}

// ---------------------------------------------------------------------------
// Secure-world freeze (the availability side channel)

void RichOs::on_secure_entry(hw::CoreId core, sim::Time) {
  CpuState& st = cpu(core);
  st.frozen = true;
  if (st.current != nullptr) {
    account_current(core);
    assert(st.completion.pending());
    st.completion.cancel();
    const sim::Time now = platform_.engine().now();
    st.current->remaining_compute_ =
        st.action_end > now ? st.action_end - now : sim::Duration::from_ps(1);
  } else {
    // The core was OS-idle; pause idle accounting while the secure world
    // owns it.
    mark_idle(core, false);
  }
}

void RichOs::on_secure_exit(hw::CoreId core, sim::Time) {
  CpuState& st = cpu(core);
  st.frozen = false;
  if (st.current != nullptr) {
    st.slice_start = platform_.engine().now();
    start_compute(core, st.current->remaining_compute_);
    // An RT thread woken during the freeze outranks the resumed thread.
    Thread* waiting = st.queue.peek();
    if (waiting != nullptr && RunQueue::rt_preempts(*waiting, *st.current)) {
      preempt_current(core);
      dispatch(core);
    }
  } else {
    dispatch(core);
  }
  const bool busy = st.current != nullptr || !st.queue.empty();
  if ((busy || !config_.nohz_idle) && !st.tick_active) program_tick(core);
}

}  // namespace satin::os
