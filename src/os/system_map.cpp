#include "os/system_map.h"

#include <algorithm>
#include <stdexcept>

namespace satin::os {

SystemMap::SystemMap(std::vector<Section> sections, std::vector<Symbol> symbols)
    : sections_(std::move(sections)), symbols_(std::move(symbols)) {
  if (sections_.empty()) throw std::invalid_argument("SystemMap: no sections");
  std::sort(sections_.begin(), sections_.end(),
            [](const Section& a, const Section& b) {
              return a.offset < b.offset;
            });
  std::size_t cursor = 0;
  int max_region = -1;
  for (const Section& s : sections_) {
    if (s.offset != cursor) {
      throw std::invalid_argument("SystemMap: sections not contiguous at " +
                                  s.name);
    }
    if (s.region < 0) {
      throw std::invalid_argument("SystemMap: section without region: " +
                                  s.name);
    }
    cursor = s.end();
    max_region = std::max(max_region, s.region);
  }
  total_size_ = cursor;
  region_count_ = max_region + 1;
  // Regions must each be one contiguous extent; region_extent throws if not.
  for (int r = 0; r < region_count_; ++r) (void)region_extent(r);
}

SystemMap::Extent SystemMap::region_extent(int region) const {
  std::size_t lo = total_size_;
  std::size_t hi = 0;
  std::size_t covered = 0;
  for (const Section& s : sections_) {
    if (s.region != region) continue;
    lo = std::min(lo, s.offset);
    hi = std::max(hi, s.end());
    covered += s.size;
  }
  if (covered == 0) {
    throw std::invalid_argument("SystemMap: empty region");
  }
  if (covered != hi - lo) {
    throw std::invalid_argument("SystemMap: region not contiguous");
  }
  return Extent{lo, hi - lo};
}

std::optional<Symbol> SystemMap::find_symbol(const std::string& name) const {
  for (const Symbol& s : symbols_) {
    if (s.name == name) return s;
  }
  return std::nullopt;
}

int SystemMap::region_of(std::size_t offset) const {
  for (const Section& s : sections_) {
    if (offset >= s.offset && offset < s.end()) return s.region;
  }
  throw std::out_of_range("SystemMap::region_of: offset outside kernel");
}

namespace {

class MapBuilder {
 public:
  // Appends one introspection region made of parts with integer weights;
  // the last part absorbs rounding so the region size is exact.
  void add_region(std::size_t region_size, SectionKind kind,
                  std::vector<std::pair<std::string, int>> parts) {
    int total_weight = 0;
    for (const auto& [name, w] : parts) total_weight += w;
    std::vector<std::pair<std::string, std::size_t>> exact;
    std::size_t used = 0;
    for (std::size_t i = 0; i < parts.size(); ++i) {
      const bool last = i + 1 == parts.size();
      const std::size_t size =
          last ? region_size - used
               : region_size * static_cast<std::size_t>(parts[i].second) /
                     static_cast<std::size_t>(total_weight);
      exact.emplace_back(parts[i].first, size);
      used += size;
    }
    add_region_exact(kind, exact);
  }

  // Appends one region from explicitly sized sections.
  void add_region_exact(
      SectionKind kind,
      const std::vector<std::pair<std::string, std::size_t>>& parts) {
    for (const auto& [name, size] : parts) {
      if (size == 0) continue;
      sections_.push_back(Section{name, cursor_, size, kind, region_});
      cursor_ += size;
    }
    ++region_;
  }

  void add_symbol(std::string name, std::size_t offset, std::size_t size) {
    symbols_.push_back(Symbol{std::move(name), offset, size});
  }

  std::size_t cursor() const { return cursor_; }

  SystemMap build() {
    return SystemMap(std::move(sections_), std::move(symbols_));
  }

 private:
  std::vector<Section> sections_;
  std::vector<Symbol> symbols_;
  std::size_t cursor_ = 0;
  int region_ = 0;
};

}  // namespace

SystemMap make_default_map() {
  MapBuilder b;

  // Region sizes are chosen so that: the total matches the paper's kernel
  // static area (11,916,240 B), there are 19 regions, the largest is
  // 876,616 B, the smallest 431,360 B (§VI-A2), and every region stays
  // below the §IV-C race bound of 1,218,351 B. The .text/.rodata split
  // mirrors an arm64 lsk-4.4 System.map at coarse grain.

  // Region 0: kernel entry + start of .text; hosts the AArch64 exception
  // vector table (the VBAR_EL1 target KProber-I redirects, §IV-A1).
  b.add_symbol("_text", 0, 0);
  b.add_symbol("vectors", 2048, 2048);
  b.add_region(608'264, SectionKind::kText,
               {{".head.text", 1}, {".text.entry", 9}, {".text.core.0", 90}});

  // Regions 1..8: remainder of .text.
  const std::size_t text_parts[] = {705'000, 545'000, 670'000, 580'000,
                                    730'000, 520'000, 650'000, 600'000};
  int text_idx = 1;
  for (std::size_t size : text_parts) {
    b.add_region(size, SectionKind::kText,
                 {{".text.core." + std::to_string(text_idx), 7},
                  {".text.cold." + std::to_string(text_idx), 2},
                  {".text.unlikely." + std::to_string(text_idx), 1}});
    ++text_idx;
  }
  b.add_symbol("_etext", b.cursor(), 0);

  // Regions 9..14: .rodata. arm64 keeps sys_call_table const, so the table
  // (291 entries x 8 B) sits in the last .rodata region — region 14, where
  // §VI-B1 places the hijacked GETTID handler.
  const std::size_t rodata_parts[] = {685'000, 565'000, 638'000, 612'000,
                                      652'500};
  for (int i = 0; i < 5; ++i) {
    b.add_region(rodata_parts[i], SectionKind::kRoData,
                 {{".rodata." + std::to_string(i), 4},
                  {".rodata.str." + std::to_string(i), 1}});
  }
  {
    constexpr std::size_t kRegionSize = 597'500;
    constexpr std::size_t kPre = 200'000;
    constexpr std::size_t kTableBytes =
        static_cast<std::size_t>(kSyscallTableEntries) * kSyscallEntryBytes;
    b.add_symbol("sys_call_table", b.cursor() + kPre, kTableBytes);
    b.add_region_exact(SectionKind::kRoData,
                       {{".rodata.5", kPre},
                        {".rodata.syscalls", kTableBytes},
                        {".rodata.5b", kRegionSize - kPre - kTableBytes}});
  }

  // Region 15: export/parameter tables.
  b.add_region(709'000, SectionKind::kOther,
               {{"__ksymtab", 3}, {"__kcrctab", 1}, {"__param", 1}});

  // Region 16: init text/data (static after boot in this model — the
  // introspection hashes it like the rest of the image).
  b.add_region(541'000, SectionKind::kInit,
               {{".init.text", 11}, {".init.data", 9}});

  // Region 17: .data — the largest area (876,616 B).
  b.add_region(876'616, SectionKind::kData,
               {{".data..percpu", 1}, {".data", 9}});

  // Region 18: .bss — the smallest area (431,360 B).
  b.add_region_exact(SectionKind::kBss,
                     {{".bss", 431'360 - 16'384}, {".brk", 16'384}});

  b.add_symbol("_end", b.cursor(), 0);
  return b.build();
}

}  // namespace satin::os
