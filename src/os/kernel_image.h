// The rich OS kernel image: bytes + layout.
//
// Produces the deterministic byte content of the kernel static area that
// the introspection hashes and the rootkit corrupts. Content is synthetic
// (seeded PRNG "code") but structurally faithful: a real syscall dispatch
// table whose entries hold handler addresses inside .text, and an AArch64
// exception vector table at `vectors` whose IRQ slot KProber-I rewrites.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "hw/memory.h"
#include "os/system_map.h"

namespace satin::os {

class KernelImage {
 public:
  explicit KernelImage(SystemMap map,
                       std::uint64_t content_seed = 0x4C534B2D34'34ull);

  const SystemMap& map() const { return map_; }
  std::size_t size() const { return bytes_.size(); }

  // Pristine (benign) image bytes; authorized hashes are computed on this.
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

  // Copies the image into physical memory at offset 0 (trusted boot).
  void install(hw::Memory& memory) const;

  // Offset of syscall table entry `nr` within the image.
  std::size_t syscall_entry_offset(int nr) const;
  // The benign 8-byte handler pointer stored at that entry.
  std::array<std::uint8_t, 8> benign_syscall_entry(int nr) const;

  // Offset of the 8-byte IRQ slot of the exception vector table (the word
  // KProber-I redirects; AArch64 "IRQ, current EL with SPx" is vector
  // offset 0x280).
  std::size_t irq_vector_offset() const;
  std::array<std::uint8_t, 8> benign_irq_vector() const;

 private:
  std::array<std::uint8_t, 8> read8(std::size_t offset) const;

  SystemMap map_;
  std::vector<std::uint8_t> bytes_;
  std::size_t syscall_table_offset_ = 0;
  std::size_t vectors_offset_ = 0;
};

}  // namespace satin::os
