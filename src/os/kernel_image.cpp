#include "os/kernel_image.h"

#include <stdexcept>

namespace satin::os {

namespace {
// splitmix64: fast, deterministic filler for the synthetic "machine code".
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t kTextVaBase = 0xFFFFFF8008080000ull;
constexpr std::size_t kIrqVectorSlot = 0x280;
}  // namespace

KernelImage::KernelImage(SystemMap map, std::uint64_t content_seed)
    : map_(std::move(map)), bytes_(map_.total_size()) {
  std::uint64_t state = content_seed;
  for (std::size_t i = 0; i + 8 <= bytes_.size(); i += 8) {
    const std::uint64_t word = splitmix64(state);
    for (int b = 0; b < 8; ++b) {
      bytes_[i + static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(word >> (8 * b));
    }
  }
  for (std::size_t i = bytes_.size() & ~std::size_t{7}; i < bytes_.size();
       ++i) {
    bytes_[i] = static_cast<std::uint8_t>(splitmix64(state));
  }

  const auto table = map_.find_symbol("sys_call_table");
  if (!table) throw std::invalid_argument("KernelImage: no sys_call_table");
  syscall_table_offset_ = table->offset;
  const auto vectors = map_.find_symbol("vectors");
  if (!vectors) throw std::invalid_argument("KernelImage: no vectors");
  vectors_offset_ = vectors->offset;

  // Give each syscall entry a plausible handler VA inside .text so the
  // table holds structured data, the way a real image does. Deterministic
  // in the syscall number (independent of the filler seed), so tests can
  // predict entries.
  const auto etext = map_.find_symbol("_etext");
  const std::size_t text_size = etext ? etext->offset : bytes_.size() / 2;
  for (int nr = 0; nr < kSyscallTableEntries; ++nr) {
    std::uint64_t h = 0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(nr + 1);
    h ^= h >> 29;
    const std::uint64_t handler =
        kTextVaBase + (h % static_cast<std::uint64_t>(text_size)) / 4 * 4;
    const std::size_t off = syscall_entry_offset(nr);
    for (int b = 0; b < 8; ++b) {
      bytes_[off + static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(handler >> (8 * b));
    }
  }
}

void KernelImage::install(hw::Memory& memory) const {
  if (memory.size() < bytes_.size()) {
    throw std::invalid_argument("KernelImage::install: memory too small");
  }
  memory.poke(0, bytes_);
}

std::size_t KernelImage::syscall_entry_offset(int nr) const {
  if (nr < 0 || nr >= kSyscallTableEntries) {
    throw std::out_of_range("syscall_entry_offset: bad syscall number");
  }
  return syscall_table_offset_ +
         static_cast<std::size_t>(nr) * kSyscallEntryBytes;
}

std::array<std::uint8_t, 8> KernelImage::read8(std::size_t offset) const {
  std::array<std::uint8_t, 8> out{};
  for (int b = 0; b < 8; ++b) {
    out[static_cast<std::size_t>(b)] = bytes_.at(offset + static_cast<std::size_t>(b));
  }
  return out;
}

std::array<std::uint8_t, 8> KernelImage::benign_syscall_entry(int nr) const {
  return read8(syscall_entry_offset(nr));
}

std::size_t KernelImage::irq_vector_offset() const {
  return vectors_offset_ + kIrqVectorSlot;
}

std::array<std::uint8_t, 8> KernelImage::benign_irq_vector() const {
  return read8(irq_vector_offset());
}

}  // namespace satin::os
