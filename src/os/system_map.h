// Synthetic System.map of the rich OS kernel.
//
// The paper's normal world runs OpenEmbedded LAMP with kernel lsk-4.4-armlt
// (§IV-A); its System.map drives two things we must reproduce exactly:
//   * the kernel static area is 11,916,240 bytes (§IV-C), and
//   * SATIN divides it, at System.map boundaries, into 19 introspection
//     areas — largest 876,616 B, smallest 431,360 B — with the hijacked
//     syscall handler living in area 14 (§VI-A2, §VI-B1).
// We cannot ship the original OpenEmbedded image, so `make_default_map()`
// synthesizes a section list with the same totals, the same area grouping,
// and the interesting symbols (sys_call_table, the exception vector table)
// at section-consistent offsets. A generic partitioner for arbitrary maps
// lives in core/areas.h; the default map carries explicit region indices
// the way the authors grouped their map.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace satin::os {

// Rough classification of a System.map region (affects nothing in the
// race; kept for realism and for tests that reason about the layout).
enum class SectionKind { kText, kRoData, kData, kBss, kInit, kOther };

struct Section {
  std::string name;
  std::size_t offset = 0;  // from kernel image start
  std::size_t size = 0;
  SectionKind kind = SectionKind::kOther;
  // Introspection area this section belongs to ("each section of the
  // normal world OS's System.map only belongs to one area", §VI-A2).
  int region = -1;

  std::size_t end() const { return offset + size; }
};

struct Symbol {
  std::string name;
  std::size_t offset = 0;
  std::size_t size = 0;
};

class SystemMap {
 public:
  SystemMap(std::vector<Section> sections, std::vector<Symbol> symbols);

  const std::vector<Section>& sections() const { return sections_; }
  const std::vector<Symbol>& symbols() const { return symbols_; }

  std::size_t total_size() const { return total_size_; }
  int region_count() const { return region_count_; }

  // Contiguous [offset, size) extent of one region.
  struct Extent {
    std::size_t offset = 0;
    std::size_t size = 0;
    std::size_t end() const { return offset + size; }
  };
  Extent region_extent(int region) const;

  std::optional<Symbol> find_symbol(const std::string& name) const;
  // Region containing the byte at `offset`.
  int region_of(std::size_t offset) const;

 private:
  std::vector<Section> sections_;
  std::vector<Symbol> symbols_;
  std::size_t total_size_ = 0;
  int region_count_ = 0;
};

// The default Juno/lsk-4.4-flavoured map described above. Guarantees
// (asserted by tests):
//   total_size() == 11,916,240
//   region_count() == 19
//   max region size == 876,616; min region size == 431,360
//   find_symbol("sys_call_table") lies in region 14
//   find_symbol("vectors") (exception vector table) lies in region 0
SystemMap make_default_map();

// Syscall numbers used by the sample attack (§IV-A2): AArch64 __NR_gettid.
inline constexpr int kGettidSyscallNr = 178;
inline constexpr std::size_t kSyscallEntryBytes = 8;
inline constexpr int kSyscallTableEntries = 291;

}  // namespace satin::os
