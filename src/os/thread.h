// Rich-OS thread model.
//
// Threads are cooperative state machines driven by the scheduler: each
// time a thread may proceed, the scheduler asks for its next Action
// (compute for a duration, sleep, yield, exit). Compute actions are
// preemptible — the scheduler tracks the unfinished remainder across
// preemptions, CFS quantum expiry and secure-world freezes, which is
// exactly how a prober thread "loses" time when its core is taken.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <variant>

#include "hw/types.h"
#include "sim/time.h"

namespace satin::os {

class RichOs;

// Linux scheduling classes the paper leans on (§III-C2): SCHED_FIFO
// outranks CFS; higher rt_priority outranks lower.
enum class SchedPolicy { kCfs, kRtFifo };

enum class ThreadState { kNew, kRunnable, kRunning, kSleeping, kExited };

struct OsContext {
  RichOs& os;
  sim::Time now;
  hw::CoreId core;
};

// Consume CPU for `duration`; `on_complete` (optional) runs when the full
// duration has been executed (across preemptions).
struct ComputeAction {
  sim::Duration duration;
  std::function<void(OsContext&)> on_complete;
};
struct SleepForAction {
  sim::Duration duration;
};
struct SleepUntilAction {
  sim::Time until;
};
struct YieldAction {};
struct ExitAction {};

using Action = std::variant<ComputeAction, SleepForAction, SleepUntilAction,
                            YieldAction, ExitAction>;

class Thread {
 public:
  explicit Thread(std::string name) : name_(std::move(name)) {}
  virtual ~Thread() = default;
  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  // Called whenever the previous action finished; returns what to do next.
  virtual Action next_action(OsContext& ctx) = 0;

  const std::string& name() const { return name_; }
  int tid() const { return tid_; }
  ThreadState state() const { return state_; }
  SchedPolicy policy() const { return policy_; }
  int rt_priority() const { return rt_priority_; }

  // pthread_setschedparam equivalent (§IV-A1 uses SCHED_FIFO with
  // sched_get_priority_max for all KProber-II threads).
  void set_policy(SchedPolicy policy, int rt_priority = 0) {
    policy_ = policy;
    rt_priority_ = rt_priority;
  }

  // CPU-affinity pinning (§III-B1: "we fix the CPU affinity of each
  // thread" so a paused thread cannot migrate off a secure-held core).
  void pin_to_core(hw::CoreId core) { pinned_ = core; }
  void clear_pinning() { pinned_.reset(); }
  std::optional<hw::CoreId> pinned_core() const { return pinned_; }

  // Core the thread is currently running/queued on (-1 if none).
  hw::CoreId current_core() const { return current_core_; }

  // Total CPU time actually executed (drives Fig. 7 accounting).
  sim::Duration cpu_time() const { return cpu_time_; }

 private:
  friend class RichOs;
  friend class RunQueue;
  std::string name_;
  int tid_ = -1;
  ThreadState state_ = ThreadState::kNew;
  SchedPolicy policy_ = SchedPolicy::kCfs;
  int rt_priority_ = 0;
  std::optional<hw::CoreId> pinned_;
  hw::CoreId current_core_ = -1;

  // Scheduler bookkeeping.
  double vruntime_s_ = 0.0;          // CFS virtual runtime, seconds
  sim::Duration remaining_compute_;  // unfinished part of current compute
  std::function<void(OsContext&)> pending_on_complete_;
  sim::Time last_dispatch_;          // when it last got the CPU
  sim::Duration ran_in_slice_;       // time on CPU since last enqueue
  sim::Duration cpu_time_;
  std::uint64_t enqueue_seq_ = 0;    // FIFO order within RT priority
};

// Thread defined by a lambda; handy for tests and simple workloads.
class FunctionThread final : public Thread {
 public:
  using Fn = std::function<Action(OsContext&)>;
  FunctionThread(std::string name, Fn fn)
      : Thread(std::move(name)), fn_(std::move(fn)) {}

  Action next_action(OsContext& ctx) override { return fn_(ctx); }

 private:
  Fn fn_;
};

}  // namespace satin::os
