// One-stop assembly of the full simulated Juno system.
//
// Examples, tests and benches all need the same stack: platform hardware,
// a booted rich OS with the default kernel image, and the TSP in the
// secure world. Scenario owns the pieces in dependency order and exposes
// them; higher-level actors (SATIN, baselines, TZ-Evader, workloads) are
// attached by the caller.
#pragma once

#include <memory>

#include "hw/platform.h"
#include "os/rich_os.h"
#include "secure/tsp.h"

namespace satin::scenario {

struct ScenarioConfig {
  hw::PlatformConfig platform;
  os::OsConfig os;
  // Boot the rich OS immediately (install image, start ticks).
  bool boot = true;
};

class Scenario {
 public:
  explicit Scenario(ScenarioConfig config = {});

  hw::Platform& platform() { return *platform_; }
  os::RichOs& os() { return *os_; }
  secure::TestSecurePayload& tsp() { return *tsp_; }
  const os::KernelImage& kernel() const { return os_->kernel_image(); }
  sim::Engine& engine() { return platform_->engine(); }

  void run_for(sim::Duration d) { platform_->engine().run_for(d); }
  void run_until(sim::Time t) { platform_->engine().run_until(t); }
  sim::Time now() const { return platform_->now(); }

 private:
  std::unique_ptr<hw::Platform> platform_;
  std::unique_ptr<os::RichOs> os_;
  std::unique_ptr<secure::TestSecurePayload> tsp_;
};

}  // namespace satin::scenario
