// Experiment harnesses shared by the benches and integration tests.
//
// run_duel() stages the paper's central confrontation: an introspection
// mechanism (SATIN or a degenerate baseline) in the secure world versus
// TZ-Evader in the normal world, then correlates prober detections with
// ground-truth secure-world activity to compute the §VI-B1 statistics
// (rounds, alarms, target-area hits, false positives/negatives, gaps).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "attack/evader.h"
#include "core/satin.h"
#include "scenario/scenario.h"
#include "sim/parallel.h"

namespace satin::scenario {

// Ground-truth log of secure-world stays (the experiment's oracle; not
// visible to the attack, which only sees the availability side channel).
class SecureActivityLog final : public hw::WorldListener {
 public:
  struct Interval {
    hw::CoreId core = -1;
    sim::Time entry;
    sim::Time exit;
    bool closed = false;
  };

  explicit SecureActivityLog(hw::Platform& platform);
  ~SecureActivityLog() override;

  void on_secure_entry(hw::CoreId core, sim::Time when) override;
  void on_secure_exit(hw::CoreId core, sim::Time when) override;

  const std::vector<Interval>& intervals() const { return intervals_; }
  std::size_t stay_count() const { return intervals_.size(); }

 private:
  hw::Platform& platform_;
  std::vector<Interval> intervals_;
  std::vector<int> open_;  // per-core index into intervals_, -1 if none
};

struct DuelConfig {
  core::SatinConfig satin;
  attack::EvaderConfig evader;
  // Stop once this many introspection rounds completed.
  std::uint64_t rounds_target = 190;
  // Hard wall on simulated time (safety for misconfigured runs).
  double max_sim_seconds = 2.0e4;
};

struct DuelReport {
  std::uint64_t rounds = 0;
  std::uint64_t alarms = 0;
  std::uint64_t full_cycles = 0;
  int target_area = -1;
  std::uint64_t target_area_rounds = 0;
  std::uint64_t target_area_alarms = 0;
  // Average time between consecutive checks of the target area (§VI-B1
  // reports 141 s).
  double avg_target_gap_s = 0.0;
  // Ground truth vs prober.
  std::uint64_t secure_stays = 0;
  std::uint64_t prober_detections = 0;
  std::uint64_t false_positives = 0;
  std::uint64_t false_negatives = 0;
  // Attack bookkeeping.
  std::uint64_t evasions_started = 0;
  std::uint64_t rearms = 0;
  double sim_seconds = 0.0;
  // Resilience bookkeeping (all zero unless SatinConfig::resilience opts
  // in and/or a fault plan is armed).
  std::uint64_t confirmed_alarms = 0;
  std::uint64_t transient_alarms = 0;
  // Confirmed-tamper alarms outside the target area: under bit-flip
  // faults this must stay zero (transients never escalate to confirmed).
  std::uint64_t benign_confirmed_alarms = 0;
  std::uint64_t watchdog_fires = 0;
  std::uint64_t scan_retries = 0;

  // §VI-B1 success criterion: every target-area round raised an alarm and
  // the prober had neither false positives nor false negatives.
  bool satin_always_caught() const {
    return target_area_rounds > 0 && target_area_alarms == target_area_rounds;
  }
  // Attack success criterion (§IV-C): armed rounds over the target area
  // never alarmed.
  bool evader_always_escaped() const {
    return target_area_rounds > 0 && target_area_alarms == 0;
  }
  // Resilience success criterion: under a fault storm, every round over
  // the tampered area still raised an alarm — confirmed or transient —
  // i.e. injected faults caused no missed detection.
  bool target_always_flagged() const {
    return target_area_rounds > 0 && target_area_alarms == target_area_rounds;
  }
};

// Declarative per-branch divergence for COW fork exploration (see
// sim/fork.h): everything a branch child may change after the shared
// warm prefix has run. Negative / unset fields keep the baseline value.
// The delta deliberately covers only knobs that are safe to apply at the
// fork point — attacker probe timing, SATIN period targets, and a seed
// perturbation of a named RNG stream — so a branch is fully described by
// (prefix, delta), never by imperative child code.
struct BranchDelta {
  // Reseed the platform RNG via sim::Rng::perturb(stream, salt) before
  // the branch's trial is built. Gated by `perturb` (perturb with
  // salt == 0 is still a reseed, not a no-op).
  bool perturb = false;
  std::string perturb_stream = "branch";
  std::uint64_t seed_salt = 0;
  // SATIN knobs: introspection period target / direct tp override.
  double satin_tgoal_s = -1.0;
  double satin_tp_s = -1.0;
  int satin_randomize_wake = -1;  // -1 keep, else 0/1
  // Attacker knobs: prober cadence/threshold and evasion re-arm delay.
  double prober_sleep_s = -1.0;
  double prober_threshold_s = -1.0;
  double evader_rearm_delay_s = -1.0;

  // Applies every non-RNG knob onto the branch's DuelConfig copy.
  void apply(DuelConfig& duel) const;
};

// Fixed-field text codec for DuelReport — the payload a forked branch
// child streams back over its result pipe. Doubles travel as raw IEEE-754
// bit patterns (hex), so decode(encode(r)) == r bit-for-bit and forked
// stdout can be byte-identical to the unforked run of record. decode
// throws std::invalid_argument on any malformed field.
std::string encode_duel_report(const DuelReport& report);
DuelReport decode_duel_report(const std::string& text);

// One duel, decomposed so a BatchRunner can interleave it with
// shard-mates: the constructor performs the full setup (trusted boot,
// prober deployment and 10 ms warm-up, SATIN start, rootkit install),
// advance() runs one slice of simulated time, finish() stops both sides
// and correlates detections against ground truth. run_duel() is exactly
// construct + advance(1 s) until done + finish, so sliced and unsliced
// execution produce identical reports by construction.
class DuelTrial {
 public:
  DuelTrial(Scenario& scenario, const DuelConfig& config);

  bool done() const;
  void advance(sim::Duration quantum);
  // Call exactly once, after done(); the trial is spent afterwards.
  DuelReport finish();

 private:
  struct Detection {
    hw::CoreId core = -1;
    sim::Time when;
  };

  Scenario& scenario_;
  DuelConfig config_;
  SecureActivityLog activity_;
  core::Satin satin_;
  std::vector<Detection> detections_;
  attack::TzEvader evader_;
  sim::Time start_;
  sim::Time deadline_;
};

DuelReport run_duel(Scenario& scenario, const DuelConfig& config);

// Replicated duels over a sim::TrialRunner: `trials` independent duels
// fanned over `jobs` workers, each against a fresh Scenario seeded
// seed_for(trial). Reports land in submission-order slots, so output is
// bit-identical for any job count. Each trial snapshots its engine's
// self-metrics (without host wall time) into the trial metrics sink when
// one is installed.
struct DuelSweepConfig {
  DuelConfig duel;
  std::size_t trials = 1;
  // Worker threads (sim::TrialRunnerOptions semantics: <= 0 means one per
  // hardware thread).
  int jobs = 1;
  std::uint64_t root_seed = 0x5A71A57ull;
  // Per-trial flight-recorder ring capacity (0 = full per-trial stream);
  // pass ObsSession::flight_ring() so --flight=...,ring=N bounds trials too.
  std::size_t flight_ring = 0;
  // Lockstep shard size (--batch=K). 1 = the scalar per-draw run of
  // record via TrialRunner::run(); K >= 2 groups trials into shards of K
  // advanced in lockstep by sim::BatchRunner with the platforms switched
  // to DrawMode::kBatched. A runtime performance knob: the sweep output
  // is byte-identical for every K (CI-gated).
  int batch = 1;
  // COW fork branching (--branches=N; see sim/fork.h). 0 = the in-process
  // paths above; N >= 1 groups trials into consecutive branch groups of N
  // and runs each group as fork()ed child processes. With fork_prefix_s ==
  // 0 every child replays its trial from scratch — a pure runtime knob
  // whose output is byte-identical to branches == 0 (CI-gated). Mutually
  // exclusive with batch > 1.
  int branches = 0;
  // Simulated seconds of warm prefix shared (run once in the parent, then
  // inherited COW by every branch child in the group). 0 = oracle mode.
  // Nonzero trades replay identity for speed: each group shares one
  // scenario built from its leader trial's context, and every branch
  // diverges via `branch_delta` — results are self-consistent but NOT
  // comparable bit-for-bit with the unforked sweep.
  double fork_prefix_s = 0.0;
  // Per-branch divergence in warm mode; null = perturb the platform RNG
  // with salt = global trial index ("branch" stream).
  std::function<BranchDelta(const sim::TrialContext&)> branch_delta;
  // Failure-ladder knobs forwarded to sim::ForkServerOptions.
  double fork_timeout_s = 120.0;
  int fork_retries = 2;
};

struct DuelSweep {
  std::vector<DuelReport> reports;
  int jobs = 1;           // workers actually used
  double wall_seconds = 0.0;
};

// `customize` (optional) runs per trial before the Scenario is built: it
// may rewrite the platform seed (e.g. pin trial 0 to the paper baseline)
// or the duel knobs. It must depend only on the TrialContext.
DuelSweep run_duel_sweep(
    const DuelSweepConfig& config,
    const std::function<void(const sim::TrialContext&, ScenarioConfig&,
                             DuelConfig&)>& customize = {});

// One fully-specified duel, start to finish: builds a Scenario from
// `scenario_config`, arms `fault_spec` (src/fault/plan.h grammar; empty =
// fault-free), runs the duel, and snapshots the engine's self-metrics
// (without host wall time) into the installed metrics registry. This is
// the unit of work a campaign trial or fault-storm replica executes —
// everything it touches is derived from its arguments, so a call is
// bit-identical whether it runs inline, on a worker thread, or in a
// forked worker process. Throws std::invalid_argument on a malformed
// fault spec.
struct SingleDuelResult {
  DuelReport report;
  std::uint64_t faults_injected = 0;
};

SingleDuelResult run_single_duel(const ScenarioConfig& scenario_config,
                                 const DuelConfig& duel,
                                 const std::string& fault_spec = {});

}  // namespace satin::scenario
