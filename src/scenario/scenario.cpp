#include "scenario/scenario.h"

#include "os/system_map.h"

namespace satin::scenario {

Scenario::Scenario(ScenarioConfig config) {
  platform_ = std::make_unique<hw::Platform>(config.platform);
  os_ = std::make_unique<os::RichOs>(
      *platform_, os::KernelImage(os::make_default_map()), config.os);
  tsp_ = std::make_unique<secure::TestSecurePayload>(*platform_);
  if (config.boot) os_->boot();
}

}  // namespace satin::scenario
