#include "scenario/experiments.h"

#include <algorithm>

#include "fault/injector.h"
#include "obs/metrics.h"
#include "obs/session.h"
#include "os/system_map.h"

namespace satin::scenario {

SecureActivityLog::SecureActivityLog(hw::Platform& platform)
    : platform_(platform),
      open_(static_cast<std::size_t>(platform.num_cores()), -1) {
  for (int c = 0; c < platform_.num_cores(); ++c) {
    platform_.core(c).add_world_listener(this);
  }
}

SecureActivityLog::~SecureActivityLog() {
  for (int c = 0; c < platform_.num_cores(); ++c) {
    platform_.core(c).remove_world_listener(this);
  }
}

void SecureActivityLog::on_secure_entry(hw::CoreId core, sim::Time when) {
  open_.at(static_cast<std::size_t>(core)) =
      static_cast<int>(intervals_.size());
  intervals_.push_back(Interval{core, when, sim::Time::zero(), false});
}

void SecureActivityLog::on_secure_exit(hw::CoreId core, sim::Time when) {
  const int idx = open_.at(static_cast<std::size_t>(core));
  if (idx >= 0) {
    intervals_[static_cast<std::size_t>(idx)].exit = when;
    intervals_[static_cast<std::size_t>(idx)].closed = true;
    open_[static_cast<std::size_t>(core)] = -1;
  }
}

DuelReport run_duel(Scenario& scenario, const DuelConfig& config) {
  auto& platform = scenario.platform();
  SecureActivityLog activity(platform);

  // Trusted boot order matters: SATIN measures the pristine kernel before
  // the attack is planted. The defense may wake at any moment after
  // start(), so the evader's probers are deployed and warmed up first —
  // an APT attacker is in place long before the next introspection round
  // (§III-A), not racing the bootstrap.
  core::Satin satin(platform, scenario.kernel(), scenario.tsp(),
                    config.satin);
  satin.checker().authorize_boot_state();

  attack::EvaderConfig evader_config = config.evader;
  evader_config.auto_install = false;
  attack::TzEvader evader(scenario.os(), evader_config);
  struct Detection {
    hw::CoreId core;
    sim::Time when;
  };
  std::vector<Detection> detections;
  evader.set_detect_observer(
      [&detections](hw::CoreId core, sim::Time when, sim::Duration) {
        detections.push_back(Detection{core, when});
      });
  evader.deploy();
  scenario.run_for(sim::Duration::from_ms(10));  // prober warm-up
  satin.start();
  evader.rootkit().install();

  const sim::Time start = scenario.now();
  const sim::Time deadline =
      start + sim::Duration::from_sec_f(config.max_sim_seconds);
  while (satin.rounds() < config.rounds_target && scenario.now() < deadline) {
    scenario.run_for(sim::Duration::from_sec(1));
  }
  satin.stop();
  evader.prober().retract();

  DuelReport report;
  report.rounds = satin.rounds();
  report.alarms = satin.alarm_count();
  report.full_cycles = satin.full_cycles();
  report.sim_seconds = (scenario.now() - start).sec();
  report.evasions_started = evader.evasions_started();
  report.rearms = evader.rearms();
  report.prober_detections = static_cast<std::uint64_t>(detections.size());
  report.secure_stays = activity.stay_count();

  report.confirmed_alarms =
      satin.checker().alarm_count(core::AlarmKind::kConfirmed);
  report.transient_alarms =
      satin.checker().alarm_count(core::AlarmKind::kTransient);
  report.watchdog_fires = satin.watchdog_fires();
  report.scan_retries = satin.checker().retries_performed();

  const std::size_t gettid_offset =
      scenario.kernel().syscall_entry_offset(os::kGettidSyscallNr);
  report.target_area = satin.area_of_offset(gettid_offset);
  for (const core::Alarm& a : satin.checker().alarms()) {
    if (a.kind == core::AlarmKind::kConfirmed && a.area != report.target_area) {
      ++report.benign_confirmed_alarms;
    }
  }

  sim::Time prev_target_entry;
  bool have_prev = false;
  double gap_sum = 0.0;
  std::size_t gap_count = 0;
  for (const core::RoundRecord& r : satin.round_records()) {
    if (r.area != report.target_area) continue;
    ++report.target_area_rounds;
    if (r.alarm) ++report.target_area_alarms;
    if (have_prev) {
      gap_sum += (r.entry - prev_target_entry).sec();
      ++gap_count;
    }
    prev_target_entry = r.entry;
    have_prev = true;
  }
  if (gap_count > 0) {
    report.avg_target_gap_s = gap_sum / static_cast<double>(gap_count);
  }

  // Correlate detections with ground truth. A detection is genuine if it
  // falls inside a secure stay (small exit margin: the last staleness
  // sample may land just after the world switch back).
  const sim::Duration margin = sim::Duration::from_ms(2);
  for (const Detection& d : detections) {
    const bool genuine = std::any_of(
        activity.intervals().begin(), activity.intervals().end(),
        [&](const SecureActivityLog::Interval& iv) {
          return iv.core == d.core && d.when >= iv.entry &&
                 (!iv.closed || d.when <= iv.exit + margin);
        });
    if (!genuine) ++report.false_positives;
  }
  for (const auto& iv : activity.intervals()) {
    if (!iv.closed) continue;
    const bool noticed = std::any_of(
        detections.begin(), detections.end(), [&](const Detection& d) {
          return d.core == iv.core && d.when >= iv.entry &&
                 d.when <= iv.exit + margin;
        });
    if (!noticed) ++report.false_negatives;
  }
  return report;
}

DuelSweep run_duel_sweep(
    const DuelSweepConfig& config,
    const std::function<void(const sim::TrialContext&, ScenarioConfig&,
                             DuelConfig&)>& customize) {
  sim::TrialRunnerOptions options;
  options.jobs = config.jobs;
  options.root_seed = config.root_seed;
  options.flight_ring = config.flight_ring;
  sim::TrialRunner runner(options);

  DuelSweep sweep;
  sweep.jobs = runner.jobs_for(config.trials);
  sweep.reports = runner.run_collect(
      config.trials, [&config, &customize](const sim::TrialContext& ctx) {
        ScenarioConfig scenario_config;
        scenario_config.platform.seed = ctx.seed;
        DuelConfig duel = config.duel;
        if (customize) customize(ctx, scenario_config, duel);
        Scenario scenario(scenario_config);
        DuelReport report = run_duel(scenario, duel);
        // Engine self-metrics, minus host wall time: trial metrics must
        // stay bit-identical across --jobs.
        if (auto* registry = obs::metrics()) {
          obs::snapshot_engine_metrics(scenario.engine(), *registry,
                                       /*include_wall=*/false);
        }
        return report;
      });
  sweep.wall_seconds = runner.wall_seconds();
  return sweep;
}

SingleDuelResult run_single_duel(const ScenarioConfig& scenario_config,
                                 const DuelConfig& duel,
                                 const std::string& fault_spec) {
  Scenario system(scenario_config);
  const auto injector = fault::install_from_spec(system.platform(), fault_spec);
  SingleDuelResult out;
  out.report = run_duel(system, duel);
  out.faults_injected = injector ? injector->injected_total() : 0;
  // Engine self-metrics, minus host wall time: the snapshot must stay
  // bit-identical no matter which worker (thread or process) ran it.
  if (auto* registry = obs::metrics()) {
    obs::snapshot_engine_metrics(system.engine(), *registry,
                                 /*include_wall=*/false);
  }
  return out;
}

}  // namespace satin::scenario
