#include "scenario/experiments.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "fault/injector.h"
#include "obs/metrics.h"
#include "obs/session.h"
#include "os/system_map.h"
#include "sim/batch.h"

namespace satin::scenario {

SecureActivityLog::SecureActivityLog(hw::Platform& platform)
    : platform_(platform),
      open_(static_cast<std::size_t>(platform.num_cores()), -1) {
  for (int c = 0; c < platform_.num_cores(); ++c) {
    platform_.core(c).add_world_listener(this);
  }
}

SecureActivityLog::~SecureActivityLog() {
  for (int c = 0; c < platform_.num_cores(); ++c) {
    platform_.core(c).remove_world_listener(this);
  }
}

void SecureActivityLog::on_secure_entry(hw::CoreId core, sim::Time when) {
  open_.at(static_cast<std::size_t>(core)) =
      static_cast<int>(intervals_.size());
  intervals_.push_back(Interval{core, when, sim::Time::zero(), false});
}

void SecureActivityLog::on_secure_exit(hw::CoreId core, sim::Time when) {
  const int idx = open_.at(static_cast<std::size_t>(core));
  if (idx >= 0) {
    intervals_[static_cast<std::size_t>(idx)].exit = when;
    intervals_[static_cast<std::size_t>(idx)].closed = true;
    open_[static_cast<std::size_t>(core)] = -1;
  }
}

namespace {

attack::EvaderConfig manual_install(attack::EvaderConfig config) {
  config.auto_install = false;
  return config;
}

}  // namespace

DuelTrial::DuelTrial(Scenario& scenario, const DuelConfig& config)
    : scenario_(scenario),
      config_(config),
      activity_(scenario.platform()),
      // Trusted boot order matters: SATIN measures the pristine kernel
      // before the attack is planted. The defense may wake at any moment
      // after start(), so the evader's probers are deployed and warmed up
      // first — an APT attacker is in place long before the next
      // introspection round (§III-A), not racing the bootstrap.
      satin_(scenario.platform(), scenario.kernel(), scenario.tsp(),
             config.satin),
      evader_(scenario.os(), manual_install(config.evader)) {
  satin_.checker().authorize_boot_state();
  evader_.set_detect_observer(
      [this](hw::CoreId core, sim::Time when, sim::Duration) {
        detections_.push_back(Detection{core, when});
      });
  evader_.deploy();
  scenario_.run_for(sim::Duration::from_ms(10));  // prober warm-up
  satin_.start();
  evader_.rootkit().install();
  start_ = scenario_.now();
  deadline_ = start_ + sim::Duration::from_sec_f(config_.max_sim_seconds);
}

bool DuelTrial::done() const {
  return satin_.rounds() >= config_.rounds_target ||
         scenario_.now() >= deadline_;
}

void DuelTrial::advance(sim::Duration quantum) {
  scenario_.run_for(quantum);
}

DuelReport DuelTrial::finish() {
  satin_.stop();
  evader_.prober().retract();

  DuelReport report;
  report.rounds = satin_.rounds();
  report.alarms = satin_.alarm_count();
  report.full_cycles = satin_.full_cycles();
  report.sim_seconds = (scenario_.now() - start_).sec();
  report.evasions_started = evader_.evasions_started();
  report.rearms = evader_.rearms();
  report.prober_detections = static_cast<std::uint64_t>(detections_.size());
  report.secure_stays = activity_.stay_count();

  report.confirmed_alarms =
      satin_.checker().alarm_count(core::AlarmKind::kConfirmed);
  report.transient_alarms =
      satin_.checker().alarm_count(core::AlarmKind::kTransient);
  report.watchdog_fires = satin_.watchdog_fires();
  report.scan_retries = satin_.checker().retries_performed();

  const std::size_t gettid_offset =
      scenario_.kernel().syscall_entry_offset(os::kGettidSyscallNr);
  report.target_area = satin_.area_of_offset(gettid_offset);
  for (const core::Alarm& a : satin_.checker().alarms()) {
    if (a.kind == core::AlarmKind::kConfirmed && a.area != report.target_area) {
      ++report.benign_confirmed_alarms;
    }
  }

  sim::Time prev_target_entry;
  bool have_prev = false;
  double gap_sum = 0.0;
  std::size_t gap_count = 0;
  for (const core::RoundRecord& r : satin_.round_records()) {
    if (r.area != report.target_area) continue;
    ++report.target_area_rounds;
    if (r.alarm) ++report.target_area_alarms;
    if (have_prev) {
      gap_sum += (r.entry - prev_target_entry).sec();
      ++gap_count;
    }
    prev_target_entry = r.entry;
    have_prev = true;
  }
  if (gap_count > 0) {
    report.avg_target_gap_s = gap_sum / static_cast<double>(gap_count);
  }

  // Correlate detections with ground truth. A detection is genuine if it
  // falls inside a secure stay (small exit margin: the last staleness
  // sample may land just after the world switch back).
  const sim::Duration margin = sim::Duration::from_ms(2);
  for (const Detection& d : detections_) {
    const bool genuine = std::any_of(
        activity_.intervals().begin(), activity_.intervals().end(),
        [&](const SecureActivityLog::Interval& iv) {
          return iv.core == d.core && d.when >= iv.entry &&
                 (!iv.closed || d.when <= iv.exit + margin);
        });
    if (!genuine) ++report.false_positives;
  }
  for (const auto& iv : activity_.intervals()) {
    if (!iv.closed) continue;
    const bool noticed = std::any_of(
        detections_.begin(), detections_.end(), [&](const Detection& d) {
          return d.core == iv.core && d.when >= iv.entry &&
                 d.when <= iv.exit + margin;
        });
    if (!noticed) ++report.false_negatives;
  }
  return report;
}

DuelReport run_duel(Scenario& scenario, const DuelConfig& config) {
  DuelTrial trial(scenario, config);
  while (!trial.done()) trial.advance(sim::Duration::from_sec(1));
  return trial.finish();
}

namespace {

// run_duel as a lockstep citizen: owns its Scenario, writes its report
// into the submission-order slot the factory wired. finish() runs under
// the trial's sinks, so the metrics snapshot matches the unsharded path.
class DuelLockstepTrial final : public sim::LockstepTrial {
 public:
  DuelLockstepTrial(const ScenarioConfig& scenario_config,
                    const DuelConfig& duel, DuelReport* slot)
      : scenario_(scenario_config), trial_(scenario_, duel), slot_(slot) {}

  bool done() const override { return trial_.done(); }
  void advance(sim::Duration quantum) override { trial_.advance(quantum); }
  void finish() override {
    *slot_ = trial_.finish();
    if (auto* registry = obs::metrics()) {
      obs::snapshot_engine_metrics(scenario_.engine(), *registry,
                                   /*include_wall=*/false);
    }
  }

 private:
  Scenario scenario_;
  DuelTrial trial_;
  DuelReport* slot_;
};

// Per-trial configs are derived identically on both sweep paths; only
// draw_mode differs, and that is value-inert by the stream contract.
ScenarioConfig duel_trial_scenario_config(const DuelSweepConfig& config,
                                          const sim::TrialContext& ctx,
                                          DuelConfig& duel,
                                          const std::function<void(
                                              const sim::TrialContext&,
                                              ScenarioConfig&, DuelConfig&)>&
                                              customize) {
  ScenarioConfig scenario_config;
  scenario_config.platform.seed = ctx.seed;
  if (config.batch > 1) {
    scenario_config.platform.draw_mode = sim::DrawMode::kBatched;
  }
  if (customize) customize(ctx, scenario_config, duel);
  return scenario_config;
}

}  // namespace

DuelSweep run_duel_sweep(
    const DuelSweepConfig& config,
    const std::function<void(const sim::TrialContext&, ScenarioConfig&,
                             DuelConfig&)>& customize) {
  sim::TrialRunnerOptions options;
  options.jobs = config.jobs;
  options.root_seed = config.root_seed;
  options.flight_ring = config.flight_ring;

  DuelSweep sweep;
  if (config.batch > 1) {
    sim::BatchRunnerOptions batch_options;
    batch_options.batch = static_cast<std::size_t>(config.batch);
    batch_options.runner = options;
    sim::BatchRunner runner(batch_options);
    // Report the same effective worker clamp as the unsharded sweep:
    // `jobs` is the requested-parallelism knob, and sweep output must be
    // byte-identical across --batch (shards may cap workers lower).
    sweep.jobs = sim::TrialRunner(options).jobs_for(config.trials);
    sweep.reports.resize(config.trials);
    runner.run(config.trials, [&config, &customize, &sweep](
                                  const sim::TrialContext& ctx) {
      DuelConfig duel = config.duel;
      const ScenarioConfig scenario_config =
          duel_trial_scenario_config(config, ctx, duel, customize);
      return std::make_unique<DuelLockstepTrial>(scenario_config, duel,
                                                 &sweep.reports[ctx.index]);
    });
    sweep.wall_seconds = runner.wall_seconds();
    return sweep;
  }

  sim::TrialRunner runner(options);
  sweep.jobs = runner.jobs_for(config.trials);
  sweep.reports = runner.run_collect(
      config.trials, [&config, &customize](const sim::TrialContext& ctx) {
        DuelConfig duel = config.duel;
        const ScenarioConfig scenario_config =
            duel_trial_scenario_config(config, ctx, duel, customize);
        Scenario scenario(scenario_config);
        DuelReport report = run_duel(scenario, duel);
        // Engine self-metrics, minus host wall time: trial metrics must
        // stay bit-identical across --jobs.
        if (auto* registry = obs::metrics()) {
          obs::snapshot_engine_metrics(scenario.engine(), *registry,
                                       /*include_wall=*/false);
        }
        return report;
      });
  sweep.wall_seconds = runner.wall_seconds();
  return sweep;
}

SingleDuelResult run_single_duel(const ScenarioConfig& scenario_config,
                                 const DuelConfig& duel,
                                 const std::string& fault_spec) {
  Scenario system(scenario_config);
  const auto injector = fault::install_from_spec(system.platform(), fault_spec);
  SingleDuelResult out;
  out.report = run_duel(system, duel);
  out.faults_injected = injector ? injector->injected_total() : 0;
  // Engine self-metrics, minus host wall time: the snapshot must stay
  // bit-identical no matter which worker (thread or process) ran it.
  if (auto* registry = obs::metrics()) {
    obs::snapshot_engine_metrics(system.engine(), *registry,
                                 /*include_wall=*/false);
  }
  return out;
}

}  // namespace satin::scenario
