#include "scenario/experiments.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <utility>

#include "fault/injector.h"
#include "obs/flight/recorder.h"
#include "obs/metrics.h"
#include "obs/session.h"
#include "os/system_map.h"
#include "sim/batch.h"
#include "sim/fork.h"

namespace satin::scenario {

SecureActivityLog::SecureActivityLog(hw::Platform& platform)
    : platform_(platform),
      open_(static_cast<std::size_t>(platform.num_cores()), -1) {
  for (int c = 0; c < platform_.num_cores(); ++c) {
    platform_.core(c).add_world_listener(this);
  }
}

SecureActivityLog::~SecureActivityLog() {
  for (int c = 0; c < platform_.num_cores(); ++c) {
    platform_.core(c).remove_world_listener(this);
  }
}

void SecureActivityLog::on_secure_entry(hw::CoreId core, sim::Time when) {
  open_.at(static_cast<std::size_t>(core)) =
      static_cast<int>(intervals_.size());
  intervals_.push_back(Interval{core, when, sim::Time::zero(), false});
}

void SecureActivityLog::on_secure_exit(hw::CoreId core, sim::Time when) {
  const int idx = open_.at(static_cast<std::size_t>(core));
  if (idx >= 0) {
    intervals_[static_cast<std::size_t>(idx)].exit = when;
    intervals_[static_cast<std::size_t>(idx)].closed = true;
    open_[static_cast<std::size_t>(core)] = -1;
  }
}

namespace {

attack::EvaderConfig manual_install(attack::EvaderConfig config) {
  config.auto_install = false;
  return config;
}

std::uint64_t double_bits(double v) {
  std::uint64_t b = 0;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

double bits_double(std::uint64_t b) {
  double v = 0.0;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

}  // namespace

void BranchDelta::apply(DuelConfig& duel) const {
  if (satin_tgoal_s > 0.0) duel.satin.tgoal_s = satin_tgoal_s;
  if (satin_tp_s > 0.0) duel.satin.tp_s = satin_tp_s;
  if (satin_randomize_wake >= 0) {
    duel.satin.randomize_wake = satin_randomize_wake != 0;
  }
  if (prober_sleep_s > 0.0) duel.evader.prober.sleep_s = prober_sleep_s;
  if (prober_threshold_s > 0.0) {
    duel.evader.prober.threshold_s = prober_threshold_s;
  }
  if (evader_rearm_delay_s > 0.0) duel.evader.rearm_delay_s = evader_rearm_delay_s;
}

std::string encode_duel_report(const DuelReport& r) {
  // Fixed field order; every field one hex u64 (doubles as raw bits).
  // Keep in lockstep with decode_duel_report below.
  const std::uint64_t fields[] = {
      r.rounds,
      r.alarms,
      r.full_cycles,
      static_cast<std::uint64_t>(static_cast<std::int64_t>(r.target_area)),
      r.target_area_rounds,
      r.target_area_alarms,
      double_bits(r.avg_target_gap_s),
      r.secure_stays,
      r.prober_detections,
      r.false_positives,
      r.false_negatives,
      r.evasions_started,
      r.rearms,
      double_bits(r.sim_seconds),
      r.confirmed_alarms,
      r.transient_alarms,
      r.benign_confirmed_alarms,
      r.watchdog_fires,
      r.scan_retries,
  };
  std::string out;
  char buf[24];
  for (std::uint64_t f : fields) {
    std::snprintf(buf, sizeof(buf), "%llx",
                  static_cast<unsigned long long>(f));
    if (!out.empty()) out.push_back(' ');
    out += buf;
  }
  return out;
}

DuelReport decode_duel_report(const std::string& text) {
  constexpr std::size_t kFields = 19;
  std::uint64_t fields[kFields] = {};
  const char* p = text.c_str();
  for (std::size_t i = 0; i < kFields; ++i) {
    char* end = nullptr;
    fields[i] = std::strtoull(p, &end, 16);
    if (end == p) {
      throw std::invalid_argument("decode_duel_report: truncated record");
    }
    p = end;
    if (i + 1 < kFields) {
      if (*p != ' ') {
        throw std::invalid_argument("decode_duel_report: malformed record");
      }
      ++p;
    }
  }
  if (*p != '\0') {
    throw std::invalid_argument("decode_duel_report: trailing bytes");
  }
  DuelReport r;
  r.rounds = fields[0];
  r.alarms = fields[1];
  r.full_cycles = fields[2];
  r.target_area =
      static_cast<int>(static_cast<std::int64_t>(fields[3]));
  r.target_area_rounds = fields[4];
  r.target_area_alarms = fields[5];
  r.avg_target_gap_s = bits_double(fields[6]);
  r.secure_stays = fields[7];
  r.prober_detections = fields[8];
  r.false_positives = fields[9];
  r.false_negatives = fields[10];
  r.evasions_started = fields[11];
  r.rearms = fields[12];
  r.sim_seconds = bits_double(fields[13]);
  r.confirmed_alarms = fields[14];
  r.transient_alarms = fields[15];
  r.benign_confirmed_alarms = fields[16];
  r.watchdog_fires = fields[17];
  r.scan_retries = fields[18];
  return r;
}

DuelTrial::DuelTrial(Scenario& scenario, const DuelConfig& config)
    : scenario_(scenario),
      config_(config),
      activity_(scenario.platform()),
      // Trusted boot order matters: SATIN measures the pristine kernel
      // before the attack is planted. The defense may wake at any moment
      // after start(), so the evader's probers are deployed and warmed up
      // first — an APT attacker is in place long before the next
      // introspection round (§III-A), not racing the bootstrap.
      satin_(scenario.platform(), scenario.kernel(), scenario.tsp(),
             config.satin),
      evader_(scenario.os(), manual_install(config.evader)) {
  satin_.checker().authorize_boot_state();
  evader_.set_detect_observer(
      [this](hw::CoreId core, sim::Time when, sim::Duration) {
        detections_.push_back(Detection{core, when});
      });
  evader_.deploy();
  scenario_.run_for(sim::Duration::from_ms(10));  // prober warm-up
  satin_.start();
  evader_.rootkit().install();
  start_ = scenario_.now();
  deadline_ = start_ + sim::Duration::from_sec_f(config_.max_sim_seconds);
}

bool DuelTrial::done() const {
  return satin_.rounds() >= config_.rounds_target ||
         scenario_.now() >= deadline_;
}

void DuelTrial::advance(sim::Duration quantum) {
  scenario_.run_for(quantum);
}

DuelReport DuelTrial::finish() {
  satin_.stop();
  evader_.prober().retract();

  DuelReport report;
  report.rounds = satin_.rounds();
  report.alarms = satin_.alarm_count();
  report.full_cycles = satin_.full_cycles();
  report.sim_seconds = (scenario_.now() - start_).sec();
  report.evasions_started = evader_.evasions_started();
  report.rearms = evader_.rearms();
  report.prober_detections = static_cast<std::uint64_t>(detections_.size());
  report.secure_stays = activity_.stay_count();

  report.confirmed_alarms =
      satin_.checker().alarm_count(core::AlarmKind::kConfirmed);
  report.transient_alarms =
      satin_.checker().alarm_count(core::AlarmKind::kTransient);
  report.watchdog_fires = satin_.watchdog_fires();
  report.scan_retries = satin_.checker().retries_performed();

  const std::size_t gettid_offset =
      scenario_.kernel().syscall_entry_offset(os::kGettidSyscallNr);
  report.target_area = satin_.area_of_offset(gettid_offset);
  for (const core::Alarm& a : satin_.checker().alarms()) {
    if (a.kind == core::AlarmKind::kConfirmed && a.area != report.target_area) {
      ++report.benign_confirmed_alarms;
    }
  }

  sim::Time prev_target_entry;
  bool have_prev = false;
  double gap_sum = 0.0;
  std::size_t gap_count = 0;
  for (const core::RoundRecord& r : satin_.round_records()) {
    if (r.area != report.target_area) continue;
    ++report.target_area_rounds;
    if (r.alarm) ++report.target_area_alarms;
    if (have_prev) {
      gap_sum += (r.entry - prev_target_entry).sec();
      ++gap_count;
    }
    prev_target_entry = r.entry;
    have_prev = true;
  }
  if (gap_count > 0) {
    report.avg_target_gap_s = gap_sum / static_cast<double>(gap_count);
  }

  // Correlate detections with ground truth. A detection is genuine if it
  // falls inside a secure stay (small exit margin: the last staleness
  // sample may land just after the world switch back).
  const sim::Duration margin = sim::Duration::from_ms(2);
  for (const Detection& d : detections_) {
    const bool genuine = std::any_of(
        activity_.intervals().begin(), activity_.intervals().end(),
        [&](const SecureActivityLog::Interval& iv) {
          return iv.core == d.core && d.when >= iv.entry &&
                 (!iv.closed || d.when <= iv.exit + margin);
        });
    if (!genuine) ++report.false_positives;
  }
  for (const auto& iv : activity_.intervals()) {
    if (!iv.closed) continue;
    const bool noticed = std::any_of(
        detections_.begin(), detections_.end(), [&](const Detection& d) {
          return d.core == iv.core && d.when >= iv.entry &&
                 d.when <= iv.exit + margin;
        });
    if (!noticed) ++report.false_negatives;
  }
  return report;
}

DuelReport run_duel(Scenario& scenario, const DuelConfig& config) {
  DuelTrial trial(scenario, config);
  while (!trial.done()) trial.advance(sim::Duration::from_sec(1));
  return trial.finish();
}

namespace {

// run_duel as a lockstep citizen: owns its Scenario, writes its report
// into the submission-order slot the factory wired. finish() runs under
// the trial's sinks, so the metrics snapshot matches the unsharded path.
class DuelLockstepTrial final : public sim::LockstepTrial {
 public:
  DuelLockstepTrial(const ScenarioConfig& scenario_config,
                    const DuelConfig& duel, DuelReport* slot)
      : scenario_(scenario_config), trial_(scenario_, duel), slot_(slot) {}

  bool done() const override { return trial_.done(); }
  void advance(sim::Duration quantum) override { trial_.advance(quantum); }
  void finish() override {
    *slot_ = trial_.finish();
    if (auto* registry = obs::metrics()) {
      obs::snapshot_engine_metrics(scenario_.engine(), *registry,
                                   /*include_wall=*/false);
    }
  }

 private:
  Scenario scenario_;
  DuelTrial trial_;
  DuelReport* slot_;
};

// Per-trial configs are derived identically on both sweep paths; only
// draw_mode differs, and that is value-inert by the stream contract.
ScenarioConfig duel_trial_scenario_config(const DuelSweepConfig& config,
                                          const sim::TrialContext& ctx,
                                          DuelConfig& duel,
                                          const std::function<void(
                                              const sim::TrialContext&,
                                              ScenarioConfig&, DuelConfig&)>&
                                              customize) {
  ScenarioConfig scenario_config;
  scenario_config.platform.seed = ctx.seed;
  if (config.batch > 1) {
    scenario_config.platform.draw_mode = sim::DrawMode::kBatched;
  }
  if (customize) customize(ctx, scenario_config, duel);
  return scenario_config;
}

// The COW fork path (--branches=N): trials grouped into consecutive
// branch groups of N, each group run as fork()ed children off the parent
// image. fork_prefix_s == 0 is the byte-identity oracle — every child
// replays its trial from scratch under fresh sinks, exactly the unforked
// per-trial body. fork_prefix_s > 0 is the speed path: the group leader's
// scenario is built and advanced through the warm prefix ONCE in the
// parent, children inherit it (and the group obs sinks) by copy-on-write
// and diverge via BranchDelta.
DuelSweep run_forked_duel_sweep(
    const DuelSweepConfig& config,
    const std::function<void(const sim::TrialContext&, ScenarioConfig&,
                             DuelConfig&)>& customize) {
  sim::TrialRunnerOptions options;
  options.jobs = config.jobs;
  options.root_seed = config.root_seed;
  options.flight_ring = config.flight_ring;
  const sim::TrialSeedSeq seeds(config.root_seed);

  DuelSweep sweep;
  // Same effective worker clamp as the in-process paths: `jobs` is the
  // requested-parallelism knob and sweep output must not depend on the
  // execution backend.
  sweep.jobs = sim::TrialRunner(options).jobs_for(config.trials);
  sweep.reports.resize(config.trials);

  const auto t0 = std::chrono::steady_clock::now();
  const auto group_size = static_cast<std::size_t>(config.branches);
  for (std::size_t base = 0; base < config.trials; base += group_size) {
    // branches > remaining trials clamps to the tail group's size.
    const std::size_t count = std::min(group_size, config.trials - base);
    sim::ForkServerOptions fork_options;
    fork_options.jobs = config.jobs;
    fork_options.timeout_s = config.fork_timeout_s;
    fork_options.max_retries = config.fork_retries;
    fork_options.flight_ring = config.flight_ring;
    fork_options.index_base = base;
    fork_options.marker_seed = [&seeds](std::size_t global) {
      return seeds.seed_for(global);
    };

    std::vector<std::string> payloads;
    if (config.fork_prefix_s <= 0.0) {
      sim::ForkServer server(fork_options);
      payloads = server.run_collect(count, [&](std::size_t branch) {
        const std::size_t index = base + branch;
        const sim::TrialContext ctx{index, seeds.seed_for(index)};
        DuelConfig duel = config.duel;
        const ScenarioConfig scenario_config =
            duel_trial_scenario_config(config, ctx, duel, customize);
        Scenario scenario(scenario_config);
        DuelReport report = run_duel(scenario, duel);
        if (auto* registry = obs::metrics()) {
          obs::snapshot_engine_metrics(scenario.engine(), *registry,
                                       /*include_wall=*/false);
        }
        return encode_duel_report(report);
      });
    } else {
      fork_options.inherit_sinks = true;
      sim::ForkServer server(fork_options);
      // Group sinks, created only when the session records: children
      // inherit them (already holding the prefix's records) by COW and
      // persist the whole per-branch stream for merge_obs().
      std::unique_ptr<obs::MetricsRegistry> group_metrics;
      std::unique_ptr<obs::FlightRecorder> group_flight;
      if (obs::metrics() != nullptr) {
        group_metrics = std::make_unique<obs::MetricsRegistry>();
      }
      if (obs::flight() != nullptr) {
        obs::FlightRecorderOptions flight_options;
        flight_options.ring = config.flight_ring;
        group_flight = std::make_unique<obs::FlightRecorder>(flight_options);
      }
      std::vector<sim::ForkOutcome> outcomes;
      {
        sim::TrialObsScope scope(group_metrics.get(), nullptr,
                                 group_flight.get());
        const sim::TrialContext leader{base, seeds.seed_for(base)};
        DuelConfig leader_duel = config.duel;
        ScenarioConfig scenario_config =
            duel_trial_scenario_config(config, leader, leader_duel, customize);
        Scenario scenario(scenario_config);
        scenario.run_for(sim::Duration::from_sec_f(config.fork_prefix_s));
        outcomes = server.run(count, [&](std::size_t branch) {
          const std::size_t index = base + branch;
          const sim::TrialContext ctx{index, seeds.seed_for(index)};
          DuelConfig duel = config.duel;
          ScenarioConfig discarded;  // scenario is already built pre-fork
          if (customize) customize(ctx, discarded, duel);
          BranchDelta delta;
          if (config.branch_delta) {
            delta = config.branch_delta(ctx);
          } else {
            delta.perturb = true;
            delta.seed_salt = index;
          }
          delta.apply(duel);
          if (delta.perturb) {
            scenario.platform().rng().perturb(delta.perturb_stream,
                                              delta.seed_salt);
          }
          DuelTrial trial(scenario, duel);
          while (!trial.done()) trial.advance(sim::Duration::from_sec(1));
          DuelReport report = trial.finish();
          if (auto* registry = obs::metrics()) {
            obs::snapshot_engine_metrics(scenario.engine(), *registry,
                                         /*include_wall=*/false);
          }
          return encode_duel_report(report);
        });
      }
      // The group scope is gone: merge_obs() targets the session sinks.
      server.merge_obs();
      for (const sim::ForkOutcome& outcome : outcomes) {
        if (!outcome.ok) throw std::runtime_error(outcome.error);
      }
      payloads.reserve(outcomes.size());
      for (sim::ForkOutcome& outcome : outcomes) {
        payloads.push_back(std::move(outcome.payload));
      }
    }
    for (std::size_t branch = 0; branch < payloads.size(); ++branch) {
      sweep.reports[base + branch] = decode_duel_report(payloads[branch]);
    }
  }
  sweep.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return sweep;
}

}  // namespace

DuelSweep run_duel_sweep(
    const DuelSweepConfig& config,
    const std::function<void(const sim::TrialContext&, ScenarioConfig&,
                             DuelConfig&)>& customize) {
  if (config.branches > 0) {
    if (config.batch > 1) {
      throw std::invalid_argument(
          "run_duel_sweep: branches and batch are mutually exclusive");
    }
    return run_forked_duel_sweep(config, customize);
  }

  sim::TrialRunnerOptions options;
  options.jobs = config.jobs;
  options.root_seed = config.root_seed;
  options.flight_ring = config.flight_ring;

  DuelSweep sweep;
  if (config.batch > 1) {
    sim::BatchRunnerOptions batch_options;
    batch_options.batch = static_cast<std::size_t>(config.batch);
    batch_options.runner = options;
    sim::BatchRunner runner(batch_options);
    // Report the same effective worker clamp as the unsharded sweep:
    // `jobs` is the requested-parallelism knob, and sweep output must be
    // byte-identical across --batch (shards may cap workers lower).
    sweep.jobs = sim::TrialRunner(options).jobs_for(config.trials);
    sweep.reports.resize(config.trials);
    runner.run(config.trials, [&config, &customize, &sweep](
                                  const sim::TrialContext& ctx) {
      DuelConfig duel = config.duel;
      const ScenarioConfig scenario_config =
          duel_trial_scenario_config(config, ctx, duel, customize);
      return std::make_unique<DuelLockstepTrial>(scenario_config, duel,
                                                 &sweep.reports[ctx.index]);
    });
    sweep.wall_seconds = runner.wall_seconds();
    return sweep;
  }

  sim::TrialRunner runner(options);
  sweep.jobs = runner.jobs_for(config.trials);
  sweep.reports = runner.run_collect(
      config.trials, [&config, &customize](const sim::TrialContext& ctx) {
        DuelConfig duel = config.duel;
        const ScenarioConfig scenario_config =
            duel_trial_scenario_config(config, ctx, duel, customize);
        Scenario scenario(scenario_config);
        DuelReport report = run_duel(scenario, duel);
        // Engine self-metrics, minus host wall time: trial metrics must
        // stay bit-identical across --jobs.
        if (auto* registry = obs::metrics()) {
          obs::snapshot_engine_metrics(scenario.engine(), *registry,
                                       /*include_wall=*/false);
        }
        return report;
      });
  sweep.wall_seconds = runner.wall_seconds();
  return sweep;
}

SingleDuelResult run_single_duel(const ScenarioConfig& scenario_config,
                                 const DuelConfig& duel,
                                 const std::string& fault_spec) {
  Scenario system(scenario_config);
  const auto injector = fault::install_from_spec(system.platform(), fault_spec);
  SingleDuelResult out;
  out.report = run_duel(system, duel);
  out.faults_injected = injector ? injector->injected_total() : 0;
  // Engine self-metrics, minus host wall time: the snapshot must stay
  // bit-identical no matter which worker (thread or process) ran it.
  if (auto* registry = obs::metrics()) {
    obs::snapshot_engine_metrics(system.engine(), *registry,
                                 /*include_wall=*/false);
  }
  return out;
}

}  // namespace satin::scenario
