#include "core/area_set.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace satin::core {

KernelAreaSet::KernelAreaSet(int area_count, sim::Rng rng)
    : area_count_(area_count), rng_(std::move(rng)) {
  if (area_count <= 0) {
    throw std::invalid_argument("KernelAreaSet: need at least one area");
  }
  refill();
}

void KernelAreaSet::refill() {
  remaining_.resize(static_cast<std::size_t>(area_count_));
  std::iota(remaining_.begin(), remaining_.end(), 0);
}

int KernelAreaSet::take_next() {
  if (remaining_.empty()) {
    refill();
    ++cycles_;
  }
  // Ordered mode pops the front (ascending); random mode removes a
  // uniformly chosen remaining index (the set has at most 19 entries).
  std::size_t pick = 0;
  if (randomized_) {
    pick = rng_.index(remaining_.size());
  }
  const int area = remaining_[pick];
  remaining_.erase(remaining_.begin() + static_cast<std::ptrdiff_t>(pick));
  return area;
}

}  // namespace satin::core
