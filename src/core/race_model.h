// Closed-form race-condition model (Eq. 1 and Eq. 2, §III-B2 / §IV-C).
//
// The defender starts a check at t_start; after Ts_switch it scans at
// Ts_1byte per byte. The attacker notices after Tns_delay = Tns_sched +
// Tns_threshold and needs Tns_recover to clean M bytes. The attacker
// escapes iff the scanner reaches its first malicious byte only after the
// cleaning finished:
//
//   (Eq. 1)  Ts_switch + S * Ts_1byte  >  Tns_delay + Tns_recover
//
// SATIN inverts this into a size bound for each introspection area
// (§V-B): any area no larger than max_safe_area_bytes() is fully scanned
// before the attacker can hide.
#pragma once

#include <cstddef>

#include "hw/timing_params.h"

namespace satin::core {

struct RaceParams {
  double ts_switch_s = 0.0;      // world-switch cost
  double ts_1byte_s = 0.0;       // defender scan speed, s/byte
  double tns_sched_s = 0.0;      // prober scheduling period (Tsleep)
  double tns_threshold_s = 0.0;  // probing threshold
  double tns_recover_s = 0.0;    // full trace recovery time

  double tns_delay_s() const { return tns_sched_s + tns_threshold_s; }
};

// The paper's worst case for the defender (§IV-C): introspection on the
// fastest core (A57 max speed), attacker with its slowest observed
// recovery and the largest benign threshold. Evaluates to 1,218,351 bytes
// with the calibrated constants.
RaceParams worst_case_params(const hw::TimingParams& timing);

// Eq. 1: does the attacker escape when the first malicious byte sits S
// bytes into the scanned range?
bool attacker_escapes(const RaceParams& p, std::size_t s_bytes);

// Largest S for which the attacker escapes (Eq. 2's right-hand side) ==
// the largest area size SATIN may use.
std::size_t max_safe_area_bytes(const RaceParams& p);

// Fraction of an N-byte kernel a single full-kernel introspection pass
// fails to protect against the evader (~90% for the paper's numbers).
double unprotected_fraction(const RaceParams& p, std::size_t kernel_bytes);

}  // namespace satin::core
