#include "core/race_model.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace satin::core {

RaceParams worst_case_params(const hw::TimingParams& timing) {
  RaceParams p;
  p.ts_switch_s = timing.switch_max_s;               // 3.60e-6
  p.ts_1byte_s = timing.hash_per_byte_a57.min_s;     // 6.67e-9 (fastest)
  p.tns_sched_s = timing.kprober_sleep_s;            // 2e-4
  p.tns_threshold_s = timing.cross_core.worst_case_threshold_s;  // 1.8e-3
  // §IV-C uses the slowest observed recovery, 6.13e-3 s.
  p.tns_recover_s = timing.recover_a53.max_s;
  return p;
}

bool attacker_escapes(const RaceParams& p, std::size_t s_bytes) {
  const double defender =
      p.ts_switch_s + static_cast<double>(s_bytes) * p.ts_1byte_s;
  const bool escapes = defender > p.tns_delay_s() + p.tns_recover_s;
  SATIN_METRIC_INC(escapes ? "race.model_escapes" : "race.model_caught");
  return escapes;
}

std::size_t max_safe_area_bytes(const RaceParams& p) {
  const double bound =
      (p.tns_delay_s() + p.tns_recover_s - p.ts_switch_s) / p.ts_1byte_s;
  if (bound <= 0.0) return 0;
  // Round to nearest: the paper reports 1,218,351 B for its constants.
  return static_cast<std::size_t>(std::llround(bound));
}

double unprotected_fraction(const RaceParams& p, std::size_t kernel_bytes) {
  if (kernel_bytes == 0) return 0.0;
  const std::size_t safe = std::min(max_safe_area_bytes(p), kernel_bytes);
  return 1.0 - static_cast<double>(safe) / static_cast<double>(kernel_bytes);
}

}  // namespace satin::core
