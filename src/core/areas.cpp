#include "core/areas.h"

#include <algorithm>
#include <stdexcept>

namespace satin::core {

namespace {
void check_cap(const Area& area, std::size_t max_bytes) {
  if (area.size > max_bytes) {
    throw std::invalid_argument("area '" + area.label + "' (" +
                                std::to_string(area.size) +
                                " B) exceeds the race bound " +
                                std::to_string(max_bytes) + " B");
  }
}
}  // namespace

std::vector<Area> partition_by_regions(const os::SystemMap& map,
                                       std::size_t max_bytes) {
  std::vector<Area> areas;
  areas.reserve(static_cast<std::size_t>(map.region_count()));
  for (int r = 0; r < map.region_count(); ++r) {
    const auto extent = map.region_extent(r);
    Area area;
    area.index = r;
    area.offset = extent.offset;
    area.size = extent.size;
    area.label = "region/" + std::to_string(r);
    check_cap(area, max_bytes);
    areas.push_back(std::move(area));
  }
  return areas;
}

std::vector<Area> partition_even(const os::SystemMap& map,
                                 std::size_t max_bytes, int target_count) {
  if (target_count <= 0) {
    throw std::invalid_argument("partition_even: target_count must be > 0");
  }
  const auto& sections = map.sections();
  for (const auto& s : sections) {
    if (s.size > max_bytes) {
      throw std::invalid_argument("partition_even: section " + s.name +
                                  " exceeds the race bound");
    }
  }
  const double ideal =
      static_cast<double>(map.total_size()) / target_count;
  std::vector<Area> areas;
  Area current;
  current.index = 0;
  current.offset = 0;
  auto close_current = [&](std::size_t end_offset) {
    current.size = end_offset - current.offset;
    current.label = "area/" + std::to_string(current.index);
    check_cap(current, max_bytes);
    areas.push_back(current);
    current = Area{};
    current.index = static_cast<int>(areas.size());
    current.offset = end_offset;
  };
  for (std::size_t i = 0; i < sections.size(); ++i) {
    const auto& s = sections[i];
    const std::size_t tentative = s.end() - current.offset;
    const bool over_cap = tentative > max_bytes;
    // Close at this boundary if the cap forces it, or if this boundary is
    // at least as close to the even-split target as the next one would be.
    bool close = over_cap;
    if (!close && i + 1 < sections.size()) {
      const double target =
          ideal * static_cast<double>(areas.size() + 1);
      const double here = std::abs(static_cast<double>(s.end()) - target);
      const double next =
          std::abs(static_cast<double>(sections[i + 1].end()) - target);
      close = static_cast<double>(s.end()) >= target || here <= next;
    }
    if (over_cap) {
      // The current area must close *before* this section.
      if (s.offset == current.offset) {
        throw std::logic_error("partition_even: unsplittable section");
      }
      close_current(s.offset);
    }
    if (close && !over_cap) close_current(s.end());
  }
  if (current.offset < map.total_size()) close_current(map.total_size());
  return areas;
}

std::vector<Area> single_area(const os::SystemMap& map) {
  Area area;
  area.index = 0;
  area.offset = 0;
  area.size = map.total_size();
  area.label = "whole-kernel";
  return {area};
}

std::size_t largest_area(const std::vector<Area>& areas) {
  std::size_t best = 0;
  for (const Area& a : areas) best = std::max(best, a.size);
  return best;
}

std::size_t smallest_area(const std::vector<Area>& areas) {
  if (areas.empty()) return 0;
  std::size_t best = areas.front().size;
  for (const Area& a : areas) best = std::min(best, a.size);
  return best;
}

std::size_t total_area_bytes(const std::vector<Area>& areas) {
  std::size_t total = 0;
  for (const Area& a : areas) total += a.size;
  return total;
}

int area_containing(const std::vector<Area>& areas, std::size_t offset) {
  for (const Area& a : areas) {
    if (offset >= a.offset && offset < a.end()) return a.index;
  }
  return -1;
}

}  // namespace satin::core
