// The Wake-Up Time Queue (§V-C, §V-D).
//
// Coordinates the random wake-up sequence across cores *through secure
// memory only*: cross-core secure interrupts would let the normal world
// probe the wake pattern, so instead each waking core pulls its next wake
// time from a queue of n pre-generated slots. Consecutive slot times are
// tp + td apart with td uniform in [-tp, +tp] (round gaps in [0, 2*tp]);
// slot-to-core assignment is a fresh random permutation per generation.
#pragma once

#include <cstdint>
#include <vector>

#include "hw/types.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace satin::core {

class WakeUpQueue {
 public:
  // `tp` is the base period between introspection rounds (tp = Tgoal / m).
  WakeUpQueue(int num_cores, sim::Duration tp, sim::Rng rng);

  sim::Duration tp() const { return tp_; }

  // Random deviation can be disabled (ablation: strictly periodic rounds,
  // the predictable pattern evasion attacks exploit).
  void set_randomized(bool randomized) { randomized_ = randomized; }
  bool randomized() const { return randomized_; }

  // Trusted boot: generates the first slot generation starting after
  // `boot_time` and returns each core's initial wake time (the self
  // activation module is "invoked once on each core" during boot, §V-C).
  std::vector<sim::Time> boot_times(sim::Time boot_time);

  // A core that just finished a round extracts its next wake time. New
  // generations are created on demand: normally when the previous one is
  // fully extracted, and eagerly when a fast core laps a slow round.
  // Throws std::logic_error for a core currently marked offline.
  sim::Time next_wake_for(hw::CoreId core, sim::Time now);

  // Graceful degradation: an offline core is excluded from every future
  // generation, so its rounds redistribute over the remaining cores —
  // slot cadence stays ~tp per slot, meaning the system-wide round rate
  // is preserved and the survivors each wake more often. Marking the core
  // online again resorbs it from the next generation that includes it.
  // Already-generated slots are never reassigned.
  void set_core_online(hw::CoreId core, bool online);
  bool core_online(hw::CoreId core) const;
  int online_count() const;

  std::uint64_t generations() const { return generations_.size(); }

 private:
  struct Generation {
    std::vector<sim::Time> slot_times;  // ascending round times
    std::vector<int> core_to_slot;      // slot per core; -1 = not a member
  };

  sim::Duration sample_gap();
  void generate(sim::Time now);

  int num_cores_;
  sim::Duration tp_;
  sim::Rng rng_;
  bool randomized_ = true;
  std::vector<char> online_;
  std::vector<Generation> generations_;
  std::vector<std::size_t> next_gen_for_core_;
  sim::Time last_slot_time_;
};

}  // namespace satin::core
