// The Integrity Checking Module (§V-B, §VI-A2).
//
// At trusted boot it hashes every benign area into the secure-world
// authorized store; each round it scans one area and compares. An alarm
// is raised purely from a digest mismatch over the bytes the timed scan
// observed — whether a racing evader escapes is decided by the memory
// model, never by consulting attacker state.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/areas.h"
#include "hw/platform.h"
#include "os/kernel_image.h"
#include "secure/authorized_store.h"
#include "secure/introspect.h"

namespace satin::core {

// How a digest mismatch classified once the retry budget ran out.
// kConfirmed: every scan of the round mismatched — persistent tampering.
// kTransient: a mismatch that cleared on rescan — a glitch in the observed
// view (or an attacker restoring between scans; a transient alarm is still
// an alarm, it just doesn't claim persistence).
enum class AlarmKind { kConfirmed, kTransient };

const char* to_string(AlarmKind kind);

struct CheckOutcome {
  int area = -1;
  // First-scan verdict: false means this round raised an alarm (of either
  // kind). With a zero retry budget this is exactly the old semantics.
  bool ok = true;
  bool transient = false;  // the alarm cleared on rescan
  int retries = 0;         // rescans this round actually performed
  hw::CoreId core = -1;
  secure::ScanResult scan;
};

struct Alarm {
  int area = -1;
  hw::CoreId core = -1;
  sim::Time when;
  std::uint64_t digest = 0;
  AlarmKind kind = AlarmKind::kConfirmed;
  int retries = 0;
};

class IntegrityChecker {
 public:
  IntegrityChecker(hw::Platform& platform, const os::KernelImage& image,
                   std::vector<Area> areas,
                   secure::HashKind hash = secure::HashKind::kDjb2,
                   secure::ScanStrategy strategy =
                       secure::ScanStrategy::kDirectHash);

  const std::vector<Area>& areas() const { return areas_; }
  secure::Introspector& introspector() { return introspector_; }

  // Hashes the pristine image per area into the authorized store. Must run
  // before any attack mutates kernel memory (trusted boot).
  void authorize_boot_state();
  bool authorized() const { return authorized_; }

  // Scans `area` on `core` starting now; `done` fires at scan completion
  // with the verdict. A mismatch with retries left rescans the same area
  // back-to-back (the core stays in the secure world) until a scan comes
  // back clean — kTransient — or the budget runs out — kConfirmed.
  void check_area_async(hw::CoreId core, int area,
                        std::function<void(const CheckOutcome&)> done);

  // Rescan budget per round; 0 (default) keeps every mismatch kConfirmed
  // on the first scan, the pre-resilience behavior.
  void set_max_retries(int retries);
  int max_retries() const { return max_retries_; }

  std::uint64_t checks_completed() const { return checks_; }
  std::uint64_t check_count(int area) const;
  const std::vector<Alarm>& alarms() const { return alarms_; }
  std::uint64_t alarm_count(AlarmKind kind) const;
  std::uint64_t retries_performed() const { return retries_; }

 private:
  void run_attempt(hw::CoreId core, int area, int attempt,
                   std::function<void(const CheckOutcome&)> done);
  hw::Platform& platform_;
  const os::KernelImage& image_;
  std::vector<Area> areas_;
  secure::Introspector introspector_;
  secure::AuthorizedStore store_;
  bool authorized_ = false;
  int max_retries_ = 0;
  std::uint64_t checks_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t confirmed_alarms_ = 0;
  std::uint64_t transient_alarms_ = 0;
  std::vector<std::uint64_t> per_area_checks_;
  std::vector<Alarm> alarms_;
};

}  // namespace satin::core
