// SATIN: Secure Asynchronous Trustworthy INtrospection (§V, §VI).
//
// Orchestrates the two secure-world modules of Fig. 5 on top of the TSP:
//  * Integrity Checking Module — divide-and-conquer over the Kernel Area
//    Set: every wake-up scans one pseudo-randomly chosen area whose size
//    respects the Eq.-2 race bound, so the scan finishes before TZ-Evader
//    can hide.
//  * Self Activation Module — per-core secure timers programmed from the
//    Wake-Up Time Queue (random deviation, random core order, coordinated
//    through secure memory only).
//
// The same class, degenerately configured (one whole-kernel area, fixed
// period and/or fixed core), reproduces the PKM-style baseline that
// TZ-Evader defeats — see make_pkm_baseline_config().
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/area_set.h"
#include "core/integrity_checker.h"
#include "core/race_model.h"
#include "core/wakeup_queue.h"
#include "hw/platform.h"
#include "os/kernel_image.h"
#include "secure/tsp.h"

namespace satin::core {

// Self-healing knobs. Everything defaults OFF so a default-configured
// Satin is bit-identical to the pre-resilience implementation (no extra
// RNG draws, no extra events).
struct ResilienceConfig {
  // Missed-wake watchdog: a trusted engine-side tick (modeled as the
  // TSP's own bookkeeping timer, deliberately NOT routed through the
  // faultable GenericTimer) that re-arms any core whose expected wake is
  // overdue — recovering from misfired/drifted timers, lost secure IRQs
  // and aborted world switches.
  bool watchdog = false;
  double watchdog_period_tp = 0.5;  // tick every this fraction of tp
  double watchdog_margin_tp = 0.5;  // overdue = expected + this * tp
  // Rescan budget on a digest mismatch: mismatch-then-clean classifies
  // the alarm kTransient, persistent mismatch kConfirmed. 0 = classic
  // single-scan behavior.
  int max_scan_retries = 0;
  // Redistribute wake-queue rounds over surviving cores when a core goes
  // offline, resorbing it on return (multi-core only; detection rides on
  // the watchdog tick).
  bool adapt_offline = false;
};

struct SatinConfig {
  // Target period for covering the whole kernel once; tp = Tgoal / m.
  // §VI-B1's experiment runs with the 19-area map at ~152 s per cycle.
  double tgoal_s = 152.0;
  // Direct tp override (seconds); when set, tgoal_s is ignored.
  std::optional<double> tp_s;
  // Random deviation td ~ U(-tp, +tp) on each wake (ablation: off =>
  // strictly periodic, predictable to the evader).
  bool randomize_wake = true;
  // Pseudo-random area order (ablation: off => ascending order).
  bool randomize_area = true;
  // All cores take turns via the Wake-Up Time Queue; off pins every round
  // to `fixed_core` (the easier-to-probe configuration of §IV-B2).
  bool multi_core = true;
  hw::CoreId fixed_core = 0;
  secure::HashKind hash = secure::HashKind::kDjb2;
  secure::ScanStrategy strategy = secure::ScanStrategy::kDirectHash;
  // Areas to introspect; empty => partition the map by regions under the
  // worst-case race bound. Overrides are taken as-is (the PKM baseline
  // deliberately violates the bound with one whole-kernel area).
  std::vector<Area> areas_override;
  // One whole-kernel area regardless of the race bound (PKM baseline).
  bool whole_kernel_single_area = false;
  ResilienceConfig resilience;
};

struct RoundRecord {
  std::uint64_t round = 0;
  int area = -1;
  hw::CoreId core = -1;
  sim::Time entry;        // secure timer interrupt (normal world frozen)
  sim::Time handler_start;
  sim::Time scan_end;
  double per_byte_s = 0.0;  // this pass's sampled scan speed
  bool alarm = false;
  bool transient = false;  // the alarm cleared on rescan
  int retries = 0;         // rescans performed this round
};

class Satin {
 public:
  Satin(hw::Platform& platform, const os::KernelImage& image,
        secure::TestSecurePayload& tsp, SatinConfig config = {});

  // Trusted boot: authorizes benign hashes, installs the secure-timer
  // service and programs the initial wake-up on every participating core.
  void start();
  // Stops the secure timers; an in-flight round finishes normally.
  void stop();
  bool running() const { return running_; }

  const SatinConfig& config() const { return config_; }
  sim::Duration tp() const { return tp_; }
  int area_count() const {
    return static_cast<int>(checker_.areas().size());
  }
  IntegrityChecker& checker() { return checker_; }
  const IntegrityChecker& checker() const { return checker_; }

  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t alarm_count() const {
    return static_cast<std::uint64_t>(checker_.alarms().size());
  }
  std::uint64_t watchdog_fires() const { return watchdog_fires_; }
  // Completed full passes over the kernel (every round consumes exactly
  // one area from the set). Guarded so a hypothetical empty area set can
  // never fault here — construction already rejects it.
  std::uint64_t full_cycles() const {
    const auto m = static_cast<std::uint64_t>(area_count());
    return m == 0 ? 0 : rounds_ / m;
  }
  const std::vector<RoundRecord>& round_records() const { return records_; }

  // Area containing a kernel offset (e.g. the hijacked handler).
  int area_of_offset(std::size_t offset) const {
    return area_containing(checker_.areas(), offset);
  }

  // §VI-B1: the period within which every byte is guaranteed scanned at
  // least once: m * tp + sum(size_i * Ts_1byte).
  sim::Duration guaranteed_scan_period(hw::CoreType assumed_core) const;

 private:
  void on_session(std::shared_ptr<hw::SecureSession> session);
  sim::Time next_wake_single(sim::Time now);
  void watchdog_tick();
  bool participates(hw::CoreId core) const {
    return config_.multi_core || core == config_.fixed_core;
  }

  hw::Platform& platform_;
  secure::TestSecurePayload& tsp_;
  SatinConfig config_;
  sim::Duration tp_;
  IntegrityChecker checker_;
  KernelAreaSet area_set_;
  WakeUpQueue wake_queue_;
  sim::Rng rng_;
  bool running_ = false;
  sim::Time last_single_wake_;
  std::uint64_t rounds_ = 0;
  std::vector<RoundRecord> records_;
  // Watchdog bookkeeping: the wake each participating core has been
  // armed for, and which cores the queue currently excludes.
  std::vector<sim::Time> expected_wake_;
  std::vector<char> absent_;
  std::uint64_t watchdog_fires_ = 0;
};

// The state-of-the-art baseline the paper attacks (§II, §IV-C): a
// Samsung-PKM-style periodic measurement of the whole kernel in one pass.
// `random_core` selects whether rounds rotate over random cores or stay on
// `fixed_core`; `random_time` adds the +/-period deviation.
SatinConfig make_pkm_baseline_config(double period_s, bool random_core,
                                     bool random_time,
                                     hw::CoreId fixed_core = 5);

}  // namespace satin::core
