// The shared Kernel Area Set (§V-B, Fig. 6).
//
// Pseudo-random selection without replacement: each introspection round
// removes a random remaining area; when the set empties it is refilled
// with all areas, guaranteeing every area is scanned exactly once per
// cycle while the order stays unpredictable to the normal world. The set
// lives in secure memory and is shared by all cores' rounds.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.h"

namespace satin::core {

class KernelAreaSet {
 public:
  KernelAreaSet(int area_count, sim::Rng rng);

  int area_count() const { return area_count_; }
  std::size_t remaining() const { return remaining_.size(); }

  // Removes and returns a random remaining area index; refills first if
  // the set is empty ("if set == NULL, SATIN resets set = {area_0, ...}").
  int take_next();

  // Randomized selection can be disabled (ablation): takes areas in
  // ascending order each cycle instead.
  void set_randomized(bool randomized) { randomized_ = randomized; }
  bool randomized() const { return randomized_; }

  // Completed full cycles (every area scanned once per cycle).
  std::uint64_t cycles_completed() const { return cycles_; }

 private:
  void refill();

  int area_count_;
  sim::Rng rng_;
  bool randomized_ = true;
  std::vector<int> remaining_;
  std::uint64_t cycles_ = 0;
};

}  // namespace satin::core
