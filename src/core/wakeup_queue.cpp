#include "core/wakeup_queue.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace satin::core {

WakeUpQueue::WakeUpQueue(int num_cores, sim::Duration tp, sim::Rng rng)
    : num_cores_(num_cores), tp_(tp), rng_(std::move(rng)) {
  if (num_cores <= 0) throw std::invalid_argument("WakeUpQueue: no cores");
  if (tp <= sim::Duration::zero()) {
    throw std::invalid_argument("WakeUpQueue: non-positive tp");
  }
}

sim::Duration WakeUpQueue::sample_gap() {
  if (!randomized_) return tp_;
  // tp + td with td ~ U(-tp, +tp): gaps in [0, 2*tp], mean tp.
  return tp_ + rng_.uniform_duration(sim::Duration::zero() - tp_, tp_);
}

void WakeUpQueue::generate(sim::Time after) {
  Generation gen;
  gen.slot_times.resize(static_cast<std::size_t>(num_cores_));
  sim::Time t = std::max(after, last_slot_time_);
  for (auto& slot : gen.slot_times) {
    t += sample_gap();
    slot = t;
  }
  last_slot_time_ = t;
  gen.core_to_slot.resize(static_cast<std::size_t>(num_cores_));
  std::iota(gen.core_to_slot.begin(), gen.core_to_slot.end(), 0);
  rng_.shuffle(gen.core_to_slot.begin(), gen.core_to_slot.end());
  generations_.push_back(std::move(gen));
}

std::vector<sim::Time> WakeUpQueue::boot_times(sim::Time boot_time) {
  if (!generations_.empty()) {
    throw std::logic_error("WakeUpQueue: boot_times called twice");
  }
  generate(boot_time);
  next_gen_for_core_.assign(static_cast<std::size_t>(num_cores_), 1);
  const Generation& gen = generations_.front();
  std::vector<sim::Time> times(static_cast<std::size_t>(num_cores_));
  for (int c = 0; c < num_cores_; ++c) {
    const auto slot =
        static_cast<std::size_t>(gen.core_to_slot[static_cast<std::size_t>(c)]);
    times[static_cast<std::size_t>(c)] = gen.slot_times[slot];
  }
  return times;
}

sim::Time WakeUpQueue::next_wake_for(hw::CoreId core, sim::Time now) {
  if (core < 0 || core >= num_cores_) {
    throw std::out_of_range("WakeUpQueue: bad core");
  }
  if (generations_.empty()) {
    throw std::logic_error("WakeUpQueue: boot_times first");
  }
  const auto c = static_cast<std::size_t>(core);
  const std::size_t wanted = next_gen_for_core_[c]++;
  // A fast core may lap a slow core's still-running round and need the
  // following generation before the current one is fully extracted; the
  // queue simply pre-generates it ("refreshes the queue with n newly
  // generated time values and newly generated random assignment", §V-D).
  while (generations_.size() <= wanted) generate(now);
  const Generation& gen = generations_[wanted];
  const auto slot = static_cast<std::size_t>(gen.core_to_slot[c]);
  // A slot earlier than `now` (this core's previous round overran its
  // assigned gap) fires immediately via the timer semantics.
  return gen.slot_times[slot];
}

}  // namespace satin::core
