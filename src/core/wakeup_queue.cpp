#include "core/wakeup_queue.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace satin::core {

WakeUpQueue::WakeUpQueue(int num_cores, sim::Duration tp, sim::Rng rng)
    : num_cores_(num_cores),
      tp_(tp),
      rng_(std::move(rng)),
      online_(static_cast<std::size_t>(num_cores), 1) {
  if (num_cores <= 0) throw std::invalid_argument("WakeUpQueue: no cores");
  if (tp <= sim::Duration::zero()) {
    throw std::invalid_argument("WakeUpQueue: non-positive tp");
  }
}

void WakeUpQueue::set_core_online(hw::CoreId core, bool online) {
  if (core < 0 || core >= num_cores_) {
    throw std::out_of_range("WakeUpQueue: bad core");
  }
  online_[static_cast<std::size_t>(core)] = online ? 1 : 0;
}

bool WakeUpQueue::core_online(hw::CoreId core) const {
  if (core < 0 || core >= num_cores_) {
    throw std::out_of_range("WakeUpQueue: bad core");
  }
  return online_[static_cast<std::size_t>(core)] != 0;
}

int WakeUpQueue::online_count() const {
  int n = 0;
  for (char o : online_) n += o != 0;
  return n;
}

sim::Duration WakeUpQueue::sample_gap() {
  if (!randomized_) return tp_;
  // tp + td with td ~ U(-tp, +tp): gaps in [0, 2*tp], mean tp.
  return tp_ + rng_.uniform_duration(sim::Duration::zero() - tp_, tp_);
}

void WakeUpQueue::generate(sim::Time after) {
  // A generation holds one slot per *online* core. With every core online
  // this draws exactly the gaps and shuffle the pre-degradation code drew,
  // so enabling the feature without using it stays bit-identical.
  std::vector<int> members;
  members.reserve(static_cast<std::size_t>(num_cores_));
  for (int c = 0; c < num_cores_; ++c) {
    if (online_[static_cast<std::size_t>(c)]) members.push_back(c);
  }
  if (members.empty()) {
    throw std::logic_error("WakeUpQueue: every core is offline");
  }
  Generation gen;
  gen.slot_times.resize(members.size());
  sim::Time t = std::max(after, last_slot_time_);
  for (auto& slot : gen.slot_times) {
    t += sample_gap();
    slot = t;
  }
  last_slot_time_ = t;
  std::vector<int> perm(members.size());
  std::iota(perm.begin(), perm.end(), 0);
  rng_.shuffle(perm.begin(), perm.end());
  gen.core_to_slot.assign(static_cast<std::size_t>(num_cores_), -1);
  for (std::size_t i = 0; i < members.size(); ++i) {
    gen.core_to_slot[static_cast<std::size_t>(members[i])] = perm[i];
  }
  generations_.push_back(std::move(gen));
}

std::vector<sim::Time> WakeUpQueue::boot_times(sim::Time boot_time) {
  if (!generations_.empty()) {
    throw std::logic_error("WakeUpQueue: boot_times called twice");
  }
  generate(boot_time);
  next_gen_for_core_.assign(static_cast<std::size_t>(num_cores_), 1);
  const Generation& gen = generations_.front();
  // A core offline at boot gets no slot; Time::max() marks "never wakes"
  // (callers skip programming it — it rejoins via set_core_online later).
  std::vector<sim::Time> times(static_cast<std::size_t>(num_cores_),
                               sim::Time::max());
  for (int c = 0; c < num_cores_; ++c) {
    const int slot = gen.core_to_slot[static_cast<std::size_t>(c)];
    if (slot >= 0) {
      times[static_cast<std::size_t>(c)] =
          gen.slot_times[static_cast<std::size_t>(slot)];
    }
  }
  return times;
}

sim::Time WakeUpQueue::next_wake_for(hw::CoreId core, sim::Time now) {
  if (core < 0 || core >= num_cores_) {
    throw std::out_of_range("WakeUpQueue: bad core");
  }
  if (generations_.empty()) {
    throw std::logic_error("WakeUpQueue: boot_times first");
  }
  const auto c = static_cast<std::size_t>(core);
  if (!online_[c]) {
    throw std::logic_error("WakeUpQueue: next_wake_for on offline core");
  }
  for (;;) {
    const std::size_t wanted = next_gen_for_core_[c]++;
    // A fast core may lap a slow core's still-running round and need the
    // following generation before the current one is fully extracted; the
    // queue simply pre-generates it ("refreshes the queue with n newly
    // generated time values and newly generated random assignment", §V-D).
    while (generations_.size() <= wanted) generate(now);
    const Generation& gen = generations_[wanted];
    const int slot = gen.core_to_slot[c];
    // Generations created while this core was offline carry no slot for
    // it; skip forward. The loop terminates because a generation created
    // inside this call always includes the (online) caller.
    if (slot < 0) continue;
    // A slot earlier than `now` (this core's previous round overran its
    // assigned gap) fires immediately via the timer semantics.
    return gen.slot_times[static_cast<std::size_t>(slot)];
  }
}

}  // namespace satin::core
