#include "core/integrity_checker.h"

#include <span>
#include <stdexcept>

#include "obs/flight/recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/log.h"

namespace satin::core {

const char* to_string(AlarmKind kind) {
  return kind == AlarmKind::kConfirmed ? "confirmed" : "transient";
}

IntegrityChecker::IntegrityChecker(hw::Platform& platform,
                                   const os::KernelImage& image,
                                   std::vector<Area> areas,
                                   secure::HashKind hash,
                                   secure::ScanStrategy strategy)
    : platform_(platform),
      image_(image),
      areas_(std::move(areas)),
      introspector_(platform, hash, strategy),
      per_area_checks_(areas_.size(), 0) {
  if (areas_.empty()) {
    throw std::invalid_argument("IntegrityChecker: no areas");
  }
  // Register the area set with the introspector so its incremental digest
  // cache pre-sizes one chunk table per area before the first round.
  for (const Area& area : areas_) {
    introspector_.register_area(area.offset, area.size);
  }
}

void IntegrityChecker::authorize_boot_state() {
  if (authorized_) {
    throw std::logic_error("IntegrityChecker: already authorized");
  }
  const auto& pristine = image_.bytes();
  for (const Area& area : areas_) {
    const std::span<const std::uint8_t> slice(pristine.data() + area.offset,
                                              area.size);
    store_.authorize("area/" + std::to_string(area.index),
                     introspector_.digest_reference(slice));
  }
  authorized_ = true;
}

void IntegrityChecker::set_max_retries(int retries) {
  if (retries < 0) {
    throw std::invalid_argument("IntegrityChecker: negative retry budget");
  }
  max_retries_ = retries;
}

void IntegrityChecker::check_area_async(
    hw::CoreId core, int area, std::function<void(const CheckOutcome&)> done) {
  if (!authorized_) {
    throw std::logic_error("IntegrityChecker: authorize_boot_state first");
  }
  run_attempt(core, area, 0, std::move(done));
}

void IntegrityChecker::run_attempt(
    hw::CoreId core, int area, int attempt,
    std::function<void(const CheckOutcome&)> done) {
  const Area& a = areas_.at(static_cast<std::size_t>(area));
  introspector_.scan_async(
      core, a.offset, a.size,
      [this, core, area, attempt, done = std::move(done)](
          const secure::ScanResult& scan) mutable {
        const bool match =
            store_.matches("area/" + std::to_string(area), scan.digest);
        if (!match && attempt < max_retries_) {
          ++retries_;
          SATIN_METRIC_INC("satin.retries");
          SATIN_FLIGHT_RECORD(obs::FlightKind::kRetry, scan.scan_end, retries_,
                              core, static_cast<std::uint64_t>(area));
          SATIN_TRACE_INSTANT_ARG("integrity", "retry", scan.scan_end, core,
                                  obs::kWorldSecure, "area", area);
          SATIN_LOG(kDebug) << "integrity: mismatch on area " << area
                            << ", rescan " << (attempt + 1) << "/"
                            << max_retries_;
          run_attempt(core, area, attempt + 1, std::move(done));
          return;
        }
        CheckOutcome outcome;
        outcome.area = area;
        outcome.core = core;
        outcome.scan = scan;
        outcome.ok = match && attempt == 0;
        outcome.transient = match && attempt > 0;
        outcome.retries = attempt;
        ++checks_;
        ++per_area_checks_.at(static_cast<std::size_t>(area));
        SATIN_METRIC_INC("integrity.checks");
        SATIN_METRIC_DIGEST_OBSERVE("integrity.retries_per_check",
                                    static_cast<double>(attempt));
        if (!outcome.ok) {
          const AlarmKind kind = outcome.transient ? AlarmKind::kTransient
                                                   : AlarmKind::kConfirmed;
          Alarm alarm;
          alarm.area = area;
          alarm.core = core;
          alarm.when = scan.scan_end;
          alarm.digest = scan.digest;
          alarm.kind = kind;
          alarm.retries = attempt;
          alarms_.push_back(alarm);
          SATIN_METRIC_INC("integrity.alarms");
          SATIN_FLIGHT_RECORD(
              obs::FlightKind::kAlarm, scan.scan_end, alarms_.size() - 1, core,
              (static_cast<std::uint64_t>(area) << 1) |
                  (kind == AlarmKind::kTransient ? 1u : 0u));
          if (kind == AlarmKind::kTransient) {
            ++transient_alarms_;
            SATIN_METRIC_INC("satin.transient_alarms");
            SATIN_TRACE_INSTANT_ARG("integrity", "transient_alarm",
                                    scan.scan_end, core, obs::kWorldSecure,
                                    "area", area);
            SATIN_LOG(kInfo) << "integrity: transient alarm on area " << area
                             << " cleared after " << attempt << " rescan(s)";
          } else {
            ++confirmed_alarms_;
            SATIN_TRACE_INSTANT_ARG("integrity", "alarm", scan.scan_end, core,
                                    obs::kWorldSecure, "area", area);
            SATIN_LOG(kInfo) << "integrity: ALARM area " << area << " on core "
                             << core << " at " << scan.scan_end.to_string();
          }
        }
        done(outcome);
      });
}

std::uint64_t IntegrityChecker::alarm_count(AlarmKind kind) const {
  return kind == AlarmKind::kConfirmed ? confirmed_alarms_
                                       : transient_alarms_;
}

std::uint64_t IntegrityChecker::check_count(int area) const {
  return per_area_checks_.at(static_cast<std::size_t>(area));
}

}  // namespace satin::core
