#include "core/integrity_checker.h"

#include <span>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/log.h"

namespace satin::core {

IntegrityChecker::IntegrityChecker(hw::Platform& platform,
                                   const os::KernelImage& image,
                                   std::vector<Area> areas,
                                   secure::HashKind hash,
                                   secure::ScanStrategy strategy)
    : platform_(platform),
      image_(image),
      areas_(std::move(areas)),
      introspector_(platform, hash, strategy),
      per_area_checks_(areas_.size(), 0) {
  if (areas_.empty()) {
    throw std::invalid_argument("IntegrityChecker: no areas");
  }
}

void IntegrityChecker::authorize_boot_state() {
  if (authorized_) {
    throw std::logic_error("IntegrityChecker: already authorized");
  }
  const auto& pristine = image_.bytes();
  for (const Area& area : areas_) {
    const std::span<const std::uint8_t> slice(pristine.data() + area.offset,
                                              area.size);
    store_.authorize("area/" + std::to_string(area.index),
                     introspector_.digest_reference(slice));
  }
  authorized_ = true;
}

void IntegrityChecker::check_area_async(
    hw::CoreId core, int area, std::function<void(const CheckOutcome&)> done) {
  if (!authorized_) {
    throw std::logic_error("IntegrityChecker: authorize_boot_state first");
  }
  const Area& a = areas_.at(static_cast<std::size_t>(area));
  introspector_.scan_async(
      core, a.offset, a.size,
      [this, core, area, done = std::move(done)](
          const secure::ScanResult& scan) {
        CheckOutcome outcome;
        outcome.area = area;
        outcome.core = core;
        outcome.scan = scan;
        outcome.ok =
            store_.matches("area/" + std::to_string(area), scan.digest);
        ++checks_;
        ++per_area_checks_.at(static_cast<std::size_t>(area));
        SATIN_METRIC_INC("integrity.checks");
        if (!outcome.ok) {
          alarms_.push_back(Alarm{area, core, scan.scan_end, scan.digest});
          SATIN_TRACE_INSTANT_ARG("integrity", "alarm", scan.scan_end, core,
                                  obs::kWorldSecure, "area", area);
          SATIN_METRIC_INC("integrity.alarms");
          SATIN_LOG(kInfo) << "integrity: ALARM area " << area << " on core "
                           << core << " at " << scan.scan_end.to_string();
        }
        done(outcome);
      });
}

std::uint64_t IntegrityChecker::check_count(int area) const {
  return per_area_checks_.at(static_cast<std::size_t>(area));
}

}  // namespace satin::core
