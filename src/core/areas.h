// Kernel introspection areas (§V-B, §VI-A2).
//
// SATIN's key defense is divide-and-conquer: split the kernel static area
// into pieces small enough that one piece is fully scanned before an
// evader can notice the world switch and finish cleaning (Eq. 2). Areas
// respect System.map boundaries — "each section ... only belongs to one
// area".
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "os/system_map.h"

namespace satin::core {

struct Area {
  int index = 0;
  std::size_t offset = 0;
  std::size_t size = 0;
  std::string label;

  std::size_t end() const { return offset + size; }
};

// Areas exactly as the map's region tags group them (the curated 19-area
// layout for the default map). Throws if any region exceeds `max_bytes`.
std::vector<Area> partition_by_regions(const os::SystemMap& map,
                                       std::size_t max_bytes);

// Generic partitioner for arbitrary maps: walks sections in address order
// and closes an area at the section boundary nearest the even-split target
// (total/target_count), never exceeding `max_bytes`. Throws if a single
// section exceeds `max_bytes`.
std::vector<Area> partition_even(const os::SystemMap& map,
                                 std::size_t max_bytes, int target_count);

// One area covering the whole kernel (the PKM-style baseline's "area").
std::vector<Area> single_area(const os::SystemMap& map);

std::size_t largest_area(const std::vector<Area>& areas);
std::size_t smallest_area(const std::vector<Area>& areas);
std::size_t total_area_bytes(const std::vector<Area>& areas);

// Index of the area containing `offset`; -1 if outside all areas.
int area_containing(const std::vector<Area>& areas, std::size_t offset);

}  // namespace satin::core
