#include "core/satin.h"

#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/log.h"

namespace satin::core {

namespace {
std::vector<Area> resolve_areas(const hw::Platform& platform,
                                const os::KernelImage& image,
                                const SatinConfig& config) {
  if (!config.areas_override.empty()) return config.areas_override;
  if (config.whole_kernel_single_area) return single_area(image.map());
  const std::size_t cap =
      max_safe_area_bytes(worst_case_params(platform.timing()));
  return partition_by_regions(image.map(), cap);
}
}  // namespace

Satin::Satin(hw::Platform& platform, const os::KernelImage& image,
             secure::TestSecurePayload& tsp, SatinConfig config)
    : platform_(platform),
      tsp_(tsp),
      config_(std::move(config)),
      tp_(sim::Duration::zero()),
      checker_(platform, image, resolve_areas(platform, image, config_),
               config_.hash, config_.strategy),
      area_set_(static_cast<int>(checker_.areas().size()),
                platform.rng().fork("satin-area-set")),
      wake_queue_(platform.num_cores(), sim::Duration::from_sec(1),
                  platform.rng().fork("satin-wake-queue")),
      rng_(platform.rng().fork("satin")) {
  const double tp_s =
      config_.tp_s ? *config_.tp_s
                   : config_.tgoal_s / static_cast<double>(area_count());
  tp_ = sim::Duration::from_sec_f(tp_s);
  area_set_.set_randomized(config_.randomize_area);
  // Rebuild the wake queue with the real tp (member construction order
  // prevented computing tp before the queue existed).
  wake_queue_ = WakeUpQueue(platform.num_cores(), tp_,
                            platform_.rng().fork("satin-wake-queue"));
  wake_queue_.set_randomized(config_.randomize_wake);
}

void Satin::start() {
  if (running_) throw std::logic_error("Satin::start: already running");
  running_ = true;
  if (!checker_.authorized()) checker_.authorize_boot_state();
  tsp_.install_timer_service(
      [this](std::shared_ptr<hw::SecureSession> session) {
        on_session(std::move(session));
      });
  const sim::Time now = platform_.engine().now();
  if (config_.multi_core) {
    const auto times = wake_queue_.boot_times(now);
    for (int c = 0; c < platform_.num_cores(); ++c) {
      platform_.timer().program_secure(c, times[static_cast<std::size_t>(c)]);
    }
  } else {
    platform_.timer().program_secure(config_.fixed_core,
                                     next_wake_single(now));
  }
  SATIN_LOG(kInfo) << "satin: started, m=" << area_count()
                   << " areas, tp=" << tp_.to_string();
}

void Satin::stop() {
  if (!running_) return;
  running_ = false;
  for (int c = 0; c < platform_.num_cores(); ++c) {
    platform_.timer().stop_secure(c);
  }
}

sim::Time Satin::next_wake_single(sim::Time now) {
  if (!config_.randomize_wake) {
    // Strictly periodic mode re-arms on a drift-free grid (CVAL += period,
    // the way real periodic timers are programmed) — the predictable
    // pattern the §V-C randomization exists to destroy.
    last_single_wake_ =
        last_single_wake_.is_zero() ? now + tp_ : last_single_wake_ + tp_;
    return last_single_wake_;
  }
  return now + tp_ +
         rng_.uniform_duration(sim::Duration::zero() - tp_, tp_);
}

void Satin::on_session(std::shared_ptr<hw::SecureSession> session) {
  if (!running_) {
    session->complete();
    return;
  }
  const hw::CoreId core = session->core_id();
  const int area = area_set_.take_next();
  const std::uint64_t round = ++rounds_;
  SATIN_TRACE_INSTANT_ARG("satin", "round", platform_.engine().now(), core,
                          obs::kWorldSecure, "area", area);
  SATIN_METRIC_INC("satin.rounds");
  SATIN_LOG(kDebug) << "satin: round " << round << " scans area " << area
                    << " on core " << core;
  checker_.check_area_async(
      core, area, [this, session = std::move(session), round,
                   area](const CheckOutcome& outcome) {
        RoundRecord record;
        record.round = round;
        record.area = area;
        record.core = outcome.core;
        record.entry = session->entry_time();
        record.handler_start = session->handler_start();
        record.scan_end = outcome.scan.scan_end;
        record.per_byte_s = outcome.scan.per_byte_s;
        record.alarm = !outcome.ok;
        if (record.alarm) SATIN_METRIC_INC("satin.detections");
        records_.push_back(record);
        // Self Activation Module: arm this core's next wake before
        // leaving the secure world (Fig. 5 step 5).
        if (running_) {
          const sim::Time now = platform_.engine().now();
          const sim::Time next =
              config_.multi_core
                  ? wake_queue_.next_wake_for(outcome.core, now)
                  : next_wake_single(now);
          platform_.timer().program_secure(outcome.core, next);
        }
        session->complete();
      });
}

sim::Duration Satin::guaranteed_scan_period(hw::CoreType assumed_core) const {
  const double per_byte =
      platform_.timing().hash_per_byte(assumed_core).avg_s;
  sim::Duration total = tp_ * static_cast<std::int64_t>(area_count());
  total += sim::Duration::from_sec_f(
      per_byte * static_cast<double>(total_area_bytes(checker_.areas())));
  return total;
}

SatinConfig make_pkm_baseline_config(double period_s, bool random_core,
                                     bool random_time, hw::CoreId fixed_core) {
  SatinConfig config;
  config.whole_kernel_single_area = true;
  config.tp_s = period_s;
  config.randomize_wake = random_time;
  config.randomize_area = false;
  config.multi_core = random_core;
  config.fixed_core = fixed_core;
  return config;
}

}  // namespace satin::core
