#include "core/satin.h"

#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/log.h"

namespace satin::core {

namespace {
std::vector<Area> resolve_areas(const hw::Platform& platform,
                                const os::KernelImage& image,
                                const SatinConfig& config) {
  std::vector<Area> areas;
  if (!config.areas_override.empty()) {
    areas = config.areas_override;
  } else if (config.whole_kernel_single_area) {
    areas = single_area(image.map());
  } else {
    const std::size_t cap =
        max_safe_area_bytes(worst_case_params(platform.timing()));
    areas = partition_by_regions(image.map(), cap);
  }
  if (areas.empty()) {
    throw std::invalid_argument(
        "Satin: empty kernel area set — the system map has no regions to "
        "introspect (and no areas_override was given)");
  }
  return areas;
}
}  // namespace

Satin::Satin(hw::Platform& platform, const os::KernelImage& image,
             secure::TestSecurePayload& tsp, SatinConfig config)
    : platform_(platform),
      tsp_(tsp),
      config_(std::move(config)),
      tp_(sim::Duration::zero()),
      checker_(platform, image, resolve_areas(platform, image, config_),
               config_.hash, config_.strategy),
      area_set_(static_cast<int>(checker_.areas().size()),
                platform.rng().fork("satin-area-set")),
      wake_queue_(platform.num_cores(), sim::Duration::from_sec(1),
                  platform.rng().fork("satin-wake-queue")),
      rng_(platform.rng().fork("satin")) {
  const double tp_s =
      config_.tp_s ? *config_.tp_s
                   : config_.tgoal_s / static_cast<double>(area_count());
  tp_ = sim::Duration::from_sec_f(tp_s);
  area_set_.set_randomized(config_.randomize_area);
  // Rebuild the wake queue with the real tp (member construction order
  // prevented computing tp before the queue existed).
  wake_queue_ = WakeUpQueue(platform.num_cores(), tp_,
                            platform_.rng().fork("satin-wake-queue"));
  wake_queue_.set_randomized(config_.randomize_wake);
  checker_.set_max_retries(config_.resilience.max_scan_retries);
}

void Satin::start() {
  if (running_) throw std::logic_error("Satin::start: already running");
  running_ = true;
  if (!checker_.authorized()) checker_.authorize_boot_state();
  tsp_.install_timer_service(
      [this](std::shared_ptr<hw::SecureSession> session) {
        on_session(std::move(session));
      });
  const sim::Time now = platform_.engine().now();
  expected_wake_.assign(static_cast<std::size_t>(platform_.num_cores()),
                        sim::Time::max());
  absent_.assign(static_cast<std::size_t>(platform_.num_cores()), 0);
  if (config_.multi_core) {
    const auto times = wake_queue_.boot_times(now);
    for (int c = 0; c < platform_.num_cores(); ++c) {
      platform_.timer().program_secure(c, times[static_cast<std::size_t>(c)]);
      expected_wake_[static_cast<std::size_t>(c)] =
          times[static_cast<std::size_t>(c)];
    }
  } else {
    const sim::Time next = next_wake_single(now);
    platform_.timer().program_secure(config_.fixed_core, next);
    expected_wake_[static_cast<std::size_t>(config_.fixed_core)] = next;
  }
  if (config_.resilience.watchdog) {
    platform_.engine().schedule_at(
        now + tp_ * config_.resilience.watchdog_period_tp,
        [this] { watchdog_tick(); });
  }
  SATIN_LOG(kInfo) << "satin: started, m=" << area_count()
                   << " areas, tp=" << tp_.to_string();
}

void Satin::stop() {
  if (!running_) return;
  running_ = false;
  for (int c = 0; c < platform_.num_cores(); ++c) {
    platform_.timer().stop_secure(c);
  }
}

sim::Time Satin::next_wake_single(sim::Time now) {
  if (!config_.randomize_wake) {
    // Strictly periodic mode re-arms on a drift-free grid (CVAL += period,
    // the way real periodic timers are programmed) — the predictable
    // pattern the §V-C randomization exists to destroy.
    last_single_wake_ =
        last_single_wake_.is_zero() ? now + tp_ : last_single_wake_ + tp_;
    return last_single_wake_;
  }
  return now + tp_ +
         rng_.uniform_duration(sim::Duration::zero() - tp_, tp_);
}

void Satin::on_session(std::shared_ptr<hw::SecureSession> session) {
  if (!running_) {
    session->complete();
    return;
  }
  const hw::CoreId core = session->core_id();
  const int area = area_set_.take_next();
  const std::uint64_t round = ++rounds_;
  SATIN_TRACE_INSTANT_ARG("satin", "round", platform_.engine().now(), core,
                          obs::kWorldSecure, "area", area);
  SATIN_METRIC_INC("satin.rounds");
  SATIN_LOG(kDebug) << "satin: round " << round << " scans area " << area
                    << " on core " << core;
  checker_.check_area_async(
      core, area, [this, session = std::move(session), round,
                   area](const CheckOutcome& outcome) {
        RoundRecord record;
        record.round = round;
        record.area = area;
        record.core = outcome.core;
        record.entry = session->entry_time();
        record.handler_start = session->handler_start();
        record.scan_end = outcome.scan.scan_end;
        record.per_byte_s = outcome.scan.per_byte_s;
        record.alarm = !outcome.ok;
        record.transient = outcome.transient;
        record.retries = outcome.retries;
        if (record.alarm) {
          SATIN_METRIC_INC("satin.detections");
          // Detection lag: secure entry (normal world frozen) to the
          // digest verdict, including the world switch and any rescans.
          SATIN_METRIC_DIGEST_OBSERVE("satin.detection_lag_s",
                                      (record.scan_end - record.entry).sec());
        }
        records_.push_back(record);
        // Self Activation Module: arm this core's next wake before
        // leaving the secure world (Fig. 5 step 5).
        if (running_) {
          const sim::Time now = platform_.engine().now();
          // A spurious secure IRQ can run a round on a core outside the
          // rotation (wrong core in single-core mode, or one the queue
          // dropped); scan it, but never arm such a core's timer.
          const bool in_rotation =
              participates(outcome.core) &&
              (!config_.multi_core || wake_queue_.core_online(outcome.core));
          if (in_rotation) {
            const sim::Time next =
                config_.multi_core
                    ? wake_queue_.next_wake_for(outcome.core, now)
                    : next_wake_single(now);
            platform_.timer().program_secure(outcome.core, next);
            expected_wake_[static_cast<std::size_t>(outcome.core)] = next;
          }
        }
        session->complete();
      });
}

void Satin::watchdog_tick() {
  if (!running_) return;  // stop() ends the tick chain
  const sim::Time now = platform_.engine().now();
  const sim::Duration margin = tp_ * config_.resilience.watchdog_margin_tp;
  for (int c = 0; c < platform_.num_cores(); ++c) {
    if (!participates(c)) continue;
    const auto idx = static_cast<std::size_t>(c);
    hw::Core& core = platform_.core(c);
    if (!core.online()) {
      // Degradation: pull the core out of the rotation once so the queue
      // redistributes its rounds over the survivors.
      if (config_.resilience.adapt_offline && config_.multi_core &&
          !absent_[idx] && wake_queue_.online_count() > 1) {
        absent_[idx] = true;
        wake_queue_.set_core_online(c, false);
        SATIN_METRIC_INC("satin.cores_dropped");
        SATIN_TRACE_INSTANT("satin", "core_dropped", now, c,
                            obs::kWorldSecure);
        SATIN_LOG(kInfo) << "satin: core " << c
                         << " offline, redistributing its rounds";
      }
      continue;
    }
    if (absent_[idx]) {
      // The core is back: resorb it and arm its next round. A stale slot
      // from before the outage may land in the past — the timer fires it
      // immediately, which doubles as the catch-up round.
      absent_[idx] = false;
      wake_queue_.set_core_online(c, true);
      const sim::Time next = wake_queue_.next_wake_for(c, now);
      expected_wake_[idx] = next;
      platform_.timer().program_secure(c, next);
      SATIN_METRIC_INC("satin.cores_resorbed");
      SATIN_TRACE_INSTANT("satin", "core_resorbed", now, c,
                          obs::kWorldSecure);
      SATIN_LOG(kInfo) << "satin: core " << c << " back online, resorbed";
      continue;
    }
    if (core.in_secure_world()) continue;  // a round is in flight
    if (now > expected_wake_[idx] + margin) {
      // Missed wake (misfired/drifted timer, lost IRQ, failed SMC):
      // re-arm at `now` for an immediate recovery round. If the fault
      // window is still active the re-arm may be swallowed again; the
      // next tick retries, so bounded windows always recover.
      ++watchdog_fires_;
      expected_wake_[idx] = now;
      platform_.timer().program_secure(c, now);
      SATIN_METRIC_INC("satin.watchdog_fires");
      SATIN_TRACE_INSTANT("satin", "watchdog_rearm", now, c,
                          obs::kWorldSecure);
      SATIN_LOG(kInfo) << "satin: watchdog re-arms overdue core " << c;
    }
  }
  platform_.engine().schedule_at(
      now + tp_ * config_.resilience.watchdog_period_tp,
      [this] { watchdog_tick(); });
}

sim::Duration Satin::guaranteed_scan_period(hw::CoreType assumed_core) const {
  const double per_byte =
      platform_.timing().hash_per_byte(assumed_core).avg_s;
  sim::Duration total = tp_ * static_cast<std::int64_t>(area_count());
  total += sim::Duration::from_sec_f(
      per_byte * static_cast<double>(total_area_bytes(checker_.areas())));
  return total;
}

SatinConfig make_pkm_baseline_config(double period_s, bool random_core,
                                     bool random_time, hw::CoreId fixed_core) {
  SatinConfig config;
  config.whole_kernel_single_area = true;
  config.tp_s = period_s;
  config.randomize_wake = random_time;
  config.randomize_area = false;
  config.multi_core = random_core;
  config.fixed_core = fixed_core;
  return config;
}

}  // namespace satin::core
