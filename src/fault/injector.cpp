#include "fault/injector.h"

#include <string>

#include "obs/flight/recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/log.h"

namespace satin::fault {

FaultInjector::FaultInjector(hw::Platform& platform, FaultPlan plan)
    : platform_(platform), plan_(std::move(plan)), rng_(plan_.seed) {}

FaultInjector::~FaultInjector() { disarm(); }

void FaultInjector::arm() {
  if (armed_) return;
  armed_ = true;
  platform_.install_fault_hooks(this);
  // Windowed faults are driven by injector-scheduled events, fixed now so
  // the schedule never depends on what the workload happens to do.
  for (const FaultSpec& spec : plan_.faults) {
    switch (spec.kind) {
      case FaultKind::kCoreOffline:
        schedule_offline_window(spec);
        break;
      case FaultKind::kIrqSpurious:
        schedule_spurious_train(spec);
        break;
      default:
        break;  // seam-driven kinds need no scheduling
    }
  }
  SATIN_LOG(kInfo) << "fault: armed plan " << plan_.to_string();
}

void FaultInjector::disarm() {
  if (!armed_) return;
  armed_ = false;
  if (platform_.fault_hooks() == this) platform_.install_fault_hooks(nullptr);
}

std::uint64_t FaultInjector::injected_total() const {
  std::uint64_t total = 0;
  for (std::uint64_t n : injected_) total += n;
  return total;
}

void FaultInjector::note(FaultKind kind, int core) {
  ++injected_[static_cast<std::size_t>(kind)];
  SATIN_FLIGHT_RECORD(obs::FlightKind::kFault, platform_.engine().now(),
                      injected_total() - 1, core,
                      static_cast<std::uint64_t>(kind));
  SATIN_TRACE_INSTANT("fault", to_string(kind),
                      platform_.engine().now(), core, obs::kWorldNone);
  SATIN_METRIC_INC("fault.injected");
  SATIN_METRIC_INC(std::string("fault.") + to_string(kind));
  SATIN_LOG(kDebug) << "fault: inject " << to_string(kind)
                    << (core >= 0 ? " on core " + std::to_string(core) : "");
}

bool FaultInjector::triggers(const FaultSpec& spec, FaultKind kind,
                             sim::Time t, int core) {
  if (spec.kind != kind || !spec.contains(t) || !spec.targets(core)) {
    return false;
  }
  // The draw happens only for genuine opportunities, so adding a spec of
  // one kind never perturbs the schedule of another.
  return rng_.bernoulli(spec.probability);
}

hw::TimerFaultDecision FaultInjector::on_program_secure(
    hw::CoreId core, sim::Time compare_value) {
  // Windows apply to when the expiry would *fire*, so "timer faults during
  // [a, b]" affects exactly the wakes landing in [a, b].
  for (const FaultSpec& spec : plan_.faults) {
    if (triggers(spec, FaultKind::kTimerMisfire, compare_value, core)) {
      note(FaultKind::kTimerMisfire, core);
      return hw::TimerFaultDecision{.drop = true,
                                    .drift = sim::Duration::zero()};
    }
    if (triggers(spec, FaultKind::kTimerDrift, compare_value, core)) {
      note(FaultKind::kTimerDrift, core);
      return hw::TimerFaultDecision{.drop = false, .drift = spec.drift};
    }
  }
  return hw::TimerFaultDecision{};
}

bool FaultInjector::drop_secure_irq(hw::CoreId core, hw::IrqId) {
  const sim::Time now = platform_.engine().now();
  for (const FaultSpec& spec : plan_.faults) {
    if (triggers(spec, FaultKind::kIrqLost, now, core)) {
      note(FaultKind::kIrqLost, core);
      return true;
    }
  }
  return false;
}

bool FaultInjector::fail_secure_entry(hw::CoreId core) {
  const sim::Time now = platform_.engine().now();
  for (const FaultSpec& spec : plan_.faults) {
    if (triggers(spec, FaultKind::kSmcFail, now, core)) {
      note(FaultKind::kSmcFail, core);
      return true;
    }
  }
  return false;
}

void FaultInjector::corrupt_scan_view(sim::Time scan_start, std::size_t,
                                      std::vector<std::uint8_t>& view) {
  if (view.empty()) return;
  for (const FaultSpec& spec : plan_.faults) {
    // Bit flips hit whatever scan is in flight; core targeting does not
    // apply (the memory system has no notion of the scanning core).
    if (spec.kind != FaultKind::kBitFlip || !spec.contains(scan_start)) {
      continue;
    }
    if (!rng_.bernoulli(spec.probability)) continue;
    for (int i = 0; i < spec.flips; ++i) {
      const std::size_t pos = rng_.index(view.size());
      view[pos] ^= static_cast<std::uint8_t>(1u << rng_.index(8));
    }
    note(FaultKind::kBitFlip, kAnyCore);
    SATIN_METRIC_ADD("fault.bits_flipped", spec.flips);
  }
}

void FaultInjector::schedule_offline_window(const FaultSpec& spec) {
  // The whole window is one opportunity: decide it now, resolve an
  // unspecified core now, and schedule both edges.
  if (!rng_.bernoulli(spec.probability)) return;
  const int core = spec.core == kAnyCore
                       ? static_cast<int>(rng_.index(
                             static_cast<std::size_t>(platform_.num_cores())))
                       : spec.core;
  platform_.engine().schedule_at(spec.start, [this, core] {
    if (!armed_) return;
    note(FaultKind::kCoreOffline, core);
    platform_.core(core).set_online(false, platform_.engine().now());
  });
  platform_.engine().schedule_at(spec.end(), [this, core] {
    if (!armed_) return;
    platform_.core(core).set_online(true, platform_.engine().now());
  });
}

void FaultInjector::schedule_spurious_train(const FaultSpec& spec) {
  // One event per period tick across the window, each independently
  // deciding whether to fire and at which core.
  for (sim::Time t = spec.start; t < spec.end(); t += spec.period) {
    platform_.engine().schedule_at(t, [this, spec] {
      if (!armed_) return;
      if (!rng_.bernoulli(spec.probability)) return;
      const int core =
          spec.core == kAnyCore
              ? static_cast<int>(rng_.index(
                    static_cast<std::size_t>(platform_.num_cores())))
              : spec.core;
      note(FaultKind::kIrqSpurious, core);
      platform_.gic().raise(core, hw::IrqId::kSecurePhysTimer);
    });
  }
}

std::unique_ptr<FaultInjector> install_from_spec(hw::Platform& platform,
                                                 const std::string& spec) {
  FaultPlan plan = FaultPlan::parse(spec);
  if (plan.empty()) return nullptr;
  auto injector =
      std::make_unique<FaultInjector>(platform, std::move(plan));
  injector->arm();
  return injector;
}

}  // namespace satin::fault
