// Deterministic fault injector.
//
// Implements the hw::FaultHooks seams from a FaultPlan: every injection
// decision draws from a private RNG seeded by the plan (never from the
// platform's streams, so arming an injector does not perturb any existing
// experiment's randomness), and every decision happens at a deterministic
// point in the event order — either inside a seam consultation or inside
// an event the injector scheduled at arm() time (core-offline windows,
// spurious-interrupt trains). Same engine, same plan, same seed: same
// fault schedule, every run.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "fault/plan.h"
#include "hw/fault_hooks.h"
#include "hw/platform.h"
#include "sim/rng.h"

namespace satin::fault {

class FaultInjector final : public hw::FaultHooks {
 public:
  FaultInjector(hw::Platform& platform, FaultPlan plan);
  // Uninstalls the hooks if still installed.
  ~FaultInjector() override;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Installs the hooks on the platform and schedules the windowed faults
  // (core-offline toggles, spurious IRQ trains). Call once, before the
  // part of the run the plan's windows cover.
  void arm();
  bool armed() const { return armed_; }
  // Removes the hooks; already-scheduled window events become no-ops.
  void disarm();

  const FaultPlan& plan() const { return plan_; }

  std::uint64_t injected(FaultKind kind) const {
    return injected_[static_cast<std::size_t>(kind)];
  }
  std::uint64_t injected_total() const;

  // hw::FaultHooks
  hw::TimerFaultDecision on_program_secure(hw::CoreId core,
                                           sim::Time compare_value) override;
  bool drop_secure_irq(hw::CoreId core, hw::IrqId irq) override;
  bool fail_secure_entry(hw::CoreId core) override;
  void corrupt_scan_view(sim::Time scan_start, std::size_t offset,
                         std::vector<std::uint8_t>& view) override;

 private:
  void note(FaultKind kind, int core);
  // True when `spec` is of `kind`, covers time `t`, targets `core` and its
  // per-opportunity probability draw triggers. Consumes one RNG draw iff
  // kind/window/core all match (keeps unrelated seams from perturbing the
  // stream order... draws happen only for genuine opportunities).
  bool triggers(const FaultSpec& spec, FaultKind kind, sim::Time t, int core);
  void schedule_offline_window(const FaultSpec& spec);
  void schedule_spurious_train(const FaultSpec& spec);

  hw::Platform& platform_;
  FaultPlan plan_;
  sim::Rng rng_;
  bool armed_ = false;
  std::array<std::uint64_t, kFaultKindCount> injected_{};
};

// Convenience for examples/benches: parses `spec` and arms an injector on
// `platform`. Empty spec returns null (no hooks installed, zero cost).
// Throws std::invalid_argument on a malformed spec.
std::unique_ptr<FaultInjector> install_from_spec(hw::Platform& platform,
                                                 const std::string& spec);

}  // namespace satin::fault
