#include "fault/plan.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace satin::fault {

namespace {

[[noreturn]] void bad(const std::string& what, const std::string& token) {
  throw std::invalid_argument("FaultPlan: " + what + " in '" + token + "'");
}

FaultKind kind_from(const std::string& name, const std::string& item) {
  if (name == "timer-misfire") return FaultKind::kTimerMisfire;
  if (name == "timer-drift") return FaultKind::kTimerDrift;
  if (name == "irq-lost") return FaultKind::kIrqLost;
  if (name == "irq-spurious") return FaultKind::kIrqSpurious;
  if (name == "smc-fail") return FaultKind::kSmcFail;
  if (name == "bitflip") return FaultKind::kBitFlip;
  if (name == "core-off") return FaultKind::kCoreOffline;
  bad("unknown fault kind '" + name + "'", item);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

std::string strip(const std::string& text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

double parse_number(const std::string& text, const std::string& token) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    bad("expected a number, got '" + text + "'", token);
  }
  if (!std::isfinite(value)) bad("non-finite number '" + text + "'", token);
  return value;
}

long parse_long(const std::string& text, const std::string& token) {
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    bad("expected an integer, got '" + text + "'", token);
  }
  if (errno == ERANGE || value > 2147483647L || value < -2147483648L) {
    bad("integer out of range '" + text + "'", token);
  }
  return value;
}

std::uint64_t parse_seed(const std::string& text, const std::string& token) {
  if (text.empty()) bad("empty seed value", token);
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 0);
  if (end == text.c_str() || *end != '\0') {
    bad("expected a seed integer, got '" + text + "'", token);
  }
  if (errno == ERANGE) bad("seed out of range '" + text + "'", token);
  if (text[0] == '-') bad("negative seed '" + text + "'", token);
  return static_cast<std::uint64_t>(value);
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTimerMisfire:
      return "timer-misfire";
    case FaultKind::kTimerDrift:
      return "timer-drift";
    case FaultKind::kIrqLost:
      return "irq-lost";
    case FaultKind::kIrqSpurious:
      return "irq-spurious";
    case FaultKind::kSmcFail:
      return "smc-fail";
    case FaultKind::kBitFlip:
      return "bitflip";
    case FaultKind::kCoreOffline:
      return "core-off";
  }
  return "?";
}

sim::Duration parse_duration(const std::string& text) {
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str()) {
    throw std::invalid_argument("FaultPlan: expected a duration, got '" +
                                text + "'");
  }
  if (errno == ERANGE || !std::isfinite(value)) {
    throw std::invalid_argument("FaultPlan: duration out of range in '" +
                                text + "'");
  }
  const std::string unit = strip(end);
  double unit_ps = 0.0;
  if (unit.empty() || unit == "s") {
    unit_ps = 1e12;
  } else if (unit == "ms") {
    unit_ps = 1e9;
  } else if (unit == "us") {
    unit_ps = 1e6;
  } else if (unit == "ns") {
    unit_ps = 1e3;
  } else if (unit == "ps") {
    unit_ps = 1.0;
  } else {
    throw std::invalid_argument("FaultPlan: unknown time unit '" + unit +
                                "' in '" + text + "'");
  }
  // The picosecond tick count must fit an int64; llround on an
  // out-of-range double is undefined, so guard before converting.
  if (std::fabs(value) > 9.2e18 / unit_ps) {
    throw std::invalid_argument("FaultPlan: duration out of range in '" +
                                text + "'");
  }
  if (unit.empty() || unit == "s") return sim::Duration::from_sec_f(value);
  if (unit == "ms") return sim::Duration::from_ms_f(value);
  if (unit == "us") return sim::Duration::from_us_f(value);
  if (unit == "ns") return sim::Duration::from_ns_f(value);
  return sim::Duration::from_ps(static_cast<std::int64_t>(value));
}

std::string format_duration(sim::Duration d) {
  // Pick the largest unit that renders without a fraction; fall back to s.
  const std::int64_t ps = d.ps();
  char buf[64];
  if (ps % 1'000'000'000'000 == 0) {
    std::snprintf(buf, sizeof(buf), "%llds",
                  static_cast<long long>(ps / 1'000'000'000'000));
  } else if (ps % 1'000'000'000 == 0) {
    std::snprintf(buf, sizeof(buf), "%lldms",
                  static_cast<long long>(ps / 1'000'000'000));
  } else if (ps % 1'000'000 == 0) {
    std::snprintf(buf, sizeof(buf), "%lldus",
                  static_cast<long long>(ps / 1'000'000));
  } else if (ps % 1'000 == 0) {
    std::snprintf(buf, sizeof(buf), "%lldns",
                  static_cast<long long>(ps / 1'000));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldps", static_cast<long long>(ps));
  }
  return buf;
}

std::string FaultSpec::to_string() const {
  std::ostringstream out;
  out << fault::to_string(kind) << "@"
      << format_duration(start - sim::Time::zero()) << "+"
      << format_duration(duration);
  if (core != kAnyCore) out << ":core=" << core;
  if (probability != 1.0) out << ":p=" << probability;
  if (kind == FaultKind::kTimerDrift) {
    out << ":drift=" << format_duration(drift);
  }
  if (kind == FaultKind::kIrqSpurious) {
    out << ":period=" << format_duration(period);
  }
  if (kind == FaultKind::kBitFlip && flips != 1) out << ":flips=" << flips;
  return out.str();
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  if (strip(spec).empty()) return plan;
  for (const std::string& raw : split(spec, ',')) {
    const std::string item = strip(raw);
    if (item.empty()) continue;
    if (item.rfind("seed=", 0) == 0) {
      plan.seed = parse_seed(item.substr(5), item);
      continue;
    }
    const std::vector<std::string> parts = split(item, ':');
    const std::string& head = parts.front();
    const std::size_t at = head.find('@');
    if (at == std::string::npos) bad("missing '@<start>+<duration>'", item);
    const std::size_t plus = head.find('+', at);
    if (plus == std::string::npos) bad("missing '+<duration>'", item);

    FaultSpec fault;
    fault.kind = kind_from(head.substr(0, at), item);
    fault.start =
        sim::Time::zero() + parse_duration(head.substr(at + 1, plus - at - 1));
    if (fault.start < sim::Time::zero()) bad("negative window start", item);
    fault.duration = parse_duration(head.substr(plus + 1));
    if (fault.duration <= sim::Duration::zero()) {
      bad("non-positive window duration", item);
    }
    for (std::size_t i = 1; i < parts.size(); ++i) {
      const std::string param = strip(parts[i]);
      const std::size_t eq = param.find('=');
      if (eq == std::string::npos) bad("malformed parameter '" + param + "'",
                                       item);
      const std::string key = param.substr(0, eq);
      const std::string value = param.substr(eq + 1);
      if (key == "core") {
        fault.core = static_cast<int>(parse_long(value, item));
      } else if (key == "p") {
        fault.probability = parse_number(value, item);
        if (fault.probability < 0.0 || fault.probability > 1.0) {
          bad("probability outside [0, 1]", item);
        }
      } else if (key == "drift") {
        fault.drift = parse_duration(value);
      } else if (key == "period") {
        fault.period = parse_duration(value);
        if (fault.period <= sim::Duration::zero()) {
          bad("non-positive period", item);
        }
      } else if (key == "flips") {
        fault.flips = static_cast<int>(parse_long(value, item));
        if (fault.flips <= 0) bad("non-positive flip count", item);
      } else {
        bad("unknown parameter '" + key + "'", item);
      }
    }
    plan.faults.push_back(fault);
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::ostringstream out;
  out << "seed=" << seed;
  for (const FaultSpec& fault : faults) out << "," << fault.to_string();
  return out.str();
}

}  // namespace satin::fault
