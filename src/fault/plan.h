// Typed, deterministic fault plans.
//
// A FaultPlan is a list of fault specs — each a fault kind active over a
// simulated-time window with optional core targeting, trigger probability
// and kind-specific parameters — plus a seed for the injector's private
// RNG. The same plan and seed always yield the same fault schedule and
// (given the same workload) the same recovery outcomes: faults are part
// of the experiment, never noise.
//
// Plans parse from a compact one-line spec (the `--faults=` flag):
//
//   spec  := item (',' item)*
//   item  := 'seed=' <uint>
//          | <kind> '@' <time> '+' <duration> (':' <key> '=' <value>)*
//   kind  := timer-misfire | timer-drift | irq-lost | irq-spurious
//          | smc-fail | bitflip | core-off
//   keys  := core=<id> | p=<probability> | drift=<duration>
//          | period=<duration> | flips=<count>
//
// Times and durations take an optional unit suffix (ps, ns, us, ms, s);
// a bare number means seconds. Example:
//
//   --faults=seed=7,timer-misfire@10s+30s:p=0.5,bitflip@5s+60s:flips=2
//   --faults=core-off@20s+15s:core=1,irq-spurious@3s+4s:period=250ms
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace satin::fault {

enum class FaultKind {
  kTimerMisfire,  // programmed secure expiry silently dropped
  kTimerDrift,    // secure expiry delayed by `drift`
  kIrqLost,       // secure-group IRQ swallowed between GIC and core
  kIrqSpurious,   // extra secure timer IRQs raised every `period`
  kSmcFail,       // world switch into the secure world aborts
  kBitFlip,       // transient bit-flips in a scan's observed view
  kCoreOffline,   // core powered off for the window
};

inline constexpr int kFaultKindCount = 7;
inline constexpr int kAnyCore = -1;

const char* to_string(FaultKind kind);

struct FaultSpec {
  FaultKind kind = FaultKind::kTimerMisfire;
  sim::Time start;                         // window start
  sim::Duration duration;                  // window length
  int core = kAnyCore;                     // target core; kAnyCore = any
  double probability = 1.0;                // per-opportunity trigger chance
  sim::Duration drift;                     // kTimerDrift: added delay
  sim::Duration period = sim::Duration::from_ms(100);  // kIrqSpurious cadence
  int flips = 1;                           // kBitFlip: bits per affected scan

  sim::Time end() const { return start + duration; }
  bool contains(sim::Time t) const { return t >= start && t < end(); }
  bool targets(int core_id) const { return core == kAnyCore || core == core_id; }

  std::string to_string() const;
};

struct FaultPlan {
  std::uint64_t seed = 0x5EEDFA17ull;
  std::vector<FaultSpec> faults;

  bool empty() const { return faults.empty(); }

  // Parses the spec grammar above; throws std::invalid_argument with a
  // message naming the offending token on any malformed input. An empty
  // or all-whitespace spec yields an empty plan.
  static FaultPlan parse(const std::string& spec);

  // Canonical spec string; parse(to_string()) reproduces the plan.
  std::string to_string() const;
};

// Parses "<float><unit>?" with unit in {ps,ns,us,ms,s}; bare = seconds.
sim::Duration parse_duration(const std::string& text);
std::string format_duration(sim::Duration d);

}  // namespace satin::fault
