// Closed-form sampler for probing-threshold windows (Table II, Fig. 4).
//
// A Table II measurement runs the KProber for a probing period P and
// records the largest time difference the Time Comparer saw; the paper
// repeats that 50 times per P. Simulating every 2e-4 s prober round of
// 50 x {8..300} s windows event-by-event is ~10^9 events for no extra
// information: within a window the maximum is the plateau set by that
// run's thread-phase geometry unless a rare cross-core spike lands in the
// window. This sampler draws the window maximum directly from the same
// CrossCoreDelayModel the event-driven buffer uses:
//
//   threshold(P) = max( base_draw,  spikes ),  #spikes ~ Poisson(rate * P)
//
// which reproduces Table II's growth of the average with P ("a longer
// probing period increases the occurrence of those rare cases") and
// Fig. 4's slightly-rising whiskers with few large outliers. Consistency
// with the event-driven prober is covered by tests/attack/threshold
// cross-validation.
#pragma once

#include "hw/timing_params.h"
#include "sim/rng.h"

namespace satin::attack {

class ThresholdSampler {
 public:
  // The model is captured by value: samplers outlive the configuration
  // expressions they are built from.
  ThresholdSampler(hw::CrossCoreDelayModel model, sim::Rng rng,
                   int probed_cores)
      : model_(model), rng_(std::move(rng)), probed_cores_(probed_cores) {}

  // One Table II measurement: the Comparer's max observed difference over
  // a probing window of `window_s` seconds.
  double sample_window_max_seconds(double window_s);

 private:
  hw::CrossCoreDelayModel model_;
  sim::Rng rng_;
  int probed_cores_;
};

}  // namespace satin::attack
