// Prediction-based evasion (§III-B2, §V-C motivation).
//
// "If it can predict the t_start, it can easily hide before the
// introspection starts." Against a strictly periodic checker the attacker
// needs no side channel at all: it memorizes the period and phase, hides
// its traces shortly before every predicted wake and re-arms after. The
// random deviation td is SATIN's answer — this attacker is the ablation
// that shows why.
#pragma once

#include <cstdint>

#include "attack/rootkit.h"

namespace satin::attack {

struct PredictionConfig {
  // The schedule the attacker believes in: wakes at phase + k * period.
  double period_s = 1.0;
  double phase_s = 0.0;
  // Hide this long before each predicted wake; re-arm this long after.
  double hide_lead_s = 0.02;
  double rearm_lag_s = 0.2;
  // Core type executing the cleanup.
  hw::CoreType cleanup_core = hw::CoreType::kBigA57;
  // Number of future rounds to schedule at deploy.
  int horizon_rounds = 1000;
};

class PeriodicPredictionAttacker {
 public:
  PeriodicPredictionAttacker(os::RichOs& os, PredictionConfig config);

  // Plants the GETTID rootkit and schedules the hide/re-arm cadence.
  void deploy();

  Rootkit& rootkit() { return rootkit_; }
  std::uint64_t hides() const { return hides_; }
  std::uint64_t rearms() const { return rearms_; }

 private:
  os::RichOs& os_;
  PredictionConfig config_;
  Rootkit rootkit_;
  bool deployed_ = false;
  std::uint64_t hides_ = 0;
  std::uint64_t rearms_ = 0;
};

}  // namespace satin::attack
