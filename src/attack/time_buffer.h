// The shared time buffer the probers communicate through.
//
// §III-B1: "the Time Reporter obtains the latest time from a shared timer
// among all CPU cores and then reports the time into a buffer that is
// readable to all threads." Cross-core visibility is imperfect — §IV-B2
// observed rare abnormal read delays up to 1.3e-3 s — so an
// observed_staleness() read adds a calibrated visibility delay: a small
// base draw, occasionally a heavy-tailed spike (Poisson arrivals).
//
// This is the hottest stochastic consumer in the tree (~672M base draws
// per bench_satin_detection run), so the delay draws ride the batched
// pipeline (sim/rng.h): the base truncated normal and the spike-gate
// canonicals come from dedicated forked substreams, precomputed in blocks
// when DrawMode::kBatched. The rare spike magnitude stays a per-draw
// scalar on its own substream in both modes. Mode changes values on no
// read — streams are bit-identical across modes by contract.
#pragma once

#include <vector>

#include "hw/timing_params.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace satin::attack {

class SharedTimeBuffer {
 public:
  // `reads_per_second` is the aggregate observed_staleness() call rate of
  // the deployed prober (used to convert the model's spike rate per second
  // into a per-read probability). The model is captured by value.
  SharedTimeBuffer(int num_slots, hw::CrossCoreDelayModel model,
                   sim::Rng rng, double reads_per_second, int probed_cores,
                   sim::DrawMode mode = sim::DrawMode::kScalar);

  int num_slots() const { return static_cast<int>(last_report_.size()); }

  // Time Reporter: slot's owner writes the current shared-counter value.
  void report(int slot, sim::Time now) {
    last_report_[static_cast<std::size_t>(slot)] = now;
    reported_[static_cast<std::size_t>(slot)] = true;
    ++reports_;
  }

  bool ever_reported(int slot) const {
    return reported_[static_cast<std::size_t>(slot)];
  }
  sim::Time last_report(int slot) const {
    return last_report_[static_cast<std::size_t>(slot)];
  }

  // Time Comparer: how old slot's report *appears* from another core,
  // including the sampled visibility delay. A frozen reporter's staleness
  // grows without bound — that is the detection signal.
  sim::Duration observed_staleness(int slot, sim::Time now);

  std::uint64_t reports() const { return reports_; }
  std::uint64_t spiked_reads() const { return spiked_reads_; }

 private:
  hw::CrossCoreDelayModel model_;
  double spike_prob_per_read_;
  int probed_cores_;
  // Routine visibility delay, pre-scaled by magnitude_scale(probed_cores).
  sim::TruncatedNormalStream base_stream_;
  // One canonical per read gates the spike (canonical < p, i.e.
  // Rng::bernoulli inlined so the batched path can precompute it).
  sim::CanonicalStream spike_gate_;
  // Spike magnitudes are ~5e-6 per read: never worth batching.
  sim::Rng spike_rng_;
  std::vector<sim::Time> last_report_;
  std::vector<bool> reported_;
  std::uint64_t reports_ = 0;
  std::uint64_t spiked_reads_ = 0;
};

}  // namespace satin::attack
