#include "attack/threshold_sampler.h"

#include <algorithm>
#include <cmath>
#include <random>

namespace satin::attack {

double ThresholdSampler::sample_window_max_seconds(double window_s) {
  double max_s = model_.sample_base_seconds(rng_, probed_cores_);
  // Thread wake phases drift over a window, lifting the plateau slowly
  // with the probing period (Table II's min column grows with P).
  if (window_s > 8.0) {
    max_s += 3.5e-5 * std::log(window_s / 8.0) *
             model_.magnitude_scale(probed_cores_);
  }
  std::poisson_distribution<int> arrivals(model_.spike_rate_per_s * window_s);
  const int spikes = arrivals(rng_.engine());
  for (int i = 0; i < spikes; ++i) {
    max_s = std::max(max_s, model_.sample_spike_seconds(rng_, probed_cores_));
  }
  return max_s;
}

}  // namespace satin::attack
