#include "attack/time_buffer.h"

#include <algorithm>
#include <stdexcept>

namespace satin::attack {

SharedTimeBuffer::SharedTimeBuffer(int num_slots,
                                   hw::CrossCoreDelayModel model,
                                   sim::Rng rng, double reads_per_second,
                                   int probed_cores)
    : model_(model),
      rng_(std::move(rng)),
      probed_cores_(probed_cores),
      last_report_(static_cast<std::size_t>(num_slots)),
      reported_(static_cast<std::size_t>(num_slots), false) {
  if (num_slots <= 0) throw std::invalid_argument("SharedTimeBuffer: slots");
  if (reads_per_second <= 0.0) {
    throw std::invalid_argument("SharedTimeBuffer: read rate");
  }
  spike_prob_per_read_ =
      std::min(1.0, model.spike_rate_per_s / reads_per_second);
}

void SharedTimeBuffer::report(int slot, sim::Time now) {
  last_report_.at(static_cast<std::size_t>(slot)) = now;
  reported_.at(static_cast<std::size_t>(slot)) = true;
  ++reports_;
}

bool SharedTimeBuffer::ever_reported(int slot) const {
  return reported_.at(static_cast<std::size_t>(slot));
}

sim::Time SharedTimeBuffer::last_report(int slot) const {
  return last_report_.at(static_cast<std::size_t>(slot));
}

sim::Duration SharedTimeBuffer::observed_staleness(int slot, sim::Time now) {
  const sim::Time reported = last_report_.at(static_cast<std::size_t>(slot));
  sim::Duration age = now >= reported ? now - reported : sim::Duration::zero();
  // Routine visibility delay: small, always present. Use a fraction of the
  // plateau model (the plateau also includes wake-phase geometry, which the
  // event-driven prober exhibits organically through its real wake times).
  double delay_s = 0.35 * model_.sample_base_seconds(rng_, probed_cores_);
  if (rng_.bernoulli(spike_prob_per_read_)) {
    ++spiked_reads_;
    delay_s += std::min(model_.sample_spike_seconds(rng_, probed_cores_),
                        model_.event_spike_cap_s);
  }
  return age + sim::Duration::from_sec_f(delay_s);
}

}  // namespace satin::attack
