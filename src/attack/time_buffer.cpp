#include "attack/time_buffer.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace satin::attack {

namespace {

sim::TruncatedNormalStream make_base_stream(
    const hw::CrossCoreDelayModel& model, sim::Rng rng, int probed_cores,
    sim::DrawMode mode) {
  const double s = model.magnitude_scale(probed_cores);
  return sim::TruncatedNormalStream(std::move(rng), model.base_mean_s * s,
                                    model.base_stddev_s * s,
                                    model.base_min_s * s, model.base_max_s * s,
                                    mode);
}

}  // namespace

SharedTimeBuffer::SharedTimeBuffer(int num_slots,
                                   hw::CrossCoreDelayModel model,
                                   sim::Rng rng, double reads_per_second,
                                   int probed_cores, sim::DrawMode mode)
    : model_(model),
      spike_prob_per_read_(
          reads_per_second > 0.0
              ? std::min(1.0, model.spike_rate_per_s / reads_per_second)
              : 0.0),
      probed_cores_(probed_cores),
      // Substream forks happen in declaration order, so the split is
      // deterministic — and identical across DrawMode (mode only selects
      // how each stream is realized, never which draws exist).
      base_stream_(make_base_stream(model, rng.fork("base"), probed_cores,
                                    mode)),
      spike_gate_(rng.fork("bernoulli"), mode),
      spike_rng_(rng.fork("spike")),
      last_report_(static_cast<std::size_t>(num_slots)),
      reported_(static_cast<std::size_t>(num_slots), false) {
  if (num_slots <= 0) throw std::invalid_argument("SharedTimeBuffer: slots");
  if (reads_per_second <= 0.0) {
    throw std::invalid_argument("SharedTimeBuffer: read rate");
  }
}

sim::Duration SharedTimeBuffer::observed_staleness(int slot, sim::Time now) {
  const sim::Time reported = last_report_[static_cast<std::size_t>(slot)];
  sim::Duration age = now >= reported ? now - reported : sim::Duration::zero();
  // Routine visibility delay: small, always present. Use a fraction of the
  // plateau model (the plateau also includes wake-phase geometry, which the
  // event-driven prober exhibits organically through its real wake times).
  double delay_s = 0.35 * base_stream_.next();
  if (spike_gate_.next() < spike_prob_per_read_) {
    ++spiked_reads_;
    delay_s += std::min(model_.sample_spike_seconds(spike_rng_, probed_cores_),
                        model_.event_spike_cap_s);
  }
  return age + sim::Duration::from_sec_f(delay_s);
}

}  // namespace satin::attack
