#include "attack/threshold_learner.h"

#include <algorithm>
#include <stdexcept>

namespace satin::attack {

RampFilter::RampFilter(int num_cores, double stall_amplitude_s,
                       double dip_tolerance_s)
    : stall_amplitude_s_(stall_amplitude_s),
      dip_tolerance_s_(dip_tolerance_s),
      cores_(static_cast<std::size_t>(num_cores)) {
  if (num_cores <= 0) throw std::invalid_argument("RampFilter: cores");
  if (stall_amplitude_s <= 0.0) {
    throw std::invalid_argument("RampFilter: amplitude");
  }
}

void RampFilter::close_run(PerCore& pc) {
  if (pc.run.empty()) return;
  const double amplitude = pc.run.back() - pc.run.front();
  if (amplitude >= stall_amplitude_s_) {
    // A millisecond-scale monotone climb: a real secure-world stall. Its
    // benign-looking head still bounds benign staleness; the climb does
    // not.
    max_benign_s_ = std::max(max_benign_s_, pc.run.front());
    excluded_ += pc.run.size() - 1;
  } else {
    for (double s : pc.run) max_benign_s_ = std::max(max_benign_s_, s);
  }
  pc.run.clear();
}

void RampFilter::add(hw::CoreId core, double staleness_s) {
  ++samples_;
  max_observed_s_ = std::max(max_observed_s_, staleness_s);
  PerCore& pc = cores_.at(static_cast<std::size_t>(core));
  const bool continues =
      pc.last_s >= 0.0 && staleness_s >= pc.last_s - dip_tolerance_s_;
  if (!continues) close_run(pc);
  pc.run.push_back(staleness_s);
  pc.last_s = staleness_s;
}

void RampFilter::finish() {
  for (PerCore& pc : cores_) {
    close_run(pc);
    pc.last_s = -1.0;
  }
}

LearnedThreshold ThresholdLearner::learn(sim::Duration duration,
                                         double margin) {
  if (duration <= sim::Duration::zero()) {
    throw std::invalid_argument("ThresholdLearner: non-positive duration");
  }
  KProberConfig config = base_;
  config.threshold_s = 1e9;  // latch-free: observe, never classify
  auto filter = std::make_shared<RampFilter>(os_.platform().num_cores());
  config.staleness_observer = [filter](hw::CoreId core, double s) {
    filter->add(core, s);
  };
  auto prober = std::make_unique<KProber>(os_, config);
  prober->deploy();
  os_.platform().engine().run_for(duration);
  prober->retract();
  retired_probers_.push_back(std::move(prober));
  filter->finish();

  LearnedThreshold result;
  result.samples = filter->samples();
  result.excluded = filter->excluded();
  result.max_observed_s = filter->max_observed_s();
  result.max_benign_s = filter->max_benign_s();
  result.recommended_s = result.max_benign_s * margin;
  return result;
}

}  // namespace satin::attack
