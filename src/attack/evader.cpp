#include "attack/evader.h"

#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/log.h"

namespace satin::attack {

TzEvader::TzEvader(os::RichOs& os, EvaderConfig config)
    : os_(os),
      config_(std::move(config)),
      rootkit_(os, os.platform().rng().fork("tz-evader-rootkit")),
      prober_(os, config_.prober) {
  rootkit_.add_gettid_trace();
  prober_.set_on_detect([this](hw::CoreId core, sim::Time when,
                               sim::Duration staleness) {
    on_detect(core, when, staleness);
  });
  prober_.set_on_clear(
      [this](hw::CoreId core, sim::Time when) { on_clear(core, when); });
}

void TzEvader::deploy() {
  if (deployed_) throw std::logic_error("TzEvader::deploy: already deployed");
  deployed_ = true;
  prober_.deploy();
  if (config_.auto_install) rootkit_.install();
}

hw::CoreType TzEvader::cleanup_core_type(hw::CoreId flagged_core) const {
  if (config_.cleanup_core) {
    return os_.platform().core(*config_.cleanup_core).type();
  }
  // Conservative default: the cleanup thread lands on the slowest core
  // still in the normal world (paper's worst case, §IV-C).
  hw::CoreType slowest = hw::CoreType::kBigA57;
  for (int c = 0; c < os_.platform().num_cores(); ++c) {
    if (c == flagged_core) continue;
    if (os_.platform().core(c).type() == hw::CoreType::kLittleA53) {
      slowest = hw::CoreType::kLittleA53;
      break;
    }
  }
  return slowest;
}

void TzEvader::on_detect(hw::CoreId core, sim::Time when,
                         sim::Duration staleness) {
  if (observer_) observer_(core, when, staleness);
  if (!rootkit_.installed() || rootkit_.recovering()) return;
  ++evasions_;
  SATIN_TRACE_INSTANT_ARG("attack", "evasion", when, core, obs::kWorldNormal,
                          "staleness_s", staleness.sec());
  SATIN_METRIC_INC("attack.evasions");
  SATIN_LOG(kInfo) << "tz-evader: hiding traces (core " << core
                   << " flagged at " << when.to_string() << ")";
  // The recovery may outlive a short introspection round; re-arm once it
  // completes if the coast has cleared meanwhile.
  rootkit_.begin_recovery(cleanup_core_type(core), [this] { try_rearm(); });
}

void TzEvader::on_clear(hw::CoreId, sim::Time) { try_rearm(); }

void TzEvader::try_rearm() {
  if (prober_.any_flagged()) return;  // a core still looks secure-held
  if (rootkit_.installed()) return;   // never hid / already re-armed
  if (rootkit_.recovering()) return;  // cleanup still running
  // Coast looks clear: re-arm after a short delay, re-checking at fire
  // time in case a new introspection round started meanwhile.
  os_.platform().engine().schedule_after(
      sim::Duration::from_sec_f(config_.rearm_delay_s), [this] {
        if (prober_.any_flagged() || rootkit_.installed() ||
            rootkit_.recovering()) {
          return;
        }
        rootkit_.install();
        ++rearms_;
        SATIN_TRACE_INSTANT("attack", "rearm", os_.platform().engine().now(),
                            obs::kGlobalTrack, obs::kWorldNormal);
        SATIN_METRIC_INC("attack.rearms");
        SATIN_LOG(kInfo) << "tz-evader: re-armed at "
                         << os_.platform().engine().now().to_string();
      });
}

}  // namespace satin::attack
