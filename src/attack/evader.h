// TZ-Evader: the multi-core evasion attack (§III-C).
//
// Couples a persistent rootkit with a kernel-level prober. While no core
// looks secure-world-held the attack stays armed; the instant the prober
// flags a core, the evader starts removing its traces from a core that is
// still in the normal world; once every core reports again (introspection
// over) it waits a beat and re-arms. Whether an introspection round
// catches it is decided byte-by-byte by the memory race, not by a flag.
#pragma once

#include <cstdint>
#include <optional>

#include "attack/prober.h"
#include "attack/rootkit.h"
#include "os/rich_os.h"

namespace satin::attack {

struct EvaderConfig {
  KProberConfig prober;
  // Pause after the coast clears before re-installing the traces.
  double rearm_delay_s = 0.02;
  // Core whose speed governs trace recovery; unset = slowest available
  // normal-world core at detection time (conservative, like the paper's
  // worst case of an A53 doing the cleanup).
  std::optional<hw::CoreId> cleanup_core;
  // Install the rootkit immediately at deploy.
  bool auto_install = true;
};

class TzEvader {
 public:
  TzEvader(os::RichOs& os, EvaderConfig config);

  // Plants the rootkit (GETTID hijack) and deploys the prober.
  void deploy();

  Rootkit& rootkit() { return rootkit_; }
  KProber& prober() { return prober_; }

  // Attack currently exposing traces in kernel memory.
  bool armed() const { return rootkit_.installed(); }

  // Optional observer invoked on every prober detection, in addition to
  // the evader's own reaction (experiment harnesses correlate these with
  // ground-truth secure-world activity).
  void set_detect_observer(KProber::DetectFn fn) {
    observer_ = std::move(fn);
  }

  std::uint64_t evasions_started() const { return evasions_; }
  std::uint64_t rearms() const { return rearms_; }
  // Introspection entries the prober noticed (for the 0-FN check).
  std::uint64_t detections_observed() const {
    return prober_.detection_count();
  }

 private:
  void on_detect(hw::CoreId core, sim::Time when, sim::Duration staleness);
  void on_clear(hw::CoreId core, sim::Time when);
  void try_rearm();
  hw::CoreType cleanup_core_type(hw::CoreId flagged_core) const;

  os::RichOs& os_;
  EvaderConfig config_;
  Rootkit rootkit_;
  KProber prober_;
  KProber::DetectFn observer_;
  bool deployed_ = false;
  std::uint64_t evasions_ = 0;
  std::uint64_t rearms_ = 0;
};

}  // namespace satin::attack
