// On-victim threshold learning (§VII-B).
//
// "If the attacker is not able to evaluate the threshold on a fully
// controlled device, then Tns_threshold needs to be learned from the
// victim directly. The attacker needs to run multi-threads Time Reporter
// and Time Comparer for a relatively long time ... For each time the
// secure application is running, the attacker can observe the time
// difference among all cores."
//
// The learner runs a latch-free prober and watches every Comparer
// staleness sample. Samples taken while a core is genuinely secure-held
// are not a separate cluster — they RAMP: the frozen core's staleness
// grows monotonically, probe after probe, until the world switch back.
// Benign staleness also saw-tooths (it ages by the inter-probe gap until
// the next report lands), but a benign ramp's amplitude is bounded by one
// sleep period plus the cross-core visibility tail, far below the
// millisecond scale of any real introspection stall. The learner
// therefore excludes monotone runs whose amplitude exceeds the shortest
// plausible introspection stall and recommends the maximum of what
// remains, plus a safety margin — a discrimination the attacker can make
// with zero secure-world ground truth.
#pragma once

#include <memory>
#include <vector>

#include "attack/prober.h"

namespace satin::attack {

struct LearnedThreshold {
  double max_observed_s = 0.0;  // absolute max, including secure stalls
  double max_benign_s = 0.0;    // after excluding stall ramps
  double recommended_s = 0.0;   // max_benign_s * margin
  std::size_t samples = 0;
  std::size_t excluded = 0;     // samples attributed to secure stalls
};

// Online per-core monotone-run filter. Consecutive samples on one core
// form a run while they do not drop by more than `dip_tolerance_s` — the
// largest excursion a single visibility spike can retrace, so a stall's
// climb survives its own read jitter as one run. When a run's amplitude
// (last - first) reaches `stall_amplitude_s`, the run is a stall ramp:
// all samples past its benign-looking head are excluded.
class RampFilter {
 public:
  RampFilter(int num_cores, double stall_amplitude_s = 2.0e-3,
             double dip_tolerance_s = 1.6e-3);

  void add(hw::CoreId core, double staleness_s);
  // Flush open runs into the statistics.
  void finish();

  double max_benign_s() const { return max_benign_s_; }
  double max_observed_s() const { return max_observed_s_; }
  std::size_t samples() const { return samples_; }
  std::size_t excluded() const { return excluded_; }

 private:
  struct PerCore {
    double last_s = -1.0;
    std::vector<double> run;  // samples of the current monotone run
  };
  void close_run(PerCore& pc);

  double stall_amplitude_s_;
  double dip_tolerance_s_;
  std::vector<PerCore> cores_;
  double max_benign_s_ = 0.0;
  double max_observed_s_ = 0.0;
  std::size_t samples_ = 0;
  std::size_t excluded_ = 0;
};

class ThresholdLearner {
 public:
  // The learner must outlive no longer than the RichOs: retired probers'
  // parked threads reference them.
  explicit ThresholdLearner(os::RichOs& os, KProberConfig base = {})
      : os_(os), base_(std::move(base)) {}

  // Observes `duration` of probing, filters stall ramps, and returns the
  // learned benign ceiling with the attacker's safety `margin` applied.
  LearnedThreshold learn(sim::Duration duration, double margin = 1.05);

 private:
  os::RichOs& os_;
  KProberConfig base_;
  // Probers stay alive after retract(): their parked threads (owned by
  // the rich OS) keep a reference to them.
  std::vector<std::unique_ptr<KProber>> retired_probers_;
};

}  // namespace satin::attack
