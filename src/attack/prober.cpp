#include "attack/prober.h"

#include <algorithm>
#include <stdexcept>

#include "obs/flight/recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/log.h"

namespace satin::attack {

const char* to_string(ProbeMode mode) {
  switch (mode) {
    case ProbeMode::kUserLevel:
      return "user-level";
    case ProbeMode::kRtScheduler:
      return "KProber-II(rt)";
    case ProbeMode::kTimerInterrupt:
      return "KProber-I(timer)";
  }
  return "?";
}

namespace {

// One Reporter(+Comparer) thread pinned to a probed core; the observer
// variant compares without reporting.
class ProberThread final : public os::Thread {
 public:
  ProberThread(KProber& owner, hw::CoreId core, bool reports)
      : os::Thread(std::string("kprober/") + std::to_string(core)),
        owner_(owner),
        core_(core),
        reports_(reports) {}

  os::Action next_action(os::OsContext&) override {
    if (!owner_.deployed()) {
      // Retracted: park quietly (wake rarely to re-check).
      return os::SleepForAction{sim::Duration::from_ms(100)};
    }
    if (work_phase_) {
      work_phase_ = false;
      return os::ComputeAction{
          sim::Duration::from_sec_f(owner_.config().round_cost_s),
          [this](os::OsContext& inner) {
            owner_.probe_round(core_, inner.now, reports_);
          }};
    }
    work_phase_ = true;
    return os::SleepForAction{
        sim::Duration::from_sec_f(owner_.config().sleep_s)};
  }

 private:
  KProber& owner_;
  hw::CoreId core_;
  bool reports_;
  bool work_phase_ = true;
};

}  // namespace

KProber::KProber(os::RichOs& os, KProberConfig config)
    : os_(os), config_(std::move(config)) {
  probed_ = config_.probed_cores;
  if (probed_.empty()) {
    for (int c = 0; c < os_.platform().num_cores(); ++c) probed_.push_back(c);
  }
  flagged_.assign(static_cast<std::size_t>(os_.platform().num_cores()), false);
  // Aggregate comparer read rate, for the spike-rate conversion.
  const double rounds_per_s =
      config_.mode == ProbeMode::kTimerInterrupt
          ? static_cast<double>(os_.config().hz)
          : 1.0 / config_.sleep_s;
  const double comparers = static_cast<double>(probed_.size()) +
                           (config_.observer_core ? 1.0 : 0.0);
  const double reads_per_s = std::max(
      1.0, rounds_per_s * comparers *
               static_cast<double>(std::max<std::size_t>(probed_.size() - 1, 1)));
  buffer_ = std::make_unique<SharedTimeBuffer>(
      os_.platform().num_cores(), os_.platform().timing().cross_core,
      os_.platform().rng().fork("kprober-buffer"), reads_per_s,
      static_cast<int>(probed_.size()), os_.platform().config().draw_mode);
}

int KProber::slot_of(hw::CoreId core) const { return core; }

void KProber::deploy() {
  if (deployed_) throw std::logic_error("KProber::deploy: already deployed");
  deployed_ = true;

  if (config_.mode == ProbeMode::kTimerInterrupt) {
    // Redirect the IRQ exception vector: install the hook and plant the
    // 8-byte trace in kernel text (the part introspection can see).
    const std::size_t off = os_.kernel_image().irq_vector_offset();
    hw::Memory& mem = os_.platform().memory();
    saved_vector_bytes_.assign(8, 0);
    for (int b = 0; b < 8; ++b) {
      saved_vector_bytes_[static_cast<std::size_t>(b)] =
          mem.read(off + static_cast<std::size_t>(b));
    }
    std::vector<std::uint8_t> hijacked(8);
    for (int b = 0; b < 8; ++b) {
      hijacked[static_cast<std::size_t>(b)] =
          saved_vector_bytes_[static_cast<std::size_t>(b)] ^ 0xA5;
    }
    mem.write(os_.platform().engine().now(), off, hijacked);
    tick_hook_id_ = os_.add_tick_hook([this](hw::CoreId core, sim::Time now) {
      const bool probed_core =
          std::find(probed_.begin(), probed_.end(), core) != probed_.end();
      probe_round(core, now, probed_core);
    });
    return;
  }

  const bool rt = config_.mode == ProbeMode::kRtScheduler;
  auto spawn = [&](hw::CoreId core, bool reports) {
    auto thread = std::make_unique<ProberThread>(*this, core, reports);
    thread->pin_to_core(core);
    if (rt) {
      // sched_get_priority_max(SCHED_FIFO) for all KProber-II threads
      // (§IV-A1).
      thread->set_policy(os::SchedPolicy::kRtFifo, 99);
    }
    os_.add_thread(std::move(thread));
  };
  for (hw::CoreId core : probed_) spawn(core, /*reports=*/true);
  if (config_.observer_core) spawn(*config_.observer_core, /*reports=*/false);
}

void KProber::retract() {
  if (!deployed_) return;
  deployed_ = false;
  if (config_.mode == ProbeMode::kTimerInterrupt) {
    os_.remove_tick_hook(tick_hook_id_);
    tick_hook_id_ = 0;
    os_.platform().memory().write(os_.platform().engine().now(),
                                  os_.kernel_image().irq_vector_offset(),
                                  saved_vector_bytes_);
  }
}

bool KProber::core_flagged(hw::CoreId core) const {
  return flagged_.at(static_cast<std::size_t>(core));
}

bool KProber::any_flagged() const {
  return std::any_of(flagged_.begin(), flagged_.end(),
                     [](bool f) { return f; });
}

void KProber::probe_round(hw::CoreId self, sim::Time now, bool report) {
  if (!deployed_) return;
  ++rounds_;
  SATIN_METRIC_INC("attack.probe_rounds");
  if (report) buffer_->report(slot_of(self), now);
  for (hw::CoreId core : probed_) {
    if (core == self) continue;
    const int slot = slot_of(core);
    if (!buffer_->ever_reported(slot)) continue;
    const sim::Duration staleness = buffer_->observed_staleness(slot, now);
    SATIN_METRIC_OBSERVE("attack.staleness_s", staleness.sec());
    if (config_.staleness_observer) {
      config_.staleness_observer(core, staleness.sec());
    }
    auto flagged = flagged_.begin() + slot;
    if (staleness.sec() > config_.threshold_s) {
      if (!*flagged) {
        *flagged = true;
        ++detections_;
        // Payload carries the staleness in ps — integral, so the record is
        // bit-stable where a rounded seconds double would not be.
        SATIN_FLIGHT_RECORD(obs::FlightKind::kProbe, now, detections_ - 1,
                            core, static_cast<std::uint64_t>(staleness.ps()));
        SATIN_TRACE_INSTANT_ARG("attack", "scan_detected", now, core,
                                obs::kWorldNormal, "staleness_s",
                                staleness.sec());
        SATIN_METRIC_INC("attack.detections");
        SATIN_METRIC_DIGEST_OBSERVE("attack.detection_staleness_s",
                                    staleness.sec());
        SATIN_LOG(kDebug) << "kprober: core " << core
                          << " looks secure-world-held (staleness "
                          << staleness.to_string() << ")";
        if (on_detect_) on_detect_(core, now, staleness);
      }
    } else {
      if (*flagged) {
        *flagged = false;
        SATIN_LOG(kDebug) << "kprober: core " << core << " reports again";
        if (on_clear_) on_clear_(core, now);
      } else {
        max_benign_s_ = std::max(max_benign_s_, staleness.sec());
      }
    }
  }
}

std::vector<os::Thread*> spawn_keepalive_spinners(os::RichOs& os) {
  std::vector<os::Thread*> out;
  for (int c = 0; c < os.platform().num_cores(); ++c) {
    auto spinner = std::make_unique<os::FunctionThread>(
        "keepalive/" + std::to_string(c), [](os::OsContext&) -> os::Action {
          return os::ComputeAction{sim::Duration::from_us(500), nullptr};
        });
    spinner->pin_to_core(c);
    out.push_back(os.add_thread(std::move(spinner)));
  }
  return out;
}

}  // namespace satin::attack
