// Core-availability probers: the side channel of §III-B and §III-C.
//
// A prober fixes a Time Reporter thread to each probed core; every round
// the reporter publishes the shared counter into the time buffer and the
// Time Comparer checks how stale every other core's report looks. A core
// held by the secure world stops reporting, its staleness grows past the
// configured threshold, and the prober flags it — without touching any
// secure-world state.
//
// Three deployment modes, matching the paper:
//  * kUserLevel  (§III-B1): plain CFS threads. Stealthy (no kernel
//    modification) but competing CFS load stretches the probing delay.
//  * kRtScheduler (KProber-II, §III-C2): SCHED_FIFO threads at maximum
//    priority; reliable sub-ms rounds, needs root.
//  * kTimerInterrupt (KProber-I, §III-C1): Reporter/Comparer injected into
//    the timer-interrupt path by rewriting the IRQ exception vector;
//    fires at tick frequency, but plants an 8-byte memory trace in kernel
//    text that introspection can find and that probing cannot remove.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "attack/time_buffer.h"
#include "os/rich_os.h"

namespace satin::attack {

enum class ProbeMode { kUserLevel, kRtScheduler, kTimerInterrupt };

const char* to_string(ProbeMode mode);

struct KProberConfig {
  ProbeMode mode = ProbeMode::kRtScheduler;
  // Flag a core once its report looks older than this. §VI-B1 sets
  // 1.8e-3 s — the largest benign staleness ever measured (Table II).
  double threshold_s = 1.8e-3;
  // Tsleep between rounds (§IV-A1): 2e-4 s; ignored by kTimerInterrupt,
  // which runs at tick (HZ) frequency.
  double sleep_s = 2.0e-4;
  // CPU cost of one reporter+comparer pass.
  double round_cost_s = 2.0e-6;
  // Cores to probe; empty = all cores.
  std::vector<hw::CoreId> probed_cores;
  // Optional extra comparer-only thread (used when probing a single
  // target core from elsewhere, §IV-A1).
  std::optional<hw::CoreId> observer_core;
  // Optional tap on every Comparer staleness sample (observed core,
  // seconds); used by the §VII-B on-victim threshold learner.
  std::function<void(hw::CoreId, double)> staleness_observer;
};

class KProber {
 public:
  using DetectFn = std::function<void(hw::CoreId core, sim::Time when,
                                      sim::Duration staleness)>;
  using ClearFn = std::function<void(hw::CoreId core, sim::Time when)>;

  KProber(os::RichOs& os, KProberConfig config);

  void set_on_detect(DetectFn fn) { on_detect_ = std::move(fn); }
  void set_on_clear(ClearFn fn) { on_clear_ = std::move(fn); }

  // Spawns the prober threads / installs the tick hook. For
  // kTimerInterrupt this also rewrites the IRQ exception vector slot in
  // kernel memory — the attack trace the defender can hash.
  void deploy();
  // Unhooks (mode I) and restores the vector bytes. Threads park
  // themselves once retracted.
  void retract();
  bool deployed() const { return deployed_; }

  const KProberConfig& config() const { return config_; }
  const std::vector<hw::CoreId>& probed_cores() const { return probed_; }

  bool core_flagged(hw::CoreId core) const;
  // True while any probed core is flagged as secure-world-held.
  bool any_flagged() const;

  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t detection_count() const { return detections_; }
  // Largest staleness observed that did NOT cross the threshold; this is
  // how an attacker calibrates Tns_threshold on a victim device (§VII-B).
  double max_benign_staleness_s() const { return max_benign_s_; }

  // One Reporter+Comparer pass as seen from `self`; invoked by the prober
  // threads and the tick hook — not part of the public surface.
  void probe_round(hw::CoreId self, sim::Time now, bool report);

 private:
  int slot_of(hw::CoreId core) const;

  os::RichOs& os_;
  KProberConfig config_;
  std::vector<hw::CoreId> probed_;
  std::unique_ptr<SharedTimeBuffer> buffer_;
  DetectFn on_detect_;
  ClearFn on_clear_;
  std::vector<bool> flagged_;
  bool deployed_ = false;
  int tick_hook_id_ = 0;
  std::vector<std::uint8_t> saved_vector_bytes_;
  std::uint64_t rounds_ = 0;
  std::uint64_t detections_ = 0;
  double max_benign_s_ = 0.0;
};

// CFS busy-loops pinned to each core so NO_HZ_IDLE never silences the tick
// (§III-C1: "To avoid any core entering the idle mode, KProber-I keeps
// running a user-level multi-threads program on each core"). Returns the
// spawned thread handles.
std::vector<os::Thread*> spawn_keepalive_spinners(os::RichOs& os);

}  // namespace satin::attack
