#include "attack/predictor.h"

#include <stdexcept>

namespace satin::attack {

PeriodicPredictionAttacker::PeriodicPredictionAttacker(os::RichOs& os,
                                                       PredictionConfig config)
    : os_(os),
      config_(config),
      rootkit_(os, os.platform().rng().fork("prediction-attacker")) {
  if (config.period_s <= 0.0) {
    throw std::invalid_argument("PredictionConfig: period");
  }
  if (config.hide_lead_s < 0.0 || config.rearm_lag_s < 0.0) {
    throw std::invalid_argument("PredictionConfig: lead/lag");
  }
  rootkit_.add_gettid_trace();
}

void PeriodicPredictionAttacker::deploy() {
  if (deployed_) {
    throw std::logic_error("PeriodicPredictionAttacker: already deployed");
  }
  deployed_ = true;
  rootkit_.install();
  sim::Engine& engine = os_.platform().engine();
  const sim::Time now = engine.now();
  for (int k = 1; k <= config_.horizon_rounds; ++k) {
    const sim::Time wake =
        sim::Time::from_sec_f(config_.phase_s + k * config_.period_s);
    const sim::Time hide_at =
        wake - sim::Duration::from_sec_f(config_.hide_lead_s);
    if (hide_at <= now) continue;
    engine.schedule_at(hide_at, [this] {
      if (rootkit_.installed() && !rootkit_.recovering()) {
        ++hides_;
        rootkit_.begin_recovery(config_.cleanup_core, [] {});
      }
    });
    engine.schedule_at(wake + sim::Duration::from_sec_f(config_.rearm_lag_s),
                       [this] {
                         if (!rootkit_.installed() && !rootkit_.recovering()) {
                           ++rearms_;
                           rootkit_.install();
                         }
                       });
  }
}

}  // namespace satin::attack
