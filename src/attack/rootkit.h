// Persistent kernel rootkit with removable traces (§IV-A2).
//
// The sample attack hijacks GETTID by overwriting its 8-byte syscall-table
// entry. Traces are real bytes in simulated kernel memory: installing
// writes the malicious values, recovery restores the benign ones byte by
// byte over a sampled Tns_recover (§IV-B2: A53 avg 5.80e-3 s, A57 avg
// 4.96e-3 s), so an introspection scan racing the recovery sees exactly
// the bytes that were (un)restored before its cursor passed.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "os/rich_os.h"

namespace satin::attack {

struct TraceSpec {
  std::string name;
  std::size_t offset = 0;
  std::vector<std::uint8_t> benign;
  std::vector<std::uint8_t> malicious;
};

class Rootkit {
 public:
  Rootkit(os::RichOs& os, sim::Rng rng);

  // Registers the GETTID syscall-table hijack (the paper's sample attack).
  void add_gettid_trace();
  void add_trace(TraceSpec trace);

  const std::vector<TraceSpec>& traces() const { return traces_; }
  // Total malicious bytes M (Eq. 1).
  std::size_t trace_bytes() const;

  // Writes all malicious bytes (the attack becomes active and detectable).
  void install();
  bool installed() const { return installed_; }
  bool recovering() const { return recovering_; }

  // Starts the timed trace removal, executed on a core of type `type`;
  // bytes are restored sequentially across the sampled recovery duration
  // and `done` fires at completion. Forbidden while already recovering.
  void begin_recovery(hw::CoreType type, std::function<void()> done);

  // Last sampled full recovery duration (diagnostics / benches).
  sim::Duration last_recovery_duration() const { return last_recovery_; }

  std::uint64_t installs() const { return installs_; }
  std::uint64_t recoveries() const { return recoveries_; }

 private:
  os::RichOs& os_;
  sim::Rng rng_;
  std::vector<TraceSpec> traces_;
  bool installed_ = false;
  bool recovering_ = false;
  sim::Duration last_recovery_;
  std::uint64_t installs_ = 0;
  std::uint64_t recoveries_ = 0;
};

}  // namespace satin::attack
