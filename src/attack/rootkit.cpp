#include "attack/rootkit.h"

#include <stdexcept>

#include "os/system_map.h"
#include "sim/log.h"

namespace satin::attack {

Rootkit::Rootkit(os::RichOs& os, sim::Rng rng)
    : os_(os), rng_(std::move(rng)) {}

void Rootkit::add_gettid_trace() {
  const os::KernelImage& image = os_.kernel_image();
  TraceSpec trace;
  trace.name = "gettid-hijack";
  trace.offset = image.syscall_entry_offset(os::kGettidSyscallNr);
  const auto benign = image.benign_syscall_entry(os::kGettidSyscallNr);
  trace.benign.assign(benign.begin(), benign.end());
  trace.malicious = trace.benign;
  // Redirect the entry to attacker code: flip every byte so any scanned
  // byte of the entry differs from the authorized image (§IV-A2: the
  // introspection detects the hijack "if it scans any of these 8 bytes").
  for (auto& b : trace.malicious) b = static_cast<std::uint8_t>(~b);
  add_trace(std::move(trace));
}

void Rootkit::add_trace(TraceSpec trace) {
  if (trace.benign.size() != trace.malicious.size() || trace.benign.empty()) {
    throw std::invalid_argument("Rootkit::add_trace: size mismatch");
  }
  if (installed_ || recovering_) {
    throw std::logic_error("Rootkit::add_trace: attack in progress");
  }
  traces_.push_back(std::move(trace));
}

std::size_t Rootkit::trace_bytes() const {
  std::size_t total = 0;
  for (const TraceSpec& t : traces_) total += t.benign.size();
  return total;
}

void Rootkit::install() {
  if (traces_.empty()) throw std::logic_error("Rootkit::install: no traces");
  if (recovering_) throw std::logic_error("Rootkit::install: mid-recovery");
  hw::Memory& mem = os_.platform().memory();
  const sim::Time now = os_.platform().engine().now();
  for (const TraceSpec& t : traces_) {
    mem.write(now, t.offset, t.malicious);
  }
  installed_ = true;
  ++installs_;
  SATIN_LOG(kDebug) << "rootkit: installed " << trace_bytes()
                    << " malicious bytes at " << now.to_string();
}

void Rootkit::begin_recovery(hw::CoreType type, std::function<void()> done) {
  if (recovering_) {
    throw std::logic_error("Rootkit::begin_recovery: already recovering");
  }
  if (!installed_) {
    throw std::logic_error("Rootkit::begin_recovery: nothing installed");
  }
  recovering_ = true;
  last_recovery_ = os_.platform().timing().recover(type).sample(rng_);
  const std::size_t total_bytes = trace_bytes();
  const sim::Time start = os_.platform().engine().now();
  sim::Engine& engine = os_.platform().engine();

  // Restore byte k at start + recovery * (k+1)/M: the cleanup is a linear
  // pass, so a concurrent introspection cursor races each byte separately.
  std::size_t k = 0;
  for (const TraceSpec& t : traces_) {
    for (std::size_t i = 0; i < t.benign.size(); ++i, ++k) {
      const sim::Time when =
          start + last_recovery_ * (static_cast<double>(k + 1) /
                                    static_cast<double>(total_bytes));
      const std::size_t offset = t.offset + i;
      const std::uint8_t value = t.benign[i];
      const bool last = k + 1 == total_bytes;
      engine.schedule_at(when, [this, offset, value, last,
                                done = last ? std::move(done)
                                            : std::function<void()>{}] {
        const std::uint8_t byte[1] = {value};
        os_.platform().memory().write(os_.platform().engine().now(), offset,
                                      byte);
        if (last) {
          recovering_ = false;
          installed_ = false;
          ++recoveries_;
          SATIN_LOG(kDebug) << "rootkit: traces removed at "
                            << os_.platform().engine().now().to_string();
          if (done) done();
        }
      });
    }
  }
}

}  // namespace satin::attack
