// Secure-world introspection engine.
//
// Performs timed linear scans of normal-world kernel memory from the
// secure world, with the two acquisition strategies §IV-B1 compares:
//   * direct hash — read the live kernel and hash it as it streams;
//   * snapshot    — copy into secure memory, then analyze the copy (the
//     copy is immune to later writes; the race window is the copy pass).
// Per-byte speeds come from Table I calibration and depend on the core
// type (A57 beats A53). The bytes fed to the hash are the bytes the scan
// cursor actually saw — a normal-world write wins the race iff it lands
// before the cursor (see hw/memory.h).
#pragma once

#include <cstdint>
#include <functional>

#include "hw/platform.h"
#include "secure/digest_cache.h"
#include "secure/hash.h"

namespace satin::secure {

enum class ScanStrategy { kDirectHash, kSnapshotThenHash };

const char* to_string(ScanStrategy strategy);

struct ScanResult {
  std::uint64_t digest = 0;
  std::size_t offset = 0;
  std::size_t length = 0;
  sim::Time scan_start;
  sim::Time scan_end;
  // Sampled per-byte speed of this pass, seconds per byte.
  double per_byte_s = 0.0;
};

class Introspector {
 public:
  explicit Introspector(hw::Platform& platform,
                        HashKind hash = HashKind::kDjb2,
                        ScanStrategy strategy = ScanStrategy::kDirectHash);

  HashKind hash_kind() const { return hash_; }
  ScanStrategy strategy() const { return strategy_; }

  // Samples this core type's per-byte speed without scanning (benches).
  double sample_per_byte_seconds(hw::CoreType type);

  // Starts a scan of [offset, offset+length) on `core` at the current
  // simulated time; `done` fires when the pass completes, with the digest
  // of the observed bytes.
  void scan_async(hw::CoreId core, std::size_t offset, std::size_t length,
                  std::function<void(const ScanResult&)> done);

  // Untimed digest of a pristine byte range (boot-time authorization).
  std::uint64_t digest_reference(std::span<const std::uint8_t> bytes) const {
    return hash_bytes(hash_, bytes);
  }

  std::uint64_t scans_completed() const { return scans_; }

  // Pre-sizes the incremental digest cache for an area about to be scanned
  // repeatedly (IntegrityChecker registers its whole area set at boot).
  void register_area(std::size_t offset, std::size_t length) {
    cache_.register_area(offset, length);
  }

  // The incremental digest cache behind scan_async (host-time fast path;
  // digests, simulated time and TOCTTOU semantics are unaffected by it —
  // see secure/digest_cache.h).
  DigestCache& digest_cache() { return cache_; }
  const DigestCache& digest_cache() const { return cache_; }

 private:
  hw::Platform& platform_;
  HashKind hash_;
  ScanStrategy strategy_;
  sim::Rng rng_;
  DigestCache cache_;
  std::uint64_t scans_ = 0;
};

}  // namespace satin::secure
