#include "secure/digest_cache.h"

#include <algorithm>
#include <stdexcept>

namespace satin::secure {

DigestCache::DigestCache(HashKind kind, bool enabled, std::size_t chunk_bytes)
    : kind_(kind), enabled_(enabled), chunk_bytes_(chunk_bytes) {
  if (chunk_bytes_ == 0) {
    throw std::invalid_argument("DigestCache: zero chunk size");
  }
}

DigestCache::AreaCache& DigestCache::area_for(std::size_t offset,
                                              std::size_t length) {
  AreaCache& area = areas_[{offset, length}];
  if (area.chunks.empty() && length > 0) {
    area.chunks.resize((length + chunk_bytes_ - 1) / chunk_bytes_);
  }
  return area;
}

void DigestCache::register_area(std::size_t offset, std::size_t length) {
  area_for(offset, length);
}

void DigestCache::account(const RoundOutcome& out) {
  ++stats_.rounds;
  stats_.hits += out.chunk_hits;
  stats_.misses += out.chunk_misses;
  stats_.invalidations += out.chunk_invalidations;
  stats_.bypasses += out.bypassed ? 1 : 0;
  stats_.bytes_hashed += out.bytes_hashed;
  stats_.bytes_skipped += out.bytes_skipped;
}

DigestCache::RoundOutcome DigestCache::round_digest(
    const hw::Memory& mem, std::size_t offset,
    std::span<const std::uint8_t> view, bool trusted_view) {
  RoundOutcome out;
  if (!trusted_view) {
    // Raced or faulted scan: the observed bytes are a private view, not
    // the backing bytes the generations describe. Hash them directly and
    // leave every cache entry untouched — TOCTTOU and fault semantics see
    // the exact pre-cache pipeline.
    out.bypassed = true;
    out.bytes_hashed = view.size();
    out.digest = hash_bytes(kind_, view);
    account(out);
    return out;
  }

  AreaCache& area = area_for(offset, view.size());
  const std::uint64_t global_gen = mem.write_generation();
  const bool whole_memory_clean = area.valid && global_gen == area.global_gen;
  // O(1) all-clean fast path: if nothing anywhere mutated since the last
  // pass (global counter unchanged), or nothing inside this area did
  // (range max unchanged), the cached area digest is the digest.
  const std::uint64_t area_gen = whole_memory_clean
                                     ? area.area_gen
                                     : mem.generation(offset, view.size());
  if (area.valid && area_gen == area.area_gen) {
    out.chunk_hits = area.chunks.size();
    out.bytes_skipped = view.size();
    area.global_gen = global_gen;
    out.digest = enabled_ ? area.digest : hash_bytes(kind_, view);
    account(out);
    return out;
  }

  // Chunk walk: resume the streaming hash across clean chunks, re-hash
  // dirty ones. A chunk is reusable only when its generation is unchanged
  // AND the state entering it matches the cached entry — a dirty chunk
  // shifts every downstream state, so the suffix re-hashes (and re-caches)
  // under the new prefix.
  std::uint64_t state = hash_seed(kind_);
  for (std::size_t k = 0; k < area.chunks.size(); ++k) {
    const std::size_t begin = k * chunk_bytes_;
    const std::size_t len = std::min(chunk_bytes_, view.size() - begin);
    const std::uint64_t chunk_gen = mem.generation(offset + begin, len);
    ChunkEntry& entry = area.chunks[k];
    const bool gen_ok = entry.computed && entry.gen == chunk_gen;
    if (gen_ok && entry.state_in == state) {
      ++out.chunk_hits;
      out.bytes_skipped += len;
      state = entry.state_out;
      continue;
    }
    if (entry.computed && !gen_ok) ++out.chunk_invalidations;
    ++out.chunk_misses;
    out.bytes_hashed += len;
    const std::uint64_t state_in = state;
    state = hash_resume(kind_, state, view.subspan(begin, len));
    entry = ChunkEntry{chunk_gen, state_in, state, true};
  }
  area.valid = true;
  area.area_gen = area_gen;
  area.global_gen = global_gen;
  area.digest = state;
  // Shadow mode (--digest-cache=off): identical bookkeeping above, but the
  // digest handed out is an independent full re-hash of the view — the
  // exact pre-cache computation. The differential tests pin state == the
  // re-hash, so enabled runs are bit-identical.
  out.digest = enabled_ ? state : hash_bytes(kind_, view);
  account(out);
  return out;
}

}  // namespace satin::secure
