// Incremental digest cache for the secure-world introspection hot path.
//
// The paper's workloads run thousands of introspection rounds over kernel
// areas that are almost never modified between rounds: the common case is
// a clean re-hash of byte-identical text/syscall-table bytes. This cache
// makes repeated rounds O(dirty bytes) in *host* time while leaving
// *simulated* time and every digest bit-identical to the byte reference:
//
//  * hw::Memory stamps a monotonic write-generation on every 256-byte
//    chunk a write/poke (or fault glitch) touches;
//  * per (area, chunk) we memoize the streaming hash state entering and
//    leaving the chunk (hash_resume: H(a‖b) = resume(H(a), b), exact for
//    djb2/sdbm/FNV-1a) keyed by the chunk's generation;
//  * a round re-hashes only chunks whose generation moved (or whose
//    incoming state shifted because an earlier chunk changed) and resumes
//    across the clean ones; an all-clean round is O(1) via the global
//    write-generation counter.
//
// TOCTTOU and fault semantics are untouched by construction: a scan that
// was raced by a timed write or glitched by a fault hook materializes a
// private view (hw::Memory copy-on-first-overlap), and any materialized
// view bypasses the cache entirely — its bytes are not the backing bytes
// the generations describe. Simulated scan time is charged in full by the
// Introspector regardless of cache hits.
//
// `--digest-cache=off` (obs::ObsSession) switches every cache constructed
// afterwards into *shadow mode*: the full bookkeeping still runs — so
// hit/miss/invalidation counters and trace instants stay bit-identical to
// the enabled run — but the returned digest is an independent full
// re-hash of the observed view, i.e. exactly the pre-cache behavior. The
// differential tests (and the CI on-vs-off gate) hold the two modes to
// identical stdout, metrics and digests.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "hw/memory.h"
#include "secure/hash.h"

namespace satin::secure {

// Process-wide default for newly constructed caches. Header-only so
// obs::ObsSession can set it from --digest-cache= without a link-time
// dependency on satin_secure. Set before trials fan out; workers only
// read it.
inline std::atomic<bool>& digest_cache_default_flag() {
  static std::atomic<bool> enabled{true};
  return enabled;
}
inline bool digest_cache_default() {
  return digest_cache_default_flag().load(std::memory_order_relaxed);
}
inline void set_digest_cache_default(bool enabled) {
  digest_cache_default_flag().store(enabled, std::memory_order_relaxed);
}

class DigestCache {
 public:
  // What one round's digest computation did. Bookkeeping is identical
  // whether the cache is enabled or shadowing, so everything here may be
  // printed/traced without breaking the on-vs-off identity contract.
  struct RoundOutcome {
    std::uint64_t digest = 0;
    std::uint64_t chunk_hits = 0;           // chunks resumed from cache
    std::uint64_t chunk_misses = 0;         // chunks (re)hashed
    std::uint64_t chunk_invalidations = 0;  // misses caused by a dirty gen
    std::uint64_t bytes_hashed = 0;   // logical: what an enabled run hashes
    std::uint64_t bytes_skipped = 0;
    bool bypassed = false;  // raced/faulted view: cache not consulted
  };

  // Cumulative totals across rounds (same counting rules as RoundOutcome).
  struct Stats {
    std::uint64_t rounds = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t bypasses = 0;
    std::uint64_t bytes_hashed = 0;
    std::uint64_t bytes_skipped = 0;
  };

  explicit DigestCache(HashKind kind, bool enabled = digest_cache_default(),
                       std::size_t chunk_bytes = hw::Memory::kChunkBytes);

  HashKind kind() const { return kind_; }
  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }
  std::size_t chunk_bytes() const { return chunk_bytes_; }

  // Pre-sizes the chunk table for an area (optional; round_digest creates
  // tables on demand). IntegrityChecker registers every area at boot.
  void register_area(std::size_t offset, std::size_t length);
  std::size_t area_count() const { return areas_.size(); }

  // Digest of `view`, the bytes a finished scan observed over
  // [offset, offset + view.size()) of `mem`. `trusted_view` must be false
  // when the scan materialized a private view (raced write or fault
  // glitch): those bytes are not the backing bytes the generations
  // describe, so the round is fully re-hashed and the cache is neither
  // consulted nor updated.
  RoundOutcome round_digest(const hw::Memory& mem, std::size_t offset,
                            std::span<const std::uint8_t> view,
                            bool trusted_view);

  const Stats& stats() const { return stats_; }

 private:
  struct ChunkEntry {
    std::uint64_t gen = 0;        // hw::Memory generation when computed
    std::uint64_t state_in = 0;   // hash state entering this chunk
    std::uint64_t state_out = 0;  // state after absorbing the chunk
    bool computed = false;
  };
  struct AreaCache {
    std::vector<ChunkEntry> chunks;
    std::uint64_t area_gen = 0;    // generation(offset, length) last round
    std::uint64_t global_gen = 0;  // write_generation() last round
    std::uint64_t digest = 0;
    bool valid = false;
  };

  AreaCache& area_for(std::size_t offset, std::size_t length);
  void account(const RoundOutcome& out);

  HashKind kind_;
  bool enabled_;
  std::size_t chunk_bytes_;
  std::map<std::pair<std::size_t, std::size_t>, AreaCache> areas_;
  Stats stats_;
};

}  // namespace satin::secure
