#include "secure/introspect.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace satin::secure {

const char* to_string(ScanStrategy strategy) {
  switch (strategy) {
    case ScanStrategy::kDirectHash:
      return "direct-hash";
    case ScanStrategy::kSnapshotThenHash:
      return "snapshot";
  }
  return "?";
}

Introspector::Introspector(hw::Platform& platform, HashKind hash,
                           ScanStrategy strategy)
    : platform_(platform),
      hash_(hash),
      strategy_(strategy),
      rng_(platform.rng().fork("introspector")) {}

double Introspector::sample_per_byte_seconds(hw::CoreType type) {
  const hw::JitterSpec& spec = strategy_ == ScanStrategy::kDirectHash
                                   ? platform_.timing().hash_per_byte(type)
                                   : platform_.timing().snapshot_per_byte(type);
  return spec.sample_seconds(rng_);
}

void Introspector::scan_async(hw::CoreId core, std::size_t offset,
                              std::size_t length,
                              std::function<void(const ScanResult&)> done) {
  const hw::CoreType type = platform_.core(core).type();
  const double per_byte_s = sample_per_byte_seconds(type);
  const double per_byte_ps = per_byte_s * 1e12;
  const sim::Time start = platform_.engine().now();
  auto token = platform_.memory().begin_scan(start, offset, length, per_byte_ps);
  SATIN_TRACE_BEGIN("secure", "scan", start, core, obs::kWorldSecure);

  const sim::Duration total = sim::Duration::from_sec_f(
      per_byte_s * static_cast<double>(length));
  platform_.engine().schedule_after(
      total, [this, core, token, offset, length, start, per_byte_s,
              done = std::move(done)]() mutable {
        // Zero-copy on the common no-race path: the view is a window into
        // physical memory, hashed before anything else can mutate it.
        const auto seen = platform_.memory().finish_scan(token);
        ScanResult result;
        result.digest = hash_bytes(hash_, seen.bytes());
        result.offset = offset;
        result.length = length;
        result.scan_start = start;
        result.scan_end = platform_.engine().now();
        result.per_byte_s = per_byte_s;
        ++scans_;
        SATIN_TRACE_END("secure", "scan", result.scan_end, core,
                        obs::kWorldSecure);
        SATIN_METRIC_INC("introspect.scans");
        SATIN_METRIC_ADD("introspect.bytes_scanned", length);
        SATIN_METRIC_OBSERVE("introspect.scan_s",
                             (result.scan_end - start).sec());
        done(result);
      });
}

}  // namespace satin::secure
