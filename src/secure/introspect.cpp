#include "secure/introspect.h"

#include <utility>

#include "obs/flight/recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace satin::secure {

const char* to_string(ScanStrategy strategy) {
  switch (strategy) {
    case ScanStrategy::kDirectHash:
      return "direct-hash";
    case ScanStrategy::kSnapshotThenHash:
      return "snapshot";
  }
  return "?";
}

Introspector::Introspector(hw::Platform& platform, HashKind hash,
                           ScanStrategy strategy)
    : platform_(platform),
      hash_(hash),
      strategy_(strategy),
      rng_(platform.rng().fork("introspector")),
      cache_(hash) {}

double Introspector::sample_per_byte_seconds(hw::CoreType type) {
  const hw::JitterSpec& spec = strategy_ == ScanStrategy::kDirectHash
                                   ? platform_.timing().hash_per_byte(type)
                                   : platform_.timing().snapshot_per_byte(type);
  return spec.sample_seconds(rng_);
}

void Introspector::scan_async(hw::CoreId core, std::size_t offset,
                              std::size_t length,
                              std::function<void(const ScanResult&)> done) {
  const hw::CoreType type = platform_.core(core).type();
  const double per_byte_s = sample_per_byte_seconds(type);
  const double per_byte_ps = per_byte_s * 1e12;
  const sim::Time start = platform_.engine().now();
  auto token = platform_.memory().begin_scan(start, offset, length, per_byte_ps);
  SATIN_FLIGHT_RECORD(obs::FlightKind::kScanStart, start, scans_, core,
                      (static_cast<std::uint64_t>(offset) << 32) |
                          static_cast<std::uint64_t>(length));
  SATIN_TRACE_BEGIN("secure", "scan", start, core, obs::kWorldSecure);

  const sim::Duration total = sim::Duration::from_sec_f(
      per_byte_s * static_cast<double>(length));
  platform_.engine().schedule_after(
      total, [this, core, token, offset, length, start, per_byte_s,
              done = std::move(done)]() mutable {
        // Zero-copy on the common no-race path: the view is a window into
        // physical memory, hashed before anything else can mutate it. A
        // materialized (owned) view means a timed write raced the cursor
        // or a fault hook glitched the observed bytes — those rounds
        // bypass the incremental cache and re-hash in full, so detection
        // semantics never depend on cache state.
        const auto seen = platform_.memory().finish_scan(token);
        const auto cached = cache_.round_digest(platform_.memory(), offset,
                                                seen.bytes(), !seen.owned());
        ScanResult result;
        result.digest = cached.digest;
        result.offset = offset;
        result.length = length;
        result.scan_start = start;
        result.scan_end = platform_.engine().now();
        result.per_byte_s = per_byte_s;
        ++scans_;
        SATIN_FLIGHT_RECORD(obs::FlightKind::kScanEnd, result.scan_end,
                            scans_ - 1, core, result.digest);
        SATIN_TRACE_END("secure", "scan", result.scan_end, core,
                        obs::kWorldSecure);
        // Cache observability. RoundOutcome bookkeeping is identical with
        // the cache enabled or shadowed (--digest-cache=off), so these
        // counters and instants are part of the bit-identity contract,
        // not an exception to it. Simulated scan time above was already
        // charged in full — hits only save host time.
        SATIN_TRACE_INSTANT_ARG(
            "secure",
            cached.bypassed
                ? "digest_cache_bypass"
                : (cached.chunk_misses == 0 ? "digest_cache_clean"
                                            : "digest_cache_partial"),
            result.scan_end, core, obs::kWorldSecure, "bytes_hashed",
            cached.bytes_hashed);
        SATIN_METRIC_ADD("digest_cache.hits", cached.chunk_hits);
        SATIN_METRIC_ADD("digest_cache.misses", cached.chunk_misses);
        SATIN_METRIC_ADD("digest_cache.invalidations",
                         cached.chunk_invalidations);
        SATIN_METRIC_ADD("digest_cache.bytes_hashed", cached.bytes_hashed);
        SATIN_METRIC_ADD("digest_cache.bytes_skipped", cached.bytes_skipped);
        if (cached.bypassed) SATIN_METRIC_INC("digest_cache.bypasses");
        SATIN_METRIC_INC("introspect.scans");
        SATIN_METRIC_ADD("introspect.bytes_scanned", length);
        SATIN_METRIC_OBSERVE("introspect.scan_s",
                             (result.scan_end - start).sec());
        SATIN_METRIC_DIGEST_OBSERVE("introspect.scan_s",
                                    (result.scan_end - start).sec());
        done(result);
      });
}

}  // namespace satin::secure
