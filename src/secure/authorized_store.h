// The authorized hash table stored in the secure world (§VI-A2).
//
// At trusted-boot time the integrity checker hashes each benign kernel
// area and deposits the digests here; the normal world has no access path
// to this storage in the model, mirroring TrustZone secure memory.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace satin::secure {

class AuthorizedStore {
 public:
  // Records the benign digest for `key` (e.g. "area/14"). Overwriting an
  // existing key is rejected: authorized values are written once at boot.
  void authorize(const std::string& key, std::uint64_t digest);

  std::optional<std::uint64_t> lookup(const std::string& key) const;

  // True iff `digest` matches the authorized value for `key`; a missing
  // key counts as a mismatch (fail closed).
  bool matches(const std::string& key, std::uint64_t digest) const;

  std::size_t size() const { return digests_.size(); }

 private:
  std::map<std::string, std::uint64_t> digests_;
};

}  // namespace satin::secure
