// Test Secure Payload (S-EL1).
//
// The paper's secure OS is a modified ARM Trusted Firmware TSP whose
// secure-timer interrupt handler performs the integrity check (§IV-A,
// §VI-A). This class models that thin layer: it installs itself as the
// EL3 monitor's secure-timer payload and forwards each session to a
// registered service (the baseline checker or SATIN).
#pragma once

#include <functional>
#include <memory>

#include "hw/platform.h"

namespace satin::secure {

class TestSecurePayload {
 public:
  using TimerService =
      std::function<void(std::shared_ptr<hw::SecureSession>)>;

  explicit TestSecurePayload(hw::Platform& platform) : platform_(platform) {}

  // Replaces the secure-timer interrupt handler body. A null service makes
  // the payload complete sessions immediately (enter-and-leave, used to
  // measure the bare Ts_switch).
  void install_timer_service(TimerService service);

  std::uint64_t sessions_served() const { return sessions_; }

 private:
  hw::Platform& platform_;
  TimerService service_;
  std::uint64_t sessions_ = 0;
};

}  // namespace satin::secure
