// Hash functions used by the secure-world introspection.
//
// §IV-B1: the prototype hashes kernel memory with djb2 and compares the
// digest against a pre-calculated authorized value. We provide djb2 plus
// two alternatives (sdbm from the same classic collection, and FNV-1a) so
// the integrity checker's hash choice is pluggable and benchmarkable.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace satin::secure {

enum class HashKind { kDjb2, kSdbm, kFnv1a };

const char* to_string(HashKind kind);

// Word-at-a-time fast paths (djb2/sdbm collapse 8 byte-steps into one
// multiply-accumulate; FNV-1a unrolls 8-wide). Digest-identical to the
// byte-at-a-time references below — a randomized differential test in
// tests/secure/hash_test.cpp holds them to that.
std::uint64_t hash_djb2(std::span<const std::uint8_t> data);
std::uint64_t hash_sdbm(std::span<const std::uint8_t> data);
std::uint64_t hash_fnv1a(std::span<const std::uint8_t> data);

// Byte-at-a-time reference implementations (the literal textbook loops).
std::uint64_t hash_djb2_reference(std::span<const std::uint8_t> data);
std::uint64_t hash_sdbm_reference(std::span<const std::uint8_t> data);
std::uint64_t hash_fnv1a_reference(std::span<const std::uint8_t> data);

std::uint64_t hash_bytes(HashKind kind, std::span<const std::uint8_t> data);

// --- Streaming-resumable formulation -----------------------------------
// All three hashes consume input strictly left to right through a single
// 64-bit state, so each supports seeded continuation *exactly*:
//
//     hash_bytes(kind, a‖b) == hash_resume(kind, hash_bytes(kind, a), b)
//
// (djb2/sdbm are the polynomial fold h' = h*m + c; FNV-1a interleaves
// xor/multiply — still one word of running state). The incremental digest
// cache (secure/digest_cache.h) splits an area into chunks and resumes
// across the clean ones; a randomized differential test holds the split
// digests bit-identical to the whole-buffer references.
std::uint64_t hash_seed(HashKind kind);  // state of the empty input
std::uint64_t hash_djb2_resume(std::uint64_t state,
                               std::span<const std::uint8_t> data);
std::uint64_t hash_sdbm_resume(std::uint64_t state,
                               std::span<const std::uint8_t> data);
std::uint64_t hash_fnv1a_resume(std::uint64_t state,
                                std::span<const std::uint8_t> data);
std::uint64_t hash_resume(HashKind kind, std::uint64_t state,
                          std::span<const std::uint8_t> data);

}  // namespace satin::secure
