// Hash functions used by the secure-world introspection.
//
// §IV-B1: the prototype hashes kernel memory with djb2 and compares the
// digest against a pre-calculated authorized value. We provide djb2 plus
// two alternatives (sdbm from the same classic collection, and FNV-1a) so
// the integrity checker's hash choice is pluggable and benchmarkable.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace satin::secure {

enum class HashKind { kDjb2, kSdbm, kFnv1a };

const char* to_string(HashKind kind);

// Word-at-a-time fast paths (djb2/sdbm collapse 8 byte-steps into one
// multiply-accumulate; FNV-1a unrolls 8-wide). Digest-identical to the
// byte-at-a-time references below — a randomized differential test in
// tests/secure/hash_test.cpp holds them to that.
std::uint64_t hash_djb2(std::span<const std::uint8_t> data);
std::uint64_t hash_sdbm(std::span<const std::uint8_t> data);
std::uint64_t hash_fnv1a(std::span<const std::uint8_t> data);

// Byte-at-a-time reference implementations (the literal textbook loops).
std::uint64_t hash_djb2_reference(std::span<const std::uint8_t> data);
std::uint64_t hash_sdbm_reference(std::span<const std::uint8_t> data);
std::uint64_t hash_fnv1a_reference(std::span<const std::uint8_t> data);

std::uint64_t hash_bytes(HashKind kind, std::span<const std::uint8_t> data);

}  // namespace satin::secure
