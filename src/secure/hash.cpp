#include "secure/hash.h"

namespace satin::secure {

const char* to_string(HashKind kind) {
  switch (kind) {
    case HashKind::kDjb2:
      return "djb2";
    case HashKind::kSdbm:
      return "sdbm";
    case HashKind::kFnv1a:
      return "fnv1a";
  }
  return "?";
}

std::uint64_t hash_djb2(std::span<const std::uint8_t> data) {
  // Bernstein's djb2 ("hash * 33 + c"), the function cited by the paper.
  std::uint64_t hash = 5381;
  for (std::uint8_t c : data) hash = ((hash << 5) + hash) + c;
  return hash;
}

std::uint64_t hash_sdbm(std::span<const std::uint8_t> data) {
  std::uint64_t hash = 0;
  for (std::uint8_t c : data) hash = c + (hash << 6) + (hash << 16) - hash;
  return hash;
}

std::uint64_t hash_fnv1a(std::span<const std::uint8_t> data) {
  std::uint64_t hash = 14695981039346656037ull;
  for (std::uint8_t c : data) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

std::uint64_t hash_bytes(HashKind kind, std::span<const std::uint8_t> data) {
  switch (kind) {
    case HashKind::kDjb2:
      return hash_djb2(data);
    case HashKind::kSdbm:
      return hash_sdbm(data);
    case HashKind::kFnv1a:
      return hash_fnv1a(data);
  }
  return 0;
}

}  // namespace satin::secure
