#include "secure/hash.h"

namespace satin::secure {

const char* to_string(HashKind kind) {
  switch (kind) {
    case HashKind::kDjb2:
      return "djb2";
    case HashKind::kSdbm:
      return "sdbm";
    case HashKind::kFnv1a:
      return "fnv1a";
  }
  return "?";
}

std::uint64_t hash_djb2_reference(std::span<const std::uint8_t> data) {
  // Bernstein's djb2 ("hash * 33 + c"), the function cited by the paper.
  std::uint64_t hash = 5381;
  for (std::uint8_t c : data) hash = ((hash << 5) + hash) + c;
  return hash;
}

std::uint64_t hash_sdbm_reference(std::span<const std::uint8_t> data) {
  std::uint64_t hash = 0;
  for (std::uint8_t c : data) hash = c + (hash << 6) + (hash << 16) - hash;
  return hash;
}

std::uint64_t hash_fnv1a_reference(std::span<const std::uint8_t> data) {
  std::uint64_t hash = 14695981039346656037ull;
  for (std::uint8_t c : data) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

namespace {

// Powers m^1..m^8 (mod 2^64) at compile time, for the word-at-a-time
// multiply-accumulate fast paths below.
struct PowTable {
  std::uint64_t p[9];
};

constexpr PowTable make_pow_table(std::uint64_t m) {
  PowTable t{};
  t.p[0] = 1;
  for (int i = 1; i <= 8; ++i) t.p[i] = t.p[i - 1] * m;
  return t;
}

constexpr PowTable kPow33 = make_pow_table(33);
constexpr PowTable kPow65599 = make_pow_table(65599);

// Both djb2 and sdbm are the polynomial hash h' = h*m + c per byte
// (djb2: m = 33; sdbm: c + (h<<6) + (h<<16) - h = h*65599 + c). Eight
// steps therefore collapse into one multiply-accumulate over a word:
//   h' = h*m^8 + c0*m^7 + c1*m^6 + ... + c7
// — identical bits to the byte loop, one iteration per 8 bytes.
template <const PowTable& kPow>
std::uint64_t hash_poly(std::uint64_t hash,
                        std::span<const std::uint8_t> data) {
  const std::uint8_t* d = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    hash = hash * kPow.p[8] + d[0] * kPow.p[7] + d[1] * kPow.p[6] +
           d[2] * kPow.p[5] + d[3] * kPow.p[4] + d[4] * kPow.p[3] +
           d[5] * kPow.p[2] + d[6] * kPow.p[1] + d[7];
    d += 8;
    n -= 8;
  }
  for (std::size_t i = 0; i < n; ++i) hash = hash * kPow.p[1] + d[i];
  return hash;
}

}  // namespace

std::uint64_t hash_djb2(std::span<const std::uint8_t> data) {
  return hash_poly<kPow33>(5381, data);
}

std::uint64_t hash_sdbm(std::span<const std::uint8_t> data) {
  return hash_poly<kPow65599>(0, data);
}

std::uint64_t hash_djb2_resume(std::uint64_t state,
                               std::span<const std::uint8_t> data) {
  return hash_poly<kPow33>(state, data);
}

std::uint64_t hash_sdbm_resume(std::uint64_t state,
                               std::span<const std::uint8_t> data) {
  return hash_poly<kPow65599>(state, data);
}

std::uint64_t hash_fnv1a_resume(std::uint64_t state,
                                std::span<const std::uint8_t> data) {
  // FNV-1a interleaves xor and multiply, so the steps don't collapse into
  // one polynomial; an 8-wide unroll still removes the loop overhead and
  // keeps one word of input in flight per iteration.
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t hash = state;
  const std::uint8_t* d = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    hash = (hash ^ d[0]) * kPrime;
    hash = (hash ^ d[1]) * kPrime;
    hash = (hash ^ d[2]) * kPrime;
    hash = (hash ^ d[3]) * kPrime;
    hash = (hash ^ d[4]) * kPrime;
    hash = (hash ^ d[5]) * kPrime;
    hash = (hash ^ d[6]) * kPrime;
    hash = (hash ^ d[7]) * kPrime;
    d += 8;
    n -= 8;
  }
  for (std::size_t i = 0; i < n; ++i) hash = (hash ^ d[i]) * kPrime;
  return hash;
}

std::uint64_t hash_fnv1a(std::span<const std::uint8_t> data) {
  return hash_fnv1a_resume(14695981039346656037ull, data);
}

std::uint64_t hash_bytes(HashKind kind, std::span<const std::uint8_t> data) {
  switch (kind) {
    case HashKind::kDjb2:
      return hash_djb2(data);
    case HashKind::kSdbm:
      return hash_sdbm(data);
    case HashKind::kFnv1a:
      return hash_fnv1a(data);
  }
  return 0;
}

std::uint64_t hash_seed(HashKind kind) {
  switch (kind) {
    case HashKind::kDjb2:
      return 5381;
    case HashKind::kSdbm:
      return 0;
    case HashKind::kFnv1a:
      return 14695981039346656037ull;
  }
  return 0;
}

std::uint64_t hash_resume(HashKind kind, std::uint64_t state,
                          std::span<const std::uint8_t> data) {
  switch (kind) {
    case HashKind::kDjb2:
      return hash_djb2_resume(state, data);
    case HashKind::kSdbm:
      return hash_sdbm_resume(state, data);
    case HashKind::kFnv1a:
      return hash_fnv1a_resume(state, data);
  }
  return 0;
}

}  // namespace satin::secure
