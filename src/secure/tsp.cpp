#include "secure/tsp.h"

namespace satin::secure {

void TestSecurePayload::install_timer_service(TimerService service) {
  service_ = std::move(service);
  platform_.monitor().set_secure_timer_payload(
      [this](std::shared_ptr<hw::SecureSession> session) {
        ++sessions_;
        if (service_) {
          service_(std::move(session));
        } else {
          session->complete();
        }
      });
}

}  // namespace satin::secure
