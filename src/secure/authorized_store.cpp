#include "secure/authorized_store.h"

#include <stdexcept>

namespace satin::secure {

void AuthorizedStore::authorize(const std::string& key, std::uint64_t digest) {
  const auto [it, inserted] = digests_.emplace(key, digest);
  (void)it;
  if (!inserted) {
    throw std::logic_error("AuthorizedStore: re-authorization of " + key);
  }
}

std::optional<std::uint64_t> AuthorizedStore::lookup(
    const std::string& key) const {
  const auto it = digests_.find(key);
  if (it == digests_.end()) return std::nullopt;
  return it->second;
}

bool AuthorizedStore::matches(const std::string& key,
                              std::uint64_t digest) const {
  const auto value = lookup(key);
  return value.has_value() && *value == digest;
}

}  // namespace satin::secure
