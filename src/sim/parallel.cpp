#include "sim/parallel.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <thread>
#include <utility>

#include "obs/flight/recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/batch.h"

namespace satin::sim {

TrialObsScope::TrialObsScope(obs::MetricsRegistry* metrics,
                             obs::TraceRecorder* tracer,
                             obs::FlightRecorder* flight)
    : prev_metrics_(obs::metrics()),
      prev_tracer_(obs::tracer()),
      prev_flight_(obs::flight()) {
  obs::install_metrics(metrics);
  obs::install_tracer(tracer);
  obs::install_flight(flight);
}

TrialObsScope::~TrialObsScope() {
  obs::install_metrics(prev_metrics_);
  obs::install_tracer(prev_tracer_);
  obs::install_flight(prev_flight_);
}

TrialRunner::TrialRunner(TrialRunnerOptions options)
    : options_(options), seeds_(options.root_seed) {}

int TrialRunner::hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int TrialRunner::jobs_for(std::size_t trials) const {
  int jobs = options_.jobs > 0 ? options_.jobs : hardware_jobs();
  if (static_cast<std::size_t>(jobs) > trials) {
    jobs = static_cast<int>(trials);
  }
  return jobs < 1 ? 1 : jobs;
}

double TrialRunner::trials_per_second() const {
  return wall_seconds_ > 0.0
             ? static_cast<double>(trials_run_) / wall_seconds_
             : 0.0;
}

namespace {

// The calling thread's sinks decide whether trials record at all; the
// per-trial instances exist so workers never contend on one registry and
// so the merged state is independent of completion order — shared
// verbatim between run() and run_sharded(), which is what makes their
// outputs byte-identical to each other.
struct PerTrialSinks {
  obs::MetricsRegistry* parent_metrics = obs::metrics();
  obs::TraceRecorder* parent_tracer = obs::tracer();
  obs::FlightRecorder* parent_flight = obs::flight();
  std::vector<std::unique_ptr<obs::MetricsRegistry>> metrics;
  std::vector<std::unique_ptr<obs::TraceRecorder>> tracers;
  std::vector<std::unique_ptr<obs::FlightRecorder>> flights;

  PerTrialSinks(std::size_t trials, const TrialRunnerOptions& options)
      : metrics(trials), tracers(trials), flights(trials) {
    for (std::size_t i = 0; i < trials; ++i) {
      if (parent_metrics != nullptr) {
        metrics[i] = std::make_unique<obs::MetricsRegistry>();
      }
      if (parent_tracer != nullptr) {
        tracers[i] = std::make_unique<obs::TraceRecorder>(options.trace_capacity);
      }
      if (parent_flight != nullptr) {
        obs::FlightRecorder::Options fopts;
        fopts.ring = options.flight_ring;  // in-memory; no path, no spill
        flights[i] = std::make_unique<obs::FlightRecorder>(fopts);
      }
    }
  }

  // Merge in submission order, on the calling thread, after every trial
  // has settled — the one place all execution paths reconverge.
  void merge(const TrialSeedSeq& seeds) {
    for (std::size_t i = 0; i < metrics.size(); ++i) {
      if (metrics[i] != nullptr) parent_metrics->merge_from(*metrics[i]);
      if (tracers[i] != nullptr) parent_tracer->append_from(*tracers[i]);
      if (flights[i] != nullptr) {
        // The trial-begin marker is emitted here, by the parent, rather
        // than inside the trial: in ring mode it would be the trial's
        // OLDEST record and the first one overwritten, losing the
        // stream's trial boundaries exactly when the auditor needs them.
        parent_flight->record(obs::FlightKind::kTrialBegin, Time::zero(),
                              static_cast<std::uint64_t>(i),
                              static_cast<int>(i), seeds.seed_for(i));
        parent_flight->append_from(*flights[i]);
      }
    }
  }
};

// Fixed-size pool over `units` work items; a shared atomic cursor
// load-balances uneven items (duel lengths vary a lot). Claim order is
// racy, but nothing reads it: every output is keyed by the unit index.
void run_pool(int jobs, std::size_t units,
              const std::function<void(std::size_t)>& work) {
  if (jobs <= 1) {
    for (std::size_t i = 0; i < units; ++i) work(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(jobs));
  for (int w = 0; w < jobs; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= units) return;
        work(i);
      }
    });
  }
  for (std::thread& t : pool) t.join();
}

}  // namespace

void TrialRunner::run(std::size_t trials,
                      const std::function<void(const TrialContext&)>& fn) {
  if (trials == 0) return;
  const auto wall_start = std::chrono::steady_clock::now();

  PerTrialSinks sinks(trials, options_);
  std::vector<std::exception_ptr> errors(trials);

  const auto run_one = [&](std::size_t i) {
    const TrialContext ctx{i, seeds_.seed_for(i)};
    TrialObsScope scope(sinks.metrics[i].get(), sinks.tracers[i].get(),
                        sinks.flights[i].get());
    try {
      fn(ctx);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  };

  run_pool(jobs_for(trials), trials, run_one);
  sinks.merge(seeds_);

  trials_run_ += trials;
  wall_seconds_ += std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();

  for (std::size_t i = 0; i < trials; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
}

void TrialRunner::run_sharded(
    std::size_t trials, std::size_t shard_size, Duration quantum,
    const std::function<std::unique_ptr<LockstepTrial>(const TrialContext&)>&
        make) {
  if (trials == 0) return;
  if (shard_size < 1) shard_size = 1;
  const auto wall_start = std::chrono::steady_clock::now();

  PerTrialSinks sinks(trials, options_);
  std::vector<std::exception_ptr> errors(trials);
  const std::size_t shards = (trials + shard_size - 1) / shard_size;

  const auto run_shard = [&](std::size_t s) {
    const std::size_t begin = s * shard_size;
    const std::size_t count = std::min(shard_size, trials - begin);
    // Shard-slot arrays — the per-trial state walked in lockstep.
    std::vector<std::unique_ptr<LockstepTrial>> live(count);
    std::size_t remaining = 0;
    for (std::size_t j = 0; j < count; ++j) {
      const std::size_t i = begin + j;
      const TrialContext ctx{i, seeds_.seed_for(i)};
      TrialObsScope scope(sinks.metrics[i].get(), sinks.tracers[i].get(),
                          sinks.flights[i].get());
      try {
        live[j] = make(ctx);
        if (live[j] != nullptr) ++remaining;
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
    while (remaining > 0) {
      for (std::size_t j = 0; j < count; ++j) {
        if (live[j] == nullptr) continue;
        const std::size_t i = begin + j;
        TrialObsScope scope(sinks.metrics[i].get(), sinks.tracers[i].get(),
                            sinks.flights[i].get());
        try {
          if (!live[j]->done()) live[j]->advance(quantum);
          if (live[j]->done()) {
            live[j]->finish();
            live[j].reset();  // destructors may emit obs records
            --remaining;
          }
        } catch (...) {
          errors[i] = std::current_exception();
          live[j].reset();
          --remaining;
        }
      }
    }
  };

  run_pool(jobs_for(shards), shards, run_shard);
  sinks.merge(seeds_);

  trials_run_ += trials;
  wall_seconds_ += std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();

  for (std::size_t i = 0; i < trials; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
}

}  // namespace satin::sim
