#include "sim/parallel.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <memory>
#include <thread>
#include <utility>

#include "obs/flight/recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace satin::sim {

TrialObsScope::TrialObsScope(obs::MetricsRegistry* metrics,
                             obs::TraceRecorder* tracer,
                             obs::FlightRecorder* flight)
    : prev_metrics_(obs::metrics()),
      prev_tracer_(obs::tracer()),
      prev_flight_(obs::flight()) {
  obs::install_metrics(metrics);
  obs::install_tracer(tracer);
  obs::install_flight(flight);
}

TrialObsScope::~TrialObsScope() {
  obs::install_metrics(prev_metrics_);
  obs::install_tracer(prev_tracer_);
  obs::install_flight(prev_flight_);
}

TrialRunner::TrialRunner(TrialRunnerOptions options)
    : options_(options), seeds_(options.root_seed) {}

int TrialRunner::hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int TrialRunner::jobs_for(std::size_t trials) const {
  int jobs = options_.jobs > 0 ? options_.jobs : hardware_jobs();
  if (static_cast<std::size_t>(jobs) > trials) {
    jobs = static_cast<int>(trials);
  }
  return jobs < 1 ? 1 : jobs;
}

double TrialRunner::trials_per_second() const {
  return wall_seconds_ > 0.0
             ? static_cast<double>(trials_run_) / wall_seconds_
             : 0.0;
}

void TrialRunner::run(std::size_t trials,
                      const std::function<void(const TrialContext&)>& fn) {
  if (trials == 0) return;
  const auto wall_start = std::chrono::steady_clock::now();

  // The calling thread's sinks decide whether trials record at all; the
  // per-trial instances exist so workers never contend on one registry
  // and so the merged state is independent of completion order.
  obs::MetricsRegistry* parent_metrics = obs::metrics();
  obs::TraceRecorder* parent_tracer = obs::tracer();
  obs::FlightRecorder* parent_flight = obs::flight();

  std::vector<std::unique_ptr<obs::MetricsRegistry>> trial_metrics(trials);
  std::vector<std::unique_ptr<obs::TraceRecorder>> trial_tracers(trials);
  std::vector<std::unique_ptr<obs::FlightRecorder>> trial_flights(trials);
  std::vector<std::exception_ptr> errors(trials);
  for (std::size_t i = 0; i < trials; ++i) {
    if (parent_metrics != nullptr) {
      trial_metrics[i] = std::make_unique<obs::MetricsRegistry>();
    }
    if (parent_tracer != nullptr) {
      trial_tracers[i] =
          std::make_unique<obs::TraceRecorder>(options_.trace_capacity);
    }
    if (parent_flight != nullptr) {
      obs::FlightRecorder::Options fopts;
      fopts.ring = options_.flight_ring;  // in-memory; no path, no spill
      trial_flights[i] = std::make_unique<obs::FlightRecorder>(fopts);
    }
  }

  const auto run_one = [&](std::size_t i) {
    const TrialContext ctx{i, seeds_.seed_for(i)};
    TrialObsScope sinks(trial_metrics[i].get(), trial_tracers[i].get(),
                        trial_flights[i].get());
    try {
      fn(ctx);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  };

  const int jobs = jobs_for(trials);
  if (jobs == 1) {
    for (std::size_t i = 0; i < trials; ++i) run_one(i);
  } else {
    // Fixed-size pool; a shared atomic cursor load-balances uneven trials
    // (duel lengths vary a lot). Claim order is racy, but nothing reads
    // it: every output is keyed by the trial index.
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(jobs));
    for (int w = 0; w < jobs; ++w) {
      pool.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= trials) return;
          run_one(i);
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }

  // Merge in submission order, on the calling thread, after every trial
  // has settled — the one place the parallel and serial paths reconverge.
  for (std::size_t i = 0; i < trials; ++i) {
    if (trial_metrics[i] != nullptr) {
      parent_metrics->merge_from(*trial_metrics[i]);
    }
    if (trial_tracers[i] != nullptr) {
      parent_tracer->append_from(*trial_tracers[i]);
    }
    if (trial_flights[i] != nullptr) {
      // The trial-begin marker is emitted here, by the parent, rather than
      // inside the trial: in ring mode it would be the trial's OLDEST
      // record and the first one overwritten, losing the stream's trial
      // boundaries exactly when the auditor needs them.
      parent_flight->record(obs::FlightKind::kTrialBegin, Time::zero(),
                            static_cast<std::uint64_t>(i),
                            static_cast<int>(i), seeds_.seed_for(i));
      parent_flight->append_from(*trial_flights[i]);
    }
  }

  trials_run_ += trials;
  wall_seconds_ += std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - wall_start)
                       .count();

  for (std::size_t i = 0; i < trials; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
}

}  // namespace satin::sim
