// Base-ISA flavor of the block draw kernels: compiled with the project's
// default target so it runs anywhere the binary does. Always present —
// runtime dispatch falls back to it, and the cross-ISA differential
// tests compare the wider flavors against it.
#define SATIN_KERNEL_NS base
#define SATIN_KERNEL_ISA_NAME "base"
#include "sim/rng_kernels.inc"
