// Discrete-event simulation engine.
//
// The whole reproduction runs on one of these: hardware timers, scheduler
// ticks, introspection scans, prober wake-ups are all events. Events at
// equal timestamps fire in scheduling order (a monotone sequence number
// breaks ties), which keeps runs deterministic for a fixed seed.
//
// Memory model (PR 5): the steady-state event path performs zero heap
// allocations. Event states live in a slab pool (sim/event_pool.h) and
// handles are {index, generation} pairs — a stale handle held after its
// slot was recycled compares unequal and no-ops. Callbacks are stored
// inline in the state (sim/inline_callback.h), and the queue is a
// two-level structure: a timer wheel of 1024 × ~67 µs buckets absorbs
// dense near-future traffic (scheduler ticks, probes, scan steps) with an
// O(1) bucket append, overflowing to the binary heap only for events more
// than ~68 ms out. Ordering is unchanged from the single-heap engine:
// every pop compares full (when, seq), so stdout/--trace=/--metrics=
// stay byte-identical at any --jobs=J.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_pool.h"
#include "sim/inline_callback.h"
#include "sim/time.h"

#ifndef SATIN_OBS_ENABLED
#define SATIN_OBS_ENABLED 1
#endif
#if SATIN_OBS_ENABLED
#include "obs/digest.h"
#endif

namespace satin::sim {

using Callback = InlineCallback;

// Handle to a scheduled event; allows cancellation (used when the secure
// world freezes a core's normal-world events, when timers are reprogrammed,
// and when sleeping threads are woken early). Copyable; copies share the
// engine's slab pool (one shared_ptr copy, never an allocation). Once the
// event fires or its slot is recycled the handle goes stale: pending()
// is false, cancel() is a no-op, when() reads as zero.
class EventHandle {
 public:
  EventHandle() = default;

  // True while the event is scheduled and neither fired nor cancelled.
  bool pending() const;
  // Cancels the event if still pending; no-op otherwise.
  void cancel();
  // The time the event is scheduled to fire at; zero once the handle has
  // gone stale (event fired, or its slot was recycled).
  Time when() const;

 private:
  friend class Engine;
  EventHandle(std::shared_ptr<EventPool> pool, std::uint32_t index,
              std::uint32_t generation)
      : pool_(std::move(pool)), index_(index), generation_(generation) {}
  std::shared_ptr<EventPool> pool_;
  std::uint32_t index_ = 0;
  std::uint32_t generation_ = 0;
};

class Engine {
 public:
  // Construction installs this engine as the log-time source (the newest
  // engine wins); destruction uninstalls it if still current.
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }

  EventHandle schedule_at(Time when, Callback cb);
  EventHandle schedule_after(Duration delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  // Runs the single next event, if any. Returns false when the queue is
  // empty (after skipping cancelled entries). Manual single-stepping is
  // never interrupted: any pending stop request is cleared first, exactly
  // like run_until/run_all do on entry, so request_stop() only ever
  // affects the run_* call it was issued inside of.
  bool step();

  // Runs every event with timestamp <= deadline, then advances the clock to
  // the deadline. Returns the number of events fired.
  std::size_t run_until(Time deadline);
  std::size_t run_for(Duration d) { return run_until(now_ + d); }

  // Drains the queue completely (use only for bounded simulations).
  std::size_t run_all();

  // Callable from inside a callback: makes the enclosing run_* return once
  // the current event finishes. A request issued outside any run is inert:
  // step/run_until/run_all all clear it on entry.
  void request_stop() { stop_requested_ = true; }
  bool stop_requested() const { return stop_requested_; }

  std::size_t pending_count() const { return pool_->pending(); }
  std::uint64_t events_fired() const { return fired_; }

  // --- Engine self-metrics (see obs/session.h) ---------------------------
  // Deepest the event queue has ever been (including cancelled entries).
  std::size_t queue_high_water() const { return queue_high_water_; }
  // Cancelled entries removed without firing — popped and skipped, or
  // swept out by lazy compaction.
  std::uint64_t cancelled_popped() const { return cancelled_popped_; }
  // Cancelled entries currently sitting in the queues (diagnostics).
  std::size_t cancelled_pending() const { return pool_->cancelled_live(); }
  // Lazy compaction sweeps performed (diagnostics/tests).
  std::uint64_t compactions() const { return compactions_; }
  // Host wall-clock seconds spent inside run_until/run_all; with now() it
  // yields wall-time per simulated second.
  double wall_seconds() const { return wall_seconds_; }

  // --- Memory-model self-metrics (all deterministic for a fixed event
  // sequence, so they are safe to merge across --jobs workers) -----------
  // Deepest simultaneous slab-pool occupancy.
  std::size_t pool_high_water() const { return pool_->occupancy_high_water(); }
  // Slabs the pool allocated (1 == zero steady-state growth after warmup).
  std::uint64_t pool_slab_grows() const { return pool_->slab_grows(); }
  // Allocations served by recycling a previously released state.
  std::uint64_t pool_reuses() const { return pool_->reuses(); }
  // Scheduled callbacks stored inline vs spilled to a heap fallback.
  std::uint64_t callbacks_inline() const { return cb_inline_; }
  std::uint64_t callback_fallbacks() const { return cb_fallback_; }
  // Events admitted to the near-future wheel vs the far-future heap.
  std::uint64_t wheel_scheduled() const { return wheel_scheduled_; }
  std::uint64_t heap_scheduled() const { return heap_scheduled_; }

#if SATIN_OBS_ENABLED
  // Queue depth sampled at every dispatch into a mergeable log-bucket
  // digest (obs/digest.h). Owned by the engine rather than routed through
  // the metrics slot so the per-event cost is a few integer bit ops, not
  // a string-map lookup; obs/session.h folds it into the registry as
  // "engine.queue_depth". Deterministic for a fixed schedule, so trials
  // merge bit-identically at any --jobs. Compiled out with the rest of
  // the instrumentation under -DSATIN_ENABLE_OBS=OFF.
  const obs::QuantileDigest& queue_depth_digest() const {
    return queue_depth_digest_;
  }
#endif

  // Timer-wheel geometry: 1024 buckets of 2^26 ps (~67.1 µs) give a
  // ~68.7 ms horizon — comfortably past the 4 ms / 250 Hz scheduler tick,
  // timer reprogramming and probe cadences that dominate event traffic,
  // while second-scale watchdogs and introspection periods overflow to
  // the heap. Both are powers of two so bucket mapping is shift + mask.
  // Public so tests and benches can phrase traffic in bucket units.
  static constexpr int kBucketShift = 26;
  static constexpr std::size_t kWheelBuckets = 1024;

 private:
  struct QueueEntry {
    Time when;
    std::uint64_t seq;
    std::uint32_t index;  // slab-pool slot owning the callback/state
    bool operator>(const QueueEntry& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  static constexpr std::uint64_t kWheelMask = kWheelBuckets - 1;
  // Sentinel for "earliest non-empty bucket unknown, rescan the bitmap".
  static constexpr std::uint64_t kNoBucket = ~0ull;

  static std::uint64_t bucket_of(Time t) {
    return static_cast<std::uint64_t>(t.ps()) >> kBucketShift;
  }

  bool fire_next(Time limit);
  // Pops cancelled entries off the drain/heap tops and loads every wheel
  // bucket that could contain the next event, until both tops are live
  // and provably minimal.
  void settle_tops(Time limit);
  // Moves bucket `abs` into the drain heap and advances the cursor.
  void load_bucket(std::uint64_t abs);
  // Earliest non-empty absolute bucket (valid only when wheel_count_ > 0).
  std::uint64_t next_nonempty_bucket() const;
  // Sweeps cancelled entries out of the far heap and re-heapifies; called
  // when they outnumber the live ones (amortized O(1) per event).
  void compact();

  void bitmap_set(std::uint64_t abs) {
    bitmap_[(abs & kWheelMask) >> 6] |= 1ull << (abs & 63);
  }
  void bitmap_clear(std::uint64_t abs) {
    bitmap_[(abs & kWheelMask) >> 6] &= ~(1ull << (abs & 63));
  }

  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
  std::uint64_t cancelled_popped_ = 0;
  std::uint64_t compactions_ = 0;
  std::size_t queue_high_water_ = 0;
  double wall_seconds_ = 0.0;
  bool stop_requested_ = false;

  std::uint64_t cb_inline_ = 0;
  std::uint64_t cb_fallback_ = 0;
  std::uint64_t wheel_scheduled_ = 0;
  std::uint64_t heap_scheduled_ = 0;

#if SATIN_OBS_ENABLED
  obs::QuantileDigest queue_depth_digest_;
#endif

  // Shared with every handle so a handle outliving the engine still finds
  // live pool state to (no-)op against.
  std::shared_ptr<EventPool> pool_ = std::make_shared<EventPool>();

  // Far-future min-heap (std::push_heap/pop_heap over a vector ordered by
  // operator>), plus a retained scratch buffer so compaction sweeps do
  // not allocate in steady state.
  std::vector<QueueEntry> heap_;
  std::vector<QueueEntry> compact_scratch_;

  // Near-future wheel: buckets[abs & mask] holds the unsorted entries of
  // absolute bucket `abs`, for abs in [cursor_, cursor_ + kWheelBuckets).
  // Buckets below cursor_ have been loaded into drain_, a (when, seq)
  // min-heap that also absorbs late arrivals for already-loaded buckets.
  // Bucket vectors and drain_ retain capacity, so the steady state runs
  // allocation-free.
  std::vector<std::vector<QueueEntry>> wheel_{kWheelBuckets};
  std::vector<QueueEntry> drain_;
  std::uint64_t bitmap_[kWheelBuckets / 64] = {};
  std::uint64_t cursor_ = 0;    // absolute bucket index
  std::size_t wheel_count_ = 0; // entries in buckets (excluding drain_)
  // Memoized next_nonempty_bucket() result so the bitmap scan runs once
  // per bucket load, not once per fired event; kNoBucket = stale.
  mutable std::uint64_t next_bucket_cache_ = kNoBucket;
};

}  // namespace satin::sim
