// Discrete-event simulation engine.
//
// The whole reproduction runs on one of these: hardware timers, scheduler
// ticks, introspection scans, prober wake-ups are all events. Events at
// equal timestamps fire in scheduling order (a monotone sequence number
// breaks ties), which keeps runs deterministic for a fixed seed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "sim/time.h"

namespace satin::sim {

using Callback = std::function<void()>;

// Handle to a scheduled event; allows cancellation (used when the secure
// world freezes a core's normal-world events, when timers are reprogrammed,
// and when sleeping threads are woken early).
class EventHandle {
 public:
  EventHandle() = default;

  // True while the event is scheduled and neither fired nor cancelled.
  bool pending() const;
  // Cancels the event if still pending; no-op otherwise.
  void cancel();
  // The time the event was scheduled to fire at.
  Time when() const;

 private:
  friend class Engine;
  struct State {
    Callback callback;
    Time when;
    bool cancelled = false;
    bool fired = false;
  };
  explicit EventHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }

  EventHandle schedule_at(Time when, Callback cb);
  EventHandle schedule_after(Duration delay, Callback cb) {
    return schedule_at(now_ + delay, cb);
  }

  // Runs the single next event, if any. Returns false when the queue is
  // empty (after skipping cancelled entries).
  bool step();

  // Runs every event with timestamp <= deadline, then advances the clock to
  // the deadline. Returns the number of events fired.
  std::size_t run_until(Time deadline);
  std::size_t run_for(Duration d) { return run_until(now_ + d); }

  // Drains the queue completely (use only for bounded simulations).
  std::size_t run_all();

  // Callable from inside a callback: makes the enclosing run_* return once
  // the current event finishes.
  void request_stop() { stop_requested_ = true; }

  std::size_t pending_count() const;
  std::uint64_t events_fired() const { return fired_; }

 private:
  struct QueueEntry {
    Time when;
    std::uint64_t seq;
    std::shared_ptr<EventHandle::State> state;
    bool operator>(const QueueEntry& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  bool fire_next(Time limit);

  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
  bool stop_requested_ = false;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue_;
};

}  // namespace satin::sim
