// Discrete-event simulation engine.
//
// The whole reproduction runs on one of these: hardware timers, scheduler
// ticks, introspection scans, prober wake-ups are all events. Events at
// equal timestamps fire in scheduling order (a monotone sequence number
// breaks ties), which keeps runs deterministic for a fixed seed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/time.h"

namespace satin::sim {

using Callback = std::function<void()>;

// Handle to a scheduled event; allows cancellation (used when the secure
// world freezes a core's normal-world events, when timers are reprogrammed,
// and when sleeping threads are woken early).
class EventHandle {
 public:
  EventHandle() = default;

  // True while the event is scheduled and neither fired nor cancelled.
  bool pending() const;
  // Cancels the event if still pending; no-op otherwise.
  void cancel();
  // The time the event was scheduled to fire at.
  Time when() const;

 private:
  friend class Engine;
  struct State {
    Callback callback;
    Time when;
    bool cancelled = false;
    bool fired = false;
    // Engine's tally of cancelled-but-still-queued entries; non-null only
    // while the entry sits in the heap. Lets pending_count() be O(1) and
    // triggers lazy compaction without scanning.
    std::size_t* cancelled_in_heap = nullptr;
  };
  explicit EventHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

class Engine {
 public:
  // Construction installs this engine as the log-time source (the newest
  // engine wins); destruction uninstalls it if still current.
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }

  EventHandle schedule_at(Time when, Callback cb);
  EventHandle schedule_after(Duration delay, Callback cb) {
    return schedule_at(now_ + delay, cb);
  }

  // Runs the single next event, if any. Returns false when the queue is
  // empty (after skipping cancelled entries). Manual single-stepping is
  // never interrupted: any pending stop request is cleared first, exactly
  // like run_until/run_all do on entry, so request_stop() only ever
  // affects the run_* call it was issued inside of.
  bool step();

  // Runs every event with timestamp <= deadline, then advances the clock to
  // the deadline. Returns the number of events fired.
  std::size_t run_until(Time deadline);
  std::size_t run_for(Duration d) { return run_until(now_ + d); }

  // Drains the queue completely (use only for bounded simulations).
  std::size_t run_all();

  // Callable from inside a callback: makes the enclosing run_* return once
  // the current event finishes. A request issued outside any run is inert:
  // step/run_until/run_all all clear it on entry.
  void request_stop() { stop_requested_ = true; }
  bool stop_requested() const { return stop_requested_; }

  std::size_t pending_count() const;
  std::uint64_t events_fired() const { return fired_; }

  // --- Engine self-metrics (see obs/session.h) ---------------------------
  // Deepest the event queue has ever been (including cancelled entries).
  std::size_t queue_high_water() const { return queue_high_water_; }
  // Cancelled entries removed without firing — popped and skipped, or
  // swept out by lazy compaction.
  std::uint64_t cancelled_popped() const { return cancelled_popped_; }
  // Cancelled entries currently sitting in the heap (diagnostics).
  std::size_t cancelled_pending() const { return cancelled_in_heap_; }
  // Lazy compaction sweeps performed (diagnostics/tests).
  std::uint64_t compactions() const { return compactions_; }
  // Host wall-clock seconds spent inside run_until/run_all; with now() it
  // yields wall-time per simulated second.
  double wall_seconds() const { return wall_seconds_; }

 private:
  struct QueueEntry {
    Time when;
    std::uint64_t seq;
    std::shared_ptr<EventHandle::State> state;
    bool operator>(const QueueEntry& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  bool fire_next(Time limit);
  // Removes a popped/compacted entry's back-reference and keeps the
  // cancelled tally exact.
  void release_entry(const QueueEntry& entry);
  // Sweeps cancelled entries out and re-heapifies; called when they
  // outnumber the live ones (amortized O(1) per scheduled event).
  void compact();

  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
  std::uint64_t cancelled_popped_ = 0;
  std::uint64_t compactions_ = 0;
  std::size_t queue_high_water_ = 0;
  double wall_seconds_ = 0.0;
  bool stop_requested_ = false;
  // Inspectable min-heap (std::push_heap/pop_heap over a vector, ordered
  // by operator> like the old std::priority_queue/std::greater pair).
  // Owning the container directly makes pending_count() O(1) — the old
  // accessor copied the whole priority_queue to count live entries — and
  // enables lazy compaction of cancelled entries.
  std::vector<QueueEntry> heap_;
  std::size_t cancelled_in_heap_ = 0;
};

}  // namespace satin::sim
