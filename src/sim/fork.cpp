#include "sim/fork.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <stdexcept>
#include <thread>

#include <poll.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "obs/flight/audit.h"
#include "obs/flight/recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/parallel.h"

namespace satin::sim {

namespace {

constexpr int kBackoffBaseMs = 25;
constexpr int kBackoffCapMs = 500;

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Raw-fd line write; children must never touch inherited stdio buffers.
bool write_line(int fd, const std::string& line) {
  std::string out = line;
  out.push_back('\n');
  const char* p = out.data();
  std::size_t left = out.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

std::string sanitize_message(std::string msg) {
  for (char& c : msg) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return msg;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool parse_hex16(std::string_view s, std::uint64_t& out) {
  if (s.size() != 16) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  out = v;
  return true;
}

}  // namespace

std::uint64_t ForkServer::record_checksum(const std::string& payload) {
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : payload) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

struct ForkServer::Slot {
  pid_t pid = -1;
  int fd = -1;  // child's result pipe (read end)
  std::size_t branch = 0;
  std::string buf;
  double last_activity = 0.0;
  bool resolved = false;  // an "R"/"E" record landed; EOF is expected
};

ForkServer::ForkServer(ForkServerOptions options)
    : options_(std::move(options)) {}

ForkServer::~ForkServer() {
  // run() reaps everything it forked; nothing to do beyond scratch
  // cleanup if the caller never merged.
  if (!scratch_.empty() && merged_) ::rmdir(scratch_.c_str());
}

std::string ForkServer::metrics_path_for(std::size_t branch) const {
  if (options_.metrics_path) return options_.metrics_path(branch);
  return artifacts_dir_ + "/branch_" + std::to_string(branch) + ".met";
}

std::string ForkServer::flight_path_for(std::size_t branch) const {
  if (options_.flight_path) return options_.flight_path(branch);
  return artifacts_dir_ + "/branch_" + std::to_string(branch) + ".flt";
}

void ForkServer::remove_artifacts(std::size_t branch) const {
  if (want_metrics_) ::unlink(metrics_path_for(branch).c_str());
  if (want_flight_) ::unlink(flight_path_for(branch).c_str());
}

void ForkServer::child_main(
    std::size_t branch, bool first_attempt, int fd,
    const std::function<std::string(std::size_t)>& body) {
  // A dead parent must kill us on the next pipe write, not wedge us.
  signal(SIGPIPE, SIG_DFL);
  if (!write_line(fd, "B " + std::to_string(branch))) _exit(3);

  if (first_attempt &&
      options_.chaos_kill_branch == static_cast<int>(branch)) {
    raise(SIGKILL);
  }
  if (first_attempt &&
      options_.chaos_hang_branch == static_cast<int>(branch)) {
    for (;;) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::string payload;
  std::string error;
  bool failed = false;

  const std::string mpath = want_metrics_ ? metrics_path_for(branch) : "";
  const std::string fpath = want_flight_ ? flight_path_for(branch) : "";

  if (options_.inherit_sinks) {
    // The installed sinks are this process's COW copies of the caller's
    // warm-prefix recorders: keep recording into them, then persist the
    // whole stream (prefix + branch). Traces are not transportable over
    // the pipe — drop the inherited tracer so records aren't lost
    // silently into a copy (the parent warns once).
    obs::install_tracer(nullptr);
    try {
      payload = body(branch);
    } catch (const std::exception& e) {
      failed = true;
      error = e.what();
    } catch (...) {
      failed = true;
      error = "unknown exception";
    }
    // Artifacts are persisted even for a failed branch: the unforked
    // TrialRunner merges partially-recorded sinks before rethrowing.
    if (auto* m = obs::metrics(); m != nullptr && want_metrics_) {
      std::string err;
      if (!m->save_binary(mpath, &err)) _exit(4);
    }
    if (auto* f = obs::flight(); f != nullptr && want_flight_) {
      if (!f->save_to(fpath)) _exit(4);
    }
  } else {
    std::unique_ptr<obs::MetricsRegistry> metrics;
    std::unique_ptr<obs::FlightRecorder> flight;
    if (want_metrics_) metrics = std::make_unique<obs::MetricsRegistry>();
    if (want_flight_) {
      obs::FlightRecorder::Options fopts;
      fopts.path = fpath;
      fopts.ring = options_.flight_ring;
      flight = std::make_unique<obs::FlightRecorder>(fopts);
    }
    TrialObsScope scope(metrics.get(), nullptr, flight.get());
    try {
      payload = body(branch);
    } catch (const std::exception& e) {
      failed = true;
      error = e.what();
    } catch (...) {
      failed = true;
      error = "unknown exception";
    }
    // Durable artifacts BEFORE the result record, so a record implies
    // mergeable files (the campaign worker discipline).
    if (flight != nullptr && !flight->close()) _exit(4);
    if (metrics != nullptr) {
      std::string err;
      if (!metrics->save_binary(mpath, &err)) _exit(4);
    }
  }

  std::string line;
  if (failed) {
    line = "E " + std::to_string(branch) + " " + sanitize_message(error);
  } else {
    std::string crc = hex16(record_checksum(payload));
    if (first_attempt &&
        options_.chaos_torn_branch == static_cast<int>(branch)) {
      // Simulate a torn pipe record: checksum no longer matches.
      crc[0] = crc[0] == '0' ? '1' : '0';
    }
    line = "R " + std::to_string(branch) + " crc=" + crc + " " + payload;
  }
  write_line(fd, line);
  _exit(failed ? 1 : 0);
}

bool ForkServer::spawn(std::size_t branch, std::vector<Slot>& active,
                       std::vector<int>& attempts) {
  // A crashed prior attempt may have left partial artifacts; they must
  // never leak into the merge.
  remove_artifacts(branch);

  int fds[2];
  if (::pipe(fds) != 0) {
    outcomes_[branch].error = "pipe() failed";
    return false;
  }
  const bool first_attempt = attempts[branch] == 0;
  ++attempts[branch];
  // The child inherits our stdio buffers; flush so it can't re-flush
  // half-written output (it uses _exit, but body() code could flush).
  std::fflush(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    outcomes_[branch].error = "fork() failed";
    return false;
  }
  if (pid == 0) {
    ::close(fds[0]);
    // Close sibling pipes so one child's death can't be masked by
    // another holding the write end open.
    for (const Slot& s : active) {
      if (s.fd >= 0) ::close(s.fd);
    }
    child_main(branch, first_attempt, fds[1],
               *child_body_);  // never returns
  }
  ::close(fds[1]);
  Slot slot;
  slot.pid = pid;
  slot.fd = fds[0];
  slot.branch = branch;
  slot.last_activity = now_seconds();
  active.push_back(std::move(slot));
  ++forks_;
  return true;
}

std::vector<ForkOutcome> ForkServer::run(
    std::size_t branches, const std::function<std::string(std::size_t)>& body) {
  if (ran_) throw std::logic_error("ForkServer::run: single-use");
  ran_ = true;
  outcomes_.assign(branches, ForkOutcome{});
  if (branches == 0) return outcomes_;
  const double wall_start = now_seconds();

  want_metrics_ = options_.always_metrics || obs::metrics() != nullptr;
  want_flight_ = obs::flight() != nullptr;
  if (obs::tracer() != nullptr) {
    std::fprintf(stderr,
                 "fork: per-branch traces are not captured across fork(); "
                 "run unforked for --trace\n");
  }
  artifacts_dir_ = options_.scratch_dir;
  const bool need_dir = (want_metrics_ && !options_.metrics_path) ||
                        (want_flight_ && !options_.flight_path);
  if (need_dir && artifacts_dir_.empty()) {
    const char* tmp = std::getenv("TMPDIR");
    std::string templ =
        std::string(tmp != nullptr && *tmp != '\0' ? tmp : "/tmp") +
        "/satin-fork-XXXXXX";
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    if (::mkdtemp(buf.data()) == nullptr) {
      for (auto& o : outcomes_) o.error = "mkdtemp() failed";
      return outcomes_;
    }
    scratch_ = buf.data();
    artifacts_dir_ = scratch_;
  }

  int jobs = options_.jobs > 0 ? options_.jobs : TrialRunner::hardware_jobs();
  if (static_cast<std::size_t>(jobs) > branches) {
    jobs = static_cast<int>(branches);
  }
  if (jobs < 1) jobs = 1;

  child_body_ = &body;
  std::deque<std::size_t> queue;
  for (std::size_t i = 0; i < branches; ++i) queue.push_back(i);
  std::vector<int> attempts(branches, 0);
  std::vector<Slot> active;
  active.reserve(static_cast<std::size_t>(jobs));

  const auto fail_attempt = [&](Slot& slot, bool timed_out,
                                const char* reason) {
    if (timed_out && slot.pid > 0) ::kill(slot.pid, SIGKILL);
    if (slot.pid > 0) {
      int status = 0;
      ::waitpid(slot.pid, &status, 0);
      slot.pid = -1;
    }
    if (slot.fd >= 0) {
      ::close(slot.fd);
      slot.fd = -1;
    }
    ++crashes_;
    if (timed_out) ++timeouts_;
    const std::size_t branch = slot.branch;
    if (attempts[branch] > options_.max_retries) {
      outcomes_[branch].ok = false;
      outcomes_[branch].error = "branch " + std::to_string(branch) + " " +
                                reason + " after " +
                                std::to_string(attempts[branch]) +
                                " attempt(s)";
      outcomes_[branch].attempts = attempts[branch];
      remove_artifacts(branch);
      return;
    }
    ++retries_;
    // Exponential backoff before the re-fork: a systematic crash loop
    // shouldn't melt the host while it burns its budget.
    const int shift = std::min(attempts[branch] - 1, 8);
    std::this_thread::sleep_for(std::chrono::milliseconds(
        std::min(kBackoffCapMs, kBackoffBaseMs << shift)));
    queue.push_front(branch);
  };

  // One line of child protocol. Returns false when the slot must be
  // treated as crashed (kill + retry ladder).
  const auto handle_line = [&](Slot& slot, const std::string& line) -> bool {
    slot.last_activity = now_seconds();
    if (line.rfind("B ", 0) == 0) return true;  // heartbeat
    if (line.rfind("E ", 0) == 0) {
      std::size_t sp = line.find(' ', 2);
      const std::string idx_str =
          line.substr(2, sp == std::string::npos ? std::string::npos : sp - 2);
      if (idx_str != std::to_string(slot.branch)) return false;
      ForkOutcome& out = outcomes_[slot.branch];
      out.ok = false;
      out.error = sp == std::string::npos ? "branch failed"
                                          : line.substr(sp + 1);
      out.attempts = attempts[slot.branch];
      out.has_artifacts = true;  // child persisted sinks before "E"
      slot.resolved = true;
      return true;
    }
    if (line.rfind("R ", 0) == 0) {
      const std::size_t sp = line.find(' ', 2);
      if (sp == std::string::npos) return false;
      if (line.substr(2, sp - 2) != std::to_string(slot.branch)) return false;
      if (line.compare(sp + 1, 4, "crc=") != 0) return false;
      const std::size_t crc_begin = sp + 5;
      const std::size_t crc_end = line.find(' ', crc_begin);
      std::uint64_t crc = 0;
      if (crc_end == std::string::npos ||
          !parse_hex16(
              std::string_view(line).substr(crc_begin, crc_end - crc_begin),
              crc)) {
        return false;
      }
      const std::string payload = line.substr(crc_end + 1);
      if (record_checksum(payload) != crc) return false;  // torn record
      ForkOutcome& out = outcomes_[slot.branch];
      out.ok = true;
      out.payload = payload;
      out.error.clear();
      out.attempts = attempts[slot.branch];
      out.has_artifacts = true;
      slot.resolved = true;
      return true;
    }
    return false;  // protocol violation
  };

  while (!queue.empty() || !active.empty()) {
    while (!queue.empty() &&
           active.size() < static_cast<std::size_t>(jobs)) {
      const std::size_t branch = queue.front();
      queue.pop_front();
      spawn(branch, active, attempts);  // failure recorded in outcomes_
    }
    if (active.empty()) break;  // spawns failed outright

    std::vector<pollfd> fds;
    fds.reserve(active.size());
    double next_deadline = now_seconds() + 60.0;
    for (const Slot& slot : active) {
      fds.push_back(pollfd{slot.fd, POLLIN, 0});
      next_deadline =
          std::min(next_deadline, slot.last_activity + options_.timeout_s);
    }
    const double wait_s = next_deadline - now_seconds();
    const int timeout_ms =
        wait_s <= 0.0
            ? 0
            : static_cast<int>(std::min(wait_s * 1000.0, 60000.0)) + 10;
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) break;

    // Sweep slots newest-last; erase finished ones after the pass.
    std::vector<std::size_t> dead;
    for (std::size_t k = 0; k < active.size(); ++k) {
      Slot& slot = active[k];
      bool crashed = false;
      bool eof = false;
      if (ready > 0 &&
          (fds[k].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        char chunk[4096];
        const ssize_t n = ::read(slot.fd, chunk, sizeof(chunk));
        if (n > 0) {
          slot.buf.append(chunk, static_cast<std::size_t>(n));
        } else if (n == 0) {
          eof = true;
        }
        std::size_t nl;
        while (!crashed &&
               (nl = slot.buf.find('\n')) != std::string::npos) {
          const std::string line = slot.buf.substr(0, nl);
          slot.buf.erase(0, nl + 1);
          if (!handle_line(slot, line)) crashed = true;
        }
      }
      if (!crashed && !eof &&
          now_seconds() - slot.last_activity > options_.timeout_s &&
          !slot.resolved) {
        std::fprintf(stderr,
                     "fork: branch %zu (pid %d) wedged for %.1fs, killing\n",
                     slot.branch, static_cast<int>(slot.pid),
                     options_.timeout_s);
        fail_attempt(slot, /*timed_out=*/true, "timed out");
        dead.push_back(k);
        continue;
      }
      if (crashed) {
        if (slot.pid > 0) ::kill(slot.pid, SIGKILL);
        fail_attempt(slot, /*timed_out=*/false, "sent a corrupt record");
        dead.push_back(k);
        continue;
      }
      if (eof) {
        if (slot.resolved) {
          int status = 0;
          ::waitpid(slot.pid, &status, 0);
          ::close(slot.fd);
          dead.push_back(k);
        } else {
          fail_attempt(slot, /*timed_out=*/false, "crashed");
          dead.push_back(k);
        }
      }
    }
    for (auto it = dead.rbegin(); it != dead.rend(); ++it) {
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(*it));
    }
  }

  child_body_ = nullptr;
  wall_seconds_ += now_seconds() - wall_start;
  return outcomes_;
}

void ForkServer::merge_obs() {
  if (merged_) return;
  merged_ = true;
  obs::MetricsRegistry* metrics = obs::metrics();
  obs::FlightRecorder* flight = obs::flight();
  for (std::size_t i = 0; i < outcomes_.size(); ++i) {
    if (!outcomes_[i].has_artifacts) continue;
    if (metrics != nullptr && want_metrics_) {
      std::string error;
      if (!metrics->load_merge_binary(metrics_path_for(i), &error)) {
        std::fprintf(stderr, "fork: %s (metrics gap)\n", error.c_str());
      }
    }
    if (flight != nullptr && want_flight_) {
      obs::FlightLog log;
      std::string error;
      if (!obs::read_flight_log(flight_path_for(i), log, &error)) {
        std::fprintf(stderr, "fork: %s (flight gap)\n", error.c_str());
      } else {
        // Same convention as TrialRunner's submission-order merge: the
        // parent emits the trial marker, then replays the branch stream.
        const std::size_t global = options_.index_base + i;
        flight->record(obs::FlightKind::kTrialBegin, Time::zero(),
                       static_cast<std::uint64_t>(global),
                       static_cast<int>(global),
                       options_.marker_seed ? options_.marker_seed(global)
                                            : 0);
        obs::replay_flight_log(log, *flight);
      }
    }
    if (!options_.keep_artifacts) remove_artifacts(i);
  }
  if (!scratch_.empty()) ::rmdir(scratch_.c_str());
}

std::vector<std::string> ForkServer::run_collect(
    std::size_t branches, const std::function<std::string(std::size_t)>& body) {
  const std::vector<ForkOutcome> outcomes = run(branches, body);
  merge_obs();
  for (const ForkOutcome& o : outcomes) {
    if (!o.ok) throw std::runtime_error(o.error);
  }
  std::vector<std::string> payloads;
  payloads.reserve(outcomes.size());
  for (const ForkOutcome& o : outcomes) payloads.push_back(o.payload);
  return payloads;
}

}  // namespace satin::sim
