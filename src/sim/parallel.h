// Deterministic parallel trial runner.
//
// Every evaluation in the paper is a Monte-Carlo sweep: N independent
// replicated simulations that differ only in their seed. Those trials
// share nothing — each builds its own Engine/Platform/Scenario — so they
// are embarrassingly parallel. TrialRunner fans them out over a fixed
// pool of --jobs=J std::threads while keeping the result BIT-IDENTICAL
// for any J, including J=1:
//
//  * seeds come from TrialSeedSeq (root seed + trial index only);
//  * every trial runs against its own thread-local MetricsRegistry /
//    TraceRecorder (created only when the calling thread had one
//    installed), merged back in submission order after all trials settle;
//  * results land in submission-order slots, so aggregation code never
//    observes completion order;
//  * exceptions are captured per trial and the first (by submission
//    order) is rethrown once every trial has settled.
//
// Determinism is an acceptance gate, not a hope: the jobs=1 path goes
// through the exact same per-trial-sink + ordered-merge machinery, so a
// diff between jobs=1 and jobs=8 output is a bug by construction.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>
#include <vector>

#include "sim/seed_seq.h"
#include "sim/time.h"

namespace satin::obs {
class MetricsRegistry;
class TraceRecorder;
class FlightRecorder;
}  // namespace satin::obs

namespace satin::sim {

class LockstepTrial;  // sim/batch.h

struct TrialContext {
  std::size_t index = 0;    // submission order, 0-based
  std::uint64_t seed = 0;   // TrialSeedSeq::seed_for(index)
};

// Installs per-trial obs sinks into this thread's slots for the duration
// of one trial; restores whatever the thread had on exit (pool workers
// hold null, the inline jobs=1 path holds the caller's session sinks).
// Shared by TrialRunner's thread workers and the campaign's forked worker
// processes — the one mechanism that keeps a trial's recording private no
// matter where the trial runs.
class TrialObsScope {
 public:
  TrialObsScope(obs::MetricsRegistry* metrics, obs::TraceRecorder* tracer,
                obs::FlightRecorder* flight);
  ~TrialObsScope();
  TrialObsScope(const TrialObsScope&) = delete;
  TrialObsScope& operator=(const TrialObsScope&) = delete;

 private:
  obs::MetricsRegistry* prev_metrics_;
  obs::TraceRecorder* prev_tracer_;
  obs::FlightRecorder* prev_flight_;
};

struct TrialRunnerOptions {
  // Worker threads; <= 0 means one worker per hardware thread. Clamped to
  // the trial count at run time.
  int jobs = 1;
  // Root of the per-trial seed derivation (see sim/seed_seq.h).
  std::uint64_t root_seed = 0x5A71A57ull;
  // Ring capacity of each per-trial TraceRecorder (only allocated when
  // the calling thread has a recorder installed).
  std::size_t trace_capacity = 1u << 20;
  // Ring capacity of each per-trial FlightRecorder (only created when the
  // calling thread has one installed; see obs/flight/recorder.h). 0
  // retains each trial's full stream in memory until the submission-order
  // merge; pass the session's --flight ring value to bound it.
  std::size_t flight_ring = 0;
};

class TrialRunner {
 public:
  explicit TrialRunner(TrialRunnerOptions options = {});

  // Workers actually used by run() for `trials` trials.
  int jobs_for(std::size_t trials) const;
  int jobs() const { return options_.jobs; }
  std::uint64_t root_seed() const { return options_.root_seed; }
  const TrialSeedSeq& seeds() const { return seeds_; }

  // Runs fn once per trial index in [0, trials). fn must not touch state
  // shared with other trials; everything it needs is derived from ctx.
  // Rethrows the first captured trial exception (submission order) after
  // all trials have settled and all obs sinks are merged.
  void run(std::size_t trials, const std::function<void(const TrialContext&)>& fn);

  // Convenience: one result per trial, in submission-order slots. R must
  // be default-constructible.
  template <typename Fn>
  auto run_collect(std::size_t trials, Fn&& fn)
      -> std::vector<std::decay_t<std::invoke_result_t<Fn&, const TrialContext&>>> {
    using R = std::decay_t<std::invoke_result_t<Fn&, const TrialContext&>>;
    std::vector<R> results(trials);
    run(trials, [&results, &fn](const TrialContext& ctx) {
      results[ctx.index] = fn(ctx);
    });
    return results;
  }

  // Sharded lockstep execution (the engine under sim::BatchRunner):
  // trials are grouped into consecutive shards of `shard_size`; a worker
  // claims a whole shard, constructs its trials via `make`, and advances
  // them round-robin, one `quantum` of simulated time each, until all
  // finish. Obs sinks stay PER TRIAL — installed around every construct /
  // advance / finish call — and the final merge is run()'s
  // submission-order merge, so for any shard size the output is
  // byte-identical to run() provided each trial is insensitive to
  // run_for slicing (event-engine trials are by construction).
  // Exceptions are captured per trial; a throwing trial is destroyed
  // (under its sinks) and its shard-mates continue.
  void run_sharded(
      std::size_t trials, std::size_t shard_size, Duration quantum,
      const std::function<std::unique_ptr<LockstepTrial>(const TrialContext&)>&
          make);

  // Host wall-clock spent inside run(), cumulative across calls, and the
  // trial throughput it implies. Host timing is intentionally NOT written
  // into any MetricsRegistry: metrics snapshots must stay bit-identical
  // across worker counts, and wall time never is.
  double wall_seconds() const { return wall_seconds_; }
  std::size_t trials_run() const { return trials_run_; }
  double trials_per_second() const;

  // One worker per hardware thread (>= 1).
  static int hardware_jobs();

 private:
  TrialRunnerOptions options_;
  TrialSeedSeq seeds_;
  double wall_seconds_ = 0.0;
  std::size_t trials_run_ = 0;
};

}  // namespace satin::sim
