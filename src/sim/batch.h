// Batched lockstep trial execution.
//
// A duel trial spends most of its cycles drawing calibrated jitter; the
// batched draw pipeline (sim/rng.h) makes those draws cheap by
// precomputing them in vectorized blocks. BatchRunner is the harness that
// carries a whole sweep on that pipeline: trials are grouped into shards
// of K, a worker owns a shard, and the shard's trials advance in lockstep
// — round-robin, one time quantum each — so K trials' worth of per-trial
// stream state stays resident and every refill amortizes across a long
// run of consumption (structure-of-arrays at the shard level: the state
// that varies per trial lives in arrays indexed by shard slot, walked in
// one engine pass per quantum).
//
// Identity is the design constraint, not an afterthought: each trial owns
// its engine and obs sinks, run_for slicing is inert in the event engine,
// and the submission-order merge is shared with TrialRunner::run() — so
// --batch=K output is byte-identical to --batch=1 for every K, which CI
// enforces. The scalar unsharded path stays the run of record.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/parallel.h"
#include "sim/time.h"

namespace satin::sim {

// One trial a BatchRunner can interleave with its shard-mates. Calls are
// always made under the trial's own obs sinks; the trial must tolerate
// its simulated time advancing in quanta (pure event-engine trials do by
// construction).
class LockstepTrial {
 public:
  virtual ~LockstepTrial() = default;
  // True once the trial has nothing left to simulate. Checked before and
  // after every advance().
  virtual bool done() const = 0;
  // Advance simulated time by (at most) one quantum.
  virtual void advance(Duration quantum) = 0;
  // Called exactly once, after done() turns true: produce results (write
  // them wherever the factory wired them to go).
  virtual void finish() = 0;
};

struct BatchRunnerOptions {
  // Trials per lockstep shard. 1 degenerates to TrialRunner::run()'s
  // shape (still via the sharded code path).
  std::size_t batch = 1;
  // Lockstep slice of simulated time (matches run_duel's historical 1 s
  // stride so sliced and unsliced trials run the same event sequence).
  Duration quantum = Duration::from_sec(1);
  // Worker pool / seeds / per-trial sink capacities (TrialRunner
  // semantics; jobs is clamped to the shard count).
  TrialRunnerOptions runner;
};

class BatchRunner {
 public:
  explicit BatchRunner(BatchRunnerOptions options = {});

  using MakeTrial =
      std::function<std::unique_ptr<LockstepTrial>(const TrialContext&)>;

  // Builds one trial per index in [0, trials) via `make` and runs them in
  // lockstep shards. Obs sinks, seeds, ordered merge, and first-error
  // rethrow all behave exactly like TrialRunner::run().
  void run(std::size_t trials, const MakeTrial& make);

  std::size_t batch() const { return options_.batch; }
  int jobs_for(std::size_t trials) const;
  double wall_seconds() const { return runner_.wall_seconds(); }
  std::size_t trials_run() const { return runner_.trials_run(); }

 private:
  BatchRunnerOptions options_;
  TrialRunner runner_;
};

}  // namespace satin::sim
