// Minimal leveled trace log.
//
// Simulation components narrate world switches, scan starts, detections
// and evasions through this; tests can capture the stream, and examples
// raise the level for a readable play-by-play. Off (kWarn) by default so
// benches stay quiet.
#pragma once

#include <sstream>
#include <string>

#include "sim/time.h"

namespace satin::sim {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

// Sink hook (for tests); nullptr restores stderr. Sinks receive the raw
// message (no time prefix) so test expectations stay stable.
using LogSink = void (*)(LogLevel, const std::string&);
void set_log_sink(LogSink sink);

// Installable simulated-clock hook. While a clock is installed the default
// stderr sink prefixes every line with the current simulated time, e.g.
// "[t=12.345ms]". Engine installs itself on construction (newest engine
// wins) and uninstalls on destruction, so components never wire this by
// hand. A null fn disables the prefix. The hook is thread-local: each
// parallel trial worker's engine stamps only that worker's log lines.
using LogClockFn = Time (*)(const void* ctx);
void set_log_clock(LogClockFn fn, const void* ctx);
// Context registered with the current clock (null when none); lets an
// engine uninstall only itself.
const void* log_clock_ctx();
// "[t=12.345ms] " while a clock is installed, "" otherwise.
std::string log_time_prefix();

namespace detail {
void emit(LogLevel level, const std::string& msg);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { emit(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(log_level());
}

}  // namespace satin::sim

// Usage: SATIN_LOG(kInfo) << "core " << id << " enters secure world";
// The stream expression is only evaluated when the level is enabled.
#define SATIN_LOG(level)                                              \
  if (!::satin::sim::log_enabled(::satin::sim::LogLevel::level)) {    \
  } else                                                              \
    ::satin::sim::detail::LogLine(::satin::sim::LogLevel::level)
