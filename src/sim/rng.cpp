#include "sim/rng.h"

namespace satin::sim {

namespace {
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}
}  // namespace

Rng Rng::fork(std::string_view name) {
  const std::uint64_t mixed = fnv1a(name) ^ next_u64();
  return Rng(mixed);
}

double Rng::truncated_normal(double mean, double stddev, double lo,
                             double hi) {
  for (int i = 0; i < 1024; ++i) {
    const double x = normal(mean, stddev);
    if (x >= lo && x <= hi) return x;
  }
  // Degenerate parameterization; clamp rather than loop forever.
  return std::clamp(mean, lo, hi);
}

double Rng::triangular(double lo, double mode, double hi) {
  const double u = uniform();
  const double c = (mode - lo) / (hi - lo);
  if (u < c) return lo + std::sqrt(u * (hi - lo) * (mode - lo));
  return hi - std::sqrt((1.0 - u) * (hi - lo) * (hi - mode));
}

}  // namespace satin::sim
