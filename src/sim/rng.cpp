#include "sim/rng.h"

#include <atomic>

namespace satin::sim {

namespace {
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}
}  // namespace

void Mt19937_64::refill() {
  constexpr std::uint64_t kUpperMask = 0xFFFFFFFF80000000ull;
  constexpr std::uint64_t kLowerMask = 0x7FFFFFFFull;
  constexpr std::uint64_t kMatrixA = 0xB5026F5AA96619E9ull;
  // The standard twist, split into two dependence-free passes plus the
  // wrap-around word so the vectorizer can run both loops wide. The
  // branchless (word & 1) * kMatrixA is value-identical to the spec's
  // conditional xor.
  for (unsigned k = 0; k < kStateSize - kMid; ++k) {
    const std::uint64_t y =
        (state_[k] & kUpperMask) | (state_[k + 1] & kLowerMask);
    state_[k] = state_[k + kMid] ^ (y >> 1) ^ ((state_[k + 1] & 1) * kMatrixA);
  }
  for (unsigned k = kStateSize - kMid; k < kStateSize - 1; ++k) {
    const std::uint64_t y =
        (state_[k] & kUpperMask) | (state_[k + 1] & kLowerMask);
    state_[k] =
        state_[k - (kStateSize - kMid)] ^ (y >> 1) ^
        ((state_[k + 1] & 1) * kMatrixA);
  }
  const std::uint64_t y =
      (state_[kStateSize - 1] & kUpperMask) | (state_[0] & kLowerMask);
  state_[kStateSize - 1] =
      state_[kMid - 1] ^ (y >> 1) ^ ((state_[0] & 1) * kMatrixA);
  next_ = 0;
}

void Mt19937_64::generate_block(result_type* out, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    if (next_ >= kStateSize) refill();
    const std::size_t run =
        std::min<std::size_t>(n - done, kStateSize - next_);
    const result_type* src = state_ + next_;
    // Pure bit ops over a contiguous run: vectorizes at this TU's -O3.
    for (std::size_t j = 0; j < run; ++j) {
      result_type y = src[j];
      y ^= (y >> 29) & 0x5555555555555555ull;
      y ^= (y << 17) & 0x71D67FFFEDA60000ull;
      y ^= (y << 37) & 0xFFF7EEE000000000ull;
      y ^= y >> 43;
      out[done + j] = y;
    }
    next_ += static_cast<unsigned>(run);
    done += run;
  }
}

Rng Rng::fork(std::string_view name) {
  const std::uint64_t mixed = fnv1a(name) ^ next_u64();
  return Rng(mixed);
}

void Rng::perturb(std::string_view name, std::uint64_t salt) {
  // Same mixing discipline as fork(), with the salt spread by the golden
  // ratio so nearby salts land on distant seeds.
  engine_.seed(fnv1a(name) ^ next_u64() ^ (salt * 0x9E3779B97F4A7C15ull));
}

double Rng::triangular(double lo, double mode, double hi) {
  const double u = uniform();
  const double c = (mode - lo) / (hi - lo);
  if (u < c) return lo + std::sqrt(u * (hi - lo) * (mode - lo));
  return hi - std::sqrt((1.0 - u) * (hi - lo) * (hi - mode));
}

// --------------------------------------------------------------------------
// Kernel dispatch.

namespace detail {

namespace base {
extern const DrawKernels kKernels;
}
#if defined(SATIN_KERNELS_HAVE_AVX2)
namespace avx2 {
extern const DrawKernels kKernels;
}
#endif

namespace {

const DrawKernels* pick_kernels() {
#if defined(SATIN_KERNELS_HAVE_AVX2)
  if (__builtin_cpu_supports("avx2")) return &avx2::kKernels;
#endif
  return &base::kKernels;
}

std::atomic<const DrawKernels*> g_kernels{nullptr};

}  // namespace

const DrawKernels& draw_kernels() {
  const DrawKernels* k = g_kernels.load(std::memory_order_acquire);
  if (k == nullptr) {
    k = pick_kernels();
    g_kernels.store(k, std::memory_order_release);
  }
  return *k;
}

const DrawKernels& base_draw_kernels() { return base::kKernels; }

void force_base_draw_kernels(bool on) {
  g_kernels.store(on ? &base::kKernels : pick_kernels(),
                  std::memory_order_release);
}

}  // namespace detail

// --------------------------------------------------------------------------
// Block streams. Refills run whole kernel chunks, so buffers carry one
// chunk of head-room past the block target; everything is sized in the
// constructor — steady-state draws never allocate (the bench_micro churn
// gate covers this).

CanonicalStream::CanonicalStream(Rng rng, DrawMode mode, std::size_t block)
    : rng_(rng), mode_(mode), block_(block < 1 ? 1 : block) {
  if (mode_ == DrawMode::kBatched) buf_.resize(block_);
}

void CanonicalStream::refill() {
  detail::draw_kernels().canonical_block(rng_.engine(), buf_.data(), block_);
  size_ = block_;
  pos_ = 0;
}

NormalStream::NormalStream(Rng rng, double mean, double stddev, DrawMode mode,
                           std::size_t block)
    : rng_(rng),
      mean_(mean),
      stddev_(stddev),
      mode_(mode),
      block_(block < 1 ? 1 : block) {
  if (mode_ == DrawMode::kBatched) {
    buf_.resize(block_ + detail::kKernelChunkPairs);
  }
}

void NormalStream::refill() {
  const detail::DrawKernels& k = detail::draw_kernels();
  std::size_t n = 0;
  while (n < block_) {
    n = k.normal_block(rng_.engine(), mean_, stddev_, buf_.data(), n,
                       detail::kKernelChunkPairs);
  }
  size_ = n;
  pos_ = 0;
}

TruncatedNormalStream::TruncatedNormalStream(Rng rng, double mean,
                                             double stddev, double lo,
                                             double hi, DrawMode mode,
                                             std::size_t block)
    : rng_(rng),
      mean_(mean),
      stddev_(stddev),
      lo_(lo),
      hi_(hi),
      mode_(mode),
      block_(block < 1 ? 1 : block) {
  if (mode_ == DrawMode::kBatched) {
    buf_.resize(block_ + detail::kKernelChunkPairs);
  }
}

void TruncatedNormalStream::refill() {
  const detail::DrawKernels& k = detail::draw_kernels();
  std::size_t n = 0;
  while (n < block_) {
    n = k.truncated_normal_block(rng_.engine(), mean_, stddev_, lo_, hi_,
                                 &misses_, buf_.data(), n,
                                 detail::kKernelChunkPairs);
  }
  size_ = n;
  pos_ = 0;
}

ExponentialStream::ExponentialStream(Rng rng, double mean, DrawMode mode,
                                     std::size_t block)
    : rng_(rng), mean_(mean), mode_(mode), block_(block < 1 ? 1 : block) {
  if (mode_ == DrawMode::kBatched) buf_.resize(block_);
}

void ExponentialStream::refill() {
  detail::draw_kernels().exponential_block(rng_.engine(), mean_, buf_.data(),
                                           block_);
  size_ = block_;
  pos_ = 0;
}

LognormalStream::LognormalStream(Rng rng, double mu, double sigma,
                                 DrawMode mode, std::size_t block)
    : rng_(rng),
      mu_(mu),
      sigma_(sigma),
      mode_(mode),
      block_(block < 1 ? 1 : block) {
  if (mode_ == DrawMode::kBatched) {
    buf_.resize(block_ + detail::kKernelChunkPairs);
  }
}

void LognormalStream::refill() {
  const detail::DrawKernels& k = detail::draw_kernels();
  std::size_t n = 0;
  while (n < block_) {
    n = k.lognormal_block(rng_.engine(), mu_, sigma_, buf_.data(), n,
                          detail::kKernelChunkPairs);
  }
  size_ = n;
  pos_ = 0;
}

}  // namespace satin::sim
