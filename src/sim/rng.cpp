#include "sim/rng.h"

namespace satin::sim {

namespace {
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}
}  // namespace

void Mt19937_64::refill() {
  constexpr std::uint64_t kUpperMask = 0xFFFFFFFF80000000ull;
  constexpr std::uint64_t kLowerMask = 0x7FFFFFFFull;
  constexpr std::uint64_t kMatrixA = 0xB5026F5AA96619E9ull;
  // The standard twist, split into two dependence-free passes plus the
  // wrap-around word so the vectorizer can run both loops wide. The
  // branchless (word & 1) * kMatrixA is value-identical to the spec's
  // conditional xor.
  for (unsigned k = 0; k < kStateSize - kMid; ++k) {
    const std::uint64_t y =
        (state_[k] & kUpperMask) | (state_[k + 1] & kLowerMask);
    state_[k] = state_[k + kMid] ^ (y >> 1) ^ ((state_[k + 1] & 1) * kMatrixA);
  }
  for (unsigned k = kStateSize - kMid; k < kStateSize - 1; ++k) {
    const std::uint64_t y =
        (state_[k] & kUpperMask) | (state_[k + 1] & kLowerMask);
    state_[k] =
        state_[k - (kStateSize - kMid)] ^ (y >> 1) ^
        ((state_[k + 1] & 1) * kMatrixA);
  }
  const std::uint64_t y =
      (state_[kStateSize - 1] & kUpperMask) | (state_[0] & kLowerMask);
  state_[kStateSize - 1] =
      state_[kMid - 1] ^ (y >> 1) ^ ((state_[0] & 1) * kMatrixA);
  next_ = 0;
}

Rng Rng::fork(std::string_view name) {
  const std::uint64_t mixed = fnv1a(name) ^ next_u64();
  return Rng(mixed);
}

double Rng::triangular(double lo, double mode, double hi) {
  const double u = uniform();
  const double c = (mode - lo) / (hi - lo);
  if (u < c) return lo + std::sqrt(u * (hi - lo) * (mode - lo));
  return hi - std::sqrt((1.0 - u) * (hi - lo) * (hi - mode));
}

}  // namespace satin::sim
