#include "sim/event_pool.h"

namespace satin::sim {

void EventPool::grow() {
  const std::uint32_t base = static_cast<std::uint32_t>(capacity());
  slabs_.push_back(std::make_unique<State[]>(kSlabSlots));
  ++slab_grows_;
  // Thread the fresh slab onto the free list back to front so allocation
  // order walks it forward (index locality for the first fill).
  for (std::size_t i = kSlabSlots; i-- > 0;) {
    State& s = slabs_.back()[i];
    s.next_free = free_head_;
    free_head_ = base + static_cast<std::uint32_t>(i);
  }
}

std::uint32_t EventPool::allocate() {
  if (free_head_ == kInvalidIndex) grow();
  const std::uint32_t index = free_head_;
  State& s = state(index);
  free_head_ = s.next_free;
  s.next_free = kInvalidIndex;
  // First-fill pops walk a fresh slab (generation 0); anything after the
  // slot's first release is a recycle.
  if (s.generation > 0) ++reuses_;
  s.cancelled = false;
  s.location = EventLocation::kNone;
  ++allocated_;
  if (allocated_ > occupancy_high_water_) occupancy_high_water_ = allocated_;
  return index;
}

void EventPool::release(std::uint32_t index) {
  State& s = state(index);
  s.callback.reset();
  if (s.cancelled) {
    --cancelled_live_;
    if (s.location == EventLocation::kHeap) --cancelled_in_heap_;
    s.cancelled = false;
  }
  s.location = EventLocation::kNone;
  ++s.generation;  // stales every outstanding handle to this slot
  s.next_free = free_head_;
  free_head_ = index;
  --allocated_;
}

bool EventPool::cancel(std::uint32_t index, std::uint32_t generation) {
  if (!matches(index, generation)) return false;
  State& s = state(index);
  if (s.cancelled) return false;
  s.cancelled = true;
  ++cancelled_live_;
  if (s.location == EventLocation::kHeap) ++cancelled_in_heap_;
  return true;
}

}  // namespace satin::sim
