// AVX2 flavor of the block draw kernels: identical source to the base
// flavor, compiled with 256-bit vectors enabled (and FMA explicitly off —
// contraction would change results; see sim/fastmath.h). Selected at
// runtime by detail::draw_kernels() only when the CPU reports AVX2.
// x86-64 only; other targets build the base flavor alone.
#if defined(SATIN_KERNELS_HAVE_AVX2)
#define SATIN_KERNEL_NS avx2
#define SATIN_KERNEL_ISA_NAME "avx2"
#include "sim/rng_kernels.inc"
#endif
