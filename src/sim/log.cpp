#include "sim/log.h"

#include <cstdio>

namespace satin::sim {

namespace {
LogLevel g_level = LogLevel::kWarn;
LogSink g_sink = nullptr;
// The clock is per-thread: every parallel trial worker constructs its own
// Engine, and each engine must stamp only its own thread's log lines.
// Level and sink stay process-wide — set them before fanning trials out.
thread_local LogClockFn g_clock_fn = nullptr;
thread_local const void* g_clock_ctx = nullptr;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }
void set_log_sink(LogSink sink) { g_sink = sink; }

void set_log_clock(LogClockFn fn, const void* ctx) {
  g_clock_fn = fn;
  g_clock_ctx = fn != nullptr ? ctx : nullptr;
}

const void* log_clock_ctx() { return g_clock_ctx; }

std::string log_time_prefix() {
  if (g_clock_fn == nullptr) return "";
  const Time now = g_clock_fn(g_clock_ctx);
  char buf[48];
  std::snprintf(buf, sizeof(buf), "[t=%.3fms] ", now.ms());
  return buf;
}

namespace detail {
void emit(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  if (g_sink != nullptr) {
    g_sink(level, msg);
    return;
  }
  // Default sink: one fprintf per line (keeps lines whole under
  // interleaving) followed by an explicit flush so a crashing run never
  // loses its tail.
  std::fprintf(stderr, "%s[%s] %s\n", log_time_prefix().c_str(),
               level_name(level), msg.c_str());
  std::fflush(stderr);
}
}  // namespace detail

}  // namespace satin::sim
