#include "sim/log.h"

#include <cstdio>

namespace satin::sim {

namespace {
LogLevel g_level = LogLevel::kWarn;
LogSink g_sink = nullptr;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }
void set_log_sink(LogSink sink) { g_sink = sink; }

namespace detail {
void emit(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  if (g_sink != nullptr) {
    g_sink(level, msg);
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}
}  // namespace detail

}  // namespace satin::sim
