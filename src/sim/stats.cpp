#include "sim/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace satin::sim {

void Accumulator::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

Accumulator::State Accumulator::state() const {
  State s;
  s.count = count_;
  s.mean = mean_;
  s.m2 = m2_;
  s.min = min_;
  s.max = max_;
  s.sum = sum_;
  return s;
}

void Accumulator::restore(const State& s) {
  count_ = static_cast<std::size_t>(s.count);
  mean_ = s.mean;
  m2_ = s.m2;
  min_ = s.min;
  max_ = s.max;
  sum_ = s.sum;
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) throw std::invalid_argument("percentile: empty sample");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: bad p");
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples.front();
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

BoxStats make_box_stats(std::vector<double> samples) {
  if (samples.empty()) {
    throw std::invalid_argument("make_box_stats: empty sample");
  }
  std::sort(samples.begin(), samples.end());
  BoxStats box;
  box.q1 = percentile(samples, 25.0);
  box.median = percentile(samples, 50.0);
  box.q3 = percentile(samples, 75.0);
  const double iqr = box.q3 - box.q1;
  const double lo_fence = box.q1 - 1.5 * iqr;
  const double hi_fence = box.q3 + 1.5 * iqr;
  box.whisker_low = box.q3;  // fall back to a sane value if all outliers
  box.whisker_high = box.q1;
  bool any_in_fence = false;
  for (double x : samples) {
    if (x >= lo_fence && x <= hi_fence) {
      if (!any_in_fence) {
        box.whisker_low = x;
        any_in_fence = true;
      }
      box.whisker_high = x;
    } else {
      box.outliers.push_back(x);
    }
  }
  return box;
}

std::string sci_row(const std::string& label,
                    const std::vector<double>& values) {
  std::string out;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%-24s", label.c_str());
  out += buf;
  for (double v : values) {
    std::snprintf(buf, sizeof(buf), "  %12.3e", v);
    out += buf;
  }
  return out;
}

}  // namespace satin::sim
