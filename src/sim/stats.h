// Statistics helpers for the evaluation harnesses.
//
// The paper reports avg/max/min over 50 repetitions (Tables I, II), a
// box-and-whisker plot (Fig. 4), and normalized degradation percentages
// (Fig. 7). These helpers compute exactly those shapes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace satin::sim {

// Streaming accumulator: count, mean (Welford), min, max, variance.
class Accumulator {
 public:
  void add(double x);

  // Combines another accumulator into this one (Chan et al. parallel
  // Welford). The result depends only on the two operands and their
  // order, so merging per-trial accumulators in submission order yields
  // the same bits no matter how many workers produced them.
  void merge(const Accumulator& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }
  // Sample variance / standard deviation (n-1 denominator).
  double variance() const;
  double stddev() const;

  // Exact internal state, for binary serialization across process
  // boundaries (campaign workers persist per-trial metrics and the
  // supervisor restores them before the submission-order merge). A
  // restore()d accumulator merges bit-identically to the original.
  struct State {
    std::uint64_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
  };
  State state() const;
  void restore(const State& s);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Linear-interpolation percentile of a sample set; p in [0, 100].
double percentile(std::vector<double> samples, double p);

// Box-plot statistics in the Tukey convention used by Fig. 4: whiskers at
// the last sample within 1.5*IQR of the quartiles, the rest outliers.
struct BoxStats {
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double whisker_low = 0.0;
  double whisker_high = 0.0;
  std::vector<double> outliers;
};

BoxStats make_box_stats(std::vector<double> samples);

// Renders a fixed-width table row of scientific-notation values; used by
// the bench binaries to print paper-style tables.
std::string sci_row(const std::string& label, const std::vector<double>& values);

}  // namespace satin::sim
