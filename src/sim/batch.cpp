#include "sim/batch.h"

namespace satin::sim {

BatchRunner::BatchRunner(BatchRunnerOptions options)
    : options_(options), runner_(options.runner) {
  if (options_.batch < 1) options_.batch = 1;
  if (options_.quantum <= Duration::zero()) {
    options_.quantum = Duration::from_sec(1);
  }
}

int BatchRunner::jobs_for(std::size_t trials) const {
  const std::size_t shards =
      trials == 0 ? 0 : (trials + options_.batch - 1) / options_.batch;
  return runner_.jobs_for(shards);
}

void BatchRunner::run(std::size_t trials, const MakeTrial& make) {
  runner_.run_sharded(trials, options_.batch, options_.quantum, make);
}

}  // namespace satin::sim
