// In-repo log/exp for the draw pipeline.
//
// PR-5 moved the engine and distribution adaptors in-repo so recorded
// outputs could never shift under a libstdc++ update; the draws still
// leaned on glibc's log/exp, which pins every recorded stream to one libm
// build AND blocks the batched pipeline — a vector lane must produce the
// exact bits the scalar oracle produces, and no two libm builds (let
// alone a vector math library) agree to the last bit. These routines
// close that hole: straight-line IEEE-754 double arithmetic, no tables,
// no FMA, no data-dependent branches in the *_core paths, so the same
// source compiled scalar or auto-vectorized at any ISA width yields
// bit-identical results lane for lane (add/mul/div/sqrt/compare/convert
// are IEEE-exact at every width; the build pins -ffp-contract=off).
//
// Accuracy is a couple of ulp — calibrated jitter models do not need
// correctly-rounded libm — and tests/sim/fastmath_test.cpp pins both the
// ulp envelope against libm and golden bit patterns so the functions can
// never drift quietly.
//
// SATIN_FM_INLINE forces inlining: kernel translation units are compiled
// per-ISA (sim/rng_kernels.inc), and a stray out-of-line comdat copy
// picked from the widest TU could otherwise be linked into scalar code
// running on a narrower machine.
#pragma once

#include <bit>
#include <cstdint>
#include <limits>

#if defined(__GNUC__)
#define SATIN_FM_INLINE inline __attribute__((always_inline))
#else
#define SATIN_FM_INLINE inline
#endif

namespace satin::sim {

namespace fm_detail {

// 2^-0.5-centered split of ln 2 (fdlibm): the hi part has 27 trailing
// zero bits, so e * kLn2Hi is exact for every exponent |e| <= 2^26.
inline constexpr double kLn2Hi =
    std::bit_cast<double>(std::uint64_t{0x3FE62E42FEE00000ull});
inline constexpr double kLn2Lo =
    std::bit_cast<double>(std::uint64_t{0x3DEA39EF35793C76ull});
inline constexpr double kInvLn2 =
    std::bit_cast<double>(std::uint64_t{0x3FF71547652B82FEull});
inline constexpr double kSqrt2 =
    std::bit_cast<double>(std::uint64_t{0x3FF6A09E667F3BCDull});
// sqrt(2)/2: the lower edge of the log recentring interval. Same mantissa
// as kSqrt2, one exponent down — the carry trick in fm_log_finite leans
// on exactly that relation.
inline constexpr std::uint64_t kHalfSqrt2Bits = 0x3FE6A09E667F3BCDull;

}  // namespace fm_detail

// log(x) for positive finite x (normal or denormal). Genuinely
// branch-free AND select-free: GCC at default -ftrapping-math refuses to
// if-convert a `cond ? a*b : a` select (the speculated multiply could
// raise a spurious flag), which kept every loop over this function
// scalar. The denormal prescale is therefore an *unconditional* multiply
// by a mask-selected scale, and the [sqrt(1/2), sqrt(2)) recentring uses
// the fdlibm carry trick — adding (1.0 - sqrt2/2) to the raw bits
// carries into the exponent field exactly when the mantissa is >= that
// of sqrt 2, which is bit-for-bit the old `m >= kSqrt2 ? m/2 : m`
// select (differentially verified over the full positive-finite bit
// range). The exponent converts through int32, not int64: AVX2 has no
// 64-bit-int <-> double conversion, and one scalar cvt would have kept
// the whole loop scalar. Do NOT call with x <= 0, inf or NaN — fm_log
// below handles the full domain.
SATIN_FM_INLINE double fm_log_finite(double x) {
  using namespace fm_detail;
  // Denormals: prescale into the normal range, repair the exponent.
  const std::uint64_t denmask = -static_cast<std::uint64_t>(x < 0x1p-1022);
  const double scale = std::bit_cast<double>(
      (denmask & std::bit_cast<std::uint64_t>(0x1p54)) |
      (~denmask & std::bit_cast<std::uint64_t>(1.0)));
  const double eadj =
      std::bit_cast<double>(denmask & std::bit_cast<std::uint64_t>(54.0));
  const double xs = x * scale;
  // Mantissa recentred to [sqrt(1/2), sqrt(2)) so f = m - 1 is small on
  // both sides of 1 and the atanh series never sees cancellation.
  const std::uint64_t ix =
      std::bit_cast<std::uint64_t>(xs) + (0x3FF0000000000000ull - kHalfSqrt2Bits);
  const double e =
      static_cast<double>(static_cast<int>(ix >> 52) - 1023) - eadj;
  const double m =
      std::bit_cast<double>((ix & 0x000FFFFFFFFFFFFFull) + kHalfSqrt2Bits);
  const double f = m - 1.0;
  // log(m) = 2 atanh(s) with s = f/(2+f): odd series in s, even in z.
  // Terms through z^9 leave < 0.1 ulp of truncation at |s| <= 0.1716.
  const double s = f / (2.0 + f);
  const double z = s * s;
  double r = 2.0 / 19.0;
  r = r * z + 2.0 / 17.0;
  r = r * z + 2.0 / 15.0;
  r = r * z + 2.0 / 13.0;
  r = r * z + 2.0 / 11.0;
  r = r * z + 2.0 / 9.0;
  r = r * z + 2.0 / 7.0;
  r = r * z + 2.0 / 5.0;
  r = r * z + 2.0 / 3.0;
  const double lnm = 2.0 * s + s * (z * r);
  return e * kLn2Hi + (lnm + e * kLn2Lo);
}

// Full-domain log: matches libm's special-value contract (sans errno).
SATIN_FM_INLINE double fm_log(double x) {
  if (x > 0.0 && x < std::numeric_limits<double>::infinity()) {
    return fm_log_finite(x);
  }
  if (x == 0.0) return -std::numeric_limits<double>::infinity();
  if (x < 0.0) return std::numeric_limits<double>::quiet_NaN();
  return x;  // +inf or NaN propagate
}

// exp(x) for x in [-708, 692]: the range where the result scale fits a
// single exponent-field add. Branch-free; the full-domain fm_exp below
// routes the extreme tails elsewhere. This is the only path draw kernels
// use (distribution arguments live within +-40 sigma of 0).
SATIN_FM_INLINE double fm_exp_core(double x) {
  using namespace fm_detail;
  // Nearest integer multiple of ln 2 via the shift trick (|t| << 2^51,
  // so adding/subtracting 1.5 * 2^52 rounds t to an exact integer).
  const double t = x * kInvLn2;
  const double kd = (t + 0x1.8p52) - 0x1.8p52;
  // int32, not int64: |k| <= 1024, and AVX2 has no 64-bit-int <-> double
  // conversion, so a long long here would keep callers' loops scalar.
  const int k = static_cast<int>(kd);
  // Reduced argument r = x - k ln2, |r| <= ln2/2 + eps. kd * kLn2Hi is
  // exact (27 spare mantissa bits against |k| <= 1024).
  const double r = (x - kd * kLn2Hi) - kd * kLn2Lo;
  // Taylor through r^13/13!: < 0.1 ulp truncation at |r| <= 0.347.
  const double r2 = r * r;
  double p = 1.0 / 6227020800.0;
  p = p * r + 1.0 / 479001600.0;
  p = p * r + 1.0 / 39916800.0;
  p = p * r + 1.0 / 3628800.0;
  p = p * r + 1.0 / 362880.0;
  p = p * r + 1.0 / 40320.0;
  p = p * r + 1.0 / 5040.0;
  p = p * r + 1.0 / 720.0;
  p = p * r + 1.0 / 120.0;
  p = p * r + 1.0 / 24.0;
  p = p * r + 1.0 / 6.0;
  p = p * r + 0.5;
  const double er = (r + r2 * p) + 1.0;
  // er in [0.70, 1.42]: scaling by 2^k is one exponent-field add.
  return std::bit_cast<double>(
      std::bit_cast<std::uint64_t>(er) +
      (static_cast<std::uint64_t>(static_cast<std::int64_t>(k)) << 52));
}

namespace fm_detail {

// Tail scaling for |x| outside the single-add window: same reduction,
// two-step power-of-two scale (exact, including gradual underflow).
double fm_exp_tail(double x);

}  // namespace fm_detail

// Full-domain exp: matches libm's special-value contract (sans errno).
SATIN_FM_INLINE double fm_exp(double x) {
  if (x != x) return x;                       // NaN
  if (x > 709.782712893384) {                 // overflow (and +inf)
    return std::numeric_limits<double>::infinity();
  }
  if (x < -746.0) return 0.0;                 // below least subnormal
  if (x > 692.0 || x < -708.0) return fm_detail::fm_exp_tail(x);
  return fm_exp_core(x);
}

}  // namespace satin::sim
