// Small-buffer type-erased callback for the event engine.
//
// std::function<void()> heap-allocates whenever the capture outgrows its
// (implementation-defined, ~16-byte) internal buffer — which is every
// scheduling call site in this tree that captures more than two pointers.
// InlineCallback fixes the buffer at kCapacity bytes, sized to the largest
// capture in the repo (secure::Introspector's scan-completion lambda:
// this + core + token + offset/length + start + per-byte cost + a
// std::function done-callback, ~88 bytes), so every event the simulator
// schedules stores its callback inline in the slab-pooled event state and
// the steady-state event path performs zero heap allocations.
//
// Callables larger than kCapacity (or over-aligned, or with throwing
// moves) still work: they fall back to a single heap allocation, and the
// fallback is counted process-wide (inline_callback_fallbacks()) and
// per-engine (Engine::callback_fallbacks()) so a capture that silently
// outgrows the buffer shows up in metrics and the zero-alloc CI gate
// instead of quietly re-introducing allocator traffic.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace satin::sim {

// Process-wide tally of InlineCallback constructions that spilled to the
// heap. Monotonic, aggregated across threads; per-engine determinism-safe
// counts live on Engine itself (this one exists so the allocation-gate
// bench can name the culprit when it trips).
inline std::atomic<std::uint64_t>& inline_callback_fallbacks() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

class InlineCallback {
 public:
  // Inline storage: fits every capture in the tree today (largest ~88 B,
  // see header comment). Growing a capture past this is legal but costs
  // one heap allocation per scheduled event — watch callback_fallbacks().
  static constexpr std::size_t kCapacity = 128;
  static constexpr std::size_t kAlignment = alignof(std::max_align_t);

  InlineCallback() noexcept = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineCallback> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &inline_ops<D>;
    } else {
      *reinterpret_cast<void**>(storage_) = new D(std::forward<F>(f));
      ops_ = &heap_ops<D>;
      inline_callback_fallbacks().fetch_add(1, std::memory_order_relaxed);
    }
  }

  InlineCallback(InlineCallback&& other) noexcept { steal(other); }
  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  // True when the stored callable spilled to the heap (capture larger
  // than kCapacity, over-aligned, or not nothrow-movable).
  bool heap_allocated() const noexcept { return ops_ != nullptr && ops_->heap; }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kCapacity && alignof(D) <= kAlignment &&
           std::is_nothrow_move_constructible_v<D>;
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-constructs dst storage from src storage, leaving src destroyed.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool heap;
  };

  template <typename D>
  static constexpr Ops inline_ops = {
      [](void* s) { (*std::launder(reinterpret_cast<D*>(s)))(); },
      [](void* dst, void* src) noexcept {
        D* from = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* s) noexcept { std::launder(reinterpret_cast<D*>(s))->~D(); },
      false,
  };

  template <typename D>
  static constexpr Ops heap_ops = {
      [](void* s) { (**reinterpret_cast<D**>(s))(); },
      [](void* dst, void* src) noexcept {
        *reinterpret_cast<void**>(dst) = *reinterpret_cast<void**>(src);
      },
      [](void* s) noexcept { delete *reinterpret_cast<D**>(s); },
      true,
  };

  void steal(InlineCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(kAlignment) unsigned char storage_[kCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace satin::sim
