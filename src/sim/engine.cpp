#include "sim/engine.h"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace satin::sim {

bool EventHandle::pending() const {
  return state_ && !state_->cancelled && !state_->fired;
}

void EventHandle::cancel() {
  if (state_) state_->cancelled = true;
}

Time EventHandle::when() const {
  return state_ ? state_->when : Time::zero();
}

EventHandle Engine::schedule_at(Time when, Callback cb) {
  if (when < now_) {
    throw std::logic_error("Engine::schedule_at: time in the past");
  }
  auto state = std::make_shared<EventHandle::State>();
  state->callback = std::move(cb);
  state->when = when;
  queue_.push(QueueEntry{when, next_seq_++, state});
  return EventHandle(state);
}

bool Engine::fire_next(Time limit) {
  while (!queue_.empty()) {
    const QueueEntry& top = queue_.top();
    if (top.when > limit) return false;
    auto state = top.state;
    const Time when = top.when;
    queue_.pop();
    if (state->cancelled) continue;
    now_ = when;
    state->fired = true;
    ++fired_;
    // Move the callback out so an event that reschedules "itself" through a
    // captured handle cannot observe a half-dead state.
    Callback cb = std::move(state->callback);
    cb();
    return true;
  }
  return false;
}

bool Engine::step() { return fire_next(Time::max()); }

std::size_t Engine::run_until(Time deadline) {
  stop_requested_ = false;
  std::size_t n = 0;
  while (!stop_requested_ && fire_next(deadline)) ++n;
  if (!stop_requested_ && now_ < deadline) now_ = deadline;
  return n;
}

std::size_t Engine::run_all() {
  stop_requested_ = false;
  std::size_t n = 0;
  while (!stop_requested_ && fire_next(Time::max())) ++n;
  return n;
}

std::size_t Engine::pending_count() const {
  // The queue may hold cancelled entries; report the live ones. The queue
  // container is private to std::priority_queue, so count via a copy --
  // this accessor is for tests and diagnostics, not hot paths.
  auto copy = queue_;
  std::size_t n = 0;
  while (!copy.empty()) {
    if (!copy.top().state->cancelled && !copy.top().state->fired) ++n;
    copy.pop();
  }
  return n;
}

}  // namespace satin::sim
