#include "sim/engine.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <functional>
#include <stdexcept>
#include <utility>

#include "obs/trace.h"
#include "sim/log.h"

namespace satin::sim {

namespace {

Time engine_log_clock(const void* ctx) {
  return static_cast<const Engine*>(ctx)->now();
}

// Accumulates host wall time spent inside a run_* call onto `sink`.
class WallTimer {
 public:
  explicit WallTimer(double& sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  ~WallTimer() {
    sink_ += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start_)
                 .count();
  }

 private:
  double& sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

bool EventHandle::pending() const {
  return state_ && !state_->cancelled && !state_->fired;
}

void EventHandle::cancel() {
  if (!state_ || state_->cancelled || state_->fired) return;
  state_->cancelled = true;
  if (state_->cancelled_in_heap != nullptr) ++*state_->cancelled_in_heap;
}

Time EventHandle::when() const {
  return state_ ? state_->when : Time::zero();
}

Engine::Engine() { set_log_clock(&engine_log_clock, this); }

Engine::~Engine() {
  if (log_clock_ctx() == this) set_log_clock(nullptr, nullptr);
  // Handles can outlive the engine; cut their back-references so a late
  // cancel() never writes through a dangling tally pointer.
  for (QueueEntry& entry : heap_) entry.state->cancelled_in_heap = nullptr;
}

void Engine::release_entry(const QueueEntry& entry) {
  entry.state->cancelled_in_heap = nullptr;
  if (entry.state->cancelled) --cancelled_in_heap_;
}

void Engine::compact() {
  std::vector<QueueEntry> live;
  live.reserve(heap_.size() - cancelled_in_heap_);
  for (QueueEntry& entry : heap_) {
    if (entry.state->cancelled) {
      release_entry(entry);
      ++cancelled_popped_;
    } else {
      live.push_back(std::move(entry));
    }
  }
  heap_ = std::move(live);
  std::make_heap(heap_.begin(), heap_.end(), std::greater<QueueEntry>());
  ++compactions_;
}

EventHandle Engine::schedule_at(Time when, Callback cb) {
  if (when < now_) {
    throw std::logic_error("Engine::schedule_at: time in the past");
  }
  auto state = std::make_shared<EventHandle::State>();
  state->callback = std::move(cb);
  state->when = when;
  state->cancelled_in_heap = &cancelled_in_heap_;
  heap_.push_back(QueueEntry{when, next_seq_++, state});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<QueueEntry>());
  if (heap_.size() > queue_high_water_) queue_high_water_ = heap_.size();
  // Lazy compaction: once dead entries outnumber live ones (and the heap
  // is big enough for the sweep to matter), sweep them out in one O(n)
  // pass instead of dragging them through every sift.
  if (cancelled_in_heap_ > heap_.size() / 2 && heap_.size() >= 64) {
    compact();
  }
  return EventHandle(state);
}

bool Engine::fire_next(Time limit) {
  while (!heap_.empty()) {
    const QueueEntry& top = heap_.front();
    if (top.when > limit) return false;
    auto state = top.state;
    const Time when = top.when;
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<QueueEntry>());
    release_entry(heap_.back());
    heap_.pop_back();
    if (state->cancelled) {
      ++cancelled_popped_;
      continue;
    }
    now_ = when;
    state->fired = true;
    ++fired_;
    // Move the callback out so an event that reschedules "itself" through a
    // captured handle cannot observe a half-dead state.
    Callback cb = std::move(state->callback);
    SATIN_TRACE_BEGIN("engine", "dispatch", now_, obs::kGlobalTrack,
                      obs::kWorldNone);
    cb();
    SATIN_TRACE_END("engine", "dispatch", now_, obs::kGlobalTrack,
                    obs::kWorldNone);
    return true;
  }
  return false;
}

bool Engine::step() {
  // Same contract as run_until/run_all: a stop request only affects the
  // run it was issued inside of; entering a new (single-step) run clears
  // any stale request instead of silently carrying it forward.
  stop_requested_ = false;
  return fire_next(Time::max());
}

std::size_t Engine::run_until(Time deadline) {
  WallTimer wall(wall_seconds_);
  stop_requested_ = false;
  std::size_t n = 0;
  while (!stop_requested_ && fire_next(deadline)) ++n;
  if (!stop_requested_ && now_ < deadline) now_ = deadline;
  return n;
}

std::size_t Engine::run_all() {
  WallTimer wall(wall_seconds_);
  stop_requested_ = false;
  std::size_t n = 0;
  while (!stop_requested_ && fire_next(Time::max())) ++n;
  return n;
}

std::size_t Engine::pending_count() const {
  // The heap holds only unfired entries and the cancelled tally is kept
  // exact by cancel()/release_entry(), so live = size - cancelled. O(1),
  // where the old std::priority_queue accessor copied the whole container.
  return heap_.size() - cancelled_in_heap_;
}

}  // namespace satin::sim
