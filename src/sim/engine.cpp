#include "sim/engine.h"

#include <cassert>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "obs/trace.h"
#include "sim/log.h"

namespace satin::sim {

namespace {

Time engine_log_clock(const void* ctx) {
  return static_cast<const Engine*>(ctx)->now();
}

// Accumulates host wall time spent inside a run_* call onto `sink`.
class WallTimer {
 public:
  explicit WallTimer(double& sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  ~WallTimer() {
    sink_ += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start_)
                 .count();
  }

 private:
  double& sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

bool EventHandle::pending() const {
  return state_ && !state_->cancelled && !state_->fired;
}

void EventHandle::cancel() {
  if (state_) state_->cancelled = true;
}

Time EventHandle::when() const {
  return state_ ? state_->when : Time::zero();
}

Engine::Engine() { set_log_clock(&engine_log_clock, this); }

Engine::~Engine() {
  if (log_clock_ctx() == this) set_log_clock(nullptr, nullptr);
}

EventHandle Engine::schedule_at(Time when, Callback cb) {
  if (when < now_) {
    throw std::logic_error("Engine::schedule_at: time in the past");
  }
  auto state = std::make_shared<EventHandle::State>();
  state->callback = std::move(cb);
  state->when = when;
  queue_.push(QueueEntry{when, next_seq_++, state});
  if (queue_.size() > queue_high_water_) queue_high_water_ = queue_.size();
  return EventHandle(state);
}

bool Engine::fire_next(Time limit) {
  while (!queue_.empty()) {
    const QueueEntry& top = queue_.top();
    if (top.when > limit) return false;
    auto state = top.state;
    const Time when = top.when;
    queue_.pop();
    if (state->cancelled) {
      ++cancelled_popped_;
      continue;
    }
    now_ = when;
    state->fired = true;
    ++fired_;
    // Move the callback out so an event that reschedules "itself" through a
    // captured handle cannot observe a half-dead state.
    Callback cb = std::move(state->callback);
    SATIN_TRACE_BEGIN("engine", "dispatch", now_, obs::kGlobalTrack,
                      obs::kWorldNone);
    cb();
    SATIN_TRACE_END("engine", "dispatch", now_, obs::kGlobalTrack,
                    obs::kWorldNone);
    return true;
  }
  return false;
}

bool Engine::step() {
  // Same contract as run_until/run_all: a stop request only affects the
  // run it was issued inside of; entering a new (single-step) run clears
  // any stale request instead of silently carrying it forward.
  stop_requested_ = false;
  return fire_next(Time::max());
}

std::size_t Engine::run_until(Time deadline) {
  WallTimer wall(wall_seconds_);
  stop_requested_ = false;
  std::size_t n = 0;
  while (!stop_requested_ && fire_next(deadline)) ++n;
  if (!stop_requested_ && now_ < deadline) now_ = deadline;
  return n;
}

std::size_t Engine::run_all() {
  WallTimer wall(wall_seconds_);
  stop_requested_ = false;
  std::size_t n = 0;
  while (!stop_requested_ && fire_next(Time::max())) ++n;
  return n;
}

std::size_t Engine::pending_count() const {
  // The queue may hold cancelled entries; report the live ones. The queue
  // container is private to std::priority_queue, so count via a copy --
  // this accessor is for tests and diagnostics, not hot paths.
  auto copy = queue_;
  std::size_t n = 0;
  while (!copy.empty()) {
    if (!copy.top().state->cancelled && !copy.top().state->fired) ++n;
    copy.pop();
  }
  return n;
}

}  // namespace satin::sim
