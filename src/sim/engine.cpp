#include "sim/engine.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <chrono>
#include <functional>
#include <stdexcept>
#include <utility>

#include "obs/flight/recorder.h"
#include "obs/trace.h"
#include "sim/log.h"

namespace satin::sim {

namespace {

Time engine_log_clock(const void* ctx) {
  return static_cast<const Engine*>(ctx)->now();
}

// Accumulates host wall time spent inside a run_* call onto `sink`.
class WallTimer {
 public:
  explicit WallTimer(double& sink)
      : sink_(sink), start_(std::chrono::steady_clock::now()) {}
  ~WallTimer() {
    sink_ += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           start_)
                 .count();
  }

 private:
  double& sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

bool EventHandle::pending() const {
  return pool_ != nullptr && pool_->matches(index_, generation_) &&
         !pool_->state(index_).cancelled;
}

void EventHandle::cancel() {
  if (pool_ != nullptr) pool_->cancel(index_, generation_);
}

Time EventHandle::when() const {
  return pool_ != nullptr && pool_->matches(index_, generation_)
             ? pool_->state(index_).when
             : Time::zero();
}

Engine::Engine() { set_log_clock(&engine_log_clock, this); }

Engine::~Engine() {
  if (log_clock_ctx() == this) set_log_clock(nullptr, nullptr);
  // Release every still-queued state so callback captures die with the
  // engine. Handles that outlive the engine go stale via the generation
  // bump and keep only the pool's bookkeeping alive through their shared
  // pointer — a late cancel()/pending() no-ops instead of dangling.
  for (const QueueEntry& e : heap_) pool_->release(e.index);
  for (const QueueEntry& e : drain_) pool_->release(e.index);
  for (std::vector<QueueEntry>& bucket : wheel_) {
    for (const QueueEntry& e : bucket) pool_->release(e.index);
  }
}

void Engine::compact() {
  // Sweep into the retained scratch buffer (capacity survives the swap
  // round-trip, so steady-state sweeps never allocate).
  compact_scratch_.clear();
  compact_scratch_.reserve(heap_.size());
  for (const QueueEntry& e : heap_) {
    if (pool_->state(e.index).cancelled) {
      pool_->release(e.index);
      ++cancelled_popped_;
    } else {
      compact_scratch_.push_back(e);
    }
  }
  heap_.swap(compact_scratch_);
  std::make_heap(heap_.begin(), heap_.end(), std::greater<QueueEntry>());
  ++compactions_;
}

EventHandle Engine::schedule_at(Time when, Callback cb) {
  if (when < now_) {
    throw std::logic_error("Engine::schedule_at: time in the past");
  }
  // Opportunistic cursor resync: with no bucketed entries the wheel window
  // can slide up to the clock for free, so near-future events keep landing
  // in buckets even after a long quiet jump (run_until over idle time).
  if (wheel_count_ == 0) {
    const std::uint64_t now_bucket = bucket_of(now_);
    if (now_bucket > cursor_) cursor_ = now_bucket;
  }
  const std::uint32_t index = pool_->allocate();
  EventPool::State& s = pool_->state(index);
  s.callback = std::move(cb);
  s.when = when;
  if (s.callback.heap_allocated()) {
    ++cb_fallback_;
  } else {
    ++cb_inline_;
  }
  const QueueEntry entry{when, next_seq_++, index};
  const std::uint64_t b = bucket_of(when);
  if (b < cursor_) {
    // The bucket was already loaded (a callback scheduling into the
    // currently-draining time range): join the drain heap directly.
    s.location = EventLocation::kDrain;
    drain_.push_back(entry);
    std::push_heap(drain_.begin(), drain_.end(), std::greater<QueueEntry>());
    ++wheel_scheduled_;
  } else if (b - cursor_ < kWheelBuckets) {
    s.location = EventLocation::kWheel;
    // Tighten a valid memo; a stale one stays stale (an arbitrary earlier
    // bucket may exist, only a rescan can tell).
    if (next_bucket_cache_ != kNoBucket && b < next_bucket_cache_) {
      next_bucket_cache_ = b;
    }
    wheel_[b & kWheelMask].push_back(entry);
    bitmap_set(b);
    ++wheel_count_;
    ++wheel_scheduled_;
  } else {
    s.location = EventLocation::kHeap;
    heap_.push_back(entry);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<QueueEntry>());
    ++heap_scheduled_;
  }
  // Lazy compaction: once dead entries outnumber live ones in the
  // far-future heap (and it is big enough for the sweep to matter), sweep
  // them out in one O(n) pass instead of dragging them through every
  // sift. Wheel entries are never compacted — their lifetime is bounded
  // by the ~68 ms horizon, so they drain out on their own.
  if (pool_->cancelled_in_heap() > heap_.size() / 2 && heap_.size() >= 64) {
    compact();
  }
  const std::size_t queued = heap_.size() + drain_.size() + wheel_count_;
  if (queued > queue_high_water_) queue_high_water_ = queued;
  return EventHandle(pool_, index, s.generation);
}

std::uint64_t Engine::next_nonempty_bucket() const {
  if (next_bucket_cache_ != kNoBucket) return next_bucket_cache_;
  const std::uint64_t start = cursor_ & kWheelMask;
  std::uint64_t scanned = 0;
  while (scanned < kWheelBuckets) {
    const std::uint64_t slot = (start + scanned) & kWheelMask;
    const std::uint64_t word = bitmap_[slot >> 6] >> (slot & 63);
    if (word != 0) {
      const std::uint64_t d =
          scanned + static_cast<std::uint64_t>(std::countr_zero(word));
      if (d >= kWheelBuckets) break;
      next_bucket_cache_ = cursor_ + d;
      return next_bucket_cache_;
    }
    scanned += 64 - (slot & 63);
  }
  assert(wheel_count_ == 0);
  return cursor_;
}

void Engine::load_bucket(std::uint64_t abs) {
  std::vector<QueueEntry>& bucket = wheel_[abs & kWheelMask];
  for (const QueueEntry& e : bucket) {
    pool_->state(e.index).location = EventLocation::kDrain;
    drain_.push_back(e);
    std::push_heap(drain_.begin(), drain_.end(), std::greater<QueueEntry>());
  }
  wheel_count_ -= bucket.size();
  bucket.clear();
  bitmap_clear(abs);
  cursor_ = abs + 1;
  next_bucket_cache_ = kNoBucket;  // recomputed lazily on the next probe
}

void Engine::settle_tops(Time limit) {
  for (;;) {
    // Skip cancelled entries off both tops; releasing them recycles the
    // pool slot immediately.
    while (!drain_.empty() && pool_->state(drain_.front().index).cancelled) {
      std::pop_heap(drain_.begin(), drain_.end(), std::greater<QueueEntry>());
      pool_->release(drain_.back().index);
      drain_.pop_back();
      ++cancelled_popped_;
    }
    while (!heap_.empty() && pool_->state(heap_.front().index).cancelled) {
      std::pop_heap(heap_.begin(), heap_.end(), std::greater<QueueEntry>());
      pool_->release(heap_.back().index);
      heap_.pop_back();
      ++cancelled_popped_;
    }
    if (wheel_count_ == 0) return;
    // Load the earliest bucket while it could still contain the next
    // event: its start must not exceed the run limit nor either live top.
    // (<=, not <: a bucket can hold an entry at exactly the top's
    // timestamp whose sequence number decides the order.)
    Time best = limit;
    if (!drain_.empty() && drain_.front().when < best) {
      best = drain_.front().when;
    }
    if (!heap_.empty() && heap_.front().when < best) best = heap_.front().when;
    const std::uint64_t b = next_nonempty_bucket();
    if (Time::from_ps(static_cast<std::int64_t>(b) << kBucketShift) > best) {
      return;
    }
    load_bucket(b);
  }
}

bool Engine::fire_next(Time limit) {
  settle_tops(limit);
  const bool have_drain = !drain_.empty();
  const bool have_heap = !heap_.empty();
  if (!have_drain && !have_heap) return false;
  // Full (when, seq) comparison across the wheel/heap boundary keeps
  // equal-timestamp FIFO order identical to the single-heap engine.
  const bool from_heap =
      have_heap && (!have_drain || drain_.front() > heap_.front());
  std::vector<QueueEntry>& src = from_heap ? heap_ : drain_;
  const QueueEntry top = src.front();
  if (top.when > limit) return false;
  std::pop_heap(src.begin(), src.end(), std::greater<QueueEntry>());
  src.pop_back();
  EventPool::State& s = pool_->state(top.index);
  // Move the callback out and release the slot before invoking: an event
  // that cancels or reschedules "itself" through a captured handle sees a
  // stale generation instead of a half-dead state, and the slot is free
  // for immediate reuse by whatever the callback schedules.
  Callback cb = std::move(s.callback);
  now_ = top.when;
  pool_->release(top.index);
  ++fired_;
#if SATIN_OBS_ENABLED
  // Depth AFTER the pop: the population the next settle/pop works over.
  queue_depth_digest_.observe(
      static_cast<double>(heap_.size() + drain_.size() + wheel_count_));
#endif
  // The flight record is the ground-truth commit: (when, seq) is exactly
  // the pair the queue ordered by, so two runs with identical streams
  // dispatched identical work.
  SATIN_FLIGHT_RECORD(obs::FlightKind::kDispatch, now_, top.seq,
                      obs::kGlobalTrack, 0);
  SATIN_TRACE_BEGIN("engine", "dispatch", now_, obs::kGlobalTrack,
                    obs::kWorldNone);
  cb();
  SATIN_TRACE_END("engine", "dispatch", now_, obs::kGlobalTrack,
                  obs::kWorldNone);
  return true;
}

bool Engine::step() {
  // Same contract as run_until/run_all: a stop request only affects the
  // run it was issued inside of; entering a new (single-step) run clears
  // any stale request instead of silently carrying it forward.
  stop_requested_ = false;
  return fire_next(Time::max());
}

std::size_t Engine::run_until(Time deadline) {
  WallTimer wall(wall_seconds_);
  stop_requested_ = false;
  std::size_t n = 0;
  while (!stop_requested_ && fire_next(deadline)) ++n;
  if (!stop_requested_ && now_ < deadline) now_ = deadline;
  return n;
}

std::size_t Engine::run_all() {
  WallTimer wall(wall_seconds_);
  stop_requested_ = false;
  std::size_t n = 0;
  while (!stop_requested_ && fire_next(Time::max())) ++n;
  return n;
}

}  // namespace satin::sim
