// Slab pool of event states with generation-tagged recycling.
//
// Replaces the per-event `std::make_shared<EventHandle::State>` the engine
// used to pay on every schedule: states live in fixed 256-slot slabs that
// are allocated once and recycled forever (LIFO free list, so the hot
// tick/probe traffic reuses cache-warm slots). A handle is {index,
// generation}: releasing a slot bumps its generation, so a stale handle
// held after the slot was recycled compares unequal and safely no-ops on
// cancel()/pending()/when() — the safety shared_ptr used to buy, without
// the per-event allocation and atomics.
//
// The pool also owns the cancellation tallies. Handles can outlive their
// engine (the engine shares the pool with every handle it hands out via
// one shared_ptr per engine, copied — never allocated — per handle), so a
// late cancel() must find the tallies alive; parking them here instead of
// on the engine makes that true by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/inline_callback.h"
#include "sim/time.h"

namespace satin::sim {

// Which queue structure currently holds the event's entry; cancel() uses
// it to keep the main-heap cancellation tally (which drives lazy
// compaction) exact without scanning.
enum class EventLocation : std::uint8_t {
  kNone,   // released / never queued
  kWheel,  // near-future timer-wheel bucket
  kDrain,  // loaded out of the wheel into the drain heap
  kHeap,   // far-future binary heap
};

class EventPool {
 public:
  static constexpr std::uint32_t kInvalidIndex = 0xFFFF'FFFFu;
  // 256 states per slab: one slab covers the deepest queue most scenarios
  // ever reach (PR-4 high-water marks are well under 200), so steady
  // state is a single up-front allocation.
  static constexpr std::size_t kSlabShift = 8;
  static constexpr std::size_t kSlabSlots = 1u << kSlabShift;

  struct State {
    InlineCallback callback;
    Time when;
    std::uint32_t generation = 0;
    std::uint32_t next_free = kInvalidIndex;
    EventLocation location = EventLocation::kNone;
    bool cancelled = false;
  };

  EventPool() = default;
  EventPool(const EventPool&) = delete;
  EventPool& operator=(const EventPool&) = delete;

  // Pops the free list, growing a fresh slab only when it is empty. The
  // returned slot has an empty callback, cancelled=false, location=kNone
  // and carries the generation the matching handle must remember.
  std::uint32_t allocate();

  // Destroys the slot's callback, bumps its generation (staling every
  // outstanding handle) and pushes it on the free list. Settles the
  // cancellation tallies for a cancelled slot.
  void release(std::uint32_t index);

  State& state(std::uint32_t index) {
    return slabs_[index >> kSlabShift][index & (kSlabSlots - 1)];
  }
  const State& state(std::uint32_t index) const {
    return slabs_[index >> kSlabShift][index & (kSlabSlots - 1)];
  }

  // True while `generation` still names the slot's current occupant.
  bool matches(std::uint32_t index, std::uint32_t generation) const {
    return index < capacity() && state(index).generation == generation &&
           state(index).location != EventLocation::kNone;
  }

  // Marks the slot cancelled if the handle is still current; returns
  // whether anything changed. Keeps live/cancelled tallies exact.
  bool cancel(std::uint32_t index, std::uint32_t generation);

  // Queued events that are neither fired nor cancelled.
  std::size_t pending() const { return allocated_ - cancelled_live_; }
  // Cancelled entries still sitting in some queue structure.
  std::size_t cancelled_live() const { return cancelled_live_; }
  // Cancelled entries specifically in the far-future heap (compaction
  // trigger); release() settles it as swept entries leave the heap.
  std::size_t cancelled_in_heap() const { return cancelled_in_heap_; }

  // --- Self-metrics ------------------------------------------------------
  std::size_t capacity() const { return slabs_.size() * kSlabSlots; }
  std::size_t allocated() const { return allocated_; }
  // Deepest simultaneous occupancy ever reached.
  std::size_t occupancy_high_water() const { return occupancy_high_water_; }
  // Slabs allocated (1 == the steady-state ideal after warmup).
  std::uint64_t slab_grows() const { return slab_grows_; }
  // Allocations served by recycling a previously released slot.
  std::uint64_t reuses() const { return reuses_; }

 private:
  void grow();

  std::vector<std::unique_ptr<State[]>> slabs_;
  std::uint32_t free_head_ = kInvalidIndex;
  std::size_t allocated_ = 0;
  std::size_t cancelled_live_ = 0;
  std::size_t cancelled_in_heap_ = 0;
  std::size_t occupancy_high_water_ = 0;
  std::uint64_t slab_grows_ = 0;
  std::uint64_t reuses_ = 0;
};

}  // namespace satin::sim
