// Simulated time for the SATIN reproduction.
//
// The paper's evaluation spans eleven orders of magnitude: per-byte hash
// times of 6.67e-9 s (Table I) up to full detection runs of ~1.5e3 s
// (Section VI-B1). A 64-bit count of picoseconds covers both ends with
// integer exactness (range ~106 days) and avoids floating-point drift in
// the event queue ordering.
#pragma once

#include <cmath>
#include <compare>
#include <type_traits>
#include <cstdint>
#include <limits>
#include <string>

namespace satin::sim {

namespace time_detail {

// Bit-exact replacement for std::llround (round half away from zero) on
// the |x| < 2^63 domain the Time constructors use. Two reasons it is not
// simply std::llround: the baseline x86-64 build emits a libm PLT call
// for llround on every seconds-to-Time conversion (hundreds of millions
// per bench), and the batched draw pipeline precomputes conversions in
// vector kernels, so the rounding must be expressible in IEEE-exact
// add/sub/compare ops that mean the same thing at every vector width.
// tests/sim/time_test.cpp differentials this against std::llround over
// random and adversarial (exact .5, huge, negative) inputs.
inline std::int64_t llround_exact(double x) {
  if (!(x < 0x1p52 && x > -0x1p52)) {
    // Already integral (or non-finite, where llround is unspecified too).
    return static_cast<std::int64_t>(x);
  }
  const double ax = x < 0.0 ? -x : x;
  // Shift into the 2^52 window and back: rounds ax to the nearest
  // integer, ties to even (ax + c lands in [2^52, 2^53), where the ulp is
  // exactly 1 — ax is non-negative, so the plain 2^52 constant covers the
  // whole guarded range). d = ax - r is exact and |d| <= 0.5; the only
  // correction needed is the exact tie, which llround rounds up (away
  // from zero, applied to the magnitude).
  const double c = 0x1p52;
  const double r = (ax + c) - c;
  const double d = ax - r;
  std::int64_t i = static_cast<std::int64_t>(r);
  i += d == 0.5 ? 1 : 0;
  return x < 0.0 ? -i : i;
}

}  // namespace time_detail

// A point in simulated time, or a span of it, counted in picoseconds.
// Value type; totally ordered; arithmetic never silently overflows in
// practice because simulations stay far below the 106-day range.
class Time {
 public:
  constexpr Time() = default;

  static constexpr Time from_ps(std::int64_t ps) { return Time(ps); }
  static constexpr Time from_ns(std::int64_t ns) { return Time(ns * 1'000); }
  static constexpr Time from_us(std::int64_t us) {
    return Time(us * 1'000'000);
  }
  static constexpr Time from_ms(std::int64_t ms) {
    return Time(ms * 1'000'000'000);
  }
  static constexpr Time from_sec(std::int64_t s) {
    return Time(s * 1'000'000'000'000);
  }

  // Fractional constructors round to the nearest picosecond.
  static Time from_ns_f(double ns) {
    return Time(time_detail::llround_exact(ns * 1e3));
  }
  static Time from_us_f(double us) {
    return Time(time_detail::llround_exact(us * 1e6));
  }
  static Time from_ms_f(double ms) {
    return Time(time_detail::llround_exact(ms * 1e9));
  }
  static Time from_sec_f(double s) {
    return Time(time_detail::llround_exact(s * 1e12));
  }

  static constexpr Time zero() { return Time(0); }
  static constexpr Time max() {
    return Time(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t ps() const { return ps_; }
  constexpr double ns() const { return static_cast<double>(ps_) * 1e-3; }
  constexpr double us() const { return static_cast<double>(ps_) * 1e-6; }
  constexpr double ms() const { return static_cast<double>(ps_) * 1e-9; }
  constexpr double sec() const { return static_cast<double>(ps_) * 1e-12; }

  constexpr bool is_zero() const { return ps_ == 0; }

  friend constexpr auto operator<=>(Time, Time) = default;

  friend constexpr Time operator+(Time a, Time b) { return Time(a.ps_ + b.ps_); }
  friend constexpr Time operator-(Time a, Time b) { return Time(a.ps_ - b.ps_); }
  template <typename I>
    requires std::is_integral_v<I>
  friend constexpr Time operator*(Time a, I k) {
    return Time(a.ps_ * static_cast<std::int64_t>(k));
  }
  template <typename I>
    requires std::is_integral_v<I>
  friend constexpr Time operator*(I k, Time a) {
    return a * k;
  }
  friend Time operator*(Time a, double k) {
    return Time(time_detail::llround_exact(static_cast<double>(a.ps_) * k));
  }
  template <typename I>
    requires std::is_integral_v<I>
  friend constexpr Time operator/(Time a, I k) {
    return Time(a.ps_ / static_cast<std::int64_t>(k));
  }
  // Ratio of two spans (e.g. bytes scanned per second of scan time).
  friend constexpr double operator/(Time a, Time b) {
    return static_cast<double>(a.ps_) / static_cast<double>(b.ps_);
  }

  constexpr Time& operator+=(Time o) {
    ps_ += o.ps_;
    return *this;
  }
  constexpr Time& operator-=(Time o) {
    ps_ -= o.ps_;
    return *this;
  }

  // Human-readable rendering with an auto-selected unit, e.g. "8.04e-02 s".
  std::string to_string() const;

 private:
  constexpr explicit Time(std::int64_t ps) : ps_(ps) {}
  std::int64_t ps_ = 0;
};

// A span of simulated time. Same representation as Time; the alias keeps
// signatures self-documenting (schedule_after(Duration) vs schedule_at(Time)).
using Duration = Time;

}  // namespace satin::sim
