// Simulated time for the SATIN reproduction.
//
// The paper's evaluation spans eleven orders of magnitude: per-byte hash
// times of 6.67e-9 s (Table I) up to full detection runs of ~1.5e3 s
// (Section VI-B1). A 64-bit count of picoseconds covers both ends with
// integer exactness (range ~106 days) and avoids floating-point drift in
// the event queue ordering.
#pragma once

#include <cmath>
#include <compare>
#include <type_traits>
#include <cstdint>
#include <limits>
#include <string>

namespace satin::sim {

// A point in simulated time, or a span of it, counted in picoseconds.
// Value type; totally ordered; arithmetic never silently overflows in
// practice because simulations stay far below the 106-day range.
class Time {
 public:
  constexpr Time() = default;

  static constexpr Time from_ps(std::int64_t ps) { return Time(ps); }
  static constexpr Time from_ns(std::int64_t ns) { return Time(ns * 1'000); }
  static constexpr Time from_us(std::int64_t us) {
    return Time(us * 1'000'000);
  }
  static constexpr Time from_ms(std::int64_t ms) {
    return Time(ms * 1'000'000'000);
  }
  static constexpr Time from_sec(std::int64_t s) {
    return Time(s * 1'000'000'000'000);
  }

  // Fractional constructors round to the nearest picosecond.
  static Time from_ns_f(double ns) {
    return Time(static_cast<std::int64_t>(std::llround(ns * 1e3)));
  }
  static Time from_us_f(double us) {
    return Time(static_cast<std::int64_t>(std::llround(us * 1e6)));
  }
  static Time from_ms_f(double ms) {
    return Time(static_cast<std::int64_t>(std::llround(ms * 1e9)));
  }
  static Time from_sec_f(double s) {
    return Time(static_cast<std::int64_t>(std::llround(s * 1e12)));
  }

  static constexpr Time zero() { return Time(0); }
  static constexpr Time max() {
    return Time(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t ps() const { return ps_; }
  constexpr double ns() const { return static_cast<double>(ps_) * 1e-3; }
  constexpr double us() const { return static_cast<double>(ps_) * 1e-6; }
  constexpr double ms() const { return static_cast<double>(ps_) * 1e-9; }
  constexpr double sec() const { return static_cast<double>(ps_) * 1e-12; }

  constexpr bool is_zero() const { return ps_ == 0; }

  friend constexpr auto operator<=>(Time, Time) = default;

  friend constexpr Time operator+(Time a, Time b) { return Time(a.ps_ + b.ps_); }
  friend constexpr Time operator-(Time a, Time b) { return Time(a.ps_ - b.ps_); }
  template <typename I>
    requires std::is_integral_v<I>
  friend constexpr Time operator*(Time a, I k) {
    return Time(a.ps_ * static_cast<std::int64_t>(k));
  }
  template <typename I>
    requires std::is_integral_v<I>
  friend constexpr Time operator*(I k, Time a) {
    return a * k;
  }
  friend Time operator*(Time a, double k) {
    return Time(static_cast<std::int64_t>(
        std::llround(static_cast<double>(a.ps_) * k)));
  }
  template <typename I>
    requires std::is_integral_v<I>
  friend constexpr Time operator/(Time a, I k) {
    return Time(a.ps_ / static_cast<std::int64_t>(k));
  }
  // Ratio of two spans (e.g. bytes scanned per second of scan time).
  friend constexpr double operator/(Time a, Time b) {
    return static_cast<double>(a.ps_) / static_cast<double>(b.ps_);
  }

  constexpr Time& operator+=(Time o) {
    ps_ += o.ps_;
    return *this;
  }
  constexpr Time& operator-=(Time o) {
    ps_ -= o.ps_;
    return *this;
  }

  // Human-readable rendering with an auto-selected unit, e.g. "8.04e-02 s".
  std::string to_string() const;

 private:
  constexpr explicit Time(std::int64_t ps) : ps_(ps) {}
  std::int64_t ps_ = 0;
};

// A span of simulated time. Same representation as Time; the alias keeps
// signatures self-documenting (schedule_after(Duration) vs schedule_at(Time)).
using Duration = Time;

}  // namespace satin::sim
