// Deterministic random-number generation for the simulator.
//
// Every stochastic quantity in the reproduction (context-switch jitter,
// per-byte hash jitter, cross-core visibility delays, SATIN's random
// deviations) draws from an Rng. A master seed fans out into independent
// named substreams so that adding a new consumer never perturbs the draws
// of existing ones — experiments stay bit-reproducible across code growth.
//
// The draw path is implemented in-repo, bit-identical to the libstdc++
// facilities it replaces (std::mt19937_64 plus the distribution adaptors
// the original implementation constructed per call). Two reasons:
//   1. Reproducibility. Recorded outputs — CI's jobs=1-vs-8 and digest
//      cache on/off byte-identity gates, EXPERIMENTS.md numbers — are
//      pinned to this exact draw sequence; owning the generator means a
//      standard-library update can never silently shift it.
//   2. Speed. Jitter draws dominate the long benches (~672M truncated
//      normals in one bench_satin_detection run); the inline fast path
//      drops the per-call distribution-object and generate_canonical
//      machinery, and the twist loop compiles in one TU where it can be
//      vectorized.
// tests/sim/rng_test.cpp locks every method to its std:: reference,
// draw for draw, so any divergence fails loudly.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

#include "sim/fastmath.h"
#include "sim/time.h"

namespace satin::sim {

// Bit-identical reimplementation of std::mt19937_64 ([rand.eng.mers] with
// the standard's mt19937_64 parameters — the algorithm is fully specified,
// so the stream is portable across standard libraries by construction).
class Mt19937_64 {
 public:
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  static constexpr result_type default_seed = 5489u;

  explicit Mt19937_64(result_type value = default_seed) { seed(value); }

  void seed(result_type value) {
    state_[0] = value;
    for (unsigned i = 1; i < kStateSize; ++i) {
      state_[i] =
          6364136223846793005ull * (state_[i - 1] ^ (state_[i - 1] >> 62)) + i;
    }
    next_ = kStateSize;
  }

  result_type operator()() {
    if (next_ >= kStateSize) refill();
    result_type y = state_[next_++];
    y ^= (y >> 29) & 0x5555555555555555ull;
    y ^= (y << 17) & 0x71D67FFFEDA60000ull;
    y ^= (y << 37) & 0xFFF7EEE000000000ull;
    y ^= y >> 43;
    return y;
  }

  // Writes the next n draws — the exact sequence n calls of operator()
  // would yield — produced run-wise over the state buffer so the
  // tempering loop vectorizes (rng.cpp compiles it at -O3). The batched
  // draw pipeline's bottom layer.
  void generate_block(result_type* out, std::size_t n);

 private:
  static constexpr unsigned kStateSize = 312;
  static constexpr unsigned kMid = 156;

  // Out of line on purpose: runs once per 312 draws, and rng.cpp compiles
  // it with the vectorizer on (the twist was the hottest single function
  // in bench_satin_detection's profile).
  void refill();

  result_type state_[kStateSize];
  unsigned next_;
};

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Derives an independent substream. FNV-1a over the name mixed with a
  // fresh draw keeps substreams decorrelated and stable by name.
  Rng fork(std::string_view name);

  // Deterministically reseeds THIS stream from its current state, a
  // stream name and a salt — the BranchDelta seed-perturbation primitive.
  // A forked branch child calls perturb on its copy-on-write copy of the
  // platform stream, so every substream forked after the branch point
  // diverges as a pure function of (warm-prefix state, name, salt), while
  // its siblings (including salt-free ones) are untouched. perturb with
  // the same (name, salt) at the same state is reproducible; it is NOT a
  // no-op for salt == 0 (the reseed itself moves the stream).
  void perturb(std::string_view name, std::uint64_t salt);

  std::uint64_t next_u64() { return engine_(); }

  // Uniform real in [0, 1). Identical to
  // std::uniform_real_distribution<double>(0, 1) over this engine.
  double uniform() { return canonical(); }
  // Uniform real in [lo, hi).
  double uniform(double lo, double hi) { return canonical() * (hi - lo) + lo; }
  // Uniform integer in [lo, hi], inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }
  // Uniform index in [0, n).
  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  bool bernoulli(double p) { return canonical() < p; }

  // Marsaglia polar method, replicating std::normal_distribution's
  // consumption pattern exactly — including the historical quirk that
  // this method constructed a fresh distribution per call, so the polar
  // method's cached second variate is always discarded (keeping it would
  // shift every downstream draw). The log is the in-repo fm_log (PR-8):
  // the batched pipeline must reproduce these values lane for lane, which
  // no libm build can promise — so the scalar oracle and the vector
  // kernels share one log. This is the run-of-record stream;
  // tests/sim/rng_test.cpp pins it against an independently written
  // reference plus golden draws.
  double normal(double mean, double stddev) {
    double x, y, r2;
    do {
      x = 2.0 * canonical() - 1.0;
      y = 2.0 * canonical() - 1.0;
      r2 = x * x + y * y;
    } while (r2 > 1.0 || r2 == 0.0);
    const double mult = std::sqrt(-2.0 * fm_log(r2) / r2);
    return y * mult * stddev + mean;
  }

  // Normal redrawn until it lands in [lo, hi]. Used for calibrated jitter
  // whose min/max the paper reports explicitly (Table I). Inline because
  // it is the hottest call in the tree (every cross-core staleness read).
  double truncated_normal(double mean, double stddev, double lo, double hi) {
    for (int i = 0; i < 1024; ++i) {
      const double x = normal(mean, stddev);
      if (x >= lo && x <= hi) return x;
    }
    // Degenerate parameterization; clamp rather than loop forever.
    return std::clamp(mean, lo, hi);
  }

  double exponential(double mean) {
    const double lambda = 1.0 / mean;  // divide like the std:: adaptor did
    return -fm_log(1.0 - canonical()) / lambda;
  }

  // Log-normal parameterized by the mean/sigma of the underlying normal.
  double lognormal(double mu, double sigma) {
    return fm_exp(sigma * normal(0.0, 1.0) + mu);
  }

  double triangular(double lo, double mode, double hi);

  // Uniform Duration in [lo, hi].
  Duration uniform_duration(Duration lo, Duration hi) {
    return Duration::from_ps(uniform_int(lo.ps(), hi.ps()));
  }

  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[index(v.size())];
  }

  template <typename It>
  void shuffle(It first, It last) {
    std::shuffle(first, last, engine_);
  }

  Mt19937_64& engine() { return engine_; }

 private:
  // [0, 1) with 53-bit precision: what std::generate_canonical<double, 53>
  // computes for a full-range 64-bit engine — one draw, rounded to double,
  // scaled by 2^-64, clamped below 1.0 for the one draw (2^64 - 1) whose
  // conversion rounds up to 2^64.
  double canonical() {
    const double r = static_cast<double>(engine_()) * 0x1p-64;
    return r < 1.0 ? r : std::nextafter(1.0, 0.0);
  }

  Mt19937_64 engine_;
};

// ---------------------------------------------------------------------------
// Batched draw pipeline (PR-8).
//
// The detection duel is draw-bound (~672M truncated normals per bench run)
// and every hot consumer draws from a *dedicated* substream with fixed
// parameters. That makes the draws precomputable: a block kernel refills
// the engine a few hundred draws at a time and pushes them through the
// polar/filter transforms as flat array passes that auto-vectorize. The
// schedule is filter-compaction — canonical pairs are consumed strictly in
// stream order, each pair either polar-rejects (no output) or yields a
// candidate that the truncation filter keeps or drops — which is exactly
// the order the scalar per-draw loop consumes them in, so the block
// outputs are bit-identical to the scalar oracle for any block size or
// vector width. tests/sim/rng_test.cpp differentials every distribution
// at block sizes {1,2,4,8,33}, including rejection-heavy tails.
//
// DrawMode selects per consumer: kScalar is the per-draw oracle (the
// --batch=1 run of record), kBatched the block pipeline. Both modes read
// the same substreams, so their outputs are byte-identical by contract,
// not by luck.
// ---------------------------------------------------------------------------

enum class DrawMode {
  kScalar = 0,   // per-draw loop; differential oracle and --batch=1 path
  kBatched = 1,  // block-kernel pipeline, bit-identical to kScalar
};

namespace detail {

// Exact u64 -> double in vectorizable ops: split halves, each exact,
// one rounding in the final add — the same value static_cast produces.
SATIN_FM_INLINE double u64_to_double_exact(std::uint64_t u) {
  const double dhi = std::bit_cast<double>((u >> 32) | 0x4530000000000000ull);
  const double dlo = std::bit_cast<double>((u & 0xFFFFFFFFull) |
                                           0x4330000000000000ull);
  return (dhi - (0x1p84 + 0x1p52)) + dlo;
}

// Rng::canonical() in vectorizable ops (the clamp becomes a blend).
SATIN_FM_INLINE double canonical_from_u64(std::uint64_t u) {
  const double r = u64_to_double_exact(u) * 0x1p-64;
  return r < 1.0 ? r : std::bit_cast<double>(0x3FEFFFFFFFFFFFFFull);
}

// Engine draws consumed per kernel call sit on the stack; this bounds the
// scratch (and the per-call overshoot a stream buffer must absorb).
inline constexpr std::size_t kKernelChunkPairs = 512;

// One compiled flavor of the block kernels (sim/rng_kernels.inc). The
// base flavor uses the project ISA; wider flavors are the same source
// compiled with vector extensions enabled, selected at runtime.
struct DrawKernels {
  // Fills out[0..n) with canonical [0,1) draws, one engine draw each.
  void (*canonical_block)(Mt19937_64& eng, double* out, std::size_t n);
  // Consumes `pairs` canonical pairs, appends the polar-accepted normals
  // (scaled by stddev/mean) at out[count..]; returns the new count.
  std::size_t (*normal_block)(Mt19937_64& eng, double mean, double stddev,
                              double* out, std::size_t count,
                              std::size_t pairs);
  // As normal_block, filtered to [lo, hi]. `misses` carries the count of
  // consecutive out-of-range candidates across calls so the scalar
  // oracle's 1024-try clamp fallback reproduces exactly.
  std::size_t (*truncated_normal_block)(Mt19937_64& eng, double mean,
                                        double stddev, double lo, double hi,
                                        int* misses, double* out,
                                        std::size_t count, std::size_t pairs);
  // Fills out[0..n) with Exp(mean) draws, one engine draw each.
  void (*exponential_block)(Mt19937_64& eng, double mean, double* out,
                            std::size_t n);
  // Consumes pairs, appends exp(sigma * N(0,1) + mu) draws.
  std::size_t (*lognormal_block)(Mt19937_64& eng, double mu, double sigma,
                                 double* out, std::size_t count,
                                 std::size_t pairs);
  const char* isa;  // "base", "avx2", ... (for bench labels)
};

// Widest flavor the running CPU supports (resolved once).
const DrawKernels& draw_kernels();
// Project-ISA flavor, always available — the cross-ISA differential
// tests compare it against draw_kernels().
const DrawKernels& base_draw_kernels();
// Test hook: force draw_kernels() to the base flavor (false restores CPU
// dispatch). Not thread-safe against concurrent first use; call from
// test setup only.
void force_base_draw_kernels(bool on);

}  // namespace detail

// Default stream block: draws precomputed per refill (plus up to one
// kernel-chunk overshoot of buffer head-room for the pair-fed kernels).
inline constexpr std::size_t kDefaultDrawBlock = 4096;

// Buffered single-distribution draw streams. Each owns a dedicated
// engine (fork one per consumer per distribution): bulk precomputation is
// only order-identical to per-draw consumption when nothing else reads
// the stream. In kScalar mode next() is the per-draw oracle on the same
// engine, so a consumer's draw sequence is independent of DrawMode.
class CanonicalStream {
 public:
  CanonicalStream(Rng rng, DrawMode mode,
                  std::size_t block = kDefaultDrawBlock);
  double next() {
    if (mode_ == DrawMode::kScalar) return rng_.uniform();
    if (pos_ == size_) refill();
    return buf_[pos_++];
  }

 private:
  void refill();
  Rng rng_;
  DrawMode mode_;
  std::size_t block_;
  std::size_t pos_ = 0, size_ = 0;
  std::vector<double> buf_;
};

class NormalStream {
 public:
  NormalStream(Rng rng, double mean, double stddev, DrawMode mode,
               std::size_t block = kDefaultDrawBlock);
  double next() {
    if (mode_ == DrawMode::kScalar) return rng_.normal(mean_, stddev_);
    if (pos_ == size_) refill();
    return buf_[pos_++];
  }

 private:
  void refill();
  Rng rng_;
  double mean_, stddev_;
  DrawMode mode_;
  std::size_t block_;
  std::size_t pos_ = 0, size_ = 0;
  std::vector<double> buf_;
};

class TruncatedNormalStream {
 public:
  TruncatedNormalStream(Rng rng, double mean, double stddev, double lo,
                        double hi, DrawMode mode,
                        std::size_t block = kDefaultDrawBlock);
  double next() {
    if (mode_ == DrawMode::kScalar) {
      return rng_.truncated_normal(mean_, stddev_, lo_, hi_);
    }
    if (pos_ == size_) refill();
    return buf_[pos_++];
  }

 private:
  void refill();
  Rng rng_;
  double mean_, stddev_, lo_, hi_;
  DrawMode mode_;
  std::size_t block_;
  int misses_ = 0;
  std::size_t pos_ = 0, size_ = 0;
  std::vector<double> buf_;
};

class ExponentialStream {
 public:
  ExponentialStream(Rng rng, double mean, DrawMode mode,
                    std::size_t block = kDefaultDrawBlock);
  double next() {
    if (mode_ == DrawMode::kScalar) return rng_.exponential(mean_);
    if (pos_ == size_) refill();
    return buf_[pos_++];
  }

 private:
  void refill();
  Rng rng_;
  double mean_;
  DrawMode mode_;
  std::size_t block_;
  std::size_t pos_ = 0, size_ = 0;
  std::vector<double> buf_;
};

// Precondition (batched kernel): |mu| + 12.2 * |sigma| <= 692, so that
// sigma * N + mu stays inside fm_exp_core's window. The polar method
// bounds |N| by sqrt(-2 ln(r2_min)) < 12.2 (r2 >= 2^-106 when nonzero),
// so any physically meaningful parameterization qualifies.
class LognormalStream {
 public:
  LognormalStream(Rng rng, double mu, double sigma, DrawMode mode,
                  std::size_t block = kDefaultDrawBlock);
  double next() {
    if (mode_ == DrawMode::kScalar) return rng_.lognormal(mu_, sigma_);
    if (pos_ == size_) refill();
    return buf_[pos_++];
  }

 private:
  void refill();
  Rng rng_;
  double mu_, sigma_;
  DrawMode mode_;
  std::size_t block_;
  std::size_t pos_ = 0, size_ = 0;
  std::vector<double> buf_;
};

}  // namespace satin::sim
