// Deterministic random-number generation for the simulator.
//
// Every stochastic quantity in the reproduction (context-switch jitter,
// per-byte hash jitter, cross-core visibility delays, SATIN's random
// deviations) draws from an Rng. A master seed fans out into independent
// named substreams so that adding a new consumer never perturbs the draws
// of existing ones — experiments stay bit-reproducible across code growth.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

#include "sim/time.h"

namespace satin::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Derives an independent substream. FNV-1a over the name mixed with a
  // fresh draw keeps substreams decorrelated and stable by name.
  Rng fork(std::string_view name);

  std::uint64_t next_u64() { return engine_(); }

  // Uniform real in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }
  // Uniform real in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }
  // Uniform integer in [lo, hi], inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }
  // Uniform index in [0, n).
  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  // Normal redrawn until it lands in [lo, hi]. Used for calibrated jitter
  // whose min/max the paper reports explicitly (Table I).
  double truncated_normal(double mean, double stddev, double lo, double hi);

  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  // Log-normal parameterized by the mean/sigma of the underlying normal.
  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  double triangular(double lo, double mode, double hi);

  // Uniform Duration in [lo, hi].
  Duration uniform_duration(Duration lo, Duration hi) {
    return Duration::from_ps(uniform_int(lo.ps(), hi.ps()));
  }

  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[index(v.size())];
  }

  template <typename It>
  void shuffle(It first, It last) {
    std::shuffle(first, last, engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace satin::sim
