// Deterministic random-number generation for the simulator.
//
// Every stochastic quantity in the reproduction (context-switch jitter,
// per-byte hash jitter, cross-core visibility delays, SATIN's random
// deviations) draws from an Rng. A master seed fans out into independent
// named substreams so that adding a new consumer never perturbs the draws
// of existing ones — experiments stay bit-reproducible across code growth.
//
// The draw path is implemented in-repo, bit-identical to the libstdc++
// facilities it replaces (std::mt19937_64 plus the distribution adaptors
// the original implementation constructed per call). Two reasons:
//   1. Reproducibility. Recorded outputs — CI's jobs=1-vs-8 and digest
//      cache on/off byte-identity gates, EXPERIMENTS.md numbers — are
//      pinned to this exact draw sequence; owning the generator means a
//      standard-library update can never silently shift it.
//   2. Speed. Jitter draws dominate the long benches (~672M truncated
//      normals in one bench_satin_detection run); the inline fast path
//      drops the per-call distribution-object and generate_canonical
//      machinery, and the twist loop compiles in one TU where it can be
//      vectorized.
// tests/sim/rng_test.cpp locks every method to its std:: reference,
// draw for draw, so any divergence fails loudly.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

#include "sim/time.h"

namespace satin::sim {

// Bit-identical reimplementation of std::mt19937_64 ([rand.eng.mers] with
// the standard's mt19937_64 parameters — the algorithm is fully specified,
// so the stream is portable across standard libraries by construction).
class Mt19937_64 {
 public:
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  static constexpr result_type default_seed = 5489u;

  explicit Mt19937_64(result_type value = default_seed) { seed(value); }

  void seed(result_type value) {
    state_[0] = value;
    for (unsigned i = 1; i < kStateSize; ++i) {
      state_[i] =
          6364136223846793005ull * (state_[i - 1] ^ (state_[i - 1] >> 62)) + i;
    }
    next_ = kStateSize;
  }

  result_type operator()() {
    if (next_ >= kStateSize) refill();
    result_type y = state_[next_++];
    y ^= (y >> 29) & 0x5555555555555555ull;
    y ^= (y << 17) & 0x71D67FFFEDA60000ull;
    y ^= (y << 37) & 0xFFF7EEE000000000ull;
    y ^= y >> 43;
    return y;
  }

 private:
  static constexpr unsigned kStateSize = 312;
  static constexpr unsigned kMid = 156;

  // Out of line on purpose: runs once per 312 draws, and rng.cpp compiles
  // it with the vectorizer on (the twist was the hottest single function
  // in bench_satin_detection's profile).
  void refill();

  result_type state_[kStateSize];
  unsigned next_;
};

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Derives an independent substream. FNV-1a over the name mixed with a
  // fresh draw keeps substreams decorrelated and stable by name.
  Rng fork(std::string_view name);

  std::uint64_t next_u64() { return engine_(); }

  // Uniform real in [0, 1). Identical to
  // std::uniform_real_distribution<double>(0, 1) over this engine.
  double uniform() { return canonical(); }
  // Uniform real in [lo, hi).
  double uniform(double lo, double hi) { return canonical() * (hi - lo) + lo; }
  // Uniform integer in [lo, hi], inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }
  // Uniform index in [0, n).
  std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  bool bernoulli(double p) { return canonical() < p; }

  // Marsaglia polar method, replicating std::normal_distribution exactly —
  // including the historical quirk that this method constructed a fresh
  // distribution per call, so the polar method's cached second variate is
  // always discarded (keeping it would shift every downstream draw).
  double normal(double mean, double stddev) {
    double x, y, r2;
    do {
      x = 2.0 * canonical() - 1.0;
      y = 2.0 * canonical() - 1.0;
      r2 = x * x + y * y;
    } while (r2 > 1.0 || r2 == 0.0);
    const double mult = std::sqrt(-2.0 * std::log(r2) / r2);
    return y * mult * stddev + mean;
  }

  // Normal redrawn until it lands in [lo, hi]. Used for calibrated jitter
  // whose min/max the paper reports explicitly (Table I). Inline because
  // it is the hottest call in the tree (every cross-core staleness read).
  double truncated_normal(double mean, double stddev, double lo, double hi) {
    for (int i = 0; i < 1024; ++i) {
      const double x = normal(mean, stddev);
      if (x >= lo && x <= hi) return x;
    }
    // Degenerate parameterization; clamp rather than loop forever.
    return std::clamp(mean, lo, hi);
  }

  double exponential(double mean) {
    const double lambda = 1.0 / mean;  // divide like the std:: adaptor did
    return -std::log(1.0 - canonical()) / lambda;
  }

  // Log-normal parameterized by the mean/sigma of the underlying normal.
  double lognormal(double mu, double sigma) {
    return std::exp(sigma * normal(0.0, 1.0) + mu);
  }

  double triangular(double lo, double mode, double hi);

  // Uniform Duration in [lo, hi].
  Duration uniform_duration(Duration lo, Duration hi) {
    return Duration::from_ps(uniform_int(lo.ps(), hi.ps()));
  }

  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[index(v.size())];
  }

  template <typename It>
  void shuffle(It first, It last) {
    std::shuffle(first, last, engine_);
  }

  Mt19937_64& engine() { return engine_; }

 private:
  // [0, 1) with 53-bit precision: what std::generate_canonical<double, 53>
  // computes for a full-range 64-bit engine — one draw, rounded to double,
  // scaled by 2^-64, clamped below 1.0 for the one draw (2^64 - 1) whose
  // conversion rounds up to 2^64.
  double canonical() {
    const double r = static_cast<double>(engine_()) * 0x1p-64;
    return r < 1.0 ? r : std::nextafter(1.0, 0.0);
  }

  Mt19937_64 engine_;
};

}  // namespace satin::sim
