// Copy-on-write trial forking: prefix-shared branch exploration.
//
// Every sweep ladder re-simulates an identical warm prefix (platform
// construction, trusted boot, prober deployment, ramp) for every branch
// point, even though only one knob differs past the fork. ForkServer
// turns the kernel's fork() into the snapshot mechanism: the caller runs
// the shared prefix ONCE in-process, then run() fork()s one child per
// branch. Copy-on-write pages make the engine wheel/heap, slab event
// pool, hw::Memory + write generations, digest cache and OS/attacker
// state free to clone — no serialization of type-erased callbacks, no
// checkpoint format, the process image IS the snapshot. Each child
// applies its branch's delta (an attacker offset, a SATIN knob, a seed
// perturbation), runs to completion, and streams a checksummed result
// record back over a pipe.
//
// Observability contract (the part that keeps forked output
// byte-identical to the unforked oracle):
//  * fresh-sink mode (inherit_sinks = false, the zero-length-prefix
//    oracle path): each child installs a private MetricsRegistry +
//    FlightRecorder via sim::TrialObsScope — exactly what a TrialRunner
//    worker thread would hold — and persists them as SATNMET1 / SATNFLT1
//    artifacts before sending its result record;
//  * inherit-sink mode (inherit_sinks = true, the warm-prefix path): the
//    caller installs per-group sinks BEFORE running the prefix; each
//    child's COW copy already contains the prefix's records and simply
//    keeps recording, so the per-branch stream equals what an unforked
//    trial would have produced, prefix included;
//  * merge_obs() then folds the artifacts into the caller's sinks in
//    strict branch-index order with the same kTrialBegin markers
//    TrialRunner's submission-order merge emits — so stdout,
//    --metrics-stable and the flight chain hash are independent of the
//    branch-worker count.
//
// Failure ladder (the supervisor pattern from campaign/supervisor.cpp):
// a child that crashes (any exit before its record), wedges past the
// heartbeat timeout, or sends a torn record is SIGKILLed, reaped, and
// re-forked from the unchanged parent image with exponential backoff, up
// to max_retries times; a child that reports a deterministic exception
// ("E" record) is NOT retried. run_collect() rethrows the lowest-index
// branch error after every branch has settled, mirroring TrialRunner.
//
// Children never touch the parent's stdout/stderr buffers (flushed
// before each fork; children write their pipe with raw write() and leave
// with _exit()), and the parent is expected to hold no running threads
// across run() — fork replaces thread-pool parallelism on this path.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace satin::sim {

struct ForkServerOptions {
  // Max concurrent branch children; <= 0 means one per hardware thread.
  int jobs = 0;
  // Heartbeat/result deadline per attempt (host seconds); a silent child
  // past this is SIGKILLed and retried.
  double timeout_s = 120.0;
  // Re-forks per branch after a crash/wedge/torn record.
  int max_retries = 2;
  // Ring capacity of each fresh per-branch FlightRecorder (fresh-sink
  // mode only; inherited recorders keep their own configuration).
  std::size_t flight_ring = 0;
  // Children keep the caller-installed sinks (their COW copies already
  // hold the warm prefix's records) instead of installing fresh ones.
  bool inherit_sinks = false;
  // Record per-branch metrics even when no registry is installed in the
  // calling thread (the campaign always persists metrics artifacts).
  bool always_metrics = false;
  // Leave artifact files on disk for the caller instead of merging and
  // deleting them (the campaign merges from its journal later).
  bool keep_artifacts = false;
  // Artifacts directory; "" = a private mkdtemp() dir, removed after the
  // merge. Ignored for a stream when a *_path override is set.
  std::string scratch_dir;
  // Global index of branch 0 — merge markers and marker_seed use
  // index_base + branch, so a branch group embedded in a larger sweep
  // reproduces the sweep's own kTrialBegin sequence.
  std::size_t index_base = 0;
  // kTrialBegin payload per GLOBAL index (TrialRunner uses the trial
  // seed); null = 0.
  std::function<std::uint64_t(std::size_t)> marker_seed;
  // Per-branch artifact path overrides (branch-local index); null = files
  // under scratch_dir.
  std::function<std::string(std::size_t)> metrics_path;
  std::function<std::string(std::size_t)> flight_path;

  // Chaos knobs (failure-path tests; -1 = off). Each fires on the FIRST
  // attempt of the given branch only, so the retry must succeed.
  int chaos_kill_branch = -1;  // child SIGKILLs itself after the heartbeat
  int chaos_hang_branch = -1;  // child wedges silently (timeout path)
  int chaos_torn_branch = -1;  // child corrupts its record's checksum
};

struct ForkOutcome {
  bool ok = false;
  std::string payload;   // body()'s return value
  std::string error;     // set when !ok
  int attempts = 0;      // children forked for this branch
  // Branch produced obs artifacts (an "R" or "E" record arrived after the
  // child persisted its sinks); crashes leave nothing mergeable.
  bool has_artifacts = false;
};

class ForkServer {
 public:
  explicit ForkServer(ForkServerOptions options = {});
  ~ForkServer();

  ForkServer(const ForkServer&) = delete;
  ForkServer& operator=(const ForkServer&) = delete;

  // Forks one COW child per branch in [0, branches) off the CURRENT
  // process image; body(branch) runs in the child and its return value
  // (newline-free) travels back checksummed. body must not write to
  // stdout/stderr. Single-use: one run() per server. Branch failures are
  // reported in the outcomes, never thrown.
  std::vector<ForkOutcome> run(
      std::size_t branches, const std::function<std::string(std::size_t)>& body);

  // Folds per-branch artifacts into the CURRENTLY installed thread sinks
  // in branch-index order, bracketed by kTrialBegin markers, then removes
  // them (unless keep_artifacts). In inherit-sink mode call this AFTER
  // dropping the warm-prefix TrialObsScope, so the merge targets the
  // session sinks, not the group's.
  void merge_obs();

  // run() + merge_obs() + rethrow of the lowest-index branch error;
  // returns the payloads in branch order. The convenience wrapper for
  // callers with TrialRunner-style error semantics.
  std::vector<std::string> run_collect(
      std::size_t branches, const std::function<std::string(std::size_t)>& body);

  // Host wall-clock spent inside run().
  double wall_seconds() const { return wall_seconds_; }
  // Children forked (attempts, across retries), and the failure ladder's
  // bookkeeping — the campaign maps these onto its volatile gauges.
  std::uint64_t forks() const { return forks_; }
  std::uint64_t crashes() const { return crashes_; }
  std::uint64_t timeouts() const { return timeouts_; }
  std::uint64_t retries() const { return retries_; }

  // FNV-1a checksum used for result records (exposed for tests).
  static std::uint64_t record_checksum(const std::string& payload);

 private:
  struct Slot;

  bool spawn(std::size_t branch, std::vector<Slot>& active,
             std::vector<int>& attempts);
  [[noreturn]] void child_main(std::size_t branch, bool first_attempt, int fd,
                               const std::function<std::string(std::size_t)>& body);
  std::string metrics_path_for(std::size_t branch) const;
  std::string flight_path_for(std::size_t branch) const;
  void remove_artifacts(std::size_t branch) const;

  ForkServerOptions options_;
  std::vector<ForkOutcome> outcomes_;
  const std::function<std::string(std::size_t)>* child_body_ = nullptr;
  std::string scratch_;       // owned mkdtemp dir ("" when caller-provided)
  std::string artifacts_dir_; // scratch_ or options_.scratch_dir
  bool want_metrics_ = false;
  bool want_flight_ = false;
  bool ran_ = false;
  bool merged_ = false;
  double wall_seconds_ = 0.0;
  std::uint64_t forks_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t retries_ = 0;
};

}  // namespace satin::sim
