#include "sim/time.h"

#include <cstdio>

namespace satin::sim {

std::string Time::to_string() const {
  char buf[64];
  const double s = sec();
  std::snprintf(buf, sizeof(buf), "%.3e s", s);
  return buf;
}

}  // namespace satin::sim
