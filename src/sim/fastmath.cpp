#include "sim/fastmath.h"

#include <cmath>

namespace satin::sim::fm_detail {

double fm_exp_tail(double x) {
  // Same reduction and polynomial as fm_exp_core; only the final scaling
  // differs. Exclusive domains (the dispatcher routes |x| into exactly
  // one path), so the two paths never need to agree bit for bit.
  const double t = x * kInvLn2;
  const double kd = (t + 0x1.8p52) - 0x1.8p52;
  const int k = static_cast<int>(kd);
  const double r = (x - kd * kLn2Hi) - kd * kLn2Lo;
  const double r2 = r * r;
  double p = 1.0 / 6227020800.0;
  p = p * r + 1.0 / 479001600.0;
  p = p * r + 1.0 / 39916800.0;
  p = p * r + 1.0 / 3628800.0;
  p = p * r + 1.0 / 362880.0;
  p = p * r + 1.0 / 40320.0;
  p = p * r + 1.0 / 5040.0;
  p = p * r + 1.0 / 720.0;
  p = p * r + 1.0 / 120.0;
  p = p * r + 1.0 / 24.0;
  p = p * r + 1.0 / 6.0;
  p = p * r + 0.5;
  const double er = (r + r2 * p) + 1.0;
  // Power-of-two scaling is exact except into the subnormal range, where
  // ldexp rounds correctly — deterministic either way.
  return std::ldexp(er, k);
}

}  // namespace satin::sim::fm_detail
