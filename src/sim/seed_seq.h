// Per-trial seed derivation for replicated Monte-Carlo runs.
//
// A TrialRunner fans N independent trials out over J workers; each trial
// must get a seed that depends only on (root seed, trial index) so the
// fan-out is bit-identical for any J, including J=1. The derivation
// follows the same discipline as Rng::fork — FNV-1a over a substream name
// ("trial/<index>") mixed with a draw from the root-seeded engine — so a
// trial's substream is decorrelated from the root stream and from every
// other trial, and adding trials never perturbs existing ones.
#pragma once

#include <cstdint>
#include <cstdio>

#include "sim/rng.h"

namespace satin::sim {

class TrialSeedSeq {
 public:
  explicit TrialSeedSeq(std::uint64_t root_seed)
      : root_(root_seed), mix_(Rng(root_seed).next_u64()) {}

  std::uint64_t root() const { return root_; }

  // Stateless per-index derivation: depends only on (root, trial), never
  // on how many seeds were derived before or on which thread asks.
  std::uint64_t seed_for(std::uint64_t trial) const {
    char name[32];
    std::snprintf(name, sizeof(name), "trial/%llu",
                  static_cast<unsigned long long>(trial));
    return fnv1a(name) ^ mix_;
  }

  Rng rng_for(std::uint64_t trial) const { return Rng(seed_for(trial)); }

 private:
  static std::uint64_t fnv1a(const char* s) {
    std::uint64_t h = 14695981039346656037ull;
    for (; *s != '\0'; ++s) {
      h ^= static_cast<unsigned char>(*s);
      h *= 1099511628211ull;
    }
    return h;
  }

  std::uint64_t root_;
  std::uint64_t mix_;  // one fork-style draw from the root engine
};

}  // namespace satin::sim
