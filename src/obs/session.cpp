#include "obs/session.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "secure/digest_cache.h"
#include "sim/engine.h"
#include "sim/parallel.h"

namespace satin::obs {

void snapshot_engine_metrics(const sim::Engine& engine,
                             MetricsRegistry& registry, bool include_wall) {
  registry.gauge("engine.events_fired")
      .set(static_cast<double>(engine.events_fired()));
  registry.gauge("engine.queue_high_water")
      .set(static_cast<double>(engine.queue_high_water()));
  registry.gauge("engine.pending_events")
      .set(static_cast<double>(engine.pending_count()));
  const double popped = static_cast<double>(engine.events_fired() +
                                            engine.cancelled_popped());
  registry.gauge("engine.cancelled_ratio")
      .set(popped > 0.0
               ? static_cast<double>(engine.cancelled_popped()) / popped
               : 0.0);
  // Memory-model gauges (PR 5). All deterministic for a fixed event
  // sequence — schedule order fixes pool recycling, callback storage and
  // wheel/heap admission — so, unlike the wall gauges below, they are
  // safe to snapshot inside parallel trials at any --jobs.
  // Exception: the pool high-water mark depends on how many events are
  // simultaneously live, which the ASan/obs-off builds perturb via
  // callback storage sizes — volatile so --metrics-stable drops it.
  registry.gauge("engine.pool_high_water")
      .set(static_cast<double>(engine.pool_high_water()));
  registry.gauge("engine.pool_high_water").mark_volatile();
  registry.gauge("engine.pool_slab_grows")
      .set(static_cast<double>(engine.pool_slab_grows()));
  registry.gauge("engine.pool_reuses")
      .set(static_cast<double>(engine.pool_reuses()));
  registry.gauge("engine.cb_inline")
      .set(static_cast<double>(engine.callbacks_inline()));
  registry.gauge("engine.cb_fallback")
      .set(static_cast<double>(engine.callback_fallbacks()));
  registry.gauge("engine.wheel_events")
      .set(static_cast<double>(engine.wheel_scheduled()));
  registry.gauge("engine.heap_events")
      .set(static_cast<double>(engine.heap_scheduled()));
#if SATIN_OBS_ENABLED
  // Engine-side queue-depth digest (sampled per dispatch, cheap integer
  // bit ops — no per-event map lookup). Deterministic: depth at each
  // dispatch is fixed by the schedule order.
  registry.digest("engine.queue_depth").merge_from(engine.queue_depth_digest());
#endif
  if (!include_wall) return;
  registry.gauge("engine.wall_seconds").set(engine.wall_seconds());
  registry.gauge("engine.wall_seconds").mark_volatile();
  const double sim_s = engine.now().sec();
  registry.gauge("engine.wall_s_per_sim_s")
      .set(sim_s > 0.0 ? engine.wall_seconds() / sim_s : 0.0);
  registry.gauge("engine.wall_s_per_sim_s").mark_volatile();
}

namespace {

// Strips "--<key>=<value>" from argv; returns the last value seen.
std::string take_flag(int& argc, char** argv, const char* key) {
  const std::string prefix = std::string("--") + key + "=";
  std::string value;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      value = argv[i] + prefix.size();
      continue;
    }
    argv[out++] = argv[i];
  }
  argv[out] = nullptr;
  argc = out;
  return value;
}

// Strips a bare "--<key>" switch from argv; true when it was present.
bool take_bool_flag(int& argc, char** argv, const char* key) {
  const std::string flag = std::string("--") + key;
  bool present = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) {
      present = true;
      continue;
    }
    argv[out++] = argv[i];
  }
  argv[out] = nullptr;
  argc = out;
  return present;
}

}  // namespace

int ObsSession::jobs(int fallback) const {
  if (jobs_ < 0) return fallback;
  if (jobs_ == 0) return sim::TrialRunner::hardware_jobs();
  return jobs_;
}

ObsSession::ObsSession(int& argc, char** argv, std::size_t trace_capacity) {
  trace_path_ = take_flag(argc, argv, "trace");
  metrics_path_ = take_flag(argc, argv, "metrics");
  metrics_stable_ = take_bool_flag(argc, argv, "metrics-stable");
  faults_spec_ = take_flag(argc, argv, "faults");
  // --flight=path[,ring=N]: path of the binary recording, optionally a
  // ring capacity (keep only the newest N records; 0/absent = spill the
  // full stream to disk in bounded-memory chunks).
  std::string flight_spec = take_flag(argc, argv, "flight");
  if (!flight_spec.empty()) {
    const std::size_t comma = flight_spec.find(",ring=");
    if (comma != std::string::npos) {
      flight_ring_ = static_cast<std::size_t>(
          std::strtoull(flight_spec.c_str() + comma + 6, nullptr, 10));
      flight_spec.resize(comma);
    }
    flight_path_ = flight_spec;
  }
  const std::string jobs_value = take_flag(argc, argv, "jobs");
  if (!jobs_value.empty()) {
    jobs_ = std::atoi(jobs_value.c_str());
    if (jobs_ < 0) jobs_ = -1;  // nonsense value: behave as if absent
  }
  const std::string batch_value = take_flag(argc, argv, "batch");
  if (!batch_value.empty()) {
    batch_ = std::atoi(batch_value.c_str());
    if (batch_ < 1) batch_ = -1;  // nonsense value: behave as if absent
  }
  const std::string branches_value = take_flag(argc, argv, "branches");
  if (!branches_value.empty()) {
    branches_ = std::atoi(branches_value.c_str());
    if (branches_ < 1) branches_ = -1;  // nonsense value: behave as if absent
  }
  const std::string prefix_value = take_flag(argc, argv, "fork-prefix");
  if (!prefix_value.empty()) {
    fork_prefix_s_ = std::atof(prefix_value.c_str());
    if (!(fork_prefix_s_ >= 0.0)) fork_prefix_s_ = 0.0;  // also rejects NaN
  }
  const std::string cache_value = take_flag(argc, argv, "digest-cache");
  if (cache_value == "off") {
    digest_cache_ = false;
  } else if (!cache_value.empty() && cache_value != "on") {
    std::fprintf(stderr,
                 "obs: --digest-cache=%s not understood (want on|off), "
                 "keeping default on\n",
                 cache_value.c_str());
  }
  // Process-wide default read by every secure::DigestCache constructed
  // after this point (one per Introspector, i.e. per trial — workers
  // inherit the value set here before the pool fans out).
  secure::set_digest_cache_default(digest_cache_);
  // One flag should yield the full picture: a trace without an explicit
  // metrics path still drops a snapshot next to it.
  if (!trace_path_.empty() && metrics_path_.empty()) {
    metrics_path_ = trace_path_ + ".metrics.json";
  }
  if (!trace_path_.empty()) {
    recorder_ = std::make_unique<TraceRecorder>(trace_capacity);
    install_tracer(recorder_.get());
  }
  if (!metrics_path_.empty()) {
    registry_ = std::make_unique<MetricsRegistry>();
    install_metrics(registry_.get());
  }
  if (!flight_path_.empty()) {
    FlightRecorder::Options opts;
    opts.path = flight_path_;
    opts.ring = flight_ring_;
    flight_ = std::make_unique<FlightRecorder>(opts);
    if (flight_->failed()) {
      std::fprintf(stderr, "obs: failed to open flight recording %s\n",
                   flight_path_.c_str());
      flight_.reset();
      flight_path_.clear();
    } else {
      install_flight(flight_.get());
    }
  }
}

ObsSession::~ObsSession() { flush(nullptr); }

bool ObsSession::flush(const sim::Engine* engine) {
  if (flushed_) return true;
  flushed_ = true;
  bool ok = true;
  if (recorder_ != nullptr) {
    if (tracer() == recorder_.get()) install_tracer(nullptr);
    if (!recorder_->write_chrome_json(trace_path_)) {
      std::fprintf(stderr, "obs: failed to write trace %s\n",
                   trace_path_.c_str());
      ok = false;
    }
    if (!recorder_->write_jsonl(trace_path_ + ".jsonl")) {
      std::fprintf(stderr, "obs: failed to write trace %s.jsonl\n",
                   trace_path_.c_str());
      ok = false;
    }
  }
  if (registry_ != nullptr) {
    if (engine != nullptr) snapshot_engine_metrics(*engine, *registry_);
    if (metrics() == registry_.get()) install_metrics(nullptr);
    if (!registry_->write_json(metrics_path_,
                               /*include_volatile=*/!metrics_stable_)) {
      std::fprintf(stderr, "obs: failed to write metrics %s\n",
                   metrics_path_.c_str());
      ok = false;
    }
  }
  if (flight_ != nullptr) {
    if (flight() == flight_.get()) install_flight(nullptr);
    if (!flight_->close()) {
      std::fprintf(stderr, "obs: failed to write flight recording %s\n",
                   flight_path_.c_str());
      ok = false;
    }
  }
  return ok;
}

}  // namespace satin::obs
