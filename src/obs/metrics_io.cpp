// Binary MetricsRegistry snapshots ("SATNMET1").
//
// JSON snapshots round doubles through %.9g, which is fine for humans but
// not for the campaign runtime: a worker process persists its per-trial
// registry to disk and the supervisor must merge it with EXACTLY the bits
// an in-process merge would have produced, or the crash-identity gate
// (jobs=1 uninterrupted vs crashed/retried/resumed) fails on the last
// ulp. So this format stores raw state — doubles as bit patterns,
// Welford moments and digest buckets verbatim — little-endian, with a
// magic and version so a foreign or truncated file is rejected whole
// instead of half-applied.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace satin::obs {

namespace {

constexpr char kMagic[8] = {'S', 'A', 'T', 'N', 'M', 'E', 'T', '1'};
constexpr std::uint32_t kVersion = 1;
// Caps keep a corrupt length field from turning into a multi-GiB
// allocation before the real validation gets a chance to reject it.
constexpr std::uint32_t kMaxNameLen = 4096;
constexpr std::uint64_t kMaxEntries = 1u << 20;

class Writer {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes_.append(s);
  }
  const std::string& bytes() const { return bytes_; }

 private:
  void raw(const void* p, std::size_t n) {
    bytes_.append(static_cast<const char*>(p), n);
  }
  std::string bytes_;
};

class Reader {
 public:
  Reader(const std::string& bytes, std::string* error)
      : bytes_(bytes), error_(error) {}

  bool ok() const { return ok_; }

  bool u8(std::uint8_t& v) { return raw(&v, sizeof(v)); }
  bool u32(std::uint32_t& v) { return raw(&v, sizeof(v)); }
  bool u64(std::uint64_t& v) { return raw(&v, sizeof(v)); }
  bool f64(double& v) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    std::memcpy(&v, &bits, sizeof(v));
    return true;
  }
  bool str(std::string& s) {
    std::uint32_t len = 0;
    if (!u32(len)) return false;
    if (len > kMaxNameLen) return fail("name length out of range");
    if (bytes_.size() - pos_ < len) return fail("truncated string");
    s.assign(bytes_, pos_, len);
    pos_ += len;
    return true;
  }
  bool vec_u64(std::vector<std::uint64_t>& v, std::uint64_t n) {
    if (n > kMaxEntries) return fail("vector length out of range");
    v.resize(static_cast<std::size_t>(n));
    for (auto& x : v) {
      if (!u64(x)) return false;
    }
    return true;
  }
  bool vec_f64(std::vector<double>& v, std::uint64_t n) {
    if (n > kMaxEntries) return fail("vector length out of range");
    v.resize(static_cast<std::size_t>(n));
    for (auto& x : v) {
      if (!f64(x)) return false;
    }
    return true;
  }
  bool at_end() const { return pos_ == bytes_.size(); }

  bool fail(const std::string& message) {
    if (ok_ && error_ != nullptr) {
      *error_ = message + " at byte " + std::to_string(pos_);
    }
    ok_ = false;
    return false;
  }

 private:
  bool raw(void* p, std::size_t n) {
    if (!ok_) return false;
    if (bytes_.size() - pos_ < n) return fail("truncated record");
    std::memcpy(p, bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  const std::string& bytes_;
  std::string* error_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

bool set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

bool MetricsRegistry::save_binary(const std::string& path,
                                  std::string* error) const {
  Writer body;
  for (char c : kMagic) body.u8(static_cast<std::uint8_t>(c));
  body.u32(kVersion);

  body.u64(counters_.size());
  for (const auto& [name, c] : counters_) {
    body.str(name);
    body.u64(c.value());
  }
  body.u64(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    body.str(name);
    body.f64(g.value());
    body.u8(g.is_volatile() ? 1 : 0);
  }
  body.u64(digests_.size());
  for (const auto& [name, d] : digests_) {
    body.str(name);
    body.u64(d.count());
    body.f64(d.count() ? d.min() : 0.0);
    body.f64(d.count() ? d.max() : 0.0);
    body.u64(d.underflow());
    body.u64(d.overflow());
    body.u64(d.buckets().size());
    for (std::uint64_t b : d.buckets()) body.u64(b);
  }
  body.u64(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    body.str(name);
    body.u64(h.upper_bounds().size());
    for (double b : h.upper_bounds()) body.f64(b);
    body.u64(h.counts().size());
    for (std::uint64_t n : h.counts()) body.u64(n);
    const sim::Accumulator::State s = h.moments().state();
    body.u64(s.count);
    body.f64(s.mean);
    body.f64(s.m2);
    body.f64(s.min);
    body.f64(s.max);
    body.f64(s.sum);
  }

  // Crash-safe: a reader either sees the complete previous file or the
  // complete new one, never a torn write.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return set_error(error, tmp + ": cannot open for write");
  const std::string& bytes = body.bytes();
  const bool write_ok = std::fwrite(bytes.data(), 1, bytes.size(), f) ==
                        bytes.size();
  const bool flush_ok = std::fflush(f) == 0;
  const bool close_ok = std::fclose(f) == 0;
  if (!write_ok || !flush_ok || !close_ok) {
    std::remove(tmp.c_str());
    return set_error(error, tmp + ": write failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return set_error(error, path + ": rename failed");
  }
  return true;
}

bool MetricsRegistry::load_merge_binary(const std::string& path,
                                        std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return set_error(error, path + ": cannot open");
  std::string bytes;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return set_error(error, path + ": read error");

  std::string detail;
  Reader r(bytes, &detail);
  char magic[8] = {};
  for (char& c : magic) {
    std::uint8_t b = 0;
    if (!r.u8(b)) break;
    c = static_cast<char>(b);
  }
  if (!r.ok() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return set_error(error, path + ": not a SATNMET1 metrics snapshot");
  }
  std::uint32_t version = 0;
  if (!r.u32(version) || version != kVersion) {
    return set_error(error, path + ": unsupported snapshot version");
  }

  // Parse into a scratch registry first: a truncated or corrupt file must
  // reject whole, never merge half its sections.
  MetricsRegistry scratch;
  std::uint64_t count = 0;

  if (!r.u64(count) || count > kMaxEntries) {
    return set_error(error, path + ": corrupt counter section");
  }
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    std::string name;
    std::uint64_t value = 0;
    if (r.str(name) && r.u64(value)) scratch.counter(name).inc(value);
  }

  if (!r.u64(count) || count > kMaxEntries) {
    return set_error(error, path + ": corrupt gauge section");
  }
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    std::string name;
    double value = 0.0;
    std::uint8_t is_volatile = 0;
    if (r.str(name) && r.f64(value) && r.u8(is_volatile)) {
      Gauge& g = scratch.gauge(name);
      g.set(value);
      if (is_volatile != 0) g.mark_volatile();
    }
  }

  if (!r.u64(count) || count > kMaxEntries) {
    return set_error(error, path + ": corrupt digest section");
  }
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    std::string name;
    std::uint64_t total = 0, underflow = 0, overflow = 0, buckets = 0;
    double min = 0.0, max = 0.0;
    std::vector<std::uint64_t> bucket_counts;
    if (r.str(name) && r.u64(total) && r.f64(min) && r.f64(max) &&
        r.u64(underflow) && r.u64(overflow) && r.u64(buckets) &&
        r.vec_u64(bucket_counts, buckets)) {
      if (bucket_counts.size() != QuantileDigest::kBuckets) {
        r.fail("digest bucket grid mismatch");
        break;
      }
      scratch.digest(name).restore(bucket_counts, underflow, overflow, total,
                                   min, max);
    }
  }

  if (!r.u64(count) || count > kMaxEntries) {
    return set_error(error, path + ": corrupt histogram section");
  }
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    std::string name;
    std::uint64_t bounds_n = 0, counts_n = 0;
    std::vector<double> bounds;
    std::vector<std::uint64_t> bucket_counts;
    sim::Accumulator::State s;
    if (r.str(name) && r.u64(bounds_n) && r.vec_f64(bounds, bounds_n) &&
        r.u64(counts_n) && r.vec_u64(bucket_counts, counts_n) &&
        r.u64(s.count) && r.f64(s.mean) && r.f64(s.m2) && r.f64(s.min) &&
        r.f64(s.max) && r.f64(s.sum)) {
      if (counts_n != bounds_n + 1) {
        r.fail("histogram bucket/bound mismatch");
        break;
      }
      try {
        scratch.histogram(name, bounds).restore(bucket_counts, s);
      } catch (const std::exception& e) {
        r.fail(e.what());
        break;
      }
    }
  }

  if (!r.ok()) return set_error(error, path + ": " + detail);
  if (!r.at_end()) return set_error(error, path + ": trailing bytes");

  merge_from(scratch);
  return true;
}

}  // namespace satin::obs
