// Streaming cross-trial quantile digests.
//
// The campaign ladder aggregates millions of trials without buffering
// them, so every distribution summary must be *mergeable*: per-trial
// digests fold into a session digest, and the result must not depend on
// merge order (workers finish in racy order; submission-order merge makes
// the output deterministic, and a permutation-invariant digest makes it
// deterministic even if that discipline ever changes upstream — e.g. a
// future campaign daemon streaming shard summaries as they arrive).
//
// QuantileDigest buckets values on a log2 grid: 8 sub-buckets per octave
// over 2^-64 .. 2^64 (1024 fixed buckets, ~9% relative error per bucket),
// plus underflow/overflow bins and exact min/max. All state is integer
// counts plus commutative min/max, so merge is associative, commutative
// and bit-exact under any permutation — unlike sim::Accumulator's Welford
// moments, whose floating-point merge is order-sensitive. Quantiles
// (p50/p95/p99) are reconstructed from the bucket counts at snapshot
// time; observe() is a handful of integer ops (bit tricks on the double
// representation, no libm), cheap enough for per-event hot paths.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

namespace satin::obs {

class QuantileDigest {
 public:
  // 2^kSubBits sub-buckets per octave; exponents clamped to
  // [kMinExp, kMaxExp) cover every quantity the simulator observes
  // (sub-picosecond latencies to multi-billion counts).
  static constexpr int kSubBits = 3;
  static constexpr int kMinExp = -64;
  static constexpr int kMaxExp = 64;
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kMaxExp - kMinExp) << kSubBits;

  QuantileDigest() : buckets_(kBuckets, 0) {}

  void observe(double value) {
    ++count_;
    if (count_ == 1) {
      min_ = max_ = value;
    } else {
      if (value < min_) min_ = value;
      if (value > max_) max_ = value;
    }
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
    // Sign bit set (negatives, -0.0) or exponent below range: underflow
    // bin. Zero and subnormals land there too (biased exponent 0).
    const int biased = static_cast<int>((bits >> 52) & 0x7FF);
    const int exp = biased - 1023;  // value in [2^exp, 2^(exp+1))
    if ((bits >> 63) != 0 || biased == 0 || exp < kMinExp) {
      ++underflow_;
      return;
    }
    if (exp >= kMaxExp || biased == 0x7FF) {  // out of range, inf, NaN
      ++overflow_;
      return;
    }
    const std::uint64_t sub = (bits >> (52 - kSubBits)) & ((1u << kSubBits) - 1);
    ++buckets_[(static_cast<std::size_t>(exp - kMinExp) << kSubBits) + sub];
  }

  // Adds the other digest's counts into this one. Pure integer adds plus
  // commutative min/max: any merge order yields identical state.
  void merge_from(const QuantileDigest& other);

  std::uint64_t count() const { return count_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  // Value at quantile q in [0, 1], reconstructed from the bucket grid
  // (bucket midpoint, clamped to the exact [min, max]); 0 when empty.
  double quantile(double q) const;

  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  // Exposed for tests (permutation-invariance is asserted on the raw state).
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }

  // Exact-state restore for binary (de)serialization across process
  // boundaries; a restored digest merges bit-identically to the original.
  // `buckets` must have exactly kBuckets entries (throws otherwise).
  void restore(const std::vector<std::uint64_t>& buckets,
               std::uint64_t underflow, std::uint64_t overflow,
               std::uint64_t count, double min, double max);

 private:
  static double bucket_midpoint(std::size_t index);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t underflow_ = 0;  // <= 0, subnormal, or below 2^kMinExp
  std::uint64_t overflow_ = 0;   // >= 2^kMaxExp, inf, NaN
  std::uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace satin::obs
