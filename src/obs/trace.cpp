#include "obs/trace.h"

#include <cstdio>
#include <map>
#include <utility>

namespace satin::obs {

namespace {

// Track layout: tid 0 is the engine/global track; each core owns a pair of
// tracks (normal world, secure world). Events with a core but no world
// land on the core's normal track.
int track_tid(const TraceEvent& ev) {
  if (ev.core < 0) return 0;
  return 1 + ev.core * 2 + (ev.world == kWorldSecure ? 1 : 0);
}

std::string track_name(int tid) {
  if (tid == 0) return "engine";
  const int core = (tid - 1) / 2;
  const bool secure = ((tid - 1) % 2) != 0;
  return "core" + std::to_string(core) + (secure ? "/secure" : "/normal");
}

const char* chrome_phase(TracePhase phase) {
  switch (phase) {
    case TracePhase::kBegin:
      return "B";
    case TracePhase::kEnd:
      return "E";
    case TracePhase::kInstant:
      return "i";
    case TracePhase::kCounter:
      return "C";
  }
  return "i";
}

// Microsecond timestamp with picosecond resolution kept.
std::string format_ts_us(std::int64_t t_ps) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f", static_cast<double>(t_ps) * 1e-6);
  return buf;
}

std::string format_value(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

const char* to_string(TracePhase phase) {
  switch (phase) {
    case TracePhase::kBegin:
      return "begin";
    case TracePhase::kEnd:
      return "end";
    case TracePhase::kInstant:
      return "instant";
    case TracePhase::kCounter:
      return "counter";
  }
  return "?";
}

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

TraceRecorder::TraceRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void TraceRecorder::clear() {
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
}

void TraceRecorder::append_from(const TraceRecorder& other) {
  for (const TraceEvent& ev : other.snapshot()) record(ev);
  dropped_ += other.dropped();
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::string TraceRecorder::to_chrome_json() const {
  const std::vector<TraceEvent> events = snapshot();

  // Collect the tracks actually used so the metadata block stays tight.
  std::map<int, std::string> tracks;
  tracks[0] = track_name(0);
  for (const TraceEvent& ev : events) {
    const int tid = track_tid(ev);
    if (tracks.find(tid) == tracks.end()) tracks[tid] = track_name(tid);
  }

  std::string out;
  out.reserve(events.size() * 96 + 1024);
  out += "{\"traceEvents\":[\n";
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"satin-sim\"}}";
  for (const auto& [tid, name] : tracks) {
    out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" +
           std::to_string(tid) + ",\"args\":{\"name\":\"" +
           json_escape(name) + "\"}}";
    out += ",\n{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,"
           "\"tid\":" +
           std::to_string(tid) + ",\"args\":{\"sort_index\":" +
           std::to_string(tid) + "}}";
  }

  for (const TraceEvent& ev : events) {
    out += ",\n{\"name\":\"";
    out += json_escape(ev.name);
    out += "\",\"cat\":\"";
    out += json_escape(ev.category);
    out += "\",\"ph\":\"";
    out += chrome_phase(ev.phase);
    out += "\",\"ts\":";
    out += format_ts_us(ev.t_ps);
    out += ",\"pid\":0,\"tid\":";
    out += std::to_string(track_tid(ev));
    if (ev.phase == TracePhase::kInstant) out += ",\"s\":\"t\"";
    if (ev.phase == TracePhase::kCounter) {
      out += ",\"args\":{\"";
      out += json_escape(ev.name);
      out += "\":";
      out += format_value(ev.arg_value);
      out += "}";
    } else if (ev.arg_name != nullptr) {
      out += ",\"args\":{\"";
      out += json_escape(ev.arg_name);
      out += "\":";
      out += format_value(ev.arg_value);
      out += "}";
    }
    out += "}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":";
  out += std::to_string(dropped_);
  out += "}}\n";
  return out;
}

std::string TraceRecorder::to_jsonl() const {
  std::string out;
  const std::vector<TraceEvent> events = snapshot();
  out.reserve(events.size() * 96);
  for (const TraceEvent& ev : events) {
    out += "{\"cat\":\"";
    out += json_escape(ev.category);
    out += "\",\"name\":\"";
    out += json_escape(ev.name);
    out += "\",\"phase\":\"";
    out += to_string(ev.phase);
    out += "\",\"t_ps\":";
    out += std::to_string(ev.t_ps);
    out += ",\"core\":";
    out += std::to_string(ev.core);
    out += ",\"world\":";
    out += std::to_string(ev.world);
    if (ev.phase == TracePhase::kCounter) {
      out += ",\"value\":";
      out += format_value(ev.arg_value);
    } else if (ev.arg_name != nullptr) {
      out += ",\"";
      out += json_escape(ev.arg_name);
      out += "\":";
      out += format_value(ev.arg_value);
    }
    out += "}\n";
  }
  return out;
}

namespace {
bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = written == content.size() && std::fclose(f) == 0;
  if (!ok && written != content.size()) std::fclose(f);
  return ok;
}
}  // namespace

bool TraceRecorder::write_chrome_json(const std::string& path) const {
  return write_file(path, to_chrome_json());
}

bool TraceRecorder::write_jsonl(const std::string& path) const {
  return write_file(path, to_jsonl());
}

}  // namespace satin::obs
