#include "obs/digest.h"

#include <cmath>
#include <stdexcept>

namespace satin::obs {

void QuantileDigest::restore(const std::vector<std::uint64_t>& buckets,
                             std::uint64_t underflow, std::uint64_t overflow,
                             std::uint64_t count, double min, double max) {
  if (buckets.size() != kBuckets) {
    throw std::invalid_argument("QuantileDigest::restore: bucket count");
  }
  buckets_ = buckets;
  underflow_ = underflow;
  overflow_ = overflow;
  count_ = count;
  min_ = min;
  max_ = max;
}

void QuantileDigest::merge_from(const QuantileDigest& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
}

double QuantileDigest::bucket_midpoint(std::size_t index) {
  const int exp = static_cast<int>(index >> kSubBits) + kMinExp;
  const double sub = static_cast<double>(index & ((1u << kSubBits) - 1));
  constexpr double kSubCount = 1u << kSubBits;
  // Bucket spans [2^exp * (1 + sub/8), 2^exp * (1 + (sub+1)/8)).
  const double lo = 1.0 + sub / kSubCount;
  const double hi = 1.0 + (sub + 1.0) / kSubCount;
  return std::ldexp((lo + hi) * 0.5, exp);
}

double QuantileDigest::quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  // Rank of the requested quantile, 1-based; walk the bins in value order.
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = underflow_;
  if (rank <= seen) return min_;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (rank <= seen) {
      double v = bucket_midpoint(i);
      if (v < min_) v = min_;
      if (v > max_) v = max_;
      return v;
    }
  }
  return max_;  // overflow bin
}

}  // namespace satin::obs
