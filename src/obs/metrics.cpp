#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "obs/trace.h"  // json_escape

namespace satin::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: no buckets");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("Histogram: bounds must strictly increase");
  }
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  acc_.add(value);
}

std::vector<double> Histogram::default_time_buckets() {
  std::vector<double> bounds;
  for (int decade = -9; decade <= 3; ++decade) {
    const double base = std::pow(10.0, decade);
    bounds.push_back(base);
    bounds.push_back(3.0 * base);
  }
  return bounds;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(Histogram::default_time_buckets()))
             .first;
  }
  return it->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(std::move(upper_bounds))).first;
    return it->second;
  }
  if (it->second.upper_bounds() != upper_bounds) {
    throw std::logic_error("MetricsRegistry: histogram '" + name +
                           "' already registered with different buckets");
  }
  return it->second;
}

QuantileDigest& MetricsRegistry::digest(const std::string& name) {
  return digests_[name];
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    counters_[name].inc(c.value());
  }
  for (const auto& [name, g] : other.gauges_) {
    Gauge& mine = gauges_[name];
    mine.set(g.value());
    if (g.is_volatile()) mine.mark_volatile();
  }
  for (const auto& [name, d] : other.digests_) {
    digests_[name].merge_from(d);
  }
  for (const auto& [name, h] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.emplace(name, Histogram(h.upper_bounds())).first;
    }
    it->second.merge_from(h);
  }
}

void Histogram::merge_from(const Histogram& other) {
  if (bounds_ != other.bounds_) {
    throw std::logic_error("Histogram::merge_from: mismatched buckets");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  acc_.merge(other.acc_);
}

void Histogram::restore(const std::vector<std::uint64_t>& counts,
                        const sim::Accumulator::State& moments) {
  if (counts.size() != counts_.size()) {
    throw std::invalid_argument("Histogram::restore: bucket count");
  }
  counts_ = counts;
  acc_.restore(moments);
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

const QuantileDigest* MetricsRegistry::find_digest(
    const std::string& name) const {
  const auto it = digests_.find(name);
  return it == digests_.end() ? nullptr : &it->second;
}

namespace {

std::string format_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string MetricsRegistry::to_json(bool include_volatile) const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + std::to_string(c.value());
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!include_volatile && g.is_volatile()) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": " + format_double(g.value());
  }
  out += "\n  },\n  \"digests\": {";
  first = true;
  for (const auto& [name, d] : digests_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(name) + "\": {\"count\": " +
           std::to_string(d.count()) + ", \"min\": " + format_double(d.min()) +
           ", \"p50\": " + format_double(d.p50()) +
           ", \"p95\": " + format_double(d.p95()) +
           ", \"p99\": " + format_double(d.p99()) +
           ", \"max\": " + format_double(d.max()) + "}";
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    const sim::Accumulator& acc = h.moments();
    out += "    \"" + json_escape(name) + "\": {\"count\": " +
           std::to_string(acc.count()) +
           ", \"mean\": " + format_double(acc.mean()) +
           ", \"min\": " + format_double(acc.min()) +
           ", \"max\": " + format_double(acc.max()) +
           ", \"stddev\": " + format_double(acc.stddev()) +
           ", \"buckets\": [";
    const auto& bounds = h.upper_bounds();
    const auto& counts = h.counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) out += ", ";
      out += "{\"le\": ";
      out += i < bounds.size() ? format_double(bounds[i]) : "\"inf\"";
      out += ", \"n\": " + std::to_string(counts[i]) + "}";
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

bool MetricsRegistry::write_json(const std::string& path,
                                 bool include_volatile) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string content = to_json(include_volatile);
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool write_ok = written == content.size();
  const bool close_ok = std::fclose(f) == 0;
  return write_ok && close_ok;
}

}  // namespace satin::obs
