// Structured simulation tracing.
//
// Every result this repo reproduces is a timing race; when a race comes
// out wrong the printf tables say *what* happened but never *when*. The
// TraceRecorder captures typed events — world-switch enter/exit, scan
// start/end, per-byte race resolutions, detections, evasions, scheduler
// ticks, timer fires, SMC calls — stamped with simulated time, core id and
// TrustZone world, into a fixed-capacity ring buffer (oldest events are
// overwritten, never reallocated mid-run). The buffer exports as Chrome
// trace-event JSON (open in Perfetto or chrome://tracing; one track per
// core per world) and as JSONL for scripted analysis.
//
// Components emit through the SATIN_TRACE_* macros below. The macros are
// compiled out entirely with -DSATIN_ENABLE_OBS=OFF; when compiled in they
// cost one pointer test unless a recorder is installed.
//
// Event names and categories must be string literals (or other
// static-storage strings): the recorder stores the pointers, not copies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace satin::obs {

// Chrome trace-event phases we use. kBegin/kEnd pair into duration spans
// on the same track; kInstant marks a point; kCounter samples a value.
enum class TracePhase : std::uint8_t { kBegin, kEnd, kInstant, kCounter };

const char* to_string(TracePhase phase);

// Track identity: core >= 0 selects a per-core track, kGlobalTrack the
// engine/global track. world selects the normal/secure sub-track.
inline constexpr int kGlobalTrack = -1;
inline constexpr int kWorldNone = -1;
inline constexpr int kWorldNormal = 0;
inline constexpr int kWorldSecure = 1;

struct TraceEvent {
  const char* category = "";  // static string, e.g. "hw"
  const char* name = "";      // static string, e.g. "secure_world"
  std::int64_t t_ps = 0;      // simulated timestamp
  TracePhase phase = TracePhase::kInstant;
  std::int16_t core = kGlobalTrack;
  std::int8_t world = kWorldNone;
  const char* arg_name = nullptr;  // optional single argument
  double arg_value = 0.0;
};

class TraceRecorder {
 public:
  // Default capacity holds ~1M events (~48 MB); long simulations keep the
  // most recent window, which is the one a failed race post-mortem needs.
  explicit TraceRecorder(std::size_t capacity = 1u << 20);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return ring_.size(); }
  // Events overwritten after the ring filled up.
  std::uint64_t dropped() const { return dropped_; }

  void record(const TraceEvent& event) {
    if (ring_.size() < capacity_) {
      ring_.push_back(event);
      return;
    }
    ring_[head_] = event;
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
  }

  void begin(const char* category, const char* name, sim::Time t, int core,
             int world) {
    record(make(category, name, TracePhase::kBegin, t, core, world));
  }
  void end(const char* category, const char* name, sim::Time t, int core,
           int world) {
    record(make(category, name, TracePhase::kEnd, t, core, world));
  }
  void instant(const char* category, const char* name, sim::Time t, int core,
               int world, const char* arg_name = nullptr,
               double arg_value = 0.0) {
    TraceEvent ev = make(category, name, TracePhase::kInstant, t, core, world);
    ev.arg_name = arg_name;
    ev.arg_value = arg_value;
    record(ev);
  }
  void counter(const char* name, sim::Time t, double value) {
    TraceEvent ev =
        make("counter", name, TracePhase::kCounter, t, kGlobalTrack,
             kWorldNone);
    ev.arg_value = value;
    record(ev);
  }

  void clear();

  // Appends another recorder's events (in its recording order) into this
  // ring. The TrialRunner concatenates per-trial recorders in submission
  // order; trials each start at t=0, so merged timelines overlay — the
  // same convention overhead_study uses for its two passes.
  void append_from(const TraceRecorder& other);

  // Events in recording order (ring unwound, oldest first).
  std::vector<TraceEvent> snapshot() const;

  // Chrome trace-event format ("traceEvents" array plus thread-name
  // metadata); loads in Perfetto / chrome://tracing.
  std::string to_chrome_json() const;
  // One JSON object per line, for jq/python post-processing.
  std::string to_jsonl() const;

  bool write_chrome_json(const std::string& path) const;
  bool write_jsonl(const std::string& path) const;

 private:
  static TraceEvent make(const char* category, const char* name,
                         TracePhase phase, sim::Time t, int core, int world) {
    TraceEvent ev;
    ev.category = category;
    ev.name = name;
    ev.t_ps = t.ps();
    ev.phase = phase;
    ev.core = static_cast<std::int16_t>(core);
    ev.world = static_cast<std::int8_t>(world);
    return ev;
  }

  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  // index of the oldest event once the ring is full
  std::uint64_t dropped_ = 0;
};

// Escapes a string for embedding inside a JSON string literal.
std::string json_escape(const std::string& raw);

// Per-thread recorder the macros emit into; null disables tracing. The
// slot is thread-local so parallel trial workers each record into their
// own ring (installed by sim::TrialRunner around every trial) while the
// main thread keeps the session-wide one — no locks on the hot path.
inline TraceRecorder*& tracer_slot() {
  thread_local TraceRecorder* recorder = nullptr;
  return recorder;
}
inline TraceRecorder* tracer() { return tracer_slot(); }
inline void install_tracer(TraceRecorder* recorder) {
  tracer_slot() = recorder;
}

}  // namespace satin::obs

#ifndef SATIN_OBS_ENABLED
#define SATIN_OBS_ENABLED 1
#endif

#if SATIN_OBS_ENABLED

#define SATIN_TRACE_BEGIN(category, name, t, core, world)         \
  do {                                                            \
    if (auto* satin_obs_tr_ = ::satin::obs::tracer())             \
      satin_obs_tr_->begin((category), (name), (t), (core), (world)); \
  } while (0)

#define SATIN_TRACE_END(category, name, t, core, world)           \
  do {                                                            \
    if (auto* satin_obs_tr_ = ::satin::obs::tracer())             \
      satin_obs_tr_->end((category), (name), (t), (core), (world)); \
  } while (0)

#define SATIN_TRACE_INSTANT(category, name, t, core, world)       \
  do {                                                            \
    if (auto* satin_obs_tr_ = ::satin::obs::tracer())             \
      satin_obs_tr_->instant((category), (name), (t), (core), (world)); \
  } while (0)

#define SATIN_TRACE_INSTANT_ARG(category, name, t, core, world, arg_name, \
                                arg_value)                                \
  do {                                                                    \
    if (auto* satin_obs_tr_ = ::satin::obs::tracer())                     \
      satin_obs_tr_->instant((category), (name), (t), (core), (world),    \
                             (arg_name),                                  \
                             static_cast<double>(arg_value));             \
  } while (0)

#define SATIN_TRACE_COUNTER(name, t, value)                          \
  do {                                                               \
    if (auto* satin_obs_tr_ = ::satin::obs::tracer())                \
      satin_obs_tr_->counter((name), (t), static_cast<double>(value)); \
  } while (0)

#else  // !SATIN_OBS_ENABLED

#define SATIN_TRACE_BEGIN(category, name, t, core, world) ((void)0)
#define SATIN_TRACE_END(category, name, t, core, world) ((void)0)
#define SATIN_TRACE_INSTANT(category, name, t, core, world) ((void)0)
#define SATIN_TRACE_INSTANT_ARG(category, name, t, core, world, arg_name, \
                                arg_value)                                \
  ((void)0)
#define SATIN_TRACE_COUNTER(name, t, value) ((void)0)

#endif  // SATIN_OBS_ENABLED
