// Named metrics for the simulator: counters, gauges and fixed-bucket
// histograms (moments via sim::Accumulator), exported as a deterministic
// JSON snapshot.
//
// Naming convention: "<subsystem>.<metric>[_<unit>]", lower_snake case,
// e.g. "introspect.bytes_scanned", "attack.staleness_s". Counters count
// events, gauges carry last-written values (engine self-metrics), and
// histograms record distributions (probe staleness, switch durations).
//
// Components emit through SATIN_METRIC_* macros; with no registry
// installed a macro is one pointer test, and -DSATIN_ENABLE_OBS=OFF
// compiles the macros out entirely.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/digest.h"
#include "sim/stats.h"

namespace satin::obs {

class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double value) { value_ = value; }
  double value() const { return value_; }

  // Volatile gauges carry host-dependent values (wall clock, allocator
  // high-water marks) that are NOT part of the bit-identity contract.
  // Stable snapshots (--metrics-stable, to_json(false)) omit them so CI
  // identity gates can diff snapshots verbatim instead of sed-ing out
  // known-noisy names.
  void mark_volatile() { volatile_ = true; }
  bool is_volatile() const { return volatile_; }

 private:
  double value_ = 0.0;
  bool volatile_ = false;
};

// Fixed upper-bound buckets plus an implicit +inf overflow bucket;
// moments (count/mean/min/max/stddev) ride on sim::Accumulator.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value);

  const std::vector<double>& upper_bounds() const { return bounds_; }
  // counts()[i] holds observations <= upper_bounds()[i] (and greater than
  // the previous bound); counts().back() is the overflow bucket.
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  const sim::Accumulator& moments() const { return acc_; }

  // Adds another histogram's bucket counts and moments into this one;
  // the bucket bounds must match exactly (throws otherwise).
  void merge_from(const Histogram& other);

  // Exact-state restore for binary (de)serialization; `counts` must have
  // upper_bounds().size() + 1 entries (throws otherwise).
  void restore(const std::vector<std::uint64_t>& counts,
               const sim::Accumulator::State& moments);

  // Decade buckets 1e-9 .. 1e3 with a x3 midpoint each — wide enough for
  // every timescale the paper touches (ns hash steps to quarter-hour runs).
  static std::vector<double> default_time_buckets();

 private:
  std::vector<double> bounds_;   // strictly increasing
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 (overflow)
  sim::Accumulator acc_;
};

class MetricsRegistry {
 public:
  // Lookup-or-create by name. References stay valid for the registry
  // lifetime (node-based map).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  // Creates with default_time_buckets() on first use.
  Histogram& histogram(const std::string& name);
  // Pre-registers with explicit buckets; throws if the name already exists
  // with different bounds.
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);
  // Streaming quantile digest (p50/p95/p99/max); unlike histograms these
  // merge permutation-invariantly, so cross-trial aggregation is bit-exact
  // no matter how shards arrive.
  QuantileDigest& digest(const std::string& name);

  // Read-only lookups; null when the name was never registered.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;
  const QuantileDigest* find_digest(const std::string& name) const;

  // Folds another registry into this one: counters add, gauges take the
  // other's value (last merge wins), histograms add bucket counts and
  // combine moments. Histograms present in both registries must share
  // bucket bounds (throws otherwise). The TrialRunner merges per-trial
  // registries in submission order, so the folded state is bit-identical
  // for any worker count.
  void merge_from(const MetricsRegistry& other);

  // Deterministic snapshot: names sorted, stable field order, same string
  // for the same state no matter the registration order. Pass
  // include_volatile=false for the stable view (volatile gauges omitted)
  // that identity gates diff across jobs counts and cache modes.
  std::string to_json(bool include_volatile = true) const;
  bool write_json(const std::string& path,
                  bool include_volatile = true) const;

  // Exact binary snapshot ("SATNMET1", little-endian, doubles as raw bit
  // patterns): unlike to_json, a save/load round trip restores byte-exact
  // internal state, so campaign workers can persist per-trial registries
  // and the supervisor can merge them across the process boundary with
  // the same bits an in-process merge would produce. save_binary writes
  // crash-safe (temp file + rename). load_merge_binary MERGES the file
  // into this registry (merge_from semantics); load into an empty
  // registry to read verbatim. Returns false with *error set on any I/O
  // or format problem — a truncated or corrupt file never half-applies.
  bool save_binary(const std::string& path, std::string* error) const;
  bool load_merge_binary(const std::string& path, std::string* error);

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, QuantileDigest> digests_;
};

// Per-thread registry the macros emit into; null disables metrics. The
// slot is thread-local so parallel trial workers each write into their
// own registry (installed by sim::TrialRunner around every trial) while
// the main thread keeps the session-wide one — no locks on the hot path.
inline MetricsRegistry*& metrics_slot() {
  thread_local MetricsRegistry* registry = nullptr;
  return registry;
}
inline MetricsRegistry* metrics() { return metrics_slot(); }
inline void install_metrics(MetricsRegistry* registry) {
  metrics_slot() = registry;
}

}  // namespace satin::obs

#ifndef SATIN_OBS_ENABLED
#define SATIN_OBS_ENABLED 1
#endif

#if SATIN_OBS_ENABLED

#define SATIN_METRIC_INC(name)                                      \
  do {                                                              \
    if (auto* satin_obs_m_ = ::satin::obs::metrics())               \
      satin_obs_m_->counter(name).inc();                            \
  } while (0)

#define SATIN_METRIC_ADD(name, delta)                                      \
  do {                                                                     \
    if (auto* satin_obs_m_ = ::satin::obs::metrics())                      \
      satin_obs_m_->counter(name).inc(static_cast<std::uint64_t>(delta));  \
  } while (0)

#define SATIN_METRIC_GAUGE_SET(name, value)                            \
  do {                                                                 \
    if (auto* satin_obs_m_ = ::satin::obs::metrics())                  \
      satin_obs_m_->gauge(name).set(static_cast<double>(value));       \
  } while (0)

#define SATIN_METRIC_OBSERVE(name, value)                               \
  do {                                                                  \
    if (auto* satin_obs_m_ = ::satin::obs::metrics())                   \
      satin_obs_m_->histogram(name).observe(static_cast<double>(value)); \
  } while (0)

#define SATIN_METRIC_DIGEST_OBSERVE(name, value)                       \
  do {                                                                 \
    if (auto* satin_obs_m_ = ::satin::obs::metrics())                  \
      satin_obs_m_->digest(name).observe(static_cast<double>(value));  \
  } while (0)

#else  // !SATIN_OBS_ENABLED

#define SATIN_METRIC_INC(name) ((void)0)
#define SATIN_METRIC_ADD(name, delta) ((void)0)
#define SATIN_METRIC_GAUGE_SET(name, value) ((void)0)
#define SATIN_METRIC_OBSERVE(name, value) ((void)0)
#define SATIN_METRIC_DIGEST_OBSERVE(name, value) ((void)0)

#endif  // SATIN_OBS_ENABLED
