#include "obs/flight/recorder.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace satin::obs {

namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline std::uint64_t fnv_step(std::uint64_t h, std::uint64_t x) {
  return (h ^ x) * kFnvPrime;
}

void put_u32(unsigned char* out, std::uint32_t v) {
  out[0] = static_cast<unsigned char>(v);
  out[1] = static_cast<unsigned char>(v >> 8);
  out[2] = static_cast<unsigned char>(v >> 16);
  out[3] = static_cast<unsigned char>(v >> 24);
}

void put_u64(unsigned char* out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(const unsigned char* in) {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

std::uint64_t get_u64(const unsigned char* in) {
  return static_cast<std::uint64_t>(get_u32(in)) |
         (static_cast<std::uint64_t>(get_u32(in + 4)) << 32);
}

}  // namespace

const char* to_string(FlightKind kind) {
  switch (kind) {
    case FlightKind::kNote:
      return "note";
    case FlightKind::kTrialBegin:
      return "trial_begin";
    case FlightKind::kDispatch:
      return "dispatch";
    case FlightKind::kWorldEnter:
      return "world_enter";
    case FlightKind::kWorldExit:
      return "world_exit";
    case FlightKind::kScanStart:
      return "scan_start";
    case FlightKind::kScanEnd:
      return "scan_end";
    case FlightKind::kAlarm:
      return "alarm";
    case FlightKind::kRetry:
      return "retry";
    case FlightKind::kProbe:
      return "probe";
    case FlightKind::kFault:
      return "fault";
    case FlightKind::kEof:
      return "eof";
  }
  return "?";
}

void encode_flight_record(const FlightRecord& record, unsigned char* out) {
  put_u64(out, static_cast<std::uint64_t>(record.t_ps));
  put_u64(out + 8, record.seq);
  put_u64(out + 16, record.payload);
  out[24] = static_cast<unsigned char>(record.kind);
  out[25] = static_cast<unsigned char>(record.kind >> 8);
  const auto actor = static_cast<std::uint16_t>(record.actor);
  out[26] = static_cast<unsigned char>(actor);
  out[27] = static_cast<unsigned char>(actor >> 8);
}

FlightRecord decode_flight_record(const unsigned char* in) {
  FlightRecord record;
  record.t_ps = static_cast<std::int64_t>(get_u64(in));
  record.seq = get_u64(in + 8);
  record.payload = get_u64(in + 16);
  record.kind = static_cast<std::uint16_t>(in[24] |
                                           (static_cast<unsigned>(in[25]) << 8));
  record.actor = static_cast<std::int16_t>(
      static_cast<std::uint16_t>(in[26] | (static_cast<unsigned>(in[27]) << 8)));
  return record;
}

FlightRecorder::FlightRecorder(Options options)
    : options_(std::move(options)) {
  if (options_.spill_chunk == 0) options_.spill_chunk = 1;
  if (options_.ring > 0) {
    retained_.reserve(options_.ring);
  } else if (!options_.path.empty()) {
    retained_.reserve(options_.spill_chunk);
  }
  if (!options_.path.empty()) {
    io_buf_.resize(options_.spill_chunk * kFlightRecordBytes);
    file_ = std::fopen(options_.path.c_str(), "wb");
    if (file_ == nullptr) {
      failed_ = true;
      return;
    }
    unsigned char header[kFlightHeaderBytes] = {};
    std::memcpy(header, kFlightMagic, sizeof(kFlightMagic));
    put_u32(header + 8, kFlightVersion);
    put_u32(header + 12, static_cast<std::uint32_t>(kFlightRecordBytes));
    put_u64(header + 16, ring_mode() ? 1u : 0u);  // flags: bit0 = ring
    // bytes 24..31 reserved (zero)
    if (!write_all(header, sizeof(header))) failed_ = true;
  }
}

FlightRecorder::~FlightRecorder() { close(); }

void FlightRecorder::record(FlightKind kind, sim::Time t, std::uint64_t seq,
                            int actor, std::uint64_t payload) {
  FlightRecord rec;
  rec.t_ps = t.ps();
  rec.seq = seq;
  rec.payload = payload;
  rec.kind = static_cast<std::uint16_t>(kind);
  rec.actor = static_cast<std::int16_t>(actor);

  ++commits_;
  chain_ = fnv_step(chain_, static_cast<std::uint64_t>(rec.t_ps));
  chain_ = fnv_step(chain_, rec.seq);
  chain_ = fnv_step(chain_, rec.payload);
  chain_ = fnv_step(chain_, (static_cast<std::uint64_t>(rec.kind) << 16) |
                                static_cast<std::uint16_t>(rec.actor));

  if (options_.ring > 0) {
    if (retained_.size() < options_.ring) {
      retained_.push_back(rec);
    } else {
      retained_[head_] = rec;
      head_ = (head_ + 1) % options_.ring;
      ++dropped_;
    }
    return;
  }
  retained_.push_back(rec);
  if (spilling() && retained_.size() >= options_.spill_chunk) spill_buffer();
}

void FlightRecorder::append_from(const FlightRecorder& other) {
  for (const FlightRecord& rec : other.snapshot()) {
    record(static_cast<FlightKind>(rec.kind), sim::Time::from_ps(rec.t_ps),
           rec.seq, rec.actor, rec.payload);
  }
  dropped_ += other.dropped();
}

std::vector<FlightRecord> FlightRecorder::snapshot() const {
  std::vector<FlightRecord> out;
  out.reserve(retained_.size());
  for (std::size_t i = 0; i < retained_.size(); ++i) {
    out.push_back(retained_[(head_ + i) % retained_.size()]);
  }
  return out;
}

bool FlightRecorder::write_all(const unsigned char* data, std::size_t size) {
  return std::fwrite(data, 1, size, file_) == size;
}

void FlightRecorder::spill_buffer() {
  std::size_t n = 0;
  for (const FlightRecord& rec : retained_) {
    encode_flight_record(rec, io_buf_.data() + n * kFlightRecordBytes);
    ++n;
  }
  if (n > 0 && !write_all(io_buf_.data(), n * kFlightRecordBytes)) {
    failed_ = true;
  }
  retained_.clear();
}

bool FlightRecorder::save_to(const std::string& path) const {
  if (spilling()) return false;  // stream already partly written elsewhere
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = true;
  unsigned char header[kFlightHeaderBytes] = {};
  std::memcpy(header, kFlightMagic, sizeof(kFlightMagic));
  put_u32(header + 8, kFlightVersion);
  put_u32(header + 12, static_cast<std::uint32_t>(kFlightRecordBytes));
  put_u64(header + 16, ring_mode() ? 1u : 0u);
  ok = std::fwrite(header, 1, sizeof(header), f) == sizeof(header);
  unsigned char buf[kFlightRecordBytes];
  for (const FlightRecord& rec : snapshot()) {
    if (!ok) break;
    encode_flight_record(rec, buf);
    ok = std::fwrite(buf, 1, sizeof(buf), f) == sizeof(buf);
  }
  if (ok) {
    FlightRecord footer;
    footer.kind = static_cast<std::uint16_t>(FlightKind::kEof);
    footer.t_ps = static_cast<std::int64_t>(commits_);
    footer.seq = dropped_;
    footer.payload = chain_;
    footer.actor = 0;
    encode_flight_record(footer, buf);
    ok = std::fwrite(buf, 1, sizeof(buf), f) == sizeof(buf);
  }
  if (std::fclose(f) != 0) ok = false;
  return ok;
}

bool FlightRecorder::close() {
  if (closed_) return !failed_;
  closed_ = true;
  if (file_ == nullptr) return !failed_;
  if (ring_mode()) {
    // Dump the ring oldest-first, reusing the spill buffer in chunks.
    const std::vector<FlightRecord> records = snapshot();
    std::size_t i = 0;
    while (i < records.size()) {
      const std::size_t n =
          std::min(options_.spill_chunk, records.size() - i);
      for (std::size_t k = 0; k < n; ++k) {
        encode_flight_record(records[i + k],
                             io_buf_.data() + k * kFlightRecordBytes);
      }
      if (!write_all(io_buf_.data(), n * kFlightRecordBytes)) failed_ = true;
      i += n;
    }
  } else {
    spill_buffer();
  }
  // Footer: commits / dropped / chain hash, so readers can verify
  // completeness and compare recordings O(1).
  FlightRecord footer;
  footer.kind = static_cast<std::uint16_t>(FlightKind::kEof);
  footer.t_ps = static_cast<std::int64_t>(commits_);
  footer.seq = dropped_;
  footer.payload = chain_;
  footer.actor = 0;
  unsigned char buf[kFlightRecordBytes];
  encode_flight_record(footer, buf);
  if (!write_all(buf, sizeof(buf))) failed_ = true;
  if (std::fclose(file_) != 0) failed_ = true;
  file_ = nullptr;
  return !failed_;
}

}  // namespace satin::obs
