// Divergence auditor over flight recordings.
//
// Reads the binary stream written by FlightRecorder and answers the two
// questions the determinism gates ask:
//  * stats  — what does this recording contain (per-kind counts, time
//             span, chain hash, drops)?
//  * diff   — are two recordings identical, and if not, where is the
//             FIRST diverging commit, with surrounding context from both
//             streams so the post-mortem starts at the cause, not the
//             10^6th downstream symptom?
//
// The jobs=1-vs-8, digest-cache on/off and faults-off-vs-baseline
// identity gates all reduce to "diff reports zero divergence"; the
// negative gate (an armed fault plan MUST diverge) reduces to "diff
// locates a first divergence".
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight/recorder.h"

namespace satin::obs {

struct FlightLog {
  std::vector<FlightRecord> records;  // footer excluded
  // Footer bookkeeping (zero/false when the footer is missing).
  std::uint64_t commits = 0;
  std::uint64_t dropped = 0;
  std::uint64_t chain_hash = 0;
  bool ring = false;
  bool has_footer = false;
};

// Loads a recording; returns false (and sets *error when given) on a
// missing file, zero-length or truncated-header file, bad magic/version
// or a torn record — each with a distinct diagnostic naming the cause. A
// missing footer is tolerated (has_footer = false) so crashed runs still
// dump.
bool read_flight_log(const std::string& path, FlightLog& out,
                     std::string* error = nullptr);

// Re-records a loaded log into `out` in commit order and folds the log's
// drop count; record-for-record this reproduces the chain-hash evolution
// the original commits produced. The campaign supervisor uses this to
// merge per-trial flight files (written by worker processes) into the
// session stream in trial-index order — the cross-process analogue of
// FlightRecorder::append_from.
void replay_flight_log(const FlightLog& log, FlightRecorder& out);

struct FlightStats {
  std::uint64_t total = 0;
  std::array<std::uint64_t, 16> by_kind{};  // indexed by FlightKind value
  std::uint64_t other_kinds = 0;            // kinds outside the enum range
  std::int64_t first_t_ps = 0;
  std::int64_t last_t_ps = 0;
};

FlightStats compute_flight_stats(const FlightLog& log);

// One human-readable line per record: "t=<ps> kind seq=<n> actor=<a>
// payload=<hex>".
std::string format_flight_record(const FlightRecord& record);

struct FlightDivergence {
  bool diverged = false;
  // Index of the first differing record (or the length of the shorter
  // stream when one is a strict prefix of the other).
  std::size_t first_index = 0;
  // Human-readable report: identity summary, or the first divergence with
  // `context` records of surrounding context from both streams.
  std::string report;
};

FlightDivergence diff_flight_logs(const FlightLog& a, const FlightLog& b,
                                  std::size_t context = 5);

}  // namespace satin::obs
