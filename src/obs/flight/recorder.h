// Flight recorder: the always-recordable ground-truth event stream.
//
// Every determinism claim this repo makes — any --jobs=J is bit-identical,
// the digest cache is invisible, a fault plan off is a no-op — ultimately
// reduces to "the engine committed the same events in the same order".
// The FlightRecorder taps exactly that: each engine event commit (and a
// handful of semantic commits layered on top: world switches, scan
// start/end with the digest as payload, alarms, probes, fault injections)
// becomes one fixed-size FlightRecord {when, seq, kind, actor, payload}.
// Two runs are equivalent iff their flight streams are identical, which
// turns today's ad-hoc stdout diffs into a systematic audit
// (obs/flight/audit.h + tools/satin_flightool).
//
// Memory model: zero steady-state allocations on the record path.
//  * Spill mode (a path, ring == 0): records accumulate in a buffer
//    preallocated for `spill_chunk` records and are fwrite()n to the file
//    in encoded chunks when it fills — bounded memory, full stream.
//  * Ring mode (ring == N): a preallocated N-record ring keeps the newest
//    records (capture-on-alarm: the tail window is the one a post-mortem
//    needs); the file is written on close(). Dropped-record counts are
//    preserved in the footer.
//  * In-memory mode (no path): same ring/unbounded retention, no file —
//    per-trial recorders and tests.
//
// Threading follows the PR-3 obs discipline: a thread_local slot, one
// pointer test per macro when no recorder is installed, per-trial
// recorders installed by sim::TrialRunner and merged (append_from) in
// submission order, so the merged stream is identical for any --jobs.
//
// A chain hash (FNV-1a folded over every record in commit order) rides
// along so `satin_flightool stats` can compare two recordings O(1).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/time.h"

namespace satin::obs {

enum class FlightKind : std::uint16_t {
  kNote = 0,        // freeform marker (payload = caller-defined)
  kTrialBegin = 1,  // actor = trial index, payload = trial seed
  kDispatch = 2,    // engine commit: seq = engine sequence number
  kWorldEnter = 3,  // secure-world entry, actor = core
  kWorldExit = 4,   // secure-world exit, actor = core
  kScanStart = 5,   // payload = (offset << 32) | length
  kScanEnd = 6,     // payload = observed digest
  kAlarm = 7,       // payload = (area << 1) | transient, actor = core
  kRetry = 8,       // payload = area, actor = core
  kProbe = 9,       // prober detection, actor = core
  kFault = 10,      // payload = fault kind, actor = core
  kEof = 0xFFFF,    // footer sentinel (never recorded by components)
};

const char* to_string(FlightKind kind);

struct FlightRecord {
  std::int64_t t_ps = 0;       // simulated commit time
  std::uint64_t seq = 0;       // engine sequence / per-kind ordinal
  std::uint64_t payload = 0;   // kind-specific hash or value
  std::uint16_t kind = 0;      // FlightKind
  std::int16_t actor = -1;     // core id, trial index, or -1

  friend bool operator==(const FlightRecord& a, const FlightRecord& b) {
    return a.t_ps == b.t_ps && a.seq == b.seq && a.payload == b.payload &&
           a.kind == b.kind && a.actor == b.actor;
  }
};

// On-disk encoding: 28 bytes little-endian per record (see audit.cpp for
// the reader). Exposed for the writer/reader pair and tests.
inline constexpr std::size_t kFlightRecordBytes = 28;
inline constexpr char kFlightMagic[8] = {'S', 'A', 'T', 'N',
                                         'F', 'L', 'T', '1'};
inline constexpr std::uint32_t kFlightVersion = 1;
inline constexpr std::size_t kFlightHeaderBytes = 32;

struct FlightRecorderOptions {
  // Spill target; empty = in-memory only (per-trial recorders, tests).
  std::string path;
  // > 0: bounded ring of this many records, newest kept, file (if any)
  // written at close(). 0 with a path: chunked spill (full stream).
  // 0 without a path: unbounded in-memory retention.
  std::size_t ring = 0;
  // Records buffered between fwrite()s in spill mode.
  std::size_t spill_chunk = 1u << 16;
};

class FlightRecorder {
 public:
  using Options = FlightRecorderOptions;

  explicit FlightRecorder(Options options = Options());
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void record(FlightKind kind, sim::Time t, std::uint64_t seq, int actor,
              std::uint64_t payload);

  // Replays the other recorder's retained records into this one in their
  // commit order and folds its drop count. The TrialRunner calls this in
  // submission order, bracketed by kTrialBegin markers it emits itself.
  void append_from(const FlightRecorder& other);

  // Folds drops that happened outside this recorder (e.g. a replayed
  // per-trial file whose footer recorded ring overwrites).
  void note_dropped(std::uint64_t n) { dropped_ += n; }

  // Records ever committed to this recorder (including spilled/overwritten).
  std::uint64_t commits() const { return commits_; }
  // Ring overwrites (oldest records lost), plus drops folded by append_from.
  std::uint64_t dropped() const { return dropped_; }
  // FNV-1a fold over every committed record, in commit order.
  std::uint64_t chain_hash() const { return chain_; }

  bool ring_mode() const { return options_.ring > 0; }
  bool spilling() const { return file_ != nullptr && !ring_mode(); }
  const std::string& path() const { return options_.path; }
  // True when a path was configured but the file could not be opened.
  bool failed() const { return failed_; }

  // Retained records in commit order (ring unwound, oldest first).
  std::vector<FlightRecord> snapshot() const;

  // Finalizes the file: drains the spill buffer (or dumps the ring) and
  // writes the footer. Idempotent; returns false if any write failed.
  // In-memory recorders return true and do nothing.
  bool close();

  // Writes this recorder's current state — retained records plus a footer
  // carrying the true commit/drop counts and chain hash — to `path` as a
  // standalone recording, without finalizing the recorder. The escape
  // hatch for an IN-MEMORY recorder that must cross a process boundary: a
  // forked branch child inherits the warm prefix's recorder by
  // copy-on-write, keeps recording, and persists the whole stream here
  // for the parent's index-ordered merge. Returns false on any I/O
  // failure (spill-mode recorders refuse: their stream is already partly
  // on disk).
  bool save_to(const std::string& path) const;

 private:
  void spill_buffer();
  bool write_all(const unsigned char* data, std::size_t size);

  Options options_;
  std::vector<FlightRecord> retained_;  // ring or in-memory retention
  std::size_t head_ = 0;                // oldest slot once the ring is full
  std::vector<unsigned char> io_buf_;   // preallocated encode buffer
  std::FILE* file_ = nullptr;
  std::uint64_t commits_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t chain_ = 14695981039346656037ull;  // FNV-1a offset basis
  bool closed_ = false;
  bool failed_ = false;
};

// Encodes one record into exactly kFlightRecordBytes at `out`.
void encode_flight_record(const FlightRecord& record, unsigned char* out);
// Decodes; the buffer must hold kFlightRecordBytes.
FlightRecord decode_flight_record(const unsigned char* in);

// Per-thread recorder the macro emits into; null disables flight
// recording. Thread-local for the same reason as the tracer/metrics
// slots: parallel trial workers record into their own instance, merged in
// submission order — no locks on the hot path.
inline FlightRecorder*& flight_slot() {
  thread_local FlightRecorder* recorder = nullptr;
  return recorder;
}
inline FlightRecorder* flight() { return flight_slot(); }
inline void install_flight(FlightRecorder* recorder) {
  flight_slot() = recorder;
}

}  // namespace satin::obs

#ifndef SATIN_OBS_ENABLED
#define SATIN_OBS_ENABLED 1
#endif

#if SATIN_OBS_ENABLED

#define SATIN_FLIGHT_RECORD(kind, t, seq, actor, payload)                  \
  do {                                                                     \
    if (auto* satin_obs_fl_ = ::satin::obs::flight())                      \
      satin_obs_fl_->record((kind), (t), (seq), (actor), (payload));       \
  } while (0)

#else  // !SATIN_OBS_ENABLED

#define SATIN_FLIGHT_RECORD(kind, t, seq, actor, payload) ((void)0)

#endif  // SATIN_OBS_ENABLED
