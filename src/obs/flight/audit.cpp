#include "obs/flight/audit.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace satin::obs {

bool read_flight_log(const std::string& path, FlightLog& out,
                     std::string* error) {
  out = FlightLog{};
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  // Distinguish the boring corruptions a fleet actually produces — empty
  // file from a crashed open, truncated header from a torn copy, foreign
  // bytes — so the operator reads the cause, not "bad file". Only the
  // bytes actually read are ever inspected.
  unsigned char header[kFlightHeaderBytes];
  const std::size_t header_n = std::fread(header, 1, sizeof(header), f);
  if (header_n == 0) {
    if (error != nullptr) *error = path + ": empty file (zero-length recording)";
    std::fclose(f);
    return false;
  }
  if (header_n < sizeof(header)) {
    if (error != nullptr) {
      *error = path + ": truncated header (" + std::to_string(header_n) +
               " of " + std::to_string(sizeof(header)) + " bytes)";
    }
    std::fclose(f);
    return false;
  }
  if (std::memcmp(header, kFlightMagic, sizeof(kFlightMagic)) != 0) {
    if (error != nullptr) *error = path + ": not a flight recording";
    std::fclose(f);
    return false;
  }
  const std::uint32_t version = static_cast<std::uint32_t>(header[8]) |
                                (static_cast<std::uint32_t>(header[9]) << 8) |
                                (static_cast<std::uint32_t>(header[10]) << 16) |
                                (static_cast<std::uint32_t>(header[11]) << 24);
  const std::uint32_t rec_bytes =
      static_cast<std::uint32_t>(header[12]) |
      (static_cast<std::uint32_t>(header[13]) << 8) |
      (static_cast<std::uint32_t>(header[14]) << 16) |
      (static_cast<std::uint32_t>(header[15]) << 24);
  if (version != kFlightVersion || rec_bytes != kFlightRecordBytes) {
    if (error != nullptr) {
      *error = path + ": unsupported version/record size";
    }
    std::fclose(f);
    return false;
  }
  out.ring = (header[16] & 1) != 0;

  unsigned char buf[kFlightRecordBytes];
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
    if (n == 0) break;  // EOF without footer: tolerated (crashed run)
    if (n != sizeof(buf)) {
      if (error != nullptr) *error = path + ": torn record at end of file";
      std::fclose(f);
      return false;
    }
    const FlightRecord rec = decode_flight_record(buf);
    if (rec.kind == static_cast<std::uint16_t>(FlightKind::kEof)) {
      out.has_footer = true;
      out.commits = static_cast<std::uint64_t>(rec.t_ps);
      out.dropped = rec.seq;
      out.chain_hash = rec.payload;
      break;
    }
    out.records.push_back(rec);
  }
  std::fclose(f);
  return true;
}

void replay_flight_log(const FlightLog& log, FlightRecorder& out) {
  for (const FlightRecord& rec : log.records) {
    out.record(static_cast<FlightKind>(rec.kind), sim::Time::from_ps(rec.t_ps),
               rec.seq, rec.actor, rec.payload);
  }
  out.note_dropped(log.dropped);
}

FlightStats compute_flight_stats(const FlightLog& log) {
  FlightStats stats;
  stats.total = log.records.size();
  bool first = true;
  for (const FlightRecord& rec : log.records) {
    if (rec.kind < stats.by_kind.size()) {
      ++stats.by_kind[rec.kind];
    } else {
      ++stats.other_kinds;
    }
    if (first) {
      stats.first_t_ps = rec.t_ps;
      first = false;
    }
    stats.last_t_ps = rec.t_ps;
  }
  return stats;
}

std::string format_flight_record(const FlightRecord& record) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "t=%lldps %-11s seq=%llu actor=%d payload=0x%llx",
                static_cast<long long>(record.t_ps),
                to_string(static_cast<FlightKind>(record.kind)),
                static_cast<unsigned long long>(record.seq), record.actor,
                static_cast<unsigned long long>(record.payload));
  return buf;
}

namespace {

void append_context(std::string& out, const char* label,
                    const std::vector<FlightRecord>& records,
                    std::size_t divergence, std::size_t context) {
  out += label;
  out += ":\n";
  const std::size_t lo = divergence > context ? divergence - context : 0;
  const std::size_t hi = std::min(records.size(), divergence + context + 1);
  for (std::size_t i = lo; i < hi; ++i) {
    char head[32];
    std::snprintf(head, sizeof(head), "  %c[%zu] ",
                  i == divergence ? '>' : ' ', i);
    out += head;
    out += format_flight_record(records[i]);
    out += '\n';
  }
  if (divergence >= records.size()) {
    char head[64];
    std::snprintf(head, sizeof(head), "  >[%zu] <end of stream>\n",
                  divergence);
    out += head;
  }
}

}  // namespace

FlightDivergence diff_flight_logs(const FlightLog& a, const FlightLog& b,
                                  std::size_t context) {
  FlightDivergence result;
  const std::size_t common = std::min(a.records.size(), b.records.size());
  std::size_t i = 0;
  while (i < common && a.records[i] == b.records[i]) ++i;
  if (i == common && a.records.size() == b.records.size()) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "identical: %zu records, chain 0x%llx vs 0x%llx%s",
                  a.records.size(),
                  static_cast<unsigned long long>(a.chain_hash),
                  static_cast<unsigned long long>(b.chain_hash),
                  a.has_footer && b.has_footer &&
                          a.chain_hash != b.chain_hash
                      ? " (CHAIN MISMATCH: records dropped before divergence)"
                      : "");
    result.report = buf;
    // A ring recording can drop the prefix where two runs diverged; the
    // retained windows then compare equal while the full streams did not.
    // The chain hash covers every committed record, so surface that.
    result.diverged = a.has_footer && b.has_footer &&
                      a.chain_hash != b.chain_hash;
    result.first_index = a.records.size();
    return result;
  }
  result.diverged = true;
  result.first_index = i;
  char head[256];
  std::snprintf(head, sizeof(head),
                "first divergence at record %zu"
                " (A: %zu records, B: %zu records)\n",
                i, a.records.size(), b.records.size());
  result.report = head;
  append_context(result.report, "--- A", a.records, i, context);
  append_context(result.report, "--- B", b.records, i, context);
  return result;
}

}  // namespace satin::obs
