// One-call observability wiring for examples and benches.
//
// ObsSession parses and strips `--trace=<file>` and `--metrics=<file>`
// from argv, installs a global TraceRecorder / MetricsRegistry while
// alive, and writes the requested files when flushed (or destroyed).
//
//   int main(int argc, char** argv) {
//     scenario::Scenario system;            // engine outlives the session
//     obs::ObsSession obs(argc, argv);
//     ...
//     obs.flush(&system.engine());          // optional explicit flush
//   }
//
// `--trace=out.json` writes Chrome trace-event JSON (open in Perfetto or
// chrome://tracing) plus a JSONL twin at `out.json` + ".jsonl"; when no
// `--metrics=` path is given a snapshot still lands next to the trace at
// `out.json` + ".metrics.json", so one flag yields a full picture.
#pragma once

#include <memory>
#include <string>

#include "obs/flight/recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace satin::sim {
class Engine;
}

namespace satin::obs {

// Records engine self-metrics (events fired, queue depth high-water mark,
// cancelled-event ratio, wall time per simulated second) as gauges.
// Pass include_wall=false inside parallel trials: host wall time differs
// run to run, and trial metrics must stay bit-identical across --jobs.
void snapshot_engine_metrics(const sim::Engine& engine,
                             MetricsRegistry& registry,
                             bool include_wall = true);

class ObsSession {
 public:
  // Consumes --trace= / --metrics= / --metrics-stable / --faults= /
  // --jobs= / --batch= / --branches= / --fork-prefix= / --digest-cache= /
  // --flight= from argv (argc is rewritten).
  // When no flag is present the session installs nothing and costs
  // nothing. The faults spec is only stripped and stored — the obs layer
  // knows nothing about fault injection; pass faults_spec() to
  // fault::install_from_spec() to arm it. --jobs is likewise only parsed
  // and stored, for sim::TrialRunner: J worker threads, 0 = one per
  // hardware thread, absent = the caller's fallback (typically 1).
  // --digest-cache=on|off (default on) sets the process-wide default for
  // the secure world's incremental digest cache; off runs the cache in
  // shadow mode — bit-identical stdout/metrics/traces/digests, full
  // re-hash every round. --flight=path[,ring=N] records the engine's
  // event-commit stream to a binary flight recording (spill mode by
  // default; ring=N keeps only the newest N records). --metrics-stable
  // omits volatile gauges (host wall time, allocator high-water marks)
  // from the metrics snapshot, so identity gates can diff it verbatim.
  ObsSession(int& argc, char** argv,
             std::size_t trace_capacity = 1u << 20);
  ~ObsSession();

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  bool trace_enabled() const { return recorder_ != nullptr; }
  bool metrics_enabled() const { return registry_ != nullptr; }
  bool flight_enabled() const { return flight_ != nullptr; }
  bool metrics_stable() const { return metrics_stable_; }
  bool faults_requested() const { return !faults_spec_.empty(); }
  bool jobs_requested() const { return jobs_ >= 0; }
  bool batch_requested() const { return batch_ >= 1; }
  bool digest_cache_enabled() const { return digest_cache_; }
  // Parsed --jobs value; `fallback` when the flag was absent, one worker
  // per hardware thread when it was --jobs=0.
  int jobs(int fallback = 1) const;
  // Parsed --batch value (lockstep shard size for sim::BatchRunner);
  // `fallback` when the flag was absent or below 1. Like --jobs, this is
  // only stripped and stored — a pure runtime knob whose output is
  // byte-identical for every value (CI-gated), so it never belongs in a
  // result-shaping config hash.
  int batch(int fallback = 1) const { return batch_ >= 1 ? batch_ : fallback; }
  bool branches_requested() const { return branches_ >= 1; }
  // Parsed --branches value (COW fork branch count for sim::ForkServer);
  // `fallback` when absent. Like --jobs/--batch, a pure runtime knob:
  // with --fork-prefix=0 the output is byte-identical for every value
  // (CI-gated), so it never belongs in a result-shaping config hash.
  int branches(int fallback = 0) const {
    return branches_ >= 1 ? branches_ : fallback;
  }
  // Parsed --fork-prefix value: simulated seconds of warm prefix shared
  // across fork branches. 0 (the default) keeps each branch a full
  // independent replay — the byte-identity oracle. Nonzero values trade
  // identity for speed and are recorded in bench provenance.
  double fork_prefix_s() const { return fork_prefix_s_; }
  const std::string& trace_path() const { return trace_path_; }
  const std::string& metrics_path() const { return metrics_path_; }
  const std::string& faults_spec() const { return faults_spec_; }
  const std::string& flight_path() const { return flight_path_; }
  // Ring capacity parsed from --flight=path,ring=N; 0 = spill mode.
  std::size_t flight_ring() const { return flight_ring_; }

  TraceRecorder* recorder() { return recorder_.get(); }
  MetricsRegistry* registry() { return registry_.get(); }
  FlightRecorder* flight_recorder() { return flight_.get(); }

  // Writes the requested files and uninstalls the global hooks. Pass the
  // engine to include its self-metrics in the snapshot; call before the
  // engine dies (the destructor flushes without engine metrics otherwise).
  // Returns false when any file failed to write.
  bool flush(const sim::Engine* engine = nullptr);

 private:
  std::string trace_path_;
  std::string metrics_path_;
  std::string faults_spec_;
  std::string flight_path_;
  std::size_t flight_ring_ = 0;  // 0 = spill mode
  int jobs_ = -1;                // -1 = flag absent
  int batch_ = -1;               // -1 = flag absent (or nonsense value)
  int branches_ = -1;            // -1 = flag absent (or nonsense value)
  double fork_prefix_s_ = 0.0;   // simulated seconds; 0 = oracle mode
  bool digest_cache_ = true;
  bool metrics_stable_ = false;
  std::unique_ptr<TraceRecorder> recorder_;
  std::unique_ptr<MetricsRegistry> registry_;
  std::unique_ptr<FlightRecorder> flight_;
  bool flushed_ = false;
};

}  // namespace satin::obs
