// A single CPU core with TrustZone world state.
//
// On ARMv8-A each core enters the secure world independently (§I, §II);
// the side channel the whole paper turns on is that a core held by the
// secure world is unavailable to the rich OS. Components that must react
// to world transitions (the rich-OS per-core scheduler, the GIC pending
// logic, probers' measurement hooks) register as WorldListeners.
#pragma once

#include <string>
#include <vector>

#include "hw/types.h"
#include "sim/time.h"

namespace satin::hw {

class WorldListener {
 public:
  virtual ~WorldListener() = default;
  // The core left the normal world at `when` (start of the context save).
  virtual void on_secure_entry(CoreId core, sim::Time when) = 0;
  // The core is back in the normal world at `when` (context restored).
  virtual void on_secure_exit(CoreId core, sim::Time when) = 0;
};

class Core {
 public:
  Core(CoreId id, CoreType type) : id_(id), type_(type) {}
  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  CoreId id() const { return id_; }
  CoreType type() const { return type_; }
  World world() const { return world_; }
  bool in_secure_world() const { return world_ == World::kSecure; }

  // Power state. An offline core receives no interrupts (the GIC drops
  // them at delivery); anything already in flight when the core went down
  // completes — the model powers off between events, never mid-event.
  // Fault injection drives this; cores boot online.
  bool online() const { return online_; }
  void set_online(bool online, sim::Time when);

  void add_world_listener(WorldListener* listener) {
    listeners_.push_back(listener);
  }
  void remove_world_listener(WorldListener* listener);

  // Cumulative simulated time this core has spent in the secure world;
  // feeds the Fig. 7 overhead accounting.
  sim::Duration secure_time_total() const { return secure_total_; }
  std::size_t secure_entries() const { return secure_entries_; }

  std::string name() const;

 private:
  friend class SecureMonitor;
  // Only the secure monitor (EL3) flips worlds, mirroring the hardware.
  void enter_secure(sim::Time when);
  void exit_secure(sim::Time when);

  CoreId id_;
  CoreType type_;
  World world_ = World::kNormal;
  bool online_ = true;
  sim::Time secure_entry_time_;
  sim::Duration secure_total_;
  std::size_t secure_entries_ = 0;
  std::vector<WorldListener*> listeners_;
};

}  // namespace satin::hw
