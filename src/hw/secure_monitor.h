// EL3 Secure Monitor (ARM Trusted Firmware role).
//
// The monitor is the only component allowed to flip a core between worlds
// (§II-A: EL3 "only contains a Secure Monitor for controlling the context
// switch between the secure world and the normal world"). A world switch
// costs Ts_switch — saving the normal-world context and jumping to the
// secure payload — measured in §IV-B1 at 2.38e-6..3.60e-6 s; the return
// trip pays the same class of cost.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "hw/core.h"
#include "hw/fault_hooks.h"
#include "hw/timing_params.h"
#include "hw/types.h"
#include "sim/engine.h"
#include "sim/rng.h"

namespace satin::hw {

class SecureMonitor;

// Context handed to the secure payload (TSP) while it owns a core.
// The payload performs its work by scheduling engine events and must call
// complete() exactly once when done; the monitor then restores the
// normal-world context.
class SecureSession {
 public:
  CoreId core_id() const { return core_; }
  CoreType core_type() const { return type_; }
  // When the secure timer interrupt arrived (normal world frozen from here).
  sim::Time entry_time() const { return entry_; }
  // When the payload gained control (entry + Ts_switch).
  sim::Time handler_start() const { return start_; }

  void complete();
  bool completed() const { return completed_; }

 private:
  friend class SecureMonitor;
  SecureMonitor* monitor_ = nullptr;
  CoreId core_ = -1;
  CoreType type_ = CoreType::kLittleA53;
  sim::Time entry_;
  sim::Time start_;
  bool completed_ = false;
};

class SecureMonitor {
 public:
  // The payload owns the session pointer for the duration of the stay.
  using SecurePayload = std::function<void(std::shared_ptr<SecureSession>)>;

  SecureMonitor(sim::Engine& engine, sim::Rng& rng, const TimingParams& timing,
                std::vector<Core*> cores);

  // Installs the S-EL1 secure-timer interrupt handler (the TSP). With no
  // payload installed the monitor enters and immediately leaves — useful
  // for measuring the bare switch cost.
  void set_secure_timer_payload(SecurePayload payload) {
    payload_ = std::move(payload);
  }

  // GIC-facing entry point for secure-group interrupts.
  void on_secure_irq(CoreId core, IrqId irq);

  // Last sampled one-way switch duration (diagnostics / benches).
  sim::Duration last_switch_duration() const { return last_switch_; }
  std::uint64_t world_switches() const { return switches_; }

  // Fault-injection seam: consulted before entering the secure world.
  void set_fault_hooks(FaultHooks* hooks) { fault_hooks_ = hooks; }

  // Secure entries aborted by an installed FaultHooks.
  std::uint64_t failed_entries() const { return failed_entries_; }

  // Successful secure-world entries (ordinal carried by the flight
  // recorder's kWorldEnter/kWorldExit records).
  std::uint64_t sessions_entered() const { return sessions_; }

  sim::Duration sample_switch() {
    last_switch_ = timing_.sample_switch(rng_);
    ++switches_;
    return last_switch_;
  }

 private:
  friend class SecureSession;
  void finish_session(SecureSession& session);

  sim::Engine& engine_;
  sim::Rng& rng_;
  const TimingParams& timing_;
  std::vector<Core*> cores_;
  FaultHooks* fault_hooks_ = nullptr;
  std::uint64_t failed_entries_ = 0;
  std::uint64_t sessions_ = 0;
  std::uint64_t exits_ = 0;
  SecurePayload payload_;
  sim::Duration last_switch_;
  std::uint64_t switches_ = 0;
};

}  // namespace satin::hw
