// Physical memory with TOCTTOU-exact linear scans.
//
// The race at the heart of the paper is: the secure world walks N bytes at
// Ts_1byte per byte while the normal world rewrites M bytes in parallel
// (Fig. 3, Eq. 1). To decide that race honestly, a scan registers itself
// with its start time and per-byte speed; every subsequent timed write is
// applied to the scan's view only if it lands *before* the scanner's
// cursor reaches that byte:
//
//     visible  <=>  t_write <= t_scan_start + (offset - scan_begin) * per_byte
//
// Events execute in simulated-time order, so this reproduces exactly what
// a real linear hash pass would have read. Hashes downstream are computed
// over the returned view — detection is never scripted.
#pragma once

#include <algorithm>
#include <cstdint>
#include <list>
#include <span>
#include <vector>

#include "hw/fault_hooks.h"
#include "sim/time.h"

namespace satin::hw {

class Memory {
 public:
  // Dirty-tracking granule: every mutation (timed write, untimed poke,
  // fault-injected view corruption) bumps a monotonic generation counter
  // on each kChunkBytes-aligned chunk it touches. The secure world's
  // incremental digest cache keys per-chunk work on these generations.
  static constexpr std::size_t kChunkBytes = 256;

  explicit Memory(std::size_t size);

  std::size_t size() const { return bytes_.size(); }

  // Untimed state access: boot-time initialization and test assertions.
  std::span<const std::uint8_t> bytes() const { return bytes_; }
  std::uint8_t read(std::size_t offset) const { return bytes_.at(offset); }
  void poke(std::size_t offset, std::span<const std::uint8_t> data);

  // Timed write from a running world. `now` must be the current simulated
  // time; active scans resolve visibility against it.
  void write(sim::Time now, std::size_t offset,
             std::span<const std::uint8_t> data);

  // Handle to an in-progress linear scan.
  class ScanToken {
   public:
    ScanToken() = default;
    bool valid() const { return id_ != 0; }

   private:
    friend class Memory;
    explicit ScanToken(std::uint64_t id) : id_(id) {}
    std::uint64_t id_ = 0;
  };

  // What a finished scan observed. When no timed write overlapped the
  // scan window (the overwhelmingly common case in the benches) this is a
  // zero-copy window into physical memory, valid until the next mutation
  // (write/poke) or scan registration — hash it immediately. When a write
  // did race the cursor, it owns the materialized private view.
  class ScanView {
   public:
    ScanView() = default;
    // Moves keep the span valid (a moved vector keeps its heap buffer);
    // copies must re-anchor it onto the copied storage.
    ScanView(ScanView&&) = default;
    ScanView& operator=(ScanView&&) = default;
    ScanView(const ScanView& other)
        : storage_(other.storage_),
          span_(storage_.empty() ? other.span_
                                 : std::span<const std::uint8_t>(storage_)) {}
    ScanView& operator=(const ScanView& other) {
      storage_ = other.storage_;
      span_ = storage_.empty() ? other.span_
                               : std::span<const std::uint8_t>(storage_);
      return *this;
    }

    std::span<const std::uint8_t> bytes() const { return span_; }
    std::size_t size() const { return span_.size(); }
    std::uint8_t operator[](std::size_t i) const { return span_[i]; }
    auto begin() const { return span_.begin(); }
    auto end() const { return span_.end(); }
    // True when the scan raced a write and owns a private copy.
    bool owned() const { return !storage_.empty(); }

    std::vector<std::uint8_t> to_vector() const {
      return {span_.begin(), span_.end()};
    }

    friend bool operator==(const ScanView& view,
                           const std::vector<std::uint8_t>& rhs) {
      return std::equal(view.begin(), view.end(), rhs.begin(), rhs.end());
    }

   private:
    friend class Memory;
    explicit ScanView(std::vector<std::uint8_t> storage)
        : storage_(std::move(storage)), span_(storage_) {}
    explicit ScanView(std::span<const std::uint8_t> window) : span_(window) {}

    std::vector<std::uint8_t> storage_;  // empty on the zero-copy path
    std::span<const std::uint8_t> span_;
  };

  // Starts a linear scan of [offset, offset+length) beginning at `start`,
  // advancing `per_byte_ps` picoseconds per byte. Works for both direct
  // hashing (cursor = hash position) and snapshotting (cursor = copy
  // position; the copy is immune to writes after its touch time, matching
  // §IV-B1's snapshot discussion).
  ScanToken begin_scan(sim::Time start, std::size_t offset, std::size_t length,
                       double per_byte_ps);

  // Ends the scan and returns the bytes as the scanner observed them.
  // Copy-on-first-overlap: the view is only materialized (full-window
  // copy) the moment a timed write or poke first overlaps the window; a
  // scan nothing raced reads physical memory directly, copy-free.
  ScanView finish_scan(ScanToken token);

  // Drops a scan without reading the result (e.g. aborted introspection).
  void cancel_scan(ScanToken token);

  std::size_t active_scan_count() const { return scans_.size(); }

  // Total timed writes observed (diagnostics).
  std::uint64_t write_count() const { return write_count_; }

  // --- Write-generation dirty tracking ---------------------------------
  // Global mutation counter, O(1): bumped once per write/poke (and per
  // fault-corrupted scan view). Equal counters across two instants mean
  // no byte anywhere changed in between — the digest cache's cheapest
  // all-clean check.
  std::uint64_t write_generation() const { return generation_; }

  std::size_t chunk_count() const { return chunk_gen_.size(); }

  // Generation of one chunk (0 = never mutated), O(1).
  std::uint64_t chunk_generation(std::size_t chunk) const {
    return chunk_gen_.at(chunk);
  }

  // Max generation over the chunks overlapping [offset, offset+length):
  // the aggregate freshness key for a range. O(1) for the full range and
  // for the unchanged-global fast path callers use; otherwise one load
  // per 64-chunk superchunk (plus edge chunks) — ~16 KiB per load.
  std::uint64_t generation(std::size_t offset, std::size_t length) const;

  // Fault-injection seam: consulted as each scan registers its view; may
  // flip bits in what the scanner will observe (transient read glitch —
  // the backing bytes stay intact, so a re-read comes back clean).
  void set_fault_hooks(FaultHooks* hooks) { fault_hooks_ = hooks; }

 private:
  struct ActiveScan {
    std::uint64_t id;
    sim::Time start;
    std::size_t offset;
    std::size_t length;
    double per_byte_ps;
    // Bytes as the scanner sees them; empty until the first overlapping
    // mutation snapshots the window (fault hooks materialize eagerly so
    // glitches land on a private view).
    std::vector<std::uint8_t> view;
    bool materialized = false;
  };

  // Snapshots the window of every unmaterialized scan overlapping
  // [offset, offset + length) — must run before the backing bytes change.
  void materialize_overlapping(std::size_t offset, std::size_t length);

  // Fail-fast range validation for the write paths: throws out_of_range
  // with offset/len/size spelled out, overflow-safe (offset + len may not
  // be representable).
  void check_range(const char* what, std::size_t offset,
                   std::size_t length) const;

  // Marks every chunk overlapping [offset, offset+length) dirty under a
  // freshly bumped global generation.
  void bump_generations(std::size_t offset, std::size_t length);

  std::vector<std::uint8_t> bytes_;
  FaultHooks* fault_hooks_ = nullptr;
  std::list<ActiveScan> scans_;
  std::uint64_t next_scan_id_ = 1;
  std::uint64_t write_count_ = 0;
  // Dirty tracking: per-chunk generations with a 64-chunk superchunk max
  // level so range queries skip clean regions 16 KiB at a time.
  std::uint64_t generation_ = 0;
  std::vector<std::uint64_t> chunk_gen_;
  std::vector<std::uint64_t> super_gen_;
};

}  // namespace satin::hw
