// Physical memory with TOCTTOU-exact linear scans.
//
// The race at the heart of the paper is: the secure world walks N bytes at
// Ts_1byte per byte while the normal world rewrites M bytes in parallel
// (Fig. 3, Eq. 1). To decide that race honestly, a scan registers itself
// with its start time and per-byte speed; every subsequent timed write is
// applied to the scan's view only if it lands *before* the scanner's
// cursor reaches that byte:
//
//     visible  <=>  t_write <= t_scan_start + (offset - scan_begin) * per_byte
//
// Events execute in simulated-time order, so this reproduces exactly what
// a real linear hash pass would have read. Hashes downstream are computed
// over the returned view — detection is never scripted.
#pragma once

#include <cstdint>
#include <list>
#include <span>
#include <vector>

#include "hw/fault_hooks.h"
#include "sim/time.h"

namespace satin::hw {

class Memory {
 public:
  explicit Memory(std::size_t size);

  std::size_t size() const { return bytes_.size(); }

  // Untimed state access: boot-time initialization and test assertions.
  std::span<const std::uint8_t> bytes() const { return bytes_; }
  std::uint8_t read(std::size_t offset) const { return bytes_.at(offset); }
  void poke(std::size_t offset, std::span<const std::uint8_t> data);

  // Timed write from a running world. `now` must be the current simulated
  // time; active scans resolve visibility against it.
  void write(sim::Time now, std::size_t offset,
             std::span<const std::uint8_t> data);

  // Handle to an in-progress linear scan.
  class ScanToken {
   public:
    ScanToken() = default;
    bool valid() const { return id_ != 0; }

   private:
    friend class Memory;
    explicit ScanToken(std::uint64_t id) : id_(id) {}
    std::uint64_t id_ = 0;
  };

  // Starts a linear scan of [offset, offset+length) beginning at `start`,
  // advancing `per_byte_ps` picoseconds per byte. Works for both direct
  // hashing (cursor = hash position) and snapshotting (cursor = copy
  // position; the copy is immune to writes after its touch time, matching
  // §IV-B1's snapshot discussion).
  ScanToken begin_scan(sim::Time start, std::size_t offset, std::size_t length,
                       double per_byte_ps);

  // Ends the scan and returns the bytes as the scanner observed them.
  std::vector<std::uint8_t> finish_scan(ScanToken token);

  // Drops a scan without reading the result (e.g. aborted introspection).
  void cancel_scan(ScanToken token);

  std::size_t active_scan_count() const { return scans_.size(); }

  // Total timed writes observed (diagnostics).
  std::uint64_t write_count() const { return write_count_; }

  // Fault-injection seam: consulted as each scan registers its view; may
  // flip bits in what the scanner will observe (transient read glitch —
  // the backing bytes stay intact, so a re-read comes back clean).
  void set_fault_hooks(FaultHooks* hooks) { fault_hooks_ = hooks; }

 private:
  struct ActiveScan {
    std::uint64_t id;
    sim::Time start;
    std::size_t offset;
    std::size_t length;
    double per_byte_ps;
    std::vector<std::uint8_t> view;  // bytes as the scanner sees them
  };

  std::vector<std::uint8_t> bytes_;
  FaultHooks* fault_hooks_ = nullptr;
  std::list<ActiveScan> scans_;
  std::uint64_t next_scan_id_ = 1;
  std::uint64_t write_count_ = 0;
};

}  // namespace satin::hw
