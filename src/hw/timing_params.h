// Calibrated timing model of the ARM Juno r1 platform.
//
// Every constant here is taken from a measurement the paper reports; the
// provenance (section / table) is cited next to each number. The simulator
// draws from these distributions instead of executing on the board; the
// shapes of the evaluation results follow from these numbers plus the
// event-level race logic, not from scripting the outcomes.
#pragma once

#include "hw/types.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace satin::hw {

// A min/avg/max-calibrated jitter distribution. The paper reports exactly
// those three statistics for its 50-repetition measurements (Tables I, II,
// §IV-B), so the sampler is built to reproduce them: a truncated normal
// body centered to preserve the mean, plus a small uniform tail toward the
// observed maximum (hardware timing tails are one-sided).
struct JitterSpec {
  double min_s = 0.0;
  double avg_s = 0.0;
  double max_s = 0.0;
  double tail_prob = 0.08;

  // Draws one value in seconds, always within [min_s, max_s], with
  // long-run mean ~avg_s.
  double sample_seconds(sim::Rng& rng) const;
  sim::Duration sample(sim::Rng& rng) const {
    return sim::Duration::from_sec_f(sample_seconds(rng));
  }
};

// Rare cross-core visibility spikes on shared-memory time buffers.
// §IV-B2: "Time Comparer on core i may get the time_x of the core x with
// an abnormal large delay, which is up to 1.3e-3 s. ... a longer probing
// period increases the occurrence of those rare cases". We model the
// spikes as a Poisson process in time whose magnitudes follow a truncated
// log-normal; the base (non-spike) staleness is a tight truncated normal.
// Calibrated against Table II (avg/max/min of the window maxima for the
// five probing periods) and Fig. 4.
struct CrossCoreDelayModel {
  // Plateau staleness of ordinary cross-core reads over a probing window
  // (per-run thread phase geometry + routine visibility delay), seconds.
  double base_mean_s = 1.55e-4;
  double base_stddev_s = 3.5e-5;
  double base_min_s = 0.95e-4;
  double base_max_s = 2.6e-4;

  // Spike arrival rate per second of probing (whole 6-core machine).
  double spike_rate_per_s = 0.16;
  // Log-normal magnitude of a spike, seconds.
  double spike_log_median_s = 2.3e-4;  // exp(mu)
  double spike_log_sigma = 0.55;
  double spike_min_s = 1.3e-4;
  // §VI-B1 configures the evader's threshold at 1.8e-3 s because that is
  // the largest benign staleness ever observed (Table II max 1.77e-3).
  double spike_max_s = 1.77e-3;
  // The §IV-C race analysis rounds the worst observed benign threshold to
  // 1.8e-3 s; kept separately so the closed-form bound reproduces the
  // paper's 1,218,351-byte figure exactly.
  double worst_case_threshold_s = 1.8e-3;
  // In the event-driven prober a spiked read adds to the wake-phase
  // staleness (<= sleep period + scheduling jitter); cap the added spike so
  // the *total* benign staleness still respects spike_max_s and the paper's
  // zero-false-positive observation holds.
  double event_spike_cap_s = 1.45e-3;

  // §IV-B2: probing a single fixed core observes thresholds ~1/4 of the
  // all-core (6 core) values. Spikes scale with cross-core traffic.
  double magnitude_scale(int probed_cores) const;

  double sample_base_seconds(sim::Rng& rng, int probed_cores) const;
  double sample_spike_seconds(sim::Rng& rng, int probed_cores) const;
};

struct TimingParams {
  // --- World switch (§IV-B1) -------------------------------------------
  // "the time for the dispatcher to pause the normal world and jump to the
  // related timer interrupt on the A53 core or A57 core are similar,
  // ranging from 2.38e-6 s to 3.60e-6 s" — 50 runs, both core types.
  double switch_min_s = 2.38e-6;
  double switch_max_s = 3.60e-6;

  // --- Introspection speed, seconds per byte (Table I) ------------------
  // Direct hash of normal-world kernel memory from the secure world.
  JitterSpec hash_per_byte_a53{9.23e-9, 1.07e-8, 1.14e-8};
  JitterSpec hash_per_byte_a57{6.67e-9, 6.71e-9, 7.50e-9};
  // Snapshot (copy) then hash the copy.
  JitterSpec snapshot_per_byte_a53{9.24e-9, 1.08e-8, 1.57e-8};
  JitterSpec snapshot_per_byte_a57{6.67e-9, 6.75e-9, 7.83e-9};

  // --- Attacker trace recovery (§IV-B2) ---------------------------------
  // Recovering the 8-byte GETTID syscall-table entry plus associated
  // cleanup: A53 average 5.80e-3 s, A57 average 4.96e-3 s; the race
  // analysis (§IV-C) uses 6.13e-3 s as the slowest observed recovery.
  JitterSpec recover_a53{5.20e-3, 5.80e-3, 6.13e-3};
  JitterSpec recover_a57{4.50e-3, 4.96e-3, 5.45e-3};

  // --- Prober scheduling (§IV-A1) ----------------------------------------
  // KProber-II sleeps Tsleep = 2e-4 s between rounds; the paper takes
  // Tns_sched = Tsleep.
  double kprober_sleep_s = 2.0e-4;
  // Wake-up latency of a maximum-priority SCHED_FIFO thread: small but
  // nonzero (runqueue manipulation + context switch on the rich OS).
  JitterSpec rt_wakeup_latency{2.0e-6, 8.0e-6, 4.0e-5};
  // Wake-up latency of a CFS (user-level prober) thread on a busy core can
  // stretch to several milliseconds; §III-B1 observed Tns_delay < 5.97e-3 s
  // when competing with ordinary load.
  JitterSpec cfs_wakeup_latency_idle{5.0e-6, 4.0e-5, 2.5e-4};
  JitterSpec cfs_wakeup_latency_busy{2.0e-4, 2.4e-3, 5.5e-3};

  CrossCoreDelayModel cross_core;

  const JitterSpec& hash_per_byte(CoreType type) const {
    return type == CoreType::kLittleA53 ? hash_per_byte_a53
                                        : hash_per_byte_a57;
  }
  const JitterSpec& snapshot_per_byte(CoreType type) const {
    return type == CoreType::kLittleA53 ? snapshot_per_byte_a53
                                        : snapshot_per_byte_a57;
  }
  const JitterSpec& recover(CoreType type) const {
    return type == CoreType::kLittleA53 ? recover_a53 : recover_a57;
  }

  sim::Duration sample_switch(sim::Rng& rng) const {
    return sim::Duration::from_sec_f(rng.uniform(switch_min_s, switch_max_s));
  }
};

}  // namespace satin::hw
