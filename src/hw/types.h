// Basic hardware-level vocabulary types shared across the simulator.
#pragma once

#include <cstdint>
#include <string>

namespace satin::hw {

using CoreId = int;

// The Juno r1 board the paper uses is big.LITTLE: 4x Cortex-A53 ("LITTLE",
// power-efficient) + 2x Cortex-A57 ("big", fast). Core type drives every
// per-byte timing constant (Table I).
enum class CoreType { kLittleA53, kBigA57 };

const char* to_string(CoreType type);

// TrustZone world a core currently executes in.
enum class World { kNormal, kSecure };

const char* to_string(World world);

// Interrupt identifiers. We model the handful of lines the paper's system
// needs; values mirror the roles, not real GIC INTIDs.
enum class IrqId : int {
  kSecurePhysTimer = 29,    // CNTPS — per-core secure timer (self activation)
  kNonSecurePhysTimer = 30, // CNTP — rich OS scheduling tick
  kSoftwareGenerated = 8,   // SGI (cross-core IPI), discussed in §V-D
};

// GIC interrupt group: secure interrupts must reach the secure world even
// from normal-world execution; non-secure interrupts are pended while a
// core runs the secure world non-preemptively (SCR_EL3.IRQ = 0), §II-B/§V-B.
enum class IrqGroup { kSecure, kNonSecure };

}  // namespace satin::hw
