#include "hw/types.h"

namespace satin::hw {

const char* to_string(CoreType type) {
  switch (type) {
    case CoreType::kLittleA53:
      return "A53";
    case CoreType::kBigA57:
      return "A57";
  }
  return "?";
}

const char* to_string(World world) {
  switch (world) {
    case World::kNormal:
      return "normal";
    case World::kSecure:
      return "secure";
  }
  return "?";
}

}  // namespace satin::hw
