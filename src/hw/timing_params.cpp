#include "hw/timing_params.h"

#include <algorithm>
#include <cmath>

namespace satin::hw {

double JitterSpec::sample_seconds(sim::Rng& rng) const {
  if (max_s <= min_s) return avg_s;
  if (rng.bernoulli(tail_prob)) {
    // One-sided tail: uniform between the mean and the observed maximum.
    return rng.uniform(avg_s, max_s);
  }
  // Body centered slightly below the mean so the mixture's expectation
  // lands back on avg_s: E = (1-p)(avg - d) + p(avg + max)/2 = avg
  // => d = p (max - avg) / (2 (1 - p)).
  const double d = tail_prob * (max_s - avg_s) / (2.0 * (1.0 - tail_prob));
  const double center = avg_s - d;
  const double sd = std::max((avg_s - min_s) / 3.0, 1e-15);
  return rng.truncated_normal(center, sd, min_s, max_s);
}

double CrossCoreDelayModel::magnitude_scale(int probed_cores) const {
  // 6 probed cores -> 1.0 (the Table II configuration); 1 probed core ->
  // ~0.25 (§IV-B2's single-core observation); linear in between.
  const int n = std::clamp(probed_cores, 1, 6);
  return 0.25 + 0.75 * static_cast<double>(n - 1) / 5.0;
}

double CrossCoreDelayModel::sample_base_seconds(sim::Rng& rng,
                                                int probed_cores) const {
  const double s = magnitude_scale(probed_cores);
  return rng.truncated_normal(base_mean_s * s, base_stddev_s * s,
                              base_min_s * s, base_max_s * s);
}

double CrossCoreDelayModel::sample_spike_seconds(sim::Rng& rng,
                                                 int probed_cores) const {
  const double s = magnitude_scale(probed_cores);
  const double mu = std::log(spike_log_median_s);
  const double raw = rng.lognormal(mu, spike_log_sigma);
  return std::clamp(raw * s, spike_min_s * s, spike_max_s * s);
}

}  // namespace satin::hw
