// GIC-style interrupt controller with TrustZone interrupt grouping.
//
// §II-B: secure interrupts must reach the secure world even when the core
// runs the normal world; §V-B: SATIN blocks normal-world interrupts during
// introspection by running non-preemptively (SCR_EL3.IRQ = 0), so a
// non-secure interrupt arriving while a core is in the secure world is
// *pended* and delivered when the core returns to the normal world.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "hw/core.h"
#include "hw/fault_hooks.h"
#include "hw/types.h"
#include "sim/engine.h"

namespace satin::hw {

class InterruptController : public WorldListener {
 public:
  using Handler = std::function<void(CoreId, IrqId)>;

  InterruptController(sim::Engine& engine, std::vector<Core*> cores);
  ~InterruptController() override;

  // Group assignment; unconfigured IRQs default to non-secure.
  void configure_group(IrqId irq, IrqGroup group);
  IrqGroup group_of(IrqId irq) const;

  // The EL3 secure monitor takes secure-group interrupts.
  void set_secure_handler(Handler handler) {
    secure_handler_ = std::move(handler);
  }
  // The rich OS takes non-secure-group interrupts.
  void set_nonsecure_handler(Handler handler) {
    nonsecure_handler_ = std::move(handler);
  }

  // Signals IRQ `irq` on `core`. Delivery depends on group and world:
  //  - secure IRQ, core in normal world: forwarded to the monitor now;
  //  - secure IRQ, core in secure world: pended until the exit (a new
  //    introspection round cannot preempt the running one);
  //  - non-secure IRQ, core in normal world: delivered to the OS now;
  //  - non-secure IRQ, core in secure world: pended until the exit
  //    (non-preemptive secure mode).
  void raise(CoreId core, IrqId irq);

  bool is_pending(CoreId core, IrqId irq) const;
  std::size_t pending_count(CoreId core) const;

  // Fault-injection seam: consulted before routing secure-group IRQs.
  void set_fault_hooks(FaultHooks* hooks) { fault_hooks_ = hooks; }

  // IRQs swallowed by the seam plus IRQs dropped at offline cores.
  std::uint64_t dropped_irqs() const { return dropped_irqs_; }

  // WorldListener: drains pended interrupts at secure exit.
  void on_secure_entry(CoreId core, sim::Time when) override;
  void on_secure_exit(CoreId core, sim::Time when) override;

 private:
  void deliver(CoreId core, IrqId irq, IrqGroup group);

  sim::Engine& engine_;
  std::vector<Core*> cores_;
  FaultHooks* fault_hooks_ = nullptr;
  std::uint64_t dropped_irqs_ = 0;
  std::map<IrqId, IrqGroup> groups_;
  Handler secure_handler_;
  Handler nonsecure_handler_;
  // Level-style semantics: repeated raises of a pended IRQ collapse.
  std::vector<std::set<IrqId>> pending_;
};

}  // namespace satin::hw
