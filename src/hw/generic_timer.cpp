#include "hw/generic_timer.h"

#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace satin::hw {

GenericTimer::GenericTimer(sim::Engine& engine, int num_cores)
    : engine_(engine),
      secure_(static_cast<std::size_t>(num_cores)),
      nonsecure_(static_cast<std::size_t>(num_cores)) {
  if (num_cores <= 0) throw std::invalid_argument("GenericTimer: no cores");
}

void GenericTimer::program(std::vector<PerCoreTimer>& timers, CoreId core,
                           sim::Time compare_value, IrqId irq) {
  auto& t = timers.at(static_cast<std::size_t>(core));
  t.event.cancel();
  t.compare_value = compare_value;
  t.enabled = true;
  // Fault seam (secure timer only): the injector may swallow this expiry
  // or delay it. A dropped expiry leaves the timer armed but silent —
  // exactly the lost-CVAL-write symptom SATIN's watchdog must survive.
  sim::Duration drift = sim::Duration::zero();
  if (fault_hooks_ != nullptr && irq == IrqId::kSecurePhysTimer) {
    const TimerFaultDecision decision =
        fault_hooks_->on_program_secure(core, compare_value);
    if (decision.drop) {
      ++faulted_programs_;
      return;
    }
    if (!decision.drift.is_zero()) ++faulted_programs_;
    drift = decision.drift;
  }
  // The hardware condition is CNTPCT >= CVAL, so a compare value in the
  // past fires immediately.
  const sim::Time when =
      (compare_value + drift < engine_.now() ? engine_.now()
                                             : compare_value + drift);
  t.event = engine_.schedule_at(when, [this, core, irq, &t] {
    t.enabled = false;
    SATIN_TRACE_INSTANT_ARG("hw", "timer_fire", engine_.now(), core,
                            irq == IrqId::kSecurePhysTimer
                                ? obs::kWorldSecure
                                : obs::kWorldNormal,
                            "irq", static_cast<int>(irq));
    SATIN_METRIC_INC(irq == IrqId::kSecurePhysTimer
                         ? "hw.secure_timer_fires"
                         : "hw.nonsecure_timer_fires");
    if (raise_) raise_(core, irq);
  });
}

void GenericTimer::stop(std::vector<PerCoreTimer>& timers, CoreId core) {
  auto& t = timers.at(static_cast<std::size_t>(core));
  t.event.cancel();
  t.enabled = false;
}

void GenericTimer::program_secure(CoreId core, sim::Time compare_value) {
  program(secure_, core, compare_value, IrqId::kSecurePhysTimer);
}

void GenericTimer::stop_secure(CoreId core) { stop(secure_, core); }

bool GenericTimer::secure_enabled(CoreId core) const {
  return secure_.at(static_cast<std::size_t>(core)).enabled;
}

sim::Time GenericTimer::secure_compare_value(CoreId core) const {
  return secure_.at(static_cast<std::size_t>(core)).compare_value;
}

void GenericTimer::program_nonsecure(CoreId core, sim::Time compare_value) {
  program(nonsecure_, core, compare_value, IrqId::kNonSecurePhysTimer);
}

void GenericTimer::stop_nonsecure(CoreId core) { stop(nonsecure_, core); }

bool GenericTimer::nonsecure_enabled(CoreId core) const {
  return nonsecure_.at(static_cast<std::size_t>(core)).enabled;
}

}  // namespace satin::hw
