#include "hw/memory.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace satin::hw {

namespace {
constexpr std::size_t kChunksPerSuper = 64;
}  // namespace

Memory::Memory(std::size_t size)
    : bytes_(size, 0),
      chunk_gen_((size + kChunkBytes - 1) / kChunkBytes, 0),
      super_gen_((chunk_gen_.size() + kChunksPerSuper - 1) / kChunksPerSuper,
                 0) {}

void Memory::check_range(const char* what, std::size_t offset,
                         std::size_t length) const {
  if (offset > bytes_.size() || length > bytes_.size() - offset) {
    throw std::out_of_range(std::string("Memory::") + what + ": offset " +
                            std::to_string(offset) + " + len " +
                            std::to_string(length) + " exceeds size " +
                            std::to_string(bytes_.size()));
  }
}

void Memory::bump_generations(std::size_t offset, std::size_t length) {
  if (length == 0) return;
  ++generation_;
  const std::size_t first = offset / kChunkBytes;
  const std::size_t last = (offset + length - 1) / kChunkBytes;
  for (std::size_t c = first; c <= last; ++c) {
    chunk_gen_[c] = generation_;
    super_gen_[c / kChunksPerSuper] = generation_;
  }
}

std::uint64_t Memory::generation(std::size_t offset,
                                 std::size_t length) const {
  check_range("generation", offset, length);
  if (length == 0) return 0;
  if (offset == 0 && length == bytes_.size()) return generation_;
  const std::size_t first = offset / kChunkBytes;
  const std::size_t last = (offset + length - 1) / kChunkBytes;
  std::uint64_t max_gen = 0;
  std::size_t c = first;
  while (c <= last) {
    const std::size_t super = c / kChunksPerSuper;
    const std::size_t super_first = super * kChunksPerSuper;
    const std::size_t super_last = super_first + kChunksPerSuper - 1;
    if (c == super_first && super_last <= last) {
      // Whole superchunk inside the range: one load covers 64 chunks.
      max_gen = std::max(max_gen, super_gen_[super]);
      c = super_last + 1;
      continue;
    }
    const std::size_t stop = std::min(last, super_last);
    if (super_gen_[super] > max_gen) {
      // Only worth walking chunks when the superchunk could raise the max.
      for (; c <= stop; ++c) max_gen = std::max(max_gen, chunk_gen_[c]);
    }
    c = stop + 1;
  }
  return max_gen;
}

void Memory::materialize_overlapping(std::size_t offset, std::size_t length) {
  for (ActiveScan& scan : scans_) {
    if (scan.materialized) continue;
    const std::size_t lo = std::max(offset, scan.offset);
    const std::size_t hi = std::min(offset + length, scan.offset + scan.length);
    if (lo >= hi) continue;
    scan.view.assign(bytes_.begin() + static_cast<std::ptrdiff_t>(scan.offset),
                     bytes_.begin() +
                         static_cast<std::ptrdiff_t>(scan.offset + scan.length));
    scan.materialized = true;
  }
}

void Memory::poke(std::size_t offset, std::span<const std::uint8_t> data) {
  check_range("poke", offset, data.size());
  // An untimed poke is invisible to in-flight scans (their snapshot is
  // anchored at scan start); give overlapped scans their private view
  // before the backing bytes move under them.
  materialize_overlapping(offset, data.size());
  bump_generations(offset, data.size());
  std::copy(data.begin(), data.end(), bytes_.begin() + offset);
}

void Memory::write(sim::Time now, std::size_t offset,
                   std::span<const std::uint8_t> data) {
  check_range("write", offset, data.size());
  ++write_count_;
  materialize_overlapping(offset, data.size());
  bump_generations(offset, data.size());
  for (ActiveScan& scan : scans_) {
    const std::size_t scan_end = scan.offset + scan.length;
    const std::size_t lo = std::max(offset, scan.offset);
    const std::size_t hi = std::min(offset + data.size(), scan_end);
    if (lo >= hi) continue;
    std::size_t bytes_won = 0;  // write landed before the scan cursor
    for (std::size_t pos = lo; pos < hi; ++pos) {
      const double touch_ps =
          static_cast<double>(scan.start.ps()) +
          scan.per_byte_ps * static_cast<double>(pos - scan.offset);
      // The scanner reads byte `pos` at touch time; a write at exactly the
      // touch time is taken as visible (the store wins the cache race).
      if (static_cast<double>(now.ps()) <= touch_ps) {
        scan.view[pos - scan.offset] = data[pos - offset];
        ++bytes_won;
      }
    }
    // Per-byte race resolution: bytes the write placed ahead of the cursor
    // are what the scanner will hash; bytes behind it were already read.
    SATIN_TRACE_INSTANT_ARG("race", bytes_won > 0 ? "write_before_cursor"
                                                  : "write_after_cursor",
                            now, obs::kGlobalTrack, obs::kWorldNormal,
                            "bytes_won", bytes_won);
    SATIN_METRIC_ADD("race.bytes_write_won", bytes_won);
    SATIN_METRIC_ADD("race.bytes_write_lost", (hi - lo) - bytes_won);
    SATIN_METRIC_INC("race.writes_during_scan");
    // Race-window width: how many overlapped bytes were still ahead of the
    // scan cursor when the write landed — the per-write TOCTTOU window.
    SATIN_METRIC_DIGEST_OBSERVE("race.window_bytes",
                                static_cast<double>(bytes_won));
  }
  std::copy(data.begin(), data.end(), bytes_.begin() + offset);
}

Memory::ScanToken Memory::begin_scan(sim::Time start, std::size_t offset,
                                     std::size_t length, double per_byte_ps) {
  check_range("begin_scan", offset, length);
  if (length == 0) throw std::invalid_argument("Memory::begin_scan: empty");
  if (!(per_byte_ps > 0.0)) {
    throw std::invalid_argument("Memory::begin_scan: non-positive speed");
  }
  ActiveScan scan;
  scan.id = next_scan_id_++;
  scan.start = start;
  scan.offset = offset;
  scan.length = length;
  scan.per_byte_ps = per_byte_ps;
  // Copy-on-first-overlap: the private view is deferred until a write or
  // poke actually touches the window. Fault hooks force it immediately —
  // a transient read glitch corrupts what this scan observes, never the
  // backing bytes, and racing writes still apply on top of the (possibly
  // corrupted) view deterministically.
  if (fault_hooks_ != nullptr) {
    scan.view.assign(bytes_.begin() + static_cast<std::ptrdiff_t>(offset),
                     bytes_.begin() + static_cast<std::ptrdiff_t>(offset + length));
    scan.materialized = true;
    fault_hooks_->corrupt_scan_view(start, offset, scan.view);
    // A glitched view never enters the digest cache (it is materialized,
    // hence bypassed), but mark the flipped chunks dirty anyway so any
    // cached digest covering them is conservatively recomputed from the
    // (clean) backing bytes on the next round.
    for (std::size_t i = 0; i < length;) {
      const std::size_t chunk_end =
          std::min(length, ((offset + i) / kChunkBytes + 1) * kChunkBytes -
                               offset);
      if (!std::equal(scan.view.begin() + static_cast<std::ptrdiff_t>(i),
                      scan.view.begin() + static_cast<std::ptrdiff_t>(chunk_end),
                      bytes_.begin() + static_cast<std::ptrdiff_t>(offset + i))) {
        bump_generations(offset + i, chunk_end - i);
      }
      i = chunk_end;
    }
  }
  scans_.push_back(std::move(scan));
  return ScanToken(scans_.back().id);
}

Memory::ScanView Memory::finish_scan(ScanToken token) {
  for (auto it = scans_.begin(); it != scans_.end(); ++it) {
    if (it->id == token.id_) {
      ScanView result =
          it->materialized
              ? ScanView(std::move(it->view))
              : ScanView(std::span<const std::uint8_t>(bytes_).subspan(
                    it->offset, it->length));
      scans_.erase(it);
      return result;
    }
  }
  throw std::logic_error("Memory::finish_scan: unknown token");
}

void Memory::cancel_scan(ScanToken token) {
  for (auto it = scans_.begin(); it != scans_.end(); ++it) {
    if (it->id == token.id_) {
      scans_.erase(it);
      return;
    }
  }
  throw std::logic_error("Memory::cancel_scan: unknown token");
}

}  // namespace satin::hw
