#include "hw/interrupt_controller.h"

#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/log.h"

namespace satin::hw {

InterruptController::InterruptController(sim::Engine& engine,
                                         std::vector<Core*> cores)
    : engine_(engine), cores_(std::move(cores)),
      pending_(cores_.size()) {
  if (cores_.empty()) {
    throw std::invalid_argument("InterruptController: no cores");
  }
  for (Core* core : cores_) core->add_world_listener(this);
}

InterruptController::~InterruptController() {
  for (Core* core : cores_) core->remove_world_listener(this);
}

void InterruptController::configure_group(IrqId irq, IrqGroup group) {
  groups_[irq] = group;
}

IrqGroup InterruptController::group_of(IrqId irq) const {
  const auto it = groups_.find(irq);
  return it == groups_.end() ? IrqGroup::kNonSecure : it->second;
}

void InterruptController::raise(CoreId core, IrqId irq) {
  auto& pending = pending_.at(static_cast<std::size_t>(core));
  const IrqGroup group = group_of(irq);
  Core& target = *cores_.at(static_cast<std::size_t>(core));
  // A powered-off core has no CPU interface: the IRQ goes nowhere. (An
  // in-flight secure stay still drains its pended IRQs at exit — power-off
  // takes effect for newly raised interrupts.)
  if (!target.online()) {
    ++dropped_irqs_;
    SATIN_TRACE_INSTANT_ARG("hw", "irq_dropped_offline", engine_.now(), core,
                            obs::kWorldNone, "irq", static_cast<int>(irq));
    SATIN_METRIC_INC("hw.irqs_dropped_offline");
    SATIN_LOG(kDebug) << "gic: drop irq " << static_cast<int>(irq)
                      << " to offline core " << core;
    return;
  }
  // Fault seam: a secure-group IRQ can be lost between the distributor and
  // the CPU interface.
  if (fault_hooks_ != nullptr && group == IrqGroup::kSecure &&
      fault_hooks_->drop_secure_irq(core, irq)) {
    ++dropped_irqs_;
    SATIN_METRIC_INC("hw.irqs_lost");
    SATIN_LOG(kDebug) << "gic: secure irq " << static_cast<int>(irq)
                      << " to core " << core << " lost (fault)";
    return;
  }
  const bool core_secure = target.in_secure_world();
  if (group == IrqGroup::kSecure) {
    if (core_secure) {
      pending.insert(irq);
    } else {
      deliver(core, irq, group);
    }
    return;
  }
  // Non-secure interrupt.
  if (core_secure) {
    // SCR_EL3.IRQ = 0: the secure payload outranks normal interrupts; the
    // IRQ stays pending at the GIC until the world switch back.
    pending.insert(irq);
  } else {
    deliver(core, irq, group);
  }
}

bool InterruptController::is_pending(CoreId core, IrqId irq) const {
  return pending_.at(static_cast<std::size_t>(core)).count(irq) > 0;
}

std::size_t InterruptController::pending_count(CoreId core) const {
  return pending_.at(static_cast<std::size_t>(core)).size();
}

void InterruptController::on_secure_entry(CoreId, sim::Time) {}

void InterruptController::on_secure_exit(CoreId core, sim::Time) {
  auto& pending = pending_.at(static_cast<std::size_t>(core));
  if (pending.empty()) return;
  // Drain to a local set first: delivering a pended secure timer IRQ can
  // re-enter the secure world and pend new interrupts.
  std::set<IrqId> drained;
  drained.swap(pending);
  for (IrqId irq : drained) deliver(core, irq, group_of(irq));
}

void InterruptController::deliver(CoreId core, IrqId irq, IrqGroup group) {
  SATIN_LOG(kTrace) << "gic: deliver irq " << static_cast<int>(irq)
                    << " to core " << core << " ("
                    << (group == IrqGroup::kSecure ? "secure" : "non-secure")
                    << ")";
  if (group == IrqGroup::kSecure) {
    if (secure_handler_) secure_handler_(core, irq);
  } else {
    if (nonsecure_handler_) nonsecure_handler_(core, irq);
  }
}

}  // namespace satin::hw
