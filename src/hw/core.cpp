#include "hw/core.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/log.h"

namespace satin::hw {

void Core::remove_world_listener(WorldListener* listener) {
  listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), listener),
                   listeners_.end());
}

void Core::set_online(bool online, sim::Time when) {
  if (online_ == online) return;
  online_ = online;
  SATIN_TRACE_INSTANT("hw", online ? "core_online" : "core_offline", when,
                      id_, obs::kWorldNone);
  SATIN_METRIC_INC(online ? "hw.core_online" : "hw.core_offline");
  SATIN_LOG(kInfo) << name() << (online ? " comes online" : " goes offline")
                   << " at " << when.to_string();
}

std::string Core::name() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "core%d(%s)", id_, to_string(type_));
  return buf;
}

void Core::enter_secure(sim::Time when) {
  assert(world_ == World::kNormal && "nested secure entry");
  world_ = World::kSecure;
  secure_entry_time_ = when;
  ++secure_entries_;
  SATIN_TRACE_BEGIN("hw", "secure_world", when, id_, obs::kWorldSecure);
  SATIN_METRIC_INC("hw.secure_entries");
  SATIN_LOG(kDebug) << name() << " enters secure world at "
                    << when.to_string();
  for (WorldListener* l : listeners_) l->on_secure_entry(id_, when);
}

void Core::exit_secure(sim::Time when) {
  assert(world_ == World::kSecure && "exit without entry");
  world_ = World::kNormal;
  secure_total_ += when - secure_entry_time_;
  SATIN_TRACE_END("hw", "secure_world", when, id_, obs::kWorldSecure);
  SATIN_METRIC_OBSERVE("hw.secure_stay_s", (when - secure_entry_time_).sec());
  SATIN_LOG(kDebug) << name() << " returns to normal world at "
                    << when.to_string();
  for (WorldListener* l : listeners_) l->on_secure_exit(id_, when);
}

}  // namespace satin::hw
