#include "hw/secure_monitor.h"

#include <stdexcept>

#include "obs/flight/recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/log.h"

namespace satin::hw {

void SecureSession::complete() {
  if (completed_) {
    throw std::logic_error("SecureSession::complete called twice");
  }
  completed_ = true;
  monitor_->finish_session(*this);
}

SecureMonitor::SecureMonitor(sim::Engine& engine, sim::Rng& rng,
                             const TimingParams& timing,
                             std::vector<Core*> cores)
    : engine_(engine), rng_(rng), timing_(timing), cores_(std::move(cores)) {
  if (cores_.empty()) throw std::invalid_argument("SecureMonitor: no cores");
}

void SecureMonitor::on_secure_irq(CoreId core_id, IrqId irq) {
  if (irq != IrqId::kSecurePhysTimer) {
    SATIN_LOG(kWarn) << "monitor: unhandled secure irq "
                     << static_cast<int>(irq);
    return;
  }
  Core& core = *cores_.at(static_cast<std::size_t>(core_id));
  if (core.in_secure_world()) {
    // The GIC pends secure IRQs while the core is already secure; reaching
    // here would mean re-entrancy.
    throw std::logic_error("secure irq delivered to core already in secure");
  }
  // Fault seam: the switch into the secure world can fail (aborted SMC /
  // stuck context save). The core stays in the normal world; whoever
  // programmed the wake must notice the round never happened.
  if (fault_hooks_ != nullptr && fault_hooks_->fail_secure_entry(core_id)) {
    ++failed_entries_;
    SATIN_METRIC_INC("hw.secure_entry_failures");
    SATIN_LOG(kInfo) << "monitor: secure entry on core " << core_id
                     << " failed (fault)";
    return;
  }
  const sim::Time entry = engine_.now();
  SATIN_TRACE_INSTANT("hw", "secure_timer_irq", entry, core_id,
                      obs::kWorldSecure);
  SATIN_METRIC_INC("hw.secure_irqs");
  // Context save begins now: the normal world on this core is frozen from
  // this instant — exactly the availability loss the probers sense.
  core.enter_secure(entry);
  SATIN_FLIGHT_RECORD(obs::FlightKind::kWorldEnter, entry, sessions_, core_id,
                      0);
  ++sessions_;

  auto session = std::make_shared<SecureSession>();
  session->monitor_ = this;
  session->core_ = core_id;
  session->type_ = core.type();
  session->entry_ = entry;

  const sim::Duration switch_in = sample_switch();
  SATIN_TRACE_BEGIN("hw", "world_switch_in", entry, core_id,
                    obs::kWorldSecure);
  SATIN_TRACE_END("hw", "world_switch_in", entry + switch_in, core_id,
                  obs::kWorldSecure);
  SATIN_METRIC_INC("hw.world_switches");
  SATIN_METRIC_OBSERVE("hw.switch_s", switch_in.sec());
  engine_.schedule_after(switch_in, [this, session] {
    session->start_ = engine_.now();
    if (payload_) {
      payload_(session);
    } else {
      session->complete();
    }
  });
}

void SecureMonitor::finish_session(SecureSession& session) {
  const CoreId core_id = session.core_id();
  const sim::Duration switch_out = sample_switch();
  SATIN_TRACE_BEGIN("hw", "world_switch_out", engine_.now(), core_id,
                    obs::kWorldSecure);
  SATIN_TRACE_END("hw", "world_switch_out", engine_.now() + switch_out,
                  core_id, obs::kWorldSecure);
  SATIN_METRIC_INC("hw.world_switches");
  SATIN_METRIC_OBSERVE("hw.switch_s", switch_out.sec());
  engine_.schedule_after(switch_out, [this, core_id] {
    Core& core = *cores_.at(static_cast<std::size_t>(core_id));
    core.exit_secure(engine_.now());
    SATIN_FLIGHT_RECORD(obs::FlightKind::kWorldExit, engine_.now(), exits_,
                        core_id, 0);
    ++exits_;
  });
}

}  // namespace satin::hw
