// ARM Generic Timer model.
//
// §V-C / §VI-A1: every TrustZone-enabled core owns a *secure* physical
// timer (CNTPS_CVAL_EL1 / CNTPS_CTL_EL1) readable and writable only with
// secure-world privilege, all compared against the shared physical counter
// (CNTPCT_EL0). SATIN's self-activation programs these so the secure world
// wakes itself with no help from (and no signal to) the normal world.
// The rich OS drives its scheduling tick from the per-core non-secure
// physical timer.
#pragma once

#include <functional>
#include <vector>

#include "hw/fault_hooks.h"
#include "hw/types.h"
#include "sim/engine.h"
#include "sim/time.h"

namespace satin::hw {

class GenericTimer {
 public:
  using RaiseFn = std::function<void(CoreId, IrqId)>;

  GenericTimer(sim::Engine& engine, int num_cores);

  // CNTPCT_EL0: the counter shared by all cores. §III-B1's probers read a
  // "shared timer among all CPU cores" — this is it.
  sim::Time counter() const { return engine_.now(); }

  // Wire interrupt output (normally to the InterruptController).
  void set_raise_handler(RaiseFn fn) { raise_ = std::move(fn); }

  // Secure physical timer: fires IrqId::kSecurePhysTimer on `core` when the
  // counter reaches `compare_value`. Reprogramming replaces the pending
  // expiry (CNTPS_CVAL_EL1 write).
  void program_secure(CoreId core, sim::Time compare_value);
  // CNTPS_CTL_EL1.ENABLE = 0.
  void stop_secure(CoreId core);
  bool secure_enabled(CoreId core) const;
  sim::Time secure_compare_value(CoreId core) const;

  // Non-secure physical timer: same contract, fires kNonSecurePhysTimer.
  void program_nonsecure(CoreId core, sim::Time compare_value);
  void stop_nonsecure(CoreId core);
  bool nonsecure_enabled(CoreId core) const;

  int num_cores() const { return static_cast<int>(secure_.size()); }

  // Fault-injection seam: consulted on every secure expiry programming.
  // Null (the default) costs one pointer test and changes nothing.
  void set_fault_hooks(FaultHooks* hooks) { fault_hooks_ = hooks; }

  // Secure expiries swallowed or delayed by an installed FaultHooks.
  std::uint64_t faulted_programs() const { return faulted_programs_; }

 private:
  struct PerCoreTimer {
    sim::EventHandle event;
    sim::Time compare_value;
    bool enabled = false;
  };

  void program(std::vector<PerCoreTimer>& timers, CoreId core,
               sim::Time compare_value, IrqId irq);
  void stop(std::vector<PerCoreTimer>& timers, CoreId core);

  sim::Engine& engine_;
  RaiseFn raise_;
  FaultHooks* fault_hooks_ = nullptr;
  std::uint64_t faulted_programs_ = 0;
  std::vector<PerCoreTimer> secure_;
  std::vector<PerCoreTimer> nonsecure_;
};

}  // namespace satin::hw
