// Fault-injection seams for the hardware blocks.
//
// The paper's guarantees are argued over a well-behaved platform; real
// TrustZone deployments see misfiring timers, lost interrupts, failed
// world switches, transient read glitches and cores dropping offline.
// Each hardware block consults an optional FaultHooks instance at exactly
// one choke point; with no hooks installed (the default) every seam is a
// single null-pointer test and behavior is bit-identical to the seamless
// build. src/fault/ provides the deterministic injector that implements
// this interface from a seeded plan.
#pragma once

#include <cstdint>
#include <vector>

#include "hw/types.h"
#include "sim/time.h"

namespace satin::hw {

// What happens to a secure-timer expiry being programmed (CNTPS_CVAL_EL1
// write): delivered as requested, silently dropped, or delayed by `drift`.
struct TimerFaultDecision {
  bool drop = false;
  sim::Duration drift = sim::Duration::zero();
};

class FaultHooks {
 public:
  virtual ~FaultHooks() = default;

  // GenericTimer consults when a secure expiry is (re)programmed. The
  // decision is made against the requested compare value, so a dropped or
  // drifted wake is fixed the moment it is scheduled — deterministic
  // regardless of later event interleaving.
  virtual TimerFaultDecision on_program_secure(CoreId core,
                                               sim::Time compare_value) = 0;

  // InterruptController consults before routing a secure-group interrupt;
  // returning true swallows it (lost between the distributor and the CPU
  // interface).
  virtual bool drop_secure_irq(CoreId core, IrqId irq) = 0;

  // SecureMonitor consults before the world switch into the secure world;
  // returning true aborts the entry (failed SMC / stuck context save). The
  // core never leaves the normal world and the round is lost.
  virtual bool fail_secure_entry(CoreId core) = 0;

  // Memory consults when a linear scan registers its view; the hook may
  // flip bits in `view` to model a transient read glitch. Physical memory
  // itself is untouched — a re-read observes clean bytes.
  virtual void corrupt_scan_view(sim::Time scan_start, std::size_t offset,
                                 std::vector<std::uint8_t>& view) = 0;
};

}  // namespace satin::hw
