#include "hw/platform.h"

#include <stdexcept>

namespace satin::hw {

Platform::Platform(const PlatformConfig& config)
    : config_(config), rng_(config.seed) {
  if (config.num_little + config.num_big <= 0) {
    throw std::invalid_argument("Platform: needs at least one core");
  }
  // LITTLE cluster first (core0..3 = A53), then big (core4..5 = A57),
  // matching the Juno r1 boot order.
  CoreId next = 0;
  for (int i = 0; i < config.num_little; ++i) {
    cores_.push_back(std::make_unique<Core>(next++, CoreType::kLittleA53));
  }
  for (int i = 0; i < config.num_big; ++i) {
    cores_.push_back(std::make_unique<Core>(next++, CoreType::kBigA57));
  }

  memory_ = std::make_unique<Memory>(config.memory_bytes);
  timer_ = std::make_unique<GenericTimer>(engine_, num_cores());
  gic_ = std::make_unique<InterruptController>(engine_, core_ptrs());
  monitor_ = std::make_unique<SecureMonitor>(engine_, rng_, config_.timing,
                                             core_ptrs());

  gic_->configure_group(IrqId::kSecurePhysTimer, IrqGroup::kSecure);
  gic_->configure_group(IrqId::kNonSecurePhysTimer, IrqGroup::kNonSecure);
  timer_->set_raise_handler(
      [this](CoreId core, IrqId irq) { gic_->raise(core, irq); });
  gic_->set_secure_handler(
      [this](CoreId core, IrqId irq) { monitor_->on_secure_irq(core, irq); });
}

void Platform::install_fault_hooks(FaultHooks* hooks) {
  fault_hooks_ = hooks;
  timer_->set_fault_hooks(hooks);
  gic_->set_fault_hooks(hooks);
  monitor_->set_fault_hooks(hooks);
  memory_->set_fault_hooks(hooks);
}

std::vector<Core*> Platform::core_ptrs() {
  std::vector<Core*> out;
  out.reserve(cores_.size());
  for (auto& c : cores_) out.push_back(c.get());
  return out;
}

std::vector<CoreId> Platform::cores_of_type(CoreType type) const {
  std::vector<CoreId> out;
  for (const auto& c : cores_) {
    if (c->type() == type) out.push_back(c->id());
  }
  return out;
}

}  // namespace satin::hw
