// The assembled Juno-r1-like platform.
//
// Owns the simulation engine and every hardware block, wired the way the
// board is: generic timers raise interrupts into the GIC; secure-group
// interrupts route to the EL3 monitor; the GIC pends non-secure interrupts
// across secure-world occupancy.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hw/core.h"
#include "hw/generic_timer.h"
#include "hw/interrupt_controller.h"
#include "hw/memory.h"
#include "hw/secure_monitor.h"
#include "hw/timing_params.h"
#include "sim/engine.h"
#include "sim/rng.h"

namespace satin::hw {

struct PlatformConfig {
  // Juno r1: 4x Cortex-A53 + 2x Cortex-A57 (§IV-A).
  int num_little = 4;
  int num_big = 2;
  // Physical memory: must hold the rich OS kernel image (11,916,240 bytes
  // in the paper's build, §IV-C) with headroom.
  std::size_t memory_bytes = 16u * 1024u * 1024u;
  std::uint64_t seed = 0x5A71A57ull;
  // How stochastic hot paths draw: kScalar per-draw (the --batch=1 run of
  // record) or kBatched block kernels. Bit-identical by contract
  // (tests/sim/rng_test.cpp); a runtime knob, never part of result
  // identity.
  sim::DrawMode draw_mode = sim::DrawMode::kScalar;
  TimingParams timing;
};

class Platform {
 public:
  explicit Platform(const PlatformConfig& config = {});
  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  sim::Engine& engine() { return engine_; }
  sim::Rng& rng() { return rng_; }
  const TimingParams& timing() const { return config_.timing; }
  const PlatformConfig& config() const { return config_; }

  int num_cores() const { return static_cast<int>(cores_.size()); }
  Core& core(CoreId id) { return *cores_.at(static_cast<std::size_t>(id)); }
  const Core& core(CoreId id) const {
    return *cores_.at(static_cast<std::size_t>(id));
  }
  std::vector<Core*> core_ptrs();

  // Convenience: ids of all big (A57) / LITTLE (A53) cores.
  std::vector<CoreId> cores_of_type(CoreType type) const;

  Memory& memory() { return *memory_; }
  GenericTimer& timer() { return *timer_; }
  InterruptController& gic() { return *gic_; }
  SecureMonitor& monitor() { return *monitor_; }

  // Installs (or, with null, removes) one FaultHooks instance on every
  // block that has a seam: timer, GIC, monitor, memory. The hooks object
  // must outlive the platform or be uninstalled first.
  void install_fault_hooks(FaultHooks* hooks);
  FaultHooks* fault_hooks() const { return fault_hooks_; }

  sim::Time now() const { return engine_.now(); }

 private:
  PlatformConfig config_;
  sim::Engine engine_;
  sim::Rng rng_;
  FaultHooks* fault_hooks_ = nullptr;
  std::vector<std::unique_ptr<Core>> cores_;
  std::unique_ptr<Memory> memory_;
  std::unique_ptr<GenericTimer> timer_;
  std::unique_ptr<InterruptController> gic_;
  std::unique_ptr<SecureMonitor> monitor_;
};

}  // namespace satin::hw
