// Normal-world overhead study (§VI-B2, Fig. 7, abbreviated).
//
// Runs a subset of the mini-UnixBench suite with and without SATIN's
// self-activation and prints the per-program degradation. The two passes
// are independent simulations, so they fan out over --jobs=J workers as
// two trials; results and obs sinks merge back in submission order
// (baseline first), bit-identical for any J. The full-suite 1-task/6-task
// reproduction lives in bench/bench_fig7_overhead.
//
//   $ ./examples/overhead_study [--jobs=2] [--trace=out.json]
//                               [--faults=<spec>]
#include <cstdio>
#include <string>

#include "core/satin.h"
#include "fault/injector.h"
#include "obs/session.h"
#include "scenario/scenario.h"
#include "sim/parallel.h"
#include "workload/unixbench.h"

namespace {

std::vector<satin::workload::UnixBenchHarness::Result> run(
    bool with_satin, const std::string& faults_spec) {
  using namespace satin;
  scenario::Scenario system;
  // Each pass gets its own platform, so each arms its own injector (the
  // same plan both times — faults hit the two runs identically).
  const auto injector =
      fault::install_from_spec(system.platform(), faults_spec);
  core::SatinConfig config;
  config.tp_s = 0.8;  // aggressive wake-ups so a short window suffices
  core::Satin satin(system.platform(), system.kernel(), system.tsp(), config);
  if (with_satin) satin.start();
  workload::UnixBenchHarness harness(system.os());
  auto results = harness.run_suite(sim::Duration::from_sec(12), /*copies=*/1);
  if (auto* registry = obs::metrics()) {
    obs::snapshot_engine_metrics(system.engine(), *registry,
                                 /*include_wall=*/false);
  }
  return results;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace satin;
  // Both runs share one trace; their engines each start at t=0, so the
  // two passes overlay on the same timeline (merge order: baseline, then
  // SATIN — the trial submission order).
  obs::ObsSession obs(argc, argv);
  std::printf("running mini-UnixBench twice (without / with SATIN)...\n\n");
  sim::TrialRunnerOptions options;
  options.jobs = obs.jobs(/*fallback=*/1);
  options.flight_ring = obs.flight_ring();
  sim::TrialRunner runner(options);
  const auto passes = runner.run_collect(
      std::size_t{2}, [&obs](const sim::TrialContext& ctx) {
        return run(/*with_satin=*/ctx.index == 1, obs.faults_spec());
      });
  const auto rows = workload::compare_runs(passes[0], passes[1]);
  std::printf("%-20s %14s %14s %10s\n", "program", "baseline", "with SATIN",
              "degrad %");
  for (const auto& r : rows) {
    std::printf("%-20s %14.1f %14.1f %9.3f%%\n", r.name.c_str(),
                r.baseline_score, r.satin_score, 100.0 * r.degradation);
  }
  std::printf("%-20s %29s %9.3f%%\n", "OVERALL", "",
              100.0 * workload::mean_degradation(rows));
  std::printf(
      "\nthe rich OS never fully stops: one core pays a few ms per round\n"
      "while the other five keep running (paper: 0.711%% / 0.848%% overall,\n"
      "worst bars file copy 256B and context switching).\n");
  std::fprintf(stderr,
               "BENCHJSON {\"bench\":\"overhead_study\",\"trials\":%zu,"
               "\"jobs\":%d,\"wall_s\":%.6f,\"trials_per_s\":%.3f}\n",
               runner.trials_run(), options.jobs, runner.wall_seconds(),
               runner.trials_per_second());
  obs.flush();
  return 0;
}
