// SATIN vs. TZ-Evader under a fault storm (Fig. 6 revisited, hostile HW).
//
// The same duel as satin_defense, but the platform misbehaves: secure
// timers misfire and drift, secure interrupts get lost and spuriously
// raised, world switches abort, scans see transient bit-flips and one
// core drops offline mid-run. SATIN's self-healing — missed-wake
// watchdog, bounded scan retry, wake-queue degradation — keeps the
// detection guarantee: every round over the tampered area still alarms
// (confirmed tamper), every injected bit-flip classifies transient, and
// no benign area is ever confirmed tampered.
//
//   $ ./examples/fault_storm [-v] [--replicas=N] [--jobs=J]
//                            [--trace=out.json] [--faults=<spec>]
//
// Pass --faults= to replace the built-in storm (see src/fault/plan.h for
// the spec grammar); --faults with an empty value runs fault-free.
// --replicas=N repeats the duel under N storms (replica 0 is the storm of
// record; later replicas re-seed the storm and the platform), fanned over
// --jobs=J workers.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fault/injector.h"
#include "obs/session.h"
#include "scenario/experiments.h"
#include "sim/log.h"
#include "sim/parallel.h"

namespace {

// Every class of fault the injector knows, overlapping across the run.
// Windows sit inside the ~170 s the 57-round duel takes at tp = 3 s.
// Replica i substitutes its own storm seed for the leading "seed=9".
constexpr char kDefaultStormBody[] =
    "timer-misfire@5s+30s:p=0.35,"
    "irq-lost@20s+40s:p=0.3,"
    "smc-fail@45s+30s:p=0.25,"
    "timer-drift@70s+40s:p=0.5:drift=800ms,"
    "irq-spurious@95s+20s:p=0.3:period=2s,"
    "bitflip@10s+130s:p=0.12,"
    "core-off@110s+25s:core=3";

struct ReplicaOutcome {
  satin::scenario::DuelReport report;
  std::uint64_t injected = 0;
  bool ok = false;
};

// Strips a leading --replicas=N from argv (anywhere), like ObsSession
// does for its own flags.
std::size_t parse_replicas(int& argc, char** argv) {
  std::size_t replicas = 1;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--replicas=", 11) == 0) {
      replicas = static_cast<std::size_t>(
          std::strtoull(argv[i] + 11, nullptr, 10));
      if (replicas == 0) replicas = 1;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return replicas;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace satin;

  obs::ObsSession obs(argc, argv);
  const std::size_t replicas = parse_replicas(argc, argv);
  if (argc > 1 && std::strcmp(argv[1], "-v") == 0) {
    sim::set_log_level(sim::LogLevel::kInfo);
  }
  const bool custom_spec = obs.faults_requested();
  const std::string spec0 = custom_spec
                                ? obs.faults_spec()
                                : "seed=9," + std::string(kDefaultStormBody);

  scenario::DuelConfig duel;
  duel.satin.tgoal_s = 57.0;  // tp = 3 s
  duel.rounds_target = 57;    // three full kernel cycles
  duel.satin.resilience.watchdog = true;
  duel.satin.resilience.max_scan_retries = 2;
  duel.satin.resilience.adapt_offline = true;

  std::printf("defender: SATIN + self-healing (watchdog, 2 scan retries,\n");
  std::printf("          core-offline degradation)\n");
  std::printf("attacker: TZ-Evader, same as in satin_defense\n");
  std::printf("faults:   %s\n",
              spec0.empty() ? "(none)"
                            : fault::FaultPlan::parse(spec0).to_string().c_str());
  if (replicas > 1) {
    std::printf("replicas: %zu (replica 0 above; others re-seeded)\n",
                static_cast<size_t>(replicas));
  }
  std::printf("\n");

  sim::TrialRunnerOptions options;
  options.jobs = obs.jobs(/*fallback=*/1);
  options.flight_ring = obs.flight_ring();
  sim::TrialRunner runner(options);
  const std::vector<ReplicaOutcome> outcomes = runner.run_collect(
      replicas, [&](const sim::TrialContext& ctx) {
        scenario::ScenarioConfig scenario_config;
        std::string spec = spec0;
        if (ctx.index > 0) {
          // Later replicas vary both dice: the platform streams and (for
          // the built-in storm) the injector's private stream.
          scenario_config.platform.seed = ctx.seed;
          if (!custom_spec) {
            spec = "seed=" + std::to_string(9 + ctx.index) + "," +
                   std::string(kDefaultStormBody);
          }
        }
        const scenario::SingleDuelResult result =
            scenario::run_single_duel(scenario_config, duel, spec);
        ReplicaOutcome out;
        out.report = result.report;
        out.injected = result.faults_injected;
        out.ok = out.report.rounds >= duel.rounds_target &&
                 out.report.target_always_flagged() &&
                 out.report.benign_confirmed_alarms == 0;
        return out;
      });

  const ReplicaOutcome& first = outcomes[0];
  const scenario::DuelReport& report = first.report;
  std::printf("introspection rounds:           %llu (%llu full cycles)\n",
              static_cast<unsigned long long>(report.rounds),
              static_cast<unsigned long long>(report.full_cycles));
  std::printf("faults injected:                %llu\n",
              static_cast<unsigned long long>(first.injected));
  std::printf("watchdog re-arms:               %llu\n",
              static_cast<unsigned long long>(report.watchdog_fires));
  std::printf("scan retries:                   %llu\n",
              static_cast<unsigned long long>(report.scan_retries));
  std::printf("alarms: %llu confirmed, %llu transient\n",
              static_cast<unsigned long long>(report.confirmed_alarms),
              static_cast<unsigned long long>(report.transient_alarms));
  std::printf("checks of area %d (the hijack):  %llu, flagged %llu times\n",
              report.target_area,
              static_cast<unsigned long long>(report.target_area_rounds),
              static_cast<unsigned long long>(report.target_area_alarms));
  std::printf("benign areas confirmed tampered: %llu\n",
              static_cast<unsigned long long>(report.benign_confirmed_alarms));

  bool all_ok = true;
  if (replicas > 1) {
    std::printf("\nper-replica storms:\n");
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const ReplicaOutcome& o = outcomes[i];
      std::printf(
          "  replica %zu: %llu faults, area flagged %llu/%llu, %llu benign "
          "confirms -> %s\n",
          i, static_cast<unsigned long long>(o.injected),
          static_cast<unsigned long long>(o.report.target_area_alarms),
          static_cast<unsigned long long>(o.report.target_area_rounds),
          static_cast<unsigned long long>(o.report.benign_confirmed_alarms),
          o.ok ? "ok" : "BROKEN");
    }
  }
  for (const ReplicaOutcome& o : outcomes) all_ok = all_ok && o.ok;

  std::printf("\n%s\n",
              all_ok
                  ? "detection survived the storm: the rootkit was flagged on\n"
                    "every pass over its area, and no injected glitch was\n"
                    "mistaken for tampering."
                  : "unexpected: the storm broke the detection guarantee");
  std::fprintf(stderr,
               "BENCHJSON {\"bench\":\"fault_storm\",\"trials\":%zu,"
               "\"jobs\":%d,\"wall_s\":%.6f,\"trials_per_s\":%.3f}\n",
               runner.trials_run(), options.jobs, runner.wall_seconds(),
               runner.trials_per_second());
  obs.flush();
  return all_ok ? 0 : 1;
}
