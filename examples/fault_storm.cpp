// SATIN vs. TZ-Evader under a fault storm (Fig. 6 revisited, hostile HW).
//
// The same duel as satin_defense, but the platform misbehaves: secure
// timers misfire and drift, secure interrupts get lost and spuriously
// raised, world switches abort, scans see transient bit-flips and one
// core drops offline mid-run. SATIN's self-healing — missed-wake
// watchdog, bounded scan retry, wake-queue degradation — keeps the
// detection guarantee: every round over the tampered area still alarms
// (confirmed tamper), every injected bit-flip classifies transient, and
// no benign area is ever confirmed tampered.
//
//   $ ./examples/fault_storm [-v] [--trace=out.json] [--faults=<spec>]
//
// Pass --faults= to replace the built-in storm (see src/fault/plan.h for
// the spec grammar); --faults with an empty value runs fault-free.
#include <cstdio>
#include <cstring>

#include "fault/injector.h"
#include "obs/session.h"
#include "scenario/experiments.h"
#include "sim/log.h"

namespace {

// Every class of fault the injector knows, overlapping across the run.
// Windows sit inside the ~170 s the 57-round duel takes at tp = 3 s.
constexpr char kDefaultStorm[] =
    "seed=9,"
    "timer-misfire@5s+30s:p=0.35,"
    "irq-lost@20s+40s:p=0.3,"
    "smc-fail@45s+30s:p=0.25,"
    "timer-drift@70s+40s:p=0.5:drift=800ms,"
    "irq-spurious@95s+20s:p=0.3:period=2s,"
    "bitflip@10s+130s:p=0.12,"
    "core-off@110s+25s:core=3";

}  // namespace

int main(int argc, char** argv) {
  using namespace satin;

  scenario::Scenario system;
  obs::ObsSession obs(argc, argv);
  if (argc > 1 && std::strcmp(argv[1], "-v") == 0) {
    sim::set_log_level(sim::LogLevel::kInfo);
  }
  const std::string spec =
      obs.faults_requested() ? obs.faults_spec() : kDefaultStorm;
  const auto injector = fault::install_from_spec(system.platform(), spec);

  scenario::DuelConfig duel;
  duel.satin.tgoal_s = 57.0;  // tp = 3 s
  duel.rounds_target = 57;    // three full kernel cycles
  duel.satin.resilience.watchdog = true;
  duel.satin.resilience.max_scan_retries = 2;
  duel.satin.resilience.adapt_offline = true;

  std::printf("defender: SATIN + self-healing (watchdog, 2 scan retries,\n");
  std::printf("          core-offline degradation)\n");
  std::printf("attacker: TZ-Evader, same as in satin_defense\n");
  std::printf("faults:   %s\n\n",
              injector ? injector->plan().to_string().c_str() : "(none)");

  const auto report = scenario::run_duel(system, duel);

  std::printf("introspection rounds:           %llu (%llu full cycles)\n",
              static_cast<unsigned long long>(report.rounds),
              static_cast<unsigned long long>(report.full_cycles));
  std::printf("faults injected:                %llu\n",
              static_cast<unsigned long long>(
                  injector ? injector->injected_total() : 0));
  std::printf("watchdog re-arms:               %llu\n",
              static_cast<unsigned long long>(report.watchdog_fires));
  std::printf("scan retries:                   %llu\n",
              static_cast<unsigned long long>(report.scan_retries));
  std::printf("alarms: %llu confirmed, %llu transient\n",
              static_cast<unsigned long long>(report.confirmed_alarms),
              static_cast<unsigned long long>(report.transient_alarms));
  std::printf("checks of area %d (the hijack):  %llu, flagged %llu times\n",
              report.target_area,
              static_cast<unsigned long long>(report.target_area_rounds),
              static_cast<unsigned long long>(report.target_area_alarms));
  std::printf("benign areas confirmed tampered: %llu\n",
              static_cast<unsigned long long>(report.benign_confirmed_alarms));

  const bool rounds_reached = report.rounds >= duel.rounds_target;
  const bool ok = rounds_reached && report.target_always_flagged() &&
                  report.benign_confirmed_alarms == 0;
  std::printf("\n%s\n",
              ok ? "detection survived the storm: the rootkit was flagged on\n"
                   "every pass over its area, and no injected glitch was\n"
                   "mistaken for tampering."
                 : "unexpected: the storm broke the detection guarantee");
  obs.flush(&system.engine());
  return ok ? 0 : 1;
}
