// Quickstart: assemble the simulated Juno platform, boot the rich OS,
// start SATIN in the secure world, plant a kernel rootkit, and watch the
// integrity checker catch it.
//
//   $ ./examples/quickstart [--trace=out.json] [--metrics=out.metrics.json]
//                           [--faults=<spec>]
#include <cstdio>

#include "attack/rootkit.h"
#include "core/satin.h"
#include "fault/injector.h"
#include "obs/session.h"
#include "os/system_map.h"
#include "scenario/scenario.h"

int main(int argc, char** argv) {
  using namespace satin;

  // 1. The whole platform in one line: 4x A53 + 2x A57, TrustZone worlds,
  //    generic timers, GIC, physical memory, booted lsk-4.4-like kernel.
  scenario::Scenario system;
  obs::ObsSession obs(argc, argv);
  const auto injector =
      fault::install_from_spec(system.platform(), obs.faults_spec());
  std::printf("booted: %d cores, %zu-byte kernel, %d System.map regions\n",
              system.platform().num_cores(), system.kernel().size(),
              system.kernel().map().region_count());

  // 2. SATIN in the secure world: 19 introspection areas, tp = 8 s.
  core::Satin satin(system.platform(), system.kernel(), system.tsp(),
                    core::SatinConfig{});
  satin.start();
  std::printf("SATIN: %d areas (max %zu B), tp = %.1f s, full scan <= %.0f s\n",
              satin.area_count(),
              core::largest_area(satin.checker().areas()), satin.tp().sec(),
              satin.guaranteed_scan_period(hw::CoreType::kBigA57).sec());

  // 3. The normal world gets compromised: a persistent rootkit hijacks the
  //    GETTID syscall-table entry (8 bytes in area 14).
  std::printf("GETTID handler before attack: 0x%016llx\n",
              static_cast<unsigned long long>(
                  system.os().syscall_handler_address(os::kGettidSyscallNr)));
  attack::Rootkit rootkit(system.os(),
                          system.platform().rng().fork("quickstart"));
  rootkit.add_gettid_trace();
  rootkit.install();
  std::printf("GETTID handler after attack:  0x%016llx  (hijacked)\n",
              static_cast<unsigned long long>(
                  system.os().syscall_handler_address(os::kGettidSyscallNr)));

  // 4. Run simulated time until area 14 has been scanned.
  while (satin.checker().check_count(14) == 0) {
    system.run_for(sim::Duration::from_sec(5));
  }
  satin.stop();

  // 5. The digest mismatch raised an alarm.
  std::printf("\nafter %.0f simulated seconds and %llu introspection rounds:\n",
              system.now().sec(),
              static_cast<unsigned long long>(satin.rounds()));
  for (const auto& alarm : satin.checker().alarms()) {
    std::printf("  ALARM: area %d on core %d at t=%.3f s (digest %016llx)\n",
                alarm.area, alarm.core, alarm.when.sec(),
                static_cast<unsigned long long>(alarm.digest));
  }
  std::printf("%s\n", satin.alarm_count() > 0
                          ? "rootkit detected — quickstart OK"
                          : "NO ALARM — something is wrong");
  obs.flush(&system.engine());
  return satin.alarm_count() > 0 ? 0 : 1;
}
