// SATIN vs. TZ-Evader (§V/§VI): the same attacker that defeats the
// periodic baseline loses against SATIN's divide-and-conquer.
//
// Every wake-up scans one sub-bound area on a randomly assigned core at a
// randomized time. The evader still notices each entry — but by the time
// its recovery finishes (~8 ms), the area containing its traces has been
// fully hashed. Run with -v for the narration.
//
//   $ ./examples/satin_defense [-v] [--trace=out.json] [--faults=<spec>]
#include <cstdio>
#include <cstring>

#include "fault/injector.h"
#include "obs/session.h"
#include "scenario/experiments.h"
#include "sim/log.h"

int main(int argc, char** argv) {
  using namespace satin;

  scenario::Scenario system;
  obs::ObsSession obs(argc, argv);
  const auto injector =
      fault::install_from_spec(system.platform(), obs.faults_spec());
  if (argc > 1 && std::strcmp(argv[1], "-v") == 0) {
    sim::set_log_level(sim::LogLevel::kInfo);
  }
  scenario::DuelConfig duel;
  duel.satin.tgoal_s = 57.0;  // tp = 3 s for a brisk demo
  duel.rounds_target = 57;    // three full kernel cycles

  std::printf("defender: SATIN — 19 areas (all under the 1,218,351 B race\n");
  std::printf("          bound), random area / random core / random time\n");
  std::printf("attacker: TZ-Evader, same as against the baseline\n\n");

  const auto report = scenario::run_duel(system, duel);

  std::printf("introspection rounds:          %llu (%llu full kernel cycles)\n",
              static_cast<unsigned long long>(report.rounds),
              static_cast<unsigned long long>(report.full_cycles));
  std::printf("rounds noticed by prober:      %llu (FN: %llu, FP: %llu)\n",
              static_cast<unsigned long long>(report.prober_detections),
              static_cast<unsigned long long>(report.false_negatives),
              static_cast<unsigned long long>(report.false_positives));
  std::printf("evasion attempts:              %llu\n",
              static_cast<unsigned long long>(report.evasions_started));
  std::printf("checks of area 14 (the hijack): %llu, detected %llu times\n",
              static_cast<unsigned long long>(report.target_area_rounds),
              static_cast<unsigned long long>(report.target_area_alarms));
  std::printf("avg gap between area-14 checks: %.0f s\n",
              report.avg_target_gap_s);
  std::printf("\n%s\n",
              report.satin_always_caught()
                  ? "every scan of area 14 caught the rootkit: the evader's\n"
                    "recovery always lost the race (§VI-B1: 'all the recovery "
                    "efforts fail')."
                  : "unexpected: the evader escaped SATIN");
  obs.flush(&system.engine());
  return report.satin_always_caught() ? 0 : 1;
}
