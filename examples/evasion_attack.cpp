// TZ-Evader vs. a state-of-the-art periodic checker (§III/§IV).
//
// The defender is a PKM-style whole-kernel measurement on a random core
// at randomized times — the strongest pre-SATIN configuration. TZ-Evader
// senses every secure-world entry through the core-availability side
// channel and hides its traces while the scan is still crawling toward
// them. Run with -v for the play-by-play narration.
//
//   $ ./examples/evasion_attack [-v] [--trace=out.json] [--faults=<spec>]
#include <cstdio>
#include <cstring>

#include "core/satin.h"
#include "fault/injector.h"
#include "obs/session.h"
#include "scenario/experiments.h"
#include "sim/log.h"

int main(int argc, char** argv) {
  using namespace satin;

  scenario::Scenario system;
  obs::ObsSession obs(argc, argv);
  const auto injector =
      fault::install_from_spec(system.platform(), obs.faults_spec());
  if (argc > 1 && std::strcmp(argv[1], "-v") == 0) {
    sim::set_log_level(sim::LogLevel::kInfo);
  }
  scenario::DuelConfig duel;
  duel.satin = core::make_pkm_baseline_config(/*period_s=*/4.0,
                                              /*random_core=*/true,
                                              /*random_time=*/true);
  duel.rounds_target = 15;

  std::printf("defender: whole-kernel hash every ~4 s, random core,\n");
  std::printf("          randomized wake time (pre-SATIN state of the art)\n");
  std::printf("attacker: TZ-Evader = GETTID rootkit + KProber-II\n");
  std::printf("          (SCHED_FIFO prio 99, threshold 1.8e-3 s)\n\n");

  const auto report = scenario::run_duel(system, duel);

  std::printf("introspection rounds:        %llu\n",
              static_cast<unsigned long long>(report.rounds));
  std::printf("rounds noticed by prober:    %llu (FN: %llu, FP: %llu)\n",
              static_cast<unsigned long long>(report.prober_detections),
              static_cast<unsigned long long>(report.false_negatives),
              static_cast<unsigned long long>(report.false_positives));
  std::printf("evasions (hide-then-rearm):  %llu\n",
              static_cast<unsigned long long>(report.evasions_started));
  std::printf("alarms raised:               %llu\n",
              static_cast<unsigned long long>(report.alarms));
  std::printf("\n%s\n",
              report.evader_always_escaped()
                  ? "the attacker evaded every scan: the hijacked entry sits "
                    "~9.5 MB\ninto the pass, but the traces are gone ~8 ms "
                    "after the scan starts.\n(~90% of the kernel is "
                    "unprotected this way — §IV-C)"
                  : "unexpected: the baseline caught the evader");
  obs.flush(&system.engine());
  return report.evader_always_escaped() ? 0 : 1;
}
