// satin_flightool — inspect and diff flight recordings (--flight=).
//
//   satin_flightool dump  FILE [--limit=N]     print records (default all)
//   satin_flightool stats FILE                 per-kind counts, span, chain
//   satin_flightool diff  A B [--context=N]    first-divergence report
//
// Exit codes: 0 = ok / identical, 1 = divergence found, 2 = usage or
// read error. CI's divergence-audit job gates directly on these.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/flight/audit.h"

namespace {

using satin::obs::FlightKind;
using satin::obs::FlightLog;
using satin::obs::FlightStats;

int usage() {
  std::fprintf(stderr,
               "usage: satin_flightool dump FILE [--limit=N]\n"
               "       satin_flightool stats FILE\n"
               "       satin_flightool diff A B [--context=N]\n");
  return 2;
}

// Parses "--<key>=<value>" out of argv; returns fallback when absent.
std::size_t take_size_flag(int& argc, char** argv, const char* key,
                           std::size_t fallback) {
  const std::string prefix = std::string("--") + key + "=";
  std::size_t value = fallback;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      value = static_cast<std::size_t>(
          std::strtoull(argv[i] + prefix.size(), nullptr, 10));
      continue;
    }
    argv[out++] = argv[i];
  }
  argv[out] = nullptr;
  argc = out;
  return value;
}

bool load(const char* path, FlightLog& log) {
  std::string error;
  if (!satin::obs::read_flight_log(path, log, &error)) {
    std::fprintf(stderr, "satin_flightool: %s\n", error.c_str());
    return false;
  }
  return true;
}

int cmd_dump(const char* path, std::size_t limit) {
  FlightLog log;
  if (!load(path, log)) return 2;
  std::size_t n = 0;
  for (const auto& rec : log.records) {
    if (n++ >= limit) {
      std::printf("... (%zu more)\n", log.records.size() - limit);
      break;
    }
    std::printf("[%zu] %s\n", n - 1,
                satin::obs::format_flight_record(rec).c_str());
  }
  if (!log.has_footer) std::printf("(no footer: truncated recording)\n");
  return 0;
}

int cmd_stats(const char* path) {
  FlightLog log;
  if (!load(path, log)) return 2;
  const FlightStats stats = satin::obs::compute_flight_stats(log);
  std::printf("records      %llu\n",
              static_cast<unsigned long long>(stats.total));
  for (std::size_t k = 0; k < stats.by_kind.size(); ++k) {
    if (stats.by_kind[k] == 0) continue;
    std::printf("  %-11s %llu\n",
                satin::obs::to_string(static_cast<FlightKind>(k)),
                static_cast<unsigned long long>(stats.by_kind[k]));
  }
  if (stats.other_kinds > 0) {
    std::printf("  %-11s %llu\n", "unknown",
                static_cast<unsigned long long>(stats.other_kinds));
  }
  std::printf("span_ps      %lld..%lld\n",
              static_cast<long long>(stats.first_t_ps),
              static_cast<long long>(stats.last_t_ps));
  std::printf("mode         %s\n", log.ring ? "ring" : "spill");
  if (log.has_footer) {
    std::printf("commits      %llu\n",
                static_cast<unsigned long long>(log.commits));
    std::printf("dropped      %llu\n",
                static_cast<unsigned long long>(log.dropped));
    std::printf("chain        0x%llx\n",
                static_cast<unsigned long long>(log.chain_hash));
  } else {
    std::printf("footer       missing (truncated recording)\n");
  }
  return 0;
}

int cmd_diff(const char* path_a, const char* path_b, std::size_t context) {
  FlightLog a, b;
  if (!load(path_a, a) || !load(path_b, b)) return 2;
  const auto result = satin::obs::diff_flight_logs(a, b, context);
  std::printf("%s\n", result.report.c_str());
  return result.diverged ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "dump") {
    const std::size_t limit =
        take_size_flag(argc, argv, "limit", static_cast<std::size_t>(-1));
    if (argc != 3) return usage();
    return cmd_dump(argv[2], limit);
  }
  if (cmd == "stats") {
    if (argc != 3) return usage();
    return cmd_stats(argv[2]);
  }
  if (cmd == "diff") {
    const std::size_t context = take_size_flag(argc, argv, "context", 5);
    if (argc != 4) return usage();
    return cmd_diff(argv[2], argv[3], context);
  }
  return usage();
}
