// satin_campaign — declarative Monte-Carlo campaign runner.
//
//   satin_campaign run      SPEC.json [flags]   run (creates/extends journal)
//   satin_campaign resume   SPEC.json [flags]   like run, but refuses to start
//                                               without an existing journal
//   satin_campaign status   JOURNAL             progress peek (no spec needed)
//   satin_campaign validate SPEC.json           parse + validate, print hash
//
// Flags for run/resume (plus ObsSession's --metrics= / --metrics-stable /
// --flight= / --trace=):
//   --journal=PATH    journal file     (default: SPEC + ".journal")
//   --out=PATH        stats JSON       (default: SPEC + ".stats.json")
//   --jobs=N          worker processes (default: spec's `jobs`)
//   --branches=N      COW fork branch group size (default: spec's
//                     `branches`; 0 = the persistent worker pool)
//   --timeout=SECS    per-trial wedge timeout (default: spec's)
//   --max-retries=N   per-trial retry budget  (default: spec's)
//   --chaos-kill-trial=I / --chaos-hang-trial=I / --chaos-kill-after=N
//                     deterministic crash injection for the CI audit
//
// Exit codes: 0 = campaign complete, 2 = usage / spec / journal error,
// 3 = campaign finished DEGRADED (some trials permanently failed; partial
// stats were still written, marked "degraded": true).
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "campaign/journal.h"
#include "campaign/spec.h"
#include "campaign/supervisor.h"
#include "obs/session.h"

namespace {

using satin::campaign::CampaignJournal;
using satin::campaign::CampaignOptions;
using satin::campaign::CampaignOutcome;
using satin::campaign::CampaignSpec;

int usage() {
  std::fprintf(stderr,
               "usage: satin_campaign run      SPEC.json [--journal=P] "
               "[--out=P] [--jobs=N] [--branches=N] [--timeout=S] "
               "[--max-retries=N]\n"
               "       satin_campaign resume   SPEC.json [same flags]\n"
               "       satin_campaign status   JOURNAL\n"
               "       satin_campaign validate SPEC.json\n");
  return 2;
}

// Strips "--<key>=<value>" from argv, returning the value ("" if absent).
std::string take_flag(int& argc, char** argv, const char* key) {
  const std::string prefix = std::string("--") + key + "=";
  std::string value;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      value = argv[i] + prefix.size();
      continue;
    }
    argv[out++] = argv[i];
  }
  argv[out] = nullptr;
  argc = out;
  return value;
}

bool load_spec(const char* path, CampaignSpec& spec) {
  try {
    spec = satin::campaign::load_campaign_spec(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "satin_campaign: %s\n", e.what());
    return false;
  }
  return true;
}

int cmd_status(const char* journal_path) {
  CampaignJournal::Status status;
  std::string error;
  if (!CampaignJournal::read_status(journal_path, status, &error)) {
    std::fprintf(stderr, "satin_campaign: %s\n", error.c_str());
    return 2;
  }
  std::printf("journal      %s\n", journal_path);
  std::printf("spec_hash    %016" PRIx64 "\n", status.spec_hash);
  std::printf("root_seed    %" PRIu64 "\n", status.root_seed);
  std::printf("trials       %" PRIu64 "\n", status.trials);
  std::printf("completed    %" PRIu64 "\n", status.completed);
  std::printf("remaining    %" PRIu64 "\n",
              status.trials > status.completed
                  ? status.trials - status.completed
                  : 0);
  std::printf("quarantined  %" PRIu64 "\n", status.quarantined);
  return 0;
}

int cmd_validate(const char* spec_path) {
  CampaignSpec spec;
  if (!load_spec(spec_path, spec)) return 2;
  std::printf("ok: %s\n", spec_path);
  std::printf("name       %s\n", spec.name.c_str());
  std::printf("spec_hash  %016" PRIx64 "\n", spec.content_hash());
  std::printf("trials     %" PRIu64 "\n", spec.trials);
  std::printf("root_seed  %" PRIu64 "\n", spec.root_seed);
  std::printf("jobs       %d\n", spec.jobs);
  if (!spec.faults.empty()) {
    std::printf("faults     %s\n", spec.faults.c_str());
  }
  return 0;
}

// `branches_override` carries ObsSession's parsed --branches= value
// (ObsSession consumes that flag before the subcommand sees argv);
// -1 = flag absent, defer to the spec.
int cmd_run(int argc, char** argv, bool resume, int branches_override) {
  CampaignOptions options;
  options.require_existing_journal = resume;
  options.branches = branches_override;
  options.journal_path = take_flag(argc, argv, "journal");
  options.stats_path = take_flag(argc, argv, "out");
  const std::string jobs = take_flag(argc, argv, "jobs");
  const std::string timeout = take_flag(argc, argv, "timeout");
  const std::string retries = take_flag(argc, argv, "max-retries");
  const std::string kill_trial = take_flag(argc, argv, "chaos-kill-trial");
  const std::string hang_trial = take_flag(argc, argv, "chaos-hang-trial");
  const std::string kill_after = take_flag(argc, argv, "chaos-kill-after");
  if (!jobs.empty()) options.jobs = std::atoi(jobs.c_str());
  if (!timeout.empty()) options.trial_timeout_s = std::atof(timeout.c_str());
  if (!retries.empty()) options.max_retries = std::atoi(retries.c_str());
  if (!kill_trial.empty()) {
    options.chaos_kill_trial = std::strtoll(kill_trial.c_str(), nullptr, 10);
  }
  if (!hang_trial.empty()) {
    options.chaos_hang_trial = std::strtoll(hang_trial.c_str(), nullptr, 10);
  }
  if (!kill_after.empty()) {
    options.chaos_supervisor_kill_after =
        std::strtoull(kill_after.c_str(), nullptr, 10);
  }
  if (argc != 2) return usage();
  const std::string spec_path = argv[1];

  CampaignSpec spec;
  if (!load_spec(spec_path.c_str(), spec)) return 2;
  if (options.journal_path.empty()) {
    options.journal_path = spec_path + ".journal";
  }
  if (options.stats_path.empty()) {
    options.stats_path = spec_path + ".stats.json";
  }

  const CampaignOutcome outcome = satin::campaign::run_campaign(spec, options);
  if (!outcome.ok) {
    std::fprintf(stderr, "satin_campaign: %s\n", outcome.error.c_str());
    return 2;
  }
  std::printf("campaign     %s\n", spec.name.c_str());
  std::printf("trials       %" PRIu64 "\n", outcome.trials);
  std::printf("completed    %" PRIu64 "\n", outcome.completed);
  std::printf("resumed      %" PRIu64 "\n", outcome.resumed);
  std::printf("quarantined  %" PRIu64 "\n", outcome.quarantined);
  std::printf("retries      %" PRIu64 "\n", outcome.retries);
  std::printf("redispatches %" PRIu64 "\n", outcome.redispatches);
  std::printf("crashes      %" PRIu64 " (%" PRIu64 " timeouts)\n",
              outcome.worker_crashes, outcome.worker_timeouts);
  std::printf("workers      %" PRIu64 " spawned, %" PRIu64 " slots retired\n",
              outcome.workers_spawned, outcome.pool_shrinks);
  std::printf("stats        %s\n", options.stats_path.c_str());
  if (outcome.degraded) {
    std::fprintf(stderr,
                 "satin_campaign: DEGRADED — %zu trial(s) permanently "
                 "failed; partial stats written\n",
                 outcome.failed_trials.size());
    return 3;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Installs --metrics= / --metrics-stable / --flight= / --trace= sinks
  // for this (supervisor) thread; the campaign merges worker artifacts
  // into them in index order before the session flushes at exit.
  satin::obs::ObsSession session(argc, argv);
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "run" || cmd == "resume") {
    // Shift the subcommand out so cmd_run sees SPEC at argv[1].
    for (int i = 1; i + 1 < argc; ++i) argv[i] = argv[i + 1];
    --argc;
    argv[argc] = nullptr;
    return cmd_run(argc, argv, cmd == "resume",
                   session.branches_requested() ? session.branches() : -1);
  }
  if (cmd == "status") {
    if (argc != 3) return usage();
    return cmd_status(argv[2]);
  }
  if (cmd == "validate") {
    if (argc != 3) return usage();
    return cmd_validate(argv[2]);
  }
  return usage();
}
