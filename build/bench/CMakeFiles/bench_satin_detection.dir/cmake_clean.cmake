file(REMOVE_RECURSE
  "CMakeFiles/bench_satin_detection.dir/bench_satin_detection.cpp.o"
  "CMakeFiles/bench_satin_detection.dir/bench_satin_detection.cpp.o.d"
  "bench_satin_detection"
  "bench_satin_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_satin_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
