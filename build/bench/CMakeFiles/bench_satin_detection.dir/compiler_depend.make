# Empty compiler generated dependencies file for bench_satin_detection.
# This may be replaced when dependencies are built.
