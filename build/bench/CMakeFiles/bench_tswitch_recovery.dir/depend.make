# Empty dependencies file for bench_tswitch_recovery.
# This may be replaced when dependencies are built.
