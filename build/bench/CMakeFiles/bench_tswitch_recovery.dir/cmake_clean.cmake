file(REMOVE_RECURSE
  "CMakeFiles/bench_tswitch_recovery.dir/bench_tswitch_recovery.cpp.o"
  "CMakeFiles/bench_tswitch_recovery.dir/bench_tswitch_recovery.cpp.o.d"
  "bench_tswitch_recovery"
  "bench_tswitch_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tswitch_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
