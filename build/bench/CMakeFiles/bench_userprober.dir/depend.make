# Empty dependencies file for bench_userprober.
# This may be replaced when dependencies are built.
