file(REMOVE_RECURSE
  "CMakeFiles/bench_userprober.dir/bench_userprober.cpp.o"
  "CMakeFiles/bench_userprober.dir/bench_userprober.cpp.o.d"
  "bench_userprober"
  "bench_userprober.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_userprober.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
