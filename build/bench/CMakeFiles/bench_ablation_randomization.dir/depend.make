# Empty dependencies file for bench_ablation_randomization.
# This may be replaced when dependencies are built.
