# Empty dependencies file for bench_fig4_threshold_stability.
# This may be replaced when dependencies are built.
