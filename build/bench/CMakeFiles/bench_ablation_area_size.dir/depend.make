# Empty dependencies file for bench_ablation_area_size.
# This may be replaced when dependencies are built.
