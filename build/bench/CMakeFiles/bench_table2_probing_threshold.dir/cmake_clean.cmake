file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_probing_threshold.dir/bench_table2_probing_threshold.cpp.o"
  "CMakeFiles/bench_table2_probing_threshold.dir/bench_table2_probing_threshold.cpp.o.d"
  "bench_table2_probing_threshold"
  "bench_table2_probing_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_probing_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
