# Empty compiler generated dependencies file for bench_table2_probing_threshold.
# This may be replaced when dependencies are built.
