file(REMOVE_RECURSE
  "CMakeFiles/bench_race_analysis.dir/bench_race_analysis.cpp.o"
  "CMakeFiles/bench_race_analysis.dir/bench_race_analysis.cpp.o.d"
  "bench_race_analysis"
  "bench_race_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_race_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
