file(REMOVE_RECURSE
  "CMakeFiles/os_run_queue_test.dir/os/run_queue_test.cpp.o"
  "CMakeFiles/os_run_queue_test.dir/os/run_queue_test.cpp.o.d"
  "os_run_queue_test"
  "os_run_queue_test.pdb"
  "os_run_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_run_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
