# Empty compiler generated dependencies file for os_run_queue_test.
# This may be replaced when dependencies are built.
