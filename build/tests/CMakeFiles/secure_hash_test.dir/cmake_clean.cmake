file(REMOVE_RECURSE
  "CMakeFiles/secure_hash_test.dir/secure/hash_test.cpp.o"
  "CMakeFiles/secure_hash_test.dir/secure/hash_test.cpp.o.d"
  "secure_hash_test"
  "secure_hash_test.pdb"
  "secure_hash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_hash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
