# Empty compiler generated dependencies file for secure_hash_test.
# This may be replaced when dependencies are built.
