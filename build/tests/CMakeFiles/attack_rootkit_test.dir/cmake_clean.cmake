file(REMOVE_RECURSE
  "CMakeFiles/attack_rootkit_test.dir/attack/rootkit_test.cpp.o"
  "CMakeFiles/attack_rootkit_test.dir/attack/rootkit_test.cpp.o.d"
  "attack_rootkit_test"
  "attack_rootkit_test.pdb"
  "attack_rootkit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_rootkit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
