file(REMOVE_RECURSE
  "CMakeFiles/attack_threshold_sampler_test.dir/attack/threshold_sampler_test.cpp.o"
  "CMakeFiles/attack_threshold_sampler_test.dir/attack/threshold_sampler_test.cpp.o.d"
  "attack_threshold_sampler_test"
  "attack_threshold_sampler_test.pdb"
  "attack_threshold_sampler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_threshold_sampler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
