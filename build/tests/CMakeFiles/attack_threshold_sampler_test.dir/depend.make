# Empty dependencies file for attack_threshold_sampler_test.
# This may be replaced when dependencies are built.
