# Empty compiler generated dependencies file for hw_memory_fuzz_test.
# This may be replaced when dependencies are built.
