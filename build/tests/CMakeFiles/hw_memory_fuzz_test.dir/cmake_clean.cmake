file(REMOVE_RECURSE
  "CMakeFiles/hw_memory_fuzz_test.dir/hw/memory_fuzz_test.cpp.o"
  "CMakeFiles/hw_memory_fuzz_test.dir/hw/memory_fuzz_test.cpp.o.d"
  "hw_memory_fuzz_test"
  "hw_memory_fuzz_test.pdb"
  "hw_memory_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_memory_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
