
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/stats_test.cpp" "tests/CMakeFiles/sim_stats_test.dir/sim/stats_test.cpp.o" "gcc" "tests/CMakeFiles/sim_stats_test.dir/sim/stats_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenario/CMakeFiles/satin_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/satin_core.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/satin_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/satin_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/secure/CMakeFiles/satin_secure.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/satin_os.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/satin_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/satin_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
