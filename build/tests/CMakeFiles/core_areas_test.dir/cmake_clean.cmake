file(REMOVE_RECURSE
  "CMakeFiles/core_areas_test.dir/core/areas_test.cpp.o"
  "CMakeFiles/core_areas_test.dir/core/areas_test.cpp.o.d"
  "core_areas_test"
  "core_areas_test.pdb"
  "core_areas_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_areas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
