# Empty dependencies file for core_areas_test.
# This may be replaced when dependencies are built.
