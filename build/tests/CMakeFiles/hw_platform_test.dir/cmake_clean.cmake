file(REMOVE_RECURSE
  "CMakeFiles/hw_platform_test.dir/hw/platform_test.cpp.o"
  "CMakeFiles/hw_platform_test.dir/hw/platform_test.cpp.o.d"
  "hw_platform_test"
  "hw_platform_test.pdb"
  "hw_platform_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_platform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
