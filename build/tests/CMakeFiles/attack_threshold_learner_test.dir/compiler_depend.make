# Empty compiler generated dependencies file for attack_threshold_learner_test.
# This may be replaced when dependencies are built.
