file(REMOVE_RECURSE
  "CMakeFiles/integration_seed_sweep_test.dir/integration/seed_sweep_test.cpp.o"
  "CMakeFiles/integration_seed_sweep_test.dir/integration/seed_sweep_test.cpp.o.d"
  "integration_seed_sweep_test"
  "integration_seed_sweep_test.pdb"
  "integration_seed_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_seed_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
