# Empty compiler generated dependencies file for integration_seed_sweep_test.
# This may be replaced when dependencies are built.
