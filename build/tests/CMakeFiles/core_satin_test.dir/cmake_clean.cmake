file(REMOVE_RECURSE
  "CMakeFiles/core_satin_test.dir/core/satin_test.cpp.o"
  "CMakeFiles/core_satin_test.dir/core/satin_test.cpp.o.d"
  "core_satin_test"
  "core_satin_test.pdb"
  "core_satin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_satin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
