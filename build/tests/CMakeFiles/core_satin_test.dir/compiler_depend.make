# Empty compiler generated dependencies file for core_satin_test.
# This may be replaced when dependencies are built.
