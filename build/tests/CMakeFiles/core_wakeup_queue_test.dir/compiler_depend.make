# Empty compiler generated dependencies file for core_wakeup_queue_test.
# This may be replaced when dependencies are built.
