file(REMOVE_RECURSE
  "CMakeFiles/core_integrity_checker_test.dir/core/integrity_checker_test.cpp.o"
  "CMakeFiles/core_integrity_checker_test.dir/core/integrity_checker_test.cpp.o.d"
  "core_integrity_checker_test"
  "core_integrity_checker_test.pdb"
  "core_integrity_checker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_integrity_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
