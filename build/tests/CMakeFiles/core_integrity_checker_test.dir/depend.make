# Empty dependencies file for core_integrity_checker_test.
# This may be replaced when dependencies are built.
