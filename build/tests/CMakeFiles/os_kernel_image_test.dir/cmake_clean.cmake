file(REMOVE_RECURSE
  "CMakeFiles/os_kernel_image_test.dir/os/kernel_image_test.cpp.o"
  "CMakeFiles/os_kernel_image_test.dir/os/kernel_image_test.cpp.o.d"
  "os_kernel_image_test"
  "os_kernel_image_test.pdb"
  "os_kernel_image_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_kernel_image_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
