# Empty compiler generated dependencies file for os_kernel_image_test.
# This may be replaced when dependencies are built.
