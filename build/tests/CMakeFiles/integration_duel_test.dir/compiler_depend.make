# Empty compiler generated dependencies file for integration_duel_test.
# This may be replaced when dependencies are built.
