file(REMOVE_RECURSE
  "CMakeFiles/integration_duel_test.dir/integration/duel_test.cpp.o"
  "CMakeFiles/integration_duel_test.dir/integration/duel_test.cpp.o.d"
  "integration_duel_test"
  "integration_duel_test.pdb"
  "integration_duel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_duel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
