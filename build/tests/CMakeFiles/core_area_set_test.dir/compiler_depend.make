# Empty compiler generated dependencies file for core_area_set_test.
# This may be replaced when dependencies are built.
