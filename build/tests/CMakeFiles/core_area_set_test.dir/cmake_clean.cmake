file(REMOVE_RECURSE
  "CMakeFiles/core_area_set_test.dir/core/area_set_test.cpp.o"
  "CMakeFiles/core_area_set_test.dir/core/area_set_test.cpp.o.d"
  "core_area_set_test"
  "core_area_set_test.pdb"
  "core_area_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_area_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
