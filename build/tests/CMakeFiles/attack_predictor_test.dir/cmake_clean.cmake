file(REMOVE_RECURSE
  "CMakeFiles/attack_predictor_test.dir/attack/predictor_test.cpp.o"
  "CMakeFiles/attack_predictor_test.dir/attack/predictor_test.cpp.o.d"
  "attack_predictor_test"
  "attack_predictor_test.pdb"
  "attack_predictor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_predictor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
