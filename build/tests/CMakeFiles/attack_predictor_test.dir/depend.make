# Empty dependencies file for attack_predictor_test.
# This may be replaced when dependencies are built.
