# Empty dependencies file for secure_introspect_test.
# This may be replaced when dependencies are built.
