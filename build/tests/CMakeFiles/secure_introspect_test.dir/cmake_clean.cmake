file(REMOVE_RECURSE
  "CMakeFiles/secure_introspect_test.dir/secure/introspect_test.cpp.o"
  "CMakeFiles/secure_introspect_test.dir/secure/introspect_test.cpp.o.d"
  "secure_introspect_test"
  "secure_introspect_test.pdb"
  "secure_introspect_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_introspect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
