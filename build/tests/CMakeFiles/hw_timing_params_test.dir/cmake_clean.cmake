file(REMOVE_RECURSE
  "CMakeFiles/hw_timing_params_test.dir/hw/timing_params_test.cpp.o"
  "CMakeFiles/hw_timing_params_test.dir/hw/timing_params_test.cpp.o.d"
  "hw_timing_params_test"
  "hw_timing_params_test.pdb"
  "hw_timing_params_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_timing_params_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
