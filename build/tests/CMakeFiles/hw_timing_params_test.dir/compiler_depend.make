# Empty compiler generated dependencies file for hw_timing_params_test.
# This may be replaced when dependencies are built.
