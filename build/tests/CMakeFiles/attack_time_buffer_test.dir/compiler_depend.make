# Empty compiler generated dependencies file for attack_time_buffer_test.
# This may be replaced when dependencies are built.
