file(REMOVE_RECURSE
  "CMakeFiles/attack_time_buffer_test.dir/attack/time_buffer_test.cpp.o"
  "CMakeFiles/attack_time_buffer_test.dir/attack/time_buffer_test.cpp.o.d"
  "attack_time_buffer_test"
  "attack_time_buffer_test.pdb"
  "attack_time_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_time_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
