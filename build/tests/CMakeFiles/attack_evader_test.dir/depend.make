# Empty dependencies file for attack_evader_test.
# This may be replaced when dependencies are built.
