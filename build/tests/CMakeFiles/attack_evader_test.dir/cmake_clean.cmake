file(REMOVE_RECURSE
  "CMakeFiles/attack_evader_test.dir/attack/evader_test.cpp.o"
  "CMakeFiles/attack_evader_test.dir/attack/evader_test.cpp.o.d"
  "attack_evader_test"
  "attack_evader_test.pdb"
  "attack_evader_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_evader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
