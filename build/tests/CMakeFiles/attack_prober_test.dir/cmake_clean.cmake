file(REMOVE_RECURSE
  "CMakeFiles/attack_prober_test.dir/attack/prober_test.cpp.o"
  "CMakeFiles/attack_prober_test.dir/attack/prober_test.cpp.o.d"
  "attack_prober_test"
  "attack_prober_test.pdb"
  "attack_prober_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_prober_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
