# Empty dependencies file for attack_prober_test.
# This may be replaced when dependencies are built.
