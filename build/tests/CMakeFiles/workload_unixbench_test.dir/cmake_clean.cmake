file(REMOVE_RECURSE
  "CMakeFiles/workload_unixbench_test.dir/workload/unixbench_test.cpp.o"
  "CMakeFiles/workload_unixbench_test.dir/workload/unixbench_test.cpp.o.d"
  "workload_unixbench_test"
  "workload_unixbench_test.pdb"
  "workload_unixbench_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_unixbench_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
