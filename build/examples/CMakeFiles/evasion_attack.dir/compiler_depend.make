# Empty compiler generated dependencies file for evasion_attack.
# This may be replaced when dependencies are built.
