file(REMOVE_RECURSE
  "CMakeFiles/evasion_attack.dir/evasion_attack.cpp.o"
  "CMakeFiles/evasion_attack.dir/evasion_attack.cpp.o.d"
  "evasion_attack"
  "evasion_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evasion_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
