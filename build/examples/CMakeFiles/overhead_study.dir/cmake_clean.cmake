file(REMOVE_RECURSE
  "CMakeFiles/overhead_study.dir/overhead_study.cpp.o"
  "CMakeFiles/overhead_study.dir/overhead_study.cpp.o.d"
  "overhead_study"
  "overhead_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
