# Empty dependencies file for satin_defense.
# This may be replaced when dependencies are built.
