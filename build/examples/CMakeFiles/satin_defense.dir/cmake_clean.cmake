file(REMOVE_RECURSE
  "CMakeFiles/satin_defense.dir/satin_defense.cpp.o"
  "CMakeFiles/satin_defense.dir/satin_defense.cpp.o.d"
  "satin_defense"
  "satin_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satin_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
