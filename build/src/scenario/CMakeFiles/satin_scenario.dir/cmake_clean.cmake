file(REMOVE_RECURSE
  "CMakeFiles/satin_scenario.dir/experiments.cpp.o"
  "CMakeFiles/satin_scenario.dir/experiments.cpp.o.d"
  "CMakeFiles/satin_scenario.dir/scenario.cpp.o"
  "CMakeFiles/satin_scenario.dir/scenario.cpp.o.d"
  "libsatin_scenario.a"
  "libsatin_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satin_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
