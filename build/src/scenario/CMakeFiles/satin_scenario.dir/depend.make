# Empty dependencies file for satin_scenario.
# This may be replaced when dependencies are built.
