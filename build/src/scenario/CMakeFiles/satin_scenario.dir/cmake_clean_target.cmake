file(REMOVE_RECURSE
  "libsatin_scenario.a"
)
