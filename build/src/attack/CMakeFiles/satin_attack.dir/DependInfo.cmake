
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/evader.cpp" "src/attack/CMakeFiles/satin_attack.dir/evader.cpp.o" "gcc" "src/attack/CMakeFiles/satin_attack.dir/evader.cpp.o.d"
  "/root/repo/src/attack/predictor.cpp" "src/attack/CMakeFiles/satin_attack.dir/predictor.cpp.o" "gcc" "src/attack/CMakeFiles/satin_attack.dir/predictor.cpp.o.d"
  "/root/repo/src/attack/prober.cpp" "src/attack/CMakeFiles/satin_attack.dir/prober.cpp.o" "gcc" "src/attack/CMakeFiles/satin_attack.dir/prober.cpp.o.d"
  "/root/repo/src/attack/rootkit.cpp" "src/attack/CMakeFiles/satin_attack.dir/rootkit.cpp.o" "gcc" "src/attack/CMakeFiles/satin_attack.dir/rootkit.cpp.o.d"
  "/root/repo/src/attack/threshold_learner.cpp" "src/attack/CMakeFiles/satin_attack.dir/threshold_learner.cpp.o" "gcc" "src/attack/CMakeFiles/satin_attack.dir/threshold_learner.cpp.o.d"
  "/root/repo/src/attack/threshold_sampler.cpp" "src/attack/CMakeFiles/satin_attack.dir/threshold_sampler.cpp.o" "gcc" "src/attack/CMakeFiles/satin_attack.dir/threshold_sampler.cpp.o.d"
  "/root/repo/src/attack/time_buffer.cpp" "src/attack/CMakeFiles/satin_attack.dir/time_buffer.cpp.o" "gcc" "src/attack/CMakeFiles/satin_attack.dir/time_buffer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/os/CMakeFiles/satin_os.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/satin_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/satin_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
