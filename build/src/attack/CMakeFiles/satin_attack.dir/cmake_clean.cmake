file(REMOVE_RECURSE
  "CMakeFiles/satin_attack.dir/evader.cpp.o"
  "CMakeFiles/satin_attack.dir/evader.cpp.o.d"
  "CMakeFiles/satin_attack.dir/predictor.cpp.o"
  "CMakeFiles/satin_attack.dir/predictor.cpp.o.d"
  "CMakeFiles/satin_attack.dir/prober.cpp.o"
  "CMakeFiles/satin_attack.dir/prober.cpp.o.d"
  "CMakeFiles/satin_attack.dir/rootkit.cpp.o"
  "CMakeFiles/satin_attack.dir/rootkit.cpp.o.d"
  "CMakeFiles/satin_attack.dir/threshold_learner.cpp.o"
  "CMakeFiles/satin_attack.dir/threshold_learner.cpp.o.d"
  "CMakeFiles/satin_attack.dir/threshold_sampler.cpp.o"
  "CMakeFiles/satin_attack.dir/threshold_sampler.cpp.o.d"
  "CMakeFiles/satin_attack.dir/time_buffer.cpp.o"
  "CMakeFiles/satin_attack.dir/time_buffer.cpp.o.d"
  "libsatin_attack.a"
  "libsatin_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satin_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
