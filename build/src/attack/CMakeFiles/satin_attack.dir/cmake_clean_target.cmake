file(REMOVE_RECURSE
  "libsatin_attack.a"
)
