# Empty dependencies file for satin_attack.
# This may be replaced when dependencies are built.
