file(REMOVE_RECURSE
  "CMakeFiles/satin_os.dir/kernel_image.cpp.o"
  "CMakeFiles/satin_os.dir/kernel_image.cpp.o.d"
  "CMakeFiles/satin_os.dir/rich_os.cpp.o"
  "CMakeFiles/satin_os.dir/rich_os.cpp.o.d"
  "CMakeFiles/satin_os.dir/run_queue.cpp.o"
  "CMakeFiles/satin_os.dir/run_queue.cpp.o.d"
  "CMakeFiles/satin_os.dir/system_map.cpp.o"
  "CMakeFiles/satin_os.dir/system_map.cpp.o.d"
  "libsatin_os.a"
  "libsatin_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satin_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
