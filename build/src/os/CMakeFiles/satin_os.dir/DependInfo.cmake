
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/kernel_image.cpp" "src/os/CMakeFiles/satin_os.dir/kernel_image.cpp.o" "gcc" "src/os/CMakeFiles/satin_os.dir/kernel_image.cpp.o.d"
  "/root/repo/src/os/rich_os.cpp" "src/os/CMakeFiles/satin_os.dir/rich_os.cpp.o" "gcc" "src/os/CMakeFiles/satin_os.dir/rich_os.cpp.o.d"
  "/root/repo/src/os/run_queue.cpp" "src/os/CMakeFiles/satin_os.dir/run_queue.cpp.o" "gcc" "src/os/CMakeFiles/satin_os.dir/run_queue.cpp.o.d"
  "/root/repo/src/os/system_map.cpp" "src/os/CMakeFiles/satin_os.dir/system_map.cpp.o" "gcc" "src/os/CMakeFiles/satin_os.dir/system_map.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/satin_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/satin_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
