# Empty compiler generated dependencies file for satin_os.
# This may be replaced when dependencies are built.
