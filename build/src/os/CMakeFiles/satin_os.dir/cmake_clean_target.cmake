file(REMOVE_RECURSE
  "libsatin_os.a"
)
