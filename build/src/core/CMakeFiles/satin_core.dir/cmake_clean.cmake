file(REMOVE_RECURSE
  "CMakeFiles/satin_core.dir/area_set.cpp.o"
  "CMakeFiles/satin_core.dir/area_set.cpp.o.d"
  "CMakeFiles/satin_core.dir/areas.cpp.o"
  "CMakeFiles/satin_core.dir/areas.cpp.o.d"
  "CMakeFiles/satin_core.dir/integrity_checker.cpp.o"
  "CMakeFiles/satin_core.dir/integrity_checker.cpp.o.d"
  "CMakeFiles/satin_core.dir/race_model.cpp.o"
  "CMakeFiles/satin_core.dir/race_model.cpp.o.d"
  "CMakeFiles/satin_core.dir/satin.cpp.o"
  "CMakeFiles/satin_core.dir/satin.cpp.o.d"
  "CMakeFiles/satin_core.dir/wakeup_queue.cpp.o"
  "CMakeFiles/satin_core.dir/wakeup_queue.cpp.o.d"
  "libsatin_core.a"
  "libsatin_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satin_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
