# Empty dependencies file for satin_core.
# This may be replaced when dependencies are built.
