
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/area_set.cpp" "src/core/CMakeFiles/satin_core.dir/area_set.cpp.o" "gcc" "src/core/CMakeFiles/satin_core.dir/area_set.cpp.o.d"
  "/root/repo/src/core/areas.cpp" "src/core/CMakeFiles/satin_core.dir/areas.cpp.o" "gcc" "src/core/CMakeFiles/satin_core.dir/areas.cpp.o.d"
  "/root/repo/src/core/integrity_checker.cpp" "src/core/CMakeFiles/satin_core.dir/integrity_checker.cpp.o" "gcc" "src/core/CMakeFiles/satin_core.dir/integrity_checker.cpp.o.d"
  "/root/repo/src/core/race_model.cpp" "src/core/CMakeFiles/satin_core.dir/race_model.cpp.o" "gcc" "src/core/CMakeFiles/satin_core.dir/race_model.cpp.o.d"
  "/root/repo/src/core/satin.cpp" "src/core/CMakeFiles/satin_core.dir/satin.cpp.o" "gcc" "src/core/CMakeFiles/satin_core.dir/satin.cpp.o.d"
  "/root/repo/src/core/wakeup_queue.cpp" "src/core/CMakeFiles/satin_core.dir/wakeup_queue.cpp.o" "gcc" "src/core/CMakeFiles/satin_core.dir/wakeup_queue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/secure/CMakeFiles/satin_secure.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/satin_os.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/satin_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/satin_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
