file(REMOVE_RECURSE
  "libsatin_core.a"
)
