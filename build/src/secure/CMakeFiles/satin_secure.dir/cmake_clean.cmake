file(REMOVE_RECURSE
  "CMakeFiles/satin_secure.dir/authorized_store.cpp.o"
  "CMakeFiles/satin_secure.dir/authorized_store.cpp.o.d"
  "CMakeFiles/satin_secure.dir/hash.cpp.o"
  "CMakeFiles/satin_secure.dir/hash.cpp.o.d"
  "CMakeFiles/satin_secure.dir/introspect.cpp.o"
  "CMakeFiles/satin_secure.dir/introspect.cpp.o.d"
  "CMakeFiles/satin_secure.dir/tsp.cpp.o"
  "CMakeFiles/satin_secure.dir/tsp.cpp.o.d"
  "libsatin_secure.a"
  "libsatin_secure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satin_secure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
