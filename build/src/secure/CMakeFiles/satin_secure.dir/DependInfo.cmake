
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/secure/authorized_store.cpp" "src/secure/CMakeFiles/satin_secure.dir/authorized_store.cpp.o" "gcc" "src/secure/CMakeFiles/satin_secure.dir/authorized_store.cpp.o.d"
  "/root/repo/src/secure/hash.cpp" "src/secure/CMakeFiles/satin_secure.dir/hash.cpp.o" "gcc" "src/secure/CMakeFiles/satin_secure.dir/hash.cpp.o.d"
  "/root/repo/src/secure/introspect.cpp" "src/secure/CMakeFiles/satin_secure.dir/introspect.cpp.o" "gcc" "src/secure/CMakeFiles/satin_secure.dir/introspect.cpp.o.d"
  "/root/repo/src/secure/tsp.cpp" "src/secure/CMakeFiles/satin_secure.dir/tsp.cpp.o" "gcc" "src/secure/CMakeFiles/satin_secure.dir/tsp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/satin_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/satin_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
