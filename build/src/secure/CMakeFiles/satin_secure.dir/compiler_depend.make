# Empty compiler generated dependencies file for satin_secure.
# This may be replaced when dependencies are built.
