file(REMOVE_RECURSE
  "libsatin_secure.a"
)
