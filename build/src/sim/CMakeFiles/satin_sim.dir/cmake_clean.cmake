file(REMOVE_RECURSE
  "CMakeFiles/satin_sim.dir/engine.cpp.o"
  "CMakeFiles/satin_sim.dir/engine.cpp.o.d"
  "CMakeFiles/satin_sim.dir/log.cpp.o"
  "CMakeFiles/satin_sim.dir/log.cpp.o.d"
  "CMakeFiles/satin_sim.dir/rng.cpp.o"
  "CMakeFiles/satin_sim.dir/rng.cpp.o.d"
  "CMakeFiles/satin_sim.dir/stats.cpp.o"
  "CMakeFiles/satin_sim.dir/stats.cpp.o.d"
  "CMakeFiles/satin_sim.dir/time.cpp.o"
  "CMakeFiles/satin_sim.dir/time.cpp.o.d"
  "libsatin_sim.a"
  "libsatin_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satin_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
