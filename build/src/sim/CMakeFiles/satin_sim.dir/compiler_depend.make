# Empty compiler generated dependencies file for satin_sim.
# This may be replaced when dependencies are built.
