file(REMOVE_RECURSE
  "libsatin_sim.a"
)
