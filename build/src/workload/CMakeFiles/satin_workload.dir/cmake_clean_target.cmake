file(REMOVE_RECURSE
  "libsatin_workload.a"
)
