# Empty compiler generated dependencies file for satin_workload.
# This may be replaced when dependencies are built.
