file(REMOVE_RECURSE
  "CMakeFiles/satin_workload.dir/unixbench.cpp.o"
  "CMakeFiles/satin_workload.dir/unixbench.cpp.o.d"
  "libsatin_workload.a"
  "libsatin_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satin_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
