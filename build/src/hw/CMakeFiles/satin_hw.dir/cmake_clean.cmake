file(REMOVE_RECURSE
  "CMakeFiles/satin_hw.dir/core.cpp.o"
  "CMakeFiles/satin_hw.dir/core.cpp.o.d"
  "CMakeFiles/satin_hw.dir/generic_timer.cpp.o"
  "CMakeFiles/satin_hw.dir/generic_timer.cpp.o.d"
  "CMakeFiles/satin_hw.dir/interrupt_controller.cpp.o"
  "CMakeFiles/satin_hw.dir/interrupt_controller.cpp.o.d"
  "CMakeFiles/satin_hw.dir/memory.cpp.o"
  "CMakeFiles/satin_hw.dir/memory.cpp.o.d"
  "CMakeFiles/satin_hw.dir/platform.cpp.o"
  "CMakeFiles/satin_hw.dir/platform.cpp.o.d"
  "CMakeFiles/satin_hw.dir/secure_monitor.cpp.o"
  "CMakeFiles/satin_hw.dir/secure_monitor.cpp.o.d"
  "CMakeFiles/satin_hw.dir/timing_params.cpp.o"
  "CMakeFiles/satin_hw.dir/timing_params.cpp.o.d"
  "CMakeFiles/satin_hw.dir/types.cpp.o"
  "CMakeFiles/satin_hw.dir/types.cpp.o.d"
  "libsatin_hw.a"
  "libsatin_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satin_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
