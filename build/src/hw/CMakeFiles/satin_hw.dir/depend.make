# Empty dependencies file for satin_hw.
# This may be replaced when dependencies are built.
