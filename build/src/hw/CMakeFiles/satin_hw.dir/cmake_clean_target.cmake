file(REMOVE_RECURSE
  "libsatin_hw.a"
)
