
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/core.cpp" "src/hw/CMakeFiles/satin_hw.dir/core.cpp.o" "gcc" "src/hw/CMakeFiles/satin_hw.dir/core.cpp.o.d"
  "/root/repo/src/hw/generic_timer.cpp" "src/hw/CMakeFiles/satin_hw.dir/generic_timer.cpp.o" "gcc" "src/hw/CMakeFiles/satin_hw.dir/generic_timer.cpp.o.d"
  "/root/repo/src/hw/interrupt_controller.cpp" "src/hw/CMakeFiles/satin_hw.dir/interrupt_controller.cpp.o" "gcc" "src/hw/CMakeFiles/satin_hw.dir/interrupt_controller.cpp.o.d"
  "/root/repo/src/hw/memory.cpp" "src/hw/CMakeFiles/satin_hw.dir/memory.cpp.o" "gcc" "src/hw/CMakeFiles/satin_hw.dir/memory.cpp.o.d"
  "/root/repo/src/hw/platform.cpp" "src/hw/CMakeFiles/satin_hw.dir/platform.cpp.o" "gcc" "src/hw/CMakeFiles/satin_hw.dir/platform.cpp.o.d"
  "/root/repo/src/hw/secure_monitor.cpp" "src/hw/CMakeFiles/satin_hw.dir/secure_monitor.cpp.o" "gcc" "src/hw/CMakeFiles/satin_hw.dir/secure_monitor.cpp.o.d"
  "/root/repo/src/hw/timing_params.cpp" "src/hw/CMakeFiles/satin_hw.dir/timing_params.cpp.o" "gcc" "src/hw/CMakeFiles/satin_hw.dir/timing_params.cpp.o.d"
  "/root/repo/src/hw/types.cpp" "src/hw/CMakeFiles/satin_hw.dir/types.cpp.o" "gcc" "src/hw/CMakeFiles/satin_hw.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/satin_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
