#include "attack/evader.h"

#include <gtest/gtest.h>

#include "scenario/scenario.h"

namespace satin::attack {
namespace {

using sim::Duration;
using sim::Time;

void schedule_stay(scenario::Scenario& s, hw::CoreId core, Time when,
                   Duration stay) {
  s.tsp().install_timer_service(
      [&s, stay](std::shared_ptr<hw::SecureSession> ss) {
        s.engine().schedule_after(stay, [ss] { ss->complete(); });
      });
  s.platform().timer().program_secure(core, when);
}

TEST(TzEvader, DeployInstallsRootkitAndProber) {
  scenario::Scenario s;
  TzEvader evader(s.os(), EvaderConfig{});
  EXPECT_FALSE(evader.armed());
  evader.deploy();
  EXPECT_TRUE(evader.armed());
  EXPECT_TRUE(evader.prober().deployed());
  EXPECT_THROW(evader.deploy(), std::logic_error);
}

TEST(TzEvader, HidesOnDetectionAndReArmsAfterClear) {
  scenario::Scenario s;
  TzEvader evader(s.os(), EvaderConfig{});
  evader.deploy();
  schedule_stay(s, 0, Time::from_sec(1), Duration::from_ms(80));
  // Mid-stay: evasion began.
  s.run_until(Time::from_sec(1) + Duration::from_ms(40));
  EXPECT_EQ(evader.evasions_started(), 1u);
  // Long after: trace recovered and re-armed.
  s.run_for(Duration::from_sec(1));
  EXPECT_EQ(evader.rearms(), 1u);
  EXPECT_TRUE(evader.armed());
}

TEST(TzEvader, TraceAbsentDuringLongIntrospection) {
  scenario::Scenario s;
  TzEvader evader(s.os(), EvaderConfig{});
  evader.deploy();
  const std::size_t off =
      s.kernel().syscall_entry_offset(os::kGettidSyscallNr);
  const auto benign = s.kernel().benign_syscall_entry(os::kGettidSyscallNr);
  schedule_stay(s, 0, Time::from_sec(1), Duration::from_ms(80));
  // 20 ms into the stay: detection (~2 ms) + recovery (~5-6 ms) are done;
  // all bytes are benign while the "introspection" is still running.
  s.run_until(Time::from_sec(1) + Duration::from_ms(20));
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(s.platform().memory().read(off + i),
              benign[static_cast<std::size_t>(i)]);
  }
}

TEST(TzEvader, SurvivesBackToBackStays) {
  scenario::Scenario s;
  TzEvader evader(s.os(), EvaderConfig{});
  evader.deploy();
  s.tsp().install_timer_service(
      [&s](std::shared_ptr<hw::SecureSession> ss) {
        s.engine().schedule_after(Duration::from_ms(10),
                                  [ss] { ss->complete(); });
      });
  for (int i = 0; i < 8; ++i) {
    s.platform().timer().program_secure(i % 6,
                                        s.now() + Duration::from_ms(100));
    s.run_for(Duration::from_ms(500));
  }
  EXPECT_EQ(evader.evasions_started(), 8u);
  EXPECT_EQ(evader.rearms(), 8u);
  EXPECT_TRUE(evader.armed());
}

TEST(TzEvader, ObserverSeesDetections) {
  scenario::Scenario s;
  TzEvader evader(s.os(), EvaderConfig{});
  int observed = 0;
  evader.set_detect_observer(
      [&](hw::CoreId core, Time, Duration) {
        EXPECT_EQ(core, 3);
        ++observed;
      });
  evader.deploy();
  schedule_stay(s, 3, Time::from_sec(1), Duration::from_ms(30));
  s.run_for(Duration::from_sec(2));
  EXPECT_EQ(observed, 1);
}

TEST(TzEvader, FixedCleanupCoreUsesItsSpeed) {
  scenario::Scenario s;
  EvaderConfig config;
  config.cleanup_core = 5;  // A57
  TzEvader evader(s.os(), config);
  evader.deploy();
  schedule_stay(s, 0, Time::from_sec(1), Duration::from_ms(50));
  s.run_for(Duration::from_sec(2));
  const double dur = evader.rootkit().last_recovery_duration().sec();
  EXPECT_GE(dur, 4.50e-3);
  EXPECT_LE(dur, 5.45e-3);  // A57 recovery spec
}

TEST(TzEvader, NoSecureActivityMeansNoEvasions) {
  scenario::Scenario s;
  TzEvader evader(s.os(), EvaderConfig{});
  evader.deploy();
  s.run_for(Duration::from_sec(10));
  EXPECT_EQ(evader.evasions_started(), 0u);
  EXPECT_TRUE(evader.armed());
  EXPECT_EQ(evader.detections_observed(), 0u);
}

}  // namespace
}  // namespace satin::attack
