// The probers against real secure-world activity on the full stack.
#include "attack/prober.h"

#include <gtest/gtest.h>

#include "scenario/scenario.h"

namespace satin::attack {
namespace {

using sim::Duration;
using sim::Time;

// Holds `core` in the secure world for `stay` starting at `when`.
void schedule_stay(scenario::Scenario& s, hw::CoreId core, Time when,
                   Duration stay) {
  s.tsp().install_timer_service(
      [&s, stay](std::shared_ptr<hw::SecureSession> ss) {
        s.engine().schedule_after(stay, [ss] { ss->complete(); });
      });
  s.platform().timer().program_secure(core, when);
}

TEST(KProber, RtProberDetectsSecureStayWithinTnsDelay) {
  scenario::Scenario s;
  KProber prober(s.os(), KProberConfig{});
  std::vector<std::pair<hw::CoreId, Time>> detections;
  prober.set_on_detect([&](hw::CoreId core, Time when, Duration) {
    detections.emplace_back(core, when);
  });
  prober.deploy();
  schedule_stay(s, 2, Time::from_sec(1), Duration::from_ms(80));
  s.run_for(Duration::from_sec(2));
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_EQ(detections[0].first, 2);
  // Tns_delay ~ Tns_threshold (1.8e-3) +- wake phase and read delay,
  // plus Tns_sched; never slower than threshold + 2 sleeps.
  const double delay = (detections[0].second - Time::from_sec(1)).sec();
  EXPECT_GT(delay, 1.4e-3);
  EXPECT_LT(delay, 1.8e-3 + 2 * 2.0e-4 + 2.0e-4);
}

TEST(KProber, ClearsFlagAfterSecureExit) {
  scenario::Scenario s;
  KProber prober(s.os(), KProberConfig{});
  std::vector<Time> clears;
  prober.set_on_clear([&](hw::CoreId, Time when) { clears.push_back(when); });
  prober.deploy();
  schedule_stay(s, 1, Time::from_sec(1), Duration::from_ms(10));
  s.run_for(Duration::from_sec(2));
  ASSERT_EQ(clears.size(), 1u);
  // Cleared shortly after the ~10 ms stay ended.
  EXPECT_GT(clears[0].sec(), 1.010);
  EXPECT_LT(clears[0].sec(), 1.015);
  EXPECT_FALSE(prober.any_flagged());
}

TEST(KProber, QuietSystemHasNoFalsePositives) {
  scenario::Scenario s;
  KProber prober(s.os(), KProberConfig{});
  int detections = 0;
  prober.set_on_detect([&](hw::CoreId, Time, Duration) { ++detections; });
  prober.deploy();
  s.run_for(Duration::from_sec(20));
  EXPECT_EQ(detections, 0);
  EXPECT_GT(prober.rounds(), 100'000u);
  // The largest benign staleness stays under the configured 1.8e-3.
  EXPECT_LT(prober.max_benign_staleness_s(), 1.8e-3);
  EXPECT_GT(prober.max_benign_staleness_s(), 5e-5);
}

TEST(KProber, DetectsEveryStayInASeries) {
  scenario::Scenario s;
  KProber prober(s.os(), KProberConfig{});
  int detections = 0;
  prober.set_on_detect([&](hw::CoreId, Time, Duration) { ++detections; });
  prober.deploy();
  s.tsp().install_timer_service(
      [&s](std::shared_ptr<hw::SecureSession> ss) {
        s.engine().schedule_after(Duration::from_ms(5),
                                  [ss] { ss->complete(); });
      });
  for (int i = 0; i < 10; ++i) {
    s.platform().timer().program_secure(i % 6, s.now() + Duration::from_ms(50));
    s.run_for(Duration::from_ms(200));
  }
  EXPECT_EQ(detections, 10);
}

TEST(KProber, TimerInterruptModePlantsAndRestoresVectorTrace) {
  scenario::Scenario s;
  const std::size_t off = s.kernel().irq_vector_offset();
  const auto benign = s.kernel().benign_irq_vector();
  KProberConfig config;
  config.mode = ProbeMode::kTimerInterrupt;
  KProber prober(s.os(), config);
  prober.deploy();
  // The hijacked vector differs from the benign image — a detectable
  // trace in area 0.
  bool differs = false;
  for (int b = 0; b < 8; ++b) {
    if (s.platform().memory().read(off + static_cast<std::size_t>(b)) !=
        benign[static_cast<std::size_t>(b)]) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
  prober.retract();
  for (int b = 0; b < 8; ++b) {
    EXPECT_EQ(s.platform().memory().read(off + static_cast<std::size_t>(b)),
              benign[static_cast<std::size_t>(b)]);
  }
}

TEST(KProber, TimerInterruptModeDetectsViaTicks) {
  scenario::Scenario s;
  // KProber-I needs non-idle cores for HZ ticks (NO_HZ_IDLE).
  spawn_keepalive_spinners(s.os());
  KProberConfig config;
  config.mode = ProbeMode::kTimerInterrupt;
  // Tick staleness quantum is 1/HZ = 4 ms; use a threshold just above it.
  config.threshold_s = 6e-3;
  KProber prober(s.os(), config);
  int detections = 0;
  prober.set_on_detect([&](hw::CoreId core, Time, Duration) {
    EXPECT_EQ(core, 3);
    ++detections;
  });
  prober.deploy();
  schedule_stay(s, 3, Time::from_sec(1), Duration::from_ms(80));
  s.run_for(Duration::from_sec(2));
  EXPECT_EQ(detections, 1);
  EXPECT_GT(prober.rounds(), 1000u);
}

TEST(KProber, SingleCoreProbingWithObserver) {
  scenario::Scenario s;
  KProberConfig config;
  config.probed_cores = {4};
  config.observer_core = 0;
  KProber prober(s.os(), config);
  int detections = 0;
  prober.set_on_detect([&](hw::CoreId core, Time, Duration) {
    EXPECT_EQ(core, 4);
    ++detections;
  });
  prober.deploy();
  schedule_stay(s, 4, Time::from_sec(1), Duration::from_ms(50));
  s.run_for(Duration::from_sec(2));
  EXPECT_EQ(detections, 1);
}

TEST(KProber, DeployTwiceThrows) {
  scenario::Scenario s;
  KProber prober(s.os(), KProberConfig{});
  prober.deploy();
  EXPECT_THROW(prober.deploy(), std::logic_error);
}

TEST(KProber, UserLevelProberDetectsOnIdleSystem) {
  // §III-B1: the stealthy user-level prober works without any kernel
  // modification when the system is lightly loaded.
  scenario::Scenario s;
  KProberConfig config;
  config.mode = ProbeMode::kUserLevel;
  KProber prober(s.os(), config);
  std::vector<Time> detections;
  prober.set_on_detect(
      [&](hw::CoreId, Time when, Duration) { detections.push_back(when); });
  prober.deploy();
  schedule_stay(s, 5, Time::from_sec(1), Duration::from_ms(80));
  s.run_for(Duration::from_sec(2));
  ASSERT_EQ(detections.size(), 1u);
}

TEST(KProber, ModeNames) {
  EXPECT_STREQ(to_string(ProbeMode::kUserLevel), "user-level");
  EXPECT_STREQ(to_string(ProbeMode::kRtScheduler), "KProber-II(rt)");
  EXPECT_STREQ(to_string(ProbeMode::kTimerInterrupt), "KProber-I(timer)");
}

}  // namespace
}  // namespace satin::attack
