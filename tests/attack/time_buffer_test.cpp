#include "attack/time_buffer.h"

#include <gtest/gtest.h>

#include "sim/stats.h"

namespace satin::attack {
namespace {

using sim::Duration;
using sim::Time;

hw::CrossCoreDelayModel model() { return hw::CrossCoreDelayModel{}; }

TEST(SharedTimeBuffer, ReportAndReadBack) {
  const auto m = model();
  SharedTimeBuffer buf(6, m, sim::Rng(1), 30'000.0, 6);
  EXPECT_FALSE(buf.ever_reported(3));
  buf.report(3, Time::from_ms(5));
  EXPECT_TRUE(buf.ever_reported(3));
  EXPECT_EQ(buf.last_report(3), Time::from_ms(5));
  EXPECT_EQ(buf.reports(), 1u);
}

TEST(SharedTimeBuffer, StalenessGrowsForFrozenReporter) {
  const auto m = model();
  SharedTimeBuffer buf(6, m, sim::Rng(2), 30'000.0, 6);
  buf.report(0, Time::from_ms(10));
  const double near = buf.observed_staleness(0, Time::from_ms(10)).sec();
  const double far =
      buf.observed_staleness(0, Time::from_ms(10) + Duration::from_ms(5))
          .sec();
  EXPECT_GT(far, near + 4.5e-3);
}

TEST(SharedTimeBuffer, FreshReportStalenessIsSmall) {
  const auto m = model();
  SharedTimeBuffer buf(6, m, sim::Rng(3), 30'000.0, 6);
  // Read delay alone (no age): bounded by the benign ceiling.
  for (int i = 0; i < 20'000; ++i) {
    buf.report(1, Time::from_ms(1));
    const double s = buf.observed_staleness(1, Time::from_ms(1)).sec();
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, m.event_spike_cap_s + m.base_max_s);
  }
}

TEST(SharedTimeBuffer, SpikesOccurAtConvertedRate) {
  const auto m = model();
  // 30 kHz read rate, spike rate 0.16/s -> p ~ 5.3e-6 per read.
  SharedTimeBuffer buf(6, m, sim::Rng(4), 30'000.0, 6);
  buf.report(0, Time::zero());
  const int reads = 4'000'000;
  for (int i = 0; i < reads; ++i) {
    (void)buf.observed_staleness(0, Time::zero());
  }
  const double expected = m.spike_rate_per_s / 30'000.0 * reads;  // ~21
  EXPECT_GT(buf.spiked_reads(), expected * 0.4);
  EXPECT_LT(buf.spiked_reads(), expected * 2.2);
}

TEST(SharedTimeBuffer, BenignStalenessNeverExceedsEvaderThreshold) {
  // The paper configures the evader at 1.8e-3 s and observes zero false
  // positives; the model must respect that by construction.
  const auto m = model();
  SharedTimeBuffer buf(6, m, sim::Rng(5), 100.0, 6);  // high spike prob
  sim::Accumulator acc;
  for (int i = 0; i < 200'000; ++i) {
    buf.report(2, Time::from_ms(100));
    // Benign wake phase is at most Tsleep (2e-4 s) plus small jitter.
    const Time read_at = Time::from_ms(100) + Duration::from_us(200);
    acc.add(buf.observed_staleness(2, read_at).sec());
  }
  EXPECT_GT(buf.spiked_reads(), 150u);  // ~320 expected at p = 1.6e-3
  EXPECT_LE(acc.max(), 1.8e-3);
}

TEST(SharedTimeBuffer, SingleCoreProbingScalesDelaysDown) {
  const auto m = model();
  SharedTimeBuffer all(6, m, sim::Rng(6), 30'000.0, 6);
  SharedTimeBuffer one(6, m, sim::Rng(6), 30'000.0, 1);
  sim::Accumulator acc_all, acc_one;
  for (int i = 0; i < 20'000; ++i) {
    all.report(0, Time::zero());
    one.report(0, Time::zero());
    acc_all.add(all.observed_staleness(0, Time::zero()).sec());
    acc_one.add(one.observed_staleness(0, Time::zero()).sec());
  }
  // §IV-B2: single-core probing thresholds ~1/4 of all-core.
  EXPECT_NEAR(acc_one.mean() / acc_all.mean(), 0.25, 0.05);
}

TEST(SharedTimeBuffer, BatchedModeIsBitIdenticalToScalar) {
  // DrawMode is a runtime knob: a batched buffer must produce the exact
  // staleness sequence (and spike decisions) of a scalar one seeded the
  // same way — this is the foundation of the --batch=K identity gate.
  const auto m = model();
  SharedTimeBuffer scalar(6, m, sim::Rng(9), 100.0, 6,
                          sim::DrawMode::kScalar);
  SharedTimeBuffer batched(6, m, sim::Rng(9), 100.0, 6,
                           sim::DrawMode::kBatched);
  scalar.report(0, Time::zero());
  batched.report(0, Time::zero());
  for (int i = 0; i < 50'000; ++i) {
    const Time at = Time::from_us(i);
    ASSERT_EQ(scalar.observed_staleness(0, at).ps(),
              batched.observed_staleness(0, at).ps())
        << "read " << i;
  }
  EXPECT_EQ(scalar.spiked_reads(), batched.spiked_reads());
  EXPECT_GT(scalar.spiked_reads(), 0u);  // the rare path was exercised
}

TEST(SharedTimeBuffer, Validation) {
  const auto m = model();
  EXPECT_THROW(SharedTimeBuffer(0, m, sim::Rng(1), 1000.0, 6),
               std::invalid_argument);
  EXPECT_THROW(SharedTimeBuffer(6, m, sim::Rng(1), 0.0, 6),
               std::invalid_argument);
}

}  // namespace
}  // namespace satin::attack
