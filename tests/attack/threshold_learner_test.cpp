// §VII-B: learning Tns_threshold on the victim device.
#include "attack/threshold_learner.h"

#include <gtest/gtest.h>

#include "core/satin.h"
#include "scenario/scenario.h"

namespace satin::attack {
namespace {

using sim::Duration;

TEST(RampFilter, BenignSawtoothIsKeptWhole) {
  RampFilter filter(1);
  // Staleness ages by ~40 us per probe and resets each report — a benign
  // sawtooth whose PEAK must survive into max_benign.
  for (int cycle = 0; cycle < 100; ++cycle) {
    for (int k = 0; k < 5; ++k) {
      filter.add(0, 1.0e-4 + 4.0e-5 * k);
    }
  }
  filter.finish();
  EXPECT_EQ(filter.excluded(), 0u);
  EXPECT_DOUBLE_EQ(filter.max_benign_s(), 1.0e-4 + 4.0e-5 * 4);
}

TEST(RampFilter, StallRampIsExcludedPastItsHead) {
  RampFilter filter(1);
  filter.add(0, 1.2e-4);
  // A frozen core: staleness climbs 2e-4 per probe up to 3 ms.
  for (int k = 1; k <= 15; ++k) filter.add(0, 1.2e-4 + 2.0e-4 * k);
  filter.add(0, 1.3e-4);  // the core reported again
  filter.finish();
  EXPECT_GT(filter.excluded(), 10u);
  EXPECT_DOUBLE_EQ(filter.max_observed_s(), 1.2e-4 + 3.0e-3);
  EXPECT_LE(filter.max_benign_s(), 2.0e-4);
}

TEST(RampFilter, IsolatedSpikeIsBenign) {
  RampFilter filter(1);
  filter.add(0, 1.0e-4);
  filter.add(0, 1.5e-3);  // visibility spike — instant, no ramp follows
  filter.add(0, 1.1e-4);
  filter.finish();
  EXPECT_EQ(filter.excluded(), 0u);
  EXPECT_DOUBLE_EQ(filter.max_benign_s(), 1.5e-3);
}

TEST(RampFilter, TracksCoresIndependently) {
  RampFilter filter(2);
  // Core 0 stalls, core 1 stays benign; interleaved.
  for (int k = 0; k <= 15; ++k) {
    filter.add(0, 1.0e-4 + 2.0e-4 * k);
    filter.add(1, 1.0e-4 + (k % 2 == 0 ? 0.0 : 3.0e-5));
  }
  filter.finish();
  EXPECT_GT(filter.excluded(), 10u);
  EXPECT_LE(filter.max_benign_s(), 1.4e-4);
}

TEST(RampFilter, Validation) {
  EXPECT_THROW(RampFilter(0), std::invalid_argument);
  EXPECT_THROW(RampFilter(2, 0.0), std::invalid_argument);
}

TEST(ThresholdLearner, QuietVictimLearnsBenignCeiling) {
  scenario::Scenario s;
  ThresholdLearner learner(s.os());
  const auto learned = learner.learn(Duration::from_sec(8));
  EXPECT_GT(learned.samples, 100'000u);
  EXPECT_EQ(learned.excluded, 0u);
  EXPECT_GT(learned.recommended_s, 1e-4);
  // Never exceeds the benign ceiling the paper's evader uses.
  EXPECT_LE(learned.max_benign_s, 1.8e-3);
  EXPECT_LE(learned.recommended_s, 1.9e-3);
}

TEST(ThresholdLearner, ExcludesRealIntrospectionStalls) {
  // Learning while SATIN is live: the secure stalls (>= 2.9 ms area
  // scans) must be recognized as ramps and excluded, not absorbed into
  // the threshold.
  scenario::Scenario s;
  core::SatinConfig config;
  config.tp_s = 0.5;  // frequent rounds during the learning window
  core::Satin satin(s.platform(), s.kernel(), s.tsp(), config);
  satin.start();
  ThresholdLearner learner(s.os());
  const auto learned = learner.learn(Duration::from_sec(10));
  EXPECT_GT(learned.excluded, 50u);
  EXPECT_GT(learned.max_observed_s, 2.5e-3);  // saw the stalls...
  EXPECT_LE(learned.max_benign_s, 1.9e-3);    // ...but did not learn them
}

TEST(ThresholdLearner, LearnedThresholdDrivesAWorkingProber) {
  // End-to-end §VII-B: learn on the victim, then deploy KProber with the
  // learned threshold and detect real secure stays.
  scenario::Scenario s;
  ThresholdLearner learner(s.os());
  const auto learned = learner.learn(Duration::from_sec(5));

  KProberConfig config;
  config.threshold_s = learned.recommended_s;
  KProber prober(s.os(), config);
  int detections = 0;
  prober.set_on_detect(
      [&](hw::CoreId, sim::Time, sim::Duration) { ++detections; });
  prober.deploy();
  s.tsp().install_timer_service([&s](std::shared_ptr<hw::SecureSession> ss) {
    s.engine().schedule_after(Duration::from_ms(5), [ss] { ss->complete(); });
  });
  for (int i = 0; i < 5; ++i) {
    s.platform().timer().program_secure(i % 6,
                                        s.now() + Duration::from_ms(100));
    s.run_for(Duration::from_ms(500));
  }
  // Every stay noticed; a short learning window can leave the threshold
  // below the long-run benign ceiling, so the occasional extra (false)
  // flag is tolerated — that is the §VII-B trade-off.
  EXPECT_GE(detections, 5);
  EXPECT_LE(detections, 8);
}

TEST(ThresholdLearner, RejectsNonPositiveDuration) {
  scenario::Scenario s;
  ThresholdLearner learner(s.os());
  EXPECT_THROW(learner.learn(Duration::zero()), std::invalid_argument);
}

}  // namespace
}  // namespace satin::attack
