#include "attack/rootkit.h"

#include <gtest/gtest.h>

#include "os/system_map.h"
#include "scenario/scenario.h"

namespace satin::attack {
namespace {

using sim::Duration;

struct Fixture {
  Fixture() : rootkit(s.os(), sim::Rng(42)) { rootkit.add_gettid_trace(); }
  scenario::Scenario s;
  Rootkit rootkit;
};

TEST(Rootkit, GettidTraceIsEightBytesInArea14Rodata) {
  Fixture f;
  ASSERT_EQ(f.rootkit.traces().size(), 1u);
  const TraceSpec& t = f.rootkit.traces()[0];
  EXPECT_EQ(t.benign.size(), 8u);
  EXPECT_EQ(f.rootkit.trace_bytes(), 8u);
  EXPECT_EQ(t.offset,
            f.s.kernel().syscall_entry_offset(os::kGettidSyscallNr));
  // Every malicious byte differs from the benign one (§IV-A2: detection
  // hits on any of the 8 bytes).
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NE(t.benign[i], t.malicious[i]);
  }
}

TEST(Rootkit, InstallWritesMaliciousBytes) {
  Fixture f;
  const std::size_t off = f.rootkit.traces()[0].offset;
  f.rootkit.install();
  EXPECT_TRUE(f.rootkit.installed());
  EXPECT_EQ(f.rootkit.installs(), 1u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(f.s.platform().memory().read(off + i),
              f.rootkit.traces()[0].malicious[i]);
  }
  // The rich OS now dispatches GETTID to the attacker's handler.
  std::uint64_t benign_va = 0;
  const auto benign = f.s.kernel().benign_syscall_entry(os::kGettidSyscallNr);
  for (int b = 7; b >= 0; --b) {
    benign_va = (benign_va << 8) | benign[static_cast<std::size_t>(b)];
  }
  EXPECT_NE(f.s.os().syscall_handler_address(os::kGettidSyscallNr),
            benign_va);
}

TEST(Rootkit, RecoveryRestoresBenignBytesWithinSampledDuration) {
  Fixture f;
  f.rootkit.install();
  bool done = false;
  const sim::Time start = f.s.now();
  f.rootkit.begin_recovery(hw::CoreType::kLittleA53, [&] { done = true; });
  EXPECT_TRUE(f.rootkit.recovering());
  f.s.run_for(Duration::from_ms(20));
  EXPECT_TRUE(done);
  EXPECT_FALSE(f.rootkit.installed());
  EXPECT_FALSE(f.rootkit.recovering());
  EXPECT_EQ(f.rootkit.recoveries(), 1u);
  const std::size_t off = f.rootkit.traces()[0].offset;
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(f.s.platform().memory().read(off + i),
              f.rootkit.traces()[0].benign[i]);
  }
  // §IV-B2: A53 recovery duration 5.20e-3 .. 6.13e-3 s.
  const double dur = f.rootkit.last_recovery_duration().sec();
  EXPECT_GE(dur, 5.20e-3);
  EXPECT_LE(dur, 6.13e-3);
  (void)start;
}

TEST(Rootkit, A57RecoversFasterOnAverage) {
  Fixture f;
  double a53 = 0.0, a57 = 0.0;
  const int reps = 40;
  for (int i = 0; i < reps; ++i) {
    f.rootkit.install();
    f.rootkit.begin_recovery(hw::CoreType::kLittleA53, [] {});
    f.s.run_for(Duration::from_ms(10));
    a53 += f.rootkit.last_recovery_duration().sec();
    f.rootkit.install();
    f.rootkit.begin_recovery(hw::CoreType::kBigA57, [] {});
    f.s.run_for(Duration::from_ms(10));
    a57 += f.rootkit.last_recovery_duration().sec();
  }
  EXPECT_NEAR(a53 / reps, 5.80e-3, 0.2e-3);
  EXPECT_NEAR(a57 / reps, 4.96e-3, 0.2e-3);
}

TEST(Rootkit, BytesAreRestoredSequentiallyNotAtomically) {
  Fixture f;
  f.rootkit.install();
  const std::size_t off = f.rootkit.traces()[0].offset;
  f.rootkit.begin_recovery(hw::CoreType::kLittleA53, [] {});
  // Halfway through the recovery, early bytes are benign, late ones not.
  f.s.run_for(Duration::from_ms(3));
  const bool first_restored =
      f.s.platform().memory().read(off) == f.rootkit.traces()[0].benign[0];
  const bool last_restored =
      f.s.platform().memory().read(off + 7) ==
      f.rootkit.traces()[0].benign[7];
  EXPECT_TRUE(first_restored);
  EXPECT_FALSE(last_restored);
  f.s.run_for(Duration::from_ms(10));
}

TEST(Rootkit, MultipleTracesRecoverTogether) {
  Fixture f;
  TraceSpec vec;
  vec.name = "irq-vector";
  vec.offset = f.s.kernel().irq_vector_offset();
  const auto benign = f.s.kernel().benign_irq_vector();
  vec.benign.assign(benign.begin(), benign.end());
  vec.malicious = vec.benign;
  for (auto& b : vec.malicious) b ^= 0xA5;
  f.rootkit.add_trace(vec);
  EXPECT_EQ(f.rootkit.trace_bytes(), 16u);
  f.rootkit.install();
  f.rootkit.begin_recovery(hw::CoreType::kBigA57, [] {});
  f.s.run_for(Duration::from_ms(10));
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(f.s.platform().memory().read(vec.offset + i), vec.benign[i]);
  }
}

TEST(Rootkit, StateMachineGuards) {
  Fixture f;
  EXPECT_THROW(f.rootkit.begin_recovery(hw::CoreType::kLittleA53, [] {}),
               std::logic_error);  // nothing installed
  f.rootkit.install();
  f.rootkit.begin_recovery(hw::CoreType::kLittleA53, [] {});
  EXPECT_THROW(f.rootkit.begin_recovery(hw::CoreType::kLittleA53, [] {}),
               std::logic_error);  // already recovering
  EXPECT_THROW(f.rootkit.install(), std::logic_error);  // mid-recovery
  EXPECT_THROW(f.rootkit.add_trace(TraceSpec{"x", 0, {1}, {2}}),
               std::logic_error);  // attack in progress
  f.s.run_for(Duration::from_ms(10));
  f.rootkit.install();  // re-install after recovery is fine
  EXPECT_EQ(f.rootkit.installs(), 2u);
}

TEST(Rootkit, TraceValidation) {
  scenario::Scenario s;
  Rootkit kit(s.os(), sim::Rng(1));
  EXPECT_THROW(kit.install(), std::logic_error);  // no traces
  EXPECT_THROW(kit.add_trace(TraceSpec{"bad", 0, {1, 2}, {3}}),
               std::invalid_argument);
  EXPECT_THROW(kit.add_trace(TraceSpec{"empty", 0, {}, {}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace satin::attack
