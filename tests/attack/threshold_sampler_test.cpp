// The analytic probing-threshold model against Table II.
#include "attack/threshold_sampler.h"

#include <gtest/gtest.h>

#include "sim/stats.h"

namespace satin::attack {
namespace {

struct PeriodRow {
  double period_s;
  double paper_avg;
  double paper_max;
  double paper_min;
};

// Table II, "Probing Threshold on Multi-Core".
const PeriodRow kTable2[] = {
    {8.0, 2.61e-4, 7.76e-4, 1.07e-4},
    {16.0, 3.54e-4, 1.38e-3, 1.31e-4},
    {30.0, 4.21e-4, 8.99e-4, 2.59e-4},
    {120.0, 5.26e-4, 9.49e-4, 3.18e-4},
    {300.0, 6.61e-4, 1.77e-3, 4.18e-4},
};

class Table2Row : public ::testing::TestWithParam<PeriodRow> {};

TEST_P(Table2Row, FiftyWindowStatisticsNearPaper) {
  const PeriodRow row = GetParam();
  // Average over several 50-window "papers" to damp the sampling noise of
  // a single 50-round experiment; the single-experiment spread is checked
  // separately below.
  ThresholdSampler sampler(hw::CrossCoreDelayModel{}, sim::Rng(1234), 6);
  sim::Accumulator acc;
  for (int i = 0; i < 1000; ++i) {
    acc.add(sampler.sample_window_max_seconds(row.period_s));
  }
  // Long-run average within 35% of the paper's 50-round average.
  EXPECT_NEAR(acc.mean(), row.paper_avg, 0.35 * row.paper_avg);
  // Bounds: window maxima live between the paper's min and max columns
  // (with slack — those columns are 50-round extremes of a noisy tail).
  EXPECT_GE(acc.min(), 0.4 * row.paper_min);
  EXPECT_LE(acc.max(), 1.77e-3 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Table2, Table2Row, ::testing::ValuesIn(kTable2),
    [](const auto& info) {
      return "period_" + std::to_string(static_cast<int>(info.param.period_s));
    });

TEST(ThresholdSampler, AverageThresholdGrowsWithProbingPeriod) {
  // Table II's headline trend: "the average threshold becomes larger
  // along with a longer probing period".
  ThresholdSampler sampler(hw::CrossCoreDelayModel{}, sim::Rng(7), 6);
  double prev = 0.0;
  for (double period : {8.0, 16.0, 30.0, 120.0, 300.0}) {
    sim::Accumulator acc;
    for (int i = 0; i < 600; ++i) {
      acc.add(sampler.sample_window_max_seconds(period));
    }
    EXPECT_GT(acc.mean(), prev) << "period " << period;
    prev = acc.mean();
  }
}

TEST(ThresholdSampler, NeverExceedsEvaderThreshold) {
  // §VI-B1 sets the evader's threshold at 1.8e-3 s because benign maxima
  // never exceed 1.77e-3 s.
  ThresholdSampler sampler(hw::CrossCoreDelayModel{}, sim::Rng(8), 6);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LE(sampler.sample_window_max_seconds(300.0), 1.8e-3);
  }
}

TEST(ThresholdSampler, SingleCoreProbingRoughlyQuartersThresholds) {
  // §IV-B2: "the average thresholds to probe the single core only equal
  // to ~1/4 of the presented threshold for probing all cores, for all
  // five probing periods".
  for (double period : {8.0, 16.0, 30.0, 120.0, 300.0}) {
    ThresholdSampler all(hw::CrossCoreDelayModel{}, sim::Rng(9), 6);
    ThresholdSampler one(hw::CrossCoreDelayModel{}, sim::Rng(9), 1);
    sim::Accumulator acc_all, acc_one;
    for (int i = 0; i < 500; ++i) {
      acc_all.add(all.sample_window_max_seconds(period));
      acc_one.add(one.sample_window_max_seconds(period));
    }
    EXPECT_NEAR(acc_one.mean() / acc_all.mean(), 0.25, 0.06)
        << "period " << period;
  }
}

TEST(ThresholdSampler, Fig4OutliersOnlyForLongPeriods) {
  // Fig. 4: "only few extreme large outliers are introduced for probing
  // period 300 s, which go over 1e-3 s."
  ThresholdSampler sampler(hw::CrossCoreDelayModel{}, sim::Rng(10), 6);
  int over_1ms_short = 0;
  int over_1ms_long = 0;
  for (int i = 0; i < 500; ++i) {
    if (sampler.sample_window_max_seconds(8.0) > 1e-3) ++over_1ms_short;
    if (sampler.sample_window_max_seconds(300.0) > 1e-3) ++over_1ms_long;
  }
  EXPECT_LE(over_1ms_short, 5);
  EXPECT_GT(over_1ms_long, over_1ms_short);
  EXPECT_LT(over_1ms_long, 100);  // still "few"
}

}  // namespace
}  // namespace satin::attack
