// Prediction-only evasion vs. periodic and randomized schedules.
#include "attack/predictor.h"

#include <gtest/gtest.h>

#include "core/satin.h"
#include "scenario/scenario.h"

namespace satin::attack {
namespace {

using sim::Duration;

core::Satin make_checker(scenario::Scenario& s, bool randomize) {
  core::SatinConfig config;
  config.multi_core = false;
  config.fixed_core = 5;
  config.randomize_wake = randomize;
  config.tp_s = 1.0;
  return core::Satin(s.platform(), s.kernel(), s.tsp(), config);
}

TEST(Predictor, DefeatsStrictlyPeriodicChecker) {
  scenario::Scenario s;
  core::Satin satin = make_checker(s, /*randomize=*/false);
  satin.start();
  PeriodicPredictionAttacker attacker(s.os(), PredictionConfig{});
  attacker.deploy();
  s.run_for(Duration::from_sec(60));
  satin.stop();
  EXPECT_GE(satin.rounds(), 55u);
  EXPECT_EQ(satin.alarm_count(), 0u);
  EXPECT_GE(attacker.hides(), 55u);
  EXPECT_GE(attacker.rearms(), 54u);
}

TEST(Predictor, LosesAgainstRandomizedWakeups) {
  scenario::Scenario s;
  core::Satin satin = make_checker(s, /*randomize=*/true);
  satin.start();
  PeriodicPredictionAttacker attacker(s.os(), PredictionConfig{});
  attacker.deploy();
  // Long enough for several area-14 checks under random gaps.
  s.run_for(Duration::from_sec(200));
  satin.stop();
  EXPECT_GE(satin.checker().check_count(14), 3u);
  EXPECT_GT(satin.alarm_count(), 0u)
      << "the memorized schedule must misfire against random deviation";
}

TEST(Predictor, WrongPhaseAlsoFailsEvenOnPeriodicChecker) {
  // The attack needs the phase, not just the period: half a period off
  // and every hide window misses the real wake.
  scenario::Scenario s;
  core::Satin satin = make_checker(s, /*randomize=*/false);
  satin.start();
  PredictionConfig config;
  config.phase_s = 0.5;
  PeriodicPredictionAttacker attacker(s.os(), config);
  attacker.deploy();
  s.run_for(Duration::from_sec(60));
  satin.stop();
  EXPECT_GT(satin.alarm_count(), 0u);
}

TEST(Predictor, Validation) {
  scenario::Scenario s;
  PredictionConfig bad;
  bad.period_s = 0.0;
  EXPECT_THROW(PeriodicPredictionAttacker(s.os(), bad),
               std::invalid_argument);
  PredictionConfig neg;
  neg.hide_lead_s = -1.0;
  EXPECT_THROW(PeriodicPredictionAttacker(s.os(), neg),
               std::invalid_argument);
  PeriodicPredictionAttacker ok(s.os(), PredictionConfig{});
  ok.deploy();
  EXPECT_THROW(ok.deploy(), std::logic_error);
}

}  // namespace
}  // namespace satin::attack
