#include "os/run_queue.h"

#include <gtest/gtest.h>

namespace satin::os {
namespace {

class DummyThread : public Thread {
 public:
  using Thread::Thread;
  Action next_action(OsContext&) override { return ExitAction{}; }
};

TEST(RunQueue, EmptyByDefault) {
  RunQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.peek(), nullptr);
  EXPECT_EQ(q.pop(), nullptr);
}

TEST(RunQueue, RtOutranksCfs) {
  RunQueue q;
  DummyThread cfs("cfs"), rt("rt");
  rt.set_policy(SchedPolicy::kRtFifo, 10);
  q.enqueue(&cfs, 1);
  q.enqueue(&rt, 2);
  EXPECT_EQ(q.peek(), &rt);
}

TEST(RunQueue, HigherRtPriorityWins) {
  RunQueue q;
  DummyThread lo("lo"), hi("hi");
  lo.set_policy(SchedPolicy::kRtFifo, 10);
  hi.set_policy(SchedPolicy::kRtFifo, 99);
  q.enqueue(&lo, 1);
  q.enqueue(&hi, 2);
  EXPECT_EQ(q.pop(), &hi);
  EXPECT_EQ(q.pop(), &lo);
}

TEST(RunQueue, EqualRtPriorityIsFifo) {
  RunQueue q;
  DummyThread a("a"), b("b"), c("c");
  for (DummyThread* t : {&a, &b, &c}) t->set_policy(SchedPolicy::kRtFifo, 50);
  q.enqueue(&b, 2);
  q.enqueue(&a, 1);
  q.enqueue(&c, 3);
  EXPECT_EQ(q.pop(), &a);
  EXPECT_EQ(q.pop(), &b);
  EXPECT_EQ(q.pop(), &c);
}

TEST(RunQueue, DoubleEnqueueThrows) {
  RunQueue q;
  DummyThread t("t");
  q.enqueue(&t, 1);
  EXPECT_THROW(q.enqueue(&t, 2), std::logic_error);
}

TEST(RunQueue, RemoveAndContains) {
  RunQueue q;
  DummyThread a("a"), b("b");
  q.enqueue(&a, 1);
  q.enqueue(&b, 2);
  EXPECT_TRUE(q.contains(&a));
  q.remove(&a);
  EXPECT_FALSE(q.contains(&a));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.pop(), &b);
}

TEST(RunQueue, HasCfsAndRt) {
  RunQueue q;
  DummyThread cfs("cfs"), rt("rt");
  rt.set_policy(SchedPolicy::kRtFifo, 1);
  EXPECT_FALSE(q.has_cfs());
  EXPECT_FALSE(q.has_rt());
  q.enqueue(&cfs, 1);
  EXPECT_TRUE(q.has_cfs());
  EXPECT_FALSE(q.has_rt());
  q.enqueue(&rt, 2);
  EXPECT_TRUE(q.has_rt());
}

TEST(RunQueue, MinCfsVruntimeInfiniteWithoutCfs) {
  RunQueue q;
  EXPECT_EQ(q.min_cfs_vruntime(), std::numeric_limits<double>::infinity());
}

TEST(RunQueue, RtPreemptsPredicate) {
  DummyThread cfs("cfs"), cfs2("cfs2"), rt_lo("lo"), rt_hi("hi");
  rt_lo.set_policy(SchedPolicy::kRtFifo, 10);
  rt_hi.set_policy(SchedPolicy::kRtFifo, 99);
  EXPECT_TRUE(RunQueue::rt_preempts(rt_lo, cfs));
  EXPECT_TRUE(RunQueue::rt_preempts(rt_hi, rt_lo));
  EXPECT_FALSE(RunQueue::rt_preempts(rt_lo, rt_hi));
  // Equal RT priority: FIFO, no preemption.
  DummyThread rt_lo2("lo2");
  rt_lo2.set_policy(SchedPolicy::kRtFifo, 10);
  EXPECT_FALSE(RunQueue::rt_preempts(rt_lo2, rt_lo));
  // CFS never "rt-preempts".
  EXPECT_FALSE(RunQueue::rt_preempts(cfs2, cfs));
  EXPECT_FALSE(RunQueue::rt_preempts(cfs, rt_lo));
}

TEST(Thread, DefaultsAndSetters) {
  DummyThread t("worker");
  EXPECT_EQ(t.name(), "worker");
  EXPECT_EQ(t.policy(), SchedPolicy::kCfs);
  EXPECT_EQ(t.state(), ThreadState::kNew);
  EXPECT_FALSE(t.pinned_core().has_value());
  t.pin_to_core(3);
  EXPECT_EQ(t.pinned_core(), 3);
  t.clear_pinning();
  EXPECT_FALSE(t.pinned_core().has_value());
  t.set_policy(SchedPolicy::kRtFifo, 99);
  EXPECT_EQ(t.rt_priority(), 99);
}

}  // namespace
}  // namespace satin::os
