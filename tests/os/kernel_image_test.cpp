#include "os/kernel_image.h"

#include <gtest/gtest.h>

#include "hw/memory.h"

namespace satin::os {
namespace {

KernelImage make_image() { return KernelImage(make_default_map()); }

TEST(KernelImage, SizeMatchesMap) {
  const KernelImage image = make_image();
  EXPECT_EQ(image.size(), image.map().total_size());
  EXPECT_EQ(image.size(), 11'916'240u);
}

TEST(KernelImage, ContentIsDeterministicInSeed) {
  const KernelImage a(make_default_map(), 123);
  const KernelImage b(make_default_map(), 123);
  const KernelImage c(make_default_map(), 124);
  EXPECT_EQ(a.bytes(), b.bytes());
  EXPECT_NE(a.bytes(), c.bytes());
}

TEST(KernelImage, SyscallEntryOffsetsAreContiguousEightByteSlots) {
  const KernelImage image = make_image();
  const std::size_t base = image.syscall_entry_offset(0);
  for (int nr = 1; nr < kSyscallTableEntries; ++nr) {
    EXPECT_EQ(image.syscall_entry_offset(nr),
              base + static_cast<std::size_t>(nr) * 8);
  }
}

TEST(KernelImage, SyscallEntryOffsetValidatesRange) {
  const KernelImage image = make_image();
  EXPECT_THROW(image.syscall_entry_offset(-1), std::out_of_range);
  EXPECT_THROW(image.syscall_entry_offset(kSyscallTableEntries),
               std::out_of_range);
}

TEST(KernelImage, SyscallEntriesHoldTextAddresses) {
  // Entries are little-endian VAs inside the kernel text mapping.
  const KernelImage image = make_image();
  const auto entry = image.benign_syscall_entry(kGettidSyscallNr);
  std::uint64_t va = 0;
  for (int b = 7; b >= 0; --b) {
    va = (va << 8) | entry[static_cast<std::size_t>(b)];
  }
  EXPECT_GE(va, 0xFFFFFF8008080000ull);
  EXPECT_LT(va, 0xFFFFFF8008080000ull + image.size());
  EXPECT_EQ(va % 4, 0u);  // instruction aligned
}

TEST(KernelImage, DistinctSyscallsHaveDistinctHandlers) {
  const KernelImage image = make_image();
  EXPECT_NE(image.benign_syscall_entry(1), image.benign_syscall_entry(2));
}

TEST(KernelImage, InstallCopiesImageIntoMemory) {
  const KernelImage image = make_image();
  hw::Memory memory(16 * 1024 * 1024);
  image.install(memory);
  const std::size_t off = image.syscall_entry_offset(kGettidSyscallNr);
  const auto entry = image.benign_syscall_entry(kGettidSyscallNr);
  for (int b = 0; b < 8; ++b) {
    EXPECT_EQ(memory.read(off + static_cast<std::size_t>(b)),
              entry[static_cast<std::size_t>(b)]);
  }
}

TEST(KernelImage, InstallRejectsSmallMemory) {
  const KernelImage image = make_image();
  hw::Memory memory(1024);
  EXPECT_THROW(image.install(memory), std::invalid_argument);
}

TEST(KernelImage, IrqVectorSlotIsInsideVectorsSymbol) {
  const KernelImage image = make_image();
  const auto vectors = image.map().find_symbol("vectors");
  ASSERT_TRUE(vectors.has_value());
  // AArch64 "IRQ from current EL, SPx" vector is at offset 0x280.
  EXPECT_EQ(image.irq_vector_offset(), vectors->offset + 0x280);
  EXPECT_EQ(image.benign_irq_vector().size(), 8u);
}

TEST(KernelImage, BenignAccessorsReflectImageBytes) {
  const KernelImage image = make_image();
  const std::size_t off = image.irq_vector_offset();
  const auto slot = image.benign_irq_vector();
  for (int b = 0; b < 8; ++b) {
    EXPECT_EQ(slot[static_cast<std::size_t>(b)],
              image.bytes()[off + static_cast<std::size_t>(b)]);
  }
}

}  // namespace
}  // namespace satin::os
