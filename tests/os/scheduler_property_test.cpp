// Randomized scheduler invariants: under a chaotic mix of CFS/RT threads,
// pinning, sleeping and secure-world stays, wall-clock time must be
// conserved and the core-affinity contract must hold.
#include <gtest/gtest.h>

#include "scenario/scenario.h"
#include "sim/rng.h"

namespace satin::os {
namespace {

using sim::Duration;
using sim::Time;

// A thread with randomized behavior: computes, sleeps, yields in a
// seed-determined pattern; records every core it was dispatched on.
class ChaosThread final : public Thread {
 public:
  ChaosThread(std::string name, std::uint64_t seed)
      : Thread(std::move(name)), rng_(seed) {}

  Action next_action(OsContext& ctx) override {
    cores_seen_.insert(ctx.core);
    switch (rng_.index(8)) {
      case 0:
        return SleepForAction{
            Duration::from_us(rng_.uniform_int(50, 5000))};
      case 1:
        return YieldAction{};
      default:
        return ComputeAction{
            Duration::from_us(rng_.uniform_int(10, 3000)), nullptr};
    }
  }

  const std::set<hw::CoreId>& cores_seen() const { return cores_seen_; }

 private:
  sim::Rng rng_;
  std::set<hw::CoreId> cores_seen_;
};

class SchedulerChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerChaos, TimeIsConservedAndAffinityHolds) {
  scenario::ScenarioConfig config;
  config.platform.seed = GetParam();
  config.boot = false;
  scenario::Scenario s(config);
  sim::Rng rng(GetParam() ^ 0xC0FFEE);

  std::vector<ChaosThread*> threads;
  std::vector<std::optional<hw::CoreId>> pins;
  for (int i = 0; i < 14; ++i) {
    auto t = std::make_unique<ChaosThread>("chaos" + std::to_string(i),
                                           rng.next_u64());
    std::optional<hw::CoreId> pin;
    if (rng.bernoulli(0.5)) {
      pin = static_cast<hw::CoreId>(rng.index(6));
      t->pin_to_core(*pin);
    }
    if (rng.bernoulli(0.25)) {
      t->set_policy(SchedPolicy::kRtFifo,
                    static_cast<int>(rng.uniform_int(1, 99)));
    }
    pins.push_back(pin);
    threads.push_back(
        static_cast<ChaosThread*>(s.os().add_thread(std::move(t))));
  }
  s.os().boot();

  // Random secure stays on random cores throughout the run.
  s.tsp().install_timer_service(
      [&s, &rng](std::shared_ptr<hw::SecureSession> ss) {
        const auto stay = Duration::from_us(rng.uniform_int(100, 8000));
        s.engine().schedule_after(stay, [ss] { ss->complete(); });
      });
  for (int k = 0; k < 40; ++k) {
    s.engine().schedule_at(
        Time::from_ms(rng.uniform_int(1, 1990)), [&s, &rng] {
          const auto core = static_cast<hw::CoreId>(rng.index(6));
          if (!s.platform().core(core).in_secure_world()) {
            s.platform().timer().program_secure(core, s.now());
          }
        });
  }

  const Time horizon = Time::from_sec(2);
  s.run_until(horizon);

  // (a) Affinity: a pinned thread must never have been dispatched on
  // another core.
  for (std::size_t i = 0; i < threads.size(); ++i) {
    if (!pins[i]) continue;
    for (hw::CoreId c : threads[i]->cores_seen()) {
      EXPECT_EQ(c, *pins[i]) << threads[i]->name();
    }
  }

  // (b) Conservation: thread CPU time + OS idle + secure occupancy covers
  // the whole 6-core wall clock (small slack for stays straddling the
  // horizon and in-flight actions).
  double total_cpu_s = 0.0;
  for (const ChaosThread* t : threads) total_cpu_s += t->cpu_time().sec();
  double total_idle_s = 0.0;
  double total_secure_s = 0.0;
  for (int c = 0; c < 6; ++c) {
    total_idle_s += s.os().idle_time(c).sec();
    total_secure_s += s.platform().core(c).secure_time_total().sec();
    // A core still in the secure world at the horizon contributes its
    // open stay.
    if (s.platform().core(c).in_secure_world()) total_secure_s += 8e-3;
  }
  const double wall_s = 6.0 * horizon.sec();
  const double accounted = total_cpu_s + total_idle_s + total_secure_s;
  EXPECT_NEAR(accounted, wall_s, 0.05 * wall_s)
      << "cpu " << total_cpu_s << " idle " << total_idle_s << " secure "
      << total_secure_s;

  // (c) Sanity: every thread made progress, nobody starved outright.
  for (const ChaosThread* t : threads) {
    EXPECT_GT(t->cpu_time().sec(), 0.0) << t->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerChaos,
                         ::testing::Values(11ull, 22ull, 33ull, 44ull, 55ull,
                                           66ull));

}  // namespace
}  // namespace satin::os
