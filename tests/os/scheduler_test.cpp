// The rich OS scheduler: CFS + RT FIFO, affinity, ticks, and — the part
// the paper's side channel rests on — freeze/resume across secure stays.
#include <gtest/gtest.h>

#include "scenario/scenario.h"

namespace satin::os {
namespace {

using hw::CoreId;
using sim::Duration;
using sim::Time;

// A thread that runs `compute` once and exits, recording completion time.
class OneShot : public Thread {
 public:
  OneShot(std::string name, Duration compute)
      : Thread(std::move(name)), compute_(compute) {}
  Action next_action(OsContext&) override {
    if (done_) return ExitAction{};
    done_ = true;
    return ComputeAction{compute_,
                         [this](OsContext& ctx) { completed_at_ = ctx.now; }};
  }
  Time completed_at() const { return completed_at_; }

 private:
  Duration compute_;
  bool done_ = false;
  Time completed_at_;
};

// An endless CPU hog.
class Hog : public Thread {
 public:
  using Thread::Thread;
  Action next_action(OsContext&) override {
    return ComputeAction{Duration::from_ms(1), nullptr};
  }
};

scenario::ScenarioConfig quiet_config() {
  scenario::ScenarioConfig config;
  config.boot = false;
  return config;
}

TEST(Scheduler, ComputeRunsAndExits) {
  scenario::Scenario s(quiet_config());
  auto* t = static_cast<OneShot*>(
      s.os().add_thread(std::make_unique<OneShot>("t", Duration::from_ms(10))));
  s.os().boot();
  s.run_for(Duration::from_ms(50));
  EXPECT_EQ(t->state(), ThreadState::kExited);
  // One context switch in front of the compute.
  EXPECT_EQ(t->completed_at(),
            Time::zero() + Duration::from_ms(10) +
                s.os().config().context_switch_cost);
  EXPECT_EQ(t->cpu_time(), Duration::from_ms(10) +
                               s.os().config().context_switch_cost);
}

TEST(Scheduler, SleepDelaysWork) {
  scenario::Scenario s(quiet_config());
  Time completed;
  auto* t = s.os().add_thread(std::make_unique<FunctionThread>(
      "sleeper", [&, phase = 0](OsContext&) mutable -> Action {
        switch (phase++) {
          case 0:
            return SleepForAction{Duration::from_ms(5)};
          case 1:
            return ComputeAction{Duration::from_ms(1),
                                 [&](OsContext& ctx) { completed = ctx.now; }};
          default:
            return ExitAction{};
        }
      }));
  s.os().boot();
  s.run_for(Duration::from_ms(50));
  EXPECT_EQ(t->state(), ThreadState::kExited);
  EXPECT_GE(completed, Time::zero() + Duration::from_ms(6));
  EXPECT_LT(completed, Time::zero() + Duration::from_ms(7));
}

TEST(Scheduler, SleepUntilHonorsAbsoluteTime) {
  scenario::Scenario s(quiet_config());
  Time woke;
  s.os().add_thread(std::make_unique<FunctionThread>(
      "until", [&, phase = 0](OsContext& ctx) mutable -> Action {
        switch (phase++) {
          case 0:
            return SleepUntilAction{Time::from_ms(20)};
          case 1:
            woke = ctx.now;
            return ExitAction{};
          default:
            return ExitAction{};
        }
      }));
  s.os().boot();
  s.run_for(Duration::from_ms(50));
  EXPECT_GE(woke, Time::from_ms(20));
  EXPECT_LT(woke, Time::from_ms(21));
}

TEST(Scheduler, PinnedThreadStaysOnItsCore) {
  scenario::Scenario s(quiet_config());
  auto hog = std::make_unique<Hog>("pinned");
  hog->pin_to_core(3);
  auto* t = s.os().add_thread(std::move(hog));
  s.os().boot();
  for (int i = 0; i < 20; ++i) {
    s.run_for(Duration::from_ms(10));
    EXPECT_EQ(t->current_core(), 3);
  }
}

TEST(Scheduler, UnpinnedThreadsSpreadAcrossCores) {
  scenario::Scenario s(quiet_config());
  std::vector<Thread*> hogs;
  for (int i = 0; i < 6; ++i) {
    hogs.push_back(
        s.os().add_thread(std::make_unique<Hog>("hog" + std::to_string(i))));
  }
  s.os().boot();
  s.run_for(Duration::from_ms(100));
  std::set<CoreId> used;
  for (Thread* t : hogs) used.insert(t->current_core());
  EXPECT_EQ(used.size(), 6u);
}

TEST(Scheduler, CfsSharesOneCoreFairly) {
  scenario::Scenario s(quiet_config());
  auto mk = [&](const std::string& name) {
    auto hog = std::make_unique<Hog>(name);
    hog->pin_to_core(0);
    return s.os().add_thread(std::move(hog));
  };
  Thread* a = mk("a");
  Thread* b = mk("b");
  s.os().boot();
  s.run_for(Duration::from_sec(2));
  const double fa = a->cpu_time().sec();
  const double fb = b->cpu_time().sec();
  EXPECT_NEAR(fa, fb, 0.10 * (fa + fb));
  EXPECT_GT(fa + fb, 1.9);  // the core was ~fully utilized
}

TEST(Scheduler, RtPreemptsCfsQuickly) {
  scenario::Scenario s(quiet_config());
  auto hog = std::make_unique<Hog>("hog");
  hog->pin_to_core(0);
  s.os().add_thread(std::move(hog));

  std::vector<double> latencies;
  auto rt = std::make_unique<FunctionThread>(
      "rt", [&, next_wake = Time::zero(), phase = 0](
                OsContext& ctx) mutable -> Action {
        if (phase == 0) {
          phase = 1;
          next_wake = ctx.now + Duration::from_ms(10);
          return SleepUntilAction{next_wake};
        }
        phase = 0;
        latencies.push_back((ctx.now - next_wake).sec());
        return ComputeAction{Duration::from_us(100), nullptr};
      });
  rt->pin_to_core(0);
  rt->set_policy(SchedPolicy::kRtFifo, 99);
  s.os().add_thread(std::move(rt));
  s.os().boot();
  s.run_for(Duration::from_sec(1));
  ASSERT_GT(latencies.size(), 50u);
  // A max-priority FIFO thread preempts CFS within the context-switch
  // cost, never waiting out a CFS quantum.
  for (double lat : latencies) EXPECT_LT(lat, 100e-6);
}

TEST(Scheduler, CfsWakeLatencySuffersUnderLoad) {
  // §III-B2: the user-level (CFS) prober's probing delay degrades when
  // competing same-priority threads share its core — the reason
  // KProber-II uses the RT scheduler.
  auto measure = [](bool with_load) {
    scenario::Scenario s;
    if (with_load) {
      for (int i = 0; i < 2; ++i) {
        auto hog = std::make_unique<Hog>("hog" + std::to_string(i));
        hog->pin_to_core(0);
        s.os().add_thread(std::move(hog));
      }
    }
    auto worst = std::make_shared<double>(0.0);
    auto probe = std::make_unique<FunctionThread>(
        "probe", [&, worst, next_wake = Time::zero(),
                  phase = 0](OsContext& ctx) mutable -> Action {
          if (phase == 0) {
            phase = 1;
            next_wake = ctx.now + Duration::from_ms(2);
            return SleepUntilAction{next_wake};
          }
          phase = 0;
          *worst = std::max(*worst, (ctx.now - next_wake).sec());
          return ComputeAction{Duration::from_us(10), nullptr};
        });
    probe->pin_to_core(0);
    s.os().add_thread(std::move(probe));
    s.run_for(Duration::from_sec(2));
    return *worst;
  };
  const double idle_worst = measure(false);
  const double loaded_worst = measure(true);
  // Alone: wakes within the context-switch cost. Loaded: waits out CFS
  // slices — milliseconds, the §III-B1 Tns_delay < 5.97e-3 regime.
  EXPECT_LT(idle_worst, 100e-6);
  EXPECT_GT(loaded_worst, 1e-3);
  EXPECT_LT(loaded_worst, 6e-3);
}

TEST(Scheduler, EqualPriorityRtRunsFifoWithoutPreemption) {
  scenario::Scenario s(quiet_config());
  Time first_done, second_started;
  auto first = std::make_unique<FunctionThread>(
      "first", [&, phase = 0](OsContext&) mutable -> Action {
        if (phase++ == 0) {
          return ComputeAction{Duration::from_ms(50),
                               [&](OsContext& c) { first_done = c.now; }};
        }
        return ExitAction{};
      });
  first->pin_to_core(1);
  first->set_policy(SchedPolicy::kRtFifo, 50);
  s.os().add_thread(std::move(first));

  auto second = std::make_unique<FunctionThread>(
      "second", [&, phase = 0](OsContext& ctx) mutable -> Action {
        if (phase++ == 0) {
          second_started = ctx.now;
          return ComputeAction{Duration::from_ms(1), nullptr};
        }
        return ExitAction{};
      });
  second->pin_to_core(1);
  second->set_policy(SchedPolicy::kRtFifo, 50);
  s.os().add_thread(std::move(second));
  s.os().boot();
  s.run_for(Duration::from_ms(200));
  EXPECT_GE(second_started, first_done);
}

TEST(Scheduler, SecureStayFreezesOnlyThatCore) {
  scenario::Scenario s;
  auto pinned = [&](CoreId c) {
    auto hog = std::make_unique<Hog>("hog" + std::to_string(c));
    hog->pin_to_core(c);
    return s.os().add_thread(std::move(hog));
  };
  Thread* on0 = pinned(0);
  Thread* on1 = pinned(1);
  s.tsp().install_timer_service([&](std::shared_ptr<hw::SecureSession> ss) {
    s.engine().schedule_after(Duration::from_ms(100),
                              [ss] { ss->complete(); });
  });
  s.run_for(Duration::from_ms(10));
  const Duration before0 = on0->cpu_time();
  s.platform().timer().program_secure(0, s.now());
  s.run_for(Duration::from_ms(100));
  const double ran0 = (on0->cpu_time() - before0).sec();
  // Core 0 was frozen ~the whole window; core 1 kept running.
  EXPECT_LT(ran0, 5e-3);
  EXPECT_GT(on1->cpu_time().sec(), 0.09);
}

TEST(Scheduler, FreezeConservesComputeWork) {
  scenario::Scenario s(quiet_config());
  auto* t = static_cast<OneShot*>(s.os().add_thread(
      std::make_unique<OneShot>("t", Duration::from_ms(20))));
  s.os().boot();
  s.tsp().install_timer_service([&](std::shared_ptr<hw::SecureSession> ss) {
    s.engine().schedule_after(Duration::from_ms(7), [ss] { ss->complete(); });
  });
  // Freeze the thread's core mid-compute.
  s.run_for(Duration::from_ms(5));
  const CoreId core = t->current_core();
  s.platform().timer().program_secure(core, s.now());
  s.run_for(Duration::from_ms(100));
  EXPECT_EQ(t->state(), ThreadState::kExited);
  // Work conserved: 20 ms of compute + 1 csw + ~7 ms stay + 2 switches.
  const double done = t->completed_at().sec();
  EXPECT_GT(done, 0.027);
  EXPECT_LT(done, 0.0272);
  EXPECT_NEAR(t->cpu_time().sec(),
              0.020 + s.os().config().context_switch_cost.sec(), 1e-9);
}

TEST(Scheduler, TickHooksRunAtHzOnBusyCores) {
  scenario::Scenario s(quiet_config());
  auto hog = std::make_unique<Hog>("hog");
  hog->pin_to_core(2);
  s.os().add_thread(std::move(hog));
  s.os().boot();
  std::map<CoreId, int> ticks;
  const int id = s.os().add_tick_hook(
      [&](CoreId core, Time) { ++ticks[core]; });
  s.run_for(Duration::from_sec(1));
  // HZ=250 on the busy core.
  EXPECT_NEAR(ticks[2], 250, 3);
  s.os().remove_tick_hook(id);
  const int after = ticks[2];
  s.run_for(Duration::from_sec(1));
  EXPECT_EQ(ticks[2], after);
}

TEST(Scheduler, NoHzIdleSilencesIdleCores) {
  scenario::Scenario s(quiet_config());
  auto hog = std::make_unique<Hog>("hog");
  hog->pin_to_core(0);
  s.os().add_thread(std::move(hog));
  s.os().boot();
  std::map<CoreId, int> ticks;
  s.os().add_tick_hook([&](CoreId core, Time) { ++ticks[core]; });
  s.run_for(Duration::from_sec(1));
  EXPECT_GT(ticks[0], 200);
  // Idle cores (1..5) stopped ticking (CONFIG_NO_HZ_IDLE).
  for (CoreId c = 1; c < 6; ++c) EXPECT_LE(ticks[c], 1) << "core " << c;
}

TEST(Scheduler, IdleTimeAccounting) {
  scenario::Scenario s(quiet_config());
  auto hog = std::make_unique<Hog>("hog");
  hog->pin_to_core(0);
  s.os().add_thread(std::move(hog));
  s.os().boot();
  s.run_for(Duration::from_sec(1));
  EXPECT_LT(s.os().idle_time(0).sec(), 0.01);
  EXPECT_GT(s.os().idle_time(1).sec(), 0.99);
}

TEST(Scheduler, RunnableCountAndRunningThread) {
  scenario::Scenario s(quiet_config());
  auto mk = [&](const std::string& n) {
    auto hog = std::make_unique<Hog>(n);
    hog->pin_to_core(0);
    return s.os().add_thread(std::move(hog));
  };
  mk("a");
  mk("b");
  mk("c");
  s.os().boot();
  s.run_for(Duration::from_ms(10));
  EXPECT_EQ(s.os().runnable_count(0), 3);
  EXPECT_NE(s.os().running_thread(0), nullptr);
  EXPECT_EQ(s.os().runnable_count(5), 0);
  EXPECT_EQ(s.os().running_thread(5), nullptr);
}

TEST(Scheduler, SyscallHandlerAddressSeesLiveMemory) {
  scenario::Scenario s;
  const auto& image = s.kernel();
  const std::uint64_t benign =
      s.os().syscall_handler_address(kGettidSyscallNr);
  std::uint64_t expected = 0;
  const auto entry = image.benign_syscall_entry(kGettidSyscallNr);
  for (int b = 7; b >= 0; --b) {
    expected = (expected << 8) | entry[static_cast<std::size_t>(b)];
  }
  EXPECT_EQ(benign, expected);
  // Hijack the entry: the OS-visible handler changes.
  std::vector<std::uint8_t> evil(8, 0xEE);
  s.platform().memory().write(s.now(), image.syscall_entry_offset(
                                           kGettidSyscallNr), evil);
  EXPECT_EQ(s.os().syscall_handler_address(kGettidSyscallNr),
            0xEEEEEEEEEEEEEEEEull);
}

TEST(Scheduler, BootTwiceThrows) {
  scenario::Scenario s;
  EXPECT_THROW(s.os().boot(), std::logic_error);
}

TEST(Scheduler, RejectsNonLinuxHz) {
  hw::Platform platform;
  OsConfig config;
  config.hz = 50;
  EXPECT_THROW(
      RichOs(platform, KernelImage(make_default_map()), config),
      std::invalid_argument);
}

TEST(Scheduler, ThreadWokenDuringFreezeRunsAfterExit) {
  scenario::Scenario s;
  s.tsp().install_timer_service([&](std::shared_ptr<hw::SecureSession> ss) {
    s.engine().schedule_after(Duration::from_ms(20), [ss] { ss->complete(); });
  });
  Time ran_at;
  auto t = std::make_unique<FunctionThread>(
      "late", [&, phase = 0](OsContext& ctx) mutable -> Action {
        if (phase++ == 0) return SleepForAction{Duration::from_ms(10)};
        ran_at = ctx.now;
        return ExitAction{};
      });
  t->pin_to_core(4);
  s.os().add_thread(std::move(t));
  s.run_for(Duration::from_ms(1));
  // Freeze core 4 for 20 ms starting at ~1 ms; the wake at ~11 ms lands
  // inside the stay and must not run (nor migrate — it is pinned).
  s.platform().timer().program_secure(4, s.now());
  s.run_for(Duration::from_ms(100));
  EXPECT_GT(ran_at.sec(), 0.021);
}

}  // namespace
}  // namespace satin::os
