// The synthetic System.map must reproduce the paper's structural facts.
#include "os/system_map.h"

#include <gtest/gtest.h>

namespace satin::os {
namespace {

TEST(DefaultMap, KernelStaticAreaMatchesPaper) {
  // §IV-C: "the entire OS kernel whose size is 11916240 bytes".
  const SystemMap map = make_default_map();
  EXPECT_EQ(map.total_size(), 11'916'240u);
}

TEST(DefaultMap, NineteenRegions) {
  // §VI-A2: "we divide the normal world's kernel into 19 areas".
  EXPECT_EQ(make_default_map().region_count(), 19);
}

TEST(DefaultMap, LargestAndSmallestRegionMatchPaper) {
  // §VI-A2: largest 876,616 B, smallest 431,360 B.
  const SystemMap map = make_default_map();
  std::size_t largest = 0;
  std::size_t smallest = map.total_size();
  for (int r = 0; r < map.region_count(); ++r) {
    const auto e = map.region_extent(r);
    largest = std::max(largest, e.size);
    smallest = std::min(smallest, e.size);
  }
  EXPECT_EQ(largest, 876'616u);
  EXPECT_EQ(smallest, 431'360u);
}

TEST(DefaultMap, EveryRegionBelowRaceBound) {
  // §VI-A2: "for each area of the checking module, its size must be
  // smaller than 1218351 bytes".
  const SystemMap map = make_default_map();
  for (int r = 0; r < map.region_count(); ++r) {
    EXPECT_LT(map.region_extent(r).size, 1'218'351u) << "region " << r;
  }
}

TEST(DefaultMap, RegionsAreContiguousAndCoverKernel) {
  const SystemMap map = make_default_map();
  std::size_t cursor = 0;
  for (int r = 0; r < map.region_count(); ++r) {
    const auto e = map.region_extent(r);
    EXPECT_EQ(e.offset, cursor) << "region " << r;
    cursor = e.end();
  }
  EXPECT_EQ(cursor, map.total_size());
}

TEST(DefaultMap, SyscallTableLivesInRegion14) {
  // §VI-B1: the hijacked handler "resides in the area 14".
  const SystemMap map = make_default_map();
  const auto table = map.find_symbol("sys_call_table");
  ASSERT_TRUE(table.has_value());
  EXPECT_EQ(map.region_of(table->offset), 14);
  EXPECT_EQ(map.region_of(table->offset + table->size - 1), 14);
  EXPECT_EQ(table->size,
            static_cast<std::size_t>(kSyscallTableEntries) *
                kSyscallEntryBytes);
}

TEST(DefaultMap, ExceptionVectorsLiveInRegion0) {
  const SystemMap map = make_default_map();
  const auto vectors = map.find_symbol("vectors");
  ASSERT_TRUE(vectors.has_value());
  EXPECT_EQ(map.region_of(vectors->offset), 0);
  EXPECT_EQ(vectors->size, 2048u);
}

TEST(DefaultMap, SectionsStayWithinOneRegion) {
  const SystemMap map = make_default_map();
  for (const Section& s : map.sections()) {
    EXPECT_EQ(map.region_of(s.offset), s.region) << s.name;
    EXPECT_EQ(map.region_of(s.end() - 1), s.region) << s.name;
  }
}

TEST(DefaultMap, TextPrecedesRodata) {
  const SystemMap map = make_default_map();
  const auto etext = map.find_symbol("_etext");
  ASSERT_TRUE(etext.has_value());
  const auto table = map.find_symbol("sys_call_table");
  EXPECT_GT(table->offset, etext->offset);
}

TEST(DefaultMap, GettidSyscallNumberIsAarch64) {
  EXPECT_EQ(kGettidSyscallNr, 178);  // AArch64 __NR_gettid
}

TEST(SystemMap, RegionOfRejectsOutsideOffsets) {
  const SystemMap map = make_default_map();
  EXPECT_THROW(map.region_of(map.total_size()), std::out_of_range);
}

TEST(SystemMap, FindSymbolMissingReturnsNullopt) {
  EXPECT_FALSE(make_default_map().find_symbol("no_such_symbol").has_value());
}

TEST(SystemMap, RejectsNonContiguousSections) {
  std::vector<Section> sections{
      {"a", 0, 100, SectionKind::kText, 0},
      {"b", 150, 100, SectionKind::kText, 0},  // gap at 100..150
  };
  EXPECT_THROW(SystemMap(sections, {}), std::invalid_argument);
}

TEST(SystemMap, RejectsUntaggedSections) {
  std::vector<Section> sections{{"a", 0, 100, SectionKind::kText, -1}};
  EXPECT_THROW(SystemMap(sections, {}), std::invalid_argument);
}

TEST(SystemMap, RejectsSplitRegions) {
  std::vector<Section> sections{
      {"a", 0, 100, SectionKind::kText, 0},
      {"b", 100, 100, SectionKind::kText, 1},
      {"c", 200, 100, SectionKind::kText, 0},  // region 0 resumes: invalid
  };
  EXPECT_THROW(SystemMap(sections, {}), std::invalid_argument);
}

TEST(SystemMap, RejectsEmpty) {
  EXPECT_THROW(SystemMap({}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace satin::os
