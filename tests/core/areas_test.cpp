#include "core/areas.h"

#include <gtest/gtest.h>

#include "core/race_model.h"

namespace satin::core {
namespace {

constexpr std::size_t kPaperBound = 1'218'351;

TEST(PartitionByRegions, ReproducesPaperAreaLayout) {
  const auto map = os::make_default_map();
  const auto areas = partition_by_regions(map, kPaperBound);
  ASSERT_EQ(areas.size(), 19u);
  EXPECT_EQ(largest_area(areas), 876'616u);
  EXPECT_EQ(smallest_area(areas), 431'360u);
  EXPECT_EQ(total_area_bytes(areas), 11'916'240u);
}

TEST(PartitionByRegions, AreasAreContiguousAndOrdered) {
  const auto map = os::make_default_map();
  const auto areas = partition_by_regions(map, kPaperBound);
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < areas.size(); ++i) {
    EXPECT_EQ(areas[i].index, static_cast<int>(i));
    EXPECT_EQ(areas[i].offset, cursor);
    cursor = areas[i].end();
  }
  EXPECT_EQ(cursor, map.total_size());
}

TEST(PartitionByRegions, EnforcesRaceBound) {
  const auto map = os::make_default_map();
  // A cap below the largest region must be rejected loudly, not silently
  // produce an unscannable area.
  EXPECT_THROW(partition_by_regions(map, 800'000), std::invalid_argument);
}

TEST(PartitionByRegions, CapFromCalibratedRaceModelAccepted) {
  const auto map = os::make_default_map();
  const std::size_t cap =
      max_safe_area_bytes(worst_case_params(hw::TimingParams{}));
  EXPECT_EQ(cap, kPaperBound);
  EXPECT_NO_THROW(partition_by_regions(map, cap));
}

class PartitionEvenProperty : public ::testing::TestWithParam<int> {};

TEST_P(PartitionEvenProperty, CoversKernelContiguouslyUnderCap) {
  const auto map = os::make_default_map();
  const int target = GetParam();
  const auto areas = partition_even(map, kPaperBound, target);
  // Full coverage, contiguity, cap compliance.
  std::size_t cursor = 0;
  for (const Area& a : areas) {
    EXPECT_EQ(a.offset, cursor);
    EXPECT_LE(a.size, kPaperBound);
    EXPECT_GT(a.size, 0u);
    cursor = a.end();
  }
  EXPECT_EQ(cursor, map.total_size());
  // The area count lands near the target (section boundaries permitting,
  // and never below what the cap forces).
  const int min_forced =
      static_cast<int>(map.total_size() / kPaperBound);
  EXPECT_GE(static_cast<int>(areas.size()), std::max(1, min_forced));
  if (target >= 12) {
    EXPECT_NEAR(static_cast<double>(areas.size()), target, target * 0.35);
  }
}

INSTANTIATE_TEST_SUITE_P(TargetSweep, PartitionEvenProperty,
                         ::testing::Values(10, 12, 16, 19, 24, 32, 48));

TEST(PartitionEven, AreasAlignToSectionBoundaries) {
  const auto map = os::make_default_map();
  const auto areas = partition_even(map, kPaperBound, 19);
  for (const Area& a : areas) {
    bool found = false;
    for (const auto& s : map.sections()) {
      if (s.offset == a.offset) found = true;
    }
    EXPECT_TRUE(found) << "area at " << a.offset
                       << " does not start a section";
  }
}

TEST(PartitionEven, RejectsNonPositiveTarget) {
  const auto map = os::make_default_map();
  EXPECT_THROW(partition_even(map, kPaperBound, 0), std::invalid_argument);
}

TEST(SingleArea, CoversWholeKernel) {
  const auto map = os::make_default_map();
  const auto areas = single_area(map);
  ASSERT_EQ(areas.size(), 1u);
  EXPECT_EQ(areas[0].offset, 0u);
  EXPECT_EQ(areas[0].size, map.total_size());
}

TEST(AreaContaining, FindsAndRejects) {
  const auto map = os::make_default_map();
  const auto areas = partition_by_regions(map, kPaperBound);
  const auto table = map.find_symbol("sys_call_table");
  ASSERT_TRUE(table.has_value());
  EXPECT_EQ(area_containing(areas, table->offset), 14);
  EXPECT_EQ(area_containing(areas, 0), 0);
  EXPECT_EQ(area_containing(areas, map.total_size() - 1), 18);
  EXPECT_EQ(area_containing(areas, map.total_size()), -1);
}

TEST(AreaHelpers, EmptyVectors) {
  EXPECT_EQ(largest_area({}), 0u);
  EXPECT_EQ(smallest_area({}), 0u);
  EXPECT_EQ(total_area_bytes({}), 0u);
}

}  // namespace
}  // namespace satin::core
