// SATIN self-healing: missed-wake watchdog, bounded scan retry with
// transient-vs-confirmed classification, core-offline degradation, and
// the empty-area guards.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "attack/rootkit.h"
#include "core/integrity_checker.h"
#include "core/satin.h"
#include "fault/injector.h"
#include "os/system_map.h"
#include "scenario/scenario.h"

namespace satin::core {
namespace {

using sim::Duration;
using sim::Time;

TEST(SatinResilience, MisfiresStallSatinWithoutWatchdog) {
  // Control case: every programmed wake in the first 15 s is dropped and
  // nothing ever re-arms — SATIN silently dies.
  scenario::Scenario s;
  const auto injector =
      fault::install_from_spec(s.platform(), "timer-misfire@0s+15s");
  SatinConfig config;
  config.tp_s = 1.0;
  Satin satin(s.platform(), s.kernel(), s.tsp(), config);
  satin.start();
  s.run_for(Duration::from_sec(40));
  EXPECT_EQ(satin.rounds(), 0u);
  EXPECT_EQ(satin.watchdog_fires(), 0u);
}

TEST(SatinResilience, WatchdogRecoversFromMisfires) {
  // Same fault, watchdog on: overdue cores are re-armed and introspection
  // resumes once the fault window closes.
  scenario::Scenario s;
  const auto injector =
      fault::install_from_spec(s.platform(), "timer-misfire@0s+15s");
  SatinConfig config;
  config.tp_s = 1.0;
  config.resilience.watchdog = true;
  Satin satin(s.platform(), s.kernel(), s.tsp(), config);
  satin.start();
  s.run_for(Duration::from_sec(40));
  EXPECT_GT(satin.watchdog_fires(), 0u);
  EXPECT_GE(satin.rounds(), 10u);
}

TEST(SatinResilience, WatchdogStaysQuietOnAHealthySystem) {
  // No faults: the watchdog must never fire spuriously, and the round
  // cadence must look exactly like a watchdog-less run.
  scenario::Scenario s;
  SatinConfig config;
  config.tp_s = 0.5;
  config.resilience.watchdog = true;
  Satin satin(s.platform(), s.kernel(), s.tsp(), config);
  satin.start();
  s.run_for(Duration::from_sec(60));
  EXPECT_EQ(satin.watchdog_fires(), 0u);
  EXPECT_GT(satin.rounds(), 60u);
}

TEST(SatinResilience, WatchdogRecoversLostIrqsAndFailedSmcs) {
  scenario::Scenario s;
  const auto injector = fault::install_from_spec(
      s.platform(), "irq-lost@0s+8s:p=0.7,smc-fail@8s+8s:p=0.7");
  SatinConfig config;
  config.tp_s = 1.0;
  config.resilience.watchdog = true;
  Satin satin(s.platform(), s.kernel(), s.tsp(), config);
  satin.start();
  s.run_for(Duration::from_sec(40));
  EXPECT_GT(injector->injected_total(), 0u);
  EXPECT_GE(satin.rounds(), 10u);
}

TEST(SatinResilience, BitFlipsClassifyTransientNeverConfirmed) {
  // Each scan (rescans included) draws the flip independently, so a
  // confirmed alarm needs 1 + max_scan_retries corruptions in a row.
  // At p = 0.2 with 3 retries that is p^4 = 0.0016 per flipped round —
  // for this seed every alarm stays transient, and each one proves at
  // least one rescan ran before the round was cleared.
  scenario::Scenario s;
  const auto injector =
      fault::install_from_spec(s.platform(), "bitflip@0s+1000s:p=0.2");
  SatinConfig config;
  config.tp_s = 0.5;
  config.resilience.max_scan_retries = 3;
  Satin satin(s.platform(), s.kernel(), s.tsp(), config);
  satin.start();
  s.run_for(Duration::from_sec(60));
  ASSERT_GT(satin.rounds(), 0u);
  ASSERT_GT(injector->injected(fault::FaultKind::kBitFlip), 0u);
  EXPECT_EQ(satin.checker().alarm_count(AlarmKind::kConfirmed), 0u);
  EXPECT_GT(satin.checker().alarm_count(AlarmKind::kTransient), 0u);
  EXPECT_GT(satin.checker().retries_performed(), 0u);
  for (const Alarm& a : satin.checker().alarms()) {
    EXPECT_EQ(a.kind, AlarmKind::kTransient);
    EXPECT_GE(a.retries, 1);
  }
  for (const RoundRecord& r : satin.round_records()) {
    if (r.alarm) {
      EXPECT_TRUE(r.transient);
    }
  }
}

TEST(SatinResilience, PersistentTamperStaysConfirmedThroughRetries) {
  // A real rootkit survives every rescan: the retry budget must not
  // soften genuine detections into transients.
  scenario::Scenario s;
  SatinConfig config;
  config.tp_s = 0.5;
  config.resilience.max_scan_retries = 2;
  Satin satin(s.platform(), s.kernel(), s.tsp(), config);
  satin.start();
  attack::Rootkit rootkit(s.os(), s.platform().rng().fork("resilience"));
  rootkit.add_gettid_trace();
  rootkit.install();
  while (satin.checker().check_count(14) == 0 &&
         s.now() < Time::from_sec(60)) {
    s.run_for(Duration::from_sec(1));
  }
  ASSERT_GT(satin.checker().check_count(14), 0u);
  EXPECT_GT(satin.checker().alarm_count(AlarmKind::kConfirmed), 0u);
  EXPECT_EQ(satin.checker().alarm_count(AlarmKind::kTransient), 0u);
  for (const Alarm& a : satin.checker().alarms()) {
    EXPECT_EQ(a.kind, AlarmKind::kConfirmed);
    EXPECT_EQ(a.retries, 2);  // budget exhausted before confirming
  }
}

TEST(SatinResilience, OfflineCoreDegradesAndResorbs) {
  scenario::Scenario s;
  const auto injector =
      fault::install_from_spec(s.platform(), "core-off@5s+10s:core=1");
  SatinConfig config;
  config.tp_s = 0.5;
  config.resilience.watchdog = true;
  config.resilience.adapt_offline = true;
  Satin satin(s.platform(), s.kernel(), s.tsp(), config);
  satin.start();
  s.run_for(Duration::from_sec(40));
  // Rounds kept flowing throughout (~2/s; be generous).
  EXPECT_GE(satin.rounds(), 40u);
  std::set<hw::CoreId> during_outage;
  std::set<hw::CoreId> after_return;
  for (const RoundRecord& r : satin.round_records()) {
    // Interior margins: the drop/resorb happens on watchdog ticks, not
    // exactly at the window edges.
    if (r.entry > Time::from_sec(7) && r.entry < Time::from_sec(15)) {
      during_outage.insert(r.core);
    }
    if (r.entry > Time::from_sec(20)) after_return.insert(r.core);
  }
  EXPECT_EQ(during_outage.count(1), 0u)
      << "no round may run on the powered-off core";
  EXPECT_GE(during_outage.size(), 4u) << "survivors keep introspecting";
  EXPECT_EQ(after_return.count(1), 1u) << "core 1 must rejoin the rotation";
}

TEST(SatinResilience, ResilienceKnobsOffAreBitIdenticalToBaseline) {
  // An explicitly default ResilienceConfig must not change a single draw.
  auto entries = [](const SatinConfig& config) {
    scenario::Scenario s;
    Satin satin(s.platform(), s.kernel(), s.tsp(), config);
    satin.start();
    s.run_for(Duration::from_sec(30));
    std::vector<Time> out;
    for (const RoundRecord& r : satin.round_records()) out.push_back(r.entry);
    return out;
  };
  SatinConfig base;
  base.tp_s = 0.5;
  SatinConfig explicit_off = base;
  explicit_off.resilience = ResilienceConfig{};
  const auto a = entries(base);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, entries(explicit_off));
}

TEST(SatinResilience, EmptyAreaSetFailsFastWithClearError) {
  // Every path that could hand SATIN zero areas is rejected before any
  // round can divide by the area count.
  scenario::Scenario s;
  EXPECT_THROW(IntegrityChecker(s.platform(), s.kernel(), {}),
               std::invalid_argument);
  // A constructed Satin always has a positive area count, and the
  // full-cycle counter is well-defined from round zero.
  Satin satin(s.platform(), s.kernel(), s.tsp(), SatinConfig{});
  ASSERT_GT(satin.area_count(), 0);
  EXPECT_EQ(satin.full_cycles(), 0u);
}

TEST(SatinResilience, WatchdogChainStopsWithSatin) {
  scenario::Scenario s;
  SatinConfig config;
  config.tp_s = 0.5;
  config.resilience.watchdog = true;
  Satin satin(s.platform(), s.kernel(), s.tsp(), config);
  satin.start();
  s.run_for(Duration::from_sec(5));
  satin.stop();
  const std::uint64_t rounds = satin.rounds();
  s.run_for(Duration::from_sec(10));
  EXPECT_EQ(satin.rounds(), rounds);
  EXPECT_EQ(satin.watchdog_fires(), 0u);
}

}  // namespace
}  // namespace satin::core
