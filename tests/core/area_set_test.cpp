#include "core/area_set.h"

#include <gtest/gtest.h>

#include <set>

namespace satin::core {
namespace {

sim::Rng rng() { return sim::Rng(99); }

TEST(KernelAreaSet, EachCycleCoversEveryAreaOnce) {
  KernelAreaSet set(19, rng());
  for (int cycle = 0; cycle < 5; ++cycle) {
    std::set<int> seen;
    for (int i = 0; i < 19; ++i) seen.insert(set.take_next());
    EXPECT_EQ(seen.size(), 19u) << "cycle " << cycle;
    EXPECT_EQ(*seen.begin(), 0);
    EXPECT_EQ(*seen.rbegin(), 18);
  }
}

TEST(KernelAreaSet, RemainingShrinksAndRefills) {
  KernelAreaSet set(4, rng());
  EXPECT_EQ(set.remaining(), 4u);
  set.take_next();
  set.take_next();
  EXPECT_EQ(set.remaining(), 2u);
  set.take_next();
  set.take_next();
  EXPECT_EQ(set.remaining(), 0u);
  EXPECT_EQ(set.cycles_completed(), 0u);
  set.take_next();  // triggers refill
  EXPECT_EQ(set.remaining(), 3u);
  EXPECT_EQ(set.cycles_completed(), 1u);
}

TEST(KernelAreaSet, RandomOrderVariesAcrossCycles) {
  KernelAreaSet set(19, rng());
  std::vector<int> first, second;
  for (int i = 0; i < 19; ++i) first.push_back(set.take_next());
  for (int i = 0; i < 19; ++i) second.push_back(set.take_next());
  EXPECT_NE(first, second);
}

TEST(KernelAreaSet, OrderedModeIsAscending) {
  KernelAreaSet set(6, rng());
  set.set_randomized(false);
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (int i = 0; i < 6; ++i) EXPECT_EQ(set.take_next(), i);
  }
}

TEST(KernelAreaSet, SingleAreaAlwaysZero) {
  KernelAreaSet set(1, rng());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(set.take_next(), 0);
  EXPECT_EQ(set.cycles_completed(), 9u);
}

TEST(KernelAreaSet, RejectsEmpty) {
  EXPECT_THROW(KernelAreaSet(0, rng()), std::invalid_argument);
}

TEST(KernelAreaSet, SelectionIsUnpredictablyUniform) {
  // Over many cycles every area appears in the first slot roughly equally
  // often — no recognizable pattern for the normal world to learn.
  KernelAreaSet set(8, rng());
  std::map<int, int> first_slot;
  for (int cycle = 0; cycle < 4000; ++cycle) {
    ++first_slot[set.take_next()];
    for (int i = 1; i < 8; ++i) set.take_next();
  }
  for (const auto& [area, count] : first_slot) {
    EXPECT_NEAR(count, 500, 110) << "area " << area;
  }
}

}  // namespace
}  // namespace satin::core
