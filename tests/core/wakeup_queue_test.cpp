#include "core/wakeup_queue.h"

#include <gtest/gtest.h>

#include <map>

namespace satin::core {
namespace {

using sim::Duration;
using sim::Time;

WakeUpQueue make_queue(double tp_s = 8.0) {
  return WakeUpQueue(6, Duration::from_sec_f(tp_s), sim::Rng(7));
}

TEST(WakeUpQueue, BootAssignsEveryCoreAFutureTime) {
  WakeUpQueue q = make_queue();
  const auto times = q.boot_times(Time::from_sec(1));
  ASSERT_EQ(times.size(), 6u);
  for (const Time& t : times) EXPECT_GE(t, Time::from_sec(1));
  EXPECT_EQ(q.generations(), 1u);
}

TEST(WakeUpQueue, ConsecutiveRoundGapsWithinTwoTp) {
  // §V-C: "the interval between two consecutive rounds of introspection
  // is among [0, 2*tp]".
  WakeUpQueue q = make_queue(8.0);
  auto times = q.boot_times(Time::zero());
  std::vector<Time> all(times.begin(), times.end());
  // Pull several generations by having each core extract in slot order.
  for (int gen = 0; gen < 40; ++gen) {
    for (int c = 0; c < 6; ++c) {
      all.push_back(q.next_wake_for(c, all.back()));
    }
  }
  std::sort(all.begin(), all.end());
  for (std::size_t i = 1; i < all.size(); ++i) {
    const double gap = (all[i] - all[i - 1]).sec();
    EXPECT_GE(gap, 0.0);
    EXPECT_LE(gap, 16.0 + 1e-9);
  }
}

TEST(WakeUpQueue, MeanGapApproachesTp) {
  WakeUpQueue q = make_queue(8.0);
  auto times = q.boot_times(Time::zero());
  std::vector<Time> all(times.begin(), times.end());
  for (int gen = 0; gen < 300; ++gen) {
    for (int c = 0; c < 6; ++c) all.push_back(q.next_wake_for(c, all.back()));
  }
  std::sort(all.begin(), all.end());
  const double span = (all.back() - all.front()).sec();
  const double mean_gap = span / static_cast<double>(all.size() - 1);
  EXPECT_NEAR(mean_gap, 8.0, 0.5);
}

TEST(WakeUpQueue, DeterministicModeIsStrictlyPeriodic) {
  WakeUpQueue q = make_queue(8.0);
  q.set_randomized(false);
  const auto times = q.boot_times(Time::zero());
  std::vector<Time> sorted(times.begin(), times.end());
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(sorted[i], Time::from_sec(8) * static_cast<int>(i + 1));
  }
}

TEST(WakeUpQueue, AssignmentIsAFreshPermutationPerGeneration) {
  // Across generations, each core should see varied slot positions — the
  // wake order must not leak a fixed pattern.
  WakeUpQueue q = make_queue(1.0);
  auto times = q.boot_times(Time::zero());
  std::map<int, std::set<int>> core_slots;
  for (int gen = 0; gen < 50; ++gen) {
    std::vector<std::pair<Time, int>> order;
    for (int c = 0; c < 6; ++c) {
      order.emplace_back(q.next_wake_for(c, times.back()), c);
    }
    std::sort(order.begin(), order.end());
    for (int slot = 0; slot < 6; ++slot) {
      core_slots[order[static_cast<std::size_t>(slot)].second].insert(slot);
    }
  }
  for (const auto& [core, slots] : core_slots) {
    EXPECT_GE(slots.size(), 4u) << "core " << core
                                << " stuck in few slots: not random";
  }
}

TEST(WakeUpQueue, FastCoreMayRunAheadIntoNextGeneration) {
  // A fast core that laps a slow core's round must not deadlock the
  // queue: it pre-generates the following slot generation.
  WakeUpQueue q = make_queue(1.0);
  q.boot_times(Time::zero());
  const Time first = q.next_wake_for(0, Time::from_sec(1));
  const Time second = q.next_wake_for(0, first);
  EXPECT_GT(second, first);
  EXPECT_EQ(q.generations(), 3u);
}

TEST(WakeUpQueue, ExtractBeforeBootThrows) {
  WakeUpQueue q = make_queue(1.0);
  EXPECT_THROW(q.next_wake_for(0, Time::zero()), std::logic_error);
}

TEST(WakeUpQueue, BootTwiceThrows) {
  WakeUpQueue q = make_queue(1.0);
  q.boot_times(Time::zero());
  EXPECT_THROW(q.boot_times(Time::zero()), std::logic_error);
}

TEST(WakeUpQueue, GenerationsAdvanceWhenExhausted) {
  WakeUpQueue q = make_queue(1.0);
  q.boot_times(Time::zero());
  EXPECT_EQ(q.generations(), 1u);
  for (int c = 0; c < 6; ++c) q.next_wake_for(c, Time::from_sec(1));
  EXPECT_EQ(q.generations(), 2u);
  q.next_wake_for(3, Time::from_sec(20));
  EXPECT_EQ(q.generations(), 3u);
}

TEST(WakeUpQueue, NewGenerationStartsAfterPreviousSlots) {
  WakeUpQueue q = make_queue(2.0);
  const auto boot = q.boot_times(Time::zero());
  const Time last_boot = *std::max_element(boot.begin(), boot.end());
  for (int c = 0; c < 6; ++c) {
    EXPECT_GE(q.next_wake_for(c, boot[static_cast<std::size_t>(c)]),
              last_boot);
  }
}

TEST(WakeUpQueue, Validation) {
  EXPECT_THROW(WakeUpQueue(0, Duration::from_sec(1), sim::Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(WakeUpQueue(4, Duration::zero(), sim::Rng(1)),
               std::invalid_argument);
  WakeUpQueue q = make_queue();
  q.boot_times(Time::zero());
  EXPECT_THROW(q.next_wake_for(-1, Time::zero()), std::out_of_range);
  EXPECT_THROW(q.next_wake_for(6, Time::zero()), std::out_of_range);
}

TEST(WakeUpQueue, OfflineCoreCannotExtract) {
  WakeUpQueue q = make_queue(1.0);
  q.boot_times(Time::zero());
  q.set_core_online(2, false);
  EXPECT_THROW(q.next_wake_for(2, Time::from_sec(1)), std::logic_error);
  q.set_core_online(2, true);
  EXPECT_GT(q.next_wake_for(2, Time::from_sec(1)), Time::zero());
}

TEST(WakeUpQueue, AllCoresOfflineThrowsInsteadOfDeadlocking) {
  WakeUpQueue q = make_queue(1.0);
  for (int c = 0; c < 6; ++c) q.set_core_online(c, false);
  EXPECT_EQ(q.online_count(), 0);
  EXPECT_THROW(q.boot_times(Time::zero()), std::logic_error);
}

TEST(WakeUpQueue, SingleSurvivorGetsEveryGenerationWithBoundedGaps) {
  // Five of six cores die: the survivor must keep pulling slots forever,
  // and its round gaps must stay within the [0, 2*tp] envelope — the
  // system-wide cadence survives the degradation.
  WakeUpQueue q = make_queue(1.0);
  const auto boot = q.boot_times(Time::zero());
  for (int c = 1; c < 6; ++c) q.set_core_online(c, false);
  EXPECT_EQ(q.online_count(), 1);
  // (The hop from the survivor's boot slot over the dead cores' unused
  // boot slots may exceed 2*tp once; steady state must not.)
  std::vector<Time> wakes{q.next_wake_for(0, boot[0])};
  for (int i = 0; i < 200; ++i) {
    wakes.push_back(q.next_wake_for(0, wakes.back()));
  }
  for (std::size_t i = 1; i < wakes.size(); ++i) {
    const double gap = (wakes[i] - wakes[i - 1]).sec();
    EXPECT_GE(gap, 0.0);
    EXPECT_LE(gap, 2.0 + 1e-9);
  }
}

TEST(WakeUpQueue, OfflineCoreIsExcludedFromNewGenerations) {
  // While core 4 is down, the other five pull whole generations; none of
  // those slots may be booked for core 4, so when it returns it skips
  // straight past them to a generation that includes it.
  WakeUpQueue q = make_queue(1.0);
  q.set_randomized(false);  // strictly periodic: deterministic slot times
  q.boot_times(Time::zero());
  q.set_core_online(4, false);
  Time last = Time::zero();
  for (int gen = 0; gen < 5; ++gen) {
    for (int c = 0; c < 6; ++c) {
      if (c == 4) continue;
      last = std::max(last, q.next_wake_for(c, Time::from_sec(100)));
    }
  }
  q.set_core_online(4, true);
  // The resorbed core's next wake lands after every slot handed out to
  // the survivors while it was away — it never steals a booked slot.
  EXPECT_GT(q.next_wake_for(4, Time::from_sec(100)), last);
}

TEST(WakeUpQueue, ReturningCoreResorbsWithoutDoubleBooking) {
  // Deterministic mode makes every slot time unique by construction, so a
  // duplicate extracted time would prove a double-booked slot.
  WakeUpQueue q = make_queue(1.0);
  q.set_randomized(false);
  const auto boot = q.boot_times(Time::zero());
  std::vector<Time> all(boot.begin(), boot.end());
  q.set_core_online(2, false);
  for (int gen = 0; gen < 3; ++gen) {
    for (int c = 0; c < 6; ++c) {
      if (c == 2) continue;
      all.push_back(q.next_wake_for(c, Time::from_sec(100)));
    }
  }
  q.set_core_online(2, true);
  for (int gen = 0; gen < 3; ++gen) {
    for (int c = 0; c < 6; ++c) {
      all.push_back(q.next_wake_for(c, Time::from_sec(100)));
    }
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
      << "two cores were handed the same slot";
}

TEST(WakeUpQueue, ToggleBeforeBootMatchesAFreshQueue) {
  // Taking a core down and back up before any generation exists must not
  // consume a single RNG draw: the schedule stays bit-identical.
  WakeUpQueue toggled = make_queue(4.0);
  toggled.set_core_online(3, false);
  toggled.set_core_online(3, true);
  WakeUpQueue fresh = make_queue(4.0);
  const auto boot_a = toggled.boot_times(Time::zero());
  const auto boot_b = fresh.boot_times(Time::zero());
  EXPECT_EQ(boot_a, boot_b);
  for (int gen = 0; gen < 10; ++gen) {
    for (int c = 0; c < 6; ++c) {
      EXPECT_EQ(toggled.next_wake_for(c, Time::from_sec(100)),
                fresh.next_wake_for(c, Time::from_sec(100)));
    }
  }
}

TEST(WakeUpQueue, OnlineValidation) {
  WakeUpQueue q = make_queue();
  EXPECT_THROW(q.set_core_online(-1, false), std::out_of_range);
  EXPECT_THROW(q.set_core_online(6, false), std::out_of_range);
  EXPECT_THROW(q.core_online(-1), std::out_of_range);
  EXPECT_TRUE(q.core_online(0));
  EXPECT_EQ(q.online_count(), 6);
  q.set_core_online(5, false);
  EXPECT_FALSE(q.core_online(5));
  EXPECT_EQ(q.online_count(), 5);
}

}  // namespace
}  // namespace satin::core
