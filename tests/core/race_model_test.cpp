// Eq. 1 / Eq. 2 closed forms against the paper's §IV-C arithmetic.
#include "core/race_model.h"

#include <gtest/gtest.h>

namespace satin::core {
namespace {

RaceParams paper_worst_case() { return worst_case_params(hw::TimingParams{}); }

TEST(RaceModel, WorstCaseUsesPaperConstants) {
  const RaceParams p = paper_worst_case();
  EXPECT_DOUBLE_EQ(p.ts_switch_s, 3.60e-6);
  EXPECT_DOUBLE_EQ(p.ts_1byte_s, 6.67e-9);
  EXPECT_DOUBLE_EQ(p.tns_sched_s, 2.0e-4);
  EXPECT_DOUBLE_EQ(p.tns_threshold_s, 1.8e-3);
  EXPECT_DOUBLE_EQ(p.tns_recover_s, 6.13e-3);
  EXPECT_DOUBLE_EQ(p.tns_delay_s(), 2.0e-3);
}

TEST(RaceModel, MaxSafeAreaMatchesPaper) {
  // §IV-C: "we have S <= 1218351 bytes".
  EXPECT_EQ(max_safe_area_bytes(paper_worst_case()), 1'218'351u);
}

TEST(RaceModel, UnprotectedFractionIsNinetyPercent) {
  // §IV-C: "nearly 1 - 1218351/11916240 ~ 90% of the kernel space is not
  // protected".
  const double f = unprotected_fraction(paper_worst_case(), 11'916'240);
  EXPECT_NEAR(f, 0.8978, 0.0005);
}

TEST(RaceModel, EscapeConditionConsistentWithBound) {
  const RaceParams p = paper_worst_case();
  const std::size_t bound = max_safe_area_bytes(p);
  EXPECT_FALSE(attacker_escapes(p, bound - 1));
  EXPECT_TRUE(attacker_escapes(p, bound + 1));
}

TEST(RaceModel, SmallKernelFullyProtected) {
  EXPECT_DOUBLE_EQ(unprotected_fraction(paper_worst_case(), 100'000), 0.0);
  EXPECT_DOUBLE_EQ(unprotected_fraction(paper_worst_case(), 0), 0.0);
}

TEST(RaceModel, FasterRecoveryShrinksSafeArea) {
  RaceParams p = paper_worst_case();
  const std::size_t slow = max_safe_area_bytes(p);
  p.tns_recover_s = 1.0e-3;  // a nimbler attacker
  EXPECT_LT(max_safe_area_bytes(p), slow);
}

TEST(RaceModel, FasterDefenderGrowsSafeArea) {
  RaceParams p = paper_worst_case();
  const std::size_t base = max_safe_area_bytes(p);
  p.ts_1byte_s /= 2.0;
  EXPECT_GT(max_safe_area_bytes(p), 1.9 * base);
}

TEST(RaceModel, LargerThresholdHelpsDefender) {
  // A sloppier prober (larger Tns_threshold) detects later, giving the
  // defender more scanning room.
  RaceParams p = paper_worst_case();
  const std::size_t base = max_safe_area_bytes(p);
  p.tns_threshold_s *= 2.0;
  EXPECT_GT(max_safe_area_bytes(p), base);
}

TEST(RaceModel, DegenerateParamsGiveZero) {
  RaceParams p;
  p.ts_switch_s = 1.0;
  p.ts_1byte_s = 1e-9;
  // Recovery + delay shorter than the switch itself.
  p.tns_sched_s = p.tns_threshold_s = p.tns_recover_s = 0.0;
  EXPECT_EQ(max_safe_area_bytes(p), 0u);
  EXPECT_DOUBLE_EQ(unprotected_fraction(p, 1000), 1.0);
}

TEST(RaceModel, EscapeMonotoneInS) {
  const RaceParams p = paper_worst_case();
  bool prev = attacker_escapes(p, 0);
  EXPECT_FALSE(prev);
  for (std::size_t s = 0; s <= 2'000'000; s += 100'000) {
    const bool now = attacker_escapes(p, s);
    EXPECT_GE(now, prev) << "escape must be monotone in S";
    prev = now;
  }
  EXPECT_TRUE(prev);
}

TEST(RaceModel, PaperAreaLayoutIsSafeEverywhere) {
  // Every default area, scanned even at A57 max speed, finishes before
  // the §IV-C worst-case attacker hides: Eq. 1 fails for S = area size.
  const RaceParams p = paper_worst_case();
  for (std::size_t size : {876'616u, 431'360u, 730'000u}) {
    EXPECT_FALSE(attacker_escapes(p, size)) << size;
  }
  // While the PKM whole-kernel scan is hopeless.
  EXPECT_TRUE(attacker_escapes(p, 11'916'240u));
}

}  // namespace
}  // namespace satin::core
