// SATIN orchestration on a quiet system (no attacker): rounds, records,
// coverage, configuration knobs.
#include "core/satin.h"

#include <gtest/gtest.h>

#include <set>

#include "scenario/scenario.h"

namespace satin::core {
namespace {

using sim::Duration;
using sim::Time;

struct SatinFixture {
  explicit SatinFixture(SatinConfig config = {})
      : satin(s.platform(), s.kernel(), s.tsp(), config) {}
  scenario::Scenario s;
  Satin satin;
};

TEST(Satin, DefaultConfigMatchesPaperGeometry) {
  SatinFixture f;
  EXPECT_EQ(f.satin.area_count(), 19);
  // tp = Tgoal / m = 152 / 19 = 8 s.
  EXPECT_NEAR(f.satin.tp().sec(), 8.0, 1e-9);
}

TEST(Satin, GuaranteedScanPeriodNearPaper152s) {
  // §VI-B1: "the entire time is approximately 152 s".
  SatinFixture f;
  const double t = f.satin.guaranteed_scan_period(hw::CoreType::kBigA57).sec();
  EXPECT_GT(t, 151.9);
  EXPECT_LT(t, 152.3);
}

TEST(Satin, RunsRoundsAtExpectedRate) {
  SatinFixture f;
  f.satin.start();
  f.s.run_for(Duration::from_sec(160));
  // ~20 rounds in 160 s at tp = 8 s (randomized, so allow slack).
  EXPECT_GE(f.satin.rounds(), 12u);
  EXPECT_LE(f.satin.rounds(), 30u);
  EXPECT_EQ(f.satin.alarm_count(), 0u) << "clean system must not alarm";
}

TEST(Satin, EveryCycleCoversAllAreas) {
  SatinConfig config;
  config.tp_s = 0.5;  // fast rounds for the test
  SatinFixture f(config);
  f.satin.start();
  while (f.satin.full_cycles() < 2 && f.s.now() < Time::from_sec(60)) {
    f.s.run_for(Duration::from_sec(1));
  }
  ASSERT_GE(f.satin.full_cycles(), 2u);
  std::set<int> first_cycle;
  for (std::size_t i = 0; i < 19; ++i) {
    first_cycle.insert(f.satin.round_records()[i].area);
  }
  EXPECT_EQ(first_cycle.size(), 19u);
  for (int a = 0; a < 19; ++a) {
    EXPECT_GE(f.satin.checker().check_count(a), 1u) << "area " << a;
  }
}

TEST(Satin, RoundRecordsAreInternallyConsistent) {
  SatinConfig config;
  config.tp_s = 0.5;
  SatinFixture f(config);
  f.satin.start();
  f.s.run_for(Duration::from_sec(20));
  ASSERT_GT(f.satin.round_records().size(), 10u);
  // Records are appended at scan completion; overlapping rounds on
  // different cores may complete out of round order, but the set of round
  // numbers is exactly 1..N and completion times are non-decreasing.
  std::set<std::uint64_t> round_numbers;
  sim::Time prev_end;
  for (const RoundRecord& r : f.satin.round_records()) {
    EXPECT_TRUE(round_numbers.insert(r.round).second);
    EXPECT_GE(r.scan_end, prev_end);
    prev_end = r.scan_end;
    EXPECT_GE(r.area, 0);
    EXPECT_LT(r.area, 19);
    EXPECT_GE(r.core, 0);
    EXPECT_LT(r.core, 6);
    EXPECT_FALSE(r.alarm);
    // entry < handler_start < scan_end; switch cost within §IV-B1 range.
    const double sw = (r.handler_start - r.entry).sec();
    EXPECT_GE(sw, 2.38e-6);
    EXPECT_LE(sw, 3.60e-6);
    EXPECT_GT(r.scan_end, r.handler_start);
    // Scan duration bounded by area size at the slowest calibrated speed.
    const double scan = (r.scan_end - r.handler_start).sec();
    EXPECT_LT(scan, 876'616 * 1.14e-8 + 1e-6);
    EXPECT_GT(scan, 431'360 * 6.67e-9 - 1e-6);
  }
  EXPECT_EQ(*round_numbers.begin(), 1u);
  EXPECT_EQ(*round_numbers.rbegin(), round_numbers.size());
}

TEST(Satin, MultiCoreModeUsesAllCores) {
  SatinConfig config;
  config.tp_s = 0.2;
  SatinFixture f(config);
  f.satin.start();
  f.s.run_for(Duration::from_sec(30));
  std::set<hw::CoreId> cores;
  for (const RoundRecord& r : f.satin.round_records()) cores.insert(r.core);
  EXPECT_EQ(cores.size(), 6u);
}

TEST(Satin, FixedCoreModeStaysOnOneCore) {
  SatinConfig config;
  config.multi_core = false;
  config.fixed_core = 5;
  config.tp_s = 0.2;
  SatinFixture f(config);
  f.satin.start();
  f.s.run_for(Duration::from_sec(10));
  ASSERT_GT(f.satin.rounds(), 5u);
  for (const RoundRecord& r : f.satin.round_records()) {
    EXPECT_EQ(r.core, 5);
  }
}

TEST(Satin, NonRandomizedWakeIsStrictlyPeriodic) {
  SatinConfig config;
  config.multi_core = false;
  config.fixed_core = 4;
  config.randomize_wake = false;
  config.tp_s = 1.0;
  SatinFixture f(config);
  f.satin.start();
  f.s.run_for(Duration::from_sec(12));
  const auto& records = f.satin.round_records();
  ASSERT_GE(records.size(), 8u);
  for (std::size_t i = 1; i < records.size(); ++i) {
    const double gap = (records[i].entry - records[i - 1].entry).sec();
    // tp + (round duration); jitter only from the scan itself.
    EXPECT_NEAR(gap, 1.0, 0.02);
  }
}

TEST(Satin, RandomizedWakeGapsSpreadOverTwoTp) {
  SatinConfig config;
  config.multi_core = false;
  config.fixed_core = 4;
  config.tp_s = 0.5;
  SatinFixture f(config);
  f.satin.start();
  f.s.run_for(Duration::from_sec(60));
  const auto& records = f.satin.round_records();
  ASSERT_GE(records.size(), 40u);
  double min_gap = 1e9, max_gap = 0.0;
  for (std::size_t i = 1; i < records.size(); ++i) {
    const double gap = (records[i].entry - records[i - 1].entry).sec();
    min_gap = std::min(min_gap, gap);
    max_gap = std::max(max_gap, gap);
    EXPECT_LE(gap, 1.1);
  }
  EXPECT_LT(min_gap, 0.35);
  EXPECT_GT(max_gap, 0.65);
}

TEST(Satin, StopHaltsRounds) {
  SatinConfig config;
  config.tp_s = 0.2;
  SatinFixture f(config);
  f.satin.start();
  f.s.run_for(Duration::from_sec(5));
  f.satin.stop();
  const std::uint64_t rounds = f.satin.rounds();
  f.s.run_for(Duration::from_sec(5));
  EXPECT_EQ(f.satin.rounds(), rounds);
  EXPECT_FALSE(f.satin.running());
}

TEST(Satin, StartTwiceThrows) {
  SatinFixture f;
  f.satin.start();
  EXPECT_THROW(f.satin.start(), std::logic_error);
}

TEST(Satin, AreaOfOffsetFindsSyscallTable) {
  SatinFixture f;
  const std::size_t off =
      f.s.kernel().syscall_entry_offset(os::kGettidSyscallNr);
  EXPECT_EQ(f.satin.area_of_offset(off), 14);
}

TEST(Satin, PkmBaselineConfigShape) {
  const SatinConfig config = make_pkm_baseline_config(8.0, false, false, 5);
  SatinFixture f(config);
  EXPECT_EQ(f.satin.area_count(), 1);
  EXPECT_NEAR(f.satin.tp().sec(), 8.0, 1e-9);
  f.satin.start();
  f.s.run_for(Duration::from_sec(20));
  EXPECT_GE(f.satin.rounds(), 2u);
  for (const RoundRecord& r : f.satin.round_records()) {
    EXPECT_EQ(r.core, 5);
    EXPECT_EQ(r.area, 0);
    // Whole-kernel pass: ~80 ms on the A57 (§III-B1's 8.04e-2 s).
    const double scan = (r.scan_end - r.handler_start).sec();
    EXPECT_GT(scan, 0.075);
    EXPECT_LT(scan, 0.095);
  }
}

TEST(Satin, SecureTimerKeepsReprogrammingItself) {
  // Self-activation never needs the normal world: after each round the
  // timer is armed again from within the secure world.
  SatinConfig config;
  config.tp_s = 0.3;
  SatinFixture f(config);
  f.satin.start();
  f.s.run_for(Duration::from_sec(10));
  const std::uint64_t first = f.satin.rounds();
  f.s.run_for(Duration::from_sec(10));
  EXPECT_GT(f.satin.rounds(), first);
}

}  // namespace
}  // namespace satin::core
