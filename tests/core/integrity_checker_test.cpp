#include "core/integrity_checker.h"

#include <gtest/gtest.h>

#include "os/system_map.h"

namespace satin::core {
namespace {

struct Fixture {
  Fixture()
      : image(os::make_default_map()),
        areas(partition_by_regions(image.map(), 1'218'351)),
        checker(platform, image, areas) {
    image.install(platform.memory());
  }
  hw::Platform platform;
  os::KernelImage image;
  std::vector<Area> areas;
  IntegrityChecker checker;
};

TEST(IntegrityChecker, RequiresAuthorizationBeforeChecking) {
  Fixture f;
  EXPECT_FALSE(f.checker.authorized());
  EXPECT_THROW(f.checker.check_area_async(0, 0, [](const CheckOutcome&) {}),
               std::logic_error);
  f.checker.authorize_boot_state();
  EXPECT_TRUE(f.checker.authorized());
  EXPECT_THROW(f.checker.authorize_boot_state(), std::logic_error);
}

TEST(IntegrityChecker, CleanAreaPasses) {
  Fixture f;
  f.checker.authorize_boot_state();
  bool done = false;
  f.checker.check_area_async(5, 14, [&](const CheckOutcome& outcome) {
    done = true;
    EXPECT_TRUE(outcome.ok);
    EXPECT_EQ(outcome.area, 14);
    EXPECT_EQ(outcome.core, 5);
  });
  f.platform.engine().run_until(sim::Time::from_sec(1));
  EXPECT_TRUE(done);
  EXPECT_EQ(f.checker.checks_completed(), 1u);
  EXPECT_EQ(f.checker.check_count(14), 1u);
  EXPECT_TRUE(f.checker.alarms().empty());
}

TEST(IntegrityChecker, CorruptedByteRaisesAlarm) {
  Fixture f;
  f.checker.authorize_boot_state();
  // Hijack the GETTID entry (area 14).
  const std::size_t off =
      f.image.syscall_entry_offset(os::kGettidSyscallNr);
  std::vector<std::uint8_t> evil(8, 0xEE);
  f.platform.memory().write(f.platform.engine().now(), off, evil);
  bool ok = true;
  f.checker.check_area_async(4, 14,
                             [&](const CheckOutcome& o) { ok = o.ok; });
  f.platform.engine().run_until(sim::Time::from_sec(1));
  EXPECT_FALSE(ok);
  ASSERT_EQ(f.checker.alarms().size(), 1u);
  EXPECT_EQ(f.checker.alarms()[0].area, 14);
  EXPECT_EQ(f.checker.alarms()[0].core, 4);
}

TEST(IntegrityChecker, CorruptionInOtherAreaNotSeenByThisScan) {
  Fixture f;
  f.checker.authorize_boot_state();
  const std::size_t off =
      f.image.syscall_entry_offset(os::kGettidSyscallNr);  // area 14
  std::vector<std::uint8_t> evil(8, 0xEE);
  f.platform.memory().write(f.platform.engine().now(), off, evil);
  bool ok = false;
  f.checker.check_area_async(4, 3, [&](const CheckOutcome& o) { ok = o.ok; });
  f.platform.engine().run_until(sim::Time::from_sec(1));
  EXPECT_TRUE(ok) << "area 3 does not contain the hijack";
}

TEST(IntegrityChecker, EvenSingleFlippedBitDetected) {
  Fixture f;
  f.checker.authorize_boot_state();
  const Area& area = f.areas[7];
  const std::size_t off = area.offset + area.size / 2;
  std::vector<std::uint8_t> flip{static_cast<std::uint8_t>(
      f.platform.memory().read(off) ^ 0x01)};
  f.platform.memory().write(f.platform.engine().now(), off, flip);
  bool ok = true;
  f.checker.check_area_async(0, 7, [&](const CheckOutcome& o) { ok = o.ok; });
  f.platform.engine().run_until(sim::Time::from_sec(1));
  EXPECT_FALSE(ok);
}

TEST(IntegrityChecker, PerAreaCountsAccumulate) {
  Fixture f;
  f.checker.authorize_boot_state();
  for (int i = 0; i < 3; ++i) {
    f.checker.check_area_async(5, 2, [](const CheckOutcome&) {});
    f.platform.engine().run_until(f.platform.engine().now() +
                                  sim::Duration::from_sec(1));
  }
  EXPECT_EQ(f.checker.check_count(2), 3u);
  EXPECT_EQ(f.checker.check_count(3), 0u);
  EXPECT_EQ(f.checker.checks_completed(), 3u);
}

TEST(IntegrityChecker, RejectsEmptyAreas) {
  hw::Platform platform;
  os::KernelImage image(os::make_default_map());
  EXPECT_THROW(IntegrityChecker(platform, image, {}), std::invalid_argument);
}

TEST(IntegrityChecker, AlternativeHashAlsoDetects) {
  hw::Platform platform;
  os::KernelImage image(os::make_default_map());
  image.install(platform.memory());
  auto areas = partition_by_regions(image.map(), 1'218'351);
  IntegrityChecker checker(platform, image, areas, secure::HashKind::kFnv1a,
                           secure::ScanStrategy::kSnapshotThenHash);
  checker.authorize_boot_state();
  const std::size_t off = image.syscall_entry_offset(os::kGettidSyscallNr);
  std::vector<std::uint8_t> evil(8, 0xEE);
  platform.memory().write(platform.engine().now(), off, evil);
  bool ok = true;
  checker.check_area_async(5, 14, [&](const CheckOutcome& o) { ok = o.ok; });
  platform.engine().run_until(sim::Time::from_sec(1));
  EXPECT_FALSE(ok);
}

}  // namespace
}  // namespace satin::core
