#include "campaign/journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include <unistd.h>

#include "campaign/spec.h"
#include "campaign/trial.h"

namespace satin::campaign {
namespace {

TrialResult sample_result(std::uint64_t index) {
  TrialResult r;
  r.index = index;
  r.seed = 0x2bb4fdf6c4a3ec89ull ^ index;
  r.report.rounds = 14 + index;
  r.report.alarms = 3;
  r.report.target_area = 7;
  r.report.target_area_rounds = 2;
  r.report.target_area_alarms = 2;
  r.report.avg_target_gap_s = 141.25;
  r.report.secure_stays = 14;
  r.report.prober_detections = 15;
  r.report.evasions_started = 13;
  r.report.rearms = 12;
  r.report.sim_seconds = 0.1 + 0.2;  // a value decimal text would mangle
  r.report.confirmed_alarms = 1;
  r.report.transient_alarms = 2;
  r.report.watchdog_fires = 1;
  r.report.scan_retries = 4;
  r.faults_injected = 9;
  return r;
}

TEST(TrialRecord, EncodeDecodeRoundTripsEveryFieldBitExactly) {
  const TrialResult in = sample_result(3);
  TrialResult out;
  ASSERT_TRUE(decode_trial_record(encode_trial_record(in), out));
  EXPECT_EQ(out.index, in.index);
  EXPECT_EQ(out.seed, in.seed);
  EXPECT_EQ(out.report.rounds, in.report.rounds);
  EXPECT_EQ(out.report.alarms, in.report.alarms);
  EXPECT_EQ(out.report.target_area, in.report.target_area);
  EXPECT_EQ(out.report.target_area_alarms, in.report.target_area_alarms);
  EXPECT_EQ(out.report.scan_retries, in.report.scan_retries);
  EXPECT_EQ(out.faults_injected, in.faults_injected);
  // Doubles travel as raw bits: exact equality, not approximate.
  EXPECT_EQ(out.report.avg_target_gap_s, in.report.avg_target_gap_s);
  EXPECT_EQ(out.report.sim_seconds, in.report.sim_seconds);
  // And the re-encoding is byte-identical (resume == original).
  EXPECT_EQ(encode_trial_record(out), encode_trial_record(in));
}

TEST(TrialRecord, DecodeRejectsDamage) {
  const std::string line = encode_trial_record(sample_result(0));
  TrialResult out;
  std::string why;
  // Flipped payload byte: checksum catches it.
  std::string bad = line;
  bad[10] = bad[10] == '0' ? '1' : '0';
  EXPECT_FALSE(decode_trial_record(bad, out, &why));
  EXPECT_FALSE(why.empty());
  // Truncation (torn write).
  EXPECT_FALSE(decode_trial_record(line.substr(0, line.size() / 2), out));
  // Bad prefix.
  EXPECT_FALSE(decode_trial_record("X" + line.substr(1), out));
  // Empty.
  EXPECT_FALSE(decode_trial_record("", out));
  // The intact line still decodes after all that.
  EXPECT_TRUE(decode_trial_record(line, out));
}

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/journal_test_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".journal";
    std::remove(path_.c_str());
    spec_ = parse_campaign_spec(R"({"trials": 8, "root_seed": 42})", "t");
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  CampaignSpec spec_;
};

TEST_F(JournalTest, AppendThenReopenReplaysCompletedTrials) {
  std::string error;
  {
    CampaignJournal journal;
    ASSERT_TRUE(journal.open(path_, spec_, &error)) << error;
    ASSERT_TRUE(journal.append(sample_result(0)));
    ASSERT_TRUE(journal.append(sample_result(5)));
    EXPECT_EQ(journal.appended(), 2u);
  }
  CampaignJournal journal;
  ASSERT_TRUE(journal.open(path_, spec_, &error)) << error;
  EXPECT_EQ(journal.appended(), 0u);
  EXPECT_EQ(journal.quarantined(), 0u);
  ASSERT_EQ(journal.completed().size(), 2u);
  EXPECT_EQ(journal.completed().count(0), 1u);
  EXPECT_EQ(journal.completed().count(5), 1u);
  EXPECT_EQ(journal.completed().at(5).report.rounds, 14u + 5u);
}

TEST_F(JournalTest, CorruptRecordIsQuarantinedOthersSurvive) {
  std::string error;
  {
    CampaignJournal journal;
    ASSERT_TRUE(journal.open(path_, spec_, &error)) << error;
    ASSERT_TRUE(journal.append(sample_result(1)));
    ASSERT_TRUE(journal.append(sample_result(2)));
  }
  // Flip one byte in the middle of record 1 (file line 2).
  std::FILE* f = std::fopen(path_.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 70, SEEK_SET);
  std::fputc('Z', f);
  std::fclose(f);

  CampaignJournal journal;
  ASSERT_TRUE(journal.open(path_, spec_, &error)) << error;
  EXPECT_EQ(journal.quarantined(), 1u);
  EXPECT_EQ(journal.completed().size(), 1u);
  EXPECT_EQ(journal.completed().count(2), 1u);
}

TEST_F(JournalTest, TornTailIsQuarantinedNotFatal) {
  std::string error;
  {
    CampaignJournal journal;
    ASSERT_TRUE(journal.open(path_, spec_, &error)) << error;
    ASSERT_TRUE(journal.append(sample_result(1)));
    ASSERT_TRUE(journal.append(sample_result(2)));
  }
  // Chop the final newline plus some bytes: the classic SIGKILL artifact.
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(::truncate(path_.c_str(), size - 9), 0);

  CampaignJournal journal;
  ASSERT_TRUE(journal.open(path_, spec_, &error)) << error;
  EXPECT_EQ(journal.quarantined(), 1u);
  EXPECT_EQ(journal.completed().size(), 1u);
  EXPECT_EQ(journal.completed().count(1), 1u);

  // The journal still appends cleanly after the torn tail... which means
  // the torn fragment must not glue onto the next record.
  ASSERT_TRUE(journal.append(sample_result(2)));
  CampaignJournal reopened;
  ASSERT_TRUE(reopened.open(path_, spec_, &error)) << error;
  EXPECT_EQ(reopened.completed().size(), 2u);
}

TEST_F(JournalTest, HeaderMismatchIsAHardError) {
  std::string error;
  {
    CampaignJournal journal;
    ASSERT_TRUE(journal.open(path_, spec_, &error)) << error;
    ASSERT_TRUE(journal.append(sample_result(0)));
  }
  CampaignSpec other = spec_;
  other.root_seed += 1;
  CampaignJournal journal;
  EXPECT_FALSE(journal.open(path_, other, &error));
  EXPECT_NE(error.find("different campaign"), std::string::npos);
}

TEST_F(JournalTest, RuntimeKnobChangesDoNotInvalidateTheJournal) {
  std::string error;
  {
    CampaignJournal journal;
    ASSERT_TRUE(journal.open(path_, spec_, &error)) << error;
  }
  CampaignSpec tweaked = spec_;
  tweaked.jobs = 16;
  tweaked.trial_timeout_s = 1.0;
  CampaignJournal journal;
  EXPECT_TRUE(journal.open(path_, tweaked, &error)) << error;
}

TEST_F(JournalTest, OutOfRangeIndexIsQuarantined) {
  std::string error;
  {
    CampaignJournal journal;
    ASSERT_TRUE(journal.open(path_, spec_, &error)) << error;
    ASSERT_TRUE(journal.append(sample_result(7)));
    // Record for a trial the spec doesn't have (trials=8, index 12).
    ASSERT_TRUE(journal.append(sample_result(12)));
  }
  CampaignJournal journal;
  ASSERT_TRUE(journal.open(path_, spec_, &error)) << error;
  EXPECT_EQ(journal.quarantined(), 1u);
  EXPECT_EQ(journal.completed().size(), 1u);
}

TEST_F(JournalTest, ReadStatusCountsDistinctCompletedTrials) {
  std::string error;
  {
    CampaignJournal journal;
    ASSERT_TRUE(journal.open(path_, spec_, &error)) << error;
    ASSERT_TRUE(journal.append(sample_result(0)));
    ASSERT_TRUE(journal.append(sample_result(3)));
    // Duplicate (orphan worker racing a resume): counted once.
    ASSERT_TRUE(journal.append(sample_result(3)));
  }
  CampaignJournal::Status status;
  ASSERT_TRUE(CampaignJournal::read_status(path_, status, &error)) << error;
  EXPECT_EQ(status.trials, 8u);
  EXPECT_EQ(status.root_seed, 42u);
  EXPECT_EQ(status.completed, 2u);
  EXPECT_EQ(status.quarantined, 0u);
}

TEST_F(JournalTest, ReadStatusRejectsMissingAndEmptyJournals) {
  CampaignJournal::Status status;
  std::string error;
  EXPECT_FALSE(CampaignJournal::read_status(path_ + ".nope", status, &error));
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  std::fclose(f);
  EXPECT_FALSE(CampaignJournal::read_status(path_, status, &error));
}

}  // namespace
}  // namespace satin::campaign
