// End-to-end supervisor tests: real fork()ed workers, real pipes, real
// SIGKILLs (via the deterministic chaos knobs). Duels are kept tiny so
// the whole file runs in seconds.
#include "campaign/supervisor.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include <unistd.h>

#include "campaign/journal.h"
#include "campaign/spec.h"

namespace satin::campaign {
namespace {

constexpr char kTinySpec[] = R"({
  "trials": 4,
  "root_seed": 42,
  "satin": {"tgoal_s": 8.0},
  "duel": {"rounds_target": 5}
})";

class SupervisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = testing::TempDir() + "/campaign_sup_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this));
    spec_ = parse_campaign_spec(kTinySpec, "tiny");
  }
  void TearDown() override {
    std::remove((base_ + ".journal").c_str());
    std::remove((base_ + ".b.journal").c_str());
    for (std::uint64_t i = 0; i < spec_.trials; ++i) {
      for (const char* j : {".journal.d", ".b.journal.d"}) {
        std::remove((base_ + j + "/trial_" + std::to_string(i) + ".met")
                        .c_str());
        std::remove((base_ + j + "/trial_" + std::to_string(i) + ".flt")
                        .c_str());
      }
    }
    ::rmdir((base_ + ".journal.d").c_str());
    ::rmdir((base_ + ".b.journal.d").c_str());
  }

  CampaignOptions options(const std::string& suffix = ".journal") {
    CampaignOptions o;
    o.journal_path = base_ + suffix;
    o.trial_timeout_s = 60.0;
    return o;
  }

  std::string base_;
  CampaignSpec spec_;
};

TEST_F(SupervisorTest, RunsACampaignToCompletion) {
  CampaignOptions o = options();
  o.jobs = 2;
  const CampaignOutcome outcome = run_campaign(spec_, o);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_FALSE(outcome.degraded);
  EXPECT_EQ(outcome.completed, spec_.trials);
  EXPECT_EQ(outcome.worker_crashes, 0u);
  EXPECT_EQ(outcome.workers_spawned, 2u);

  CampaignJournal::Status status;
  std::string error;
  ASSERT_TRUE(
      CampaignJournal::read_status(o.journal_path, status, &error)) << error;
  EXPECT_EQ(status.completed, spec_.trials);
}

TEST_F(SupervisorTest, RerunOnCompleteJournalSpawnsNothing) {
  CampaignOptions o = options();
  o.jobs = 2;
  ASSERT_TRUE(run_campaign(spec_, o).ok);
  const CampaignOutcome again = run_campaign(spec_, o);
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_EQ(again.resumed, spec_.trials);
  EXPECT_EQ(again.completed, spec_.trials);
  EXPECT_EQ(again.workers_spawned, 0u);
}

TEST_F(SupervisorTest, WorkerSigkillRetriesAndStatsStayIdentical) {
  // Reference: jobs=1, no chaos.
  CampaignOptions ref = options();
  ref.jobs = 1;
  const CampaignOutcome ref_outcome = run_campaign(spec_, ref);
  ASSERT_TRUE(ref_outcome.ok) << ref_outcome.error;

  // Chaos: two workers, one SIGKILLs itself on trial 2's first dispatch.
  CampaignOptions chaos = options(".b.journal");
  chaos.jobs = 2;
  chaos.chaos_kill_trial = 2;
  const CampaignOutcome chaos_outcome = run_campaign(spec_, chaos);
  ASSERT_TRUE(chaos_outcome.ok) << chaos_outcome.error;
  EXPECT_FALSE(chaos_outcome.degraded);
  EXPECT_GE(chaos_outcome.worker_crashes, 1u);
  EXPECT_GE(chaos_outcome.retries, 1u);
  EXPECT_EQ(chaos_outcome.completed, spec_.trials);

  // Crash identity: the two journals aggregate to byte-identical stats.
  std::string error;
  CampaignJournal a, b;
  ASSERT_TRUE(a.open(ref.journal_path, spec_, &error)) << error;
  ASSERT_TRUE(b.open(chaos.journal_path, spec_, &error)) << error;
  EXPECT_EQ(format_campaign_stats(spec_, ref_outcome, a.completed()),
            format_campaign_stats(spec_, chaos_outcome, b.completed()));
}

TEST_F(SupervisorTest, ForkBackendMatchesThePoolStats) {
  // Reference: the persistent worker pool, jobs=1.
  CampaignOptions ref = options();
  ref.jobs = 1;
  const CampaignOutcome ref_outcome = run_campaign(spec_, ref);
  ASSERT_TRUE(ref_outcome.ok) << ref_outcome.error;

  // Fork backend: one COW child per trial, groups of 2.
  CampaignOptions forked = options(".b.journal");
  forked.jobs = 2;
  forked.branches = 2;
  const CampaignOutcome fork_outcome = run_campaign(spec_, forked);
  ASSERT_TRUE(fork_outcome.ok) << fork_outcome.error;
  EXPECT_FALSE(fork_outcome.degraded);
  EXPECT_EQ(fork_outcome.completed, spec_.trials);
  // One fork per trial — the evidence the fork path (not the pool) ran.
  EXPECT_EQ(fork_outcome.workers_spawned, spec_.trials);

  std::string error;
  CampaignJournal a, b;
  ASSERT_TRUE(a.open(ref.journal_path, spec_, &error)) << error;
  ASSERT_TRUE(b.open(forked.journal_path, spec_, &error)) << error;
  EXPECT_EQ(format_campaign_stats(spec_, ref_outcome, a.completed()),
            format_campaign_stats(spec_, fork_outcome, b.completed()));
}

TEST_F(SupervisorTest, ForkBackendRefusesWarmPrefixAndChaos) {
  CampaignSpec warm = spec_;
  warm.branches = 2;
  warm.fork_prefix = 5.0;  // would break trial = f(spec, index)
  CampaignOptions o = options();
  const CampaignOutcome prefix_outcome = run_campaign(warm, o);
  EXPECT_FALSE(prefix_outcome.ok);
  EXPECT_NE(prefix_outcome.error.find("fork_prefix"), std::string::npos)
      << prefix_outcome.error;

  CampaignOptions chaos = options(".b.journal");
  chaos.branches = 2;
  chaos.chaos_kill_trial = 1;  // pool-only chaos knob
  const CampaignOutcome chaos_outcome = run_campaign(spec_, chaos);
  EXPECT_FALSE(chaos_outcome.ok);
  EXPECT_NE(chaos_outcome.error.find("chaos"), std::string::npos)
      << chaos_outcome.error;
}

TEST_F(SupervisorTest, ExhaustedRetriesDegradeInsteadOfHanging) {
  CampaignOptions o = options();
  o.jobs = 1;
  o.max_retries = 0;  // the chaos kill consumes the only attempt
  o.chaos_kill_trial = 1;
  const CampaignOutcome outcome = run_campaign(spec_, o);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_TRUE(outcome.degraded);
  ASSERT_EQ(outcome.failed_trials.size(), 1u);
  EXPECT_EQ(outcome.failed_trials[0], 1u);
  EXPECT_EQ(outcome.completed, spec_.trials - 1);

  // The failed trial is visible in the stats, not silently absent.
  CampaignJournal journal;
  std::string error;
  ASSERT_TRUE(journal.open(o.journal_path, spec_, &error)) << error;
  const std::string stats =
      format_campaign_stats(spec_, outcome, journal.completed());
  EXPECT_NE(stats.find("\"degraded\": true"), std::string::npos);
  EXPECT_NE(stats.find("\"failed_trials\": [1]"), std::string::npos);
}

TEST_F(SupervisorTest, HungWorkerIsKilledAfterTimeout) {
  CampaignOptions o = options();
  o.jobs = 1;
  o.trial_timeout_s = 1.0;
  o.chaos_hang_trial = 0;
  const CampaignOutcome outcome = run_campaign(spec_, o);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_FALSE(outcome.degraded);
  EXPECT_GE(outcome.worker_timeouts, 1u);
  EXPECT_EQ(outcome.completed, spec_.trials);
}

TEST_F(SupervisorTest, ResumeRefusesWithoutAJournal) {
  CampaignOptions o = options();
  o.require_existing_journal = true;
  const CampaignOutcome outcome = run_campaign(spec_, o);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error.find("no journal"), std::string::npos);
}

TEST(CampaignStats, WriterRefusesNonRegularFiles) {
  std::string error;
  EXPECT_FALSE(write_campaign_stats("/dev/null", "{}\n", &error));
  EXPECT_NE(error.find("non-regular"), std::string::npos);
}

TEST(CampaignStats, WriterRoundTripsThroughRename) {
  const std::string path = testing::TempDir() + "/campaign_stats_rt.json";
  std::string error;
  ASSERT_TRUE(write_campaign_stats(path, "{\"x\": 1}\n", &error)) << error;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[32] = {};
  const std::size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(buf, n), "{\"x\": 1}\n");
}

}  // namespace
}  // namespace satin::campaign
