#include "campaign/spec.h"

#include <gtest/gtest.h>

#include <string>

#include "campaign/json.h"

namespace satin::campaign {
namespace {

// Expects parse failure and returns the diagnostic, which must carry the
// source label (positions are asserted by the caller where they matter).
std::string parse_error(const std::string& text) {
  try {
    parse_campaign_spec(text, "spec.json");
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("spec.json"), std::string::npos);
    return e.what();
  }
  ADD_FAILURE() << "expected JsonError for: " << text;
  return "";
}

TEST(CampaignSpec, MinimalSpecGetsDefaults) {
  const CampaignSpec spec =
      parse_campaign_spec(R"({"trials": 4})", "spec.json");
  EXPECT_EQ(spec.trials, 4u);
  EXPECT_EQ(spec.name, "campaign");
  EXPECT_EQ(spec.jobs, 1);
  EXPECT_EQ(spec.shard_size, 1u);
  EXPECT_EQ(spec.batch, 1);
  EXPECT_EQ(spec.max_retries, 2);
  EXPECT_TRUE(spec.faults.empty());
  EXPECT_FALSE(spec.pin_first_platform_seed);
}

TEST(CampaignSpec, FullSpecRoundTripsEveryKnob) {
  const CampaignSpec spec = parse_campaign_spec(R"({
    "name": "storm",
    "trials": 16,
    "root_seed": 99,
    "jobs": 4,
    "shard_size": 2,
    "batch": 8,
    "trial_timeout_s": 33.5,
    "max_retries": 5,
    "platform": {"num_little": 4, "num_big": 2, "seed": 7},
    "satin": {"tgoal_s": 12.0, "randomize_wake": true},
    "duel": {"rounds_target": 10},
    "attacker": {"rearm_delay_s": 0.02},
    "faults": "seed=9,bitflip@10s+60s:p=0.12",
    "faults_reseed": true
  })",
                                                "spec.json");
  EXPECT_EQ(spec.name, "storm");
  EXPECT_EQ(spec.trials, 16u);
  EXPECT_EQ(spec.root_seed, 99u);
  EXPECT_EQ(spec.jobs, 4);
  EXPECT_EQ(spec.shard_size, 2u);
  EXPECT_EQ(spec.batch, 8);
  EXPECT_DOUBLE_EQ(spec.trial_timeout_s, 33.5);
  EXPECT_EQ(spec.max_retries, 5);
  EXPECT_TRUE(spec.pin_first_platform_seed);
  EXPECT_EQ(spec.duel.rounds_target, 10u);
  EXPECT_EQ(spec.faults, "seed=9,bitflip@10s+60s:p=0.12");
  EXPECT_TRUE(spec.faults_reseed);
}

TEST(CampaignSpec, MissingTrialsIsAnError) {
  EXPECT_NE(parse_error(R"({"name": "x"})").find("trials"),
            std::string::npos);
}

TEST(CampaignSpec, ZeroTrialsIsAnError) {
  parse_error(R"({"trials": 0})");
}

TEST(CampaignSpec, UnknownTopLevelKeyNamesTheKeyWithPosition) {
  const std::string what = parse_error("{\"trials\": 1,\n \"trails\": 2}");
  EXPECT_NE(what.find("trails"), std::string::npos);
  // The typo is on line 2.
  EXPECT_NE(what.find("spec.json:2"), std::string::npos);
}

TEST(CampaignSpec, UnknownNestedKeyIsAnError) {
  const std::string what =
      parse_error(R"({"trials": 1, "satin": {"tgaol_s": 57.0}})");
  EXPECT_NE(what.find("tgaol_s"), std::string::npos);
}

TEST(CampaignSpec, TypeMismatchIsPositioned) {
  const std::string what = parse_error("{\"trials\": \"six\"}");
  EXPECT_NE(what.find(":1:"), std::string::npos);
}

TEST(CampaignSpec, SyntaxErrorIsPositioned) {
  const std::string what = parse_error("{\"trials\": 1,\n}");
  EXPECT_NE(what.find("spec.json:2"), std::string::npos);
}

TEST(CampaignSpec, BadFaultPlanFailsAtSpecParseTime) {
  const std::string what = parse_error(
      R"({"trials": 1, "faults": "frobnicate@1s+2s"})");
  EXPECT_NE(what.find("frobnicate"), std::string::npos);
}

TEST(CampaignSpec, FaultsReseedWithoutFaultsIsAnError) {
  parse_error(R"({"trials": 1, "faults_reseed": true})");
}

TEST(CampaignSpec, OutOfRangeJobsIsAnError) {
  parse_error(R"({"trials": 1, "jobs": 0})");
  parse_error(R"({"trials": 1, "jobs": 1000})");
}

TEST(CampaignSpec, OutOfRangeBatchIsAnError) {
  EXPECT_NE(parse_error(R"({"trials": 1, "batch": 0})").find("batch"),
            std::string::npos);
  parse_error(R"({"trials": 1, "batch": -4})");
  parse_error(R"({"trials": 1, "batch": 5000})");
  parse_error(R"({"trials": 1, "batch": "eight"})");
}

TEST(CampaignSpec, BranchesAndForkPrefixParse) {
  const CampaignSpec spec = parse_campaign_spec(
      R"({"trials": 4, "branches": 8, "fork_prefix": 0.0})", "t");
  EXPECT_EQ(spec.branches, 8);
  EXPECT_EQ(spec.fork_prefix, 0.0);
  // Default: forking off, pool backend.
  const CampaignSpec plain = parse_campaign_spec(R"({"trials": 1})", "t");
  EXPECT_EQ(plain.branches, 0);
  EXPECT_EQ(plain.fork_prefix, 0.0);
}

TEST(CampaignSpec, OutOfRangeBranchesIsAnError) {
  EXPECT_NE(parse_error(R"({"trials": 1, "branches": -1})").find("branches"),
            std::string::npos);
  parse_error(R"({"trials": 1, "branches": 5000})");
  parse_error(R"({"trials": 1, "branches": "four"})");
  parse_error(R"({"trials": 1, "fork_prefix": -1.0})");
  parse_error(R"({"trials": 1, "fork_prefix": "warm"})");
}

TEST(CampaignSpec, ContentHashCoversResultShapingFields) {
  const CampaignSpec a = parse_campaign_spec(R"({"trials": 4})", "a");
  CampaignSpec b = a;
  EXPECT_EQ(a.content_hash(), b.content_hash());
  b.trials = 5;
  EXPECT_NE(a.content_hash(), b.content_hash());
  b = a;
  b.root_seed ^= 1;
  EXPECT_NE(a.content_hash(), b.content_hash());
  b = a;
  b.faults = "bitflip@1s+2s";
  EXPECT_NE(a.content_hash(), b.content_hash());
}

TEST(CampaignSpec, ContentHashIgnoresRuntimeKnobs) {
  const CampaignSpec a = parse_campaign_spec(R"({"trials": 4})", "a");
  CampaignSpec b = a;
  b.jobs = 16;
  b.shard_size = 8;
  b.batch = 8;
  b.trial_timeout_s = 1.0;
  b.max_retries = 9;
  b.branches = 8;
  b.fork_prefix = 3.0;
  // A resume may override all of these without invalidating the journal.
  EXPECT_EQ(a.content_hash(), b.content_hash());
}

}  // namespace
}  // namespace satin::campaign
