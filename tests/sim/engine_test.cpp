#include "sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

namespace satin::sim {
namespace {

TEST(Engine, StartsAtZero) {
  Engine engine;
  EXPECT_EQ(engine.now(), Time::zero());
  EXPECT_EQ(engine.pending_count(), 0u);
}

TEST(Engine, FiresInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(Time::from_ns(30), [&] { order.push_back(3); });
  engine.schedule_at(Time::from_ns(10), [&] { order.push_back(1); });
  engine.schedule_at(Time::from_ns(20), [&] { order.push_back(2); });
  engine.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), Time::from_ns(30));
}

TEST(Engine, EqualTimesFireInScheduleOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.schedule_at(Time::from_ns(10), [&order, i] { order.push_back(i); });
  }
  engine.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, RunUntilAdvancesClockToDeadline) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(Time::from_ms(5), [&] { ++fired; });
  engine.schedule_at(Time::from_ms(15), [&] { ++fired; });
  EXPECT_EQ(engine.run_until(Time::from_ms(10)), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.now(), Time::from_ms(10));
  EXPECT_EQ(engine.run_until(Time::from_ms(20)), 1u);
  EXPECT_EQ(fired, 2);
}

TEST(Engine, EventAtDeadlineBoundaryFires) {
  Engine engine;
  bool fired = false;
  engine.schedule_at(Time::from_ms(10), [&] { fired = true; });
  engine.run_until(Time::from_ms(10));
  EXPECT_TRUE(fired);
}

TEST(Engine, ScheduleAfterUsesCurrentTime) {
  Engine engine;
  Time seen;
  engine.schedule_at(Time::from_ms(3), [&] {
    engine.schedule_after(Duration::from_ms(4), [&] { seen = engine.now(); });
  });
  engine.run_all();
  EXPECT_EQ(seen, Time::from_ms(7));
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine engine;
  engine.schedule_at(Time::from_ms(5), [] {});
  engine.run_all();
  EXPECT_THROW(engine.schedule_at(Time::from_ms(1), [] {}), std::logic_error);
}

TEST(Engine, CancelPreventsFiring) {
  Engine engine;
  bool fired = false;
  EventHandle handle =
      engine.schedule_at(Time::from_ms(1), [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  engine.run_all();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelAfterFiringIsNoop) {
  Engine engine;
  EventHandle handle = engine.schedule_at(Time::from_ms(1), [] {});
  engine.run_all();
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // no crash
}

TEST(Engine, HandleReportsWhen) {
  Engine engine;
  EventHandle handle = engine.schedule_at(Time::from_ms(9), [] {});
  EXPECT_EQ(handle.when(), Time::from_ms(9));
}

TEST(Engine, PendingCountSkipsCancelled) {
  Engine engine;
  EventHandle a = engine.schedule_at(Time::from_ms(1), [] {});
  engine.schedule_at(Time::from_ms(2), [] {});
  a.cancel();
  EXPECT_EQ(engine.pending_count(), 1u);
}

TEST(Engine, RequestStopEndsRunEarly) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(Time::from_ms(1), [&] {
    ++fired;
    engine.request_stop();
  });
  engine.schedule_at(Time::from_ms(2), [&] { ++fired; });
  engine.run_all();
  EXPECT_EQ(fired, 1);
  engine.run_all();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Engine, CallbackMayRescheduleItself) {
  Engine engine;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) engine.schedule_after(Duration::from_ms(1), tick);
  };
  engine.schedule_at(Time::from_ms(1), tick);
  engine.run_all();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(engine.now(), Time::from_ms(5));
}

TEST(Engine, StepFiresExactlyOne) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(Time::from_ms(1), [&] { ++fired; });
  engine.schedule_at(Time::from_ms(2), [&] { ++fired; });
  EXPECT_TRUE(engine.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(engine.step());
  EXPECT_FALSE(engine.step());
  EXPECT_EQ(fired, 2);
}

TEST(Engine, EventsFiredCounter) {
  Engine engine;
  for (int i = 0; i < 7; ++i) {
    engine.schedule_at(Time::from_ms(i + 1), [] {});
  }
  engine.run_all();
  EXPECT_EQ(engine.events_fired(), 7u);
}

TEST(Engine, StepClearsStaleStopRequest) {
  // A stop requested outside any run loop must not wedge the next step:
  // step() adopts the run_until/run_all contract and clears the flag on
  // entry, so a stale request affects nothing.
  Engine engine;
  int fired = 0;
  engine.schedule_at(Time::from_ms(1), [&] { ++fired; });
  engine.request_stop();
  EXPECT_TRUE(engine.stop_requested());
  EXPECT_TRUE(engine.step());
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(engine.stop_requested());
}

TEST(Engine, StopRequestedInsideCallbackIsObservableAfterStep) {
  Engine engine;
  engine.schedule_at(Time::from_ms(1), [&] { engine.request_stop(); });
  engine.schedule_at(Time::from_ms(2), [] {});
  EXPECT_TRUE(engine.step());
  EXPECT_TRUE(engine.stop_requested());
  // The next step starts a fresh run: the old request is spent.
  EXPECT_TRUE(engine.step());
  EXPECT_FALSE(engine.stop_requested());
}

TEST(Engine, SelfMetricsTrackQueueAndCancellations) {
  Engine engine;
  EventHandle doomed = engine.schedule_at(Time::from_ms(1), [] {});
  engine.schedule_at(Time::from_ms(2), [] {});
  engine.schedule_at(Time::from_ms(3), [] {});
  EXPECT_EQ(engine.queue_high_water(), 3u);
  doomed.cancel();
  engine.run_all();
  EXPECT_EQ(engine.events_fired(), 2u);
  EXPECT_EQ(engine.cancelled_popped(), 1u);
  EXPECT_GE(engine.wall_seconds(), 0.0);
}

TEST(Engine, CancelledEventDoesNotAdvanceClock) {
  Engine engine;
  EventHandle handle = engine.schedule_at(Time::from_ms(50), [] {});
  handle.cancel();
  engine.schedule_at(Time::from_ms(10), [] {});
  engine.run_all();
  EXPECT_EQ(engine.now(), Time::from_ms(10));
}

}  // namespace
}  // namespace satin::sim
