#include "sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

namespace satin::sim {
namespace {

TEST(Engine, StartsAtZero) {
  Engine engine;
  EXPECT_EQ(engine.now(), Time::zero());
  EXPECT_EQ(engine.pending_count(), 0u);
}

TEST(Engine, FiresInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(Time::from_ns(30), [&] { order.push_back(3); });
  engine.schedule_at(Time::from_ns(10), [&] { order.push_back(1); });
  engine.schedule_at(Time::from_ns(20), [&] { order.push_back(2); });
  engine.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), Time::from_ns(30));
}

TEST(Engine, EqualTimesFireInScheduleOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.schedule_at(Time::from_ns(10), [&order, i] { order.push_back(i); });
  }
  engine.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, RunUntilAdvancesClockToDeadline) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(Time::from_ms(5), [&] { ++fired; });
  engine.schedule_at(Time::from_ms(15), [&] { ++fired; });
  EXPECT_EQ(engine.run_until(Time::from_ms(10)), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.now(), Time::from_ms(10));
  EXPECT_EQ(engine.run_until(Time::from_ms(20)), 1u);
  EXPECT_EQ(fired, 2);
}

TEST(Engine, EventAtDeadlineBoundaryFires) {
  Engine engine;
  bool fired = false;
  engine.schedule_at(Time::from_ms(10), [&] { fired = true; });
  engine.run_until(Time::from_ms(10));
  EXPECT_TRUE(fired);
}

TEST(Engine, ScheduleAfterUsesCurrentTime) {
  Engine engine;
  Time seen;
  engine.schedule_at(Time::from_ms(3), [&] {
    engine.schedule_after(Duration::from_ms(4), [&] { seen = engine.now(); });
  });
  engine.run_all();
  EXPECT_EQ(seen, Time::from_ms(7));
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine engine;
  engine.schedule_at(Time::from_ms(5), [] {});
  engine.run_all();
  EXPECT_THROW(engine.schedule_at(Time::from_ms(1), [] {}), std::logic_error);
}

TEST(Engine, CancelPreventsFiring) {
  Engine engine;
  bool fired = false;
  EventHandle handle =
      engine.schedule_at(Time::from_ms(1), [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  engine.run_all();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelAfterFiringIsNoop) {
  Engine engine;
  EventHandle handle = engine.schedule_at(Time::from_ms(1), [] {});
  engine.run_all();
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // no crash
}

TEST(Engine, HandleReportsWhen) {
  Engine engine;
  EventHandle handle = engine.schedule_at(Time::from_ms(9), [] {});
  EXPECT_EQ(handle.when(), Time::from_ms(9));
}

TEST(Engine, PendingCountSkipsCancelled) {
  Engine engine;
  EventHandle a = engine.schedule_at(Time::from_ms(1), [] {});
  engine.schedule_at(Time::from_ms(2), [] {});
  a.cancel();
  EXPECT_EQ(engine.pending_count(), 1u);
}

TEST(Engine, RequestStopEndsRunEarly) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(Time::from_ms(1), [&] {
    ++fired;
    engine.request_stop();
  });
  engine.schedule_at(Time::from_ms(2), [&] { ++fired; });
  engine.run_all();
  EXPECT_EQ(fired, 1);
  engine.run_all();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Engine, CallbackMayRescheduleItself) {
  Engine engine;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) engine.schedule_after(Duration::from_ms(1), tick);
  };
  engine.schedule_at(Time::from_ms(1), tick);
  engine.run_all();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(engine.now(), Time::from_ms(5));
}

TEST(Engine, StepFiresExactlyOne) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(Time::from_ms(1), [&] { ++fired; });
  engine.schedule_at(Time::from_ms(2), [&] { ++fired; });
  EXPECT_TRUE(engine.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(engine.step());
  EXPECT_FALSE(engine.step());
  EXPECT_EQ(fired, 2);
}

TEST(Engine, EventsFiredCounter) {
  Engine engine;
  for (int i = 0; i < 7; ++i) {
    engine.schedule_at(Time::from_ms(i + 1), [] {});
  }
  engine.run_all();
  EXPECT_EQ(engine.events_fired(), 7u);
}

TEST(Engine, StepClearsStaleStopRequest) {
  // A stop requested outside any run loop must not wedge the next step:
  // step() adopts the run_until/run_all contract and clears the flag on
  // entry, so a stale request affects nothing.
  Engine engine;
  int fired = 0;
  engine.schedule_at(Time::from_ms(1), [&] { ++fired; });
  engine.request_stop();
  EXPECT_TRUE(engine.stop_requested());
  EXPECT_TRUE(engine.step());
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(engine.stop_requested());
}

TEST(Engine, StopRequestedInsideCallbackIsObservableAfterStep) {
  Engine engine;
  engine.schedule_at(Time::from_ms(1), [&] { engine.request_stop(); });
  engine.schedule_at(Time::from_ms(2), [] {});
  EXPECT_TRUE(engine.step());
  EXPECT_TRUE(engine.stop_requested());
  // The next step starts a fresh run: the old request is spent.
  EXPECT_TRUE(engine.step());
  EXPECT_FALSE(engine.stop_requested());
}

TEST(Engine, SelfMetricsTrackQueueAndCancellations) {
  Engine engine;
  EventHandle doomed = engine.schedule_at(Time::from_ms(1), [] {});
  engine.schedule_at(Time::from_ms(2), [] {});
  engine.schedule_at(Time::from_ms(3), [] {});
  EXPECT_EQ(engine.queue_high_water(), 3u);
  doomed.cancel();
  engine.run_all();
  EXPECT_EQ(engine.events_fired(), 2u);
  EXPECT_EQ(engine.cancelled_popped(), 1u);
  EXPECT_GE(engine.wall_seconds(), 0.0);
}

TEST(Engine, CancelledEventDoesNotAdvanceClock) {
  Engine engine;
  EventHandle handle = engine.schedule_at(Time::from_ms(50), [] {});
  handle.cancel();
  engine.schedule_at(Time::from_ms(10), [] {});
  engine.run_all();
  EXPECT_EQ(engine.now(), Time::from_ms(10));
}

TEST(Engine, PendingCountExcludesCancelledEntries) {
  Engine engine;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 10; ++i) {
    handles.push_back(engine.schedule_at(Time::from_ms(i + 1), [] {}));
  }
  EXPECT_EQ(engine.pending_count(), 10u);
  for (int i = 0; i < 4; ++i) handles[static_cast<std::size_t>(i)].cancel();
  EXPECT_EQ(engine.pending_count(), 6u);
  EXPECT_EQ(engine.cancelled_pending(), 4u);
  // Double-cancel must not double-count.
  handles[0].cancel();
  EXPECT_EQ(engine.cancelled_pending(), 4u);
}

TEST(Engine, LazyCompactionSweepsCancelledMajority) {
  // Cancel far more than half of a >= 64-entry heap, then schedule: the
  // lazy sweep reclaims the dead entries without losing any live event.
  Engine engine;
  std::vector<EventHandle> doomed;
  int fired = 0;
  for (int i = 0; i < 200; ++i) {
    doomed.push_back(
        engine.schedule_at(Time::from_ms(1000 + i), [&fired] { ++fired; }));
  }
  std::vector<Time> live_times;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(Time::from_ms(1 + i), [&fired] { ++fired; });
    live_times.push_back(Time::from_ms(1 + i));
  }
  for (EventHandle& h : doomed) h.cancel();
  EXPECT_EQ(engine.pending_count(), 10u);
  EXPECT_EQ(engine.cancelled_pending(), 200u);
  // The next schedule notices cancelled > heap/2 and sweeps.
  engine.schedule_at(Time::from_ms(500), [&fired] { ++fired; });
  EXPECT_GE(engine.compactions(), 1u);
  EXPECT_EQ(engine.cancelled_pending(), 0u);
  EXPECT_EQ(engine.pending_count(), 11u);
  EXPECT_EQ(engine.cancelled_popped(), 200u);
  // Every live event still fires, in time order.
  engine.run_all();
  EXPECT_EQ(fired, 11);
  EXPECT_EQ(engine.now(), Time::from_ms(500));
}

TEST(Engine, SmallHeapsSkipCompaction) {
  // Unit-scale workloads (heap < 64) never compact: cancelled entries are
  // skipped at pop time, keeping cancelled_popped() semantics exact for
  // the small tests above.
  Engine engine;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 20; ++i) {
    handles.push_back(engine.schedule_at(Time::from_ms(i + 1), [] {}));
  }
  for (EventHandle& h : handles) h.cancel();
  engine.schedule_at(Time::from_ms(100), [] {});
  EXPECT_EQ(engine.compactions(), 0u);
  EXPECT_EQ(engine.cancelled_pending(), 20u);
  engine.run_all();
  EXPECT_EQ(engine.cancelled_popped(), 20u);
}

TEST(Engine, CancelAfterCompactionIsSafe) {
  // A handle whose entry was swept out must stay inert: cancel() again,
  // pending(), when() — no crash, no tally corruption. Times are beyond
  // the ~68 ms wheel horizon so every doomed entry sits in the far heap,
  // the structure compaction sweeps.
  Engine engine;
  std::vector<EventHandle> doomed;
  for (int i = 0; i < 128; ++i) {
    doomed.push_back(engine.schedule_at(Time::from_ms(100 + i), [] {}));
  }
  for (EventHandle& h : doomed) h.cancel();
  engine.schedule_at(Time::from_ms(1), [] {});  // triggers the sweep
  EXPECT_GE(engine.compactions(), 1u);
  for (EventHandle& h : doomed) {
    EXPECT_FALSE(h.pending());
    h.cancel();  // no-op
  }
  EXPECT_EQ(engine.cancelled_pending(), 0u);
}

TEST(Engine, StaleHandleAfterRecycleIsInert) {
  // Once an event fires its slab slot is recycled under a new generation;
  // the old handle must observe nothing and touch nothing — in particular
  // it must not cancel the slot's new occupant.
  Engine engine;
  bool a_fired = false;
  EventHandle a = engine.schedule_at(Time::from_us(1), [&] { a_fired = true; });
  engine.run_all();
  EXPECT_TRUE(a_fired);
  bool b_fired = false;
  EventHandle b = engine.schedule_at(Time::from_us(2), [&] { b_fired = true; });
  // The LIFO free list hands b the slot a just vacated.
  EXPECT_EQ(engine.pool_reuses(), 1u);
  EXPECT_FALSE(a.pending());
  EXPECT_EQ(a.when(), Time::zero());
  a.cancel();  // stale generation: must not cancel b
  EXPECT_TRUE(b.pending());
  EXPECT_EQ(b.when(), Time::from_us(2));
  engine.run_all();
  EXPECT_TRUE(b_fired);
}

TEST(Engine, EqualTimestampFifoAcrossWheelHeapBoundary) {
  // An event scheduled while its timestamp was beyond the wheel horizon
  // lives in the far heap; a later event at the *same* timestamp scheduled
  // once the horizon has advanced lives in the wheel. Scheduling order
  // (sequence number) must still decide who fires first.
  Engine engine;
  std::vector<int> order;
  const Time t = Time::from_ms(100);  // beyond the ~68 ms horizon at time 0
  engine.schedule_at(t, [&] { order.push_back(0); });  // far heap, seq 0
  engine.schedule_at(Time::from_ms(50), [&] {
    // Horizon now covers t: same timestamp, later sequence, wheel side.
    engine.schedule_at(t, [&] { order.push_back(1); });
  });
  engine.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_GE(engine.heap_scheduled(), 1u);
  EXPECT_GE(engine.wheel_scheduled(), 1u);
}

TEST(Engine, CallbackSchedulingIntoDrainingBucketKeepsOrder) {
  // Two events share one ~67 µs wheel bucket; the first schedules a third
  // between them at fire time, after the bucket has already been loaded
  // into the drain heap. It must still fire in timestamp order.
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(Time::from_us(10), [&] {
    order.push_back(0);
    engine.schedule_at(Time::from_us(20), [&] { order.push_back(1); });
  });
  engine.schedule_at(Time::from_us(30), [&] { order.push_back(2); });
  engine.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Engine, NearFutureTrafficLandsInTheWheel) {
  Engine engine;
  engine.schedule_at(Time::from_ms(4), [] {});    // scheduler-tick range
  engine.schedule_at(Time::from_us(50), [] {});   // probe range
  engine.schedule_at(Time::from_sec(2), [] {});   // watchdog range
  EXPECT_EQ(engine.wheel_scheduled(), 2u);
  EXPECT_EQ(engine.heap_scheduled(), 1u);
  engine.run_all();
  EXPECT_EQ(engine.events_fired(), 3u);
}

TEST(Engine, WheelWindowSlidesAfterQuietJump) {
  // After run_until jumps the clock far past the wheel window, newly
  // scheduled near-future events must still be bucketed (the cursor
  // resyncs when the wheel is empty) rather than leaking into the heap.
  Engine engine;
  engine.run_until(Time::from_sec(5));
  engine.schedule_after(Duration::from_ms(4), [] {});
  EXPECT_EQ(engine.wheel_scheduled(), 1u);
  EXPECT_EQ(engine.heap_scheduled(), 0u);
  engine.run_all();
  EXPECT_EQ(engine.now(), Time::from_sec(5) + Duration::from_ms(4));
}

TEST(Engine, InlineCallbackCountsTrackStorage) {
  Engine engine;
  engine.schedule_at(Time::from_us(1), [] {});
  // A capture far past InlineCallback::kCapacity falls back to the heap
  // and is counted, not rejected.
  std::array<char, 512> big{};
  big[0] = 1;
  bool saw = false;
  engine.schedule_at(Time::from_us(2), [big, &saw] { saw = big[0] == 1; });
  EXPECT_EQ(engine.callbacks_inline(), 1u);
  EXPECT_EQ(engine.callback_fallbacks(), 1u);
  engine.run_all();
  EXPECT_TRUE(saw);
}

TEST(Engine, PoolGrowsOnceForBoundedOccupancy) {
  Engine engine;
  for (int i = 0; i < 200; ++i) {
    engine.schedule_at(Time::from_us(i + 1), [] {});
  }
  engine.run_all();
  // 200 simultaneous events fit one 256-slot slab; the churn above must
  // not have grown a second one.
  EXPECT_EQ(engine.pool_slab_grows(), 1u);
  EXPECT_EQ(engine.pool_high_water(), 200u);
}

TEST(Engine, HandleOutlivingEngineIsSafe) {
  // ~Engine nulls the heap back-pointers; a surviving handle must not
  // write through a dangling tally pointer.
  EventHandle survivor;
  {
    Engine engine;
    survivor = engine.schedule_at(Time::from_ms(1), [] {});
  }
  survivor.cancel();  // must not touch freed engine state
  EXPECT_FALSE(survivor.pending());
}

}  // namespace
}  // namespace satin::sim
