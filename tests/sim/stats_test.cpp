#include "sim/stats.h"

#include <gtest/gtest.h>

namespace satin::sim {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.min(), 0.0);
  EXPECT_EQ(acc.max(), 0.0);
  EXPECT_EQ(acc.stddev(), 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator acc;
  acc.add(4.2);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 4.2);
  EXPECT_DOUBLE_EQ(acc.min(), 4.2);
  EXPECT_DOUBLE_EQ(acc.max(), 4.2);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, KnownMoments) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(Accumulator, NegativeValues) {
  Accumulator acc;
  acc.add(-3.0);
  acc.add(3.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), -3.0);
}

TEST(Percentile, Median) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 50.0), 2.0);
}

TEST(Percentile, Interpolates) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 25.0), 2.5);
}

TEST(Percentile, Extremes) {
  const std::vector<double> v{5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 9.0);
}

TEST(Percentile, SingleSample) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 73.0), 7.0);
}

TEST(Percentile, RejectsEmptyAndBadP) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101.0), std::invalid_argument);
}

TEST(BoxStats, QuartilesOfUniformRamp) {
  std::vector<double> v;
  for (int i = 1; i <= 101; ++i) v.push_back(i);
  const BoxStats box = make_box_stats(v);
  EXPECT_DOUBLE_EQ(box.median, 51.0);
  EXPECT_DOUBLE_EQ(box.q1, 26.0);
  EXPECT_DOUBLE_EQ(box.q3, 76.0);
  EXPECT_DOUBLE_EQ(box.whisker_low, 1.0);
  EXPECT_DOUBLE_EQ(box.whisker_high, 101.0);
  EXPECT_TRUE(box.outliers.empty());
}

TEST(BoxStats, DetectsOutliers) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 100};
  const BoxStats box = make_box_stats(v);
  ASSERT_EQ(box.outliers.size(), 1u);
  EXPECT_DOUBLE_EQ(box.outliers.front(), 100.0);
  EXPECT_DOUBLE_EQ(box.whisker_high, 8.0);
}

TEST(BoxStats, AllEqualSamples) {
  const BoxStats box = make_box_stats({2.0, 2.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(box.median, 2.0);
  EXPECT_DOUBLE_EQ(box.whisker_low, 2.0);
  EXPECT_DOUBLE_EQ(box.whisker_high, 2.0);
  EXPECT_TRUE(box.outliers.empty());
}

TEST(BoxStats, RejectsEmpty) {
  EXPECT_THROW(make_box_stats({}), std::invalid_argument);
}

TEST(SciRow, FormatsLabelAndValues) {
  const std::string row = sci_row("A53-Average", {1.07e-8, 1.08e-8});
  EXPECT_NE(row.find("A53-Average"), std::string::npos);
  EXPECT_NE(row.find("1.070e-08"), std::string::npos);
  EXPECT_NE(row.find("1.080e-08"), std::string::npos);
}

}  // namespace
}  // namespace satin::sim
