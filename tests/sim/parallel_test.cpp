// TrialRunner: the determinism contract is the whole point — jobs=1 and
// jobs=8 must produce byte-identical merged metrics, identically ordered
// traces and identical result slots, because benches print from exactly
// this machinery.
#include "sim/parallel.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/engine.h"
#include "sim/rng.h"
#include "sim/seed_seq.h"
#include "sim/time.h"

namespace satin::sim {
namespace {

TEST(TrialSeedSeq, StatelessAndOrderIndependent) {
  TrialSeedSeq seq(1234);
  const std::uint64_t s7 = seq.seed_for(7);
  const std::uint64_t s0 = seq.seed_for(0);
  // Asking again, in any order, returns the same values.
  EXPECT_EQ(seq.seed_for(0), s0);
  EXPECT_EQ(seq.seed_for(7), s7);
  // A fresh sequence from the same root agrees.
  TrialSeedSeq again(1234);
  EXPECT_EQ(again.seed_for(0), s0);
  EXPECT_EQ(again.seed_for(7), s7);
  // Different roots and different indices decorrelate.
  TrialSeedSeq other(1235);
  EXPECT_NE(other.seed_for(0), s0);
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 100; ++i) seeds.insert(seq.seed_for(i));
  EXPECT_EQ(seeds.size(), 100u);
}

TEST(TrialRunner, ResultsLandInSubmissionOrderSlots) {
  TrialRunnerOptions options;
  options.jobs = 8;
  TrialRunner runner(options);
  const auto results = runner.run_collect(
      std::size_t{64}, [](const TrialContext& ctx) {
        return static_cast<int>(ctx.index) * 10;
      });
  ASSERT_EQ(results.size(), 64u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i) * 10);
  }
  EXPECT_EQ(runner.trials_run(), 64u);
  EXPECT_GE(runner.wall_seconds(), 0.0);
}

TEST(TrialRunner, SeedsMatchSeedSeqForAnyJobCount) {
  for (int jobs : {1, 3, 8}) {
    TrialRunnerOptions options;
    options.jobs = jobs;
    options.root_seed = 99;
    TrialRunner runner(options);
    const auto seeds = runner.run_collect(
        std::size_t{16},
        [](const TrialContext& ctx) { return ctx.seed; });
    TrialSeedSeq expected(99);
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      EXPECT_EQ(seeds[i], expected.seed_for(i)) << "jobs=" << jobs;
    }
  }
}

// The per-trial workload every determinism test runs: counters keyed by
// parity, one histogram, one gauge, a couple of trace events. Values
// depend only on the trial index.
void emit_trial_obs(const TrialContext& ctx) {
  SATIN_METRIC_INC("trial.count");
  SATIN_METRIC_ADD("trial.index_sum", ctx.index);
  SATIN_METRIC_GAUGE_SET("trial.last_index", ctx.index);
  SATIN_METRIC_OBSERVE("trial.value", 1e-6 * static_cast<double>(ctx.index));
  SATIN_TRACE_INSTANT_ARG("test", "trial", sim::Time::zero(),
                          static_cast<int>(ctx.index % 4), obs::kWorldNormal,
                          "index", ctx.index);
}

std::string run_and_snapshot_metrics(int jobs, std::size_t trials) {
  obs::MetricsRegistry registry;
  obs::install_metrics(&registry);
  TrialRunnerOptions options;
  options.jobs = jobs;
  TrialRunner runner(options);
  runner.run(trials, emit_trial_obs);
  obs::install_metrics(nullptr);
  return registry.to_json();
}

TEST(TrialRunner, MetricsSnapshotsAreByteIdenticalAcrossJobCounts) {
  const std::string serial = run_and_snapshot_metrics(1, 37);
  const std::string parallel = run_and_snapshot_metrics(8, 37);
  EXPECT_EQ(serial, parallel);
#if SATIN_OBS_ENABLED
  // And the content is the deterministic fold of all trials.
  obs::MetricsRegistry registry;
  obs::install_metrics(&registry);
  TrialRunnerOptions options;
  options.jobs = 8;
  TrialRunner runner(options);
  runner.run(std::size_t{37}, emit_trial_obs);
  obs::install_metrics(nullptr);
  EXPECT_EQ(registry.counter("trial.count").value(), 37u);
  EXPECT_EQ(registry.counter("trial.index_sum").value(), 37u * 36u / 2u);
  EXPECT_DOUBLE_EQ(registry.gauge("trial.last_index").value(), 36.0);
  EXPECT_EQ(registry.histogram("trial.value").moments().count(), 37u);
#endif
}

// Each trial runs a real pooled engine — seed-dependent mix of wheel and
// heap traffic with mid-run cancels and schedule-from-callback — and folds
// the engine's memory-model counters into the merged metrics. Those
// counters are deterministic per trial, so the merged snapshot must be
// byte-identical at any job count, exactly like the PR-3 contract for
// bench output.
void pooled_engine_trial(const TrialContext& ctx) {
  Engine engine;
  Rng rng(ctx.seed);
  std::vector<EventHandle> handles;
  for (int i = 0; i < 40; ++i) {
    // Up to 200 ms out: straddles the ~68 ms wheel horizon, so every
    // trial exercises both admission paths.
    const auto us = static_cast<std::int64_t>(rng.index(200000)) + 1;
    handles.push_back(engine.schedule_after(
        Duration::from_us(us), [&engine, &rng, &handles] {
          if (rng.bernoulli(0.5) && !handles.empty()) {
            handles[rng.index(handles.size())].cancel();
          }
          if (rng.bernoulli(0.3)) {
            handles.push_back(engine.schedule_after(
                Duration::from_us(
                    static_cast<std::int64_t>(rng.index(1000)) + 1),
                [] {}));
          }
        }));
  }
  engine.run_all();
  SATIN_METRIC_ADD("engine_trial.fired", engine.events_fired());
  SATIN_METRIC_ADD("engine_trial.pool_reuses", engine.pool_reuses());
  SATIN_METRIC_ADD("engine_trial.wheel", engine.wheel_scheduled());
  SATIN_METRIC_ADD("engine_trial.heap", engine.heap_scheduled());
  SATIN_METRIC_ADD("engine_trial.cb_inline", engine.callbacks_inline());
  SATIN_METRIC_ADD("engine_trial.cb_fallback", engine.callback_fallbacks());
}

std::string run_pooled_engine_trials(int jobs, std::size_t trials) {
  obs::MetricsRegistry registry;
  obs::install_metrics(&registry);
  TrialRunnerOptions options;
  options.jobs = jobs;
  options.root_seed = 4242;
  TrialRunner runner(options);
  runner.run(trials, pooled_engine_trial);
  obs::install_metrics(nullptr);
  return registry.to_json();
}

TEST(TrialRunner, PooledEngineCountersAreByteIdenticalAcrossJobCounts) {
  const std::string serial = run_pooled_engine_trials(1, 12);
  const std::string parallel = run_pooled_engine_trials(8, 12);
  EXPECT_EQ(serial, parallel);
#if SATIN_OBS_ENABLED
  EXPECT_NE(serial.find("engine_trial.pool_reuses"), std::string::npos);
#endif
}

TEST(TrialRunner, TraceEventsMergeInSubmissionOrder) {
  for (int jobs : {1, 8}) {
    obs::TraceRecorder recorder(1024);
    obs::install_tracer(&recorder);
    TrialRunnerOptions options;
    options.jobs = jobs;
    TrialRunner runner(options);
    runner.run(std::size_t{20}, emit_trial_obs);
    obs::install_tracer(nullptr);
    const auto events = recorder.snapshot();
#if SATIN_OBS_ENABLED
    ASSERT_EQ(events.size(), 20u) << "jobs=" << jobs;
    for (std::size_t i = 0; i < events.size(); ++i) {
      EXPECT_DOUBLE_EQ(events[i].arg_value, static_cast<double>(i))
          << "jobs=" << jobs;
    }
#else
    EXPECT_TRUE(events.empty());
#endif
  }
}

TEST(TrialRunner, NoSinksInstalledMeansNoObsOverheadAndNoCrash) {
  obs::install_metrics(nullptr);
  obs::install_tracer(nullptr);
  TrialRunnerOptions options;
  options.jobs = 4;
  TrialRunner runner(options);
  std::atomic<int> ran{0};
  runner.run(std::size_t{8}, [&ran](const TrialContext&) { ++ran; });
  EXPECT_EQ(ran.load(), 8);
}

TEST(TrialRunner, FirstExceptionBySubmissionOrderIsRethrown) {
  for (int jobs : {1, 8}) {
    TrialRunnerOptions options;
    options.jobs = jobs;
    TrialRunner runner(options);
    std::atomic<int> completed{0};
    try {
      runner.run(std::size_t{16}, [&completed](const TrialContext& ctx) {
        if (ctx.index == 11) throw std::runtime_error("trial 11 failed");
        if (ctx.index == 5) throw std::runtime_error("trial 5 failed");
        ++completed;
      });
      FAIL() << "expected a rethrown trial exception (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "trial 5 failed") << "jobs=" << jobs;
    }
    // Every other trial still ran to completion before the rethrow.
    EXPECT_EQ(completed.load(), 14) << "jobs=" << jobs;
  }
}

TEST(TrialRunner, FailedTrialsStillMergeTheirPartialObs) {
  obs::MetricsRegistry registry;
  obs::install_metrics(&registry);
  TrialRunnerOptions options;
  options.jobs = 8;
  TrialRunner runner(options);
  EXPECT_THROW(
      runner.run(std::size_t{10},
                 [](const TrialContext& ctx) {
                   SATIN_METRIC_INC("attempted");
                   if (ctx.index == 3) throw std::runtime_error("boom");
                   SATIN_METRIC_INC("finished");
                 }),
      std::runtime_error);
  obs::install_metrics(nullptr);
#if SATIN_OBS_ENABLED
  EXPECT_EQ(registry.counter("attempted").value(), 10u);
  EXPECT_EQ(registry.counter("finished").value(), 9u);
#endif
}

TEST(TrialRunner, JobsForClampsToTrialCountAndHardware) {
  TrialRunnerOptions options;
  options.jobs = 8;
  TrialRunner runner(options);
  EXPECT_EQ(runner.jobs_for(3), 3);
  EXPECT_EQ(runner.jobs_for(100), 8);
  EXPECT_GE(TrialRunner::hardware_jobs(), 1);
  TrialRunnerOptions hw;
  hw.jobs = 0;  // auto
  TrialRunner auto_runner(hw);
  EXPECT_EQ(auto_runner.jobs_for(1000), TrialRunner::hardware_jobs());
}

TEST(TrialRunner, ZeroTrialsIsANoOp) {
  TrialRunner runner;
  bool ran = false;
  runner.run(std::size_t{0}, [&ran](const TrialContext&) { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_EQ(runner.trials_run(), 0u);
}

TEST(TrialRunner, ZeroTrialsWithSinksInstalledIsStillANoOp) {
  obs::MetricsRegistry registry;
  obs::install_metrics(&registry);
  TrialRunnerOptions options;
  options.jobs = 4;
  TrialRunner runner(options);
  runner.run(std::size_t{0},
             [](const TrialContext&) { SATIN_METRIC_INC("never"); });
  obs::install_metrics(nullptr);
  EXPECT_EQ(runner.trials_run(), 0u);
  EXPECT_EQ(registry.find_counter("never"), nullptr);
}

TEST(TrialRunner, MoreJobsThanTrialsRunsEachTrialExactlyOnce) {
  TrialRunnerOptions options;
  options.jobs = 16;
  TrialRunner runner(options);
  std::array<std::atomic<int>, 3> runs{};
  runner.run(std::size_t{3}, [&runs](const TrialContext& ctx) {
    ++runs[ctx.index];
  });
  EXPECT_EQ(runner.trials_run(), 3u);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "trial " << i;
  }
}

TEST(TrialRunner, EveryTrialFailingRethrowsTheLowestIndex) {
  for (int jobs : {1, 8}) {
    TrialRunnerOptions options;
    options.jobs = jobs;
    TrialRunner runner(options);
    try {
      runner.run(std::size_t{6}, [](const TrialContext& ctx) {
        throw std::runtime_error("trial " + std::to_string(ctx.index));
      });
      FAIL() << "expected a rethrow (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "trial 0") << "jobs=" << jobs;
    }
  }
}

TEST(TrialRunner, ExceptionInOneRunDoesNotPoisonTheNext) {
  TrialRunnerOptions options;
  options.jobs = 4;
  TrialRunner runner(options);
  EXPECT_THROW(runner.run(std::size_t{4},
                          [](const TrialContext& ctx) {
                            if (ctx.index == 2) {
                              throw std::runtime_error("boom");
                            }
                          }),
               std::runtime_error);
  // The runner is reusable after a failed run: fresh trials all succeed.
  std::atomic<int> ran{0};
  runner.run(std::size_t{4}, [&ran](const TrialContext&) { ++ran; });
  EXPECT_EQ(ran.load(), 4);
}

}  // namespace
}  // namespace satin::sim
