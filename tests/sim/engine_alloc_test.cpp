// Zero-allocation steady state: once the pool slabs, wheel buckets and
// heap storage are warm, sustained schedule/cancel/fire churn must not
// touch the global allocator at all. Global operator new/delete are
// replaced with counting shims; the measurement window runs the exact
// same traffic pattern as the warm-up, so any delta is a regression in
// the engine's retained-capacity story.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "sim/engine.h"
#include "sim/time.h"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::size_t alignment) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(alignment, size)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace satin::sim {
namespace {

// One round = exactly one wheel bucket (2^kBucketShift ps ≈ 67 µs) of the
// simulator's typical traffic: a burst of near-future probes, a cancelled
// event, and a far-future watchdog that rides the binary heap. Advancing
// by a whole bucket keeps the per-bucket entry count identical on every
// wheel revolution, so all retained capacities provably plateau during
// warm-up.
void churn(Engine& engine, int rounds) {
  const Duration bucket =
      Duration::from_ps(std::int64_t{1} << Engine::kBucketShift);
  for (int r = 0; r < rounds; ++r) {
    for (int k = 0; k < 8; ++k) {
      engine.schedule_after(Duration::from_us(8 + k), [] {});
    }
    EventHandle victim = engine.schedule_after(Duration::from_us(40), [] {});
    victim.cancel();
    engine.schedule_after(Duration::from_ms(100), [] {});
    engine.run_for(bucket);
  }
}

TEST(EngineAllocation, SteadyStateChurnIsAllocationFree) {
  Engine engine;
  // Warm-up: long enough for every wheel bucket slot to reach its
  // steady-state capacity (one revolution is 1024 buckets ≈ 68.7 ms of
  // churn) and for the far-future heap population to plateau (the 100 ms
  // watchdog window fills after ~1500 rounds).
  churn(engine, 1800);
  const std::uint64_t fired_before = engine.events_fired();
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  churn(engine, 300);
  const std::uint64_t allocs =
      g_allocations.load(std::memory_order_relaxed) - before;
  const std::uint64_t fired = engine.events_fired() - fired_before;
  EXPECT_EQ(allocs, 0u) << "steady-state churn allocated " << allocs
                        << " times over " << fired << " events";
  EXPECT_GT(fired, 2000u);  // the window really exercised the hot path
  EXPECT_EQ(engine.callback_fallbacks(), 0u);
}

TEST(EngineAllocation, StaleHandleOpsDoNotAllocate) {
  Engine engine;
  EventHandle h = engine.schedule_after(Duration::from_us(1), [] {});
  engine.run_all();
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    h.cancel();
    (void)h.pending();
    (void)h.when();
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed) - before, 0u);
}

}  // namespace
}  // namespace satin::sim
