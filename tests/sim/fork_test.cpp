// ForkServer failure ladder + determinism contract (sim/fork.h).
//
// The COW fork backend earns its keep only if (a) every failure mode —
// SIGKILL mid-branch, silent wedge, torn pipe record — resolves to
// exactly-once results via the retry ladder with no orphan processes
// left behind, and (b) the zero-prefix forked sweep is indistinguishable
// from the unforked run of record. Both halves are pinned here.
#include <gtest/gtest.h>

#include <cerrno>
#include <csignal>
#include <stdexcept>
#include <string>

#include <sys/wait.h>

#include "scenario/experiments.h"
#include "sim/fork.h"

namespace satin {
namespace {

std::string tag(std::size_t branch) {
  return "payload-" + std::to_string(branch);
}

// After a run every child must be reaped: waitpid(-1) with no children
// left reports ECHILD. gtest runs tests sequentially in-process, so any
// child alive here is ForkServer's orphan.
void expect_no_orphans() {
  int status = 0;
  const pid_t p = ::waitpid(-1, &status, WNOHANG);
  EXPECT_EQ(p, -1);
  EXPECT_EQ(errno, ECHILD);
}

TEST(ForkServer, RunsEveryBranchExactlyOnce) {
  sim::ForkServer server;
  const auto outcomes =
      server.run(5, [](std::size_t branch) { return tag(branch); });
  ASSERT_EQ(outcomes.size(), 5u);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_TRUE(outcomes[i].ok) << outcomes[i].error;
    EXPECT_EQ(outcomes[i].payload, tag(i));
    EXPECT_EQ(outcomes[i].attempts, 1);
  }
  EXPECT_EQ(server.forks(), 5u);
  EXPECT_EQ(server.crashes(), 0u);
  EXPECT_EQ(server.retries(), 0u);
  expect_no_orphans();
}

TEST(ForkServer, SigkilledChildIsRetriedExactlyOnce) {
  sim::ForkServerOptions options;
  options.chaos_kill_branch = 1;  // dies after its heartbeat, first try only
  sim::ForkServer server(options);
  const auto outcomes =
      server.run(3, [](std::size_t branch) { return tag(branch); });
  ASSERT_EQ(outcomes.size(), 3u);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_TRUE(outcomes[i].ok) << outcomes[i].error;
    EXPECT_EQ(outcomes[i].payload, tag(i));
  }
  EXPECT_EQ(outcomes[1].attempts, 2);
  EXPECT_EQ(outcomes[0].attempts, 1);
  EXPECT_EQ(outcomes[2].attempts, 1);
  EXPECT_EQ(server.crashes(), 1u);
  EXPECT_EQ(server.retries(), 1u);
  EXPECT_EQ(server.forks(), 4u);
  expect_no_orphans();
}

TEST(ForkServer, WedgedChildIsKilledPastTheHeartbeatTimeout) {
  sim::ForkServerOptions options;
  options.chaos_hang_branch = 0;
  options.timeout_s = 0.3;
  sim::ForkServer server(options);
  const auto outcomes =
      server.run(2, [](std::size_t branch) { return tag(branch); });
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].ok) << outcomes[0].error;
  EXPECT_EQ(outcomes[0].payload, tag(0));
  EXPECT_EQ(outcomes[0].attempts, 2);
  EXPECT_TRUE(outcomes[1].ok) << outcomes[1].error;
  EXPECT_EQ(server.timeouts(), 1u);
  EXPECT_EQ(server.retries(), 1u);
  expect_no_orphans();
}

TEST(ForkServer, TornRecordIsDiscardedAndRetried) {
  sim::ForkServerOptions options;
  options.chaos_torn_branch = 2;  // first record's checksum is corrupted
  sim::ForkServer server(options);
  const auto outcomes =
      server.run(3, [](std::size_t branch) { return tag(branch); });
  ASSERT_EQ(outcomes.size(), 3u);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_TRUE(outcomes[i].ok) << outcomes[i].error;
    EXPECT_EQ(outcomes[i].payload, tag(i));  // never the torn payload
  }
  EXPECT_EQ(outcomes[2].attempts, 2);
  EXPECT_EQ(server.crashes(), 1u);
  EXPECT_EQ(server.retries(), 1u);
  expect_no_orphans();
}

TEST(ForkServer, DeterministicExceptionIsNotRetried) {
  sim::ForkServer server;
  const auto outcomes = server.run(3, [](std::size_t branch) {
    if (branch == 1) throw std::runtime_error("knob out of range");
    return tag(branch);
  });
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0].ok);
  EXPECT_FALSE(outcomes[1].ok);
  EXPECT_EQ(outcomes[1].error, "knob out of range");
  EXPECT_EQ(outcomes[1].attempts, 1);  // an "E" record is final, no re-fork
  EXPECT_TRUE(outcomes[2].ok);
  EXPECT_EQ(server.retries(), 0u);
  expect_no_orphans();
}

TEST(ForkServer, RunCollectRethrowsTheLowestIndexError) {
  sim::ForkServer server;
  try {
    server.run_collect(4, [](std::size_t branch) {
      if (branch == 1) throw std::runtime_error("branch one failed");
      if (branch == 3) throw std::runtime_error("branch three failed");
      return tag(branch);
    });
    FAIL() << "run_collect did not throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "branch one failed");
  }
  expect_no_orphans();
}

TEST(ForkServer, RetryBudgetExhaustionReportsTheFailure) {
  sim::ForkServerOptions options;
  options.max_retries = 1;
  sim::ForkServer server(options);
  // Unlike the chaos knobs (first attempt only), this crash is
  // systematic: every attempt dies, so the ladder must give up.
  const auto outcomes = server.run(2, [](std::size_t branch) {
    if (branch == 0) raise(SIGKILL);
    return tag(branch);
  });
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_FALSE(outcomes[0].ok);
  EXPECT_NE(outcomes[0].error.find("crashed"), std::string::npos)
      << outcomes[0].error;
  EXPECT_EQ(outcomes[0].attempts, 2);  // initial + max_retries
  EXPECT_TRUE(outcomes[1].ok);
  expect_no_orphans();
}

TEST(ForkServer, RecordChecksumIsFnv1a) {
  EXPECT_EQ(sim::ForkServer::record_checksum(""),
            14695981039346656037ull);
  EXPECT_NE(sim::ForkServer::record_checksum("a"),
            sim::ForkServer::record_checksum("b"));
}

TEST(DuelReportCodec, RoundTripsBitForBit) {
  scenario::DuelReport r;
  r.rounds = 41;
  r.alarms = 7;
  r.full_cycles = 2;
  r.target_area = 14;
  r.target_area_rounds = 5;
  r.target_area_alarms = 5;
  r.avg_target_gap_s = 141.0625e-3;  // exercises non-trivial mantissa bits
  r.secure_stays = 99;
  r.prober_detections = 98;
  r.false_positives = 1;
  r.false_negatives = 2;
  r.evasions_started = 3;
  r.rearms = 4;
  r.sim_seconds = 1234.5678901234;
  r.confirmed_alarms = 6;
  r.transient_alarms = 8;
  r.benign_confirmed_alarms = 9;
  r.watchdog_fires = 10;
  r.scan_retries = 11;
  const std::string wire = scenario::encode_duel_report(r);
  const scenario::DuelReport back = scenario::decode_duel_report(wire);
  EXPECT_EQ(scenario::encode_duel_report(back), wire);
  EXPECT_EQ(back.rounds, r.rounds);
  EXPECT_EQ(back.target_area, r.target_area);
  EXPECT_EQ(back.avg_target_gap_s, r.avg_target_gap_s);
  EXPECT_EQ(back.sim_seconds, r.sim_seconds);
  EXPECT_EQ(back.scan_retries, r.scan_retries);

  // A negative target_area (no target round yet) survives the u64 wire.
  scenario::DuelReport none;
  none.target_area = -1;
  EXPECT_EQ(scenario::decode_duel_report(scenario::encode_duel_report(none))
                .target_area,
            -1);

  EXPECT_THROW(scenario::decode_duel_report("not a record"),
               std::invalid_argument);
  EXPECT_THROW(scenario::decode_duel_report(wire.substr(0, wire.size() / 2)),
               std::invalid_argument);
}

// A fast sweep config: a handful of short duels, distinct per-trial
// platform seeds (run_duel_sweep derives them from root_seed).
scenario::DuelSweepConfig quick_sweep(std::size_t trials) {
  scenario::DuelSweepConfig config;
  config.trials = trials;
  config.jobs = 2;
  config.root_seed = 20260809;
  config.duel.satin.tgoal_s = 10.0;
  config.duel.rounds_target = 3;
  return config;
}

TEST(ForkedDuelSweep, ZeroPrefixMatchesTheUnforkedOracle) {
  const auto unforked = scenario::run_duel_sweep(quick_sweep(4));

  auto forked_config = quick_sweep(4);
  forked_config.branches = 2;
  const auto forked = scenario::run_duel_sweep(forked_config);

  ASSERT_EQ(forked.reports.size(), unforked.reports.size());
  for (std::size_t i = 0; i < forked.reports.size(); ++i) {
    EXPECT_EQ(scenario::encode_duel_report(forked.reports[i]),
              scenario::encode_duel_report(unforked.reports[i]))
        << "trial " << i;
  }
  expect_no_orphans();
}

TEST(ForkedDuelSweep, BranchCountAboveTrialsClampsToTrials) {
  const auto unforked = scenario::run_duel_sweep(quick_sweep(3));

  auto forked_config = quick_sweep(3);
  forked_config.branches = 8;  // more branches than trials
  const auto forked = scenario::run_duel_sweep(forked_config);

  ASSERT_EQ(forked.reports.size(), 3u);
  for (std::size_t i = 0; i < forked.reports.size(); ++i) {
    EXPECT_EQ(scenario::encode_duel_report(forked.reports[i]),
              scenario::encode_duel_report(unforked.reports[i]))
        << "trial " << i;
  }
  expect_no_orphans();
}

TEST(ForkedDuelSweep, BranchesAndBatchAreMutuallyExclusive) {
  auto config = quick_sweep(2);
  config.branches = 2;
  config.batch = 4;
  EXPECT_THROW(scenario::run_duel_sweep(config), std::invalid_argument);
}

TEST(ForkedDuelSweep, WarmPrefixDefaultDeltaDivergesFromTheOracle) {
  const auto oracle = scenario::run_duel_sweep(quick_sweep(2));

  auto warm_config = quick_sweep(2);
  warm_config.branches = 2;
  warm_config.fork_prefix_s = 2.0;  // default delta: RNG perturbation
  const auto warm = scenario::run_duel_sweep(warm_config);

  ASSERT_EQ(warm.reports.size(), 2u);
  // The warm run is self-consistent but NOT the oracle: at least one
  // field of one report must differ (seed perturbation changed the
  // attacker/jitter draws past the prefix).
  bool any_diff = false;
  for (std::size_t i = 0; i < warm.reports.size(); ++i) {
    any_diff = any_diff ||
               scenario::encode_duel_report(warm.reports[i]) !=
                   scenario::encode_duel_report(oracle.reports[i]);
  }
  EXPECT_TRUE(any_diff);
  expect_no_orphans();
}

}  // namespace
}  // namespace satin
