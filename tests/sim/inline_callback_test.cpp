// InlineCallback: small-buffer storage for small captures, counted heap
// fallback for oversized ones, move-only ownership semantics.
#include "sim/inline_callback.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <utility>

namespace satin::sim {
namespace {

TEST(InlineCallback, DefaultIsEmpty) {
  InlineCallback cb;
  EXPECT_FALSE(static_cast<bool>(cb));
  EXPECT_FALSE(cb.heap_allocated());
}

TEST(InlineCallback, InvokesSmallCaptureInline) {
  int hits = 0;
  InlineCallback cb([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(cb));
  EXPECT_FALSE(cb.heap_allocated());
  cb();
  cb();
  EXPECT_EQ(hits, 2);
}

TEST(InlineCallback, CaptureAtCapacityStaysInline) {
  std::array<char, InlineCallback::kCapacity - sizeof(void*)> payload{};
  payload.front() = 7;
  payload.back() = 9;
  int sum = 0;
  InlineCallback cb(
      [payload, &sum] { sum = payload.front() + payload.back(); });
  EXPECT_FALSE(cb.heap_allocated());
  cb();
  EXPECT_EQ(sum, 16);
}

TEST(InlineCallback, OversizedCaptureFallsBackToHeapAndIsCounted) {
  const std::uint64_t before = inline_callback_fallbacks().load();
  std::array<char, InlineCallback::kCapacity * 4> big{};
  big[0] = 1;
  bool saw = false;
  InlineCallback cb([big, &saw] { saw = big[0] == 1; });
  EXPECT_TRUE(cb.heap_allocated());
  EXPECT_EQ(inline_callback_fallbacks().load(), before + 1);
  cb();
  EXPECT_TRUE(saw);
}

TEST(InlineCallback, MoveTransfersOwnership) {
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> alive = token;
  int got = 0;
  InlineCallback a([token, &got] { got = *token; });
  token.reset();
  EXPECT_FALSE(alive.expired());  // capture keeps it alive
  InlineCallback b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(got, 42);
  b.reset();
  EXPECT_TRUE(alive.expired());  // reset destroyed the capture
}

TEST(InlineCallback, MoveAssignReplacesExistingTarget) {
  auto old_token = std::make_shared<int>(1);
  std::weak_ptr<int> old_alive = old_token;
  InlineCallback cb([t = std::move(old_token)] { (void)t; });
  int hits = 0;
  cb = InlineCallback([&hits] { ++hits; });
  EXPECT_TRUE(old_alive.expired());  // previous capture destroyed
  cb();
  EXPECT_EQ(hits, 1);
}

TEST(InlineCallback, HeapFallbackMoveMovesThePointerNotTheCapture) {
  std::array<char, InlineCallback::kCapacity * 2> big{};
  big[1] = 5;
  int got = 0;
  InlineCallback a([big, &got] { got = big[1]; });
  ASSERT_TRUE(a.heap_allocated());
  InlineCallback b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.heap_allocated());
  b();
  EXPECT_EQ(got, 5);
}

}  // namespace
}  // namespace satin::sim
