#include "sim/log.h"

#include <gtest/gtest.h>

#include <string>

#include "sim/engine.h"

namespace satin::sim {
namespace {

std::string* captured() {
  static std::string message;
  return &message;
}

void capture_sink(LogLevel, const std::string& msg) { *captured() = msg; }

TEST(LogClock, NoPrefixWithoutInstalledClock) {
  set_log_clock(nullptr, nullptr);
  EXPECT_EQ(log_time_prefix(), "");
}

TEST(LogClock, EngineInstallsSimulatedTimePrefix) {
  Engine engine;
  EXPECT_EQ(log_time_prefix(), "[t=0.000ms] ");
  engine.schedule_at(Time::from_us(12345), [] {});
  engine.run_all();
  EXPECT_EQ(log_time_prefix(), "[t=12.345ms] ");
}

TEST(LogClock, PrefixClearsWhenEngineDies) {
  {
    Engine engine;
    EXPECT_NE(log_time_prefix(), "");
  }
  EXPECT_EQ(log_time_prefix(), "");
}

TEST(LogClock, NewestEngineWins) {
  Engine first;
  first.schedule_at(Time::from_ms(5), [] {});
  first.run_all();
  {
    Engine second;  // installs itself over `first`
    EXPECT_EQ(log_time_prefix(), "[t=0.000ms] ");
  }
  // The newer engine uninstalled only itself; no clock remains (the old
  // engine does not re-install), so the prefix falls back to empty.
  EXPECT_EQ(log_time_prefix(), "");
}

TEST(LogSinkTest, SinkReceivesRawMessageWithoutPrefix) {
  Engine engine;  // a clock is installed, but sinks must not see it
  captured()->clear();
  set_log_sink(&capture_sink);
  SATIN_LOG(kWarn) << "hello " << 42;
  set_log_sink(nullptr);
  EXPECT_EQ(*captured(), "hello 42");
}

TEST(LogSinkTest, LevelGateStillApplies) {
  set_log_level(LogLevel::kWarn);
  captured()->clear();
  set_log_sink(&capture_sink);
  SATIN_LOG(kDebug) << "should not appear";
  set_log_sink(nullptr);
  EXPECT_EQ(*captured(), "");
}

}  // namespace
}  // namespace satin::sim
