#include "sim/fastmath.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>

namespace satin::sim {
namespace {

std::uint64_t bits_of(double x) {
  std::uint64_t b = 0;
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

// Distance in representable doubles, monotone across zero.
long long ulp_diff(double a, double b) {
  std::int64_t ia = static_cast<std::int64_t>(bits_of(a));
  std::int64_t ib = static_cast<std::int64_t>(bits_of(b));
  if (ia < 0) ia = std::numeric_limits<std::int64_t>::min() - ia;
  if (ib < 0) ib = std::numeric_limits<std::int64_t>::min() - ib;
  const long long d = static_cast<long long>(ia - ib);
  return d < 0 ? -d : d;
}

// The envelope the draw models rely on: measured max over 4M samples was
// 2 ulp (log) / 1 ulp (exp); the bounds leave one ulp of slack so a
// compiler update can't flake the suite, while still catching any real
// regression in the polynomials or reductions.
constexpr long long kLogUlpBound = 3;
constexpr long long kExpUlpBound = 2;

TEST(FastMath, LogStaysWithinUlpEnvelopeOfLibm) {
  std::mt19937_64 g(42);
  for (int i = 0; i < 300000; ++i) {
    double x;
    if (i % 3 == 0) {
      x = std::uniform_real_distribution<double>(0.5, 2.0)(g);  // near 1
    } else if (i % 3 == 1) {
      x = std::uniform_real_distribution<double>(0.0, 1.0)(g);  // canonical
      if (x == 0.0) continue;
    } else {
      // Random positive bit patterns: every finite exponent, denormals too.
      const std::uint64_t u = g() & 0x7FFFFFFFFFFFFFFFull;
      std::memcpy(&x, &u, sizeof(x));
      if (!(x > 0.0) || std::isinf(x)) continue;
    }
    ASSERT_LE(ulp_diff(fm_log(x), std::log(x)), kLogUlpBound)
        << "x = " << std::hexfloat << x;
  }
}

TEST(FastMath, ExpStaysWithinUlpEnvelopeOfLibm) {
  std::mt19937_64 g(43);
  for (int i = 0; i < 300000; ++i) {
    const double x =
        (i % 2) ? std::uniform_real_distribution<double>(-746.0, 710.0)(g)
                : std::uniform_real_distribution<double>(-20.0, 5.0)(g);
    ASSERT_LE(ulp_diff(fm_exp(x), std::exp(x)), kExpUlpBound)
        << "x = " << std::hexfloat << x;
  }
}

TEST(FastMath, ExpCoreAgreesWithFullDomainInsideWindow) {
  // fm_exp dispatches to fm_exp_core across [-708, 692]; the batched
  // lognormal kernel calls the core directly, so the two must be the
  // same function there — bit for bit, not within tolerance.
  std::mt19937_64 g(44);
  for (int i = 0; i < 200000; ++i) {
    const double x = std::uniform_real_distribution<double>(-708.0, 692.0)(g);
    ASSERT_EQ(bits_of(fm_exp_core(x)), bits_of(fm_exp(x)))
        << "x = " << std::hexfloat << x;
  }
}

TEST(FastMath, LogSpecialValues) {
  EXPECT_EQ(fm_log(0.0), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(fm_log(-0.0), -std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isnan(fm_log(-1.0)));
  EXPECT_EQ(fm_log(std::numeric_limits<double>::infinity()),
            std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isnan(fm_log(std::numeric_limits<double>::quiet_NaN())));
  EXPECT_EQ(fm_log(1.0), 0.0);
}

TEST(FastMath, ExpSpecialValues) {
  EXPECT_EQ(fm_exp(0.0), 1.0);
  EXPECT_TRUE(std::isnan(fm_exp(std::numeric_limits<double>::quiet_NaN())));
  EXPECT_EQ(fm_exp(std::numeric_limits<double>::infinity()),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(fm_exp(710.0), std::numeric_limits<double>::infinity());
  EXPECT_EQ(fm_exp(-750.0), 0.0);
  EXPECT_EQ(fm_exp(-std::numeric_limits<double>::infinity()), 0.0);
}

// Golden bit patterns: the run of record depends on these exact outputs
// (every jitter draw routes through fm_log, spikes through fm_exp). A
// change here is a stream shift and must be deliberate, like PR-8's.
TEST(FastMath, LogGoldenBits) {
  const struct {
    double x;
    std::uint64_t want;
  } kGolden[] = {
      {0.5, 0xBFE62E42FEFA39EFull},
      {0.66710392964029952, 0xBFD9E865CE4B3090ull},
      {0.99999999999999989, 0xBCA0000000000000ull},
      {1.0000000000000002, 0x3CB0000000000000ull},
      {2.0, 0x3FE62E42FEFA39EFull},
      {2.3e-4, 0xC020C13EAB2E3D5Full},
      {1e-300, 0xC085963447F87FB5ull},
      {4.9406564584124654e-324, 0xC0874385446D71C3ull},  // least denormal
      {1.7976931348623157e308, 0x40862E42FEFA39EFull},   // DBL_MAX
  };
  for (const auto& gc : kGolden) {
    EXPECT_EQ(bits_of(fm_log(gc.x)), gc.want) << "x = " << gc.x;
  }
}

TEST(FastMath, ExpGoldenBits) {
  const struct {
    double x;
    std::uint64_t want;
  } kGolden[] = {
      {-1.0, 0x3FD78B56362CEF38ull},
      {0.5, 0x3FFA61298E1E069Cull},
      {-8.3804330961644293, 0x3F2E0E632503EB30ull},  // duel lognormal mu
      {13.2, 0x41207D99DFDECC61ull},
      {-181.85050748229287, 0x2F8905DA05A31396ull},
      {691.9, 0x7E52635915893A02ull},   // core window edge
      {-707.9, 0x001A4904F4342894ull},  // core window edge
      {700.0, 0x7F0D945DF4F8EC8Eull},   // tail path
      {-740.0, 0x0000000000000055ull},  // gradual underflow, tail path
      {709.78, 0x7FEFE9CE5C4C52B4ull},  // just under overflow
  };
  for (const auto& gc : kGolden) {
    EXPECT_EQ(bits_of(fm_exp(gc.x)), gc.want) << "x = " << gc.x;
  }
}

TEST(FastMath, LogDenormalPrescaleIsExact) {
  // The 2^54 prescale is a pure exponent shift for any denormal; verify
  // the repaired result tracks libm through the whole denormal range.
  std::mt19937_64 g(45);
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t u = g() & 0x000FFFFFFFFFFFFFull;  // exponent 0
    if (u == 0) continue;
    double x;
    std::memcpy(&x, &u, sizeof(x));
    ASSERT_LE(ulp_diff(fm_log(x), std::log(x)), kLogUlpBound)
        << "bits = 0x" << std::hex << u;
  }
}

}  // namespace
}  // namespace satin::sim
