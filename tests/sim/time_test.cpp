#include "sim/time.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace satin::sim {
namespace {

TEST(Time, DefaultIsZero) {
  EXPECT_EQ(Time().ps(), 0);
  EXPECT_TRUE(Time().is_zero());
  EXPECT_EQ(Time::zero(), Time());
}

TEST(Time, IntegerFactories) {
  EXPECT_EQ(Time::from_ps(7).ps(), 7);
  EXPECT_EQ(Time::from_ns(3).ps(), 3'000);
  EXPECT_EQ(Time::from_us(2).ps(), 2'000'000);
  EXPECT_EQ(Time::from_ms(5).ps(), 5'000'000'000);
  EXPECT_EQ(Time::from_sec(1).ps(), 1'000'000'000'000);
}

TEST(Time, FractionalFactoriesRoundToNearestPicosecond) {
  EXPECT_EQ(Time::from_ns_f(6.67).ps(), 6'670);
  EXPECT_EQ(Time::from_sec_f(6.67e-9).ps(), 6'670);
  EXPECT_EQ(Time::from_us_f(0.0000005).ps(), 1);  // 0.5 ps rounds up
  EXPECT_EQ(Time::from_ms_f(-1.0).ps(), -1'000'000'000);
}

TEST(Time, UnitAccessors) {
  const Time t = Time::from_ps(1'234'000);
  EXPECT_DOUBLE_EQ(t.ns(), 1'234.0);
  EXPECT_DOUBLE_EQ(t.us(), 1.234);
  EXPECT_NEAR(t.ms(), 1.234e-3, 1e-15);
  EXPECT_NEAR(t.sec(), 1.234e-6, 1e-18);
}

TEST(Time, TotalOrder) {
  EXPECT_LT(Time::from_ns(1), Time::from_ns(2));
  EXPECT_GT(Time::from_sec(1), Time::from_ms(999));
  EXPECT_EQ(Time::from_us(1000), Time::from_ms(1));
  EXPECT_LE(Time::from_ps(5), Time::from_ps(5));
}

TEST(Time, Arithmetic) {
  const Time a = Time::from_us(3);
  const Time b = Time::from_us(2);
  EXPECT_EQ((a + b).us(), 5.0);
  EXPECT_EQ((a - b).us(), 1.0);
  EXPECT_EQ((a * 4).us(), 12.0);
  EXPECT_EQ((4 * a).us(), 12.0);
  EXPECT_EQ((a / 3).us(), 1.0);
}

TEST(Time, ScalarMultiplyRounds) {
  EXPECT_EQ((Time::from_ps(10) * 0.25).ps(), 3);  // 2.5 rounds to 3
  EXPECT_EQ((Time::from_ns(100) * 1.5).ps(), 150'000);
}

TEST(Time, RatioOfSpans) {
  EXPECT_DOUBLE_EQ(Time::from_ms(10) / Time::from_ms(4), 2.5);
}

TEST(Time, CompoundAssignment) {
  Time t = Time::from_ns(10);
  t += Time::from_ns(5);
  EXPECT_EQ(t, Time::from_ns(15));
  t -= Time::from_ns(20);
  EXPECT_EQ(t, Time::from_ns(-5));
}

TEST(Time, MaxIsHuge) {
  EXPECT_GT(Time::max(), Time::from_sec(100'000'000));
}

TEST(Time, ToStringUsesScientificSeconds) {
  EXPECT_EQ(Time::from_sec_f(8.04e-2).to_string(), "8.040e-02 s");
  EXPECT_EQ(Time::from_ns_f(6.67).to_string(), "6.670e-09 s");
}

TEST(Time, SubNanosecondResolutionForTable1) {
  // Table I distinguishes 6.67e-9 from 6.71e-9 s: 40 fs apart per byte,
  // 4 ps per 100 bytes — representable.
  const Time a = Time::from_sec_f(6.67e-9 * 100);
  const Time b = Time::from_sec_f(6.71e-9 * 100);
  EXPECT_NE(a, b);
}

// The fractional factories route through time_detail::llround_exact — a
// branch-light, libm-free llround the draw kernels can vectorize through.
// It must be bit-exact against std::llround (round to nearest, ties away
// from zero) everywhere the factories can see.
TEST(Time, LlroundExactMatchesStdLlroundOnEdgeCases) {
  const double cases[] = {
      0.0,       -0.0,      0.5,       -0.5,       1.5,     -1.5,
      2.5,       -2.5,      0.49999999999999994,   // largest double < 0.5
      -0.49999999999999994,  1e-300,   -1e-300,
      4503599627370495.5,    // 2^52 - 0.5: largest representable .5 tie
      -4503599627370495.5,   2251799813685248.75,  // 2^51 + 0.75
      -2251799813685248.75,  0x1p52,   -0x1p52,    0x1p52 + 2.0,
      -0x1p52 - 2.0,         0x1p62,   -0x1p62,    6.67e2, 1.234e6,
  };
  for (const double x : cases) {
    EXPECT_EQ(time_detail::llround_exact(x), std::llround(x)) << "x = " << x;
  }
}

TEST(Time, LlroundExactMatchesStdLlroundRandomized) {
  std::mt19937_64 g(46);
  for (int i = 0; i < 200000; ++i) {
    double x;
    switch (i % 4) {
      case 0:  // typical seconds-to-picoseconds magnitudes
        x = std::uniform_real_distribution<double>(-1e9, 1e9)(g);
        break;
      case 1:  // small values rounding to 0 or +-1
        x = std::uniform_real_distribution<double>(-2.0, 2.0)(g);
        break;
      case 2:  // exact .5 ties of both signs
        x = static_cast<double>(
                std::uniform_int_distribution<std::int64_t>(-(1ll << 50),
                                                            1ll << 50)(g)) +
            0.5;
        break;
      default:  // around the 2^52 integer threshold
        x = std::uniform_real_distribution<double>(0x1p51, 0x1p53)(g);
        if (i % 8 >= 4) x = -x;
        break;
    }
    ASSERT_EQ(time_detail::llround_exact(x), std::llround(x))
        << "x = " << std::hexfloat << x;
  }
}

}  // namespace
}  // namespace satin::sim
