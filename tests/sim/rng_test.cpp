#include "sim/rng.h"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <set>

namespace satin::sim {
namespace {

// Bit-level equality: the draw path promises to replicate the libstdc++
// facilities it replaced exactly, not merely approximately.
::testing::AssertionResult BitsEqual(double want, double got) {
  std::uint64_t w = 0, g = 0;
  std::memcpy(&w, &want, sizeof(w));
  std::memcpy(&g, &got, sizeof(g));
  if (w == g) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "want " << want << " (0x" << std::hex << w << "), got " << got
         << " (0x" << g << ")";
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsDeterministicByName) {
  Rng a(7), b(7);
  Rng fa = a.fork("introspector");
  Rng fb = b.fork("introspector");
  EXPECT_EQ(fa.next_u64(), fb.next_u64());
}

TEST(Rng, ForksWithDifferentNamesAreIndependent) {
  Rng root(7);
  Rng a = root.fork("a");
  Rng b = root.fork("b");
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.38e-6, 3.60e-6);
    EXPECT_GE(u, 2.38e-6);
    EXPECT_LT(u, 3.60e-6);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(0, 4));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 4);
}

TEST(Rng, IndexCoversRange) {
  Rng rng(9);
  std::set<std::size_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.index(6));
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, TruncatedNormalStaysInBounds) {
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.truncated_normal(1.07e-8, 5e-10, 9.23e-9, 1.14e-8);
    EXPECT_GE(x, 9.23e-9);
    EXPECT_LE(x, 1.14e-8);
  }
}

TEST(Rng, TruncatedNormalDegenerateClamps) {
  Rng rng(5);
  // Mean far outside [lo, hi]: must clamp, not loop forever.
  const double x = rng.truncated_normal(10.0, 1e-12, 0.0, 1.0);
  EXPECT_EQ(x, 1.0);
}

TEST(Rng, TriangularStaysInBounds) {
  Rng rng(6);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.triangular(0.0, 1.0, 4.0);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 4.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 20000, (0.0 + 1.0 + 4.0) / 3.0, 0.05);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, UniformDurationInclusiveBounds) {
  Rng rng(11);
  const Duration lo = Duration::from_us(1);
  const Duration hi = Duration::from_us(2);
  for (int i = 0; i < 1000; ++i) {
    const Duration d = rng.uniform_duration(lo, hi);
    EXPECT_GE(d, lo);
    EXPECT_LE(d, hi);
  }
}

TEST(Rng, PickReturnsElements) {
  Rng rng(12);
  const std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int x = rng.pick(v);
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
}

TEST(Rng, ShufflePermutes) {
  Rng rng(13);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v.begin(), v.end());
  auto resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

TEST(Rng, LognormalPositive) {
  Rng rng(14);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.lognormal(-8.0, 0.55), 0.0);
  }
}

// ---------------------------------------------------------------------------
// Differential tests against the standard library. Every recorded output in
// this repo (CI byte-identity gates, EXPERIMENTS.md, committed BENCH_pr*.json
// context) is pinned to the draw sequence the original std::-based
// implementation produced; these tests lock the in-repo fast path to that
// sequence draw for draw. A failure here means outputs silently shifted.

TEST(RngDifferential, EngineStreamMatchesStdMt19937_64) {
  // 100k draws crosses the 312-word twist boundary hundreds of times.
  for (const std::uint64_t seed :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{5489},
        std::uint64_t{0xDEADBEEFCAFEBABEull}, ~std::uint64_t{0}}) {
    std::mt19937_64 ref(seed);
    Mt19937_64 ours(seed);
    for (int i = 0; i < 100000; ++i) {
      ASSERT_EQ(ref(), ours()) << "seed " << seed << " draw " << i;
    }
  }
}

TEST(RngDifferential, UniformMatchesStdUniformRealDistribution) {
  std::mt19937_64 ref(7);
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double want = std::uniform_real_distribution<double>(0.0, 1.0)(ref);
    ASSERT_TRUE(BitsEqual(want, rng.uniform())) << "draw " << i;
  }
  std::mt19937_64 ref2(11);
  Rng rng2(11);
  for (int i = 0; i < 100000; ++i) {
    const double want =
        std::uniform_real_distribution<double>(2.38e-6, 3.60e-6)(ref2);
    ASSERT_TRUE(BitsEqual(want, rng2.uniform(2.38e-6, 3.60e-6)))
        << "draw " << i;
  }
}

TEST(RngDifferential, NormalMatchesFreshStdNormalDistributionPerCall) {
  const double params[][2] = {
      {0.0, 1.0}, {1.07e-8, 5e-10}, {5.80e-3, 2.0e-4}, {-3.5, 2.75}};
  for (const auto& p : params) {
    std::mt19937_64 ref(13);
    Rng rng(13);
    for (int i = 0; i < 50000; ++i) {
      // A fresh distribution per call, exactly like the implementation this
      // fast path replaced (the polar method's spare variate is discarded).
      const double want = std::normal_distribution<double>(p[0], p[1])(ref);
      ASSERT_TRUE(BitsEqual(want, rng.normal(p[0], p[1])))
          << "params (" << p[0] << ", " << p[1] << ") draw " << i;
    }
  }
}

TEST(RngDifferential, TruncatedNormalMatchesStdReferenceLoop) {
  std::mt19937_64 ref(5);
  Rng rng(5);
  const double mean = 1.55e-4, sd = 3.5e-5, lo = 0.95e-4, hi = 2.6e-4;
  for (int i = 0; i < 50000; ++i) {
    double want = std::clamp(mean, lo, hi);
    for (int tries = 0; tries < 1024; ++tries) {
      const double x = std::normal_distribution<double>(mean, sd)(ref);
      if (x >= lo && x <= hi) {
        want = x;
        break;
      }
    }
    ASSERT_TRUE(BitsEqual(want, rng.truncated_normal(mean, sd, lo, hi)))
        << "draw " << i;
  }
}

TEST(RngDifferential, BernoulliMatchesStdAndStaysStreamAligned) {
  std::mt19937_64 ref(17);
  Rng rng(17);
  for (int i = 0; i < 100000; ++i) {
    const double p = (i % 101) / 100.0;
    ASSERT_EQ(std::bernoulli_distribution(p)(ref), rng.bernoulli(p))
        << "draw " << i;
  }
  // Both consumed exactly one engine draw per call.
  EXPECT_EQ(ref(), rng.next_u64());
}

TEST(RngDifferential, ExponentialAndLognormalMatchStd) {
  std::mt19937_64 ref(19);
  Rng rng(19);
  for (int i = 0; i < 50000; ++i) {
    const double want =
        std::exponential_distribution<double>(1.0 / 3.7e-4)(ref);
    ASSERT_TRUE(BitsEqual(want, rng.exponential(3.7e-4))) << "draw " << i;
  }
  std::mt19937_64 ref2(23);
  Rng rng2(23);
  for (int i = 0; i < 50000; ++i) {
    const double want = std::lognormal_distribution<double>(-8.0, 0.55)(ref2);
    ASSERT_TRUE(BitsEqual(want, rng2.lognormal(-8.0, 0.55))) << "draw " << i;
  }
}

TEST(RngDifferential, MixedDrawSequenceStaysAligned) {
  // Interleave every draw kind on one stream and mirror it with the std::
  // equivalents: catches any method consuming a different number of engine
  // draws, not just producing different values.
  std::mt19937_64 ref(29);
  Rng rng(29);
  for (int i = 0; i < 20000; ++i) {
    switch (i % 7) {
      case 0:
        ASSERT_TRUE(BitsEqual(
            std::uniform_real_distribution<double>(0.0, 1.0)(ref),
            rng.uniform()));
        break;
      case 1:
        ASSERT_EQ(std::uniform_int_distribution<std::int64_t>(-5, 999)(ref),
                  rng.uniform_int(-5, 999));
        break;
      case 2:
        ASSERT_TRUE(BitsEqual(std::normal_distribution<double>(2.0, 3.0)(ref),
                              rng.normal(2.0, 3.0)));
        break;
      case 3:
        ASSERT_EQ(std::bernoulli_distribution(0.3)(ref), rng.bernoulli(0.3));
        break;
      case 4:
        ASSERT_TRUE(BitsEqual(
            std::exponential_distribution<double>(1.0 / 2.5)(ref),
            rng.exponential(2.5)));
        break;
      case 5:
        ASSERT_TRUE(
            BitsEqual(std::lognormal_distribution<double>(0.4, 1.7)(ref),
                      rng.lognormal(0.4, 1.7)));
        break;
      case 6:
        ASSERT_EQ(ref(), rng.next_u64());
        break;
    }
  }
}

}  // namespace
}  // namespace satin::sim
