#include "sim/rng.h"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <set>

namespace satin::sim {
namespace {

// Bit-level equality: the draw path promises to replicate the libstdc++
// facilities it replaced exactly, not merely approximately.
::testing::AssertionResult BitsEqual(double want, double got) {
  std::uint64_t w = 0, g = 0;
  std::memcpy(&w, &want, sizeof(w));
  std::memcpy(&g, &got, sizeof(g));
  if (w == g) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "want " << want << " (0x" << std::hex << w << "), got " << got
         << " (0x" << g << ")";
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsDeterministicByName) {
  Rng a(7), b(7);
  Rng fa = a.fork("introspector");
  Rng fb = b.fork("introspector");
  EXPECT_EQ(fa.next_u64(), fb.next_u64());
}

TEST(Rng, ForksWithDifferentNamesAreIndependent) {
  Rng root(7);
  Rng a = root.fork("a");
  Rng b = root.fork("b");
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.38e-6, 3.60e-6);
    EXPECT_GE(u, 2.38e-6);
    EXPECT_LT(u, 3.60e-6);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(0, 4));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 4);
}

TEST(Rng, IndexCoversRange) {
  Rng rng(9);
  std::set<std::size_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.index(6));
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, TruncatedNormalStaysInBounds) {
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.truncated_normal(1.07e-8, 5e-10, 9.23e-9, 1.14e-8);
    EXPECT_GE(x, 9.23e-9);
    EXPECT_LE(x, 1.14e-8);
  }
}

TEST(Rng, TruncatedNormalDegenerateClamps) {
  Rng rng(5);
  // Mean far outside [lo, hi]: must clamp, not loop forever.
  const double x = rng.truncated_normal(10.0, 1e-12, 0.0, 1.0);
  EXPECT_EQ(x, 1.0);
}

TEST(Rng, TriangularStaysInBounds) {
  Rng rng(6);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.triangular(0.0, 1.0, 4.0);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 4.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 20000, (0.0 + 1.0 + 4.0) / 3.0, 0.05);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, UniformDurationInclusiveBounds) {
  Rng rng(11);
  const Duration lo = Duration::from_us(1);
  const Duration hi = Duration::from_us(2);
  for (int i = 0; i < 1000; ++i) {
    const Duration d = rng.uniform_duration(lo, hi);
    EXPECT_GE(d, lo);
    EXPECT_LE(d, hi);
  }
}

TEST(Rng, PickReturnsElements) {
  Rng rng(12);
  const std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int x = rng.pick(v);
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
}

TEST(Rng, ShufflePermutes) {
  Rng rng(13);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v.begin(), v.end());
  auto resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

TEST(Rng, LognormalPositive) {
  Rng rng(14);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.lognormal(-8.0, 0.55), 0.0);
  }
}

// ---------------------------------------------------------------------------
// Differential tests. The engine and the log/exp-free distributions
// (uniform, uniform_int, bernoulli) are still pinned bit for bit to their
// std:: references — those never shifted. The log/exp-based distributions
// (normal, truncated_normal, exponential, lognormal) moved from libm to
// the in-repo fm_log/fm_exp in PR-8 (a one-time, documented stream shift;
// see sim/fastmath.h): they are pinned here against independently written
// reference loops that share only the fm_* primitives — which
// fastmath_test.cpp pins to golden bits in turn — so any change in draw
// count, operation order, or the primitives themselves fails loudly.

// Reference Marsaglia polar normal: the consumption pattern Rng::normal
// promises (fresh distribution per call, spare variate discarded),
// written against std::mt19937_64 + std::uniform_real_distribution.
double ref_normal(std::mt19937_64& eng, double mean, double stddev) {
  double x, y, r2;
  do {
    x = 2.0 * std::uniform_real_distribution<double>(0.0, 1.0)(eng) - 1.0;
    y = 2.0 * std::uniform_real_distribution<double>(0.0, 1.0)(eng) - 1.0;
    r2 = x * x + y * y;
  } while (r2 > 1.0 || r2 == 0.0);
  const double mult = std::sqrt(-2.0 * fm_log(r2) / r2);
  return y * mult * stddev + mean;
}

double ref_exponential(std::mt19937_64& eng, double mean) {
  const double lambda = 1.0 / mean;
  const double u = std::uniform_real_distribution<double>(0.0, 1.0)(eng);
  return -fm_log(1.0 - u) / lambda;
}

double ref_lognormal(std::mt19937_64& eng, double mu, double sigma) {
  return fm_exp(sigma * ref_normal(eng, 0.0, 1.0) + mu);
}

TEST(RngDifferential, EngineStreamMatchesStdMt19937_64) {
  // 100k draws crosses the 312-word twist boundary hundreds of times.
  for (const std::uint64_t seed :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{5489},
        std::uint64_t{0xDEADBEEFCAFEBABEull}, ~std::uint64_t{0}}) {
    std::mt19937_64 ref(seed);
    Mt19937_64 ours(seed);
    for (int i = 0; i < 100000; ++i) {
      ASSERT_EQ(ref(), ours()) << "seed " << seed << " draw " << i;
    }
  }
}

TEST(RngDifferential, UniformMatchesStdUniformRealDistribution) {
  std::mt19937_64 ref(7);
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double want = std::uniform_real_distribution<double>(0.0, 1.0)(ref);
    ASSERT_TRUE(BitsEqual(want, rng.uniform())) << "draw " << i;
  }
  std::mt19937_64 ref2(11);
  Rng rng2(11);
  for (int i = 0; i < 100000; ++i) {
    const double want =
        std::uniform_real_distribution<double>(2.38e-6, 3.60e-6)(ref2);
    ASSERT_TRUE(BitsEqual(want, rng2.uniform(2.38e-6, 3.60e-6)))
        << "draw " << i;
  }
}

TEST(RngDifferential, NormalMatchesPolarReferencePerCall) {
  const double params[][2] = {
      {0.0, 1.0}, {1.07e-8, 5e-10}, {5.80e-3, 2.0e-4}, {-3.5, 2.75}};
  for (const auto& p : params) {
    std::mt19937_64 ref(13);
    Rng rng(13);
    for (int i = 0; i < 50000; ++i) {
      ASSERT_TRUE(BitsEqual(ref_normal(ref, p[0], p[1]),
                            rng.normal(p[0], p[1])))
          << "params (" << p[0] << ", " << p[1] << ") draw " << i;
    }
  }
}

TEST(RngDifferential, TruncatedNormalMatchesReferenceLoop) {
  std::mt19937_64 ref(5);
  Rng rng(5);
  const double mean = 1.55e-4, sd = 3.5e-5, lo = 0.95e-4, hi = 2.6e-4;
  for (int i = 0; i < 50000; ++i) {
    double want = std::clamp(mean, lo, hi);
    for (int tries = 0; tries < 1024; ++tries) {
      const double x = ref_normal(ref, mean, sd);
      if (x >= lo && x <= hi) {
        want = x;
        break;
      }
    }
    ASSERT_TRUE(BitsEqual(want, rng.truncated_normal(mean, sd, lo, hi)))
        << "draw " << i;
  }
}

// Golden first draws of the run-of-record stream: pins the fm-based
// sequence itself (the references above share fm_log/fm_exp with the
// implementation, so alone they could not catch a shift in those).
TEST(RngDifferential, DistributionGoldenBits) {
  const auto b = [](double x) {
    std::uint64_t v = 0;
    std::memcpy(&v, &x, sizeof(v));
    return v;
  };
  Rng n(101);
  EXPECT_EQ(b(n.normal(0.0, 1.0)), 0x3FDD751D898B57DBull);
  EXPECT_EQ(b(n.normal(0.0, 1.0)), 0xBFDE46FF28FBDFCEull);
  Rng t(102);
  EXPECT_EQ(b(t.truncated_normal(1.55e-4, 3.5e-5, 0.95e-4, 2.6e-4)),
            0x3F25CFBCF243C46Full);
  Rng e(103);
  EXPECT_EQ(b(e.exponential(3.7e-4)), 0x3F339803D3A59170ull);
  Rng l(104);
  EXPECT_EQ(b(l.lognormal(-8.0, 0.55)), 0x3F2F227F46FFC86Bull);
}

TEST(RngDifferential, BernoulliMatchesStdAndStaysStreamAligned) {
  std::mt19937_64 ref(17);
  Rng rng(17);
  for (int i = 0; i < 100000; ++i) {
    const double p = (i % 101) / 100.0;
    ASSERT_EQ(std::bernoulli_distribution(p)(ref), rng.bernoulli(p))
        << "draw " << i;
  }
  // Both consumed exactly one engine draw per call.
  EXPECT_EQ(ref(), rng.next_u64());
}

TEST(RngDifferential, ExponentialAndLognormalMatchReference) {
  std::mt19937_64 ref(19);
  Rng rng(19);
  for (int i = 0; i < 50000; ++i) {
    ASSERT_TRUE(BitsEqual(ref_exponential(ref, 3.7e-4), rng.exponential(3.7e-4)))
        << "draw " << i;
  }
  std::mt19937_64 ref2(23);
  Rng rng2(23);
  for (int i = 0; i < 50000; ++i) {
    ASSERT_TRUE(
        BitsEqual(ref_lognormal(ref2, -8.0, 0.55), rng2.lognormal(-8.0, 0.55)))
        << "draw " << i;
  }
}

TEST(RngDifferential, MixedDrawSequenceStaysAligned) {
  // Interleave every draw kind on one stream and mirror it with the std::
  // equivalents: catches any method consuming a different number of engine
  // draws, not just producing different values.
  std::mt19937_64 ref(29);
  Rng rng(29);
  for (int i = 0; i < 20000; ++i) {
    switch (i % 7) {
      case 0:
        ASSERT_TRUE(BitsEqual(
            std::uniform_real_distribution<double>(0.0, 1.0)(ref),
            rng.uniform()));
        break;
      case 1:
        ASSERT_EQ(std::uniform_int_distribution<std::int64_t>(-5, 999)(ref),
                  rng.uniform_int(-5, 999));
        break;
      case 2:
        ASSERT_TRUE(BitsEqual(ref_normal(ref, 2.0, 3.0), rng.normal(2.0, 3.0)));
        break;
      case 3:
        ASSERT_EQ(std::bernoulli_distribution(0.3)(ref), rng.bernoulli(0.3));
        break;
      case 4:
        ASSERT_TRUE(
            BitsEqual(ref_exponential(ref, 2.5), rng.exponential(2.5)));
        break;
      case 5:
        ASSERT_TRUE(
            BitsEqual(ref_lognormal(ref, 0.4, 1.7), rng.lognormal(0.4, 1.7)));
        break;
      case 6:
        ASSERT_EQ(ref(), rng.next_u64());
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// Batched pipeline differentials: a kBatched stream must equal the
// kScalar per-draw oracle bit for bit at every block size — the batch
// engine's byte-identity gate (--batch=K vs --batch=1) rests on this.

// Block sizes straddling the kernel chunk boundaries: degenerate (1),
// small, odd (33 — forces ragged refill tails), and the default.
const std::size_t kBlocks[] = {1, 2, 4, 8, 33, kDefaultDrawBlock};

template <typename MakeStream>
void ExpectBatchedMatchesScalar(MakeStream make, int draws) {
  for (const std::size_t block : kBlocks) {
    auto scalar = make(DrawMode::kScalar, kDefaultDrawBlock);
    auto batched = make(DrawMode::kBatched, block);
    for (int i = 0; i < draws; ++i) {
      ASSERT_TRUE(BitsEqual(scalar.next(), batched.next()))
          << "block " << block << " draw " << i;
    }
  }
}

TEST(RngBatched, CanonicalStreamMatchesScalar) {
  ExpectBatchedMatchesScalar(
      [](DrawMode m, std::size_t b) { return CanonicalStream(Rng(31), m, b); },
      20000);
}

TEST(RngBatched, NormalStreamMatchesScalar) {
  ExpectBatchedMatchesScalar(
      [](DrawMode m, std::size_t b) {
        return NormalStream(Rng(37), 1.55e-4, 3.5e-5, m, b);
      },
      20000);
}

TEST(RngBatched, TruncatedNormalStreamMatchesScalar) {
  // The duel's cross-core delay parameterization (modest rejection rate).
  ExpectBatchedMatchesScalar(
      [](DrawMode m, std::size_t b) {
        return TruncatedNormalStream(Rng(41), 1.55e-4, 3.5e-5, 0.95e-4,
                                     2.6e-4, m, b);
      },
      20000);
}

TEST(RngBatched, TruncatedNormalHeavyRejectionMatchesScalar) {
  // Bounds half a sigma wide: ~62% of candidates rejected, so the carried
  // miss counter is exercised across nearly every refill.
  ExpectBatchedMatchesScalar(
      [](DrawMode m, std::size_t b) {
        return TruncatedNormalStream(Rng(43), 0.0, 1.0, -0.25, 0.25, m, b);
      },
      8000);
}

TEST(RngBatched, TruncatedNormalClampFallbackMatchesScalar) {
  // Mean far outside [lo, hi]: every candidate misses, so each output is
  // the 1024-try clamp. The batched path must count misses — not polar
  // rejections — exactly like the scalar loop counts completed normals.
  ExpectBatchedMatchesScalar(
      [](DrawMode m, std::size_t b) {
        return TruncatedNormalStream(Rng(47), 10.0, 1e-12, 0.0, 1.0, m, b);
      },
      5);
}

TEST(RngBatched, TruncatedNormalNearClampBoundaryMatchesScalar) {
  // ~8 sigma bounds: rejection is overwhelming but not total, so miss
  // runs grow long without (usually) reaching 1024 — the regime where an
  // off-by-one in the carried counter would first surface.
  ExpectBatchedMatchesScalar(
      [](DrawMode m, std::size_t b) {
        return TruncatedNormalStream(Rng(53), 0.0, 1.0, 8.0, 9.0, m, b);
      },
      3);
}

TEST(RngBatched, ExponentialStreamMatchesScalar) {
  ExpectBatchedMatchesScalar(
      [](DrawMode m, std::size_t b) {
        return ExponentialStream(Rng(59), 3.7e-4, m, b);
      },
      20000);
}

TEST(RngBatched, LognormalStreamMatchesScalar) {
  ExpectBatchedMatchesScalar(
      [](DrawMode m, std::size_t b) {
        return LognormalStream(Rng(61), -8.3804330961644287, 0.55, m, b);
      },
      20000);
}

TEST(RngBatched, DispatchedKernelsMatchBaseFlavor) {
  // On hosts where draw_kernels() resolves to a wider ISA flavor, this is
  // the cross-ISA bit-identity check; where it resolves to base it is a
  // tautology, and the real check runs on the wide CI host.
  std::vector<double> wide, base;
  {
    TruncatedNormalStream s(Rng(67), 1.55e-4, 3.5e-5, 0.95e-4, 2.6e-4,
                            DrawMode::kBatched);
    LognormalStream l(Rng(71), -8.0, 0.55, DrawMode::kBatched);
    for (int i = 0; i < 30000; ++i) {
      wide.push_back(s.next());
      wide.push_back(l.next());
    }
  }
  detail::force_base_draw_kernels(true);
  {
    TruncatedNormalStream s(Rng(67), 1.55e-4, 3.5e-5, 0.95e-4, 2.6e-4,
                            DrawMode::kBatched);
    LognormalStream l(Rng(71), -8.0, 0.55, DrawMode::kBatched);
    for (int i = 0; i < 30000; ++i) {
      base.push_back(s.next());
      base.push_back(l.next());
    }
  }
  detail::force_base_draw_kernels(false);
  ASSERT_EQ(wide.size(), base.size());
  for (std::size_t i = 0; i < wide.size(); ++i) {
    ASSERT_TRUE(BitsEqual(wide[i], base[i])) << "draw " << i;
  }
}

TEST(RngBatched, ScalarStreamLeavesEngineIdenticalToDirectCalls) {
  // kScalar streams are pass-throughs: a consumer holding one behaves
  // exactly like one calling Rng directly (same draws, same engine use).
  Rng direct(73);
  TruncatedNormalStream stream(Rng(73), 1.55e-4, 3.5e-5, 0.95e-4, 2.6e-4,
                               DrawMode::kScalar);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(BitsEqual(
        direct.truncated_normal(1.55e-4, 3.5e-5, 0.95e-4, 2.6e-4),
        stream.next()));
  }
}

TEST(RngBatched, EngineGenerateBlockMatchesPerCallDraws) {
  Mt19937_64 a(79), b(79);
  std::vector<std::uint64_t> block(10007);  // prime: ragged twist overlap
  a.generate_block(block.data(), block.size());
  for (std::size_t i = 0; i < block.size(); ++i) {
    ASSERT_EQ(block[i], b()) << "draw " << i;
  }
  // Mixed consumption: alternate blocks and single draws on one engine.
  std::vector<std::uint64_t> tail(313);
  a.generate_block(tail.data(), tail.size());
  for (std::size_t i = 0; i < tail.size(); ++i) {
    ASSERT_EQ(tail[i], b()) << "tail draw " << i;
  }
  ASSERT_EQ(a(), b());
}

}  // namespace
}  // namespace satin::sim
