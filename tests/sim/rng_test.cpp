#include "sim/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace satin::sim {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsDeterministicByName) {
  Rng a(7), b(7);
  Rng fa = a.fork("introspector");
  Rng fb = b.fork("introspector");
  EXPECT_EQ(fa.next_u64(), fb.next_u64());
}

TEST(Rng, ForksWithDifferentNamesAreIndependent) {
  Rng root(7);
  Rng a = root.fork("a");
  Rng b = root.fork("b");
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.38e-6, 3.60e-6);
    EXPECT_GE(u, 2.38e-6);
    EXPECT_LT(u, 3.60e-6);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform_int(0, 4));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 4);
}

TEST(Rng, IndexCoversRange) {
  Rng rng(9);
  std::set<std::size_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.index(6));
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, TruncatedNormalStaysInBounds) {
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.truncated_normal(1.07e-8, 5e-10, 9.23e-9, 1.14e-8);
    EXPECT_GE(x, 9.23e-9);
    EXPECT_LE(x, 1.14e-8);
  }
}

TEST(Rng, TruncatedNormalDegenerateClamps) {
  Rng rng(5);
  // Mean far outside [lo, hi]: must clamp, not loop forever.
  const double x = rng.truncated_normal(10.0, 1e-12, 0.0, 1.0);
  EXPECT_EQ(x, 1.0);
}

TEST(Rng, TriangularStaysInBounds) {
  Rng rng(6);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.triangular(0.0, 1.0, 4.0);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 4.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 20000, (0.0 + 1.0 + 4.0) / 3.0, 0.05);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, UniformDurationInclusiveBounds) {
  Rng rng(11);
  const Duration lo = Duration::from_us(1);
  const Duration hi = Duration::from_us(2);
  for (int i = 0; i < 1000; ++i) {
    const Duration d = rng.uniform_duration(lo, hi);
    EXPECT_GE(d, lo);
    EXPECT_LE(d, hi);
  }
}

TEST(Rng, PickReturnsElements) {
  Rng rng(12);
  const std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int x = rng.pick(v);
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
}

TEST(Rng, ShufflePermutes) {
  Rng rng(13);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v.begin(), v.end());
  auto resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

TEST(Rng, LognormalPositive) {
  Rng rng(14);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.lognormal(-8.0, 0.55), 0.0);
  }
}

}  // namespace
}  // namespace satin::sim
