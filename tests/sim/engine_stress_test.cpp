// Engine stress: callbacks that cancel and reschedule other events (and
// themselves) mid-run, determinism of the resulting storm for a fixed
// seed, and handle safety after events fire.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/engine.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace satin::sim {
namespace {

// A self-perturbing event storm: every firing event records itself, then
// randomly cancels a live handle (possibly its own, already-fired one)
// and schedules a replacement. Exercises cancel-while-queued,
// cancel-after-fire, and schedule-from-callback all at once.
struct Storm {
  explicit Storm(std::uint64_t seed) : rng(seed) {}

  Engine engine;
  Rng rng;
  std::vector<EventHandle> handles;
  std::vector<int> fired;
  int next_id = 0;
  int spawned = 0;
  static constexpr int kMaxSpawns = 600;

  void spawn(Duration delay) {
    if (spawned >= kMaxSpawns) return;
    ++spawned;
    const int id = next_id++;
    handles.push_back(engine.schedule_after(delay, [this, id] { fire(id); }));
  }

  void fire(int id) {
    fired.push_back(id);
    // Cancel a pseudo-random handle: may be pending, may have fired long
    // ago, may be the very handle running this callback.
    EventHandle& victim = handles[rng.index(handles.size())];
    victim.cancel();
    EXPECT_FALSE(victim.pending());
    // Replace it with up to two descendants.
    spawn(Duration::from_us(static_cast<std::int64_t>(rng.index(500)) + 1));
    if (rng.bernoulli(0.4)) {
      spawn(Duration::from_us(static_cast<std::int64_t>(rng.index(500)) + 1));
    }
  }

  void run(std::uint64_t initial) {
    for (std::uint64_t i = 0; i < initial; ++i) {
      spawn(Duration::from_us(static_cast<std::int64_t>(rng.index(200)) + 1));
    }
    engine.run_all();
  }
};

TEST(EngineStress, CancelAndRescheduleFromCallbacksTerminates) {
  Storm storm(17);
  storm.run(20);
  EXPECT_EQ(storm.engine.pending_count(), 0u);
  EXPECT_FALSE(storm.fired.empty());
  EXPECT_LE(storm.fired.size(),
            static_cast<std::size_t>(Storm::kMaxSpawns));
  // Nothing fires twice: every id in the log is unique.
  std::vector<int> ids = storm.fired;
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
}

TEST(EngineStress, StormIsDeterministicForAFixedSeed) {
  Storm a(99), b(99);
  a.run(25);
  b.run(25);
  EXPECT_EQ(a.fired, b.fired);
  EXPECT_EQ(a.engine.now(), b.engine.now());
  EXPECT_EQ(a.engine.events_fired(), b.engine.events_fired());
  EXPECT_EQ(a.engine.cancelled_popped(), b.engine.cancelled_popped());
  // The memory-model counters are part of the determinism contract too:
  // identical schedules must recycle slots and pick wheel/heap identically.
  EXPECT_EQ(a.engine.pool_reuses(), b.engine.pool_reuses());
  EXPECT_EQ(a.engine.pool_high_water(), b.engine.pool_high_water());
  EXPECT_EQ(a.engine.wheel_scheduled(), b.engine.wheel_scheduled());
  EXPECT_EQ(a.engine.heap_scheduled(), b.engine.heap_scheduled());
}

TEST(EngineStress, StormRecyclesSlotsInsteadOfGrowingSlabs) {
  // 600 spawned events with bounded concurrent occupancy: the pool must
  // serve the storm from recycled slots, not by growing slab after slab.
  Storm storm(17);
  storm.run(20);
  EXPECT_GT(storm.engine.pool_reuses(), 0u);
  EXPECT_EQ(storm.engine.pool_slab_grows(), 1u);
  EXPECT_LE(storm.engine.pool_high_water(), 256u);
  // Every callback in the storm captures {this, id}: all inline, no heap
  // fallback.
  EXPECT_EQ(storm.engine.callback_fallbacks(), 0u);
  EXPECT_GT(storm.engine.callbacks_inline(), 0u);
}

TEST(EngineStress, DifferentSeedsDiverge) {
  Storm a(1), b(2);
  a.run(25);
  b.run(25);
  EXPECT_NE(a.fired, b.fired);
}

TEST(EngineStress, HandlesStaySafeAfterTheirEventsFired) {
  // Handles outlive their events (shared state, no dangling): querying
  // and cancelling long-fired or long-cancelled handles is benign.
  Storm storm(5);
  storm.run(20);
  for (EventHandle& h : storm.handles) {
    EXPECT_FALSE(h.pending());
    const Time when = h.when();
    EXPECT_GE(when, Time::zero());
    h.cancel();  // idempotent on fired/cancelled events
    EXPECT_FALSE(h.pending());
  }
}

TEST(EngineStress, SelfCancellationInsideOwnCallbackIsBenign) {
  Engine engine;
  EventHandle self;
  bool ran = false;
  self = engine.schedule_after(Duration::from_us(1), [&] {
    ran = true;
    self.cancel();  // already firing: must be a no-op, not a crash
    EXPECT_FALSE(self.pending());
  });
  engine.run_all();
  EXPECT_TRUE(ran);
  EXPECT_FALSE(self.pending());
}

TEST(EngineStress, CancelledEventsNeverFireEvenWhenCancelledMidRun) {
  Engine engine;
  int fired = 0;
  std::vector<EventHandle> victims;
  victims.reserve(50);
  for (int i = 0; i < 50; ++i) {
    victims.push_back(
        engine.schedule_at(Time::from_us(100 + i), [&fired] { ++fired; }));
  }
  // One early event cancels every other victim from inside the run.
  engine.schedule_at(Time::from_us(50), [&victims] {
    for (std::size_t i = 0; i < victims.size(); i += 2) victims[i].cancel();
  });
  engine.run_all();
  EXPECT_EQ(fired, 25);
}

}  // namespace
}  // namespace satin::sim
